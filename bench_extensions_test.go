package qbeep

// Extension benches: quantum-volume uplift and ZNE composition — the
// optional/extension features beyond the paper's evaluation.

import (
	"testing"

	"qbeep/internal/algorithms"
	"qbeep/internal/core"
	"qbeep/internal/device"
	"qbeep/internal/mathx"
	"qbeep/internal/noise"
	"qbeep/internal/qvolume"
	"qbeep/internal/transpile"
	"qbeep/internal/zne"
)

// BenchmarkQuantumVolumeUplift measures the heavy-output probability of
// QV model circuits on a noisy backend, raw vs Q-BEEP-mitigated. The
// reported metrics show whether mitigation lifts a width across the 2/3
// pass threshold.
func BenchmarkQuantumVolumeUplift(b *testing.B) {
	bk, err := device.ByName("galway")
	if err != nil {
		b.Fatal(err)
	}
	exec, err := noise.NewExecutor(bk, noise.DefaultModel())
	if err != nil {
		b.Fatal(err)
	}
	var rawMean, qbMean float64
	for i := 0; i < b.N; i++ {
		rng := mathx.NewRNG(31)
		var rawHOPs, qbHOPs []float64
		for trial := 0; trial < 6; trial++ {
			c, err := qvolume.ModelCircuit(4, rng)
			if err != nil {
				b.Fatal(err)
			}
			heavy, err := qvolume.HeavySet(c)
			if err != nil {
				b.Fatal(err)
			}
			run, err := exec.Execute(c, 2048, rng)
			if err != nil {
				b.Fatal(err)
			}
			lb, err := core.EstimateLambda(run.Transpiled, bk)
			if err != nil {
				b.Fatal(err)
			}
			mitigated, err := core.Mitigate(run.Counts, lb.Lambda(), core.NewOptions())
			if err != nil {
				b.Fatal(err)
			}
			hr, err := qvolume.HOP(run.Counts, heavy)
			if err != nil {
				b.Fatal(err)
			}
			hq, err := qvolume.HOP(mitigated, heavy)
			if err != nil {
				b.Fatal(err)
			}
			rawHOPs = append(rawHOPs, hr)
			qbHOPs = append(qbHOPs, hq)
		}
		rawMean = mathx.Mean(rawHOPs)
		qbMean = mathx.Mean(qbHOPs)
	}
	b.ReportMetric(rawMean, "hop-raw")
	b.ReportMetric(qbMean, "hop-qbeep")
}

// BenchmarkZNEComposition measures zero-noise extrapolation of a BV PST
// against the single-scale raw measurement.
func BenchmarkZNEComposition(b *testing.B) {
	bk, err := device.ByName("galway")
	if err != nil {
		b.Fatal(err)
	}
	exec, err := noise.NewExecutor(bk, noise.DefaultModel())
	if err != nil {
		b.Fatal(err)
	}
	w, err := algorithms.BernsteinVazirani(6, 0b101101)
	if err != nil {
		b.Fatal(err)
	}
	var raw, extrapolated float64
	for i := 0; i < b.N; i++ {
		rng := mathx.NewRNG(9)
		var pts []zne.Point
		for _, scale := range []int{1, 3, 5} {
			folded, err := zne.Fold(w.Circuit, scale)
			if err != nil {
				b.Fatal(err)
			}
			run, err := exec.Execute(folded, 4096, rng)
			if err != nil {
				b.Fatal(err)
			}
			counts, err := w.MarginalCounts(run.Counts)
			if err != nil {
				b.Fatal(err)
			}
			p := counts.Prob(w.Expected)
			pts = append(pts, zne.Point{Scale: float64(scale), Value: p})
			if scale == 1 {
				raw = p
			}
		}
		extrapolated, err = zne.ExtrapolateExp(pts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(raw, "pst-raw")
	b.ReportMetric(extrapolated, "pst-zne")
}

// BenchmarkLayoutSearch compares greedy placement against the λ-aware
// layout search (12 random trials) by the realized PST of the induction.
func BenchmarkLayoutSearch(b *testing.B) {
	bk, err := device.ByName("nairobi2")
	if err != nil {
		b.Fatal(err)
	}
	exec, err := noise.NewExecutor(bk, noise.DefaultModel())
	if err != nil {
		b.Fatal(err)
	}
	w, err := algorithms.BernsteinVazirani(8, 0b10110101)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name   string
		trials int
	}{
		{"greedy", 0},
		{"search12", 12},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var pst float64
			for i := 0; i < b.N; i++ {
				res, err := transpile.SearchLayout(w.Circuit, bk, tc.trials, 7)
				if err != nil {
					b.Fatal(err)
				}
				run, err := exec.ExecuteTranspiled(w.Circuit, res, 4096, mathx.NewRNG(5))
				if err != nil {
					b.Fatal(err)
				}
				counts, err := w.MarginalCounts(run.Counts)
				if err != nil {
					b.Fatal(err)
				}
				pst = counts.Prob(w.Expected)
			}
			b.ReportMetric(pst, "pst-raw")
		})
	}
}
