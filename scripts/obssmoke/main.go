// Command obssmoke is the CI observability smoke check: it stands up
// the debug server on an ephemeral port, scrapes /healthz and /metrics
// over real HTTP, and fails unless the exposition is Prometheus text
// carrying at least one counter, gauge and histogram family. `make
// obs-smoke` runs it after exercising qbeep-trace on the golden
// fixture.
package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"qbeep"
	"qbeep/internal/obs"
	"qbeep/internal/par"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "obssmoke:", err)
		os.Exit(1)
	}
	fmt.Println("obs-smoke: metrics scrape ok")
}

func run() error {
	obs.Default.Counter("smoke.hits").Inc()
	obs.Default.Gauge("smoke.level").Set(3.5)
	obs.Default.Histogram("smoke.latency").Observe(0.012)
	// A trace-stamped worst observation must surface as _window_worst.
	obs.Default.Histogram("smoke.stamped").ObserveTrace(0.5, 7)
	// One real fan-out batch populates the par_worker_busy_ratio gauges.
	if err := par.ForEach(8, 2, func(int) error { return nil }); err != nil {
		return err
	}
	// A real tiny mitigation and λ estimation drive the quality families
	// live: the core loop observes qbeep_quality_hellinger_shift, Eq. 2
	// estimation sets the per-backend qbeep_quality_lambda gauge.
	if _, err := qbeep.Mitigate(qbeep.Counts{"000": 900, "001": 50, "010": 30, "100": 20}, 1.2, qbeep.NewOptions()); err != nil {
		return err
	}
	const bell = `OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];
h q[0];
cx q[0],q[1];
measure q[0] -> c[0];
measure q[1] -> c[1];
`
	if _, err := qbeep.EstimateLambdaQASM(bell, "istanbul"); err != nil {
		return err
	}
	// PST improvement lives in the experiments layer; a synthetic
	// observation checks the family renders on the same exposition.
	obs.Default.Histogram("quality.pst_improvement").ObserveTrace(1.34, 9)

	ds, err := obs.ServeDebug("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer func() {
		if err := ds.Shutdown(5 * time.Second); err != nil {
			fmt.Fprintln(os.Stderr, "obssmoke: shutdown:", err)
		}
	}()

	health, err := get(ds.Addr(), "/healthz", "")
	if err != nil {
		return err
	}
	if health != "ok\n" {
		return fmt.Errorf("/healthz body = %q, want ok", health)
	}

	metrics, err := get(ds.Addr(), "/metrics", obs.PromContentType)
	if err != nil {
		return err
	}
	for _, want := range []string{
		"# TYPE qbeep_smoke_hits_total counter",
		"# TYPE qbeep_smoke_level gauge",
		"# TYPE qbeep_smoke_latency histogram",
		`qbeep_smoke_latency_bucket{le="+Inf"} 1`,
		"# TYPE qbeep_runtime_goroutines gauge",
		// Perf-observatory families: build identity, process resource
		// telemetry, the trace↔metrics worst-observation link, and the
		// per-worker busy-ratio spread from the par fan-out.
		"# TYPE qbeep_build_info gauge",
		"# TYPE qbeep_runtime_heap_allocs_bytes gauge",
		`qbeep_smoke_stamped_window_worst{trace="7"} 0.5`,
		"# TYPE qbeep_par_worker_busy_ratio_min gauge",
		"# TYPE qbeep_par_worker_busy_ratio_mean gauge",
		"# TYPE qbeep_par_worker_busy_ratio_max gauge",
		// Quality-observatory families (DESIGN.md §16): the mitigation
		// above observed the shift histogram, estimation labeled the λ
		// gauge, and the synthetic PST ratio carried its trace stamp.
		"# TYPE qbeep_quality_hellinger_shift histogram",
		"# TYPE qbeep_quality_lambda gauge",
		`qbeep_quality_lambda{backend="istanbul"} `,
		"# TYPE qbeep_quality_pst_improvement histogram",
		`qbeep_quality_pst_improvement_window_worst{trace="9"} 1.34`,
	} {
		if !strings.Contains(metrics, want) {
			return fmt.Errorf("/metrics missing %q in:\n%s", want, metrics)
		}
	}
	return nil
}

// get fetches path from the debug server and, when wantType is
// non-empty, checks the Content-Type header.
func get(addr, path, wantType string) (string, error) {
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: %s", path, resp.Status)
	}
	if wantType != "" {
		if ct := resp.Header.Get("Content-Type"); ct != wantType {
			return "", fmt.Errorf("GET %s: Content-Type = %q, want %q", path, ct, wantType)
		}
	}
	return string(body), nil
}
