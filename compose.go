package qbeep

import (
	"fmt"

	"qbeep/internal/bitstring"
	"qbeep/internal/core"
	"qbeep/internal/readout"
)

// CorrectReadout inverts per-qubit measurement (SPAM) errors on raw
// counts: flips[i] is the flip probability of qubit i (all must be below
// 0.5). Readout correction composes with Q-BEEP (paper §3.5): correct the
// classifier first, then mitigate the circuit-level Hamming structure.
func CorrectReadout(counts Counts, flips []float64) (Counts, error) {
	m, err := readout.NewFromRates(flips)
	if err != nil {
		return nil, err
	}
	d, err := bitstring.FromStringCounts(counts)
	if err != nil {
		return nil, err
	}
	out, err := m.Apply(d)
	if err != nil {
		return nil, err
	}
	return out.StringCounts(), nil
}

// BackendReadoutRates returns the calibrated per-qubit readout flip rates
// of a named backend's first n qubits — the flips argument for
// CorrectReadout when the layout is trivial.
func BackendReadoutRates(backend string, n int) ([]float64, error) {
	b, err := backendByAnyName(backend)
	if err != nil {
		return nil, err
	}
	if n <= 0 || n > b.N() {
		return nil, fmt.Errorf("qbeep: %d qubits outside backend %s (%d)", n, backend, b.N())
	}
	rates := make([]float64, n)
	for i := 0; i < n; i++ {
		rates[i] = b.Calibration.Qubits[i].ReadoutError
	}
	return rates, nil
}

// EnsembleRun is one induction of the same logical circuit for ensemble
// mitigation — its counts and its own pre-induction λ.
type EnsembleRun struct {
	Counts Counts
	Lambda float64
}

// MitigateEnsemble mitigates each run with Q-BEEP and merges the results
// weighted by predicted quality (e^-λ) — the Quancorde-style composition
// the paper sketches in §3.5. All runs must share one register width; the
// output totals the mean run total.
func MitigateEnsemble(runs []EnsembleRun, opts Options) (Counts, error) {
	members := make([]core.EnsembleMember, len(runs))
	for i, r := range runs {
		d, err := bitstring.FromStringCounts(r.Counts)
		if err != nil {
			return nil, fmt.Errorf("qbeep: run %d: %w", i, err)
		}
		members[i] = core.EnsembleMember{Counts: d, Lambda: r.Lambda}
	}
	out, err := core.MitigateEnsemble(members, core.Options{
		Iterations: opts.Iterations,
		Epsilon:    opts.Epsilon,
	})
	if err != nil {
		return nil, err
	}
	return out.StringCounts(), nil
}
