package qbeep

// Ablation benches for the composition extensions (paper §3.5 and the
// §4.2 failure analysis): readout+Q-BEEP stacking, ensemble merging, and
// stale-calibration sensitivity.

import (
	"testing"

	"qbeep/internal/algorithms"
	"qbeep/internal/bitstring"
	"qbeep/internal/core"
	"qbeep/internal/device"
	"qbeep/internal/mathx"
	"qbeep/internal/noise"
	"qbeep/internal/readout"
)

// BenchmarkAblationComposition compares Q-BEEP alone against readout
// correction + Q-BEEP on the same noisy induction.
func BenchmarkAblationComposition(b *testing.B) {
	w, err := algorithms.BernsteinVazirani(8, 0b10110101)
	if err != nil {
		b.Fatal(err)
	}
	bk, err := device.ByName("galway")
	if err != nil {
		b.Fatal(err)
	}
	exec, err := noise.NewExecutor(bk, noise.DefaultModel())
	if err != nil {
		b.Fatal(err)
	}
	run, err := exec.Execute(w.Circuit, 4096, mathx.NewRNG(55))
	if err != nil {
		b.Fatal(err)
	}
	lb, err := core.EstimateLambda(run.Transpiled, bk)
	if err != nil {
		b.Fatal(err)
	}
	raw, err := w.MarginalCounts(run.Counts)
	if err != nil {
		b.Fatal(err)
	}
	ideal, err := w.MarginalCounts(run.Ideal)
	if err != nil {
		b.Fatal(err)
	}
	flips := make([]float64, 8)
	for i, p := range run.Transpiled.Final[:8] {
		flips[i] = bk.Calibration.Qubits[p].ReadoutError
	}
	rd, err := readout.NewFromRates(flips)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("qbeep-only", func(b *testing.B) {
		var fid float64
		for i := 0; i < b.N; i++ {
			out, err := core.Mitigate(raw, lb.Lambda(), core.NewOptions())
			if err != nil {
				b.Fatal(err)
			}
			fid = bitstring.Fidelity(ideal, out)
		}
		b.ReportMetric(fid, "fidelity")
	})
	b.Run("readout-then-qbeep", func(b *testing.B) {
		var fid float64
		for i := 0; i < b.N; i++ {
			corrected, err := rd.Apply(raw)
			if err != nil {
				b.Fatal(err)
			}
			// The readout term is now handled; mitigate the remainder.
			out, err := core.Mitigate(corrected, lb.Lambda(), core.NewOptions())
			if err != nil {
				b.Fatal(err)
			}
			fid = bitstring.Fidelity(ideal, out)
		}
		b.ReportMetric(fid, "fidelity")
	})
}

// BenchmarkAblationEnsemble compares single-backend mitigation with the
// e^-λ-weighted three-backend ensemble.
func BenchmarkAblationEnsemble(b *testing.B) {
	w, err := algorithms.BernsteinVazirani(8, 0b10011010)
	if err != nil {
		b.Fatal(err)
	}
	ideal, err := w.IdealDist()
	if err != nil {
		b.Fatal(err)
	}
	rng := mathx.NewRNG(77)
	var members []core.EnsembleMember
	for _, name := range []string{"galway", "istanbul", "nairobi2"} {
		bk, err := device.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		exec, err := noise.NewExecutor(bk, noise.DefaultModel())
		if err != nil {
			b.Fatal(err)
		}
		run, err := exec.Execute(w.Circuit, 2048, rng)
		if err != nil {
			b.Fatal(err)
		}
		lb, err := core.EstimateLambda(run.Transpiled, bk)
		if err != nil {
			b.Fatal(err)
		}
		raw, err := w.MarginalCounts(run.Counts)
		if err != nil {
			b.Fatal(err)
		}
		members = append(members, core.EnsembleMember{Counts: raw, Lambda: lb.Lambda()})
	}

	b.Run("single-worst", func(b *testing.B) {
		var fid float64
		worst := members[0]
		for _, m := range members[1:] {
			if m.Lambda > worst.Lambda {
				worst = m
			}
		}
		for i := 0; i < b.N; i++ {
			out, err := core.Mitigate(worst.Counts, worst.Lambda, core.NewOptions())
			if err != nil {
				b.Fatal(err)
			}
			fid = bitstring.Fidelity(ideal, out)
		}
		b.ReportMetric(fid, "fidelity")
	})
	b.Run("ensemble", func(b *testing.B) {
		var fid float64
		for i := 0; i < b.N; i++ {
			out, err := core.MitigateEnsemble(members, core.NewOptions())
			if err != nil {
				b.Fatal(err)
			}
			fid = bitstring.Fidelity(ideal, out)
		}
		b.ReportMetric(fid, "fidelity")
	})
}

// BenchmarkAblationStaleCalibration quantifies the §4.2 failure mode:
// λ estimated from a drifted (stale) calibration vs the true one.
func BenchmarkAblationStaleCalibration(b *testing.B) {
	fresh, err := device.ByName("medellin")
	if err != nil {
		b.Fatal(err)
	}
	today, err := device.Drifted(fresh, 1.5, 99)
	if err != nil {
		b.Fatal(err)
	}
	exec, err := noise.NewExecutor(today, noise.DefaultModel())
	if err != nil {
		b.Fatal(err)
	}
	rng := mathx.NewRNG(17)
	w, err := algorithms.BernsteinVazirani(9, 0b101101011)
	if err != nil {
		b.Fatal(err)
	}
	run, err := exec.Execute(w.Circuit, 4096, rng)
	if err != nil {
		b.Fatal(err)
	}
	raw, err := w.MarginalCounts(run.Counts)
	if err != nil {
		b.Fatal(err)
	}
	ideal, err := w.MarginalCounts(run.Ideal)
	if err != nil {
		b.Fatal(err)
	}
	lbFresh, err := core.EstimateLambda(run.Transpiled, today)
	if err != nil {
		b.Fatal(err)
	}
	lbStale, err := core.EstimateLambda(run.Transpiled, fresh)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name   string
		lambda float64
	}{
		{"true-calibration", lbFresh.Lambda()},
		{"stale-calibration", lbStale.Lambda()},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var fid float64
			for i := 0; i < b.N; i++ {
				out, err := core.Mitigate(raw, tc.lambda, core.NewOptions())
				if err != nil {
					b.Fatal(err)
				}
				fid = bitstring.Fidelity(ideal, out)
			}
			b.ReportMetric(fid, "fidelity")
		})
	}
}
