package qbeep

import (
	"fmt"

	"qbeep/internal/algorithms"
	"qbeep/internal/bitstring"
	"qbeep/internal/qasm"
)

// BernsteinVaziraniQASM builds the (n+1)-qubit Bernstein-Vazirani circuit
// for the given secret (a binary string of length n) and returns it as
// OpenQASM 2.0. The data register q[0..n-1] yields the secret on a
// perfect machine; q[n] is the phase-kickback ancilla.
func BernsteinVaziraniQASM(secret string) (string, error) {
	v, n, err := bitstring.Parse(secret)
	if err != nil {
		return "", err
	}
	w, err := algorithms.BernsteinVazirani(n, v)
	if err != nil {
		return "", err
	}
	return qasm.Write(w.Circuit)
}

// SuiteNames lists the QASMBench-style benchmark circuits shipped with
// the library (paper Figs. 8, 9, 11).
func SuiteNames() []string {
	entries := algorithms.Suite()
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name
	}
	return names
}

// SuiteCircuit returns a named benchmark circuit as OpenQASM 2.0 together
// with its ideal output distribution over the data qubits and the
// data-qubit list itself (circuits such as lpn_n5 carry an ancilla;
// marginalize measured counts onto dataQubits before scoring).
func SuiteCircuit(name string) (qasmSource string, ideal Counts, dataQubits []int, err error) {
	w, err := algorithms.BySuiteName(name)
	if err != nil {
		return "", nil, nil, err
	}
	src, err := qasm.Write(w.Circuit)
	if err != nil {
		return "", nil, nil, err
	}
	idealDist, err := w.IdealDist()
	if err != nil {
		return "", nil, nil, err
	}
	return src, idealDist.StringCounts(), append([]int(nil), w.DataQubits...), nil
}

// MarginalizeCounts projects full-register counts onto the listed qubits
// (result bit i = input qubit keep[i]); use it to drop ancillas before
// scoring, e.g. the BV ancilla.
func MarginalizeCounts(counts Counts, keep []int) (Counts, error) {
	d, err := bitstring.FromStringCounts(counts)
	if err != nil {
		return nil, err
	}
	m, err := d.Marginal(keep)
	if err != nil {
		return nil, err
	}
	return m.StringCounts(), nil
}

// DataQubits returns the 0..n-1 qubit list, the data register of an
// n-data-qubit workload with trailing ancillas.
func DataQubits(n int) ([]int, error) {
	if n <= 0 {
		return nil, fmt.Errorf("qbeep: width %d must be positive", n)
	}
	qs := make([]int, n)
	for i := range qs {
		qs[i] = i
	}
	return qs, nil
}
