// QAOA MaxCut mitigation (paper §4.4 scenario): build QAOA instances on
// random 3-regular graphs, induce them on noisy synthetic backends,
// mitigate with Q-BEEP, and report the Cost Ratio before and after — a
// miniature of the paper's Fig. 10.
//
//	go run ./examples/qaoa
package main

import (
	"fmt"
	"log"

	"qbeep"
	"qbeep/internal/bitstring"
	"qbeep/internal/mathx"
	"qbeep/internal/qaoa"
	"qbeep/internal/qasm"
)

func main() {
	rng := mathx.NewRNG(11)
	instances, err := qaoa.Dataset(8, 6, 10, 2, rng)
	if err != nil {
		log.Fatal(err)
	}
	machines := []string{"galway", "istanbul", "kyiv", "medellin"}

	fmt.Printf("%-3s %-2s %-10s %9s %9s %7s %8s\n",
		"n", "p", "machine", "cr-raw", "cr-qb", "gain", "lambda")

	var gains []float64
	for i, inst := range instances {
		m := machines[i%len(machines)]
		src, err := qasm.Write(inst.Circuit)
		if err != nil {
			log.Fatal(err)
		}
		sim, err := qbeep.Simulate(src, m, 4096, rng.Uint64())
		if err != nil {
			log.Fatal(err)
		}
		mitigated, err := qbeep.Mitigate(sim.Raw, sim.Lambda.Total(), qbeep.NewOptions())
		if err != nil {
			log.Fatal(err)
		}
		rawDist, err := bitstring.FromStringCounts(sim.Raw)
		if err != nil {
			log.Fatal(err)
		}
		qbDist, err := bitstring.FromStringCounts(mitigated)
		if err != nil {
			log.Fatal(err)
		}
		crRaw, err := inst.Graph.CostRatio(rawDist)
		if err != nil {
			log.Fatal(err)
		}
		crQB, err := inst.Graph.CostRatio(qbDist)
		if err != nil {
			log.Fatal(err)
		}
		gain := 1.0
		if crRaw > 1e-9 {
			gain = crQB / crRaw
		}
		gains = append(gains, gain)
		fmt.Printf("%-3d %-2d %-10s %9.4f %9.4f %6.2fx %8.3f\n",
			inst.Graph.N, inst.P, m, crRaw, crQB, gain, sim.Lambda.Total())
	}

	fmt.Printf("\nmean CR improvement: %.2fx over %d solutions (paper reports 1.71x on the Sycamore dataset)\n",
		mathx.Mean(gains), len(gains))
}
