// Quickstart: mitigate a noisy 8-qubit Bernstein-Vazirani induction with
// Q-BEEP, end to end, using only the public qbeep API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"qbeep"
)

func main() {
	const secret = "10110100"

	// 1. Build the circuit (OpenQASM 2.0).
	src, err := qbeep.BernsteinVaziraniQASM(secret)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Run it on a synthetic calibrated backend under hardware-style
	// noise. On real hardware you would submit src and collect counts;
	// Simulate also returns the pre-induction λ estimate (paper Eq. 2).
	sim, err := qbeep.Simulate(src, "istanbul", 4096, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transpiled to %d basis gates (%d SWAPs); schedule %.1f us\n",
		sim.TranspiledGates, sim.Swaps, sim.Lambda.Time*1e6)
	fmt.Printf("lambda = %.3f  (T1 %.3f + T2 %.3f + gates %.3f)\n",
		sim.Lambda.Total(), sim.Lambda.T1, sim.Lambda.T2, sim.Lambda.Gates)

	// 3. Drop the phase-kickback ancilla (qubit 8) before scoring.
	keep, err := qbeep.DataQubits(len(secret))
	if err != nil {
		log.Fatal(err)
	}
	raw, err := qbeep.MarginalizeCounts(sim.Raw, keep)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Mitigate with the paper's published configuration.
	mitigated, err := qbeep.Mitigate(raw, sim.Lambda.Total(), qbeep.NewOptions())
	if err != nil {
		log.Fatal(err)
	}

	// 5. Score.
	pstRaw, err := qbeep.PST(raw, secret)
	if err != nil {
		log.Fatal(err)
	}
	pstQB, err := qbeep.PST(mitigated, secret)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PST(secret=%s): raw %.4f -> mitigated %.4f (%.2fx)\n",
		secret, pstRaw, pstQB, pstQB/pstRaw)

	ideal := qbeep.Counts{secret: 1}
	fRaw, err := qbeep.Fidelity(ideal, raw)
	if err != nil {
		log.Fatal(err)
	}
	fQB, err := qbeep.Fidelity(ideal, mitigated)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fidelity: raw %.4f -> mitigated %.4f\n", fRaw, fQB)
}
