// QASMBench-style multi-algorithm study (paper §4.3/§5 scenario): run
// every suite circuit on several machines, mitigate with Q-BEEP, and
// relate the fidelity gain to each algorithm's ideal output entropy — a
// miniature of the paper's Figs. 8 and 11.
//
//	go run ./examples/qasmbench
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"qbeep"
)

func main() {
	machines := []string{"carthage", "eldorado", "istanbul"}

	type row struct {
		name    string
		entropy float64
		gain    float64
	}
	var rows []row

	for _, name := range qbeep.SuiteNames() {
		src, ideal, dataQubits, err := qbeep.SuiteCircuit(name)
		if err != nil {
			log.Fatal(err)
		}
		entropy := shannon(ideal)
		var gains []float64
		for i, m := range machines {
			sim, err := qbeep.Simulate(src, m, 4096, uint64(100+i))
			if err != nil {
				log.Fatal(err)
			}
			raw, err := qbeep.MarginalizeCounts(sim.Raw, dataQubits)
			if err != nil {
				log.Fatal(err)
			}
			mitigated, err := qbeep.Mitigate(raw, sim.Lambda.Total(), qbeep.NewOptions())
			if err != nil {
				log.Fatal(err)
			}
			fRaw, err := qbeep.Fidelity(ideal, raw)
			if err != nil {
				log.Fatal(err)
			}
			fQB, err := qbeep.Fidelity(ideal, mitigated)
			if err != nil {
				log.Fatal(err)
			}
			if fRaw > 0 {
				gains = append(gains, fQB/fRaw)
			}
		}
		rows = append(rows, row{name: name, entropy: entropy, gain: mean(gains)})
	}

	sort.Slice(rows, func(i, j int) bool { return rows[i].entropy < rows[j].entropy })
	fmt.Printf("%-20s %9s %10s\n", "algorithm", "entropy", "fid-gain")
	for _, r := range rows {
		fmt.Printf("%-20s %9.3f %9.4fx\n", r.name, r.entropy, r.gain)
	}

	// The paper's Fig. 11 observation: gains anti-correlate with entropy.
	var xs, ys []float64
	for _, r := range rows {
		xs = append(xs, r.entropy)
		ys = append(ys, r.gain)
	}
	fmt.Printf("\ncorrelation(entropy, gain) = %.3f (paper reports a strong inverse correlation)\n",
		correlation(xs, ys))
}

func shannon(counts qbeep.Counts) float64 {
	var total float64
	for _, c := range counts {
		total += c
	}
	var h float64
	for _, c := range counts {
		p := c / total
		if p > 0 {
			h -= p * math.Log2(p)
		}
	}
	return h
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func correlation(xs, ys []float64) float64 {
	n := float64(len(xs))
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
