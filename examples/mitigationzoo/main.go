// Mitigation zoo: the same noisy Bernstein-Vazirani induction processed
// by every mitigation strategy in the library — raw, readout correction,
// Q-BEEP, readout + Q-BEEP, zero-noise extrapolation, and a 3-machine
// ensemble — so their costs and gains can be compared side by side.
//
//	go run ./examples/mitigationzoo
package main

import (
	"fmt"
	"log"

	"qbeep"
)

const secret = "1011010"

func main() {
	src, err := qbeep.BernsteinVaziraniQASM(secret)
	if err != nil {
		log.Fatal(err)
	}
	keep, err := qbeep.DataQubits(len(secret))
	if err != nil {
		log.Fatal(err)
	}

	// One reference induction on a mid-quality machine.
	const machine = "istanbul"
	sim, err := qbeep.Simulate(src, machine, 4096, 2)
	if err != nil {
		log.Fatal(err)
	}
	raw, err := qbeep.MarginalizeCounts(sim.Raw, keep)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d-qubit BV on %s, 4096 shots, lambda %.3f\n\n", len(secret), machine, sim.Lambda.Total())
	fmt.Printf("%-24s %8s %9s\n", "strategy", "PST", "vs raw")
	report := func(name string, counts qbeep.Counts) {
		p, err := qbeep.PST(counts, secret)
		if err != nil {
			log.Fatal(err)
		}
		base, _ := qbeep.PST(raw, secret)
		fmt.Printf("%-24s %8.4f %8.2fx\n", name, p, p/base)
	}
	report("raw", raw)

	// Readout correction alone.
	flips, err := qbeep.BackendReadoutRates(machine, len(secret))
	if err != nil {
		log.Fatal(err)
	}
	corrected, err := qbeep.CorrectReadout(raw, flips)
	if err != nil {
		log.Fatal(err)
	}
	report("readout", corrected)

	// Q-BEEP alone.
	qb, err := qbeep.Mitigate(raw, sim.Lambda.Total(), qbeep.NewOptions())
	if err != nil {
		log.Fatal(err)
	}
	report("qbeep", qb)

	// Readout then Q-BEEP.
	both, err := qbeep.Mitigate(corrected, sim.Lambda.Total(), qbeep.NewOptions())
	if err != nil {
		log.Fatal(err)
	}
	report("readout+qbeep", both)

	// Zero-noise extrapolation of the PST (3 folded inductions).
	var pts []qbeep.ZNEPoint
	for _, scale := range []int{1, 3, 5} {
		folded, err := qbeep.FoldQASM(src, scale)
		if err != nil {
			log.Fatal(err)
		}
		fsim, err := qbeep.Simulate(folded, machine, 4096, uint64(10+scale))
		if err != nil {
			log.Fatal(err)
		}
		fraw, err := qbeep.MarginalizeCounts(fsim.Raw, keep)
		if err != nil {
			log.Fatal(err)
		}
		p, err := qbeep.PST(fraw, secret)
		if err != nil {
			log.Fatal(err)
		}
		pts = append(pts, qbeep.ZNEPoint{Scale: float64(scale), Value: p})
	}
	zero, err := qbeep.ExtrapolateZeroExp(pts)
	if err != nil {
		log.Fatal(err)
	}
	base, _ := qbeep.PST(raw, secret)
	fmt.Printf("%-24s %8.4f %8.2fx   (3x shots)\n", "zne (PST estimate)", zero, zero/base)

	// 3-machine ensemble, each member Q-BEEP-mitigated and e^-λ weighted.
	var runs []qbeep.EnsembleRun
	for i, m := range []string{"istanbul", "kyiv", "galway"} {
		msim, err := qbeep.Simulate(src, m, 4096, uint64(20+i))
		if err != nil {
			log.Fatal(err)
		}
		mraw, err := qbeep.MarginalizeCounts(msim.Raw, keep)
		if err != nil {
			log.Fatal(err)
		}
		runs = append(runs, qbeep.EnsembleRun{Counts: mraw, Lambda: msim.Lambda.Total()})
	}
	ens, err := qbeep.MitigateEnsemble(runs, qbeep.NewOptions())
	if err != nil {
		log.Fatal(err)
	}
	report("ensemble(3)+qbeep", ens)
}
