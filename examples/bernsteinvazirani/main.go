// Bernstein-Vazirani sweep (paper §4.2 scenario): run BV circuits of
// several widths across several synthetic machines, mitigate each
// induction with Q-BEEP, and tabulate PST and fidelity improvements —
// a miniature of the paper's Fig. 7.
//
//	go run ./examples/bernsteinvazirani
package main

import (
	"fmt"
	"log"
	"math/rand"

	"qbeep"
)

func main() {
	widths := []int{5, 7, 9, 11}
	machines := []string{"istanbul", "kyiv", "medellin", "nairobi2"}
	rng := rand.New(rand.NewSource(7))

	fmt.Printf("%-3s %-10s %-16s %8s %8s %7s %8s %8s\n",
		"n", "machine", "secret", "pst-raw", "pst-qb", "gain", "fid-raw", "fid-qb")

	var gains []float64
	for _, n := range widths {
		for _, m := range machines {
			secret := randomSecret(n, rng)
			src, err := qbeep.BernsteinVaziraniQASM(secret)
			if err != nil {
				log.Fatal(err)
			}
			sim, err := qbeep.Simulate(src, m, 4096, rng.Uint64())
			if err != nil {
				log.Fatal(err)
			}
			keep, err := qbeep.DataQubits(n)
			if err != nil {
				log.Fatal(err)
			}
			raw, err := qbeep.MarginalizeCounts(sim.Raw, keep)
			if err != nil {
				log.Fatal(err)
			}
			mitigated, err := qbeep.Mitigate(raw, sim.Lambda.Total(), qbeep.NewOptions())
			if err != nil {
				log.Fatal(err)
			}
			pstRaw, err := qbeep.PST(raw, secret)
			if err != nil {
				log.Fatal(err)
			}
			pstQB, err := qbeep.PST(mitigated, secret)
			if err != nil {
				log.Fatal(err)
			}
			ideal := qbeep.Counts{secret: 1}
			fRaw, err := qbeep.Fidelity(ideal, raw)
			if err != nil {
				log.Fatal(err)
			}
			fQB, err := qbeep.Fidelity(ideal, mitigated)
			if err != nil {
				log.Fatal(err)
			}
			gain := 1.0
			if pstRaw > 0 {
				gain = pstQB / pstRaw
			}
			gains = append(gains, gain)
			fmt.Printf("%-3d %-10s %-16s %8.4f %8.4f %6.2fx %8.4f %8.4f\n",
				n, m, secret, pstRaw, pstQB, gain, fRaw, fQB)
		}
	}

	var sum float64
	for _, g := range gains {
		sum += g
	}
	fmt.Printf("\nmean PST improvement over %d inductions: %.2fx (paper reports 1.77x on real IBMQ)\n",
		len(gains), sum/float64(len(gains)))
}

func randomSecret(n int, rng *rand.Rand) string {
	for {
		b := make([]byte, n)
		ones := 0
		for i := range b {
			if rng.Intn(2) == 1 {
				b[i] = '1'
				ones++
			} else {
				b[i] = '0'
			}
		}
		if ones > 0 {
			return string(b)
		}
	}
}
