// Command qbeep-lint is the repo's multichecker: it runs the custom
// invariant analyzers from internal/analysis over the packages named on
// the command line (default ./...) and exits non-zero if any analyzer
// reports a finding.
//
//	qbeep-lint [-only nodeterm,spanend] [-list] [-no-gcfacts] [packages...]
//
// The suite (see DESIGN.md §9, §15):
//
//	nodeterm   no math/rand, time.Now/Since, or order-sensitive map
//	           iteration in the deterministic kernel packages
//	nogo       no raw goroutines or sync.WaitGroup outside internal/par
//	           and internal/obs
//	spanend    obs spans must be ended on all return paths
//	floatcmp   no ==/!= on floats outside the exact-comparison allowlist
//	ctxflow    context.Background()/TODO() only at the process edge or
//	           in Background-wrapper shims; received ctx must thread
//	poolsafe   //qbeep:pooled scratch fields must not outlive the
//	           borrow; pool checkouts must reset before reuse
//	directive  the //qbeep: grammar itself: unknown verbs, unknown
//	           allow-keys, missing rationales, misplaced directives
//	gcfacts    the compiler-fact gate: //qbeep:allocfree, noescape and
//	           mustinline enforced against the gc compiler's -m=2
//	           escape/inline diagnostics (recompiles annotated
//	           packages; skip with -no-gcfacts)
//
// Findings are suppressed per line with //qbeep:allow-<check> directives
// carrying a rationale.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"qbeep/internal/analysis"
	"qbeep/internal/analysis/ctxflow"
	"qbeep/internal/analysis/directive"
	"qbeep/internal/analysis/floatcmp"
	"qbeep/internal/analysis/gcfacts"
	"qbeep/internal/analysis/nodeterm"
	"qbeep/internal/analysis/nogo"
	"qbeep/internal/analysis/poolsafe"
	"qbeep/internal/analysis/spanend"
	"qbeep/internal/buildinfo"
)

var suite = []*analysis.Analyzer{
	ctxflow.Analyzer,
	directive.Analyzer,
	floatcmp.Analyzer,
	nodeterm.Analyzer,
	nogo.Analyzer,
	poolsafe.Analyzer,
	spanend.Analyzer,
}

// gcfactsDoc is the -list entry for the compiler-fact gate, which runs
// outside the AST driver (it shells out to the compiler per annotated
// package).
const gcfactsDoc = "enforce //qbeep:allocfree, //qbeep:noescape and //qbeep:mustinline against the " +
	"gc compiler's -m=2 escape-analysis and inlining diagnostics"

func main() {
	list := flag.Bool("list", false, "print the analyzer suite and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	dir := flag.String("C", ".", "directory to resolve package patterns in")
	noGcfacts := flag.Bool("no-gcfacts", false, "skip the compiler-fact gate (no recompiles)")
	version := buildinfo.AddVersionFlag(nil)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Summary("qbeep-lint"))
		return
	}
	if *list {
		for _, a := range suite {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		fmt.Printf("%-10s %s\n", "gcfacts", gcfactsDoc)
		return
	}

	analyzers := suite
	runGcfacts := !*noGcfacts
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer, len(suite))
		for _, a := range suite {
			byName[a.Name] = a
		}
		analyzers = nil
		runGcfacts = false
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			if name == "gcfacts" {
				runGcfacts = true
				continue
			}
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "qbeep-lint: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	var findings []analysis.Finding
	if len(analyzers) > 0 {
		fs, err := analysis.Run(os.Stdout, *dir, analyzers, patterns...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qbeep-lint: %v\n", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	if runGcfacts {
		fs, err := gcfacts.Check(os.Stdout, *dir, patterns...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qbeep-lint: %v\n", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "qbeep-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
