// Command qbeep-lint is the repo's multichecker: it runs the custom
// invariant analyzers from internal/analysis over the packages named on
// the command line (default ./...) and exits non-zero if any analyzer
// reports a finding.
//
//	qbeep-lint [-only nodeterm,spanend] [-list] [packages...]
//
// The suite (see DESIGN.md §9):
//
//	nodeterm  no math/rand, time.Now/Since, or order-sensitive map
//	          iteration in the deterministic kernel packages
//	nogo      no raw goroutines or sync.WaitGroup outside internal/par
//	          and internal/obs
//	spanend   obs spans must be ended on all return paths
//	floatcmp  no ==/!= on floats outside the exact-comparison allowlist
//
// Findings are suppressed per line with //qbeep:allow-<check> directives
// carrying a rationale.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"qbeep/internal/analysis"
	"qbeep/internal/analysis/floatcmp"
	"qbeep/internal/analysis/nodeterm"
	"qbeep/internal/analysis/nogo"
	"qbeep/internal/analysis/spanend"
	"qbeep/internal/buildinfo"
)

var suite = []*analysis.Analyzer{
	floatcmp.Analyzer,
	nodeterm.Analyzer,
	nogo.Analyzer,
	spanend.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "print the analyzer suite and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	dir := flag.String("C", ".", "directory to resolve package patterns in")
	version := buildinfo.AddVersionFlag(nil)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Summary("qbeep-lint"))
		return
	}
	if *list {
		for _, a := range suite {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := suite
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer, len(suite))
		for _, a := range suite {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "qbeep-lint: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	findings, err := analysis.Run(os.Stdout, *dir, analyzers, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qbeep-lint: %v\n", err)
		os.Exit(2)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "qbeep-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
