package main

import (
	"encoding/json"
	"fmt"
	"io"

	"qbeep"
)

// writeTraceLine renders one per-iteration stats record as a single
// NDJSON line — the -trace output format. Keys: iteration, eta,
// flow_moved, l1_delta, vertices, edges, duration_ns.
func writeTraceLine(w io.Writer, st qbeep.IterationStats) error {
	data, err := json.Marshal(st)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", data)
	return err
}

// traceRecorder funnels iteration stats to w, remembering the first
// write error so the mitigation loop (which has no error channel for
// observers) never aborts mid-run.
type traceRecorder struct {
	w   io.Writer
	err error
}

func (t *traceRecorder) onIteration(st qbeep.IterationStats) {
	if t.err != nil {
		return
	}
	t.err = writeTraceLine(t.w, st)
}
