package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"qbeep"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// fixedTrace is a deterministic stand-in for a 3-iteration run (durations
// pinned so the golden bytes are stable).
func fixedTrace() []qbeep.IterationStats {
	return []qbeep.IterationStats{
		{Iteration: 1, Eta: 1, FlowMoved: 812.5, L1Delta: 625.25, Vertices: 87, Edges: 341, Duration: 1500 * time.Microsecond},
		{Iteration: 2, Eta: 0.5, FlowMoved: 120.125, L1Delta: 60.5, Vertices: 87, Edges: 341, Duration: 1250 * time.Microsecond},
		{Iteration: 3, Eta: 0.25, FlowMoved: 14.75, L1Delta: 3.125, Vertices: 87, Edges: 341, Duration: 1100 * time.Microsecond},
	}
}

// TestTraceGolden pins the -trace NDJSON shape: one object per
// iteration with iteration, eta, flow_moved, l1_delta, vertices, edges
// and duration_ns keys.
func TestTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	for _, st := range fixedTrace() {
		if err := writeTraceLine(&buf, st); err != nil {
			t.Fatal(err)
		}
	}
	goldenPath := filepath.Join("testdata", "trace.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace output drifted from golden.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestTraceEndToEnd runs a real mitigation with the trace hook attached
// and validates every emitted line is well-formed JSON with sane values.
func TestTraceEndToEnd(t *testing.T) {
	counts := map[string]float64{
		"1011": 3800, "1010": 120, "0011": 88, "1111": 60, "0000": 12,
	}
	var buf bytes.Buffer
	tracer := &traceRecorder{w: &buf}
	opts := qbeep.NewOptions()
	opts.OnIteration = tracer.onIteration
	if _, err := qbeep.Mitigate(counts, 1.2, opts); err != nil {
		t.Fatal(err)
	}
	if tracer.err != nil {
		t.Fatal(tracer.err)
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != opts.Iterations {
		t.Fatalf("got %d trace lines, want %d", len(lines), opts.Iterations)
	}
	for i, line := range lines {
		var rec struct {
			Iteration  int     `json:"iteration"`
			Eta        float64 `json:"eta"`
			FlowMoved  float64 `json:"flow_moved"`
			L1Delta    float64 `json:"l1_delta"`
			Vertices   int     `json:"vertices"`
			Edges      int     `json:"edges"`
			DurationNS int64   `json:"duration_ns"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, line)
		}
		if rec.Iteration != i+1 {
			t.Fatalf("line %d: iteration = %d", i, rec.Iteration)
		}
		if rec.Eta <= 0 || rec.Eta > 1 {
			t.Fatalf("line %d: eta = %v", i, rec.Eta)
		}
		if rec.Vertices != 5 {
			t.Fatalf("line %d: vertices = %d, want 5", i, rec.Vertices)
		}
		if rec.FlowMoved < 0 || rec.L1Delta < 0 || rec.DurationNS < 0 {
			t.Fatalf("line %d: negative stats: %+v", i, rec)
		}
	}
}

func TestTraceRecorderStopsOnWriteError(t *testing.T) {
	tracer := &traceRecorder{w: failWriter{}}
	tracer.onIteration(qbeep.IterationStats{Iteration: 1})
	tracer.onIteration(qbeep.IterationStats{Iteration: 2})
	if tracer.err == nil {
		t.Fatal("write error not captured")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }
