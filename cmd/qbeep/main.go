// Command qbeep mitigates a measurement-counts file with Q-BEEP.
//
// The counts file is either a bare JSON object mapping bit-strings to
// counts (the shape vendor SDKs emit) or the metadata envelope written by
// qbeep-sim -meta, which already carries the λ estimate:
//
//	{"0101": 3812, "0111": 120, "0001": 88}
//	{"backend": "istanbul", "lambda": 1.31, "counts": {"0101": 3812}}
//
// λ is supplied either directly (-lambda) or estimated from an OpenQASM
// 2.0 circuit plus a named synthetic backend (-qasm, -backend), which is
// the paper's pre-induction Eq. 2 path.
//
// With -trace the run writes its span tree (rooted at "qbeep.pipeline",
// with per-iteration mitigation children carrying flow/Hellinger attrs)
// as NDJSON for offline analysis by cmd/qbeep-trace.
//
// Usage:
//
//	qbeep -counts counts.json -lambda 1.4
//	qbeep -counts counts.json -qasm circuit.qasm -backend istanbul
//	qbeep -counts counts.json -lambda 1.4 -trace run.ndjson && qbeep-trace run.ndjson
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"qbeep"
	"qbeep/internal/bitstring"
	"qbeep/internal/buildinfo"
	"qbeep/internal/core"
	"qbeep/internal/obs"
	"qbeep/internal/results"
	"qbeep/internal/runledger"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "qbeep:", err)
		os.Exit(1)
	}
}

// config carries the parsed flags into the traced pipeline body.
type config struct {
	countsPath  string
	lambda      float64
	qasmPath    string
	backend     string
	iterations  int
	epsilon     float64
	convergeTol float64
	topK        int
	dotPath     string
	outPath     string
}

func run() error {
	var (
		countsPath  = flag.String("counts", "", "path to counts JSON (required)")
		lambda      = flag.Float64("lambda", -1, "Poisson rate λ (skip estimation)")
		qasmPath    = flag.String("qasm", "", "OpenQASM 2.0 circuit for λ estimation")
		backend     = flag.String("backend", "", "backend name for λ estimation (see qbeep-backends)")
		iterations  = flag.Int("iterations", 20, "state-graph update iterations")
		epsilon     = flag.Float64("epsilon", 0.05, "edge threshold ε")
		convergeTol = flag.Float64("converge-tol", 0, "stop early when the per-iteration Hellinger delta falls below this (0 = fixed schedule)")
		topK        = flag.Int("top-k", 0, "approximate mode: keep only the k heaviest edges per vertex (0 = exact)")
		dotPath     = flag.String("dot", "", "also write the pre-mitigation state graph as Graphviz DOT")
		outPath     = flag.String("o", "", "output path (default stdout)")
		traceFlags  = obs.AddTraceFlags(nil)
		ledgerFlags = obs.AddLedgerFlags(nil)
		logFlags    = obs.AddLogFlags(nil)
		version     = buildinfo.AddVersionFlag(nil)
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Summary("qbeep"))
		return nil
	}
	if err := logFlags.Apply(os.Stderr); err != nil {
		return err
	}
	if *countsPath == "" {
		return fmt.Errorf("-counts is required")
	}
	stopTrace, err := traceFlags.Start()
	if err != nil {
		return err
	}
	stopLedger, err := ledgerFlags.Start()
	if err != nil {
		stopTrace()
		return err
	}
	err = pipeline(config{
		countsPath:  *countsPath,
		lambda:      *lambda,
		qasmPath:    *qasmPath,
		backend:     *backend,
		iterations:  *iterations,
		epsilon:     *epsilon,
		convergeTol: *convergeTol,
		topK:        *topK,
		dotPath:     *dotPath,
		outPath:     *outPath,
	})
	// The sinks must flush even when the pipeline failed — a partial trace
	// or ledger still analyzes — and their own errors surface only on
	// success.
	if terr := stopTrace(); err == nil {
		err = terr
	}
	if lerr := stopLedger(); err == nil {
		err = lerr
	}
	return err
}

// pipeline runs the mitigation workflow under the "qbeep.pipeline" root
// span: loading counts, resolving λ, the optional DOT dump, mitigation,
// and output.
func pipeline(cfg config) error {
	ctx, sp := obs.Start(context.Background(), "qbeep.pipeline")
	// Ending via defer keeps the span from leaking on the many error
	// returns (qbeep-lint spanend); attributes set below still precede it.
	defer sp.End()

	// Per-stage wall clocks for the run-ledger record (zero cost when no
	// ledger is installed: three time.Since calls and no allocation).
	var loadS, estimateS, mitigateS float64

	t0 := time.Now()
	file, err := results.Load(cfg.countsPath)
	if err != nil {
		return err
	}
	loadS = time.Since(t0).Seconds()
	counts := file.Counts

	lam := cfg.lambda
	if lam < 0 && file.Lambda > 0 {
		// The counts envelope already carries a pre-induction estimate
		// (qbeep-sim -meta writes it).
		lam = file.Lambda
		obs.Logger().Info("using lambda from counts envelope", "lambda", lam, "path", cfg.countsPath)
	}
	var qasmSrc []byte
	if lam < 0 {
		if cfg.qasmPath == "" || cfg.backend == "" {
			return fmt.Errorf("provide -lambda, a counts envelope with lambda, or -qasm and -backend")
		}
		src, err := os.ReadFile(cfg.qasmPath)
		if err != nil {
			return err
		}
		qasmSrc = src
		t0 = time.Now()
		est, err := qbeep.EstimateLambdaQASMCtx(ctx, string(src), cfg.backend)
		if err != nil {
			return err
		}
		estimateS = time.Since(t0).Seconds()
		lam = est.Total()
		obs.Logger().Info("estimated lambda",
			"lambda", lam, "t1", est.T1, "t2", est.T2, "gates", est.Gates, "schedule_s", est.Time)
	}

	if cfg.dotPath != "" {
		dist, err := bitstring.FromStringCounts(counts)
		if err != nil {
			return err
		}
		g, err := core.BuildStateGraphCtx(ctx, dist, core.PoissonEdges{Lambda: lam}, cfg.epsilon, 0)
		if err != nil {
			return err
		}
		f, err := os.Create(cfg.dotPath)
		if err != nil {
			return err
		}
		if err := g.WriteDOT(f, 200); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		obs.Logger().Info("wrote state graph", "stats", g.Stats().String(), "path", cfg.dotPath)
	}

	opts := qbeep.Options{
		Iterations:  cfg.iterations,
		Epsilon:     cfg.epsilon,
		ConvergeTol: cfg.convergeTol,
		TopK:        cfg.topK,
	}
	var qstats qbeep.QualityStats
	if obs.RunLedgerEnabled() {
		opts.OnQuality = func(q qbeep.QualityStats) { qstats = q }
	}
	t0 = time.Now()
	mitigated, err := qbeep.MitigateCtx(ctx, counts, lam, opts)
	if err != nil {
		return err
	}
	mitigateS = time.Since(t0).Seconds()
	sp.SetAttr("counts", cfg.countsPath)
	sp.SetAttr("lambda", lam)
	sp.SetAttr("iterations", cfg.iterations)
	if obs.RunLedgerEnabled() {
		recordLedger(ctx, cfg, file, qasmSrc, lam, qstats, loadS, estimateS, mitigateS)
	}
	out, err := json.MarshalIndent(mitigated, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if cfg.outPath == "" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(cfg.outPath, out, 0o644)
}

// recordLedger assembles and appends this run's quality record. The
// circuit identity prefers the counts envelope's name, then the QASM
// path; the hash covers the QASM source when λ was estimated from one,
// otherwise the counts file itself.
func recordLedger(ctx context.Context, cfg config, file *results.File, qasmSrc []byte, lam float64, q qbeep.QualityStats, loadS, estimateS, mitigateS float64) {
	circuit := file.Circuit
	if circuit == "" && cfg.qasmPath != "" {
		circuit = filepath.Base(cfg.qasmPath)
	}
	if circuit == "" {
		circuit = filepath.Base(cfg.countsPath)
	}
	hashSrc := qasmSrc
	if len(hashSrc) == 0 {
		if raw, err := os.ReadFile(cfg.countsPath); err == nil {
			hashSrc = raw
		} else {
			hashSrc = []byte(circuit)
		}
	}
	backend := cfg.backend
	if backend == "" {
		backend = file.Backend
	}
	shots := float64(file.Shots)
	if shots <= 0 {
		for _, c := range file.Counts {
			shots += c
		}
	}
	stages := []runledger.Stage{{Name: "load", WallS: loadS}}
	if estimateS > 0 {
		stages = append(stages, runledger.Stage{Name: "estimate", WallS: estimateS})
	}
	stages = append(stages, runledger.Stage{Name: "mitigate", WallS: mitigateS})
	rec := runledger.Record{
		Tool:        "qbeep",
		TraceID:     obs.TraceIDFrom(ctx),
		Backend:     backend,
		Circuit:     circuit,
		CircuitHash: runledger.HashBytes(hashSrc),
		Lambda:      lam,
		Shots:       shots,
		Stages:      stages,
		Quality: runledger.Quality{
			HellingerShift:   q.HellingerShift,
			PosteriorEntropy: q.PosteriorEntropy,
			Iterations:       q.Iterations,
			Converged:        q.Converged,
			SpectrumRef:      q.SpectrumRef,
			SpectrumBefore:   q.SpectrumBefore,
			SpectrumAfter:    q.SpectrumAfter,
		},
	}
	if err := obs.RecordRun(&rec); err != nil {
		obs.Logger().Warn("run-ledger append failed", "err", err)
	}
}
