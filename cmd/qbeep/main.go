// Command qbeep mitigates a measurement-counts file with Q-BEEP.
//
// The counts file is either a bare JSON object mapping bit-strings to
// counts (the shape vendor SDKs emit) or the metadata envelope written by
// qbeep-sim -meta, which already carries the λ estimate:
//
//	{"0101": 3812, "0111": 120, "0001": 88}
//	{"backend": "istanbul", "lambda": 1.31, "counts": {"0101": 3812}}
//
// λ is supplied either directly (-lambda) or estimated from an OpenQASM
// 2.0 circuit plus a named synthetic backend (-qasm, -backend), which is
// the paper's pre-induction Eq. 2 path.
//
// Usage:
//
//	qbeep -counts counts.json -lambda 1.4
//	qbeep -counts counts.json -qasm circuit.qasm -backend istanbul
//	qbeep -counts counts.json -qasm circuit.qasm -backend istanbul -iterations 20 -epsilon 0.05
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"qbeep"
	"qbeep/internal/bitstring"
	"qbeep/internal/core"
	"qbeep/internal/obs"
	"qbeep/internal/results"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "qbeep:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		countsPath = flag.String("counts", "", "path to counts JSON (required)")
		lambda     = flag.Float64("lambda", -1, "Poisson rate λ (skip estimation)")
		qasmPath   = flag.String("qasm", "", "OpenQASM 2.0 circuit for λ estimation")
		backend    = flag.String("backend", "", "backend name for λ estimation (see qbeep-backends)")
		iterations = flag.Int("iterations", 20, "state-graph update iterations")
		epsilon    = flag.Float64("epsilon", 0.05, "edge threshold ε")
		dotPath    = flag.String("dot", "", "also write the pre-mitigation state graph as Graphviz DOT")
		outPath    = flag.String("o", "", "output path (default stdout)")
		tracePath  = flag.String("trace", "", "write per-iteration mitigation stats as JSON lines ('-' = stderr)")
		logFlags   = obs.AddLogFlags(nil)
	)
	flag.Parse()
	if err := logFlags.Apply(os.Stderr); err != nil {
		return err
	}

	if *countsPath == "" {
		return fmt.Errorf("-counts is required")
	}
	file, err := results.Load(*countsPath)
	if err != nil {
		return err
	}
	counts := file.Counts

	lam := *lambda
	if lam < 0 && file.Lambda > 0 {
		// The counts envelope already carries a pre-induction estimate
		// (qbeep-sim -meta writes it).
		lam = file.Lambda
		obs.Logger().Info("using lambda from counts envelope", "lambda", lam, "path", *countsPath)
	}
	if lam < 0 {
		if *qasmPath == "" || *backend == "" {
			return fmt.Errorf("provide -lambda, a counts envelope with lambda, or -qasm and -backend")
		}
		src, err := os.ReadFile(*qasmPath)
		if err != nil {
			return err
		}
		est, err := qbeep.EstimateLambdaQASM(string(src), *backend)
		if err != nil {
			return err
		}
		lam = est.Total()
		obs.Logger().Info("estimated lambda",
			"lambda", lam, "t1", est.T1, "t2", est.T2, "gates", est.Gates, "schedule_s", est.Time)
	}

	if *dotPath != "" {
		dist, err := bitstring.FromStringCounts(counts)
		if err != nil {
			return err
		}
		g, err := core.BuildStateGraph(dist, core.PoissonEdges{Lambda: lam}, *epsilon)
		if err != nil {
			return err
		}
		f, err := os.Create(*dotPath)
		if err != nil {
			return err
		}
		if err := g.WriteDOT(f, 200); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		obs.Logger().Info("wrote state graph", "stats", g.Stats().String(), "path", *dotPath)
	}

	opts := qbeep.Options{Iterations: *iterations, Epsilon: *epsilon}
	var tracer *traceRecorder
	if *tracePath != "" {
		var tw io.Writer = os.Stderr
		if *tracePath != "-" {
			f, err := os.Create(*tracePath)
			if err != nil {
				return err
			}
			defer f.Close()
			tw = f
		}
		tracer = &traceRecorder{w: tw}
		opts.OnIteration = tracer.onIteration
	}
	mitigated, err := qbeep.Mitigate(counts, lam, opts)
	if err != nil {
		return err
	}
	if tracer != nil && tracer.err != nil {
		return fmt.Errorf("writing -trace output: %w", tracer.err)
	}
	out, err := json.MarshalIndent(mitigated, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if *outPath == "" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(*outPath, out, 0o644)
}
