package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"qbeep/internal/obs"
	"qbeep/internal/runledger"
	"qbeep/internal/tracefile"
)

// TestPipelineTraceEndToEnd runs the real pipeline with the -trace
// machinery pointed at a temp file, then analyzes the NDJSON with the
// same library qbeep-trace uses: the whole run must hang off one
// "qbeep.pipeline" root with the mitigation iterations as descendants,
// and the critical path must be rooted there.
func TestPipelineTraceEndToEnd(t *testing.T) {
	dir := t.TempDir()
	countsPath := filepath.Join(dir, "counts.json")
	counts := map[string]int{"0101": 3812, "0111": 120, "0001": 88, "1101": 60}
	raw, err := json.Marshal(counts)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(countsPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	tracePath := filepath.Join(dir, "run.ndjson")

	// Resources on, as `qbeep -trace` runs by default: the recorded spans
	// must carry CPU/allocation deltas end to end.
	tf := obs.TraceFlags{Path: tracePath, Resources: true}
	stopTrace, err := tf.Start()
	if err != nil {
		t.Fatal(err)
	}
	const iterations = 5
	perr := pipeline(config{
		countsPath: countsPath,
		lambda:     1.4,
		iterations: iterations,
		epsilon:    0.05,
		outPath:    filepath.Join(dir, "out.json"),
	})
	if err := stopTrace(); err != nil {
		t.Fatal(err)
	}
	if perr != nil {
		t.Fatal(perr)
	}

	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	forest, err := tracefile.Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(forest.Traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(forest.Traces))
	}
	tr := forest.Traces[0]
	root := tr.Root()
	if root == nil || root.Name != "qbeep.pipeline" {
		t.Fatalf("root span = %+v", root)
	}
	if lam, ok := root.Attr("lambda"); !ok || lam != 1.4 {
		t.Fatalf("root lambda attr = %v, %v", lam, ok)
	}

	byName := map[string][]*tracefile.Span{}
	for _, s := range tr.Spans {
		byName[s.Name] = append(byName[s.Name], s)
	}
	if n := len(byName["core.mitigate"]); n != 1 {
		t.Fatalf("core.mitigate spans = %d, want 1", n)
	}
	iters := byName["core.mitigate.iter"]
	if len(iters) != iterations {
		t.Fatalf("core.mitigate.iter spans = %d, want %d", len(iters), iterations)
	}
	for _, it := range iters {
		if it.Parent == nil || it.Parent.Name != "core.mitigate" {
			t.Fatalf("iteration span parented under %+v", it.Parent)
		}
		if _, ok := it.Attr("flow_moved"); !ok {
			t.Fatalf("iteration span missing flow_moved attr: %+v", it.SpanEvent)
		}
	}

	path := tracefile.CriticalPath(forest.Slowest())
	if len(path) == 0 || path[0].Name != "qbeep.pipeline" {
		t.Fatalf("critical path does not start at the pipeline root: %v", path)
	}

	// Resource attribution rode along: the stream reports resources, the
	// root accumulated allocation deltas (graph build + iterations all
	// allocate), and the hotspots report renders its resource rankings.
	if !forest.HasResources() {
		t.Fatal("capture-enabled trace carries no resource data")
	}
	if root.AllocBytes == 0 || root.AllocObjects == 0 {
		t.Fatalf("pipeline root has empty alloc deltas: %+v", root.SpanEvent)
	}
	var hot strings.Builder
	if err := tracefile.WriteHotspots(&hot, forest, 5); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"hotspots by self-CPU", "hotspots by self-allocations", "core.mitigate"} {
		if !strings.Contains(hot.String(), want) {
			t.Fatalf("hotspots report missing %q:\n%s", want, hot.String())
		}
	}
}

// TestPipelineConvergeTolTrace runs the pipeline with a loose -converge-tol
// and verifies the adaptive early exit leaves its evidence in the trace:
// fewer iteration spans than the schedule, a positive iterations_saved on
// the core.mitigate span, and the hotspots summary line.
func TestPipelineConvergeTolTrace(t *testing.T) {
	dir := t.TempDir()
	countsPath := filepath.Join(dir, "counts.json")
	counts := map[string]int{"0101": 3812, "0111": 120, "0001": 88, "1101": 60}
	raw, err := json.Marshal(counts)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(countsPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	tracePath := filepath.Join(dir, "run.ndjson")

	tf := obs.TraceFlags{Path: tracePath}
	stopTrace, err := tf.Start()
	if err != nil {
		t.Fatal(err)
	}
	const iterations = 20
	perr := pipeline(config{
		countsPath:  countsPath,
		lambda:      1.4,
		iterations:  iterations,
		epsilon:     0.05,
		convergeTol: 0.05, // loose: this tiny corpus settles within a few steps
		outPath:     filepath.Join(dir, "out.json"),
	})
	if err := stopTrace(); err != nil {
		t.Fatal(err)
	}
	if perr != nil {
		t.Fatal(perr)
	}

	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	forest, err := tracefile.Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	tr := forest.Slowest()
	if tr == nil {
		t.Fatal("no trace captured")
	}
	var mitigate *tracefile.Span
	iterSpans := 0
	for _, s := range tr.Spans {
		switch s.Name {
		case "core.mitigate":
			mitigate = s
		case "core.mitigate.iter":
			iterSpans++
		}
	}
	if mitigate == nil {
		t.Fatal("core.mitigate span missing")
	}
	if iterSpans >= iterations {
		t.Fatalf("ran %d iteration spans, expected an early exit below %d", iterSpans, iterations)
	}
	saved, ok := mitigate.Attr("iterations_saved")
	if !ok {
		t.Fatalf("core.mitigate missing iterations_saved attr: %+v", mitigate.SpanEvent)
	}
	if n, isNum := saved.(float64); !isNum || int(n) != iterations-iterSpans {
		t.Fatalf("iterations_saved = %v, want %d", saved, iterations-iterSpans)
	}
	if total, spans := forest.IterationsSaved(); total != int64(iterations-iterSpans) || spans == 0 {
		t.Fatalf("forest.IterationsSaved() = %d/%d", total, spans)
	}
	var hot strings.Builder
	if err := tracefile.WriteHotspots(&hot, forest, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(hot.String(), "adaptive early exit:") {
		t.Fatalf("hotspots report missing early-exit summary:\n%s", hot.String())
	}
}

// TestPipelineRunLedger runs the pipeline with a run ledger installed
// and checks the appended record: identity from buildinfo, the staged
// wall clocks, and the OnQuality block the mitigation loop delivered.
func TestPipelineRunLedger(t *testing.T) {
	dir := t.TempDir()
	countsPath := filepath.Join(dir, "counts.json")
	counts := map[string]int{"0101": 3812, "0111": 120, "0001": 88, "1101": 60}
	raw, err := json.Marshal(counts)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(countsPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	ledgerPath := filepath.Join(dir, "ledger.ndjson")

	lf := obs.LedgerFlags{Path: ledgerPath}
	stopLedger, err := lf.Start()
	if err != nil {
		t.Fatal(err)
	}
	perr := pipeline(config{
		countsPath: countsPath,
		lambda:     1.4,
		iterations: 5,
		epsilon:    0.05,
		outPath:    filepath.Join(dir, "out.json"),
	})
	if err := stopLedger(); err != nil {
		t.Fatal(err)
	}
	if perr != nil {
		t.Fatal(perr)
	}

	recs, err := runledger.ReadFile(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d ledger records, want 1", len(recs))
	}
	r := recs[0]
	if r.Tool != "qbeep" || r.Lambda != 1.4 || r.Circuit != "counts.json" {
		t.Fatalf("record identity: %+v", r)
	}
	if r.CircuitHash == "" || r.Time == "" || r.GoVersion == "" {
		t.Fatalf("record stamps: %+v", r)
	}
	if r.Shots != 4080 {
		t.Fatalf("shots = %v, want the summed counts 4080", r.Shots)
	}
	stages := map[string]bool{}
	for _, s := range r.Stages {
		stages[s.Name] = true
	}
	if !stages["load"] || !stages["mitigate"] || stages["estimate"] {
		t.Fatalf("stages = %+v (want load+mitigate, no estimate for -lambda runs)", r.Stages)
	}
	q := r.Quality
	if q.HellingerShift <= 0 || q.PosteriorEntropy <= 0 || q.Iterations != 5 {
		t.Fatalf("quality block: %+v", q)
	}
	// No ground truth on this path: the spectrum centers on the mode.
	if q.SpectrumRef != "mode" || len(q.SpectrumBefore) != 5 || len(q.SpectrumAfter) != 5 {
		t.Fatalf("spectra: %+v", q)
	}
	if q.FidelityRaw != 0 || q.PSTRaw != 0 {
		t.Fatalf("ground-truth fields must stay empty: %+v", q)
	}
}

// TestPipelineLambdaFromQASM covers the estimation path: with no -lambda
// the pipeline parses the circuit, estimates λ on the named backend, and
// the parse/transpile spans join the same trace.
func TestPipelineLambdaFromQASM(t *testing.T) {
	dir := t.TempDir()
	countsPath := filepath.Join(dir, "counts.json")
	if err := os.WriteFile(countsPath, []byte(`{"00": 900, "01": 60, "10": 40}`), 0o644); err != nil {
		t.Fatal(err)
	}
	qasmPath := filepath.Join(dir, "bell.qasm")
	const src = `OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];
h q[0];
cx q[0],q[1];
measure q[0] -> c[0];
measure q[1] -> c[1];
`
	if err := os.WriteFile(qasmPath, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	tracePath := filepath.Join(dir, "run.ndjson")

	tf := obs.TraceFlags{Path: tracePath}
	stopTrace, err := tf.Start()
	if err != nil {
		t.Fatal(err)
	}
	perr := pipeline(config{
		countsPath: countsPath,
		lambda:     -1,
		qasmPath:   qasmPath,
		backend:    "istanbul",
		iterations: 2,
		epsilon:    0.05,
		outPath:    filepath.Join(dir, "out.json"),
	})
	if err := stopTrace(); err != nil {
		t.Fatal(err)
	}
	if perr != nil {
		t.Fatal(perr)
	}

	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	forest, err := tracefile.Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	tr := forest.Slowest()
	if tr == nil {
		t.Fatal("no trace captured")
	}
	seen := map[string]bool{}
	for _, s := range tr.Spans {
		seen[s.Name] = true
	}
	for _, want := range []string{"qbeep.pipeline", "qasm.parse", "transpile", "core.mitigate"} {
		if !seen[want] {
			t.Fatalf("trace missing span %q (have %v)", want, seen)
		}
	}
}
