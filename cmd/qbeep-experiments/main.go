// Command qbeep-experiments regenerates the tables and series behind
// every figure of the paper's evaluation (see DESIGN.md §4 for the
// figure-to-module index).
//
// Usage:
//
//	qbeep-experiments -fig all                 # everything, paper-sized
//	qbeep-experiments -fig 2,4,6 -scale 0.1    # selected figures, 10 % corpora
//	qbeep-experiments -fig 7 -shots 8192 -seed 42
//	qbeep-experiments -fig all -csv out/       # also dump plot-ready CSVs
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"qbeep/internal/buildinfo"
	"qbeep/internal/experiments"
	"qbeep/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "qbeep-experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		figs        = flag.String("fig", "all", "comma-separated figure ids (1,2,4,6,7,8,9,10,11), 'ablations', or 'all'")
		scale       = flag.Float64("scale", 1, "corpus scale in (0,1]")
		shots       = flag.Int("shots", 4096, "shots per circuit")
		seed        = flag.Uint64("seed", 20230617, "root RNG seed")
		iterations  = flag.Int("iterations", 0, "flow iterations per mitigation (0 = paper default 20)")
		convergeTol = flag.Float64("converge-tol", 0, "stop each mitigation early when the per-iteration Hellinger delta falls below this (0 = fixed schedule)")
		topK        = flag.Int("top-k", 0, "approximate mode: keep only the k heaviest edges per vertex (0 = exact)")
		batch       = flag.Int("batch", 1, "shot blocks fanned across the worker pool per induction (<=1 = serial)")
		csvDir      = flag.String("csv", "", "directory for per-figure CSV dumps (created if missing)")
		report      = flag.String("report", "", "write a machine-readable JSON run report to this path ('-' = stderr)")
		debugAddr   = flag.String("debug-addr", "", "serve /debug/pprof/, /debug/vars, /metrics and /healthz on this address (e.g. localhost:6060)")
		traceFlags  = obs.AddTraceFlags(nil)
		ledgerFlags = obs.AddLedgerFlags(nil)
		logFlags    = obs.AddLogFlags(nil)
		version     = buildinfo.AddVersionFlag(nil)
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Summary("qbeep-experiments"))
		return nil
	}
	if err := logFlags.Apply(os.Stderr); err != nil {
		return err
	}
	if *debugAddr != "" {
		ds, err := obs.ServeDebug(*debugAddr)
		if err != nil {
			return fmt.Errorf("starting debug server: %w", err)
		}
		// Shutdown (not Close) lets an in-flight /metrics or pprof scrape
		// finish before the process exits.
		defer func() {
			if err := ds.Shutdown(5 * time.Second); err != nil {
				obs.Logger().Warn("debug server shutdown", "err", err)
			}
		}()
	}
	stopTrace, err := traceFlags.Start()
	if err != nil {
		return err
	}
	defer func() {
		if err := stopTrace(); err != nil {
			obs.Logger().Warn("flushing trace output", "err", err)
		}
	}()
	stopLedger, err := ledgerFlags.Start()
	if err != nil {
		return err
	}
	// Every workload appends its quality record (see
	// internal/experiments/quality.go); the close flushes the NDJSON tail.
	defer func() {
		if err := stopLedger(); err != nil {
			obs.Logger().Warn("closing run ledger", "err", err)
		}
	}()

	cfg := experiments.Config{
		Seed:        *seed,
		Shots:       *shots,
		Scale:       *scale,
		Iterations:  *iterations,
		ConvergeTol: *convergeTol,
		TopK:        *topK,
		Batch:       *batch,
		Out:         os.Stdout,
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}
	dump := func(figure string, w func(io.Writer) error) error {
		if *csvDir == "" {
			return nil
		}
		path := filepath.Join(*csvDir, experiments.CSVName(figure))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := w(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		return nil
	}

	selected := map[string]bool{}
	if *figs == "all" {
		for _, f := range []string{"1", "2", "4", "6", "7", "8", "9", "10", "11", "ablations"} {
			selected[f] = true
		}
	} else {
		for _, f := range strings.Split(*figs, ",") {
			selected[strings.TrimSpace(f)] = true
		}
	}

	type runner struct {
		id  string
		run func(experiments.Config) error
	}
	runners := []runner{
		{"1", func(c experiments.Config) error {
			_, err := experiments.Figure1(c)
			return err
		}},
		{"2", func(c experiments.Config) error {
			res, err := experiments.Figure2(c)
			if err != nil {
				return err
			}
			return dump("2", func(w io.Writer) error {
				for i := range res {
					if err := res[i].WriteCSV(w); err != nil {
						return err
					}
				}
				return nil
			})
		}},
		{"4", func(c experiments.Config) error {
			res, err := experiments.Figure4(c)
			if err != nil {
				return err
			}
			return dump("4", res.WriteCSV)
		}},
		{"6", func(c experiments.Config) error {
			res, err := experiments.Figure6(c)
			if err != nil {
				return err
			}
			return dump("6", res.WriteCSV)
		}},
		{"7", func(c experiments.Config) error {
			res, err := experiments.Figure7(c)
			if err != nil {
				return err
			}
			return dump("7", res.WriteCSV)
		}},
	}
	// Figures 8, 9 and 11 share one sweep; run it once if any is selected.
	if selected["8"] || selected["9"] || selected["11"] {
		runners = append(runners, runner{"8/9/11", func(c experiments.Config) error {
			res, err := experiments.RunQASMBench(c)
			if err != nil {
				return err
			}
			return dump("8", res.WriteCSV)
		}})
		delete(selected, "8")
		delete(selected, "9")
		delete(selected, "11")
		selected["8/9/11"] = true
	}
	runners = append(runners, runner{"10", func(c experiments.Config) error {
		res, err := experiments.Figure10(c)
		if err != nil {
			return err
		}
		return dump("10", res.WriteCSV)
	}})
	runners = append(runners, runner{"ablations", func(c experiments.Config) error {
		_, err := experiments.Ablations(c)
		return err
	}})

	runReport := experiments.NewRunReport(cfg, time.Now())
	writeReport := func() error {
		if *report == "" {
			return nil
		}
		runReport.Finalize()
		if *report == "-" {
			return runReport.Write(os.Stderr)
		}
		f, err := os.Create(*report)
		if err != nil {
			return err
		}
		if err := runReport.Write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote run report %s\n", *report)
		return nil
	}

	ran := 0
	for _, r := range runners {
		if !selected[r.id] {
			continue
		}
		fmt.Printf("\n==== Figure %s ====\n", r.id)
		t0 := time.Now()
		err := r.run(cfg)
		runReport.AddFigure(r.id, time.Since(t0), err)
		if err != nil {
			// The partial report still lands on disk so a crashed sweep
			// keeps its timing evidence.
			if werr := writeReport(); werr != nil {
				obs.Logger().Warn("writing run report failed", "err", werr)
			}
			return fmt.Errorf("figure %s: %w", r.id, err)
		}
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no figures selected (got -fig %q)", *figs)
	}
	return writeReport()
}
