// Command qbeep-sim runs an OpenQASM 2.0 circuit on a synthetic backend
// under the hardware-style noise model and writes the measured counts as
// JSON — completing the offline workflow with cmd/qbeep:
//
//	qbeep-sim -qasm bv.qasm -backend istanbul -shots 4096 > counts.json
//	qbeep -counts counts.json -qasm bv.qasm -backend istanbul
//
// With -ideal the exact noiseless distribution is emitted instead.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"qbeep"
	"qbeep/internal/bitstring"
	"qbeep/internal/buildinfo"
	"qbeep/internal/obs"
	"qbeep/internal/results"
	"qbeep/internal/runledger"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "qbeep-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		qasmPath    = flag.String("qasm", "", "OpenQASM 2.0 circuit (required)")
		backend     = flag.String("backend", "istanbul", "backend name (see qbeep-backends)")
		shots       = flag.Int("shots", 4096, "shots")
		batch       = flag.Int("batch", 1, "shot blocks fanned across the worker pool (1 = serial)")
		seed        = flag.Uint64("seed", 1, "noise RNG seed")
		ideal       = flag.Bool("ideal", false, "emit the noiseless distribution instead")
		meta        = flag.Bool("meta", false, "wrap counts in the metadata envelope (backend, shots, lambda)")
		outPath     = flag.String("o", "", "output path (default stdout)")
		traceFlags  = obs.AddTraceFlags(nil)
		ledgerFlags = obs.AddLedgerFlags(nil)
		logFlags    = obs.AddLogFlags(nil)
		version     = buildinfo.AddVersionFlag(nil)
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Summary("qbeep-sim"))
		return nil
	}
	if err := logFlags.Apply(os.Stderr); err != nil {
		return err
	}
	if *qasmPath == "" {
		return fmt.Errorf("-qasm is required")
	}
	src, err := os.ReadFile(*qasmPath)
	if err != nil {
		return err
	}
	stopTrace, err := traceFlags.Start()
	if err != nil {
		return err
	}
	stopLedger, err := ledgerFlags.Start()
	if err != nil {
		stopTrace()
		return err
	}
	t0 := time.Now()
	sim, err := simulate(string(src), *backend, *shots, *batch, *seed)
	if err == nil && obs.RunLedgerEnabled() {
		recordLedger(*qasmPath, src, *backend, *shots, sim, time.Since(t0).Seconds())
	}
	// Flush the trace and ledger even on failure; their own errors
	// surface only when the run otherwise succeeded.
	if terr := stopTrace(); err == nil {
		err = terr
	}
	if lerr := stopLedger(); err == nil {
		err = lerr
	}
	if err != nil {
		return err
	}
	obs.Logger().Info("simulated",
		"backend", *backend,
		"basis_gates", sim.TranspiledGates,
		"swaps", sim.Swaps,
		"schedule_s", sim.Lambda.Time,
		"lambda", sim.Lambda.Total())

	counts := sim.Raw
	if *ideal {
		counts = sim.Ideal
	}
	var out []byte
	if *meta {
		env := &results.File{
			Backend: *backend,
			Circuit: *qasmPath,
			Shots:   *shots,
			Seed:    *seed,
			Lambda:  sim.Lambda.Total(),
			Counts:  counts,
		}
		out, err = env.Encode()
		if err != nil {
			return err
		}
	} else {
		out, err = json.MarshalIndent(counts, "", "  ")
		if err != nil {
			return err
		}
		out = append(out, '\n')
	}
	if *outPath == "" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(*outPath, out, 0o644)
}

// simulate runs the synthetic induction under the "qbeep.pipeline" root
// span, so -trace output from qbeep-sim and qbeep share one analyzable
// shape (parse, transpile, ideal run and induction as children).
func simulate(src, backend string, shots, batch int, seed uint64) (*qbeep.SimResult, error) {
	ctx, sp := obs.Start(context.Background(), "qbeep.pipeline")
	defer sp.End()
	sim, err := qbeep.SimulateBatchedCtx(ctx, src, backend, shots, batch, seed)
	if err != nil {
		return nil, err
	}
	sp.SetAttr("backend", backend)
	sp.SetAttr("shots", shots)
	if batch > 1 {
		sp.SetAttr("batch", batch)
	}
	return sim, nil
}

// recordLedger appends this induction's quality record: the simulator
// knows the exact noiseless distribution, so the record carries the raw
// counts' fidelity/Hellinger against it and the Hamming spectrum
// centered on the ideal mode — the pre-mitigation half of the quality
// story (cmd/qbeep appends the post-mitigation half).
func recordLedger(qasmPath string, src []byte, backend string, shots int, sim *qbeep.SimResult, simulateS float64) {
	rec := runledger.Record{
		Tool:        "qbeep-sim",
		Backend:     backend,
		Circuit:     filepath.Base(qasmPath),
		CircuitHash: runledger.HashBytes(src),
		Lambda:      sim.Lambda.Total(),
		Shots:       float64(shots),
		Stages:      []runledger.Stage{{Name: "simulate", WallS: simulateS}},
	}
	raw, err := bitstring.FromStringCounts(sim.Raw)
	if err == nil {
		if ideal, ierr := bitstring.FromStringCounts(sim.Ideal); ierr == nil {
			center, _ := ideal.Top()
			rec.Quality = runledger.Quality{
				FidelityRaw:    bitstring.Fidelity(ideal, raw),
				HellingerRaw:   bitstring.Hellinger(ideal, raw),
				SpectrumRef:    "expected",
				SpectrumBefore: raw.HammingSpectrum(center),
			}
		}
	}
	if err := obs.RecordRun(&rec); err != nil {
		obs.Logger().Warn("run-ledger append failed", "err", err)
	}
}
