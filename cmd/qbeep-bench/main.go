// Command qbeep-bench is the benchmark trajectory harness: it runs the
// repo's bench suites (the same selections as `make bench-core` /
// `make bench-sim`), parses the `go test -bench` output, appends one row
// per suite to BENCH_trajectory.json, and — with -compare — recomputes
// the derived ratio invariants (fused/naive, engine/brute, zero-alloc
// hot loops) against the BENCH_<suite>.json baselines, exiting non-zero
// when one regresses past -threshold:
//
//	qbeep-bench -suites core,sim                 # record a trajectory row
//	qbeep-bench -suites sim -compare             # gate against BENCH_sim.json
//	qbeep-bench -suites sim -input bench.txt ... # parse a saved transcript
//
// Ratios gate instead of absolute ns/op because they cancel machine
// speed: a shared CI runner moves every benchmark together, leaving the
// engine-vs-reference quotients stable.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"qbeep/internal/benchparse"
	"qbeep/internal/buildinfo"
)

// suiteCmd is one `go test -bench` invocation of a suite.
type suiteCmd struct {
	pkg   string
	bench string
}

// suites mirrors the Makefile's bench-core / bench-sim selections; the
// Makefile stays the human entry point, this map the machine one.
var suites = map[string][]suiteCmd{
	"core": {
		{pkg: "./internal/core", bench: "StateGraph|BenchmarkMitigate$"},
		{pkg: "./internal/par", bench: "ForEachTinyTasks"},
	},
	"sim": {
		{pkg: "./internal/statevector", bench: "BenchmarkRun$|BenchmarkRunProgram$|BenchmarkRunUnfused$|BenchmarkNaiveRun$|BenchmarkProbabilitiesInto$"},
		{pkg: "./internal/densitymatrix", bench: "BenchmarkDensityEvolve$"},
		{pkg: "./internal/noise", bench: "BenchmarkTrajectory$|BenchmarkTrajectoryPerGate$"},
	},
	// smoke mirrors bench-smoke: record-only (no BENCH_smoke.json
	// baseline, so -compare on it fails honestly on the missing file).
	"smoke": {
		{pkg: ".", bench: "BenchmarkMitigateThroughput"},
	},
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "qbeep-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("qbeep-bench", flag.ContinueOnError)
	var (
		suitesFlag  = fs.String("suites", "core,sim", "comma-separated bench suites to run (core, sim)")
		input       = fs.String("input", "", "parse this saved transcript instead of running (requires a single -suites entry)")
		commit      = fs.String("commit", "", "commit recorded in trajectory rows (default: build VCS revision)")
		date        = fs.String("date", "", "date recorded in trajectory rows, YYYY-MM-DD (default: today)")
		trajectory  = fs.String("trajectory", "BENCH_trajectory.json", "trajectory file to append to ('' disables)")
		compare     = fs.Bool("compare", false, "gate derived ratios against BENCH_<suite>.json baselines")
		baselineDir = fs.String("baseline-dir", ".", "directory holding the BENCH_<suite>.json baselines")
		threshold   = fs.Float64("threshold", 0.25, "allowed fractional drop in a speedup ratio before -compare fails")
		benchtime   = fs.String("benchtime", "", "forwarded to go test -benchtime (e.g. 1x, 100ms)")
		version     = buildinfo.AddVersionFlag(fs)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(out, buildinfo.Summary("qbeep-bench"))
		return nil
	}
	names := splitSuites(*suitesFlag)
	if len(names) == 0 {
		return fmt.Errorf("no suites selected")
	}
	if *input != "" && len(names) != 1 {
		return fmt.Errorf("-input labels one suite; got -suites %q", *suitesFlag)
	}
	if *commit == "" {
		*commit = buildinfo.Read().ShortRevision()
	}
	if *date == "" {
		*date = time.Now().UTC().Format("2006-01-02")
	}
	if *threshold < 0 || *threshold >= 1 {
		return fmt.Errorf("threshold %v outside [0,1)", *threshold)
	}

	var regressed []string
	for _, name := range names {
		cmds, ok := suites[name]
		if !ok {
			known := make([]string, 0, len(suites))
			for k := range suites {
				known = append(known, k)
			}
			sort.Strings(known)
			return fmt.Errorf("unknown suite %q (have %s)", name, strings.Join(known, ", "))
		}
		parsed, err := collect(name, cmds, *input, *benchtime, out)
		if err != nil {
			return err
		}
		derived := benchparse.Ratios(parsed.Results)
		printSuite(out, name, parsed, derived)

		if *trajectory != "" {
			row := benchparse.Row{
				Commit:     *commit,
				Date:       *date,
				Suite:      name,
				Go:         parsed.Go,
				CPU:        parsed.CPU,
				Benchmarks: benchparse.EntriesFromResults(parsed.Results),
				Derived:    derived,
			}
			if err := appendRow(*trajectory, row); err != nil {
				return err
			}
			fmt.Fprintf(out, "recorded %s@%s into %s\n", name, *commit, *trajectory)
		}

		if *compare {
			basePath := filepath.Join(*baselineDir, "BENCH_"+name+".json")
			base, err := benchparse.LoadBaseline(basePath)
			if err != nil {
				return err
			}
			findings := benchparse.Compare(base, parsed.Results, *threshold)
			if len(findings) == 0 {
				return fmt.Errorf("suite %s: no derived invariant of %s was measurable — ran the wrong benchmarks?", name, basePath)
			}
			for _, f := range findings {
				verdict := "ok"
				if f.Regression {
					verdict = "REGRESSION"
					regressed = append(regressed, fmt.Sprintf("%s/%s", name, f.Key))
				}
				fmt.Fprintf(out, "compare %-40s baseline %8.2f  current %8.2f  %s\n",
					name+"/"+f.Key, f.Baseline, f.Current, verdict)
			}
		}
	}
	if *trajectory == "" {
		// Gate-only runs skip recording; remind the operator when the
		// checked-in trajectory has no row for this tree, so the history
		// BENCH_trajectory.json tells stays gap-free (make bench-record).
		warnMissingTrajectoryRows(out, filepath.Join(*baselineDir, "BENCH_trajectory.json"), names, *commit)
	}
	if len(regressed) > 0 {
		return fmt.Errorf("%d invariant(s) regressed past threshold: %s",
			len(regressed), strings.Join(regressed, ", "))
	}
	return nil
}

// warnMissingTrajectoryRows prints one warning per selected suite that
// has no trajectory row at commit. Purely advisory: the gate's verdict
// is unaffected, and an unreadable trajectory only warns once.
func warnMissingTrajectoryRows(out io.Writer, path string, suiteNames []string, commit string) {
	tr, err := benchparse.LoadTrajectory(path)
	if err != nil {
		fmt.Fprintf(out, "warning: cannot read %s: %v\n", path, err)
		return
	}
	have := map[string]bool{}
	for _, r := range tr.Rows {
		if r.Commit == commit {
			have[r.Suite] = true
		}
	}
	for _, name := range suiteNames {
		if !have[name] {
			fmt.Fprintf(out, "warning: %s has no %s row for commit %s — run `make bench-record` to keep the trajectory current\n",
				path, name, commit)
		}
	}
}

// collect produces one suite's parsed results, either from a saved
// transcript or by running the suite's go test invocations.
func collect(name string, cmds []suiteCmd, input, benchtime string, out io.Writer) (*benchparse.Output, error) {
	if input != "" {
		f, err := os.Open(input)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return benchparse.Parse(f)
	}
	merged := &benchparse.Output{}
	for _, c := range cmds {
		args := []string{"test", "-run", "^$", "-bench", c.bench, "-benchmem"}
		if benchtime != "" {
			args = append(args, "-benchtime", benchtime)
		}
		args = append(args, c.pkg)
		fmt.Fprintf(out, "running: go %s\n", strings.Join(args, " "))
		cmd := exec.Command("go", args...)
		cmd.Stderr = os.Stderr
		raw, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("suite %s: go test %s: %w\n%s", name, c.pkg, err, raw)
		}
		parsed, err := benchparse.Parse(strings.NewReader(string(raw)))
		if err != nil {
			return nil, fmt.Errorf("suite %s: %w", name, err)
		}
		merged.Results = append(merged.Results, parsed.Results...)
		if merged.Go == "" {
			merged.Go = parsed.Go
		}
		if merged.CPU == "" {
			merged.CPU = parsed.CPU
		}
	}
	return merged, nil
}

// appendRow loads, appends (idempotently) and saves the trajectory.
func appendRow(path string, row benchparse.Row) error {
	tr, err := benchparse.LoadTrajectory(path)
	if err != nil {
		return err
	}
	if tr.Description == "" {
		tr.Description = "Benchmark trajectory, one row per (commit, suite), appended by cmd/qbeep-bench. Rows are ordered by date, suite, commit; re-running at a commit replaces its row. Derived ratios are the machine-stable signal; ns_op is advisory."
	}
	tr.Append(row)
	return tr.Save(path)
}

func printSuite(out io.Writer, name string, parsed *benchparse.Output, derived map[string]float64) {
	fmt.Fprintf(out, "suite %s: %d benchmarks\n", name, len(parsed.Results))
	for _, r := range parsed.Results {
		if r.AllocsOp >= 0 {
			fmt.Fprintf(out, "  %-48s %14.0f ns/op %10d B/op %8d allocs/op\n", r.Name, r.NsOp, r.BOp, r.AllocsOp)
		} else {
			fmt.Fprintf(out, "  %-48s %14.0f ns/op\n", r.Name, r.NsOp)
		}
	}
	keys := make([]string, 0, len(derived))
	for k := range derived {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(out, "  derived %-42s %12.2f\n", k, derived[k])
	}
}

func splitSuites(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
