package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"qbeep/internal/benchparse"
)

// healthyTranscript reproduces the sim baseline's ratios (fused ≈ 3.65×
// naive); regressedTranscript collapses the fusion win to ≈ 1.2×.
const healthyTranscript = `goos: linux
goarch: amd64
cpu: Test CPU
BenchmarkRun-4               	     902	   1180190 ns/op	  361829 B/op	     107 allocs/op
BenchmarkRunUnfused-4        	     524	   2194326 ns/op	  345892 B/op	     187 allocs/op
BenchmarkNaiveRun-4          	     278	   4307752 ns/op	  262195 B/op	       2 allocs/op
BenchmarkProbabilitiesInto-4 	  112064	     10631 ns/op	       0 B/op	       0 allocs/op
PASS
`

const regressedTranscript = `goos: linux
goarch: amd64
cpu: Test CPU
BenchmarkRun-4               	     300	   3580000 ns/op	  361829 B/op	     107 allocs/op
BenchmarkRunUnfused-4        	     524	   2194326 ns/op	  345892 B/op	     187 allocs/op
BenchmarkNaiveRun-4          	     278	   4307752 ns/op	  262195 B/op	       2 allocs/op
BenchmarkProbabilitiesInto-4 	  112064	     10631 ns/op	       0 B/op	       0 allocs/op
PASS
`

// setup writes a transcript and the real BENCH_sim.json baseline into a
// temp dir and returns (dir, transcriptPath).
func setup(t *testing.T, transcript string) (string, string) {
	t.Helper()
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(in, []byte(transcript), 0o644); err != nil {
		t.Fatal(err)
	}
	base, err := os.ReadFile(filepath.Join("..", "..", "BENCH_sim.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_sim.json"), base, 0o644); err != nil {
		t.Fatal(err)
	}
	return dir, in
}

func TestCompareHealthyPasses(t *testing.T) {
	dir, in := setup(t, healthyTranscript)
	var out bytes.Buffer
	err := run([]string{
		"-suites", "sim", "-input", in, "-compare",
		"-baseline-dir", dir, "-trajectory", "",
		"-commit", "test", "-date", "2026-08-08",
	}, &out)
	if err != nil {
		t.Fatalf("healthy compare failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "fused_speedup_vs_naive") {
		t.Fatalf("compare output missing ratio lines:\n%s", out.String())
	}
}

// TestCompareSyntheticRegressionExitsNonZero is the gate's acceptance
// check: an injected fusion-ratio collapse must fail the run (main turns
// the error into exit status 1).
func TestCompareSyntheticRegressionExitsNonZero(t *testing.T) {
	dir, in := setup(t, regressedTranscript)
	var out bytes.Buffer
	err := run([]string{
		"-suites", "sim", "-input", in, "-compare",
		"-baseline-dir", dir, "-trajectory", "",
		"-commit", "test", "-date", "2026-08-08",
	}, &out)
	if err == nil {
		t.Fatalf("regressed compare passed:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "sim/fused_speedup_vs_naive") {
		t.Fatalf("error does not name the regressed invariant: %v", err)
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("compare output missing verdict:\n%s", out.String())
	}
}

func TestTrajectoryRecording(t *testing.T) {
	dir, in := setup(t, healthyTranscript)
	traj := filepath.Join(dir, "BENCH_trajectory.json")
	args := []string{
		"-suites", "sim", "-input", in,
		"-baseline-dir", dir, "-trajectory", traj,
		"-commit", "abc123", "-date", "2026-08-08",
	}
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	// Re-running at the same commit replaces the row, not duplicates it.
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	tr, err := benchparse.LoadTrajectory(traj)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(tr.Rows))
	}
	row := tr.Rows[0]
	if row.Commit != "abc123" || row.Suite != "sim" || row.Date != "2026-08-08" {
		t.Fatalf("row = %+v", row)
	}
	if len(row.Benchmarks) != 4 || row.Derived["fused_speedup_vs_naive"] == 0 {
		t.Fatalf("row content = %+v", row)
	}
}

// TestMissingTrajectoryRowWarns: gate-only runs (-trajectory ”) warn
// when the checked-in trajectory lacks a row for the current commit,
// and stay quiet once the row exists.
func TestMissingTrajectoryRowWarns(t *testing.T) {
	dir, in := setup(t, healthyTranscript)
	gateArgs := []string{
		"-suites", "sim", "-input", in, "-compare",
		"-baseline-dir", dir, "-trajectory", "",
		"-commit", "abc123", "-date", "2026-08-08",
	}
	var out bytes.Buffer
	if err := run(gateArgs, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no") || !strings.Contains(out.String(), "row for commit abc123") {
		t.Fatalf("expected missing-row warning:\n%s", out.String())
	}

	// Record a row at that commit, then the warning disappears.
	var rec bytes.Buffer
	if err := run([]string{
		"-suites", "sim", "-input", in,
		"-baseline-dir", dir, "-trajectory", filepath.Join(dir, "BENCH_trajectory.json"),
		"-commit", "abc123", "-date", "2026-08-08",
	}, &rec); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run(gateArgs, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "row for commit abc123") {
		t.Fatalf("warning persisted after recording:\n%s", out.String())
	}
}

func TestBadInvocations(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-suites", "nope", "-trajectory", ""}, &out); err == nil {
		t.Fatal("unknown suite accepted")
	}
	if err := run([]string{"-suites", "core,sim", "-input", "x.txt"}, &out); err == nil {
		t.Fatal("-input with two suites accepted")
	}
	if err := run([]string{"-suites", "sim", "-threshold", "1.5"}, &out); err == nil {
		t.Fatal("threshold 1.5 accepted")
	}
	if err := run([]string{"-version"}, &out); err != nil || !strings.Contains(out.String(), "qbeep-bench version") {
		t.Fatalf("-version: %v, %q", err, out.String())
	}
}
