// Command qbeep-trace analyzes the NDJSON span streams written by the
// pipeline binaries' -trace flag (cmd/qbeep, qbeep-sim,
// qbeep-experiments). It reconstructs the trace forest and reports
// per-name aggregates plus the critical path of the slowest trace:
//
//	qbeep -counts counts.json -qasm bv.qasm -trace run.ndjson ...
//	qbeep-trace run.ndjson
//
// With -flame it prints an indented flame view of the slowest trace; with
// -chrome it instead emits Chrome trace-event JSON for chrome://tracing
// or Perfetto. With -hotspots it ranks span names by self-CPU and by
// self-allocations (resource-attributed recordings; wall-time-only
// streams fall back to a self-time ranking).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"qbeep/internal/buildinfo"
	"qbeep/internal/tracefile"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "qbeep-trace:", err)
		os.Exit(1)
	}
}

// run's named error lets the deferred output-file close surface its
// error when everything else succeeded.
func run() (err error) {
	var (
		chrome   = flag.Bool("chrome", false, "emit Chrome trace-event JSON instead of the report")
		flame    = flag.Bool("flame", false, "also print a text flame view of the slowest trace")
		hotspots = flag.Bool("hotspots", false, "rank span names by self-CPU and self-allocations instead of the report")
		top      = flag.Int("top", 10, "rows per -hotspots table (<= 0 for all)")
		outPath  = flag.String("o", "", "output path (default stdout)")
		version  = buildinfo.AddVersionFlag(nil)
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Summary("qbeep-trace"))
		return nil
	}
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: qbeep-trace [-chrome|-flame|-hotspots] [-o out] trace.ndjson ('-' = stdin)")
	}
	in := io.Reader(os.Stdin)
	if path := flag.Arg(0); path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	forest, err := tracefile.Parse(in)
	if err != nil {
		return err
	}
	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, oerr := os.Create(*outPath)
		if oerr != nil {
			return oerr
		}
		defer func() {
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}()
		out = f
	}
	if *chrome {
		return tracefile.WriteChrome(out, forest)
	}
	if *hotspots {
		return tracefile.WriteHotspots(out, forest, *top)
	}
	if err := tracefile.WriteReport(out, forest); err != nil {
		return err
	}
	if *flame {
		if slow := forest.Slowest(); slow != nil {
			fmt.Fprintln(out)
			if err := tracefile.WriteFlame(out, slow); err != nil {
				return err
			}
		}
	}
	return err
}
