package main

import (
	"path/filepath"
	"strings"
	"testing"

	"qbeep/internal/runledger"
)

// writeLedger creates an NDJSON ledger of reps records per backend,
// with per-backend λ and quality values offset by scale (1 = the
// fixture baseline).
func writeLedger(t *testing.T, path string, reps int, scale float64) {
	t.Helper()
	w, err := runledger.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	backends := []struct {
		name   string
		lambda float64
	}{{"istanbul", 1.2}, {"almaden", 0.9}}
	for i := 0; i < reps; i++ {
		for _, b := range backends {
			rec := runledger.Record{
				Tool:        "qbeep-experiments",
				Backend:     b.name,
				Circuit:     "bv_8",
				CircuitHash: runledger.HashBytes([]byte("bv_8")),
				Lambda:      b.lambda * scale,
				Shots:       1024,
				Stages:      []runledger.Stage{{Name: "mitigate", WallS: 0.01}},
				Quality: runledger.Quality{
					HellingerShift:     0.2 * scale,
					HellingerMitigated: 0.1 * scale,
					FidelityMitigated:  0.9 / scale,
					PSTRaw:             0.5,
					PSTMitigated:       0.7 / scale,
					PSTImprovement:     1.4 / scale,
					PosteriorEntropy:   1.1,
					Iterations:         20,
				},
			}
			if err := w.Append(&rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestAggregateOutput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "runs.ndjson")
	writeLedger(t, path, 3, 1)

	var out strings.Builder
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"6 records, 2 group(s)", "group almaden", "group istanbul", "lambda", "hellinger_shift", "mitigate_wall_s"} {
		if !strings.Contains(got, want) {
			t.Fatalf("aggregate output missing %q:\n%s", want, got)
		}
	}

	// Filtered to one backend, grouped per circuit.
	out.Reset()
	if err := run([]string{"-backend", "istanbul", "-group", "circuit", path}, &out); err != nil {
		t.Fatal(err)
	}
	got = out.String()
	if !strings.Contains(got, "3 records, 1 group(s)") || !strings.Contains(got, "group bv_8") {
		t.Fatalf("filtered aggregate wrong:\n%s", got)
	}
	if strings.Contains(got, "almaden") {
		t.Fatalf("-backend filter leaked the other backend:\n%s", got)
	}

	// -group all collapses to a single bucket.
	out.Reset()
	if err := run([]string{"-group", "all", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "group (all)") {
		t.Fatalf("-group all output wrong:\n%s", out.String())
	}
}

func TestFilterToNothingErrors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "runs.ndjson")
	writeLedger(t, path, 1, 1)
	var out strings.Builder
	if err := run([]string{"-backend", "nope", path}, &out); err == nil {
		t.Fatal("empty filtered ledger must error")
	}
}

func TestWriteBaselineThenGate(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "runs.ndjson")
	writeLedger(t, path, 4, 1)
	basePath := filepath.Join(dir, "QUALITY_baseline.json")

	var out strings.Builder
	if err := run([]string{"-write-baseline", basePath, "-commit", "abc123", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wrote baseline") {
		t.Fatalf("write-baseline output: %s", out.String())
	}
	base, err := runledger.LoadBaseline(basePath)
	if err != nil {
		t.Fatal(err)
	}
	if base.Commit != "abc123" || len(base.Groups) != 3 {
		t.Fatalf("baseline = %+v", base)
	}

	// The same ledger gates cleanly against its own baseline.
	out.Reset()
	if err := run([]string{"-gate", "-baseline", basePath, path}, &out); err != nil {
		t.Fatalf("self-gate failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "quality gate passed") {
		t.Fatalf("gate output: %s", out.String())
	}

	// A regressed ledger (λ drifted up, fidelity down) trips the gate.
	regPath := filepath.Join(dir, "regressed.ndjson")
	writeLedger(t, regPath, 4, 1.3)
	out.Reset()
	err = run([]string{"-gate", "-baseline", basePath, regPath}, &out)
	if err == nil {
		t.Fatalf("regressed ledger must fail the gate:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "regressed against") {
		t.Fatalf("gate error: %v", err)
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("gate output lacks REGRESSION rows:\n%s", out.String())
	}
}

func TestDriftMode(t *testing.T) {
	dir := t.TempDir()

	// Stationary ledger: identical records, no drift.
	flat := filepath.Join(dir, "flat.ndjson")
	writeLedger(t, flat, 40, 1)
	var out strings.Builder
	if err := run([]string{"-drift", flat, flat}, &out); err != nil {
		t.Fatalf("stationary series alarmed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "ok") {
		t.Fatalf("drift output: %s", out.String())
	}

	// A ledger whose tail steps to a higher λ must alarm: the warmup
	// freezes the flat prefix, the shifted tail trips the charts.
	w, err := runledger.Create(filepath.Join(dir, "step.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		lam := 1.2
		if i >= 60 {
			lam = 1.5
		}
		rec := runledger.Record{
			Backend: "istanbul",
			Lambda:  lam,
			Quality: runledger.Quality{HellingerShift: 0.2},
		}
		if err := w.Append(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	err = run([]string{"-drift", filepath.Join(dir, "step.ndjson")}, &out)
	if err == nil {
		t.Fatalf("step drift not detected:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "drift detected") || !strings.Contains(out.String(), "DRIFT") {
		t.Fatalf("drift failure shape: err=%v out=%s", err, out.String())
	}
	// The stationary hellinger_shift series must not be implicated.
	if strings.Contains(err.Error(), "hellinger_shift") {
		t.Fatalf("hellinger_shift wrongly flagged: %v", err)
	}
}

func TestUsageErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Fatal("no ledger files must error")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "runs.ndjson")
	writeLedger(t, path, 1, 1)
	if err := run([]string{"-group", "bogus", path}, &out); err == nil {
		t.Fatal("unknown -group must error")
	}
	if err := run([]string{"-gate", "-baseline", filepath.Join(dir, "missing.json"), path}, &out); err == nil {
		t.Fatal("missing baseline must error")
	}
}
