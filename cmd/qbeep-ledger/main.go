// Command qbeep-ledger analyzes the NDJSON run ledgers written by
// qbeep, qbeep-sim and qbeep-experiments under -run-ledger: it filters
// and aggregates quality metrics per backend/circuit, watches the λ and
// Hellinger-shift series for calibration drift (EWMA + CUSUM control
// charts), and gates a fresh ledger against the pinned
// QUALITY_baseline.json the same way cmd/qbeep-bench gates benchmark
// ratios (DESIGN.md §16):
//
//	qbeep-ledger runs.ndjson                       # aggregate per backend
//	qbeep-ledger -circuit bv_8 -group circuit *.ndjson
//	qbeep-ledger -drift runs.ndjson                # control-chart the series
//	qbeep-ledger -gate -baseline QUALITY_baseline.json runs.ndjson
//	qbeep-ledger -write-baseline QUALITY_baseline.json runs.ndjson
//
// -gate and -drift exit non-zero on a tripped gate or chart, so both
// slot directly into CI (make quality-gate).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"qbeep/internal/buildinfo"
	"qbeep/internal/runledger"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "qbeep-ledger:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("qbeep-ledger", flag.ContinueOnError)
	var (
		backend       = fs.String("backend", "", "only records from this backend")
		circuit       = fs.String("circuit", "", "only records matching this circuit name or hash")
		figure        = fs.String("figure", "", "only records tagged with this experiment figure")
		tool          = fs.String("tool", "", "only records from this tool (qbeep, qbeep-sim, qbeep-experiments)")
		group         = fs.String("group", "backend", "aggregation key: backend, circuit, backend-circuit, or all")
		drift         = fs.Bool("drift", false, "run EWMA+CUSUM drift detection; exit non-zero when a chart alarms")
		driftMetrics  = fs.String("drift-metrics", "lambda,hellinger_shift", "comma-separated metrics the -drift charts watch")
		gate          = fs.Bool("gate", false, "compare against -baseline; exit non-zero past threshold")
		baselinePath  = fs.String("baseline", "QUALITY_baseline.json", "baseline document for -gate")
		threshold     = fs.Float64("threshold", 0, "relative gate tolerance (0 = the baseline's own)")
		writeBaseline = fs.String("write-baseline", "", "aggregate the ledger into a new baseline at this path")
		commit        = fs.String("commit", "", "commit recorded in a written baseline (default: build VCS revision)")
		version       = buildinfo.AddVersionFlag(fs)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(out, buildinfo.Summary("qbeep-ledger"))
		return nil
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("no ledger files given (usage: qbeep-ledger [flags] run.ndjson...)")
	}
	var recs []runledger.Record
	for _, path := range fs.Args() {
		rs, err := runledger.ReadFile(path)
		if err != nil {
			return err
		}
		recs = append(recs, rs...)
	}
	recs = runledger.Filter{Backend: *backend, Circuit: *circuit, Figure: *figure, Tool: *tool}.Apply(recs)
	if len(recs) == 0 {
		return runledger.ErrEmpty
	}

	switch {
	case *writeBaseline != "":
		if *commit == "" {
			*commit = buildinfo.Read().ShortRevision()
		}
		base, err := runledger.BuildBaseline(recs, *commit)
		if err != nil {
			return err
		}
		if err := base.SaveBaseline(*writeBaseline); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote baseline %s (%d records, %d groups, commit %s)\n",
			*writeBaseline, len(recs), len(base.Groups), *commit)
		return nil
	case *gate:
		base, err := runledger.LoadBaseline(*baselinePath)
		if err != nil {
			return err
		}
		return printGate(out, recs, base, *threshold, *baselinePath)
	case *drift:
		return printDrift(out, recs, splitList(*driftMetrics))
	default:
		return printAggregate(out, recs, *group)
	}
}

// printAggregate renders the per-group metric summaries as one table
// row per (group, metric).
func printAggregate(out io.Writer, recs []runledger.Record, group string) error {
	var by runledger.GroupBy
	switch group {
	case "backend":
		by = runledger.ByBackend
	case "circuit":
		by = runledger.ByCircuit
	case "backend-circuit":
		by = runledger.ByBackendCircuit
	case "all":
		// A single bucket: ByBackend over records stripped of their key
		// would distort the data; instead aggregate with every record
		// sharing the empty key.
		all := make([]runledger.Record, len(recs))
		copy(all, recs)
		for i := range all {
			all[i].Backend = ""
		}
		groups := runledger.Aggregate(all, runledger.ByBackend)
		printGroups(out, len(recs), groups)
		return nil
	default:
		return fmt.Errorf("unknown -group %q (backend, circuit, backend-circuit, all)", group)
	}
	printGroups(out, len(recs), runledger.Aggregate(recs, by))
	return nil
}

func printGroups(out io.Writer, total int, groups []runledger.Group) {
	fmt.Fprintf(out, "%d records, %d group(s)\n", total, len(groups))
	for _, g := range groups {
		fmt.Fprintf(out, "\ngroup %s  (n=%d)\n", groupLabel(g.Backend, g.Circuit), g.N)
		for _, m := range runledger.MetricNames {
			s, ok := g.Metrics[m]
			if !ok {
				continue
			}
			fmt.Fprintf(out, "  %-22s n=%-4d mean %12.6f  p50 %12.6f  p95 %12.6f  min %12.6f  max %12.6f\n",
				m, s.N, s.Mean, s.P50, s.P95, s.Min, s.Max)
		}
	}
}

func groupLabel(backend, circuit string) string {
	switch {
	case backend != "" && circuit != "":
		return backend + "/" + circuit
	case backend != "":
		return backend
	case circuit != "":
		return circuit
	}
	return "(all)"
}

// printDrift control-charts each requested metric, overall and per
// backend, and fails when any chart alarms.
func printDrift(out io.Writer, recs []runledger.Record, metrics []string) error {
	if len(metrics) == 0 {
		return fmt.Errorf("no -drift-metrics selected")
	}
	backends := map[string]bool{}
	for _, r := range recs {
		if r.Backend != "" {
			backends[r.Backend] = true
		}
	}
	names := make([]string, 0, len(backends)+1)
	names = append(names, "") // overall series first
	for b := range backends {
		names = append(names, b)
	}
	sort.Strings(names[1:])

	var tripped []string
	for _, b := range names {
		sub := runledger.Filter{Backend: b}.Apply(recs)
		for _, m := range metrics {
			series := runledger.Series(sub, m)
			res := runledger.Detect(series, runledger.DriftConfig{})
			label := groupLabel(b, "") + "/" + m
			if !res.Drifted() {
				fmt.Fprintf(out, "drift %-40s n=%-4d warmup=%-3d mu0=%.6f sigma0=%.6f  ok\n",
					label, res.N, res.Warmup, res.Mean, res.Std)
				continue
			}
			tripped = append(tripped, label)
			for _, a := range res.Alarms {
				fmt.Fprintf(out, "drift %-40s n=%-4d warmup=%-3d mu0=%.6f sigma0=%.6f  DRIFT %s at sample %d (stat %.4f, limit %.4f)\n",
					label, res.N, res.Warmup, res.Mean, res.Std, a.Detector, a.Index, a.Stat, a.Limit)
			}
		}
	}
	if len(tripped) > 0 {
		return fmt.Errorf("drift detected on %d series: %s", len(tripped), strings.Join(tripped, ", "))
	}
	return nil
}

// printGate renders every baseline comparison and fails when one
// tripped.
func printGate(out io.Writer, recs []runledger.Record, base runledger.Baseline, threshold float64, baselinePath string) error {
	findings, failed, err := runledger.CompareBaseline(recs, base, threshold)
	if err != nil {
		return err
	}
	var failures []string
	for _, f := range findings {
		verdict := "ok"
		if f.Failed {
			verdict = "REGRESSION"
			failures = append(failures, groupLabel(f.Backend, f.Circuit)+"/"+f.Metric)
		}
		fmt.Fprintf(out, "gate %-44s baseline %12.6f  current %12.6f  delta %+7.2f%%  %s\n",
			groupLabel(f.Backend, f.Circuit)+"/"+f.Metric, f.Baseline, f.Current, 100*f.Delta, verdict)
	}
	if failed {
		return fmt.Errorf("%d quality metric(s) regressed against %s: %s",
			len(failures), baselinePath, strings.Join(failures, ", "))
	}
	fmt.Fprintf(out, "quality gate passed: %d comparison(s) within tolerance of %s\n", len(findings), baselinePath)
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
