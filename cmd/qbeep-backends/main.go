// Command qbeep-backends inspects the synthetic backend catalog.
//
// Usage:
//
//	qbeep-backends                    # table of all backends
//	qbeep-backends -export istanbul   # one backend as JSON (wire format)
//	qbeep-backends -export all -o dir # every backend to dir/<name>.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"qbeep"
	"qbeep/internal/buildinfo"
	"qbeep/internal/device"
	"qbeep/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "qbeep-backends:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		export   = flag.String("export", "", "backend name to export as JSON, or 'all'")
		outDir   = flag.String("o", ".", "output directory for -export all")
		logFlags = obs.AddLogFlags(nil)
		version  = buildinfo.AddVersionFlag(nil)
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Summary("qbeep-backends"))
		return nil
	}
	if err := logFlags.Apply(os.Stderr); err != nil {
		return err
	}

	if *export == "" {
		infos, err := qbeep.Backends()
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %-16s %7s %12s %12s %10s\n",
			"name", "architecture", "qubits", "meanT1(us)", "meanT2(us)", "readout")
		for _, b := range infos {
			fmt.Printf("%-12s %-16s %7d %12.1f %12.1f %9.2f%%\n",
				b.Name, b.Architecture, b.Qubits, b.MeanT1*1e6, b.MeanT2*1e6, b.MeanReadout*100)
		}
		return nil
	}

	backends, err := device.Catalog()
	if err != nil {
		return err
	}
	ion, err := device.IonBackend()
	if err != nil {
		return err
	}
	backends = append(backends, ion)

	if *export == "all" {
		for _, b := range backends {
			data, err := json.MarshalIndent(b, "", "  ")
			if err != nil {
				return err
			}
			path := filepath.Join(*outDir, b.Name+".json")
			if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Println("wrote", path)
		}
		return nil
	}

	for _, b := range backends {
		if b.Name == *export {
			data, err := json.MarshalIndent(b, "", "  ")
			if err != nil {
				return err
			}
			_, err = fmt.Println(string(data))
			return err
		}
	}
	return fmt.Errorf("unknown backend %q", *export)
}
