package qbeep_test

import (
	"fmt"
	"sort"

	"qbeep"
)

// The canonical post-processing flow: estimate λ from the circuit and the
// backend calibration, then reflow the raw counts.
func ExampleMitigate() {
	raw := qbeep.Counts{
		"1011": 3600, // the true answer
		"1010": 160,  // distance-1 errors
		"1001": 150,
		"0011": 140,
		"0110": 46, // a distance-2 error
	}
	mitigated, err := qbeep.Mitigate(raw, 0.8, qbeep.NewOptions())
	if err != nil {
		fmt.Println(err)
		return
	}
	before, _ := qbeep.PST(raw, "1011")
	after, _ := qbeep.PST(mitigated, "1011")
	fmt.Printf("PST %.3f -> %.3f\n", before, after)
	// Output:
	// PST 0.879 -> 0.988
}

// Estimating λ needs only the circuit and the calibration snapshot — it
// never sees measurement data.
func ExampleEstimateLambdaQASM() {
	src, err := qbeep.BernsteinVaziraniQASM("1011")
	if err != nil {
		fmt.Println(err)
		return
	}
	lambda, err := qbeep.EstimateLambdaQASM(src, "galway")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("lambda is positive: %v\n", lambda.Total() > 0)
	fmt.Printf("terms: T1+T2+gates = total: %v\n",
		lambda.T1+lambda.T2+lambda.Gates == lambda.Total())
	// Output:
	// lambda is positive: true
	// terms: T1+T2+gates = total: true
}

// The backend catalog stands in for the paper's 16-machine IBMQ fleet.
func ExampleBackends() {
	infos, err := qbeep.Backends()
	if err != nil {
		fmt.Println(err)
		return
	}
	names := make([]string, 0, 3)
	for _, b := range infos {
		if b.Qubits >= 100 || b.Architecture == "trapped-ion" {
			names = append(names, fmt.Sprintf("%s(%d)", b.Name, b.Qubits))
		}
	}
	sort.Strings(names)
	fmt.Println(names)
	// Output:
	// [ion-5(5) oslo2(110) pinnacle(129)]
}

// Readout correction composes with Q-BEEP: invert the measurement
// confusion first, then mitigate the circuit-level structure.
func ExampleCorrectReadout() {
	raw := qbeep.Counts{"11": 810, "10": 95, "01": 90, "00": 5}
	corrected, err := qbeep.CorrectReadout(raw, []float64{0.1, 0.1})
	if err != nil {
		fmt.Println(err)
		return
	}
	p, _ := qbeep.PST(corrected, "11")
	fmt.Printf("P(11) corrected above 0.98: %v\n", p > 0.98)
	// Output:
	// P(11) corrected above 0.98: true
}
