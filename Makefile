# Q-BEEP build / verification targets. `make ci` is what a pipeline runs.

GO ?= go

.PHONY: all build vet test race bench-smoke ci

all: build

build:
	$(GO) build ./...

# vet = go vet + gofmt drift check (fails listing any unformatted file).
vet:
	$(GO) vet ./...
	@files="$$(gofmt -l .)"; \
	if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; \
	fi

test:
	$(GO) test ./...

# race covers the packages with real concurrency or lock-cheap atomics:
# the obs registry/sinks, the parallel fan-out, and the mitigation core
# they instrument.
race:
	$(GO) test -race ./internal/obs ./internal/par ./internal/core

# bench-smoke: one short pass over the mitigation hot path to catch
# gross regressions (the observability layer must stay ~free when off).
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkMitigateThroughput' -benchtime 1x .

ci: vet test race bench-smoke
