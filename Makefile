# Q-BEEP build / verification targets. `make ci` is what a pipeline runs.

GO ?= go

.PHONY: all build vet lint gcfacts test race bench-smoke bench-core bench-sim bench-gate bench-record fuzz-smoke obs-smoke quality-gate quality-baseline ci

# Extra worker counts the determinism tests sweep on top of their
# built-in {1, 4, GOMAXPROCS} matrix. Comma-separated. The matrix
# helper is replicated per kernel package as workerMatrix in
# internal/core/equivalence_test.go, internal/statevector/kernels_test.go,
# internal/densitymatrix/workers_test.go, and
# internal/noise/trajectory_determinism_test.go.
QBEEP_TEST_WORKERS ?= 2,3,7,16

all: build

build:
	$(GO) build ./...

# vet = go vet + gofmt drift check (fails listing any unformatted file).
vet:
	$(GO) vet ./...
	@files="$$(gofmt -l .)"; \
	if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; \
	fi

# lint = the qbeep-lint multichecker (internal/analysis, DESIGN.md §9)
# plus the gcfacts compiler-fact gate (DESIGN.md §15): nodeterm, nogo,
# spanend, floatcmp, ctxflow, poolsafe, directive over every package,
# then escape/inline fact enforcement for //qbeep:allocfree /
# //qbeep:noescape / //qbeep:mustinline annotations. Exits non-zero on
# any finding; suppress deliberate sites with //qbeep:allow-<check>.
# Wall time is printed so lint-cost regressions show up in CI logs.
lint:
	@start=$$(date +%s); \
	$(GO) run ./cmd/qbeep-lint ./... || exit 1; \
	echo "lint: $$(( $$(date +%s) - start ))s"

# gcfacts alone (the compile-heavy half of lint): used by the standalone
# CI job that is required on main but warn-only on pull requests.
gcfacts:
	$(GO) run ./cmd/qbeep-lint -only gcfacts ./...

test:
	$(GO) test ./...

# race covers the packages with real concurrency or lock-cheap atomics:
# the obs registry/sinks, the parallel fan-out, the mitigation core, the
# sharded simulation kernels (statevector, density matrix, trajectory
# sampler) — with the widened worker-count matrix so deterministic merges
# and amplitude shards are raced under uneven fan-outs too — plus the
# experiment runners and the transpiler, whose figure pipelines fan out
# through par.
race:
	QBEEP_TEST_WORKERS=$(QBEEP_TEST_WORKERS) $(GO) test -race ./internal/obs ./internal/par ./internal/core ./internal/statevector ./internal/densitymatrix ./internal/noise ./internal/experiments ./internal/transpile

# bench-smoke: one short pass over the mitigation hot path to catch
# gross regressions (the observability layer must stay ~free when off).
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkMitigateThroughput' -benchtime 1x .

# bench-core: the state-graph engine microbenchmarks (build vs the
# brute-force reference, allocation-free Step) plus the par dispatch
# bench. BENCH_core.json holds the recorded baseline.
bench-core:
	$(GO) test -run '^$$' -bench 'StateGraph|BenchmarkMitigate$$' -benchmem ./internal/core
	$(GO) test -run '^$$' -bench 'ForEachTinyTasks' -benchmem ./internal/par

# bench-sim: the simulation kernel engine — fused vs unfused vs the
# retained naiveApply oracle on the 14-qubit QAOA workload, the zero-copy
# probability path, the density-matrix hot loops, and the parallel
# trajectory sampler. BENCH_sim.json holds the recorded baseline.
bench-sim:
	$(GO) test -run '^$$' -bench 'BenchmarkRun$$|BenchmarkRunProgram$$|BenchmarkRunUnfused$$|BenchmarkNaiveRun$$|BenchmarkProbabilitiesInto$$' -benchmem ./internal/statevector
	$(GO) test -run '^$$' -bench 'BenchmarkDensityEvolve$$' -benchmem ./internal/densitymatrix
	$(GO) test -run '^$$' -bench 'BenchmarkTrajectory$$|BenchmarkTrajectoryPerGate$$' -benchmem ./internal/noise

# bench-gate: the regression gate. cmd/qbeep-bench runs both suites at a
# short benchtime and recomputes the derived ratio invariants
# (fused/naive, engine/brute, zero-alloc hot loops) against the
# BENCH_*.json baselines; a ratio collapsing past the threshold fails
# the target. Ratios cancel machine speed, so the short benchtime and
# shared runners stay inside the 25% default threshold. Trajectory
# recording is disabled here — CI working trees should not dirty the
# checked-in BENCH_trajectory.json.
bench-gate:
	$(GO) run ./cmd/qbeep-bench -suites core,sim -compare -trajectory '' -benchtime 100ms -commit "$$(git rev-parse --short HEAD)"

# bench-record: refresh BENCH_trajectory.json with one row per suite at
# the current commit (idempotent: re-running replaces the rows).
bench-record:
	$(GO) run ./cmd/qbeep-bench -suites core,sim -commit "$$(git rev-parse --short HEAD)"

# fuzz-smoke: a few seconds on each native fuzz target — enough to
# re-check the seed corpus plus a short random walk on every commit.
# Longer fuzzing sessions run the same targets with a bigger -fuzztime.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzParse$$' -fuzztime 5s ./internal/qasm
	$(GO) test -run '^$$' -fuzz '^FuzzParseQASM$$' -fuzztime 5s ./internal/qasm
	$(GO) test -run '^$$' -fuzz '^FuzzDistFromCounts$$' -fuzztime 5s ./internal/bitstring
	$(GO) test -run '^$$' -fuzz '^FuzzCompileReplay$$' -fuzztime 5s ./internal/statevector

# obs-smoke: end-to-end observability check. The built qbeep-trace
# analyzes the golden pipeline fixture (aggregate table, critical path,
# Chrome export), then scripts/obssmoke scrapes /healthz and /metrics
# from a throwaway debug server on an ephemeral port.
obs-smoke:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/qbeep-trace ./cmd/qbeep-trace; \
	$$tmp/qbeep-trace internal/tracefile/testdata/pipeline.ndjson | tee $$tmp/report.txt; \
	grep -q 'critical path (trace 1' $$tmp/report.txt; \
	grep -q 'qbeep.pipeline' $$tmp/report.txt; \
	$$tmp/qbeep-trace -chrome -o $$tmp/trace.json internal/tracefile/testdata/pipeline.ndjson; \
	grep -q 'traceEvents' $$tmp/trace.json; \
	$$tmp/qbeep-trace -hotspots internal/tracefile/testdata/resource.ndjson | tee $$tmp/hotspots.txt; \
	grep -q 'hotspots by self-CPU' $$tmp/hotspots.txt; \
	grep -q 'hotspots by self-allocations' $$tmp/hotspots.txt; \
	grep -q 'adaptive early exit: 17 flow iterations saved' $$tmp/hotspots.txt; \
	$(GO) run ./scripts/obssmoke

# quality-gate: the mitigation-quality regression gate (DESIGN.md §16).
# A small deterministic slice of the Fig. 7 experiment runs with
# -run-ledger, then cmd/qbeep-ledger compares the per-backend quality
# means (λ, Hellinger shift, fidelity, PST) against the pinned
# QUALITY_baseline.json. Unlike bench-gate's wall-clock ratios, every
# gated metric is a seed-deterministic model output, so any delta is a
# real behavioral change, not machine noise.
quality-gate:
	@set -e; rm -rf .quality-gate; mkdir -p .quality-gate; \
	$(GO) run ./cmd/qbeep-experiments -fig 7 -scale 0.05 -shots 1024 \
		-run-ledger .quality-gate/runs.ndjson -trace .quality-gate/trace.ndjson > .quality-gate/stdout.txt; \
	$(GO) run ./cmd/qbeep-ledger -gate -baseline QUALITY_baseline.json .quality-gate/runs.ndjson

# quality-baseline: regenerate QUALITY_baseline.json from the same
# workload. Run after a deliberate quality-affecting change, inspect the
# diff, and commit the result alongside the change that moved it.
quality-baseline:
	@set -e; rm -rf .quality-gate; mkdir -p .quality-gate; \
	$(GO) run ./cmd/qbeep-experiments -fig 7 -scale 0.05 -shots 1024 -run-ledger .quality-gate/runs.ndjson > .quality-gate/stdout.txt; \
	$(GO) run ./cmd/qbeep-ledger -write-baseline QUALITY_baseline.json -commit "$$(git rev-parse --short HEAD)" .quality-gate/runs.ndjson

ci: vet lint test race bench-smoke obs-smoke bench-gate quality-gate
