package qasm

import (
	"strings"
	"testing"
)

// FuzzParse hardens the OpenQASM parser against malformed input: it must
// never panic, and any program it accepts must re-serialize and re-parse
// to the same gate count (a parse/print fixed point).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n",
		"// name\nqreg q[3];\nrz(pi/2) q[1];\nbarrier q[0],q[1];\nmeasure q[2] -> c[2];\n",
		"qreg q[1];\nu3(0.1,0.2,0.3) q[0];",
		"qreg q[4];\nccx q[0],q[1],q[2];\nswap q[2],q[3];",
		"qreg q[2];\nrz(-3*pi/4) q[0];\ncnot q[1],q[0];",
		"qreg q[0];",
		"qreg q[",
		"h q[0];",
		";;;",
		"qreg q[2];\nrz() q[0];",
		"qreg q[2]; x q[1]; x q[1]; id q[0];",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		out, err := Write(c)
		if err != nil {
			t.Fatalf("accepted program failed to serialize: %v", err)
		}
		back, err := Parse(out)
		if err != nil {
			t.Fatalf("serialized program failed to re-parse: %v\n%s", err, out)
		}
		if back.GateCount() != c.GateCount() {
			t.Fatalf("gate count changed through round trip: %d vs %d", c.GateCount(), back.GateCount())
		}
		if !strings.Contains(out, "OPENQASM 2.0;") {
			t.Fatalf("serializer dropped the header")
		}
	})
}

// FuzzParseQASM layers structural invariants on top of FuzzParse's
// crash/round-trip check: any circuit the parser accepts must be valid
// under the circuit package's own rules (no construction error, every
// gate within register bounds), and Write must be a fixed point — the
// first serialization parses back to a byte-identical second one, so
// downstream caches can key on the text form.
func FuzzParseQASM(f *testing.F) {
	seeds := []string{
		"OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\ncreg c[3];\nh q[0];\ncx q[0],q[1];\nmeasure q -> c;\n",
		"qreg q[2];\n// comment\nu2(0,pi) q[0];\ncz q[0],q[1];\n",
		"qreg q[5];\nrx(pi/8) q[4];\nry(-pi) q[3];\nbarrier q;\n",
		"qreg q[2];\ncreg c[2];\nx q;\nid q[1];\nsdg q[0];\ntdg q[1];",
		"qreg a[1];\nqreg b[1];\ncx a[0],b[0];",
		"qreg q[1];\nu1(2*pi/3) q[0];",
		"qreg q[9999999];",
		"qreg q[3];\nccx q[0],q[1],q[1];",
		"qreg q[2];\nswap q[0],q[0];",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if cerr := c.Err(); cerr != nil {
			t.Fatalf("accepted circuit carries a construction error: %v", cerr)
		}
		for i, g := range c.Gates {
			if err := g.Validate(c.N); err != nil {
				t.Fatalf("accepted circuit has invalid gate %d: %v", i, err)
			}
		}
		out1, err := Write(c)
		if err != nil {
			t.Fatalf("accepted circuit failed to serialize: %v", err)
		}
		c2, err := Parse(out1)
		if err != nil {
			t.Fatalf("serialized program failed to re-parse: %v\n%s", err, out1)
		}
		out2, err := Write(c2)
		if err != nil {
			t.Fatalf("re-parsed circuit failed to serialize: %v", err)
		}
		if out1 != out2 {
			t.Fatalf("Write is not a fixed point:\nfirst:\n%s\nsecond:\n%s", out1, out2)
		}
	})
}
