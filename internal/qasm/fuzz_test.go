package qasm

import (
	"strings"
	"testing"
)

// FuzzParse hardens the OpenQASM parser against malformed input: it must
// never panic, and any program it accepts must re-serialize and re-parse
// to the same gate count (a parse/print fixed point).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n",
		"// name\nqreg q[3];\nrz(pi/2) q[1];\nbarrier q[0],q[1];\nmeasure q[2] -> c[2];\n",
		"qreg q[1];\nu3(0.1,0.2,0.3) q[0];",
		"qreg q[4];\nccx q[0],q[1],q[2];\nswap q[2],q[3];",
		"qreg q[2];\nrz(-3*pi/4) q[0];\ncnot q[1],q[0];",
		"qreg q[0];",
		"qreg q[",
		"h q[0];",
		";;;",
		"qreg q[2];\nrz() q[0];",
		"qreg q[2]; x q[1]; x q[1]; id q[0];",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		out, err := Write(c)
		if err != nil {
			t.Fatalf("accepted program failed to serialize: %v", err)
		}
		back, err := Parse(out)
		if err != nil {
			t.Fatalf("serialized program failed to re-parse: %v\n%s", err, out)
		}
		if back.GateCount() != c.GateCount() {
			t.Fatalf("gate count changed through round trip: %d vs %d", c.GateCount(), back.GateCount())
		}
		if !strings.Contains(out, "OPENQASM 2.0;") {
			t.Fatalf("serializer dropped the header")
		}
	})
}
