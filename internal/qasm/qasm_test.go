package qasm

import (
	"math"
	"strings"
	"testing"

	"qbeep/internal/algorithms"
	"qbeep/internal/circuit"
	"qbeep/internal/statevector"
)

func TestWriteBasic(t *testing.T) {
	c := circuit.New("bell", 2).H(0).CX(0, 1).MeasureAll()
	src, err := Write(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"OPENQASM 2.0;",
		"qreg q[2];",
		"creg c[2];",
		"h q[0];",
		"cx q[0],q[1];",
		"measure q[0] -> c[0];",
		"measure q[1] -> c[1];",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("missing %q in:\n%s", want, src)
		}
	}
}

func TestWriteParams(t *testing.T) {
	c := circuit.New("rot", 1).RZ(0.5, 0).U3(0.1, 0.2, 0.3, 0)
	src, err := Write(c)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "rz(0.5) q[0];") {
		t.Errorf("rz missing: %s", src)
	}
	if !strings.Contains(src, "u3(") {
		t.Errorf("u3 missing: %s", src)
	}
}

func TestWriteBrokenCircuit(t *testing.T) {
	if _, err := Write(circuit.New("bad", 1).H(5)); err == nil {
		t.Error("broken circuit should error")
	}
}

func TestRoundTripPreservesSemantics(t *testing.T) {
	builds := []func() *circuit.Circuit{
		func() *circuit.Circuit { return circuit.New("bell", 2).H(0).CX(0, 1) },
		func() *circuit.Circuit {
			return circuit.New("mixed", 3).H(0).T(1).Sdg(2).CCX(0, 1, 2).RY(0.4, 1).SWAP(0, 2)
		},
		func() *circuit.Circuit {
			return circuit.New("rot", 2).RX(1.2, 0).RZ(-0.7, 1).CZ(0, 1).U3(0.3, 0.2, 0.1, 0)
		},
	}
	for _, build := range builds {
		orig := build()
		src, err := Write(orig)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Parse(src)
		if err != nil {
			t.Fatalf("parse failed: %v\n%s", err, src)
		}
		if back.N != orig.N {
			t.Fatalf("width %d vs %d", back.N, orig.N)
		}
		sa, err := statevector.Run(orig)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := statevector.Run(back)
		if err != nil {
			t.Fatal(err)
		}
		f, _ := sa.FidelityWith(sb)
		if math.Abs(f-1) > 1e-9 {
			t.Errorf("%s: round-trip fidelity %v", orig.Name, f)
		}
	}
}

func TestRoundTripSuite(t *testing.T) {
	// Every QASMBench-style workload must serialize and re-parse.
	for _, e := range algorithms.Suite() {
		w, err := e.Build()
		if err != nil {
			t.Fatal(err)
		}
		src, err := Write(w.Circuit)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		back, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if back.GateCount() != w.Circuit.GateCount() {
			t.Errorf("%s: gate count %d vs %d", e.Name, back.GateCount(), w.Circuit.GateCount())
		}
	}
}

func TestParsePiExpressions(t *testing.T) {
	src := `OPENQASM 2.0;
qreg q[1];
rz(pi) q[0];
rz(-pi/2) q[0];
rz(3*pi/4) q[0];
rz(0.25) q[0];
`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{math.Pi, -math.Pi / 2, 3 * math.Pi / 4, 0.25}
	if len(c.Gates) != 4 {
		t.Fatalf("gates %d", len(c.Gates))
	}
	for i, g := range c.Gates {
		if math.Abs(g.Params[0]-want[i]) > 1e-12 {
			t.Errorf("gate %d angle %v want %v", i, g.Params[0], want[i])
		}
	}
}

func TestParseBarrierAndComments(t *testing.T) {
	src := `// my circuit
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0]; // trailing comment
barrier q[0],q[1],q[2];
cnot q[0],q[1];
measure q[2] -> c[2];
`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "my circuit" {
		t.Errorf("name %q", c.Name)
	}
	if c.CountKind(circuit.Barrier) != 1 || c.CountKind(circuit.CX) != 1 {
		t.Errorf("structure: %s", c)
	}
	if c.CountKind(circuit.Measure) != 1 {
		t.Error("measure lost")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                           // no qreg
		"h q[0];",                    // gate before qreg
		"qreg q[2];\nfoo q[0];",      // unknown gate
		"qreg q[2];\nrz(bad) q[0];",  // bad angle
		"qreg q[2];\nqreg r[2];",     // duplicate qreg
		"qreg q[2];\nh q[7];",        // out of range
		"qreg q[x];",                 // bad size
		"qreg q[2];\nrz(pi q[0];",    // unbalanced paren
		"qreg q[2];\ncx q[0],q[0];",  // duplicate qubit
		"qreg q[2];\nrz(pi/0) q[0];", // zero divisor
		"qreg q[2];\nh q[0] q[1];",   // still fine? ensure parse path
	}
	for i, src := range cases[:10] {
		if _, err := Parse(src); err == nil {
			t.Errorf("case %d should error: %q", i, src)
		}
	}
}

func TestParseAngle(t *testing.T) {
	cases := []struct {
		s    string
		want float64
		fail bool
	}{
		{"pi", math.Pi, false},
		{"-pi", -math.Pi, false},
		{"+pi/2", math.Pi / 2, false},
		{"2*pi", 2 * math.Pi, false},
		{"1.5", 1.5, false},
		{"-0.25", -0.25, false},
		{"", 0, true},
		{"tau", 0, true},
	}
	for _, c := range cases {
		got, err := parseAngle(c.s)
		if c.fail {
			if err == nil {
				t.Errorf("parseAngle(%q) should fail", c.s)
			}
			continue
		}
		if err != nil || math.Abs(got-c.want) > 1e-12 {
			t.Errorf("parseAngle(%q) = %v, %v", c.s, got, err)
		}
	}
}
