package qasm

import (
	"math"
	"testing"

	"qbeep/internal/circuit"
	"qbeep/internal/statevector"
)

// equivalentSrc asserts two programs implement the same unitary up to
// global phase, using a superposition probe to expose phases.
func equivalentSrc(t *testing.T, srcA, srcB string) {
	t.Helper()
	a, err := Parse(srcA)
	if err != nil {
		t.Fatalf("A: %v", err)
	}
	b, err := Parse(srcB)
	if err != nil {
		t.Fatalf("B: %v", err)
	}
	if a.N != b.N {
		t.Fatalf("width %d vs %d", a.N, b.N)
	}
	pre := circuit.New("probe", a.N)
	for q := 0; q < a.N; q++ {
		pre.H(q)
		pre.T(q)
	}
	pa := pre.Clone()
	for _, g := range a.Gates {
		pa.Append(g)
	}
	pb := pre.Clone()
	for _, g := range b.Gates {
		pb.Append(g)
	}
	sa, err := statevector.Run(pa)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := statevector.Run(pb)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := sa.FidelityWith(sb)
	if math.Abs(f-1) > 1e-9 {
		t.Fatalf("programs differ: fidelity %v\nA: %s\nB: %s", f, srcA, srcB)
	}
}

func TestU1AliasIsRZ(t *testing.T) {
	equivalentSrc(t,
		"qreg q[1];\nu1(pi/4) q[0];",
		"qreg q[1];\nrz(pi/4) q[0];")
	equivalentSrc(t,
		"qreg q[1];\np(0.7) q[0];",
		"qreg q[1];\nrz(0.7) q[0];")
}

func TestU2Alias(t *testing.T) {
	// u2(0, π) = H up to global phase.
	equivalentSrc(t,
		"qreg q[1];\nu2(0,pi) q[0];",
		"qreg q[1];\nh q[0];")
}

func TestUAliasIsU3(t *testing.T) {
	equivalentSrc(t,
		"qreg q[1];\nu(0.3,0.4,0.5) q[0];",
		"qreg q[1];\nu3(0.3,0.4,0.5) q[0];")
}

func TestCU1IsControlledPhase(t *testing.T) {
	// cu1(π) = CZ.
	equivalentSrc(t,
		"qreg q[2];\ncu1(pi) q[0],q[1];",
		"qreg q[2];\ncz q[0],q[1];")
}

func TestRZZExpansion(t *testing.T) {
	equivalentSrc(t,
		"qreg q[2];\nrzz(0.8) q[0],q[1];",
		"qreg q[2];\ncx q[0],q[1];\nrz(0.8) q[1];\ncx q[0],q[1];")
}

func TestExpanderArityErrors(t *testing.T) {
	cases := []string{
		"qreg q[2];\nu1(pi) q[0],q[1];",
		"qreg q[1];\nu1() q[0];",
		"qreg q[1];\nu2(pi) q[0];",
		"qreg q[1];\nu(0.1,0.2) q[0];",
		"qreg q[2];\ncu1(pi) q[0];",
		"qreg q[1];\nrzz(0.1) q[0];",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("should reject %q", src)
		}
	}
}

func TestQASMBenchStyleProgram(t *testing.T) {
	// A fragment in the idiom QASMBench files actually use.
	src := `OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
u2(0,pi) q[0];
u1(pi/8) q[1];
cu1(pi/4) q[0],q[1];
u(0.1,0.2,0.3) q[2];
rzz(0.5) q[1],q[2];
measure q[0] -> c[0];
`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.GateCount() == 0 || !c.HasMeasurement() {
		t.Errorf("parsed shape wrong: %s", c)
	}
	// Everything expands into the native IR, so it re-serializes.
	if _, err := Write(c); err != nil {
		t.Fatal(err)
	}
}
