// Package qasm serializes circuits to OpenQASM 2.0 and parses the subset
// of OpenQASM 2.0 the serializer emits (plus common QASMBench constructs):
// qreg/creg declarations, the standard gate vocabulary, measure and
// barrier. It exists so workloads interchange with the wider ecosystem the
// paper's artifacts use (QASMBench circuits are OpenQASM files).
package qasm

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"strings"

	"qbeep/internal/circuit"
	"qbeep/internal/obs"
)

// metParse times Parse calls (seconds; see internal/obs).
var metParse = obs.Default.Timer("qasm.parse")

// Write renders the circuit as an OpenQASM 2.0 program with one quantum
// and one classical register, both named q/c and sized to the circuit.
func Write(c *circuit.Circuit) (string, error) {
	if err := c.Err(); err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "// %s\n", c.Name)
	b.WriteString("OPENQASM 2.0;\n")
	b.WriteString("include \"qelib1.inc\";\n")
	fmt.Fprintf(&b, "qreg q[%d];\n", c.N)
	fmt.Fprintf(&b, "creg c[%d];\n", c.N)
	for _, g := range c.Gates {
		line, err := writeGate(g)
		if err != nil {
			return "", err
		}
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String(), nil
}

func writeGate(g circuit.Gate) (string, error) {
	qs := make([]string, len(g.Qubits))
	for i, q := range g.Qubits {
		qs[i] = fmt.Sprintf("q[%d]", q)
	}
	args := strings.Join(qs, ",")
	switch g.Kind {
	case circuit.Measure:
		return fmt.Sprintf("measure q[%d] -> c[%d];", g.Qubits[0], g.Qubits[0]), nil
	case circuit.Barrier:
		return fmt.Sprintf("barrier %s;", args), nil
	case circuit.RX, circuit.RY, circuit.RZ:
		return fmt.Sprintf("%s(%s) %s;", g.Kind, formatFloat(g.Params[0]), args), nil
	case circuit.U3:
		return fmt.Sprintf("u3(%s,%s,%s) %s;",
			formatFloat(g.Params[0]), formatFloat(g.Params[1]), formatFloat(g.Params[2]), args), nil
	case circuit.I:
		return fmt.Sprintf("id %s;", args), nil
	case circuit.X, circuit.Y, circuit.Z, circuit.H, circuit.S, circuit.Sdg,
		circuit.T, circuit.Tdg, circuit.SX, circuit.CX, circuit.CZ,
		circuit.SWAP, circuit.CCX, circuit.CSWAP:
		return fmt.Sprintf("%s %s;", g.Kind, args), nil
	default:
		return "", fmt.Errorf("qasm: cannot serialize %s", g.Kind)
	}
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', 17, 64)
}

var kindByName = map[string]circuit.Kind{
	"id": circuit.I, "x": circuit.X, "y": circuit.Y, "z": circuit.Z,
	"h": circuit.H, "s": circuit.S, "sdg": circuit.Sdg, "t": circuit.T,
	"tdg": circuit.Tdg, "sx": circuit.SX, "rx": circuit.RX, "ry": circuit.RY,
	"rz": circuit.RZ, "u3": circuit.U3, "cx": circuit.CX, "cnot": circuit.CX,
	"cz": circuit.CZ, "swap": circuit.SWAP, "ccx": circuit.CCX,
	"toffoli": circuit.CCX, "cswap": circuit.CSWAP,
}

// expanders translates the common qelib1 aliases that are not native IR
// kinds into gate sequences (up to global phase). Real QASMBench files
// use the legacy u1/u2/u and cu1 names heavily.
var expanders = map[string]func(params []float64, qubits []int) ([]circuit.Gate, error){
	// u1(λ) and p(λ): a Z-rotation up to global phase.
	"u1": func(p []float64, q []int) ([]circuit.Gate, error) {
		if len(p) != 1 || len(q) != 1 {
			return nil, fmt.Errorf("u1 expects 1 param, 1 qubit")
		}
		return []circuit.Gate{{Kind: circuit.RZ, Qubits: q, Params: p}}, nil
	},
	"p": func(p []float64, q []int) ([]circuit.Gate, error) {
		if len(p) != 1 || len(q) != 1 {
			return nil, fmt.Errorf("p expects 1 param, 1 qubit")
		}
		return []circuit.Gate{{Kind: circuit.RZ, Qubits: q, Params: p}}, nil
	},
	// u2(φ,λ) = U3(π/2, φ, λ).
	"u2": func(p []float64, q []int) ([]circuit.Gate, error) {
		if len(p) != 2 || len(q) != 1 {
			return nil, fmt.Errorf("u2 expects 2 params, 1 qubit")
		}
		return []circuit.Gate{{Kind: circuit.U3, Qubits: q,
			Params: []float64{math.Pi / 2, p[0], p[1]}}}, nil
	},
	// u(θ,φ,λ): the OpenQASM 3-parameter generic rotation.
	"u": func(p []float64, q []int) ([]circuit.Gate, error) {
		if len(p) != 3 || len(q) != 1 {
			return nil, fmt.Errorf("u expects 3 params, 1 qubit")
		}
		return []circuit.Gate{{Kind: circuit.U3, Qubits: q, Params: p}}, nil
	},
	// cu1(λ) = controlled-phase: u1(λ/2) a · cx · u1(-λ/2) b · cx · u1(λ/2) b.
	"cu1": func(p []float64, q []int) ([]circuit.Gate, error) {
		if len(p) != 1 || len(q) != 2 {
			return nil, fmt.Errorf("cu1 expects 1 param, 2 qubits")
		}
		l := p[0]
		a, b := q[0], q[1]
		return []circuit.Gate{
			{Kind: circuit.RZ, Qubits: []int{a}, Params: []float64{l / 2}},
			{Kind: circuit.CX, Qubits: []int{a, b}},
			{Kind: circuit.RZ, Qubits: []int{b}, Params: []float64{-l / 2}},
			{Kind: circuit.CX, Qubits: []int{a, b}},
			{Kind: circuit.RZ, Qubits: []int{b}, Params: []float64{l / 2}},
		}, nil
	},
	// rzz(θ) = cx · rz(θ) b · cx, the ZZ interaction QAOA files emit.
	"rzz": func(p []float64, q []int) ([]circuit.Gate, error) {
		if len(p) != 1 || len(q) != 2 {
			return nil, fmt.Errorf("rzz expects 1 param, 2 qubits")
		}
		a, b := q[0], q[1]
		return []circuit.Gate{
			{Kind: circuit.CX, Qubits: []int{a, b}},
			{Kind: circuit.RZ, Qubits: []int{b}, Params: []float64{p[0]}},
			{Kind: circuit.CX, Qubits: []int{a, b}},
		}, nil
	},
}

// Parse reads an OpenQASM 2.0 program in the supported subset and returns
// the circuit. The classical register is implicit (measurements map qubit
// i to clbit i); gate parameters accept numeric literals and simple
// pi-expressions (pi, -pi, pi/2, 3*pi/4, ...).
func Parse(src string) (*circuit.Circuit, error) {
	return ParseCtx(context.Background(), src)
}

// ParseCtx is Parse with trace-context propagation: the "qasm.parse" span
// parents under the span active in ctx.
func ParseCtx(ctx context.Context, src string) (*circuit.Circuit, error) {
	_, sp := obs.Start(ctx, "qasm.parse")
	// Ending via defer keeps the span from leaking on parse errors
	// (qbeep-lint spanend); attributes set below still precede it.
	defer sp.End()
	defer metParse.Start()()
	name := "qasm"
	n := 0
	var c *circuit.Circuit
	lineNo := 0
	for _, raw := range strings.Split(src, "\n") {
		lineNo++
		line := strings.TrimSpace(raw)
		if i := strings.Index(line, "//"); i >= 0 {
			if lineNo == 1 && i == 0 {
				name = strings.TrimSpace(line[2:])
			}
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		for _, stmt := range strings.Split(line, ";") {
			stmt = strings.TrimSpace(stmt)
			if stmt == "" {
				continue
			}
			if err := parseStmt(stmt, &name, &n, &c); err != nil {
				return nil, fmt.Errorf("qasm: line %d: %w", lineNo, err)
			}
		}
	}
	if c == nil {
		return nil, fmt.Errorf("qasm: no qreg declaration found")
	}
	out, err := c.Finalize()
	if err != nil {
		return nil, err
	}
	sp.SetAttr("circuit", out.Name)
	sp.SetAttr("width", out.N)
	sp.SetAttr("gates", len(out.Gates))
	return out, nil
}

func parseStmt(stmt string, name *string, n *int, c **circuit.Circuit) error {
	switch {
	case strings.HasPrefix(stmt, "OPENQASM"), strings.HasPrefix(stmt, "include"),
		strings.HasPrefix(stmt, "creg"):
		return nil
	case strings.HasPrefix(stmt, "qreg"):
		open := strings.Index(stmt, "[")
		closeIdx := strings.Index(stmt, "]")
		if open < 0 || closeIdx < open {
			return fmt.Errorf("bad qreg %q", stmt)
		}
		size, err := strconv.Atoi(stmt[open+1 : closeIdx])
		if err != nil {
			return fmt.Errorf("bad qreg size in %q", stmt)
		}
		if *c != nil {
			return fmt.Errorf("multiple qreg declarations unsupported")
		}
		*n = size
		*c = circuit.New(*name, size)
		return nil
	}
	if *c == nil {
		return fmt.Errorf("gate before qreg: %q", stmt)
	}
	if strings.HasPrefix(stmt, "measure") {
		q, err := parseIndex(stmt, 0)
		if err != nil {
			return err
		}
		(*c).Measure(q)
		return (*c).Err()
	}
	if strings.HasPrefix(stmt, "barrier") {
		qs, err := parseAllIndices(stmt)
		if err != nil {
			return err
		}
		if len(qs) == 0 {
			(*c).Barrier()
		} else {
			(*c).Barrier(qs...)
		}
		return (*c).Err()
	}
	// General gate: name[(params)] q[i],q[j],...
	head := stmt
	var params []float64
	if open := strings.Index(stmt, "("); open >= 0 {
		closeIdx := strings.Index(stmt, ")")
		if closeIdx < open {
			return fmt.Errorf("unbalanced parens in %q", stmt)
		}
		head = strings.TrimSpace(stmt[:open])
		rest := stmt[closeIdx+1:]
		for _, p := range strings.Split(stmt[open+1:closeIdx], ",") {
			v, err := parseAngle(strings.TrimSpace(p))
			if err != nil {
				return err
			}
			params = append(params, v)
		}
		stmt = head + " " + strings.TrimSpace(rest)
	} else {
		fields := strings.Fields(stmt)
		if len(fields) < 2 {
			return fmt.Errorf("bad statement %q", stmt)
		}
		head = fields[0]
	}
	headFields := strings.Fields(head)
	if len(headFields) == 0 {
		return fmt.Errorf("missing gate name in %q", stmt)
	}
	gateName := strings.ToLower(headFields[0])
	qs, err := parseAllIndices(stmt)
	if err != nil {
		return err
	}
	if expand, ok := expanders[gateName]; ok {
		gates, err := expand(params, qs)
		if err != nil {
			return err
		}
		for _, g := range gates {
			(*c).Append(g)
		}
		return (*c).Err()
	}
	kind, ok := kindByName[gateName]
	if !ok {
		return fmt.Errorf("unknown gate %q", gateName)
	}
	(*c).Append(circuit.Gate{Kind: kind, Qubits: qs, Params: params})
	return (*c).Err()
}

// parseIndex extracts the k-th [i] index from the statement.
func parseIndex(stmt string, k int) (int, error) {
	qs, err := parseAllIndices(stmt)
	if err != nil {
		return 0, err
	}
	if k >= len(qs) {
		return 0, fmt.Errorf("missing index %d in %q", k, stmt)
	}
	return qs[k], nil
}

// parseAllIndices extracts every [i] index in order.
func parseAllIndices(stmt string) ([]int, error) {
	var out []int
	for i := 0; i < len(stmt); i++ {
		if stmt[i] != '[' {
			continue
		}
		j := strings.IndexByte(stmt[i:], ']')
		if j < 0 {
			return nil, fmt.Errorf("unbalanced bracket in %q", stmt)
		}
		v, err := strconv.Atoi(stmt[i+1 : i+j])
		if err != nil {
			return nil, fmt.Errorf("bad index in %q: %w", stmt, err)
		}
		out = append(out, v)
		i += j
	}
	return out, nil
}

// parseAngle evaluates a parameter literal: a float, or a simple
// pi-expression of the forms [±][k*]pi[/m].
func parseAngle(s string) (float64, error) {
	if s == "" {
		return 0, fmt.Errorf("empty angle")
	}
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		return v, nil
	}
	sign := 1.0
	if strings.HasPrefix(s, "-") {
		sign = -1
		s = s[1:]
	} else if strings.HasPrefix(s, "+") {
		s = s[1:]
	}
	num := 1.0
	den := 1.0
	if i := strings.Index(s, "*"); i >= 0 {
		v, err := strconv.ParseFloat(strings.TrimSpace(s[:i]), 64)
		if err != nil {
			return 0, fmt.Errorf("bad angle %q", s)
		}
		num = v
		s = strings.TrimSpace(s[i+1:])
	}
	if i := strings.Index(s, "/"); i >= 0 {
		v, err := strconv.ParseFloat(strings.TrimSpace(s[i+1:]), 64)
		if err != nil || v == 0 {
			return 0, fmt.Errorf("bad angle divisor %q", s)
		}
		den = v
		s = strings.TrimSpace(s[:i])
	}
	if strings.TrimSpace(s) != "pi" {
		return 0, fmt.Errorf("bad angle %q", s)
	}
	return sign * num * math.Pi / den, nil
}
