// Package benchparse turns `go test -bench` output into structured
// results, maintains the repo's benchmark baselines (BENCH_core.json,
// BENCH_sim.json) and the append-only trajectory file
// (BENCH_trajectory.json), and gates regressions. Comparison is ratio
// first: the derived invariants (fused/naive, engine/brute, zero-alloc
// hot loops) cancel machine speed, so they hold across the laptops and
// shared CI runners the absolute ns/op numbers do not survive.
package benchparse

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line. BOp/AllocsOp are -1 when the run
// was recorded without -benchmem, distinguishing "not measured" from a
// genuine zero-allocation result.
type Result struct {
	Name       string  // GOMAXPROCS suffix stripped: BenchmarkRun-4 → BenchmarkRun
	Iterations int64   // b.N of the final run
	NsOp       float64 // nanoseconds per operation
	BOp        int64   // bytes allocated per operation (-1 without -benchmem)
	AllocsOp   int64   // allocations per operation (-1 without -benchmem)
}

// Output is a full parsed transcript: every benchmark line plus the
// metadata go test prints ahead of them.
type Output struct {
	Results []Result
	Go      string // goos/goarch joined, e.g. "linux/amd64"
	CPU     string // cpu: line, if present
}

// Find returns the named result and whether it was present.
func (o *Output) Find(name string) (Result, bool) {
	for _, r := range o.Results {
		if r.Name == name {
			return r, true
		}
	}
	return Result{}, false
}

// Parse reads a `go test -bench` transcript. Non-benchmark lines are
// skipped except for metadata (goos/goarch/cpu) and failures: a
// "[build failed]" marker or a FAIL verdict fails the parse, so a broken
// benchmark package can never record an empty-but-green trajectory row.
func Parse(r io.Reader) (*Output, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	out := &Output{}
	var goos, goarch string
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if strings.Contains(text, "[build failed]") {
			return nil, fmt.Errorf("benchparse: line %d: build failed: %s", line, strings.TrimSpace(text))
		}
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "goos:":
			if len(fields) > 1 {
				goos = fields[1]
			}
			continue
		case "goarch:":
			if len(fields) > 1 {
				goarch = fields[1]
			}
			continue
		case "cpu:":
			out.CPU = strings.TrimSpace(strings.TrimPrefix(text, "cpu:"))
			continue
		case "FAIL":
			return nil, fmt.Errorf("benchparse: line %d: transcript contains a FAIL verdict", line)
		}
		if !strings.HasPrefix(fields[0], "Benchmark") || len(fields) < 4 {
			continue
		}
		res, err := parseBenchLine(fields)
		if err != nil {
			return nil, fmt.Errorf("benchparse: line %d: %w", line, err)
		}
		out.Results = append(out.Results, res)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchparse: %w", err)
	}
	if goos != "" && goarch != "" {
		out.Go = goos + "/" + goarch
	}
	return out, nil
}

// parseBenchLine decodes one "BenchmarkName-P  N  <value> <unit>..." line.
func parseBenchLine(fields []string) (Result, error) {
	res := Result{Name: stripProcSuffix(fields[0]), BOp: -1, AllocsOp: -1}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return res, fmt.Errorf("iterations %q: %w", fields[1], err)
	}
	res.Iterations = iters
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return res, fmt.Errorf("value %q: %w", fields[i], err)
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsOp = v
			sawNs = true
		case "B/op":
			res.BOp = int64(v)
		case "allocs/op":
			res.AllocsOp = int64(v)
		default:
			// MB/s and custom b.ReportMetric units ride along unparsed.
		}
	}
	if !sawNs {
		return res, fmt.Errorf("benchmark %s has no ns/op column", res.Name)
	}
	return res, nil
}

// stripProcSuffix removes the trailing -GOMAXPROCS go test appends to
// benchmark names (BenchmarkRun-4 → BenchmarkRun), leaving sub-benchmark
// paths (BenchmarkBuild/V512/lambda1) intact.
func stripProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i <= 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// Entry is one benchmark in a baseline or trajectory row — the same
// schema BENCH_core.json and BENCH_sim.json use, with per-benchmark
// extras (edge counts) kept as an optional field.
type Entry struct {
	Name     string  `json:"name"`
	NsOp     float64 `json:"ns_op"`
	BOp      int64   `json:"b_op"`
	AllocsOp int64   `json:"allocs_op"`
	Edges    int64   `json:"edges,omitempty"`
}

// Baseline is the unified schema of the BENCH_*.json files.
type Baseline struct {
	Description string             `json:"description,omitempty"`
	Command     string             `json:"command,omitempty"`
	Date        string             `json:"date,omitempty"`
	Commit      string             `json:"commit,omitempty"`
	Go          string             `json:"go,omitempty"`
	CPU         string             `json:"cpu,omitempty"`
	Benchmarks  []Entry            `json:"benchmarks"`
	Derived     map[string]float64 `json:"derived,omitempty"`
}

// LoadBaseline reads one BENCH_*.json file.
func LoadBaseline(path string) (*Baseline, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, fmt.Errorf("benchparse: %s: %w", path, err)
	}
	return &b, nil
}

// Find returns the named baseline entry and whether it was present.
func (b *Baseline) Find(name string) (Entry, bool) {
	for _, e := range b.Benchmarks {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// RatioDef names the two benchmarks whose ns/op quotient forms a derived
// speedup: Slow's time over Fast's (engine speedups stay > 1).
type RatioDef struct {
	Slow string // reference implementation (numerator, ns/op)
	Fast string // engine under gate (denominator, ns/op)
}

// KnownRatios maps the derived keys recorded in the BENCH_*.json files
// to their defining benchmark pairs, so a compare run can recompute the
// same invariant from a fresh transcript.
var KnownRatios = map[string]RatioDef{
	"build_speedup_vs_brute_V4096_lambda1": {
		Slow: "BenchmarkBuildStateGraphBrute/V4096/lambda1",
		Fast: "BenchmarkBuildStateGraph/V4096/lambda1",
	},
	"build_speedup_vs_brute_V4096_lambda2": {
		Slow: "BenchmarkBuildStateGraphBrute/V4096/lambda2",
		Fast: "BenchmarkBuildStateGraph/V4096/lambda2",
	},
	"fused_speedup_vs_naive":   {Slow: "BenchmarkNaiveRun", Fast: "BenchmarkRun"},
	"unfused_speedup_vs_naive": {Slow: "BenchmarkNaiveRun", Fast: "BenchmarkRunUnfused"},
	// Both sides run the identical 100-shot workload, so the ns/op
	// quotient is exactly the shots-per-second ratio of compiled replay
	// over the per-gate reference path.
	"trajectory_replay_speedup": {Slow: "BenchmarkTrajectoryPerGate", Fast: "BenchmarkTrajectory"},
	"mitigate_topk_speedup_v1e5": {
		Slow: "BenchmarkMitigate/V1e5",
		Fast: "BenchmarkMitigate/V1e5_topk8",
	},
}

// KnownAllocInvariants maps derived allocs-per-op keys to the benchmark
// whose allocation count they pin. The recorded baseline value is the
// ceiling: the hot loops must stay allocation-free (zero) and the graph
// build must stay within its fixed arena budget.
var KnownAllocInvariants = map[string]string{
	"step_allocs_per_op":               "BenchmarkStateGraphStep/V4096/lambda1",
	"probabilities_into_allocs_per_op": "BenchmarkProbabilitiesInto",
	"build_allocs_v4096_lambda1":       "BenchmarkBuildStateGraph/V4096/lambda1",
	// Steady-state allocation ceilings for the throughput engine: program
	// replay is allocation-free, and a 100-shot trajectory batch stays
	// within the pooled-arena budget (span/merge bookkeeping only).
	"run_program_allocs_steady": "BenchmarkRunProgram",
	"trajectory_allocs_steady":  "BenchmarkTrajectory",
}

// KnownBudgets maps derived wall-clock keys to the benchmark whose ns/op
// they convert to seconds. Unlike the speedup ratios these are absolute:
// the recorded baseline value is a budget with headroom over the
// measured time, and a compare run regresses when the fresh measurement
// exceeds it — the "mitigable in seconds" acceptance bound for the
// million-vertex track.
var KnownBudgets = map[string]string{
	"mitigate_v1e6_seconds": "BenchmarkMitigate/V1e6",
}

// Ratios recomputes every known derived invariant present in the result
// set: speedup ratios where both benchmarks ran, allocation counts where
// the pinned benchmark ran with -benchmem.
func Ratios(results []Result) map[string]float64 {
	byName := make(map[string]Result, len(results))
	for _, r := range results {
		byName[r.Name] = r
	}
	out := map[string]float64{}
	for key, def := range KnownRatios {
		slow, okS := byName[def.Slow]
		fast, okF := byName[def.Fast]
		if okS && okF && fast.NsOp > 0 {
			out[key] = round2(slow.NsOp / fast.NsOp)
		}
	}
	for key, name := range KnownAllocInvariants {
		if r, ok := byName[name]; ok && r.AllocsOp >= 0 {
			out[key] = float64(r.AllocsOp)
		}
	}
	for key, name := range KnownBudgets {
		if r, ok := byName[name]; ok && r.NsOp > 0 {
			out[key] = round2(r.NsOp / 1e9)
		}
	}
	return out
}

func round2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}

// Finding is one compare verdict: a derived invariant's baseline and
// current values plus whether it regressed past the threshold.
type Finding struct {
	Key        string  `json:"key"`
	Baseline   float64 `json:"baseline"`
	Current    float64 `json:"current"`
	Regression bool    `json:"regression"`
}

// Compare recomputes the baseline's derived invariants from a fresh
// result set and flags regressions. Speedup ratios regress when the
// current value drops below baseline×(1−threshold); allocation
// invariants regress on any increase (a hot loop that starts allocating
// is a bug, not noise); wall-clock budgets regress when the measured
// seconds exceed the recorded budget (the baseline already carries the
// headroom, so no extra threshold applies). Derived keys whose
// benchmarks are absent from the results are skipped — a partial run
// gates only what it measured.
func Compare(base *Baseline, results []Result, threshold float64) []Finding {
	current := Ratios(results)
	keys := make([]string, 0, len(base.Derived))
	for k := range base.Derived {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []Finding
	for _, key := range keys {
		cur, ok := current[key]
		if !ok {
			continue
		}
		f := Finding{Key: key, Baseline: base.Derived[key], Current: cur}
		if _, isAlloc := KnownAllocInvariants[key]; isAlloc {
			f.Regression = cur > f.Baseline
		} else if _, isBudget := KnownBudgets[key]; isBudget {
			f.Regression = cur > f.Baseline
		} else {
			f.Regression = cur < f.Baseline*(1-threshold)
		}
		out = append(out, f)
	}
	return out
}

// Row is one trajectory observation: a suite's results at a commit.
type Row struct {
	Commit     string             `json:"commit"`
	Date       string             `json:"date"` // YYYY-MM-DD
	Suite      string             `json:"suite"`
	Go         string             `json:"go,omitempty"`
	CPU        string             `json:"cpu,omitempty"`
	Benchmarks []Entry            `json:"benchmarks"`
	Derived    map[string]float64 `json:"derived,omitempty"`
}

// Trajectory is the BENCH_trajectory.json document.
type Trajectory struct {
	Description string `json:"description,omitempty"`
	Rows        []Row  `json:"rows"`
}

// LoadTrajectory reads the trajectory file; a missing file is an empty
// trajectory, so the first append bootstraps it.
func LoadTrajectory(path string) (*Trajectory, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Trajectory{}, nil
	}
	if err != nil {
		return nil, err
	}
	var tr Trajectory
	if err := json.Unmarshal(raw, &tr); err != nil {
		return nil, fmt.Errorf("benchparse: %s: %w", path, err)
	}
	return &tr, nil
}

// Append records one row, idempotently: a row with the same (commit,
// suite) replaces the previous observation instead of duplicating it, so
// re-running the harness at one commit converges. Rows keep a stable
// order — date, then suite, then commit — regardless of append order.
func (tr *Trajectory) Append(row Row) {
	for i := range tr.Rows {
		if tr.Rows[i].Commit == row.Commit && tr.Rows[i].Suite == row.Suite {
			tr.Rows[i] = row
			tr.sortRows()
			return
		}
	}
	tr.Rows = append(tr.Rows, row)
	tr.sortRows()
}

func (tr *Trajectory) sortRows() {
	sort.SliceStable(tr.Rows, func(i, j int) bool {
		a, b := tr.Rows[i], tr.Rows[j]
		if a.Date != b.Date {
			return a.Date < b.Date
		}
		if a.Suite != b.Suite {
			return a.Suite < b.Suite
		}
		return a.Commit < b.Commit
	})
}

// Save writes the trajectory document (two-space indent, trailing
// newline — the repo's JSON house style).
func (tr *Trajectory) Save(path string) error {
	raw, err := json.MarshalIndent(tr, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// EntriesFromResults converts parsed results into baseline/trajectory
// entries (dropping iteration counts, which are noise).
func EntriesFromResults(results []Result) []Entry {
	out := make([]Entry, 0, len(results))
	for _, r := range results {
		out = append(out, Entry{Name: r.Name, NsOp: r.NsOp, BOp: r.BOp, AllocsOp: r.AllocsOp})
	}
	return out
}
