package benchparse

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func parseFixture(t *testing.T, name string) (*Output, error) {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	return Parse(f)
}

func TestParseBenchmem(t *testing.T) {
	out, err := parseFixture(t, "bench_benchmem.txt")
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 4 {
		t.Fatalf("parsed %d results, want 4", len(out.Results))
	}
	if out.Go != "linux/amd64" || !strings.Contains(out.CPU, "Xeon") {
		t.Fatalf("metadata = %q / %q", out.Go, out.CPU)
	}
	run, ok := out.Find("BenchmarkRun")
	if !ok {
		t.Fatal("BenchmarkRun missing (GOMAXPROCS suffix not stripped?)")
	}
	if run.Iterations != 902 || run.NsOp != 1180190 || run.BOp != 361829 || run.AllocsOp != 107 {
		t.Fatalf("BenchmarkRun = %+v", run)
	}
	// A genuine zero-allocation result parses as 0, not as "not measured".
	probs, _ := out.Find("BenchmarkProbabilitiesInto")
	if probs.BOp != 0 || probs.AllocsOp != 0 {
		t.Fatalf("BenchmarkProbabilitiesInto = %+v", probs)
	}
}

func TestParseNoBenchmem(t *testing.T) {
	out, err := parseFixture(t, "bench_nobenchmem.txt")
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 4 {
		t.Fatalf("parsed %d results, want 4", len(out.Results))
	}
	// Sub-benchmark paths survive; only the -P suffix is stripped.
	sub, ok := out.Find("BenchmarkBuildStateGraph/V4096/lambda1")
	if !ok {
		t.Fatalf("sub-benchmark name mangled; got %+v", out.Results)
	}
	if sub.NsOp != 7892534 {
		t.Fatalf("sub-benchmark ns/op = %v", sub.NsOp)
	}
	// Without -benchmem the memory columns are "not measured", not zero.
	if sub.BOp != -1 || sub.AllocsOp != -1 {
		t.Fatalf("missing -benchmem should read -1/-1, got %d/%d", sub.BOp, sub.AllocsOp)
	}
}

func TestParseFailedBuild(t *testing.T) {
	_, err := parseFixture(t, "bench_failedbuild.txt")
	if err == nil || !strings.Contains(err.Error(), "build failed") {
		t.Fatalf("failed-build transcript accepted: %v", err)
	}
}

func TestParseFailVerdict(t *testing.T) {
	const transcript = "BenchmarkX-4 \t 10 \t 100 ns/op\n--- FAIL: TestBroken\nFAIL\n"
	if _, err := Parse(strings.NewReader(transcript)); err == nil {
		t.Fatal("FAIL verdict accepted")
	}
}

func TestStripProcSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkRun-4":                      "BenchmarkRun",
		"BenchmarkRun-128":                    "BenchmarkRun",
		"BenchmarkBuild/V512/lambda1-4":       "BenchmarkBuild/V512/lambda1",
		"BenchmarkForEachTinyTasks/workers1":  "BenchmarkForEachTinyTasks/workers1",
		"BenchmarkOdd-name":                   "BenchmarkOdd-name",
		"BenchmarkForEachTinyTasks/workers-4": "BenchmarkForEachTinyTasks/workers",
	}
	for in, want := range cases {
		if got := stripProcSuffix(in); got != want {
			t.Errorf("stripProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRatios(t *testing.T) {
	results := []Result{
		{Name: "BenchmarkRun", NsOp: 1000},
		{Name: "BenchmarkNaiveRun", NsOp: 3650},
		{Name: "BenchmarkProbabilitiesInto", NsOp: 10, AllocsOp: 0},
		{Name: "BenchmarkStateGraphStep/V4096/lambda1", NsOp: 5, AllocsOp: -1},
	}
	r := Ratios(results)
	if math.Abs(r["fused_speedup_vs_naive"]-3.65) > 1e-9 {
		t.Fatalf("fused ratio = %v", r["fused_speedup_vs_naive"])
	}
	if v, ok := r["probabilities_into_allocs_per_op"]; !ok || v != 0 {
		t.Fatalf("alloc invariant = %v (present=%v)", v, ok)
	}
	// Step ran without -benchmem: its alloc invariant must not report 0.
	if _, ok := r["step_allocs_per_op"]; ok {
		t.Fatal("unmeasured alloc invariant reported")
	}
	// Brute benchmarks absent: no build ratio.
	if _, ok := r["build_speedup_vs_brute_V4096_lambda1"]; ok {
		t.Fatal("ratio reported with missing benchmarks")
	}
}

func TestRatiosScaleKeys(t *testing.T) {
	results := []Result{
		{Name: "BenchmarkMitigate/V1e5", NsOp: 4.2e9},
		{Name: "BenchmarkMitigate/V1e5_topk8", NsOp: 1.4e9},
		{Name: "BenchmarkMitigate/V1e6", NsOp: 3.75e9},
		{Name: "BenchmarkBuildStateGraph/V4096/lambda1", NsOp: 5e6, AllocsOp: 29},
	}
	r := Ratios(results)
	if math.Abs(r["mitigate_topk_speedup_v1e5"]-3.0) > 1e-9 {
		t.Fatalf("topk speedup = %v", r["mitigate_topk_speedup_v1e5"])
	}
	// Budgets convert ns/op to seconds.
	if math.Abs(r["mitigate_v1e6_seconds"]-3.75) > 1e-9 {
		t.Fatalf("v1e6 budget = %v", r["mitigate_v1e6_seconds"])
	}
	if v, ok := r["build_allocs_v4096_lambda1"]; !ok || v != 29 {
		t.Fatalf("build alloc invariant = %v (present=%v)", v, ok)
	}
}

func TestCompareBudgetCeiling(t *testing.T) {
	base := &Baseline{Derived: map[string]float64{
		"mitigate_v1e6_seconds":      9.0,
		"build_allocs_v4096_lambda1": 64,
	}}
	within := []Result{
		{Name: "BenchmarkMitigate/V1e6", NsOp: 3.8e9},
		{Name: "BenchmarkBuildStateGraph/V4096/lambda1", NsOp: 5e6, AllocsOp: 31},
	}
	for _, f := range Compare(base, within, 0.25) {
		if f.Regression {
			t.Fatalf("within-budget run flagged: %+v", f)
		}
	}
	// Budgets are absolute ceilings: no threshold slack on the way up.
	over := []Result{
		{Name: "BenchmarkMitigate/V1e6", NsOp: 9.3e9},
		{Name: "BenchmarkBuildStateGraph/V4096/lambda1", NsOp: 5e6, AllocsOp: 140},
	}
	findings := Compare(base, over, 0.25)
	if len(findings) != 2 {
		t.Fatalf("findings = %+v", findings)
	}
	for _, f := range findings {
		if !f.Regression {
			t.Fatalf("blown ceiling not flagged: %+v", f)
		}
	}
}

func TestCompareFlagsSyntheticRegression(t *testing.T) {
	base := &Baseline{Derived: map[string]float64{
		"fused_speedup_vs_naive":           3.65,
		"probabilities_into_allocs_per_op": 0,
	}}
	healthy := []Result{
		{Name: "BenchmarkRun", NsOp: 1000},
		{Name: "BenchmarkNaiveRun", NsOp: 3500},
		{Name: "BenchmarkProbabilitiesInto", NsOp: 10, AllocsOp: 0},
	}
	for _, f := range Compare(base, healthy, 0.25) {
		if f.Regression {
			t.Fatalf("healthy run flagged: %+v", f)
		}
	}
	// Injected regression: fusion win collapses to 1.2×.
	regressed := []Result{
		{Name: "BenchmarkRun", NsOp: 3000},
		{Name: "BenchmarkNaiveRun", NsOp: 3600},
		{Name: "BenchmarkProbabilitiesInto", NsOp: 10, AllocsOp: 0},
	}
	findings := Compare(base, regressed, 0.25)
	hit := false
	for _, f := range findings {
		if f.Key == "fused_speedup_vs_naive" {
			hit = f.Regression
		}
	}
	if !hit {
		t.Fatalf("collapsed fusion ratio not flagged: %+v", findings)
	}
	// An allocation creeping into a pinned-zero hot loop always gates.
	leaky := []Result{{Name: "BenchmarkProbabilitiesInto", NsOp: 10, AllocsOp: 2}}
	findings = Compare(base, leaky, 0.25)
	if len(findings) != 1 || !findings[0].Regression {
		t.Fatalf("alloc leak not flagged: %+v", findings)
	}
}

func TestCompareThreshold(t *testing.T) {
	base := &Baseline{Derived: map[string]float64{"fused_speedup_vs_naive": 4.0}}
	results := []Result{
		{Name: "BenchmarkRun", NsOp: 1000},
		{Name: "BenchmarkNaiveRun", NsOp: 3200}, // ratio 3.2 = baseline − 20%
	}
	if f := Compare(base, results, 0.25); f[0].Regression {
		t.Fatalf("within-threshold drop flagged: %+v", f)
	}
	if f := Compare(base, results, 0.10); !f[0].Regression {
		t.Fatalf("past-threshold drop not flagged: %+v", f)
	}
}

func TestBaselinesParseAndRecompute(t *testing.T) {
	// The checked-in baselines must parse under the unified schema, and
	// their derived keys must be consistent with what Ratios recomputes
	// from their own entries — the files cannot drift from the
	// definitions. Speedup ratios must match exactly; alloc invariants
	// and wall-clock budgets are ceilings (the recorded value may carry
	// headroom over the measurement), so the recomputed value must only
	// stay at or under them.
	for _, path := range []string{"../../BENCH_core.json", "../../BENCH_sim.json"} {
		base, err := LoadBaseline(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if len(base.Benchmarks) == 0 || len(base.Derived) == 0 {
			t.Fatalf("%s: empty baseline", path)
		}
		results := make([]Result, 0, len(base.Benchmarks))
		for _, e := range base.Benchmarks {
			results = append(results, Result{Name: e.Name, NsOp: e.NsOp, BOp: e.BOp, AllocsOp: e.AllocsOp})
		}
		recomputed := Ratios(results)
		for key, want := range base.Derived {
			got, ok := recomputed[key]
			if !ok {
				t.Errorf("%s: derived %q not recomputable from its own entries", path, key)
				continue
			}
			_, isAlloc := KnownAllocInvariants[key]
			_, isBudget := KnownBudgets[key]
			if isAlloc || isBudget {
				if got > want {
					t.Errorf("%s: ceiling %q = %v exceeded by its own entries (%v)", path, key, want, got)
				}
				continue
			}
			if math.Abs(got-want) > 0.01+1e-9 {
				t.Errorf("%s: derived %q = %v, recomputed %v", path, key, want, got)
			}
		}
	}
}

func TestTrajectoryAppendIdempotentAndOrdered(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_trajectory.json")
	tr, err := LoadTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Rows) != 0 {
		t.Fatalf("missing file should load empty, got %d rows", len(tr.Rows))
	}
	row := func(commit, date, suite string, ns float64) Row {
		return Row{Commit: commit, Date: date, Suite: suite,
			Benchmarks: []Entry{{Name: "BenchmarkRun", NsOp: ns}}}
	}
	// Out-of-order appends...
	tr.Append(row("bbb", "2026-08-07", "sim", 1200))
	tr.Append(row("aaa", "2026-08-05", "sim", 1180))
	tr.Append(row("aaa", "2026-08-05", "core", 540))
	// ...and a re-run at an existing (commit, suite) replaces, not duplicates.
	tr.Append(row("bbb", "2026-08-07", "sim", 1190))
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != 3 {
		t.Fatalf("got %d rows, want 3: %+v", len(back.Rows), back.Rows)
	}
	wantOrder := []string{"core/aaa", "sim/aaa", "sim/bbb"}
	for i, w := range wantOrder {
		got := back.Rows[i].Suite + "/" + back.Rows[i].Commit
		if got != w {
			t.Fatalf("row %d = %s, want %s (rows %+v)", i, got, w, back.Rows)
		}
	}
	if back.Rows[2].Benchmarks[0].NsOp != 1190 {
		t.Fatalf("re-append did not replace: %+v", back.Rows[2])
	}
}
