package metrics

import (
	"math"
	"strings"
	"testing"

	"qbeep/internal/bitstring"
)

func TestPST(t *testing.T) {
	d := bitstring.NewDist(3)
	d.Add(0b101, 75)
	d.Add(0b100, 25)
	got, err := PST(d, 0b101)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.75 {
		t.Errorf("PST = %v", got)
	}
	if _, err := PST(bitstring.NewDist(3), 0); err == nil {
		t.Error("empty counts should error")
	}
	if _, err := PST(nil, 0); err == nil {
		t.Error("nil counts should error")
	}
}

func TestIST(t *testing.T) {
	d := bitstring.NewDist(3)
	d.Add(0b101, 80)
	d.Add(0b100, 16)
	d.Add(0b001, 4)
	got, ok := IST(d, 0b101)
	if !ok || got != 5 {
		t.Errorf("IST = %v ok=%v, want 5 true", got, ok)
	}
	// All mass correct: the ratio is unbounded, reported as not-ok.
	pure := bitstring.NewDist(3)
	pure.Add(0b101, 100)
	if _, ok := IST(pure, 0b101); ok {
		t.Error("no incorrect mass must report ok=false")
	}
	if _, ok := IST(nil, 0); ok {
		t.Error("nil counts must report ok=false")
	}
	if _, ok := IST(bitstring.NewDist(3), 0); ok {
		t.Error("empty counts must report ok=false")
	}
	// Correct answer never observed: IST is 0, but well-defined.
	if got, ok := IST(d, 0b111); !ok || got != 0 {
		t.Errorf("unobserved correct: %v ok=%v, want 0 true", got, ok)
	}
}

func TestRelativeImprovement(t *testing.T) {
	r, err := RelativeImprovement(0.2, 0.5)
	if err != nil || math.Abs(r-2.5) > 1e-12 {
		t.Errorf("ratio %v err %v", r, err)
	}
	if _, err := RelativeImprovement(0, 1); err == nil {
		t.Error("zero baseline should error")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{0.5, 1.0, 2.0, 4.5})
	if s.N != 4 {
		t.Errorf("N = %d", s.N)
	}
	if s.Max != 4.5 || s.Min != 0.5 {
		t.Errorf("max/min %v/%v", s.Max, s.Min)
	}
	if math.Abs(s.Mean-2.0) > 1e-12 {
		t.Errorf("mean %v", s.Mean)
	}
	if math.Abs(s.FracLoss-0.25) > 1e-12 {
		t.Errorf("fracLoss %v", s.FracLoss)
	}
	if !strings.Contains(s.String(), "n=4") {
		t.Errorf("String: %s", s)
	}
	if Summarize(nil).N != 0 || Summarize(nil).String() != "n=0" {
		t.Error("empty summary wrong")
	}
}

func TestGainPercent(t *testing.T) {
	if g := GainPercent(2.346); math.Abs(g-134.6) > 1e-9 {
		t.Errorf("GainPercent(2.346) = %v", g)
	}
	if g := GainPercent(1); g != 0 {
		t.Errorf("GainPercent(1) = %v", g)
	}
}

func TestSafeRatio(t *testing.T) {
	if r := SafeRatio(0.5, 1.0, 99); r != 2 {
		t.Errorf("SafeRatio = %v", r)
	}
	if r := SafeRatio(0, 1, 99); r != 99 {
		t.Errorf("fallback = %v", r)
	}
	if r := SafeRatio(math.NaN(), 1, 7); r != 7 {
		t.Errorf("NaN fallback = %v", r)
	}
}

func TestFidelityReexport(t *testing.T) {
	d := bitstring.NewDist(2)
	d.Add(0, 1)
	if Fidelity(d, d) != bitstring.Fidelity(d, d) {
		t.Error("re-export mismatch")
	}
}
