// Package metrics computes the evaluation metrics the paper reports:
// Probability of Successful Trial (PST, Eq. 6), classical fidelity, Cost
// Ratio improvements, and relative-change summaries.
package metrics

import (
	"fmt"
	"math"

	"qbeep/internal/bitstring"
	"qbeep/internal/mathx"
)

// PST returns the Probability of Successful Trial: the fraction of
// observations equal to the correct bit-string (paper Eq. 6).
func PST(counts *bitstring.Dist, correct bitstring.BitString) (float64, error) {
	if counts == nil || counts.Total() == 0 {
		return 0, fmt.Errorf("metrics: empty counts")
	}
	return counts.Prob(correct), nil
}

// IST returns the Inference Strength of Trial: P(correct) over the
// probability of the strongest incorrect outcome — how decisively the
// correct answer stands out after mitigation. ok is false when every
// observation is correct (no incorrect mass; the ratio is unbounded)
// or the distribution is empty.
func IST(counts *bitstring.Dist, correct bitstring.BitString) (ist float64, ok bool) {
	if counts == nil || counts.Total() == 0 {
		return 0, false
	}
	var worst float64
	counts.Each(func(v bitstring.BitString, c float64) {
		if v != correct && c > worst {
			worst = c
		}
	})
	if worst <= 0 {
		return 0, false
	}
	return counts.Count(correct) / worst, true
}

// Fidelity is the classical (Bhattacharyya) fidelity between the ideal and
// observed distributions — re-exported here so metric call sites read
// uniformly.
func Fidelity(ideal, observed *bitstring.Dist) float64 {
	return bitstring.Fidelity(ideal, observed)
}

// RelativeImprovement returns after/before, the paper's improvement ratio
// (1.77× etc.). A zero or negative baseline yields an error: the ratio is
// undefined.
func RelativeImprovement(before, after float64) (float64, error) {
	if before <= 0 {
		return 0, fmt.Errorf("metrics: baseline %v must be positive", before)
	}
	return after / before, nil
}

// Summary aggregates a series of per-circuit relative improvements the way
// the paper quotes them: mean, max, and the failure fraction (ratio < 1).
type Summary struct {
	N        int
	Mean     float64
	Median   float64
	Max      float64
	Min      float64
	FracLoss float64 // fraction of ratios below 1 (regressions)
}

// Summarize computes a Summary over improvement ratios.
func Summarize(ratios []float64) Summary {
	if len(ratios) == 0 {
		return Summary{}
	}
	return Summary{
		N:        len(ratios),
		Mean:     mathx.Mean(ratios),
		Median:   mathx.Median(ratios),
		Max:      mathx.Max(ratios),
		Min:      mathx.Min(ratios),
		FracLoss: mathx.FractionBelow(ratios, 1),
	}
}

// String renders the summary the way experiment tables print it.
func (s Summary) String() string {
	if s.N == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.3f median=%.3f max=%.3f min=%.3f regressions=%.1f%%",
		s.N, s.Mean, s.Median, s.Max, s.Min, 100*s.FracLoss)
}

// GainPercent converts an improvement ratio to the percentage-gain form
// the paper's abstract uses (2.346× → “234.6%” fidelity boost means the
// ratio-minus-one percentage).
func GainPercent(ratio float64) float64 {
	return (ratio - 1) * 100
}

// SafeRatio returns after/before, or fallback when before is ~0 — used
// when aggregating series that can contain zero baselines (e.g. PST of a
// fully-scrambled circuit).
func SafeRatio(before, after, fallback float64) float64 {
	if before <= 1e-12 || math.IsNaN(before) {
		return fallback
	}
	return after / before
}
