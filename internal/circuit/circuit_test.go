package circuit

import (
	"strings"
	"testing"
)

func TestKindStringAndArity(t *testing.T) {
	cases := []struct {
		k     Kind
		name  string
		arity int
		param int
	}{
		{H, "h", 1, 0},
		{CX, "cx", 2, 0},
		{CCX, "ccx", 3, 0},
		{RZ, "rz", 1, 1},
		{U3, "u3", 1, 3},
		{Measure, "measure", 1, 0},
		{Barrier, "barrier", 0, 0},
		{CSWAP, "cswap", 3, 0},
	}
	for _, c := range cases {
		if c.k.String() != c.name {
			t.Errorf("%v String = %q want %q", int(c.k), c.k.String(), c.name)
		}
		if c.k.Arity() != c.arity {
			t.Errorf("%s Arity = %d want %d", c.name, c.k.Arity(), c.arity)
		}
		if c.k.ParamCount() != c.param {
			t.Errorf("%s ParamCount = %d want %d", c.name, c.k.ParamCount(), c.param)
		}
	}
	if Kind(99).String() != "kind(99)" {
		t.Error("unknown kind String")
	}
	if Measure.IsUnitary() || Barrier.IsUnitary() || !H.IsUnitary() {
		t.Error("IsUnitary wrong")
	}
}

func TestGateValidate(t *testing.T) {
	cases := []struct {
		g    Gate
		ok   bool
		name string
	}{
		{Gate{Kind: H, Qubits: []int{0}}, true, "h ok"},
		{Gate{Kind: H, Qubits: []int{0, 1}}, false, "h arity"},
		{Gate{Kind: CX, Qubits: []int{0, 1}}, true, "cx ok"},
		{Gate{Kind: CX, Qubits: []int{0, 0}}, false, "cx duplicate"},
		{Gate{Kind: CX, Qubits: []int{0, 5}}, false, "cx out of range"},
		{Gate{Kind: CX, Qubits: []int{-1, 1}}, false, "negative qubit"},
		{Gate{Kind: RZ, Qubits: []int{0}, Params: []float64{1.5}}, true, "rz ok"},
		{Gate{Kind: RZ, Qubits: []int{0}}, false, "rz missing param"},
		{Gate{Kind: H, Qubits: []int{0}, Params: []float64{1}}, false, "h spurious param"},
		{Gate{Kind: Barrier, Qubits: []int{0, 1, 2}}, true, "barrier ok"},
		{Gate{Kind: Barrier}, false, "barrier empty"},
		{Gate{Kind: U3, Qubits: []int{1}, Params: []float64{1, 2, 3}}, true, "u3 ok"},
	}
	for _, c := range cases {
		err := c.g.Validate(4)
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestGateString(t *testing.T) {
	g := Gate{Kind: CX, Qubits: []int{0, 2}}
	if got := g.String(); got != "cx q[0],q[2]" {
		t.Errorf("String = %q", got)
	}
	g = Gate{Kind: RZ, Qubits: []int{1}, Params: []float64{0.5}}
	if got := g.String(); got != "rz(0.5) q[1]" {
		t.Errorf("String = %q", got)
	}
}

func TestBuilderHappyPath(t *testing.T) {
	c, err := New("bell", 2).H(0).CX(0, 1).MeasureAll().Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Gates) != 4 {
		t.Errorf("gate count %d", len(c.Gates))
	}
	if c.GateCount() != 2 {
		t.Errorf("unitary count %d", c.GateCount())
	}
	if !c.HasMeasurement() {
		t.Error("HasMeasurement false")
	}
	if c.Depth() != 3 {
		t.Errorf("depth %d want 3", c.Depth())
	}
}

func TestBuilderErrorSticks(t *testing.T) {
	c := New("bad", 2).H(5).CX(0, 1)
	if c.Err() == nil {
		t.Fatal("expected sticky error")
	}
	if len(c.Gates) != 0 {
		t.Error("gates appended after error")
	}
	if _, err := c.Finalize(); err == nil {
		t.Error("Finalize should surface error")
	}
}

func TestNewZeroWidth(t *testing.T) {
	if _, err := New("zero", 0).Finalize(); err == nil {
		t.Error("zero width should error")
	}
}

func TestDepthParallelism(t *testing.T) {
	// Two disjoint H gates share a layer.
	c := New("par", 2).H(0).H(1)
	if c.Depth() != 1 {
		t.Errorf("depth %d want 1", c.Depth())
	}
	// A barrier forces the next layer to start after both.
	c = New("barrier", 3).H(0).Barrier().H(1)
	if c.Depth() != 2 {
		t.Errorf("depth with barrier %d want 2", c.Depth())
	}
	// Without the barrier the same gates would be one layer deep.
	c = New("nobarrier", 3).H(0).H(1)
	if c.Depth() != 1 {
		t.Errorf("depth without barrier %d want 1", c.Depth())
	}
}

func TestCounts(t *testing.T) {
	c := New("counts", 3).H(0).H(1).CX(0, 1).CCX(0, 1, 2).RZ(0.3, 2).MeasureAll()
	if got := c.CountKind(H); got != 2 {
		t.Errorf("CountKind(H) = %d", got)
	}
	if got := c.TwoQubitCount(); got != 2 {
		t.Errorf("TwoQubitCount = %d", got)
	}
	m := c.CountByKind()
	if m[H] != 2 || m[CX] != 1 || m[CCX] != 1 || m[RZ] != 1 {
		t.Errorf("CountByKind = %v", m)
	}
	if _, ok := m[Measure]; ok {
		t.Error("CountByKind should exclude measurements")
	}
	if got := len(c.Unitaries()); got != 5 {
		t.Errorf("Unitaries = %d", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	c := New("orig", 2).H(0)
	d := c.Clone()
	d.X(1)
	if len(c.Gates) != 1 || len(d.Gates) != 2 {
		t.Error("clone shares gate slice")
	}
	d.Gates[0].Qubits[0] = 1
	if c.Gates[0].Qubits[0] != 0 {
		t.Error("clone shares qubit slices")
	}
}

func TestCircuitString(t *testing.T) {
	c := New("demo", 2).H(0).CX(0, 1)
	s := c.String()
	if !strings.Contains(s, "demo (2 qubits, 2 gates)") {
		t.Errorf("header missing: %q", s)
	}
	if !strings.Contains(s, "h q[0]") || !strings.Contains(s, "cx q[0],q[1]") {
		t.Errorf("gates missing: %q", s)
	}
}

func TestBarrierDefaultsToAllQubits(t *testing.T) {
	c := New("b", 3).Barrier()
	if len(c.Gates) != 1 || len(c.Gates[0].Qubits) != 3 {
		t.Fatalf("barrier gates = %v", c.Gates)
	}
}

func TestMeasureAll(t *testing.T) {
	c := New("m", 4).MeasureAll()
	if got := c.CountKind(Measure); got != 4 {
		t.Errorf("measure count %d", got)
	}
}

func TestFluentBuilderCoversAllGates(t *testing.T) {
	c := New("all", 4).
		I(0).X(0).Y(0).Z(0).H(0).S(0).Sdg(0).T(0).Tdg(0).SX(0).
		RX(0.1, 1).RY(0.2, 1).RZ(0.3, 1).U3(0.1, 0.2, 0.3, 1).
		CX(0, 1).CZ(1, 2).SWAP(2, 3).CCX(0, 1, 2).CSWAP(0, 1, 2).
		Measure(3)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if got := len(c.Gates); got != 20 {
		t.Errorf("gate count %d want 20", got)
	}
	kinds := map[Kind]bool{}
	for _, g := range c.Gates {
		kinds[g.Kind] = true
	}
	for _, k := range []Kind{I, X, Y, Z, H, S, Sdg, T, Tdg, SX, RX, RY, RZ,
		U3, CX, CZ, SWAP, CCX, CSWAP, Measure} {
		if !kinds[k] {
			t.Errorf("builder missing %s", k)
		}
	}
}
