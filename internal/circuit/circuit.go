package circuit

import (
	"fmt"
	"strings"
)

// Circuit is an ordered list of gates over an n-qubit register with a
// classical register of the same width. Builders append via the fluent
// helpers; a malformed append records the first error, which surfaces from
// Err/Finalize — so construction code stays linear, in the spirit of
// bytes.Buffer.
type Circuit struct {
	Name  string
	N     int
	Gates []Gate
	err   error
}

// New returns an empty circuit over n qubits.
func New(name string, n int) *Circuit {
	c := &Circuit{Name: name, N: n}
	if n <= 0 {
		c.err = fmt.Errorf("circuit: width %d must be positive", n)
	}
	return c
}

// Err returns the first construction error, if any.
func (c *Circuit) Err() error { return c.err }

// Append adds a gate after validating it. Invalid gates are dropped and
// recorded in Err.
func (c *Circuit) Append(g Gate) *Circuit {
	if c.err != nil {
		return c
	}
	if err := g.Validate(c.N); err != nil {
		c.err = fmt.Errorf("%w (gate %d)", err, len(c.Gates))
		return c
	}
	c.Gates = append(c.Gates, g)
	return c
}

func (c *Circuit) add(k Kind, params []float64, qubits ...int) *Circuit {
	return c.Append(Gate{Kind: k, Qubits: qubits, Params: params})
}

// The fluent builder vocabulary.

func (c *Circuit) I(q int) *Circuit   { return c.add(I, nil, q) }
func (c *Circuit) X(q int) *Circuit   { return c.add(X, nil, q) }
func (c *Circuit) Y(q int) *Circuit   { return c.add(Y, nil, q) }
func (c *Circuit) Z(q int) *Circuit   { return c.add(Z, nil, q) }
func (c *Circuit) H(q int) *Circuit   { return c.add(H, nil, q) }
func (c *Circuit) S(q int) *Circuit   { return c.add(S, nil, q) }
func (c *Circuit) Sdg(q int) *Circuit { return c.add(Sdg, nil, q) }
func (c *Circuit) T(q int) *Circuit   { return c.add(T, nil, q) }
func (c *Circuit) Tdg(q int) *Circuit { return c.add(Tdg, nil, q) }
func (c *Circuit) SX(q int) *Circuit  { return c.add(SX, nil, q) }
func (c *Circuit) RX(theta float64, q int) *Circuit {
	return c.add(RX, []float64{theta}, q)
}
func (c *Circuit) RY(theta float64, q int) *Circuit {
	return c.add(RY, []float64{theta}, q)
}
func (c *Circuit) RZ(phi float64, q int) *Circuit {
	return c.add(RZ, []float64{phi}, q)
}
func (c *Circuit) U3(theta, phi, lambda float64, q int) *Circuit {
	return c.add(U3, []float64{theta, phi, lambda}, q)
}
func (c *Circuit) CX(ctrl, tgt int) *Circuit    { return c.add(CX, nil, ctrl, tgt) }
func (c *Circuit) CZ(a, b int) *Circuit         { return c.add(CZ, nil, a, b) }
func (c *Circuit) SWAP(a, b int) *Circuit       { return c.add(SWAP, nil, a, b) }
func (c *Circuit) CCX(c1, c2, tgt int) *Circuit { return c.add(CCX, nil, c1, c2, tgt) }
func (c *Circuit) CSWAP(ctrl, a, b int) *Circuit {
	return c.add(CSWAP, nil, ctrl, a, b)
}
func (c *Circuit) Measure(q int) *Circuit { return c.add(Measure, nil, q) }

// MeasureAll appends a measurement on every qubit.
func (c *Circuit) MeasureAll() *Circuit {
	for q := 0; q < c.N; q++ {
		c.Measure(q)
	}
	return c
}

// Barrier appends a barrier over the given qubits (all qubits if none
// given).
func (c *Circuit) Barrier(qs ...int) *Circuit {
	if len(qs) == 0 {
		qs = make([]int, c.N)
		for i := range qs {
			qs[i] = i
		}
	}
	return c.add(Barrier, nil, qs...)
}

// Finalize returns the circuit and any accumulated construction error.
func (c *Circuit) Finalize() (*Circuit, error) {
	if c.err != nil {
		return nil, c.err
	}
	return c, nil
}

// Clone returns a deep copy of the circuit (error state included).
func (c *Circuit) Clone() *Circuit {
	out := &Circuit{Name: c.Name, N: c.N, err: c.err}
	out.Gates = make([]Gate, len(c.Gates))
	for i, g := range c.Gates {
		out.Gates[i] = g.Clone()
	}
	return out
}

// GateCount returns the number of unitary gates (measurements and barriers
// excluded), the metric Fig. 4 plots EHD against.
func (c *Circuit) GateCount() int {
	n := 0
	for _, g := range c.Gates {
		if g.Kind.IsUnitary() {
			n++
		}
	}
	return n
}

// CountKind returns the number of gates of kind k.
func (c *Circuit) CountKind(k Kind) int {
	n := 0
	for _, g := range c.Gates {
		if g.Kind == k {
			n++
		}
	}
	return n
}

// CountByKind returns the per-kind unitary gate counts (the U_count terms of
// paper Eq. 2).
func (c *Circuit) CountByKind() map[Kind]int {
	m := make(map[Kind]int)
	for _, g := range c.Gates {
		if g.Kind.IsUnitary() {
			m[g.Kind]++
		}
	}
	return m
}

// TwoQubitCount returns the number of 2+ qubit unitary gates.
func (c *Circuit) TwoQubitCount() int {
	n := 0
	for _, g := range c.Gates {
		if g.Kind.IsUnitary() && len(g.Qubits) >= 2 {
			n++
		}
	}
	return n
}

// Depth returns the circuit depth: the length of the longest chain of
// gates sharing qubits, with barriers synchronizing all listed qubits and
// measurements counting as a layer on their qubit.
func (c *Circuit) Depth() int {
	level := make([]int, c.N)
	depth := 0
	for _, g := range c.Gates {
		max := 0
		for _, q := range g.Qubits {
			if level[q] > max {
				max = level[q]
			}
		}
		if g.Kind == Barrier {
			for _, q := range g.Qubits {
				level[q] = max
			}
			continue
		}
		for _, q := range g.Qubits {
			level[q] = max + 1
		}
		if max+1 > depth {
			depth = max + 1
		}
	}
	return depth
}

// HasMeasurement reports whether the circuit contains any measurement.
func (c *Circuit) HasMeasurement() bool {
	for _, g := range c.Gates {
		if g.Kind == Measure {
			return true
		}
	}
	return false
}

// Unitaries returns the circuit's unitary gates in order (no copies).
func (c *Circuit) Unitaries() []Gate {
	out := make([]Gate, 0, len(c.Gates))
	for _, g := range c.Gates {
		if g.Kind.IsUnitary() {
			out = append(out, g)
		}
	}
	return out
}

// String renders the circuit one gate per line.
func (c *Circuit) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%d qubits, %d gates)\n", c.Name, c.N, len(c.Gates))
	for _, g := range c.Gates {
		b.WriteString("  ")
		b.WriteString(g.String())
		b.WriteByte('\n')
	}
	return b.String()
}
