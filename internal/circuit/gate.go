// Package circuit defines the quantum-circuit intermediate representation
// shared by the builders (internal/algorithms), the transpiler
// (internal/transpile), the simulators (internal/statevector,
// internal/noise) and the QASM serializer (internal/qasm).
package circuit

import "fmt"

// Kind identifies a gate operation.
type Kind int

// The supported gate set. The first block is the logical vocabulary the
// algorithm builders use; {RZ, SX, X, CX} is the IBMQ-style hardware basis
// the transpiler targets.
const (
	I Kind = iota
	X
	Y
	Z
	H
	S
	Sdg
	T
	Tdg
	SX
	RX
	RY
	RZ
	U3 // general single-qubit rotation U3(θ, φ, λ)
	CX
	CZ
	SWAP
	CCX // Toffoli
	CSWAP
	Measure
	Barrier
)

var kindNames = map[Kind]string{
	I: "id", X: "x", Y: "y", Z: "z", H: "h", S: "s", Sdg: "sdg",
	T: "t", Tdg: "tdg", SX: "sx", RX: "rx", RY: "ry", RZ: "rz", U3: "u3",
	CX: "cx", CZ: "cz", SWAP: "swap", CCX: "ccx", CSWAP: "cswap",
	Measure: "measure", Barrier: "barrier",
}

// String returns the OpenQASM mnemonic for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Arity returns how many qubits the kind acts on (Barrier reports 0: it
// applies to whatever qubit list it is given).
func (k Kind) Arity() int {
	switch k {
	case CX, CZ, SWAP:
		return 2
	case CCX, CSWAP:
		return 3
	case Barrier:
		return 0
	default:
		return 1
	}
}

// ParamCount returns the number of rotation parameters the kind takes.
func (k Kind) ParamCount() int {
	switch k {
	case RX, RY, RZ:
		return 1
	case U3:
		return 3
	default:
		return 0
	}
}

// IsUnitary reports whether the kind is a unitary gate (as opposed to
// measurement or barrier).
func (k Kind) IsUnitary() bool { return k != Measure && k != Barrier }

// Gate is one operation in a circuit: a kind, the qubits it acts on
// (control(s) first for controlled gates), and rotation parameters.
type Gate struct {
	Kind   Kind
	Qubits []int
	Params []float64
}

// Validate checks arity, parameter count, qubit bounds and distinctness
// against an n-qubit register.
func (g Gate) Validate(n int) error {
	if a := g.Kind.Arity(); a != 0 && len(g.Qubits) != a {
		return fmt.Errorf("circuit: %s expects %d qubits, got %d", g.Kind, a, len(g.Qubits))
	}
	if g.Kind == Barrier && len(g.Qubits) == 0 {
		return fmt.Errorf("circuit: barrier needs at least one qubit")
	}
	if p := g.Kind.ParamCount(); len(g.Params) != p {
		return fmt.Errorf("circuit: %s expects %d params, got %d", g.Kind, p, len(g.Params))
	}
	seen := make(map[int]bool, len(g.Qubits))
	for _, q := range g.Qubits {
		if q < 0 || q >= n {
			return fmt.Errorf("circuit: qubit %d out of range [0,%d)", q, n)
		}
		if seen[q] {
			return fmt.Errorf("circuit: %s uses qubit %d twice", g.Kind, q)
		}
		seen[q] = true
	}
	return nil
}

// String renders the gate in QASM-like form, e.g. "cx q[0],q[2]".
func (g Gate) String() string {
	s := g.Kind.String()
	if len(g.Params) > 0 {
		s += "("
		for i, p := range g.Params {
			if i > 0 {
				s += ","
			}
			s += fmt.Sprintf("%g", p)
		}
		s += ")"
	}
	for i, q := range g.Qubits {
		if i == 0 {
			s += " "
		} else {
			s += ","
		}
		s += fmt.Sprintf("q[%d]", q)
	}
	return s
}

// Clone returns a deep copy of the gate.
func (g Gate) Clone() Gate {
	return Gate{
		Kind:   g.Kind,
		Qubits: append([]int(nil), g.Qubits...),
		Params: append([]float64(nil), g.Params...),
	}
}
