package results

import (
	"os"
	"path/filepath"
	"testing"
)

func TestDecodeBareCounts(t *testing.T) {
	f, err := Decode([]byte(`{"0101": 3812, "0111": 120}`))
	if err != nil {
		t.Fatal(err)
	}
	if f.Counts["0101"] != 3812 || f.Backend != "" {
		t.Errorf("decoded %+v", f)
	}
}

func TestDecodeEnvelope(t *testing.T) {
	f, err := Decode([]byte(`{
		"backend": "istanbul", "shots": 4096, "lambda": 1.31,
		"counts": {"01": 100, "10": 50}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if f.Backend != "istanbul" || f.Shots != 4096 || f.Lambda != 1.31 {
		t.Errorf("metadata lost: %+v", f)
	}
	if f.Counts["01"] != 100 {
		t.Errorf("counts lost: %v", f.Counts)
	}
}

func TestDecodeRejectsBad(t *testing.T) {
	cases := []string{
		`not json`,
		`{"counts": {}}`,
		`{}`,
		`{"0x1": 5}`,
		`{"01": -3}`,
		`{"01": 1, "011": 2}`,
		`{"counts": {"01": 1}, "lambda": -2}`,
	}
	for _, src := range cases {
		if _, err := Decode([]byte(src)); err == nil {
			t.Errorf("should reject %q", src)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.json")
	orig := &File{
		Backend: "galway",
		Circuit: "bv-8",
		Shots:   2048,
		Seed:    7,
		Lambda:  0.92,
		Counts:  map[string]float64{"10110100": 1800, "10110101": 248},
	}
	if err := orig.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Backend != orig.Backend || back.Lambda != orig.Lambda || back.Seed != orig.Seed {
		t.Errorf("metadata changed: %+v", back)
	}
	for k, v := range orig.Counts {
		if back.Counts[k] != v {
			t.Errorf("count %s changed", k)
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("missing file should error")
	}
}

func TestLoadBareFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bare.json")
	if err := os.WriteFile(path, []byte(`{"11": 7}`), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Counts["11"] != 7 {
		t.Errorf("bare load failed: %+v", f)
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	f := &File{Counts: map[string]float64{}}
	if _, err := f.Encode(); err == nil {
		t.Error("empty counts should not encode")
	}
}
