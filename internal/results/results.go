// Package results defines the on-disk interchange format for measurement
// counts used by the command-line tools. Two shapes are accepted:
//
//   - a bare counts object, the shape vendor SDKs dump:
//     {"0101": 3812, "0111": 120}
//
//   - an envelope carrying run metadata, which lets downstream tools
//     mitigate without re-supplying the circuit and backend:
//     {"backend": "istanbul", "shots": 4096, "lambda": 1.31,
//     "counts": {"0101": 3812, ...}}
//
// Load sniffs the shape; Save always writes the envelope.
package results

import (
	"encoding/json"
	"fmt"
	"os"
)

// File is the metadata envelope.
type File struct {
	Backend string             `json:"backend,omitempty"`
	Circuit string             `json:"circuit,omitempty"` // name or source path
	Shots   int                `json:"shots,omitempty"`
	Seed    uint64             `json:"seed,omitempty"`
	Lambda  float64            `json:"lambda,omitempty"` // pre-induction Eq. 2 estimate
	Counts  map[string]float64 `json:"counts"`
}

// Validate checks the envelope carries usable counts.
func (f *File) Validate() error {
	if len(f.Counts) == 0 {
		return fmt.Errorf("results: no counts")
	}
	width := -1
	for s, c := range f.Counts {
		if c < 0 {
			return fmt.Errorf("results: negative count for %q", s)
		}
		if width == -1 {
			width = len(s)
		} else if len(s) != width {
			return fmt.Errorf("results: mixed bit-string widths %d and %d", width, len(s))
		}
		for _, ch := range s {
			if ch != '0' && ch != '1' {
				return fmt.Errorf("results: invalid bit-string %q", s)
			}
		}
	}
	if f.Lambda < 0 {
		return fmt.Errorf("results: negative lambda %v", f.Lambda)
	}
	return nil
}

// Decode parses either accepted shape from raw JSON.
func Decode(data []byte) (*File, error) {
	// Try the envelope first: it is unambiguous because the bare shape
	// has float values, never objects.
	var env File
	if err := json.Unmarshal(data, &env); err == nil && env.Counts != nil {
		if err := env.Validate(); err != nil {
			return nil, err
		}
		return &env, nil
	}
	var bare map[string]float64
	if err := json.Unmarshal(data, &bare); err != nil {
		return nil, fmt.Errorf("results: not a counts object or envelope: %w", err)
	}
	f := &File{Counts: bare}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// Load reads and decodes a counts file.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// Encode renders the envelope as indented JSON.
func (f *File) Encode() ([]byte, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Save writes the envelope to path.
func (f *File) Save(path string) error {
	data, err := f.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
