package algorithms

import (
	"math"
	"testing"

	"qbeep/internal/bitstring"
	"qbeep/internal/circuit"
	"qbeep/internal/mathx"
	"qbeep/internal/statevector"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestBernsteinVaziraniRecoversSecret(t *testing.T) {
	for _, n := range []int{3, 5, 8, 12} {
		rng := mathx.NewRNG(uint64(n))
		secret := RandomSecret(n, rng)
		w, err := BernsteinVazirani(n, secret)
		if err != nil {
			t.Fatal(err)
		}
		if !w.Deterministic || w.Expected != secret {
			t.Fatalf("n=%d: workload metadata wrong", n)
		}
		ideal, err := w.IdealDist()
		if err != nil {
			t.Fatal(err)
		}
		if !approx(ideal.Prob(secret), 1, 1e-9) {
			t.Errorf("n=%d: P(secret) = %v", n, ideal.Prob(secret))
		}
	}
}

func TestBernsteinVaziraniValidation(t *testing.T) {
	if _, err := BernsteinVazirani(0, 0); err == nil {
		t.Error("zero width should error")
	}
	if _, err := BernsteinVazirani(3, 0b1111); err == nil {
		t.Error("oversized secret should error")
	}
}

func TestRandomSecretNonZero(t *testing.T) {
	rng := mathx.NewRNG(1)
	for i := 0; i < 100; i++ {
		s := RandomSecret(6, rng)
		if s == 0 || uint64(s) >= 64 {
			t.Fatalf("secret %d out of range", s)
		}
	}
}

func TestRandomizedBenchmarkingIdentity(t *testing.T) {
	rng := mathx.NewRNG(44)
	for _, layers := range []int{1, 4, 8} {
		w, err := RandomizedBenchmarking(5, layers, rng)
		if err != nil {
			t.Fatal(err)
		}
		ideal, err := w.IdealDist()
		if err != nil {
			t.Fatal(err)
		}
		if !approx(ideal.Prob(w.Expected), 1, 1e-9) {
			t.Errorf("layers=%d: P(expected) = %v", layers, ideal.Prob(w.Expected))
		}
	}
}

func TestSuiteAllBuildAndSimulate(t *testing.T) {
	for _, e := range Suite() {
		w, err := e.Build()
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if w.Circuit.Err() != nil {
			t.Fatalf("%s: circuit error %v", e.Name, w.Circuit.Err())
		}
		ideal, err := w.IdealDist()
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if ideal.Support() == 0 {
			t.Fatalf("%s: empty ideal distribution", e.Name)
		}
		var sum float64
		ideal.Each(func(_ bitstring.BitString, c float64) { sum += c })
		if !approx(sum, 1, 1e-9) {
			t.Errorf("%s: ideal mass %v", e.Name, sum)
		}
		if !w.Circuit.HasMeasurement() {
			t.Errorf("%s: no measurements", e.Name)
		}
	}
}

func TestSuiteNamesSortedUnique(t *testing.T) {
	entries := Suite()
	if len(entries) < 12 {
		t.Fatalf("suite has %d entries, want >= 12 (the paper uses 12-14)", len(entries))
	}
	for i := 1; i < len(entries); i++ {
		if entries[i-1].Name >= entries[i].Name {
			t.Errorf("suite not sorted at %d: %s >= %s", i, entries[i-1].Name, entries[i].Name)
		}
	}
}

func TestBySuiteName(t *testing.T) {
	w, err := BySuiteName("adder_n4")
	if err != nil {
		t.Fatal(err)
	}
	if w.Circuit.Name != "adder-n4" {
		t.Errorf("got %q", w.Circuit.Name)
	}
	if _, err := BySuiteName("nope"); err == nil {
		t.Error("unknown name should error")
	}
}

func TestDeterministicBenchmarks(t *testing.T) {
	for _, name := range []string{"adder_n4", "toffoli_n3", "fredkin_n3", "hs4_n4"} {
		w, err := BySuiteName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !w.Deterministic {
			t.Errorf("%s should be deterministic", name)
		}
		ideal, _ := w.IdealDist()
		if !approx(ideal.Prob(w.Expected), 1, 1e-9) {
			t.Errorf("%s: P(expected)=%v", name, ideal.Prob(w.Expected))
		}
	}
}

func TestToffoliOutput(t *testing.T) {
	w, _ := Toffoli()
	if w.Expected != 0b111 {
		t.Errorf("toffoli expected %03b want 111", w.Expected)
	}
}

func TestFredkinSwaps(t *testing.T) {
	w, _ := Fredkin()
	// control q0=1, q1=1, q2=0 -> swap q1,q2 -> q0=1,q1=0,q2=1 = 101.
	if w.Expected != 0b101 {
		t.Errorf("fredkin expected %03b want 101", w.Expected)
	}
}

func TestAdderComputesSum(t *testing.T) {
	w, _ := Adder()
	// a=1, b=1, cin=0: sum=0, cout=1. Layout: q0=sum, q1=a, q2=b, q3=cout.
	// q1 restored to 1, q2 restored to 1, q0 = 0, q3 = 1 -> 1110.
	if w.Expected != 0b1110 {
		t.Errorf("adder expected %04b want 1110", w.Expected)
	}
}

func TestWStateUniformWeightOne(t *testing.T) {
	w, err := WState()
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := w.IdealDist()
	if err != nil {
		t.Fatal(err)
	}
	if ideal.Support() != 3 {
		t.Fatalf("W state support %d: %v", ideal.Support(), ideal.StringCounts())
	}
	for _, o := range ideal.Outcomes() {
		if o.Weight() != 1 {
			t.Errorf("outcome %03b has weight %d", o, o.Weight())
		}
		if !approx(ideal.Prob(o), 1.0/3, 1e-9) {
			t.Errorf("P(%03b) = %v", o, ideal.Prob(o))
		}
	}
}

func TestQRNGMaxEntropy(t *testing.T) {
	w, _ := QRNG()
	ideal, _ := w.IdealDist()
	if !approx(ideal.Entropy(), 4, 1e-9) {
		t.Errorf("qrng entropy %v want 4", ideal.Entropy())
	}
}

func TestQFTMaxEntropy(t *testing.T) {
	w, err := QFT()
	if err != nil {
		t.Fatal(err)
	}
	ideal, _ := w.IdealDist()
	if !approx(ideal.Entropy(), 4, 1e-6) {
		t.Errorf("qft entropy %v want 4", ideal.Entropy())
	}
}

func TestCatStateEntropyOne(t *testing.T) {
	w, _ := CatState()
	ideal, _ := w.IdealDist()
	if !approx(ideal.Entropy(), 1, 1e-9) {
		t.Errorf("cat entropy %v want 1", ideal.Entropy())
	}
	if !approx(ideal.Prob(0), 0.5, 1e-9) || !approx(ideal.Prob(0b1111), 0.5, 1e-9) {
		t.Errorf("cat outcomes: %v", ideal.StringCounts())
	}
}

func TestEntropySpreadAcrossSuite(t *testing.T) {
	// Fig. 11 depends on the suite spanning low to high entropy.
	var lo, hi float64 = math.Inf(1), math.Inf(-1)
	for _, e := range Suite() {
		w, err := e.Build()
		if err != nil {
			t.Fatal(err)
		}
		ideal, err := w.IdealDist()
		if err != nil {
			t.Fatal(err)
		}
		h := ideal.Entropy()
		if h < lo {
			lo = h
		}
		if h > hi {
			hi = h
		}
	}
	if lo > 1e-9 {
		t.Errorf("no zero-entropy benchmark (min %v)", lo)
	}
	if hi < 3 {
		t.Errorf("no high-entropy benchmark (max %v)", hi)
	}
}

func TestControlledPhaseDecomposition(t *testing.T) {
	// cp(π) must equal CZ, phases included: probe with a superposition.
	a := circuit.New("cp", 2)
	cp(a, math.Pi, 0, 1)
	b := circuit.New("cz", 2).CZ(0, 1)
	pa := circuit.New("pa", 2).H(0).T(1).H(1)
	for _, g := range a.Gates {
		pa.Append(g)
	}
	pb := circuit.New("pb", 2).H(0).T(1).H(1)
	for _, g := range b.Gates {
		pb.Append(g)
	}
	sa, err := statevector.Run(pa)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := statevector.Run(pb)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := sa.FidelityWith(sb)
	if !approx(f, 1, 1e-9) {
		t.Fatalf("cp(π) != CZ: fidelity %v", f)
	}
}

func TestMarginalCounts(t *testing.T) {
	w, _ := BernsteinVazirani(3, 0b101)
	full := bitstring.NewDist(4)
	full.Add(0b0101, 10) // ancilla 0, data 101
	full.Add(0b1101, 20) // ancilla 1, data 101
	m, err := w.MarginalCounts(full)
	if err != nil {
		t.Fatal(err)
	}
	if m.Count(0b101) != 30 {
		t.Errorf("marginal counts %v", m.StringCounts())
	}
}

func BenchmarkBuildSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, e := range Suite() {
			if _, err := e.Build(); err != nil {
				b.Fatal(err)
			}
		}
	}
}
