package algorithms

import (
	"fmt"
	"math"

	"qbeep/internal/bitstring"
	"qbeep/internal/circuit"
)

// mcx appends a multi-controlled X with controls ctrls onto target,
// using work ancillas (the standard CCX ladder). It needs
// len(ctrls)-2 ancillas for len(ctrls) >= 3; fewer controls lower to
// CX/CCX directly. Ancillas must start and end in |0⟩ — the ladder
// uncomputes them.
func mcx(c *circuit.Circuit, ctrls []int, target int, ancillas []int) error {
	switch len(ctrls) {
	case 0:
		c.X(target)
		return nil
	case 1:
		c.CX(ctrls[0], target)
		return nil
	case 2:
		c.CCX(ctrls[0], ctrls[1], target)
		return nil
	}
	need := len(ctrls) - 2
	if len(ancillas) < need {
		return fmt.Errorf("algorithms: mcx with %d controls needs %d ancillas, have %d",
			len(ctrls), need, len(ancillas))
	}
	// Compute ladder: anc[0] = c0·c1; anc[i] = anc[i-1]·c(i+1).
	c.CCX(ctrls[0], ctrls[1], ancillas[0])
	for i := 0; i < need-1; i++ {
		c.CCX(ancillas[i], ctrls[i+2], ancillas[i+1])
	}
	c.CCX(ancillas[need-1], ctrls[len(ctrls)-1], target)
	// Uncompute in reverse.
	for i := need - 2; i >= 0; i-- {
		c.CCX(ancillas[i], ctrls[i+2], ancillas[i+1])
	}
	c.CCX(ctrls[0], ctrls[1], ancillas[0])
	return nil
}

// Grover builds the Grover search circuit over n data qubits marking the
// single state marked, with the optimal ⌊π/4·√N⌋ iterations. For n >= 4
// the multi-controlled operations use n-2 work ancillas appended after
// the data register; the workload's DataQubits select the data register
// only.
//
// The ideal output concentrates (≈ sin²((2k+1)θ)) on the marked state —
// a low-entropy workload like BV, but with substantially deeper circuits.
func Grover(n int, marked bitstring.BitString) (*Workload, error) {
	if n < 2 || n > 10 {
		return nil, fmt.Errorf("algorithms: grover width %d outside [2,10]", n)
	}
	if uint64(marked) >= uint64(1)<<uint(n) {
		return nil, fmt.Errorf("algorithms: marked state %d outside register", marked)
	}
	anc := 0
	if n > 2 {
		anc = n - 2
	}
	c := circuit.New(fmt.Sprintf("grover-%d-%s", n, bitstring.Format(marked, n)), n+anc)
	ancillas := make([]int, anc)
	for i := range ancillas {
		ancillas[i] = n + i
	}
	ctrls := make([]int, n-1)
	for i := range ctrls {
		ctrls[i] = i
	}

	// Multi-controlled Z on the data register: H on the last qubit,
	// MCX(0..n-2 -> n-1), H back.
	mcz := func() error {
		c.H(n - 1)
		if err := mcx(c, ctrls, n-1, ancillas); err != nil {
			return err
		}
		c.H(n - 1)
		return nil
	}

	for q := 0; q < n; q++ {
		c.H(q)
	}
	iters := int(math.Floor(math.Pi / 4 * math.Sqrt(float64(uint64(1)<<uint(n)))))
	if iters < 1 {
		iters = 1
	}
	for it := 0; it < iters; it++ {
		c.Barrier()
		// Oracle: phase-flip the marked state — X-conjugate the zeros,
		// then MCZ.
		for q := 0; q < n; q++ {
			if marked.Bit(q) == 0 {
				c.X(q)
			}
		}
		if err := mcz(); err != nil {
			return nil, err
		}
		for q := 0; q < n; q++ {
			if marked.Bit(q) == 0 {
				c.X(q)
			}
		}
		// Diffusion: H^n · (phase-flip |0..0⟩) · H^n.
		for q := 0; q < n; q++ {
			c.H(q)
		}
		for q := 0; q < n; q++ {
			c.X(q)
		}
		if err := mcz(); err != nil {
			return nil, err
		}
		for q := 0; q < n; q++ {
			c.X(q)
		}
		for q := 0; q < n; q++ {
			c.H(q)
		}
	}
	c.MeasureAll()
	if err := c.Err(); err != nil {
		return nil, err
	}
	data := make([]int, n)
	for i := range data {
		data[i] = i
	}
	return &Workload{
		Circuit:       c,
		DataQubits:    data,
		Expected:      marked,
		Deterministic: true, // dominant single answer (success prob < 1 but ≫ others)
	}, nil
}

// QPE builds quantum phase estimation of the phase φ (in turns, [0, 1))
// of a RZ-like unitary, using bits counting qubits plus one eigenstate
// qubit. The ideal output peaks at round(φ·2^bits); when φ is exactly
// representable the output is deterministic.
func QPE(bits int, phi float64) (*Workload, error) {
	if bits < 1 || bits > 10 {
		return nil, fmt.Errorf("algorithms: QPE bits %d outside [1,10]", bits)
	}
	if phi < 0 || phi >= 1 {
		return nil, fmt.Errorf("algorithms: phase %v outside [0,1)", phi)
	}
	n := bits + 1 // counting register + eigenstate qubit (the last)
	c := circuit.New(fmt.Sprintf("qpe-%d", bits), n)
	eig := bits
	// Eigenstate of the phase unitary diag(1, e^{2πiφ}): |1⟩.
	c.X(eig)
	for q := 0; q < bits; q++ {
		c.H(q)
	}
	// Controlled-U^(2^q): controlled phase 2π·φ·2^q realized with the
	// standard RZ/CX decomposition.
	for q := 0; q < bits; q++ {
		theta := 2 * math.Pi * phi * math.Pow(2, float64(q))
		cp(c, theta, q, eig)
	}
	// Inverse QFT on the counting register.
	for i := 0; i < bits/2; i++ {
		c.SWAP(i, bits-1-i)
	}
	for i := 0; i < bits; i++ {
		for j := 0; j < i; j++ {
			cp(c, -math.Pi/math.Pow(2, float64(i-j)), j, i)
		}
		c.H(i)
	}
	c.MeasureAll()
	if err := c.Err(); err != nil {
		return nil, err
	}
	data := make([]int, bits)
	for i := range data {
		data[i] = i
	}
	w := &Workload{Circuit: c, DataQubits: data}
	// Exactly-representable phases give a deterministic answer.
	scaled := phi * math.Pow(2, float64(bits))
	if scaled == math.Trunc(scaled) { //qbeep:allow-floatcmp exact integrality test against Trunc of the same value
		w.Expected = bitstring.BitString(uint64(scaled))
		w.Deterministic = true
	}
	return w, nil
}
