package algorithms

import (
	"math"
	"testing"

	"qbeep/internal/bitstring"
)

func TestDeutschJozsaConstant(t *testing.T) {
	w, err := DeutschJozsa(5, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := w.IdealDist()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ideal.Prob(0)-1) > 1e-9 {
		t.Errorf("constant oracle should output zeros: %v", ideal.StringCounts())
	}
}

func TestDeutschJozsaBalanced(t *testing.T) {
	for _, mask := range []bitstring.BitString{0b1, 0b101, 0b1111} {
		w, err := DeutschJozsa(4, false, mask)
		if err != nil {
			t.Fatal(err)
		}
		ideal, err := w.IdealDist()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ideal.Prob(mask)-1) > 1e-9 {
			t.Errorf("mask %b: P = %v", mask, ideal.Prob(mask))
		}
		if !w.Deterministic || w.Expected != mask {
			t.Errorf("mask %b: metadata wrong", mask)
		}
	}
}

func TestDeutschJozsaValidation(t *testing.T) {
	if _, err := DeutschJozsa(0, true, 0); err == nil {
		t.Error("zero width should error")
	}
	if _, err := DeutschJozsa(3, false, 0); err == nil {
		t.Error("balanced with zero mask should error")
	}
	if _, err := DeutschJozsa(3, false, 0b11111); err == nil {
		t.Error("oversized mask should error")
	}
}

func TestSimonOutputsOrthogonalToPeriod(t *testing.T) {
	for _, tc := range []struct {
		n int
		s bitstring.BitString
	}{
		{3, 0b101}, {4, 0b0110}, {5, 0b10001}, {4, 0b1000},
	} {
		w, err := Simon(tc.n, tc.s)
		if err != nil {
			t.Fatalf("n=%d s=%b: %v", tc.n, tc.s, err)
		}
		ideal, err := w.IdealDist()
		if err != nil {
			t.Fatal(err)
		}
		// Every outcome satisfies y·s = 0 and the support is exactly the
		// orthogonal subspace (2^(n-1) strings, uniform).
		want := 1 << uint(tc.n-1)
		if ideal.Support() != want {
			t.Errorf("n=%d s=%b: support %d want %d", tc.n, tc.s, ideal.Support(), want)
		}
		for _, y := range ideal.Outcomes() {
			if !SimonConsistent(y, tc.s) {
				t.Errorf("n=%d s=%b: outcome %b violates the promise", tc.n, tc.s, y)
			}
			if math.Abs(ideal.Prob(y)-1/float64(want)) > 1e-9 {
				t.Errorf("n=%d s=%b: P(%b) = %v not uniform", tc.n, tc.s, y, ideal.Prob(y))
			}
		}
	}
}

func TestSimonEntropyBetweenBVAndQRNG(t *testing.T) {
	w, err := Simon(4, 0b0101)
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := w.IdealDist()
	if err != nil {
		t.Fatal(err)
	}
	h := ideal.Entropy()
	if math.Abs(h-3) > 1e-9 { // 2^(4-1) = 8 outcomes → 3 bits
		t.Errorf("simon entropy %v want 3", h)
	}
}

func TestSimonValidation(t *testing.T) {
	if _, err := Simon(1, 1); err == nil {
		t.Error("n=1 should error")
	}
	if _, err := Simon(3, 0); err == nil {
		t.Error("zero period should error")
	}
	if _, err := Simon(3, 0b1111); err == nil {
		t.Error("oversized period should error")
	}
}

func TestSimonConsistent(t *testing.T) {
	if !SimonConsistent(0b110, 0b101) { // overlap 100 → weight 1? 110&101=100 weight 1 → odd
		// recompute: 0b110 & 0b101 = 0b100, weight 1 → inconsistent.
		t.Log("0b110·0b101 is odd — verifying the negative case below")
	}
	if SimonConsistent(0b110, 0b101) {
		t.Error("0b110 should be inconsistent with 0b101")
	}
	if !SimonConsistent(0b011, 0b101) { // 011&101 = 001, weight 1 → odd → inconsistent!
		t.Log("also odd")
	}
	if SimonConsistent(0b011, 0b101) {
		t.Error("0b011 should be inconsistent with 0b101")
	}
	if !SimonConsistent(0b101, 0b101) { // overlap weight 2 → even
		t.Error("0b101 should be consistent with itself")
	}
	if !SimonConsistent(0, 0b101) {
		t.Error("zero is consistent with everything")
	}
}

func TestExtendedSuite(t *testing.T) {
	ext := ExtendedSuite()
	if len(ext) != len(Suite())+4 {
		t.Fatalf("extended suite size %d", len(ext))
	}
	for _, e := range ext {
		w, err := e.Build()
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if _, err := w.IdealDist(); err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
	}
	if _, err := BySuiteName("grover_n4"); err != nil {
		t.Errorf("extended entry not resolvable: %v", err)
	}
}
