// Package algorithms builds the benchmark circuit families the paper
// evaluates on: Bernstein-Vazirani, the QASMBench-style suite (adder, qft,
// cat state, wstate, toffoli, fredkin, qec encoder, qrng, lpn, basis
// change, basis trotter, variational, linear solver, hidden shift) and
// randomized benchmarking over the Clifford group.
//
// Each builder returns the logical circuit plus enough metadata to score
// results: the data-qubit list (ancillas excluded) and, where the
// algorithm has one, the expected output string.
package algorithms

import (
	"fmt"

	"qbeep/internal/bitstring"
	"qbeep/internal/circuit"
	"qbeep/internal/clifford"
	"qbeep/internal/mathx"
	"qbeep/internal/statevector"
)

// Workload is a benchmark circuit with scoring metadata.
type Workload struct {
	Circuit *circuit.Circuit
	// DataQubits lists the qubits carrying the algorithm's answer;
	// measurement distributions are marginalized onto them in this order.
	DataQubits []int
	// Expected is the unique correct output over DataQubits for
	// single-answer algorithms; Deterministic reports whether it is set.
	Expected      bitstring.BitString
	Deterministic bool
}

// IdealDist returns the exact output distribution over the data qubits.
func (w *Workload) IdealDist() (*bitstring.Dist, error) {
	full, err := statevector.IdealDist(w.Circuit)
	if err != nil {
		return nil, err
	}
	return full.Marginal(w.DataQubits)
}

// MarginalCounts projects a full-register measurement distribution onto
// the workload's data qubits.
func (w *Workload) MarginalCounts(full *bitstring.Dist) (*bitstring.Dist, error) {
	return full.Marginal(w.DataQubits)
}

// BernsteinVazirani builds the n-qubit BV circuit for the hidden string
// secret, using the standard phase-kickback construction with one ancilla
// (qubit n): X·H on the ancilla, H on data, CX(data_i → ancilla) for each
// set secret bit, H on data, measure. The data register yields the secret
// deterministically on a perfect machine.
func BernsteinVazirani(n int, secret bitstring.BitString) (*Workload, error) {
	if n <= 0 {
		return nil, fmt.Errorf("algorithms: BV width %d must be positive", n)
	}
	if uint64(secret) >= uint64(1)<<uint(n) {
		return nil, fmt.Errorf("algorithms: secret %d outside %d-bit register", secret, n)
	}
	c := circuit.New(fmt.Sprintf("bv-%d-%s", n, bitstring.Format(secret, n)), n+1)
	c.X(n).H(n)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	c.Barrier()
	for q := 0; q < n; q++ {
		if secret.Bit(q) == 1 {
			c.CX(q, n)
		}
	}
	c.Barrier()
	for q := 0; q < n; q++ {
		c.H(q)
	}
	c.MeasureAll()
	if err := c.Err(); err != nil {
		return nil, err
	}
	data := make([]int, n)
	for i := range data {
		data[i] = i
	}
	return &Workload{
		Circuit:       c,
		DataQubits:    data,
		Expected:      secret,
		Deterministic: true,
	}, nil
}

// RandomSecret draws a uniformly random non-zero n-bit secret.
func RandomSecret(n int, rng *mathx.RNG) bitstring.BitString {
	if n <= 0 {
		return 0
	}
	for {
		s := bitstring.BitString(rng.Uint64() & ((1 << uint(n)) - 1))
		if s != 0 || n == 0 {
			return s
		}
	}
}

// RandomizedBenchmarking builds an RB workload: prepare a random basis
// state (X gates), apply layers random Clifford layers plus the exact
// inverse, measure. The expected output is the prepared state, so every
// other observation is an error with a well-defined Hamming distance.
func RandomizedBenchmarking(n, layers int, rng *mathx.RNG) (*Workload, error) {
	body, err := clifford.RBCircuit(fmt.Sprintf("rb-%d-%d", n, layers), n, layers, rng)
	if err != nil {
		return nil, err
	}
	// Random non-trivial initial basis state: the all-zeros state is the
	// natural decay target, which would understate T1 errors (paper §3.1).
	init := bitstring.BitString(rng.Uint64() & ((1 << uint(n)) - 1))
	c := circuit.New(body.Name, n)
	for q := 0; q < n; q++ {
		if init.Bit(q) == 1 {
			c.X(q)
		}
	}
	c.Barrier()
	for _, g := range body.Gates {
		c.Append(g)
	}
	c.MeasureAll()
	if err := c.Err(); err != nil {
		return nil, err
	}
	data := make([]int, n)
	for i := range data {
		data[i] = i
	}
	return &Workload{
		Circuit:       c,
		DataQubits:    data,
		Expected:      init,
		Deterministic: true,
	}, nil
}
