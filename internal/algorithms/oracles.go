package algorithms

import (
	"fmt"

	"qbeep/internal/bitstring"
	"qbeep/internal/circuit"
)

// DeutschJozsa builds the n-qubit Deutsch-Jozsa circuit: it decides
// whether an oracle is constant or balanced with one query. constant
// selects the oracle family; for balanced oracles, mask (non-zero)
// selects the parity function f(x) = mask·x.
//
// Output over the data register: |0...0⟩ for constant oracles, the mask
// for our balanced parity family — deterministic either way, making DJ a
// BV-like low-entropy workload with a different oracle footprint.
func DeutschJozsa(n int, constant bool, mask bitstring.BitString) (*Workload, error) {
	if n <= 0 {
		return nil, fmt.Errorf("algorithms: DJ width %d must be positive", n)
	}
	if !constant {
		if mask == 0 || uint64(mask) >= uint64(1)<<uint(n) {
			return nil, fmt.Errorf("algorithms: balanced DJ needs a non-zero in-range mask, got %b", mask)
		}
	}
	name := fmt.Sprintf("dj-%d-balanced-%s", n, bitstring.Format(mask, n))
	if constant {
		name = fmt.Sprintf("dj-%d-constant", n)
	}
	c := circuit.New(name, n+1)
	c.X(n).H(n)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	c.Barrier()
	if constant {
		// f(x) = 1: flip the ancilla unconditionally (global phase only).
		c.X(n)
	} else {
		for q := 0; q < n; q++ {
			if mask.Bit(q) == 1 {
				c.CX(q, n)
			}
		}
	}
	c.Barrier()
	for q := 0; q < n; q++ {
		c.H(q)
	}
	c.MeasureAll()
	if err := c.Err(); err != nil {
		return nil, err
	}
	expected := bitstring.BitString(0)
	if !constant {
		expected = mask
	}
	data := make([]int, n)
	for i := range data {
		data[i] = i
	}
	return &Workload{
		Circuit:       c,
		DataQubits:    data,
		Expected:      expected,
		Deterministic: true,
	}, nil
}

// Simon builds Simon's-problem circuit for the hidden period s over n
// input qubits (2n qubits total: input + output register). The oracle
// implements a 2-to-1 function f(x) = f(x⊕s) by copying x to the output
// register and, conditioned on the first set bit of s, XOR-ing s into it.
//
// Measuring the input register yields uniformly random strings y with
// y·s = 0 (mod 2): a structured, moderate-entropy (2^(n-1)-outcome)
// distribution — between BV's point mass and QRNG's flat output, which is
// the regime Fig. 11 interpolates.
func Simon(n int, s bitstring.BitString) (*Workload, error) {
	if n < 2 || n > 10 {
		return nil, fmt.Errorf("algorithms: simon width %d outside [2,10]", n)
	}
	if s == 0 || uint64(s) >= uint64(1)<<uint(n) {
		return nil, fmt.Errorf("algorithms: simon needs a non-zero in-range period, got %b", s)
	}
	// Pivot: lowest set bit of s.
	pivot := 0
	for s.Bit(pivot) == 0 {
		pivot++
	}
	c := circuit.New(fmt.Sprintf("simon-%d-%s", n, bitstring.Format(s, n)), 2*n)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	c.Barrier()
	// Copy x into the output register.
	for q := 0; q < n; q++ {
		c.CX(q, n+q)
	}
	// Collapse the pairs {x, x⊕s}: conditioned on x_pivot, XOR s into the
	// copy. Then f(x) = x ⊕ (x_pivot)·s satisfies f(x) = f(x⊕s).
	for q := 0; q < n; q++ {
		if s.Bit(q) == 1 {
			c.CX(pivot, n+q)
		}
	}
	c.Barrier()
	for q := 0; q < n; q++ {
		c.H(q)
	}
	c.MeasureAll()
	if err := c.Err(); err != nil {
		return nil, err
	}
	data := make([]int, n)
	for i := range data {
		data[i] = i
	}
	return &Workload{Circuit: c, DataQubits: data}, nil
}

// SimonConsistent reports whether measurement outcome y satisfies the
// Simon promise y·s = 0 (mod 2) — the invariant every noiseless sample
// obeys and the scoring rule for noisy runs.
func SimonConsistent(y, s bitstring.BitString) bool {
	return bitstring.BitString.Weight(y&s)%2 == 0
}
