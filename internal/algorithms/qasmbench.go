package algorithms

import (
	"fmt"
	"math"
	"sort"

	"qbeep/internal/circuit"
)

// cp appends a controlled-phase CP(θ) on (a, b): diag(1,1,1,e^{iθ}),
// via the standard RZ/CX decomposition (global phase discarded).
func cp(c *circuit.Circuit, theta float64, a, b int) {
	c.RZ(theta/2, a)
	c.RZ(theta/2, b)
	c.CX(a, b)
	c.RZ(-theta/2, b)
	c.CX(a, b)
}

func allQubits(n int) []int {
	qs := make([]int, n)
	for i := range qs {
		qs[i] = i
	}
	return qs
}

// Adder builds the QASMBench-style 4-qubit 1-bit full adder
// (adder_n4): inputs a=1, b=1, cin=0 prepared with X gates, Toffoli/CX
// cascade computing sum and carry. Expected output is deterministic.
func Adder() (*Workload, error) {
	// q0=cin, q1=a, q2=b, q3=cout.
	c := circuit.New("adder-n4", 4)
	c.X(1).X(2) // a=1, b=1
	c.Barrier()
	c.CCX(1, 2, 3) // cout ^= a·b
	c.CX(1, 2)     // b ^= a
	c.CCX(0, 2, 3) // cout ^= cin·(a^b)
	c.CX(2, 0)     // sum = cin ^ a ^ b (into q0)
	c.CX(1, 2)     // restore b
	c.MeasureAll()
	return deterministicWorkload(c)
}

// Toffoli is the 3-qubit Toffoli demonstration (toffoli_n3): both
// controls set, so the target flips: output 111.
func Toffoli() (*Workload, error) {
	c := circuit.New("toffoli-n3", 3)
	c.X(0).X(1).Barrier().CCX(0, 1, 2).MeasureAll()
	return deterministicWorkload(c)
}

// Fredkin is the 3-qubit controlled-swap demonstration (fredkin_n3):
// control set and one payload bit set, so the payloads exchange.
func Fredkin() (*Workload, error) {
	c := circuit.New("fredkin-n3", 3)
	c.X(0).X(1).Barrier().CSWAP(0, 1, 2).MeasureAll()
	return deterministicWorkload(c)
}

// HS4 is the 4-qubit hidden-shift circuit (hs4_n4): H layer, a
// Z/CZ-pattern oracle, H layer. The output is the shift string
// deterministically.
func HS4() (*Workload, error) {
	c := circuit.New("hs4-n4", 4)
	for q := 0; q < 4; q++ {
		c.H(q)
	}
	c.Barrier()
	// Shift pattern 1011 realized as Z on shifted qubits plus an
	// entangling CZ pair.
	c.Z(0).Z(1).Z(3)
	c.CZ(0, 1).CZ(2, 3)
	c.CZ(0, 1).CZ(2, 3) // cancel entangling phases: pure shift remains
	c.Barrier()
	for q := 0; q < 4; q++ {
		c.H(q)
	}
	c.MeasureAll()
	return deterministicWorkload(c)
}

// CatState is the 4-qubit GHZ/cat preparation (cat_state_n4): entropy
// exactly 1 bit (two equiprobable outcomes).
func CatState() (*Workload, error) {
	c := circuit.New("cat-state-n4", 4)
	c.H(0).CX(0, 1).CX(1, 2).CX(2, 3).MeasureAll()
	return workload(c)
}

// WState prepares the 3-qubit W state (wstate_n3): equal superposition of
// 001, 010, 100 — entropy log2(3).
func WState() (*Workload, error) {
	c := circuit.New("wstate-n3", 3)
	// Split 1/3 of the amplitude onto q0 = 1 (the |001⟩ term).
	theta0 := 2 * math.Acos(math.Sqrt(2.0/3))
	c.RY(theta0, 0)
	// On the q0 = 0 branch, split the remaining 2/3 evenly onto q1:
	// X-conjugated controlled-RY(π/2), with CRY(θ) = RY(θ/2)·CX·RY(-θ/2)·CX.
	c.X(0)
	c.RY(math.Pi/4, 1)
	c.CX(0, 1)
	c.RY(-math.Pi/4, 1)
	c.CX(0, 1)
	c.X(0)
	// q2 = 1 iff q0 = 0 and q1 = 0 (the |100⟩ term).
	c.X(0).X(1)
	c.CCX(0, 1, 2)
	c.X(0).X(1)
	c.MeasureAll()
	return workload(c)
}

// QFT is the 4-qubit quantum Fourier transform applied to |0101⟩
// (qft_n4): the measured output is uniform over all 16 strings — maximum
// entropy, the case where Q-BEEP finds no structure to exploit.
func QFT() (*Workload, error) {
	c := circuit.New("qft-n4", 4)
	c.X(0).X(2)
	c.Barrier()
	n := 4
	for i := n - 1; i >= 0; i-- {
		c.H(i)
		for j := i - 1; j >= 0; j-- {
			cp(c, math.Pi/math.Pow(2, float64(i-j)), j, i)
		}
	}
	for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
		c.SWAP(i, j)
	}
	c.MeasureAll()
	return workload(c)
}

// QRNG is the 4-qubit quantum random number generator (qrng_n4): H on
// every qubit; uniform output, maximum entropy.
func QRNG() (*Workload, error) {
	c := circuit.New("qrng-n4", 4)
	for q := 0; q < 4; q++ {
		c.H(q)
	}
	c.MeasureAll()
	return workload(c)
}

// QECEncoder is the 5-qubit repetition-code encoder with syndrome
// extraction (qec_en_n5): logical |+⟩ encoded over qubits 0-2, ancillas
// 3-4 read the (trivially zero) syndrome. Two equiprobable outcomes.
func QECEncoder() (*Workload, error) {
	c := circuit.New("qec-en-n5", 5)
	c.H(0)
	c.CX(0, 1).CX(0, 2) // encode
	c.Barrier()
	c.CX(0, 3).CX(1, 3) // syndrome bit 0 = q0 ^ q1
	c.CX(1, 4).CX(2, 4) // syndrome bit 1 = q1 ^ q2
	c.MeasureAll()
	return workload(c)
}

// LPN is the 5-qubit learning-parity-with-noise instance (lpn_n5): a
// BV-style parity oracle over 4 data qubits with ancilla, secret 1101.
func LPN() (*Workload, error) {
	w, err := BernsteinVazirani(4, 0b1101)
	if err != nil {
		return nil, err
	}
	w.Circuit.Name = "lpn-n5"
	return w, nil
}

// BasisChange is a 3-qubit single-particle basis rotation network
// (basis_change_n3 in QASMBench, from quantum-chemistry orbital
// rotations): Givens rotations between adjacent modes. Output is a skewed
// low-entropy distribution.
func BasisChange() (*Workload, error) {
	c := circuit.New("basis-change-n3", 3)
	c.X(0) // one particle in mode 0
	c.Barrier()
	givens := func(theta float64, a, b int) {
		// Number-conserving rotation between modes a and b.
		c.CX(b, a)
		c.RY(theta, b)
		c.CX(a, b)
		c.RY(-theta, b)
		c.CX(a, b)
		c.CX(b, a)
	}
	givens(0.6, 0, 1)
	givens(0.4, 1, 2)
	givens(0.2, 0, 1)
	c.MeasureAll()
	return workload(c)
}

// BasisTrotter is a 4-qubit Trotterized ZZ-chain evolution
// (basis_trotter_n4 stand-in): layers of CX·RZ·CX conjugated by partial
// rotations. Moderate entropy.
func BasisTrotter() (*Workload, error) {
	c := circuit.New("basis-trotter-n4", 4)
	for q := 0; q < 4; q++ {
		c.RY(0.3, q)
	}
	for step := 0; step < 2; step++ {
		for q := 0; q+1 < 4; q++ {
			c.CX(q, q+1)
			c.RZ(0.5, q+1)
			c.CX(q, q+1)
		}
		for q := 0; q < 4; q++ {
			c.RX(0.4, q)
		}
	}
	c.MeasureAll()
	return workload(c)
}

// Variational is a 4-qubit hardware-efficient ansatz at fixed angles
// (variational_n4): RY + entangling CX layers. Low-moderate entropy.
func Variational() (*Workload, error) {
	c := circuit.New("variational-n4", 4)
	angles := []float64{0.35, -0.2, 0.15, 0.4, -0.3, 0.25, 0.1, -0.15}
	for q := 0; q < 4; q++ {
		c.RY(angles[q], q)
	}
	for q := 0; q+1 < 4; q++ {
		c.CX(q, q+1)
	}
	for q := 0; q < 4; q++ {
		c.RY(angles[4+q], q)
	}
	c.MeasureAll()
	return workload(c)
}

// LinearSolver is a 3-qubit toy HHL-style linear-system solver
// (linearsolver_n3): phase estimation-flavored rotations on an ancilla.
// Skewed output distribution.
func LinearSolver() (*Workload, error) {
	c := circuit.New("linearsolver-n3", 3)
	c.H(0)
	c.RY(math.Pi/4, 1)
	c.CX(0, 1)
	c.RY(-math.Pi/8, 1)
	c.CX(0, 1)
	c.RY(math.Pi/8, 1)
	c.H(0)
	c.CX(1, 2)
	c.RY(math.Pi/6, 2)
	c.MeasureAll()
	return workload(c)
}

// workload wraps a finished circuit with all qubits as data.
func workload(c *circuit.Circuit) (*Workload, error) {
	if err := c.Err(); err != nil {
		return nil, err
	}
	return &Workload{Circuit: c, DataQubits: allQubits(c.N)}, nil
}

// deterministicWorkload is workload plus verification that the ideal
// output is a single bit-string, recorded as Expected.
func deterministicWorkload(c *circuit.Circuit) (*Workload, error) {
	w, err := workload(c)
	if err != nil {
		return nil, err
	}
	ideal, err := w.IdealDist()
	if err != nil {
		return nil, err
	}
	if ideal.Support() != 1 {
		return nil, fmt.Errorf("algorithms: %s expected deterministic output, support %d",
			c.Name, ideal.Support())
	}
	top, _ := ideal.Top()
	w.Expected = top
	w.Deterministic = true
	return w, nil
}

// SuiteEntry names one QASMBench-style benchmark and its builder.
type SuiteEntry struct {
	Name  string // QASMBench-style label, e.g. "adder_n4"
	Build func() (*Workload, error)
}

// Suite returns the QASMBench-style benchmark set used by Figs. 8, 9 and
// 11, sorted by name.
func Suite() []SuiteEntry {
	entries := []SuiteEntry{
		{"adder_n4", Adder},
		{"basis_change_n3", BasisChange},
		{"basis_trotter_n4", BasisTrotter},
		{"cat_state_n4", CatState},
		{"fredkin_n3", Fredkin},
		{"hs4_n4", HS4},
		{"linearsolver_n3", LinearSolver},
		{"lpn_n5", LPN},
		{"qec_en_n5", QECEncoder},
		{"qft_n4", QFT},
		{"qrng_n4", QRNG},
		{"toffoli_n3", Toffoli},
		{"variational_n4", Variational},
		{"wstate_n3", WState},
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	return entries
}

// ExtendedSuite is Suite plus the algorithm families beyond the paper's
// QASMBench set: Grover search, phase estimation, Deutsch-Jozsa and
// Simon's problem — spanning the entropy spectrum from point-mass to
// subspace-uniform outputs.
func ExtendedSuite() []SuiteEntry {
	entries := append(Suite(),
		SuiteEntry{"dj_n5", func() (*Workload, error) { return DeutschJozsa(4, false, 0b1011) }},
		SuiteEntry{"grover_n4", func() (*Workload, error) { return Grover(4, 0b1010) }},
		SuiteEntry{"qpe_n4", func() (*Workload, error) { return QPE(3, 3.0/8) }},
		SuiteEntry{"simon_n8", func() (*Workload, error) { return Simon(4, 0b0110) }},
	)
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	return entries
}

// BySuiteName builds the named entry from the extended suite.
func BySuiteName(name string) (*Workload, error) {
	for _, e := range ExtendedSuite() {
		if e.Name == name {
			return e.Build()
		}
	}
	return nil, fmt.Errorf("algorithms: unknown benchmark %q", name)
}
