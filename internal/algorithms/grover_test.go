package algorithms

import (
	"math"
	"testing"

	"qbeep/internal/bitstring"
	"qbeep/internal/circuit"
	"qbeep/internal/statevector"
)

func TestMCXTruthTable(t *testing.T) {
	// 4 controls, 2 ancillas: target flips iff all controls set, ancillas
	// return to zero.
	const nc = 4
	ctrls := []int{0, 1, 2, 3}
	target := 4
	ancillas := []int{5, 6}
	for in := 0; in < 1<<nc; in++ {
		c := circuit.New("mcx", 7)
		for q := 0; q < nc; q++ {
			if in&(1<<q) != 0 {
				c.X(q)
			}
		}
		if err := mcx(c, ctrls, target, ancillas); err != nil {
			t.Fatal(err)
		}
		s, err := statevector.Run(c)
		if err != nil {
			t.Fatal(err)
		}
		want := bitstring.BitString(in)
		if in == (1<<nc)-1 {
			want |= 1 << uint(target)
		}
		if math.Abs(s.Prob(want)-1) > 1e-9 {
			t.Fatalf("controls %04b: expected %07b, probs elsewhere", in, want)
		}
	}
}

func TestMCXSmallArities(t *testing.T) {
	// 0 controls: plain X.
	c := circuit.New("x", 1)
	if err := mcx(c, nil, 0, nil); err != nil {
		t.Fatal(err)
	}
	s, _ := statevector.Run(c)
	if s.Prob(1) != 1 {
		t.Error("0-control mcx should be X")
	}
	// Insufficient ancillas.
	c = circuit.New("bad", 5)
	if err := mcx(c, []int{0, 1, 2}, 3, nil); err == nil {
		t.Error("missing ancillas should error")
	}
}

func TestGroverFindsMarkedState(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5} {
		marked := bitstring.BitString((1 << uint(n)) - 2) // 1..10
		w, err := Grover(n, marked)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		ideal, err := w.IdealDist()
		if err != nil {
			t.Fatal(err)
		}
		p := ideal.Prob(marked)
		// Grover's success probability at the optimal iteration count is
		// > 0.8 for n >= 2 (exactly 1.0 at n = 2).
		if p < 0.8 {
			t.Errorf("n=%d: P(marked) = %v", n, p)
		}
		top, _ := ideal.Top()
		if top != marked {
			t.Errorf("n=%d: top outcome %b != marked %b", n, top, marked)
		}
	}
}

func TestGroverValidation(t *testing.T) {
	if _, err := Grover(1, 0); err == nil {
		t.Error("n=1 should error")
	}
	if _, err := Grover(11, 0); err == nil {
		t.Error("n=11 should error")
	}
	if _, err := Grover(3, 0b11111); err == nil {
		t.Error("oversized marked state should error")
	}
}

func TestGroverAncillasReturnToZero(t *testing.T) {
	w, err := Grover(5, 0b10101)
	if err != nil {
		t.Fatal(err)
	}
	full, err := statevector.IdealDist(w.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	// All probability mass must have zero ancilla bits (qubits 5..7).
	for _, o := range full.Outcomes() {
		if uint64(o)>>5 != 0 {
			t.Fatalf("ancilla excited in outcome %b (p=%v)", o, full.Prob(o))
		}
	}
}

func TestQPEExactPhase(t *testing.T) {
	// φ = 3/8 is exactly representable with 3 bits: answer 011.
	w, err := QPE(3, 3.0/8)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Deterministic || w.Expected != 3 {
		t.Fatalf("metadata: deterministic=%v expected=%b", w.Deterministic, w.Expected)
	}
	ideal, err := w.IdealDist()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ideal.Prob(3)-1) > 1e-9 {
		t.Errorf("P(011) = %v", ideal.Prob(3))
	}
}

func TestQPEInexactPhasePeaks(t *testing.T) {
	// φ = 0.3 with 4 bits: peak at round(0.3·16) = 5.
	w, err := QPE(4, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if w.Deterministic {
		t.Error("inexact phase should not be deterministic")
	}
	ideal, err := w.IdealDist()
	if err != nil {
		t.Fatal(err)
	}
	top, _ := ideal.Top()
	if top != 5 {
		t.Errorf("top outcome %d want 5", top)
	}
	if ideal.Prob(5) < 0.4 {
		t.Errorf("peak mass %v too low", ideal.Prob(5))
	}
}

func TestQPEValidation(t *testing.T) {
	if _, err := QPE(0, 0.5); err == nil {
		t.Error("zero bits should error")
	}
	if _, err := QPE(3, 1.0); err == nil {
		t.Error("phase >= 1 should error")
	}
	if _, err := QPE(3, -0.1); err == nil {
		t.Error("negative phase should error")
	}
}

func TestQPEAllExactPhases(t *testing.T) {
	const bits = 3
	for k := 0; k < 8; k++ {
		w, err := QPE(bits, float64(k)/8)
		if err != nil {
			t.Fatal(err)
		}
		ideal, err := w.IdealDist()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ideal.Prob(bitstring.BitString(k))-1) > 1e-9 {
			t.Errorf("k=%d: P = %v", k, ideal.Prob(bitstring.BitString(k)))
		}
	}
}
