// Package hammer implements the HAMMER baseline (Tannu, Das, Ayanzadeh,
// Qureshi — "HAMMER: Boosting Fidelity of Noisy Quantum Circuits by
// Exploiting Hamming Behavior of Erroneous Outcomes", ASPLOS 2022), the
// state of the art Q-BEEP compares against.
//
// HAMMER assumes errors cluster *locally* around correct outcomes: a
// bit-string that has heavy observed neighborhoods at small Hamming
// distances is likely genuine, so its probability is amplified by a
// neighborhood weight that decays with distance — a fixed one-size-fits-all
// weighting, independent of circuit and device, which is precisely the
// limitation Q-BEEP's λ model removes.
package hammer

import (
	"fmt"

	"qbeep/internal/bitstring"
)

// Options configures the baseline.
type Options struct {
	// MaxDistance bounds the neighborhood radius (default 2, HAMMER's
	// published setting: first and second Hamming shells).
	MaxDistance int
	// Decay is the per-distance attenuation of neighbor support
	// (default 0.5: weight 2^-d).
	Decay float64
}

// NewOptions returns HAMMER's published configuration.
func NewOptions() Options {
	return Options{MaxDistance: 2, Decay: 0.5}
}

// Mitigate re-weights counts by local Hamming neighborhood density:
//
//	score(s) = P(s) · Σ_{d(s,s') <= D} decay^d(s,s') · P(s')
//
// (the d = 0 term is s itself) and renormalizes to the original total.
// Strings sitting in dense local neighborhoods — which under HAMMER's
// locality assumption are the genuine outputs — are amplified; isolated
// strings are suppressed toward P(s)². Only observed strings are considered
// (HAMMER's state graph is over observed outcomes too).
func Mitigate(counts *bitstring.Dist, opts Options) (*bitstring.Dist, error) {
	if counts == nil || counts.Support() == 0 {
		return nil, fmt.Errorf("hammer: empty counts")
	}
	if opts.MaxDistance <= 0 {
		return nil, fmt.Errorf("hammer: max distance %d must be positive", opts.MaxDistance)
	}
	if opts.Decay <= 0 || opts.Decay > 1 {
		return nil, fmt.Errorf("hammer: decay %v outside (0,1]", opts.Decay)
	}
	outcomes := counts.Outcomes()
	n := counts.Width()
	// Precompute decay^d.
	decayPow := make([]float64, opts.MaxDistance+1)
	decayPow[0] = 1
	for d := 1; d <= opts.MaxDistance; d++ {
		decayPow[d] = decayPow[d-1] * opts.Decay
	}
	out := bitstring.NewDist(n)
	for _, s := range outcomes {
		support := counts.Prob(s) // d = 0 term
		for _, s2 := range outcomes {
			if s2 == s {
				continue
			}
			d := bitstring.Hamming(s, s2)
			if d <= opts.MaxDistance {
				support += decayPow[d] * counts.Prob(s2)
			}
		}
		out.Add(s, counts.Prob(s)*support)
	}
	return out.Normalized(counts.Total()), nil
}

// SpectrumWeights returns HAMMER's implied Hamming-spectrum weighting
// profile over distances 0..n — the fixed 2^-d curve plotted as the
// "HAMMER Weighting" series in the paper's Figs. 1, 2 and 6. It is
// normalized to unit mass so it is comparable to the probability spectra.
func SpectrumWeights(n int, opts Options) []float64 {
	w := make([]float64, n+1)
	var sum float64
	for d := 0; d <= n; d++ {
		v := 1.0
		for i := 0; i < d; i++ {
			v *= opts.Decay
		}
		if d > opts.MaxDistance {
			v = 0
		}
		w[d] = v
		sum += v
	}
	if sum > 0 {
		for d := range w {
			w[d] /= sum
		}
	}
	return w
}
