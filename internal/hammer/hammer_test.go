package hammer

import (
	"math"
	"testing"

	"qbeep/internal/bitstring"
	"qbeep/internal/mathx"
)

func TestMitigateValidation(t *testing.T) {
	if _, err := Mitigate(nil, NewOptions()); err == nil {
		t.Error("nil counts should error")
	}
	if _, err := Mitigate(bitstring.NewDist(3), NewOptions()); err == nil {
		t.Error("empty counts should error")
	}
	d := bitstring.NewDist(3)
	d.Add(0, 1)
	if _, err := Mitigate(d, Options{MaxDistance: 0, Decay: 0.5}); err == nil {
		t.Error("zero distance should error")
	}
	if _, err := Mitigate(d, Options{MaxDistance: 2, Decay: 0}); err == nil {
		t.Error("zero decay should error")
	}
	if _, err := Mitigate(d, Options{MaxDistance: 2, Decay: 1.5}); err == nil {
		t.Error("decay > 1 should error")
	}
}

func TestMitigateAmplifiesSupportedStrings(t *testing.T) {
	// 0000 has many near neighbors observed; 1111 is isolated. HAMMER
	// should boost 0000 relative to 1111.
	d := bitstring.NewDist(4)
	d.Add(0b0000, 40)
	d.Add(0b0001, 20)
	d.Add(0b0010, 20)
	d.Add(0b1111, 40)
	out, err := Mitigate(d, NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	beforeRatio := d.Prob(0b0000) / d.Prob(0b1111)
	afterRatio := out.Prob(0b0000) / out.Prob(0b1111)
	if afterRatio <= beforeRatio {
		t.Errorf("supported string should gain: ratio %v -> %v", beforeRatio, afterRatio)
	}
}

func TestMitigatePreservesTotal(t *testing.T) {
	d := bitstring.NewDist(4)
	d.Add(0b0000, 10)
	d.Add(0b0011, 30)
	d.Add(0b1100, 60)
	out, err := Mitigate(d, NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.Total()-d.Total()) > 1e-9 {
		t.Errorf("total %v -> %v", d.Total(), out.Total())
	}
}

func TestMitigateLocalClusterCase(t *testing.T) {
	// HAMMER's home turf: errors at distance 1 from the truth.
	const n = 6
	truth := bitstring.BitString(0b101101)
	rng := mathx.NewRNG(3)
	raw := bitstring.NewDist(n)
	raw.Add(truth, 500)
	for i := 0; i < 500; i++ {
		raw.Add(truth.FlipBit(rng.Intn(n)), 1)
	}
	ideal := bitstring.NewDist(n)
	ideal.Add(truth, 1)
	out, err := Mitigate(raw, NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	if bitstring.Fidelity(ideal, out) <= bitstring.Fidelity(ideal, raw) {
		t.Error("HAMMER should improve locally-clustered errors")
	}
}

func TestSpectrumWeights(t *testing.T) {
	w := SpectrumWeights(5, NewOptions())
	if len(w) != 6 {
		t.Fatalf("length %d", len(w))
	}
	var sum float64
	for _, v := range w {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("weights sum to %v", sum)
	}
	if !(w[0] > w[1] && w[1] > w[2]) {
		t.Errorf("weights should decay: %v", w)
	}
	if w[3] != 0 || w[5] != 0 {
		t.Errorf("weights beyond MaxDistance should be zero: %v", w)
	}
}

func TestSingleOutcomeUnchanged(t *testing.T) {
	d := bitstring.NewDist(3)
	d.Add(0b101, 42)
	out, err := Mitigate(d, NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	if out.Count(0b101) != 42 {
		t.Errorf("single outcome changed: %v", out.StringCounts())
	}
}
