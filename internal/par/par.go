// Package par provides a minimal deterministic fan-out helper for the
// experiment runners: tasks are prepared sequentially (so every task owns
// a pre-split RNG and the corpus is identical regardless of concurrency),
// then executed across workers, with results written into index-addressed
// slots.
package par

import (
	"runtime"
	"sync"
)

// ForEach runs fn(i) for every i in [0, n) across at most workers
// goroutines (GOMAXPROCS when workers <= 0). It returns the first error
// encountered; other tasks still run to completion. fn must only write to
// per-index state — the helper provides no other synchronization.
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					mu.Lock()
					if first == nil {
						first = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return first
}
