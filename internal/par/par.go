// Package par provides a minimal deterministic fan-out helper for the
// experiment runners: tasks are prepared sequentially (so every task owns
// a pre-split RNG and the corpus is identical regardless of concurrency),
// then executed across workers, with results written into index-addressed
// slots.
package par

import (
	"context"
	"log/slog"
	"runtime"
	"sync"
	"time"

	"qbeep/internal/obs"
)

// Fan-out metrics (see internal/obs): per-task wall time, batch wall
// time, the busy fraction of the worker pool over the last batch, and
// the per-worker busy-ratio spread (min/mean/max across the pool) that
// separates "pool saturated" from "one straggler worker".
var (
	metTask          = obs.Default.Histogram("par.task_seconds")
	metBatch         = obs.Default.Timer("par.batch")
	metTasks         = obs.Default.Counter("par.tasks")
	metErrors        = obs.Default.Counter("par.errors")
	metWorkers       = obs.Default.Gauge("par.workers")
	metUtilization   = obs.Default.Gauge("par.utilization")
	metWorkerBusyMin = obs.Default.Gauge("par.worker_busy_ratio_min")
	metWorkerBusyAvg = obs.Default.Gauge("par.worker_busy_ratio_mean")
	metWorkerBusyMax = obs.Default.Gauge("par.worker_busy_ratio_max")
)

// Stats describes one ForEachStats batch.
type Stats struct {
	// Durations holds the wall time of each task, index-addressed.
	Durations []time.Duration
	// WorkerBusy holds, per worker, the summed wall time of the tasks
	// that worker executed. len(WorkerBusy) == Workers; a worker's idle
	// time is Elapsed minus its entry.
	WorkerBusy []time.Duration
	// FirstErr is the index of the task whose error ForEachStats
	// returned (the first error observed), or -1 if every task
	// succeeded. Later tasks still ran to completion.
	FirstErr int
	// Workers is the resolved worker count.
	Workers int
	// Elapsed is the batch wall time.
	Elapsed time.Duration
}

// Utilization returns the busy fraction of the worker pool:
// Σ task durations / (workers × batch wall time), in [0, 1] up to
// scheduler noise. Low values flag batches dominated by one long task.
func (s Stats) Utilization() float64 {
	if s.Workers <= 0 || s.Elapsed <= 0 {
		return 0
	}
	var busy time.Duration
	for _, d := range s.Durations {
		busy += d
	}
	return busy.Seconds() / (float64(s.Workers) * s.Elapsed.Seconds())
}

// WorkerBusyRatios returns the per-worker busy fractions (WorkerBusy[w]
// / Elapsed) reduced to their min, mean and max. A wide min-max spread
// with a healthy mean means the queue drained unevenly — the telemetry
// the par_worker_busy_ratio_* gauges carry to /metrics.
func (s Stats) WorkerBusyRatios() (min, mean, max float64) {
	if len(s.WorkerBusy) == 0 || s.Elapsed <= 0 {
		return 0, 0, 0
	}
	wall := s.Elapsed.Seconds()
	for i, busy := range s.WorkerBusy {
		r := busy.Seconds() / wall
		if r > 1 {
			r = 1 // scheduler noise: task clocks can overrun the batch clock
		}
		if i == 0 || r < min {
			min = r
		}
		if r > max {
			max = r
		}
		mean += r
	}
	mean /= float64(len(s.WorkerBusy))
	return min, mean, max
}

// ForEach runs fn(i) for every i in [0, n) across at most workers
// goroutines (GOMAXPROCS when workers <= 0). It returns the first error
// encountered; other tasks still run to completion. fn must only write to
// per-index state — the helper provides no other synchronization.
func ForEach(n, workers int, fn func(i int) error) error {
	_, err := ForEachStatsCtx(context.Background(), n, workers, fn)
	return err
}

// ForEachCtx is ForEach with trace-context propagation: when tracing is
// enabled, each worker goroutine runs under a "par.worker" span parented
// to the span active in ctx, so fan-out regions show their per-worker
// utilization in the trace forest.
func ForEachCtx(ctx context.Context, n, workers int, fn func(i int) error) error {
	_, err := ForEachStatsCtx(ctx, n, workers, fn)
	return err
}

// ForEachStats is ForEach plus per-task timing: every task's duration is
// recorded (index-addressed in the returned Stats and observed into the
// "par.task_seconds" histogram), errors are logged with their task index,
// and the batch's worker utilization is published as the
// "par.utilization" gauge.
func ForEachStats(n, workers int, fn func(i int) error) (Stats, error) {
	return ForEachStatsCtx(context.Background(), n, workers, fn)
}

// ForEachStatsCtx is ForEachStats with trace-context propagation (see
// ForEachCtx).
func ForEachStatsCtx(ctx context.Context, n, workers int, fn func(i int) error) (Stats, error) {
	stats := Stats{FirstErr: -1}
	if n <= 0 {
		return stats, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	stats.Workers = workers
	stats.Durations = make([]time.Duration, n)
	stats.WorkerBusy = make([]time.Duration, workers)
	batchStart := time.Now()

	// Task observations carry the batch's trace so the worst par_task
	// sample on /metrics names the trace to open in qbeep-trace. The
	// lookup happens once per batch, not per task.
	var traceID uint64
	if obs.TracingEnabled() {
		traceID = obs.TraceIDFrom(ctx)
	}

	var (
		mu    sync.Mutex
		first error
	)
	runTask := func(i int) time.Duration {
		t0 := time.Now()
		err := fn(i)
		d := time.Since(t0)
		stats.Durations[i] = d // per-index slot: no lock needed
		metTask.ObserveTrace(d.Seconds(), traceID)
		if err != nil {
			metErrors.Inc()
			obs.Logger().Warn("parallel task failed", "task", i, "err", err)
			mu.Lock()
			if first == nil {
				first = err
				stats.FirstErr = i
			}
			mu.Unlock()
		}
		return d
	}

	if workers == 1 {
		for i := 0; i < n; i++ {
			stats.WorkerBusy[0] += runTask(i)
		}
	} else {
		// Fully buffered dispatch, filled and closed before the workers
		// start: fine-grained batches never serialize on a synchronous
		// channel handoff, and workers drain the queue without ever
		// blocking on the producer (BenchmarkForEachTinyTasks).
		next := make(chan int, n)
		for i := 0; i < n; i++ {
			next <- i
		}
		close(next)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				t0 := time.Now()
				_, wsp := obs.Start(ctx, "par.worker")
				tasks := 0
				var busy time.Duration
				for i := range next {
					busy += runTask(i)
					tasks++
				}
				stats.WorkerBusy[w] = busy // per-worker slot: no lock needed
				wsp.SetAttr("worker", w)
				wsp.SetAttr("tasks", tasks)
				wsp.SetAttr("busy_ns", busy.Nanoseconds())
				wsp.SetAttr("idle_ns", max64(time.Since(t0).Nanoseconds()-busy.Nanoseconds(), 0))
				wsp.End()
			}(w)
		}
		wg.Wait()
	}

	stats.Elapsed = time.Since(batchStart)
	metBatch.ObserveDuration(stats.Elapsed)
	metTasks.Add(int64(n))
	metWorkers.Set(float64(workers))
	metUtilization.Set(stats.Utilization())
	busyMin, busyMean, busyMax := stats.WorkerBusyRatios()
	metWorkerBusyMin.Set(busyMin)
	metWorkerBusyAvg.Set(busyMean)
	metWorkerBusyMax.Set(busyMax)
	// Enabled-gated: the variadic args box on every call otherwise, which
	// alone would break the trajectory sampler's steady-state alloc pin.
	if l := obs.Logger(); l.Enabled(ctx, slog.LevelDebug) {
		l.Debug("parallel batch done",
			"tasks", n, "workers", workers, "elapsed", stats.Elapsed,
			"utilization", stats.Utilization(), "worker_busy_min", busyMin,
			"worker_busy_max", busyMax, "first_err_index", stats.FirstErr)
	}
	return stats, first
}

// max64 avoids a negative idle reading when the rounding of the two
// clocks disagrees.
func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
