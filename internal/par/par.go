// Package par provides a minimal deterministic fan-out helper for the
// experiment runners: tasks are prepared sequentially (so every task owns
// a pre-split RNG and the corpus is identical regardless of concurrency),
// then executed across workers, with results written into index-addressed
// slots.
package par

import (
	"context"
	"runtime"
	"sync"
	"time"

	"qbeep/internal/obs"
)

// Fan-out metrics (see internal/obs): per-task wall time, batch wall
// time, and the busy fraction of the worker pool over the last batch.
var (
	metTask        = obs.Default.Histogram("par.task_seconds")
	metBatch       = obs.Default.Timer("par.batch")
	metTasks       = obs.Default.Counter("par.tasks")
	metErrors      = obs.Default.Counter("par.errors")
	metWorkers     = obs.Default.Gauge("par.workers")
	metUtilization = obs.Default.Gauge("par.utilization")
)

// Stats describes one ForEachStats batch.
type Stats struct {
	// Durations holds the wall time of each task, index-addressed.
	Durations []time.Duration
	// FirstErr is the index of the task whose error ForEachStats
	// returned (the first error observed), or -1 if every task
	// succeeded. Later tasks still ran to completion.
	FirstErr int
	// Workers is the resolved worker count.
	Workers int
	// Elapsed is the batch wall time.
	Elapsed time.Duration
}

// Utilization returns the busy fraction of the worker pool:
// Σ task durations / (workers × batch wall time), in [0, 1] up to
// scheduler noise. Low values flag batches dominated by one long task.
func (s Stats) Utilization() float64 {
	if s.Workers <= 0 || s.Elapsed <= 0 {
		return 0
	}
	var busy time.Duration
	for _, d := range s.Durations {
		busy += d
	}
	return busy.Seconds() / (float64(s.Workers) * s.Elapsed.Seconds())
}

// ForEach runs fn(i) for every i in [0, n) across at most workers
// goroutines (GOMAXPROCS when workers <= 0). It returns the first error
// encountered; other tasks still run to completion. fn must only write to
// per-index state — the helper provides no other synchronization.
func ForEach(n, workers int, fn func(i int) error) error {
	_, err := ForEachStatsCtx(context.Background(), n, workers, fn)
	return err
}

// ForEachCtx is ForEach with trace-context propagation: when tracing is
// enabled, each worker goroutine runs under a "par.worker" span parented
// to the span active in ctx, so fan-out regions show their per-worker
// utilization in the trace forest.
func ForEachCtx(ctx context.Context, n, workers int, fn func(i int) error) error {
	_, err := ForEachStatsCtx(ctx, n, workers, fn)
	return err
}

// ForEachStats is ForEach plus per-task timing: every task's duration is
// recorded (index-addressed in the returned Stats and observed into the
// "par.task_seconds" histogram), errors are logged with their task index,
// and the batch's worker utilization is published as the
// "par.utilization" gauge.
func ForEachStats(n, workers int, fn func(i int) error) (Stats, error) {
	return ForEachStatsCtx(context.Background(), n, workers, fn)
}

// ForEachStatsCtx is ForEachStats with trace-context propagation (see
// ForEachCtx).
func ForEachStatsCtx(ctx context.Context, n, workers int, fn func(i int) error) (Stats, error) {
	stats := Stats{FirstErr: -1}
	if n <= 0 {
		return stats, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	stats.Workers = workers
	stats.Durations = make([]time.Duration, n)
	batchStart := time.Now()

	var (
		mu    sync.Mutex
		first error
	)
	runTask := func(i int) {
		t0 := time.Now()
		err := fn(i)
		d := time.Since(t0)
		stats.Durations[i] = d // per-index slot: no lock needed
		metTask.Observe(d.Seconds())
		if err != nil {
			metErrors.Inc()
			obs.Logger().Warn("parallel task failed", "task", i, "err", err)
			mu.Lock()
			if first == nil {
				first = err
				stats.FirstErr = i
			}
			mu.Unlock()
		}
	}

	if workers == 1 {
		for i := 0; i < n; i++ {
			runTask(i)
		}
	} else {
		// Fully buffered dispatch, filled and closed before the workers
		// start: fine-grained batches never serialize on a synchronous
		// channel handoff, and workers drain the queue without ever
		// blocking on the producer (BenchmarkForEachTinyTasks).
		next := make(chan int, n)
		for i := 0; i < n; i++ {
			next <- i
		}
		close(next)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				_, wsp := obs.Start(ctx, "par.worker")
				tasks := 0
				for i := range next {
					runTask(i)
					tasks++
				}
				wsp.SetAttr("worker", w)
				wsp.SetAttr("tasks", tasks)
				wsp.End()
			}(w)
		}
		wg.Wait()
	}

	stats.Elapsed = time.Since(batchStart)
	metBatch.ObserveDuration(stats.Elapsed)
	metTasks.Add(int64(n))
	metWorkers.Set(float64(workers))
	metUtilization.Set(stats.Utilization())
	obs.Logger().Debug("parallel batch done",
		"tasks", n, "workers", workers, "elapsed", stats.Elapsed,
		"utilization", stats.Utilization(), "first_err_index", stats.FirstErr)
	return stats, first
}
