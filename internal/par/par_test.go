package par

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachRunsAll(t *testing.T) {
	const n = 100
	results := make([]int, n)
	err := ForEach(n, 8, func(i int) error {
		results[i] = i * i
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range results {
		if v != i*i {
			t.Fatalf("slot %d = %d", i, v)
		}
	}
}

func TestForEachSequentialFallback(t *testing.T) {
	order := make([]int, 0, 5)
	err := ForEach(5, 1, func(i int) error {
		order = append(order, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential order violated: %v", order)
		}
	}
}

func TestForEachPropagatesError(t *testing.T) {
	var calls int64
	err := ForEach(50, 4, func(i int) error {
		atomic.AddInt64(&calls, 1)
		if i == 13 {
			return fmt.Errorf("boom at %d", i)
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if calls != 50 {
		t.Fatalf("tasks should all run; got %d", calls)
	}
}

// TestForEachStatsErrorMidBatch pins the documented behaviour: a
// mid-batch error is reported (with its index) but every remaining task
// still runs to completion.
func TestForEachStatsErrorMidBatch(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var calls int64
		const n = 60
		stats, err := ForEachStats(n, workers, func(i int) error {
			atomic.AddInt64(&calls, 1)
			if i == 7 {
				return fmt.Errorf("boom at %d", i)
			}
			return nil
		})
		if err == nil || !strings.Contains(err.Error(), "boom at 7") {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		if got := atomic.LoadInt64(&calls); got != n {
			t.Fatalf("workers=%d: only %d of %d tasks ran after mid-batch error", workers, got, n)
		}
		if stats.FirstErr != 7 {
			t.Fatalf("workers=%d: FirstErr = %d, want 7", workers, stats.FirstErr)
		}
	}
}

// TestForEachStatsFirstErrMatchesError checks the index always names the
// task whose error was returned, even when several tasks fail.
func TestForEachStatsFirstErrMatchesError(t *testing.T) {
	stats, err := ForEachStats(40, 4, func(i int) error {
		if i%3 == 0 {
			return fmt.Errorf("fail %d", i)
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if want := fmt.Sprintf("fail %d", stats.FirstErr); err.Error() != want {
		t.Fatalf("FirstErr %d does not match returned error %q", stats.FirstErr, err)
	}
}

func TestForEachStatsDurations(t *testing.T) {
	const n = 8
	stats, err := ForEachStats(n, 4, func(i int) error {
		time.Sleep(time.Duration(i%2+1) * time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Durations) != n {
		t.Fatalf("got %d durations, want %d", len(stats.Durations), n)
	}
	for i, d := range stats.Durations {
		if d < time.Millisecond {
			t.Fatalf("task %d duration %v implausibly small", i, d)
		}
	}
	if stats.FirstErr != -1 {
		t.Fatalf("FirstErr = %d on a clean batch", stats.FirstErr)
	}
	if stats.Workers != 4 || stats.Elapsed <= 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if u := stats.Utilization(); u <= 0 || u > 1.5 {
		t.Fatalf("utilization = %v outside plausible range", u)
	}
}

func TestForEachZeroTasks(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { return fmt.Errorf("nope") }); err != nil {
		t.Fatal("zero tasks should be a no-op")
	}
}

func TestForEachDefaultWorkers(t *testing.T) {
	var sum int64
	if err := ForEach(200, 0, func(i int) error {
		atomic.AddInt64(&sum, int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum != 199*200/2 {
		t.Fatalf("sum %d", sum)
	}
}

// TestWorkerBusyAccounting: every worker's busy clock must be populated,
// their sum must equal the summed task durations, and the busy-ratio
// reduction must stay ordered and within [0, 1].
func TestWorkerBusyAccounting(t *testing.T) {
	const n, workers = 32, 4
	stats, err := ForEachStats(n, workers, func(i int) error {
		time.Sleep(time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.WorkerBusy) != workers {
		t.Fatalf("WorkerBusy has %d entries, want %d", len(stats.WorkerBusy), workers)
	}
	var fromWorkers, fromTasks time.Duration
	for _, b := range stats.WorkerBusy {
		fromWorkers += b
	}
	for _, d := range stats.Durations {
		fromTasks += d
	}
	if fromWorkers != fromTasks {
		t.Fatalf("worker busy sum %v != task duration sum %v", fromWorkers, fromTasks)
	}
	min, mean, max := stats.WorkerBusyRatios()
	if min < 0 || min > mean || mean > max || max > 1 {
		t.Fatalf("busy ratios min/mean/max = %v/%v/%v not ordered in [0,1]", min, mean, max)
	}
	if max <= 0 {
		t.Fatal("no worker reported busy time")
	}
}

// TestWorkerBusySingleWorker: the sequential fast path accounts its one
// worker too.
func TestWorkerBusySingleWorker(t *testing.T) {
	stats, err := ForEachStats(8, 1, func(int) error {
		time.Sleep(time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.WorkerBusy) != 1 || stats.WorkerBusy[0] <= 0 {
		t.Fatalf("WorkerBusy = %v", stats.WorkerBusy)
	}
	if _, _, max := stats.WorkerBusyRatios(); max <= 0 {
		t.Fatal("single-worker busy ratio is zero")
	}
}
