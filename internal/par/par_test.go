package par

import (
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachRunsAll(t *testing.T) {
	const n = 100
	results := make([]int, n)
	err := ForEach(n, 8, func(i int) error {
		results[i] = i * i
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range results {
		if v != i*i {
			t.Fatalf("slot %d = %d", i, v)
		}
	}
}

func TestForEachSequentialFallback(t *testing.T) {
	order := make([]int, 0, 5)
	err := ForEach(5, 1, func(i int) error {
		order = append(order, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential order violated: %v", order)
		}
	}
}

func TestForEachPropagatesError(t *testing.T) {
	var calls int64
	err := ForEach(50, 4, func(i int) error {
		atomic.AddInt64(&calls, 1)
		if i == 13 {
			return fmt.Errorf("boom at %d", i)
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if calls != 50 {
		t.Fatalf("tasks should all run; got %d", calls)
	}
}

func TestForEachZeroTasks(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { return fmt.Errorf("nope") }); err != nil {
		t.Fatal("zero tasks should be a no-op")
	}
}

func TestForEachDefaultWorkers(t *testing.T) {
	var sum int64
	if err := ForEach(200, 0, func(i int) error {
		atomic.AddInt64(&sum, int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum != 199*200/2 {
		t.Fatalf("sum %d", sum)
	}
}
