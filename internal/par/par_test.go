package par

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachRunsAll(t *testing.T) {
	const n = 100
	results := make([]int, n)
	err := ForEach(n, 8, func(i int) error {
		results[i] = i * i
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range results {
		if v != i*i {
			t.Fatalf("slot %d = %d", i, v)
		}
	}
}

func TestForEachSequentialFallback(t *testing.T) {
	order := make([]int, 0, 5)
	err := ForEach(5, 1, func(i int) error {
		order = append(order, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential order violated: %v", order)
		}
	}
}

func TestForEachPropagatesError(t *testing.T) {
	var calls int64
	err := ForEach(50, 4, func(i int) error {
		atomic.AddInt64(&calls, 1)
		if i == 13 {
			return fmt.Errorf("boom at %d", i)
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if calls != 50 {
		t.Fatalf("tasks should all run; got %d", calls)
	}
}

// TestForEachStatsErrorMidBatch pins the documented behaviour: a
// mid-batch error is reported (with its index) but every remaining task
// still runs to completion.
func TestForEachStatsErrorMidBatch(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var calls int64
		const n = 60
		stats, err := ForEachStats(n, workers, func(i int) error {
			atomic.AddInt64(&calls, 1)
			if i == 7 {
				return fmt.Errorf("boom at %d", i)
			}
			return nil
		})
		if err == nil || !strings.Contains(err.Error(), "boom at 7") {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		if got := atomic.LoadInt64(&calls); got != n {
			t.Fatalf("workers=%d: only %d of %d tasks ran after mid-batch error", workers, got, n)
		}
		if stats.FirstErr != 7 {
			t.Fatalf("workers=%d: FirstErr = %d, want 7", workers, stats.FirstErr)
		}
	}
}

// TestForEachStatsFirstErrMatchesError checks the index always names the
// task whose error was returned, even when several tasks fail.
func TestForEachStatsFirstErrMatchesError(t *testing.T) {
	stats, err := ForEachStats(40, 4, func(i int) error {
		if i%3 == 0 {
			return fmt.Errorf("fail %d", i)
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if want := fmt.Sprintf("fail %d", stats.FirstErr); err.Error() != want {
		t.Fatalf("FirstErr %d does not match returned error %q", stats.FirstErr, err)
	}
}

func TestForEachStatsDurations(t *testing.T) {
	const n = 8
	stats, err := ForEachStats(n, 4, func(i int) error {
		time.Sleep(time.Duration(i%2+1) * time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Durations) != n {
		t.Fatalf("got %d durations, want %d", len(stats.Durations), n)
	}
	for i, d := range stats.Durations {
		if d < time.Millisecond {
			t.Fatalf("task %d duration %v implausibly small", i, d)
		}
	}
	if stats.FirstErr != -1 {
		t.Fatalf("FirstErr = %d on a clean batch", stats.FirstErr)
	}
	if stats.Workers != 4 || stats.Elapsed <= 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if u := stats.Utilization(); u <= 0 || u > 1.5 {
		t.Fatalf("utilization = %v outside plausible range", u)
	}
}

func TestForEachZeroTasks(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { return fmt.Errorf("nope") }); err != nil {
		t.Fatal("zero tasks should be a no-op")
	}
}

func TestForEachDefaultWorkers(t *testing.T) {
	var sum int64
	if err := ForEach(200, 0, func(i int) error {
		atomic.AddInt64(&sum, int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum != 199*200/2 {
		t.Fatalf("sum %d", sum)
	}
}
