package par

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// BenchmarkForEachTinyTasks measures dispatch overhead when the tasks
// themselves are nearly free — the regime where the buffered dispatch
// channel matters: with an unbuffered channel every task pays a
// synchronous producer→worker handoff, which serializes the batch.
func BenchmarkForEachTinyTasks(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			var sink atomic.Int64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := ForEach(256, workers, func(int) error {
					sink.Add(1)
					return nil
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
