package tracefile

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// loadFixture parses the hand-authored pipeline trace used across the
// analyzer tests: trace 1 is a full qbeep.pipeline run (17 spans,
// parallel workers, three mitigation iterations), trace 2 a trivial one.
func loadFixture(t *testing.T) *Forest {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", "pipeline.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	forest, err := Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	return forest
}

func TestParseForest(t *testing.T) {
	forest := loadFixture(t)
	if forest.Total != 18 {
		t.Fatalf("parsed %d spans, want 18", forest.Total)
	}
	if len(forest.Traces) != 2 {
		t.Fatalf("got %d traces, want 2", len(forest.Traces))
	}
	tr := forest.Traces[0]
	if tr.ID != 1 || len(tr.Spans) != 17 {
		t.Fatalf("trace 1: id=%d spans=%d", tr.ID, len(tr.Spans))
	}
	root := tr.Root()
	if root == nil || root.Name != "qbeep.pipeline" || root.SpanID != 1 {
		t.Fatalf("root = %+v", root)
	}
	// The root's direct children, in start order.
	var names []string
	for _, c := range root.Children {
		names = append(names, c.Name)
	}
	want := []string{"qasm.parse", "transpile", "noise.execute", "core.mitigate"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("root children = %v, want %v", names, want)
	}
	if d := tr.Duration(); d != 100*time.Millisecond {
		t.Fatalf("trace duration = %v", d)
	}
	// Parent links resolve through the numeric IDs.
	for _, s := range tr.Spans {
		if s.SpanID != 1 && s.Parent == nil {
			t.Fatalf("span %d (%s) has no parent link", s.SpanID, s.Name)
		}
	}
}

func TestAggregates(t *testing.T) {
	forest := loadFixture(t)
	aggs := forest.Aggregates()
	byName := map[string]Aggregate{}
	for _, a := range aggs {
		byName[a.Name] = a
	}
	// The two pipeline roots dominate and sort first.
	if aggs[0].Name != "qbeep.pipeline" {
		t.Fatalf("top aggregate = %s", aggs[0].Name)
	}
	pl := byName["qbeep.pipeline"]
	if pl.Count != 2 || pl.Total != 110*time.Millisecond || pl.Max != 100*time.Millisecond {
		t.Fatalf("qbeep.pipeline agg = %+v", pl)
	}
	// Pipeline self time: 100ms - (2+16+30+45)ms children + 10ms leaf root.
	if want := (100 - 93 + 10) * time.Millisecond; pl.Self != want {
		t.Fatalf("qbeep.pipeline self = %v, want %v", pl.Self, want)
	}
	w := byName["par.worker"]
	if w.Count != 2 || w.Total != 21*time.Millisecond {
		t.Fatalf("par.worker agg = %+v", w)
	}
	iter := byName["core.mitigate.iter"]
	if iter.Count != 3 || iter.P50 != 7*time.Millisecond || iter.Max != 8*time.Millisecond {
		t.Fatalf("core.mitigate.iter agg = %+v", iter)
	}
	// sim.run's workers overrun it in sum (11+10 > 12): self floors at 0.
	if sr := byName["sim.run"]; sr.Self != 0 {
		t.Fatalf("sim.run self = %v, want 0", sr.Self)
	}
}

func TestCriticalPath(t *testing.T) {
	forest := loadFixture(t)
	slow := forest.Slowest()
	if slow == nil || slow.ID != 1 {
		t.Fatalf("slowest = %+v", slow)
	}
	path := CriticalPath(slow)
	var names []string
	for _, s := range path {
		names = append(names, s.Name)
	}
	// The mitigation ends last under the root; its last-ending child is
	// the third iteration.
	want := "qbeep.pipeline,core.mitigate,core.mitigate.iter"
	if strings.Join(names, ",") != want {
		t.Fatalf("critical path = %v, want %s", names, want)
	}
	if it, ok := path[2].Attr("iteration"); !ok || it != float64(3) {
		t.Fatalf("critical-path leaf iteration attr = %v", it)
	}
}

// TestReportGolden pins the full text report for the fixture, so the
// CLI's primary output shape is reviewed, not accidental.
func TestReportGolden(t *testing.T) {
	forest := loadFixture(t)
	var buf bytes.Buffer
	if err := WriteReport(&buf, forest); err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "report.golden")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("report drifted from golden.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// loadResourceFixture parses the resource-attributed trace: one pipeline
// run whose spans carry cpu/alloc deltas from a capture-enabled recording.
func loadResourceFixture(t *testing.T) *Forest {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", "resource.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	forest, err := Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	return forest
}

func TestResourceAttribution(t *testing.T) {
	plain := loadFixture(t)
	if plain.HasResources() {
		t.Fatal("wall-time-only fixture reports resources")
	}
	forest := loadResourceFixture(t)
	if !forest.HasResources() {
		t.Fatal("resource fixture reports no resources")
	}
	root := forest.Traces[0].Root()
	// Pipeline self-CPU: 95ms minus build 28ms and mitigate 55ms.
	if got := root.SelfCPU(); got != 12*time.Millisecond {
		t.Fatalf("root self-CPU = %v, want 12ms", got)
	}
	// Pipeline self-allocs: 12MiB minus 6MiB + 5MiB children.
	if got := root.SelfAllocBytes(); got != 1<<20 {
		t.Fatalf("root self-alloc bytes = %d, want %d", got, 1<<20)
	}
	if got := root.SelfAllocObjects(); got != 100 {
		t.Fatalf("root self-alloc objects = %d, want 100", got)
	}
	aggs := forest.Aggregates()
	byName := map[string]Aggregate{}
	for _, a := range aggs {
		byName[a.Name] = a
	}
	iter := byName["core.mitigate.iter"]
	if iter.CPU != 42*time.Millisecond || iter.SelfCPU != 42*time.Millisecond {
		t.Fatalf("iter agg cpu = %v self = %v", iter.CPU, iter.SelfCPU)
	}
	mit := byName["core.mitigate"]
	if mit.SelfCPU != 13*time.Millisecond || mit.SelfAllocObjects != 200 {
		t.Fatalf("mitigate agg = %+v", mit)
	}
}

// TestSelfResourceClamps: children summing past their parent (process-wide
// alloc counters under fan-out) clamp self values at zero.
func TestSelfResourceClamps(t *testing.T) {
	const stream = `{"name":"kid","trace":1,"span":2,"parent":1,"start":"2026-01-02T03:04:05Z","duration":1000,"cpu":5000,"alloc_bytes":2048,"alloc_objects":9}` + "\n" +
		`{"name":"dad","trace":1,"span":1,"start":"2026-01-02T03:04:05Z","duration":2000,"cpu":4000,"alloc_bytes":1024,"alloc_objects":3}` + "\n"
	f, err := Parse(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	root := f.Traces[0].Root()
	if got := root.SelfCPU(); got != 0 {
		t.Fatalf("over-attributed self-CPU = %v, want 0", got)
	}
	if root.SelfAllocBytes() != 0 || root.SelfAllocObjects() != 0 {
		t.Fatalf("over-attributed self-allocs = %d/%d, want 0/0",
			root.SelfAllocBytes(), root.SelfAllocObjects())
	}
}

// TestResourceReportGolden pins the resource-columned report, and
// TestReportGolden above pins that wall-time-only streams still render
// the pre-capture layout byte-for-byte.
func TestResourceReportGolden(t *testing.T) {
	forest := loadResourceFixture(t)
	var buf bytes.Buffer
	if err := WriteReport(&buf, forest); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, buf.Bytes(), filepath.Join("testdata", "resource_report.golden"))
}

// TestHotspotsGolden pins the -hotspots report: both rankings, shares and
// the resource formatting.
func TestHotspotsGolden(t *testing.T) {
	forest := loadResourceFixture(t)
	var buf bytes.Buffer
	if err := WriteHotspots(&buf, forest, 10); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, buf.Bytes(), filepath.Join("testdata", "hotspots.golden"))
}

func TestHotspotsFallbackAndTop(t *testing.T) {
	// Wall-time-only stream: falls back to a self-time ranking.
	var buf bytes.Buffer
	if err := WriteHotspots(&buf, loadFixture(t), 3); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "no resource-attributed spans") {
		t.Fatalf("fallback note missing:\n%s", out)
	}
	// Header + note lines plus exactly top=3 rows.
	if got := strings.Count(out, "\n"); got != 7 {
		t.Fatalf("fallback output has %d lines, want 7:\n%s", got, out)
	}
	// top larger than the table renders everything without panicking.
	buf.Reset()
	if err := WriteHotspots(&buf, loadResourceFixture(t), 100); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "core.graph.build") {
		t.Fatalf("hotspots missing span:\n%s", buf.String())
	}
}

func TestIterationsSaved(t *testing.T) {
	// The wall-time fixture predates the attribute: no spans, no summary.
	plain := loadFixture(t)
	if saved, spans := plain.IterationsSaved(); saved != 0 || spans != 0 {
		t.Fatalf("old stream reports saved=%d spans=%d", saved, spans)
	}
	var buf bytes.Buffer
	if err := WriteHotspots(&buf, plain, 0); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "adaptive early exit") {
		t.Fatalf("summary printed for a stream without the attribute:\n%s", buf.String())
	}
	// The resource fixture's core.mitigate span carries saved=17.
	forest := loadResourceFixture(t)
	if saved, spans := forest.IterationsSaved(); saved != 17 || spans != 1 {
		t.Fatalf("saved=%d spans=%d, want 17/1", saved, spans)
	}
	// A fixed-schedule run (attribute present, zero saved) still counts
	// the span, distinguishing "ran exactly" from "not recorded".
	stream := `{"name":"core.mitigate","trace":1,"span":1,"start":"2026-01-02T03:04:05Z","duration":1000,"attrs":[{"key":"iterations_saved","value":0}]}` + "\n"
	fixed, err := Parse(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if saved, spans := fixed.IterationsSaved(); saved != 0 || spans != 1 {
		t.Fatalf("fixed schedule saved=%d spans=%d, want 0/1", saved, spans)
	}
}

// compareGolden diffs got against the named golden file, rewriting it
// under -update-golden.
func compareGolden(t *testing.T, got []byte, goldenPath string) {
	t.Helper()
	if *updateGolden {
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output drifted from golden.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestFlameView(t *testing.T) {
	forest := loadFixture(t)
	var buf bytes.Buffer
	if err := WriteFlame(&buf, forest.Slowest()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"qbeep.pipeline", "  transpile", "    transpile.route", "      par.worker"} {
		if !strings.Contains(out, want) {
			t.Fatalf("flame view missing %q:\n%s", want, out)
		}
	}
}

func TestWriteChrome(t *testing.T) {
	forest := loadFixture(t)
	var buf bytes.Buffer
	if err := WriteChrome(&buf, forest); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  uint64         `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not JSON: %v", err)
	}
	if len(doc.TraceEvents) != 18 {
		t.Fatalf("got %d events, want 18", len(doc.TraceEvents))
	}
	workers := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.Dur < 0 || ev.Ts < 0 {
			t.Fatalf("bad event %+v", ev)
		}
		if ev.Name == "par.worker" && ev.Pid == 1 {
			workers[ev.Tid] = true
		}
		if ev.Name == "qbeep.pipeline" && ev.Pid == 1 {
			if ev.Tid != 0 || ev.Dur != 100000 {
				t.Fatalf("pipeline event %+v", ev)
			}
		}
	}
	// The two concurrent workers must land on distinct lanes.
	if len(workers) != 2 {
		t.Fatalf("worker lanes = %v, want 2 distinct", workers)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(strings.NewReader("{not json}\n")); err == nil {
		t.Fatal("malformed line accepted")
	}
	if _, err := Parse(strings.NewReader(`{"trace":1,"span":1,"start":"2026-01-02T03:04:05Z","duration":5}` + "\n")); err == nil {
		t.Fatal("nameless span accepted")
	}
	f, err := Parse(strings.NewReader("\n\n"))
	if err != nil || f.Total != 0 || len(f.Traces) != 0 {
		t.Fatalf("blank stream: %+v, %v", f, err)
	}
	if f.Slowest() != nil {
		t.Fatal("Slowest on empty forest should be nil")
	}
}

// TestOrphanBecomesRoot: a span whose parent never landed (truncated
// stream) still analyzes as an extra root.
func TestOrphanBecomesRoot(t *testing.T) {
	const stream = `{"name":"lost.child","trace":7,"span":9,"parent":4,"start":"2026-01-02T03:04:05Z","duration":1000}` + "\n"
	f, err := Parse(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Traces) != 1 || len(f.Traces[0].Roots) != 1 {
		t.Fatalf("forest = %+v", f)
	}
	if r := f.Traces[0].Root(); r == nil || r.Name != "lost.child" {
		t.Fatalf("root = %+v", r)
	}
}
