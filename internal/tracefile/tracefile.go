// Package tracefile reads the NDJSON span streams written by
// obs.NDJSONSink (cmd/qbeep -trace and friends) and reconstructs the
// hierarchical trace forest for offline analysis: per-name aggregates,
// critical paths, flame views and Chrome trace-event export. It is the
// engine behind cmd/qbeep-trace and is importable so tests can assert on
// analysis results without shelling out.
package tracefile

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"qbeep/internal/obs"
)

// Span is one parsed span plus its resolved tree links. End is derived
// (Start + Duration) since the NDJSON records completion events.
type Span struct {
	obs.SpanEvent
	Children []*Span
	Parent   *Span // nil for roots and orphans
}

// End returns the span's completion instant.
func (s *Span) End() time.Time { return s.Start.Add(s.Duration) }

// Attr returns the named attribute value and whether it was present.
func (s *Span) Attr(key string) (any, bool) {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return nil, false
}

// SelfTime is the span's duration minus the total duration of its direct
// children, floored at zero (children of concurrent fan-outs can sum past
// the parent's wall time).
func (s *Span) SelfTime() time.Duration {
	self := s.Duration
	for _, c := range s.Children {
		self -= c.Duration
	}
	if self < 0 {
		self = 0
	}
	return self
}

// HasResources reports whether the span carries any resource-attributed
// data (cpu/alloc_bytes/alloc_objects wire fields from a capture-enabled
// recording).
func (s *Span) HasResources() bool {
	return s.CPU > 0 || s.AllocBytes > 0 || s.AllocObjects > 0
}

// SelfCPU is the span's CPU delta minus its direct children's, floored
// at zero. For fan-out parents the children run on their own threads, so
// the parent's recorded CPU already excludes theirs and self ≈ total.
func (s *Span) SelfCPU() time.Duration {
	self := s.CPU
	for _, c := range s.Children {
		self -= c.CPU
	}
	if self < 0 {
		self = 0
	}
	return self
}

// SelfAllocBytes is the span's allocation-byte delta minus its direct
// children's, floored at zero. The underlying counters are process-wide,
// so under concurrent fan-out children can sum past the parent.
func (s *Span) SelfAllocBytes() uint64 {
	var kids uint64
	for _, c := range s.Children {
		kids += c.AllocBytes
	}
	if kids >= s.AllocBytes {
		return 0
	}
	return s.AllocBytes - kids
}

// SelfAllocObjects is the span's allocation-object delta minus its
// direct children's, floored at zero.
func (s *Span) SelfAllocObjects() uint64 {
	var kids uint64
	for _, c := range s.Children {
		kids += c.AllocObjects
	}
	if kids >= s.AllocObjects {
		return 0
	}
	return s.AllocObjects - kids
}

// Trace is one reconstructed trace: every span sharing a TraceID.
type Trace struct {
	ID    uint64
	Roots []*Span // parent 0 or unresolved parent, in span-ID order
	Spans []*Span // every span of the trace, in span-ID order
}

// Duration is the trace's wall clock: latest end minus earliest start
// across all spans.
func (t *Trace) Duration() time.Duration {
	if len(t.Spans) == 0 {
		return 0
	}
	first, last := t.Spans[0].Start, t.Spans[0].End()
	for _, s := range t.Spans[1:] {
		if s.Start.Before(first) {
			first = s.Start
		}
		if e := s.End(); e.After(last) {
			last = e
		}
	}
	return last.Sub(first)
}

// Root returns the trace's primary root: span ID 1 when present,
// otherwise the first root.
func (t *Trace) Root() *Span {
	for _, r := range t.Roots {
		if r.SpanID == 1 {
			return r
		}
	}
	if len(t.Roots) > 0 {
		return t.Roots[0]
	}
	return nil
}

// Forest is every trace in a span stream.
type Forest struct {
	Traces []*Trace // ascending TraceID
	Total  int      // spans parsed
}

// Parse reads an NDJSON span stream and reconstructs the trace forest.
// Blank lines are skipped; a malformed line fails with its line number.
// Spans whose parent ID never appears become additional roots of their
// trace (a truncated stream still analyzes).
func Parse(r io.Reader) (*Forest, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	byTrace := map[uint64][]*Span{}
	line := 0
	total := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ev obs.SpanEvent
		if err := json.Unmarshal(raw, &ev); err != nil {
			return nil, fmt.Errorf("tracefile: line %d: %w", line, err)
		}
		if ev.Name == "" {
			return nil, fmt.Errorf("tracefile: line %d: span without a name", line)
		}
		byTrace[ev.TraceID] = append(byTrace[ev.TraceID], &Span{SpanEvent: ev})
		total++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tracefile: %w", err)
	}
	f := &Forest{Total: total}
	for id, spans := range byTrace {
		f.Traces = append(f.Traces, buildTrace(id, spans))
	}
	sort.Slice(f.Traces, func(i, j int) bool { return f.Traces[i].ID < f.Traces[j].ID })
	return f, nil
}

// buildTrace links one trace's spans into a tree. Sinks record spans at
// End, so children usually precede their parent in the stream; sorting by
// span ID restores allocation (start) order.
func buildTrace(id uint64, spans []*Span) *Trace {
	sort.Slice(spans, func(i, j int) bool { return spans[i].SpanID < spans[j].SpanID })
	byID := make(map[uint64]*Span, len(spans))
	for _, s := range spans {
		// Duplicate span IDs (merged streams) keep the first occurrence
		// addressable; later ones still appear in Spans.
		if _, ok := byID[s.SpanID]; !ok {
			byID[s.SpanID] = s
		}
	}
	t := &Trace{ID: id, Spans: spans}
	for _, s := range spans {
		if p, ok := byID[s.ParentID]; ok && s.ParentID != 0 && p != s {
			s.Parent = p
			p.Children = append(p.Children, s)
			continue
		}
		t.Roots = append(t.Roots, s)
	}
	// Children sort by start time (ties by span ID) so flame views and
	// critical paths walk them chronologically.
	for _, s := range spans {
		sort.Slice(s.Children, func(i, j int) bool {
			a, b := s.Children[i], s.Children[j]
			if !a.Start.Equal(b.Start) {
				return a.Start.Before(b.Start)
			}
			return a.SpanID < b.SpanID
		})
	}
	return t
}

// HasResources reports whether any span in the forest carries resource
// data — the switch that turns on the resource columns in the report and
// flame views, keeping output for pre-capture traces byte-identical.
func (f *Forest) HasResources() bool {
	for _, t := range f.Traces {
		for _, s := range t.Spans {
			if s.HasResources() {
				return true
			}
		}
	}
	return false
}

// Slowest returns the trace with the largest wall-clock duration (ties
// break toward the lower ID), or nil for an empty forest.
func (f *Forest) Slowest() *Trace {
	var best *Trace
	var bestD time.Duration
	for _, t := range f.Traces {
		if d := t.Duration(); best == nil || d > bestD {
			best, bestD = t, d
		}
	}
	return best
}
