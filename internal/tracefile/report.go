package tracefile

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Aggregate is the rollup of every span sharing one name. The resource
// sums are zero for streams recorded without capture.
type Aggregate struct {
	Name  string
	Count int
	Total time.Duration // sum of span durations
	Self  time.Duration // sum of self times (duration minus direct children)
	P50   time.Duration // median span duration
	P95   time.Duration
	Max   time.Duration
	// Resource-attributed sums (optional wire fields; see obs resource.go).
	CPU              time.Duration // sum of span CPU deltas
	SelfCPU          time.Duration // CPU minus direct children, per span
	AllocBytes       uint64
	AllocObjects     uint64
	SelfAllocBytes   uint64
	SelfAllocObjects uint64
}

// Aggregates rolls the forest up by span name, sorted by total descending
// (ties by name so output is deterministic).
func (f *Forest) Aggregates() []Aggregate {
	byName := map[string]*Aggregate{}
	durs := map[string][]time.Duration{}
	for _, t := range f.Traces {
		for _, s := range t.Spans {
			a := byName[s.Name]
			if a == nil {
				a = &Aggregate{Name: s.Name}
				byName[s.Name] = a
			}
			a.Count++
			a.Total += s.Duration
			a.Self += s.SelfTime()
			a.CPU += s.CPU
			a.SelfCPU += s.SelfCPU()
			a.AllocBytes += s.AllocBytes
			a.AllocObjects += s.AllocObjects
			a.SelfAllocBytes += s.SelfAllocBytes()
			a.SelfAllocObjects += s.SelfAllocObjects()
			if s.Duration > a.Max {
				a.Max = s.Duration
			}
			durs[s.Name] = append(durs[s.Name], s.Duration)
		}
	}
	out := make([]Aggregate, 0, len(byName))
	for name, a := range byName {
		d := durs[name]
		sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
		a.P50 = quantileDur(d, 0.50)
		a.P95 = quantileDur(d, 0.95)
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// quantileDur reads the q-quantile of an ascending-sorted duration slice
// by nearest-rank, matching obs.quantile's convention.
func quantileDur(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// CriticalPath walks from the trace root to a leaf, at each step
// descending into the child that finishes last — the child gating the
// parent's completion. The returned slice starts at the root.
func CriticalPath(t *Trace) []*Span {
	root := t.Root()
	if root == nil {
		return nil
	}
	path := []*Span{root}
	cur := root
	for len(cur.Children) > 0 {
		next := cur.Children[0]
		for _, c := range cur.Children[1:] {
			if c.End().After(next.End()) {
				next = c
			}
		}
		path = append(path, next)
		cur = next
	}
	return path
}

// WriteReport prints the human-readable analysis: stream totals, the
// per-name aggregate table, and the slowest trace's critical path. For
// streams with resource-attributed spans the table grows cpu/self-cpu
// and alloc/self-alloc columns; wall-time-only streams render exactly as
// before capture existed.
func WriteReport(w io.Writer, f *Forest) error {
	fmt.Fprintf(w, "spans: %d  traces: %d\n", f.Total, len(f.Traces))
	aggs := f.Aggregates()
	if len(aggs) == 0 {
		_, err := fmt.Fprintln(w, "no spans")
		return err
	}
	res := f.HasResources()
	fmt.Fprintln(w)
	if res {
		fmt.Fprintf(w, "%-32s %8s %12s %12s %12s %12s %10s %10s %10s %10s\n",
			"name", "count", "total", "self", "p50", "max", "cpu", "self-cpu", "alloc", "self-alloc")
	} else {
		fmt.Fprintf(w, "%-32s %8s %12s %12s %12s %12s %12s\n",
			"name", "count", "total", "self", "p50", "p95", "max")
	}
	for _, a := range aggs {
		if res {
			fmt.Fprintf(w, "%-32s %8d %12s %12s %12s %12s %10s %10s %10s %10s\n",
				a.Name, a.Count, fmtDur(a.Total), fmtDur(a.Self),
				fmtDur(a.P50), fmtDur(a.Max),
				fmtDur(a.CPU), fmtDur(a.SelfCPU),
				fmtBytes(a.AllocBytes), fmtBytes(a.SelfAllocBytes))
		} else {
			fmt.Fprintf(w, "%-32s %8d %12s %12s %12s %12s %12s\n",
				a.Name, a.Count, fmtDur(a.Total), fmtDur(a.Self),
				fmtDur(a.P50), fmtDur(a.P95), fmtDur(a.Max))
		}
	}
	slow := f.Slowest()
	if slow == nil {
		return nil
	}
	fmt.Fprintf(w, "\ncritical path (trace %d, %s):\n", slow.ID, fmtDur(slow.Duration()))
	path := CriticalPath(slow)
	rootDur := slow.Duration()
	for i, s := range path {
		pct := 0.0
		if rootDur > 0 {
			pct = 100 * float64(s.Duration) / float64(rootDur)
		}
		fmt.Fprintf(w, "  %s%s  %s (%.1f%%)%s%s\n",
			strings.Repeat("  ", i), s.Name, fmtDur(s.Duration), pct, resSuffix(s), attrSuffix(s))
	}
	return nil
}

// Hotspot is one span name's self-resource rollup: the cost the span
// spends in its own frames, not in named children.
type Hotspot struct {
	Name             string
	Count            int
	SelfTime         time.Duration
	SelfCPU          time.Duration
	SelfAllocBytes   uint64
	SelfAllocObjects uint64
}

// Hotspots reduces the forest's aggregates to their self-resource view.
func (f *Forest) Hotspots() []Hotspot {
	aggs := f.Aggregates()
	out := make([]Hotspot, 0, len(aggs))
	for _, a := range aggs {
		out = append(out, Hotspot{
			Name:             a.Name,
			Count:            a.Count,
			SelfTime:         a.Self,
			SelfCPU:          a.SelfCPU,
			SelfAllocBytes:   a.SelfAllocBytes,
			SelfAllocObjects: a.SelfAllocObjects,
		})
	}
	return out
}

// IterationsSaved sums the iterations_saved attribute over the forest's
// core.mitigate spans — the flow iterations the adaptive convergence
// early-exit skipped (see DESIGN.md §13). Only the mitigation root spans
// count: the triggering core.mitigate.iter child repeats the value and
// would double it. spans counts how many carried the attribute, so a
// fixed-schedule stream (every saved value zero) still reads differently
// from an old stream without the attribute.
func (f *Forest) IterationsSaved() (saved int64, spans int) {
	for _, t := range f.Traces {
		for _, s := range t.Spans {
			if s.Name != "core.mitigate" {
				continue
			}
			v, ok := s.Attr("iterations_saved")
			if !ok {
				continue
			}
			spans++
			switch n := v.(type) {
			case float64:
				saved += int64(n)
			case int64:
				saved += n
			case int:
				saved += int64(n)
			}
		}
	}
	return saved, spans
}

// WriteHotspots prints the optimization shortlist: spans ranked by
// self-CPU (where the compute goes) and by self-allocations (where the
// garbage comes from). top bounds each table (<= 0 means everything).
// Mitigation spans recorded with the adaptive early-exit attribute get a
// summary line of the skipped iterations. Streams recorded without
// resource capture fall back to a self-time ranking with a note, so the
// command stays useful on old traces.
func WriteHotspots(w io.Writer, f *Forest, top int) error {
	hs := f.Hotspots()
	if len(hs) == 0 {
		_, err := fmt.Fprintln(w, "no spans")
		return err
	}
	limit := func(n int) int {
		if top > 0 && top < n {
			return top
		}
		return n
	}
	if !f.HasResources() {
		fmt.Fprintln(w, "no resource-attributed spans in this stream (record with -trace; resource capture is on by default)")
		fmt.Fprintln(w, "falling back to self wall time:")
		fmt.Fprintln(w)
		sort.Slice(hs, func(i, j int) bool {
			if hs[i].SelfTime != hs[j].SelfTime {
				return hs[i].SelfTime > hs[j].SelfTime
			}
			return hs[i].Name < hs[j].Name
		})
		fmt.Fprintf(w, "%-32s %8s %12s\n", "name", "count", "self")
		for _, h := range hs[:limit(len(hs))] {
			fmt.Fprintf(w, "%-32s %8d %12s\n", h.Name, h.Count, fmtDur(h.SelfTime))
		}
		writeIterationsSaved(w, f)
		return nil
	}

	var totalCPU time.Duration
	var totalObjs uint64
	for _, h := range hs {
		totalCPU += h.SelfCPU
		totalObjs += h.SelfAllocObjects
	}
	sort.Slice(hs, func(i, j int) bool {
		if hs[i].SelfCPU != hs[j].SelfCPU {
			return hs[i].SelfCPU > hs[j].SelfCPU
		}
		return hs[i].Name < hs[j].Name
	})
	fmt.Fprintf(w, "hotspots by self-CPU (total %s):\n", fmtDur(totalCPU))
	fmt.Fprintf(w, "%-32s %8s %12s %7s %12s %12s\n",
		"name", "count", "self-cpu", "cpu%", "self", "self-alloc")
	for _, h := range hs[:limit(len(hs))] {
		pct := 0.0
		if totalCPU > 0 {
			pct = 100 * float64(h.SelfCPU) / float64(totalCPU)
		}
		fmt.Fprintf(w, "%-32s %8d %12s %6.1f%% %12s %12s\n",
			h.Name, h.Count, fmtDur(h.SelfCPU), pct, fmtDur(h.SelfTime), fmtBytes(h.SelfAllocBytes))
	}

	sort.Slice(hs, func(i, j int) bool {
		if hs[i].SelfAllocObjects != hs[j].SelfAllocObjects {
			return hs[i].SelfAllocObjects > hs[j].SelfAllocObjects
		}
		if hs[i].SelfAllocBytes != hs[j].SelfAllocBytes {
			return hs[i].SelfAllocBytes > hs[j].SelfAllocBytes
		}
		return hs[i].Name < hs[j].Name
	})
	fmt.Fprintf(w, "\nhotspots by self-allocations (total %d objects):\n", totalObjs)
	fmt.Fprintf(w, "%-32s %8s %12s %7s %12s %12s\n",
		"name", "count", "self-objs", "objs%", "self-alloc", "self-cpu")
	for _, h := range hs[:limit(len(hs))] {
		pct := 0.0
		if totalObjs > 0 {
			pct = 100 * float64(h.SelfAllocObjects) / float64(totalObjs)
		}
		fmt.Fprintf(w, "%-32s %8d %12d %6.1f%% %12s %12s\n",
			h.Name, h.Count, h.SelfAllocObjects, pct, fmtBytes(h.SelfAllocBytes), fmtDur(h.SelfCPU))
	}
	writeIterationsSaved(w, f)
	return nil
}

// writeIterationsSaved appends the adaptive early-exit summary when any
// span recorded the attribute; old streams print nothing extra.
func writeIterationsSaved(w io.Writer, f *Forest) {
	saved, spans := f.IterationsSaved()
	if spans == 0 {
		return
	}
	fmt.Fprintf(w, "\nadaptive early exit: %d flow iterations saved across %d mitigation span(s)\n", saved, spans)
}

// WriteFlame prints an indented text flame view of one trace: every span
// under its parent, with a bar scaled to its share of the root duration.
func WriteFlame(w io.Writer, t *Trace) error {
	root := t.Root()
	if root == nil {
		_, err := fmt.Fprintln(w, "empty trace")
		return err
	}
	fmt.Fprintf(w, "trace %d  %s\n", t.ID, fmtDur(t.Duration()))
	var walk func(s *Span, depth int)
	walk = func(s *Span, depth int) {
		frac := 0.0
		if root.Duration > 0 {
			frac = float64(s.Duration) / float64(root.Duration)
		}
		if frac > 1 {
			frac = 1
		}
		bar := strings.Repeat("#", int(frac*40+0.5))
		fmt.Fprintf(w, "%-60s %12s  %s%s\n",
			strings.Repeat("  ", depth)+s.Name, fmtDur(s.Duration), bar, resSuffix(s))
		for _, c := range s.Children {
			walk(c, depth+1)
		}
	}
	for _, r := range t.Roots {
		walk(r, 0)
	}
	return nil
}

// chromeEvent is one Chrome trace-event ("X" = complete event). Times are
// microseconds; pid groups by trace, tid is a lane chosen so concurrent
// spans don't overlap within one row.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  uint64         `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChrome exports the forest as Chrome trace-event JSON (load in
// chrome://tracing or Perfetto). Timestamps are relative to the earliest
// span start in the stream.
func WriteChrome(w io.Writer, f *Forest) error {
	var epoch time.Time
	for _, t := range f.Traces {
		for _, s := range t.Spans {
			if epoch.IsZero() || s.Start.Before(epoch) {
				epoch = s.Start
			}
		}
	}
	var events []chromeEvent
	for _, t := range f.Traces {
		lanes := assignLanes(t)
		for _, s := range t.Spans {
			ev := chromeEvent{
				Name: s.Name,
				Cat:  "qbeep",
				Ph:   "X",
				Ts:   float64(s.Start.Sub(epoch)) / float64(time.Microsecond),
				Dur:  float64(s.Duration) / float64(time.Microsecond),
				Pid:  t.ID,
				Tid:  lanes[s],
			}
			if len(s.Attrs) > 0 {
				ev.Args = make(map[string]any, len(s.Attrs)+1)
				for _, a := range s.Attrs {
					ev.Args[a.Key] = a.Value
				}
			}
			if ev.Args == nil {
				ev.Args = map[string]any{}
			}
			ev.Args["span"] = s.SpanID
			events = append(events, ev)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}

// assignLanes gives every span a Chrome tid: a span shares its parent's
// lane when the lane's latest occupant has finished (or is an ancestor,
// which Chrome nests correctly); otherwise it opens the first free lane.
// Sequential traces collapse to lane 0; parallel worker fan-outs spread
// one lane per concurrent worker.
func assignLanes(t *Trace) map[*Span]int {
	order := append([]*Span(nil), t.Spans...)
	sort.Slice(order, func(i, j int) bool {
		if !order[i].Start.Equal(order[j].Start) {
			return order[i].Start.Before(order[j].Start)
		}
		return order[i].SpanID < order[j].SpanID
	})
	lanes := map[*Span]int{}
	var laneLast []*Span
	free := func(s *Span, last *Span) bool {
		if last == nil || !last.End().After(s.Start) {
			return true
		}
		for p := s.Parent; p != nil; p = p.Parent {
			if p == last {
				return true
			}
		}
		return false
	}
	for _, s := range order {
		lane := -1
		if s.Parent != nil {
			if pl, ok := lanes[s.Parent]; ok && free(s, laneLast[pl]) {
				lane = pl
			}
		}
		if lane < 0 {
			for i, last := range laneLast {
				if free(s, last) {
					lane = i
					break
				}
			}
		}
		if lane < 0 {
			lane = len(laneLast)
			laneLast = append(laneLast, nil)
		}
		lanes[s] = lane
		laneLast[lane] = s
	}
	return lanes
}

// resSuffix renders a span's resource deltas for the critical-path and
// flame listings; empty for spans recorded without capture so old
// streams print exactly as they always did.
func resSuffix(s *Span) string {
	if !s.HasResources() {
		return ""
	}
	return fmt.Sprintf("  {cpu %s, alloc %s/%d}",
		fmtDur(s.CPU), fmtBytes(s.AllocBytes), s.AllocObjects)
}

// attrSuffix renders a span's attributes for the critical-path listing.
func attrSuffix(s *Span) string {
	if len(s.Attrs) == 0 {
		return ""
	}
	parts := make([]string, len(s.Attrs))
	for i, a := range s.Attrs {
		parts[i] = fmt.Sprintf("%s=%v", a.Key, a.Value)
	}
	return "  [" + strings.Join(parts, " ") + "]"
}

// fmtBytes renders allocation byte counts with a binary-unit suffix.
func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(b)/float64(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(b)/float64(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/float64(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// fmtDur renders durations with three significant places at a stable
// unit, so report columns line up.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	}
}
