package experiments

import (
	"qbeep/internal/algorithms"
	"qbeep/internal/bitstring"
	"qbeep/internal/device"
	"qbeep/internal/mathx"
	"qbeep/internal/par"
)

// ModelDistances is one circuit's Hellinger distances between its observed
// error spectrum and each candidate model (one sample of Fig. 6's CDFs).
type ModelDistances struct {
	Circuit     string
	Backend     string
	QBeep       float64 // Poisson with pre-induction λ (Eq. 2)
	MLEPoisson  float64 // Poisson fit on the observed spectrum
	MLEBinomial float64
	Uniform     float64
	Hammer      float64
}

// Figure6Result aggregates the model-validation corpus.
type Figure6Result struct {
	Samples []ModelDistances
	// Mean Hellinger distances; the paper reports MLE Poisson 0.016,
	// Q-BEEP 0.159, Uniform 0.210, Binomial 0.401.
	MeanQBeep       float64
	MeanMLEPoisson  float64
	MeanMLEBinomial float64
	MeanUniform     float64
	MeanHammer      float64
}

// Figure6 reproduces Fig. 6: across a corpus of single-answer circuits
// (BV, adder, RB; 4–15 qubits), compare five Hamming-spectrum models
// against the observed error spectrum by Hellinger distance. Expected
// ordering (paper): MLE Poisson < Q-BEEP < the non-Poisson models, with
// Q-BEEP the best pre-induction model.
func Figure6(cfg Config) (*Figure6Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	defer figureSpan("6")()
	rng := cfg.rng(6)
	total := cfg.scaled(2750, 30)
	backends, err := device.Catalog()
	if err != nil {
		return nil, err
	}
	res := &Figure6Result{}

	// Phase 1 (sequential, deterministic): build the corpus with one
	// pre-split RNG per circuit so phase 2 can fan out.
	type task struct {
		w   *algorithms.Workload
		b   *device.Backend
		rng *mathx.RNG
	}
	tasks := make([]task, 0, total)
	for i := 0; i < total; i++ {
		var w *algorithms.Workload
		switch i % 3 {
		case 0: // BV, width 4-14 data qubits
			n := 4 + rng.Intn(11)
			w, err = algorithms.BernsteinVazirani(n, algorithms.RandomSecret(n, rng))
		case 1: // adder
			w, err = algorithms.Adder()
		default: // RB, width 4-12
			n := 4 + rng.Intn(9)
			w, err = algorithms.RandomizedBenchmarking(n, 1+rng.Intn(6), rng)
		}
		if err != nil {
			return nil, err
		}
		b := pickBackend(backends, w.Circuit.N, i)
		if b == nil {
			continue
		}
		tasks = append(tasks, task{w: w, b: b, rng: rng.Split(uint64(i))})
	}

	// Phase 2 (parallel): execute and score each circuit into its slot.
	samples := make([]*ModelDistances, len(tasks))
	err = par.ForEach(len(tasks), 0, func(i int) error {
		tk := tasks[i]
		out, err := runWorkload(tk.w, tk.b, cfg.Shots, cfg.Batch, cfg.mitigateOptions(), tk.rng, false)
		if err != nil {
			return err
		}
		observed, ok := out.errorSpectrumAround()
		if !ok {
			return nil // perfectly clean induction: no error spectrum
		}
		n := len(observed) - 1
		values := make([]int, n+1)
		for d := range values {
			values[d] = d
		}
		mlePois, err := mathx.FitPoissonMLE(values, observed)
		if err != nil {
			return nil
		}
		mleBin, err := mathx.FitBinomialMLE(n, values, observed)
		if err != nil {
			return nil
		}
		samples[i] = &ModelDistances{
			Circuit: tk.w.Circuit.Name,
			Backend: tk.b.Name,
			QBeep: bitstring.HellingerVec(observed[1:],
				poissonErrorSpectrum(out.Lambda.Lambda(), n)[1:]),
			MLEPoisson: bitstring.HellingerVec(observed[1:],
				poissonErrorSpectrum(mlePois.Lambda, n)[1:]),
			MLEBinomial: bitstring.HellingerVec(observed[1:],
				binomialErrorSpectrum(mleBin, n)[1:]),
			Uniform: bitstring.HellingerVec(observed[1:],
				uniformErrorSpectrum(n)[1:]),
			Hammer: bitstring.HellingerVec(observed[1:],
				hammerErrorSpectrum(n)[1:]),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, s := range samples {
		if s != nil {
			res.Samples = append(res.Samples, *s)
		}
	}

	var qb, mp, mb, un, hm []float64
	for _, s := range res.Samples {
		qb = append(qb, s.QBeep)
		mp = append(mp, s.MLEPoisson)
		mb = append(mb, s.MLEBinomial)
		un = append(un, s.Uniform)
		hm = append(hm, s.Hammer)
	}
	res.MeanQBeep = mathx.Mean(qb)
	res.MeanMLEPoisson = mathx.Mean(mp)
	res.MeanMLEBinomial = mathx.Mean(mb)
	res.MeanUniform = mathx.Mean(un)
	res.MeanHammer = mathx.Mean(hm)

	cfg.printf("\nFigure 6: Hellinger distance of Hamming-spectrum models (%d circuits)\n", len(res.Samples))
	cfg.printf("  %-14s %10s %10s  (paper mean)\n", "model", "mean", "median")
	cfg.printf("  %-14s %10.4f %10.4f  (0.016)\n", "MLE Poisson", res.MeanMLEPoisson, mathx.Median(mp))
	cfg.printf("  %-14s %10.4f %10.4f  (0.159)\n", "Q-BEEP", res.MeanQBeep, mathx.Median(qb))
	cfg.printf("  %-14s %10.4f %10.4f  (0.210)\n", "Uniform", res.MeanUniform, mathx.Median(un))
	cfg.printf("  %-14s %10.4f %10.4f  (0.401)\n", "MLE Binomial", res.MeanMLEBinomial, mathx.Median(mb))
	cfg.printf("  %-14s %10.4f %10.4f  (n/a)\n", "HAMMER", res.MeanHammer, mathx.Median(hm))
	// CDF rows (deciles) for the plotted curves.
	cfg.printf("  CDF deciles (Hellinger at q):\n")
	cfg.printf("  %4s %8s %8s %8s %8s %8s\n", "q", "qbeep", "mlePois", "mleBin", "unif", "hammer")
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		cfg.printf("  %4.2f %8.4f %8.4f %8.4f %8.4f %8.4f\n", q,
			mathx.Quantile(qb, q), mathx.Quantile(mp, q), mathx.Quantile(mb, q),
			mathx.Quantile(un, q), mathx.Quantile(hm, q))
	}
	return res, nil
}

// pickBackend deterministically selects a backend with capacity for n
// qubits, rotating with i.
func pickBackend(backends []*device.Backend, n, i int) *device.Backend {
	var fit []*device.Backend
	for _, b := range backends {
		if b.N() >= n {
			fit = append(fit, b)
		}
	}
	if len(fit) == 0 {
		return nil
	}
	return fit[i%len(fit)]
}
