package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// The WriteCSV methods dump each figure's raw series in a plot-ready
// shape (one row per sample), so the tables printed to the console can be
// regenerated as actual figures by any plotting tool.

func writeRows(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f2s(v float64) string { return strconv.FormatFloat(v, 'g', 10, 64) }

// WriteCSV dumps the spectrum rows (Fig. 1(a)/Fig. 2 panels).
func (s *SpectrumResult) WriteCSV(w io.Writer) error {
	rows := make([][]string, 0, len(s.Rows))
	for _, r := range s.Rows {
		rows = append(rows, []string{
			strconv.Itoa(s.Qubits), s.Backend, f2s(s.Lambda),
			strconv.Itoa(r.Distance), f2s(r.Observed), f2s(r.QBeep), f2s(r.Hammer),
		})
	}
	return writeRows(w, []string{"qubits", "backend", "lambda", "distance", "observed", "qbeep", "hammer"}, rows)
}

// WriteCSV dumps the RB points of both architectures (Fig. 4).
func (r *Figure4Result) WriteCSV(w io.Writer) error {
	var rows [][]string
	add := func(arch string, pts []RBPoint) {
		for _, p := range pts {
			if !p.IoDValid {
				continue
			}
			rows = append(rows, []string{
				arch, p.Backend, strconv.Itoa(p.GateCount), f2s(p.EHD), f2s(p.IoD),
			})
		}
	}
	add("superconducting", r.Superconducting)
	add("trapped-ion", r.TrappedIon)
	return writeRows(w, []string{"architecture", "backend", "gates", "ehd", "iod"}, rows)
}

// WriteCSV dumps the per-circuit model distances (Fig. 6).
func (r *Figure6Result) WriteCSV(w io.Writer) error {
	rows := make([][]string, 0, len(r.Samples))
	for _, s := range r.Samples {
		rows = append(rows, []string{
			s.Circuit, s.Backend, f2s(s.QBeep), f2s(s.MLEPoisson),
			f2s(s.MLEBinomial), f2s(s.Uniform), f2s(s.Hammer),
		})
	}
	return writeRows(w, []string{"circuit", "backend", "qbeep", "mle_poisson", "mle_binomial", "uniform", "hammer"}, rows)
}

// WriteCSV dumps the per-circuit BV cases (Fig. 7).
func (r *Figure7Result) WriteCSV(w io.Writer) error {
	rows := make([][]string, 0, len(r.Cases))
	for _, c := range r.Cases {
		rows = append(rows, []string{
			strconv.Itoa(c.Qubits), c.Backend, c.Secret,
			f2s(c.PSTRaw), f2s(c.PSTQBeep), f2s(c.PSTHammer),
			f2s(c.FidRaw), f2s(c.FidQBeep), f2s(c.FidHammer),
		})
	}
	return writeRows(w, []string{
		"qubits", "backend", "circuit",
		"pst_raw", "pst_qbeep", "pst_hammer",
		"fid_raw", "fid_qbeep", "fid_hammer",
	}, rows)
}

// WriteCSV dumps the per-cell suite results (Figs. 8/9/11).
func (r *QASMBenchResult) WriteCSV(w io.Writer) error {
	rows := make([][]string, 0, len(r.Cells))
	for _, c := range r.Cells {
		rows = append(rows, []string{
			c.Algorithm, c.Backend, f2s(c.FidRaw), f2s(c.FidQBeep), f2s(c.Ratio), f2s(c.Entropy),
		})
	}
	return writeRows(w, []string{"algorithm", "backend", "fid_raw", "fid_qbeep", "ratio", "entropy"}, rows)
}

// WriteCSV dumps the per-solution QAOA cases (Fig. 10).
func (r *Figure10Result) WriteCSV(w io.Writer) error {
	rows := make([][]string, 0, len(r.Cases))
	for _, c := range r.Cases {
		rows = append(rows, []string{
			strconv.Itoa(c.Vertices), strconv.Itoa(c.P), c.Backend,
			f2s(c.CRRaw), f2s(c.CRQBeep), f2s(c.Ratio), f2s(c.Lambda),
		})
	}
	return writeRows(w, []string{"vertices", "p", "backend", "cr_raw", "cr_qbeep", "ratio", "lambda"}, rows)
}

// CSVName returns the conventional file name for a figure's CSV dump.
func CSVName(figure string) string {
	return fmt.Sprintf("figure%s.csv", figure)
}
