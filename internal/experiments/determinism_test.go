package experiments

import (
	"math"
	"testing"
)

// TestRunnersDeterministic guards the reproducibility contract: the same
// Config must produce bit-identical results regardless of the parallel
// fan-out (every task owns a pre-split RNG).
func TestRunnersDeterministic(t *testing.T) {
	cfg := QuickConfig()

	a7, err := Figure7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b7, err := Figure7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a7.Cases) != len(b7.Cases) {
		t.Fatalf("case counts differ: %d vs %d", len(a7.Cases), len(b7.Cases))
	}
	for i := range a7.Cases {
		if a7.Cases[i] != b7.Cases[i] {
			t.Fatalf("Figure7 case %d differs:\n%+v\n%+v", i, a7.Cases[i], b7.Cases[i])
		}
	}

	a6, err := Figure6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b6, err := Figure6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a6.MeanQBeep-b6.MeanQBeep) > 0 {
		t.Fatalf("Figure6 mean differs: %v vs %v", a6.MeanQBeep, b6.MeanQBeep)
	}
	if len(a6.Samples) != len(b6.Samples) {
		t.Fatalf("Figure6 sample counts differ")
	}

	a10, err := Figure10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b10, err := Figure10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a10.Cases {
		if a10.Cases[i] != b10.Cases[i] {
			t.Fatalf("Figure10 case %d differs", i)
		}
	}

	a8, err := RunQASMBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b8, err := RunQASMBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a8.Cells {
		if a8.Cells[i] != b8.Cells[i] {
			t.Fatalf("QASMBench cell %d differs", i)
		}
	}
}
