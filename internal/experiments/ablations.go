package experiments

import (
	"strconv"

	"qbeep/internal/algorithms"
	"qbeep/internal/bitstring"
	"qbeep/internal/core"
	"qbeep/internal/device"
	"qbeep/internal/mathx"
	"qbeep/internal/noise"
	"qbeep/internal/readout"
)

// AblationRow is one configuration of an ablation study with its achieved
// fidelity.
type AblationRow struct {
	Study    string
	Variant  string
	Fidelity float64
	// Extra carries a study-specific second metric (state-graph edges for
	// the ε sweep, λ for the λ-source sweep); zero when unused.
	Extra float64
}

// AblationResult is the full ablation study of DESIGN.md §5 as one table.
type AblationResult struct {
	Rows []AblationRow
	// RawFidelity is the unmitigated reference.
	RawFidelity float64
}

// Ablations runs every ablation study on one reference workload (10-qubit
// BV on medellin) and prints the table. The same sweeps exist as Go
// benchmarks; this runner makes them part of the reproducible experiment
// pipeline.
func Ablations(cfg Config) (*AblationResult, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	defer figureSpan("ablations")()
	w, err := algorithms.BernsteinVazirani(10, 0b1011010011)
	if err != nil {
		return nil, err
	}
	b, err := device.ByName("medellin")
	if err != nil {
		return nil, err
	}
	exec, err := noise.NewExecutor(b, noise.DefaultModel())
	if err != nil {
		return nil, err
	}
	run, err := execute(exec, w.Circuit, cfg.Shots, cfg.Batch, cfg.rng(99))
	if err != nil {
		return nil, err
	}
	lb, err := core.EstimateLambda(run.Transpiled, b)
	if err != nil {
		return nil, err
	}
	raw, err := w.MarginalCounts(run.Counts)
	if err != nil {
		return nil, err
	}
	ideal, err := w.MarginalCounts(run.Ideal)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{RawFidelity: bitstring.Fidelity(ideal, raw)}

	score := func(study, variant string, opts core.Options, lambda, extra float64) error {
		out, err := core.Mitigate(raw, lambda, opts)
		if err != nil {
			return err
		}
		res.Rows = append(res.Rows, AblationRow{
			Study:    study,
			Variant:  variant,
			Fidelity: bitstring.Fidelity(ideal, out),
			Extra:    extra,
		})
		return nil
	}

	// Edge model.
	if err := score("edge-model", "poisson", core.NewOptions(), lb.Lambda(), 0); err != nil {
		return nil, err
	}
	hm := core.NewOptions()
	hm.Weighter = core.InverseDistanceEdges{}
	if err := score("edge-model", "inverse-distance", hm, lb.Lambda(), 0); err != nil {
		return nil, err
	}

	// Iterations.
	for _, iters := range []int{1, 5, 20} {
		o := core.NewOptions()
		o.Iterations = iters
		if err := score("iterations", itoa(iters)+"-damped", o, lb.Lambda(), float64(iters)); err != nil {
			return nil, err
		}
	}
	constLR := core.NewOptions()
	constLR.LearningRate = func(int) float64 { return 1 }
	if err := score("iterations", "20-constant", constLR, lb.Lambda(), 20); err != nil {
		return nil, err
	}

	// Epsilon.
	for _, eps := range []float64{0.01, 0.05, 0.2} {
		o := core.NewOptions()
		o.Epsilon = eps
		g, err := core.BuildStateGraph(raw, core.PoissonEdges{Lambda: lb.Lambda()}, eps)
		if err != nil {
			return nil, err
		}
		if err := score("epsilon", ftoa(eps), o, lb.Lambda(), float64(g.NumEdges())); err != nil {
			return nil, err
		}
	}

	// Lambda sources.
	spec := raw.HammingSpectrum(w.Expected)
	spec[0] = 0
	values := make([]int, len(spec))
	for i := range values {
		values[i] = i
	}
	oracle, err := mathx.FitPoissonMLE(values, spec)
	if err != nil {
		return nil, err
	}
	for _, tc := range []struct {
		name   string
		lambda float64
	}{
		{"full-eq2", lb.Lambda()},
		{"decoherence-only", lb.T1 + lb.T2},
		{"gates-only", lb.Gates},
		{"oracle-mle", oracle.Lambda},
	} {
		if err := score("lambda-source", tc.name, core.NewOptions(), tc.lambda, tc.lambda); err != nil {
			return nil, err
		}
	}

	// Composition: readout correction before Q-BEEP.
	flips := make([]float64, 10)
	for i, p := range run.Transpiled.Final[:10] {
		flips[i] = b.Calibration.Qubits[p].ReadoutError
	}
	rd, err := readout.NewFromRates(flips)
	if err != nil {
		return nil, err
	}
	corrected, err := rd.Apply(raw)
	if err != nil {
		return nil, err
	}
	out, err := core.Mitigate(corrected, lb.Lambda(), core.NewOptions())
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, AblationRow{
		Study:    "composition",
		Variant:  "readout-then-qbeep",
		Fidelity: bitstring.Fidelity(ideal, out),
	})

	cfg.printf("\nAblations: 10-qubit BV on medellin (raw fidelity %.4f)\n", res.RawFidelity)
	cfg.printf("  %-14s %-20s %9s %10s\n", "study", "variant", "fidelity", "extra")
	for _, r := range res.Rows {
		cfg.printf("  %-14s %-20s %9.4f %10.4g\n", r.Study, r.Variant, r.Fidelity, r.Extra)
	}
	return res, nil
}

func itoa(v int) string { return strconv.Itoa(v) }

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', 3, 64) }
