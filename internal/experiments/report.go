package experiments

import (
	"encoding/json"
	"io"
	"time"

	"qbeep/internal/obs"
)

// figureSpan logs the start of a figure runner at info level and returns
// the completion hook: defer figureSpan("7")(). Long runs stop being
// silent (the CLI's -log-level defaults to info), while library and test
// use stays quiet under the default discarding logger.
func figureSpan(id string) func() {
	t0 := time.Now()
	// Figures run serially; the active ID tags the quality samples and
	// ledger records their workloads emit (see quality.go).
	activeFigure.Store(id)
	obs.Logger().Info("figure start", "figure", id)
	return func() {
		activeFigure.Store("")
		obs.Logger().Info("figure done", "figure", id, "elapsed", time.Since(t0))
	}
}

// FigureReport is one figure's entry in a RunReport.
type FigureReport struct {
	ID        string  `json:"id"`
	Status    string  `json:"status"` // "ok" or "error"
	Error     string  `json:"error,omitempty"`
	ElapsedNS int64   `json:"elapsed_ns"`
	ElapsedS  float64 `json:"elapsed_s"`
}

// RunReport is the machine-readable summary cmd/qbeep-experiments emits
// with -report: which figures ran, how long each took, the configuration
// that produced them, and a snapshot of the obs metrics registry so a
// run's cost profile travels with its results.
type RunReport struct {
	Started        time.Time      `json:"started"`
	Seed           uint64         `json:"seed"`
	Shots          int            `json:"shots"`
	Scale          float64        `json:"scale"`
	Figures        []FigureReport `json:"figures"`
	TotalElapsedNS int64          `json:"total_elapsed_ns"`
	TotalElapsedS  float64        `json:"total_elapsed_s"`
	// Quality is the per-figure mitigation-quality summary (Hellinger
	// shift, fidelity before/after, PST improvement) aggregated from
	// the run's workload records — the -report view of the run ledger.
	Quality []FigureQuality `json:"quality,omitempty"`
	Metrics map[string]any  `json:"metrics,omitempty"`
}

// NewRunReport starts a report for the given configuration and resets
// the quality aggregator, so the eventual Finalize summarizes exactly
// this run's workloads.
func NewRunReport(cfg Config, started time.Time) *RunReport {
	resetQualitySamples()
	return &RunReport{
		Started: started,
		Seed:    cfg.Seed,
		Shots:   cfg.Shots,
		Scale:   cfg.Scale,
	}
}

// AddFigure records one figure's outcome.
func (r *RunReport) AddFigure(id string, elapsed time.Duration, err error) {
	fr := FigureReport{
		ID:        id,
		Status:    "ok",
		ElapsedNS: elapsed.Nanoseconds(),
		ElapsedS:  elapsed.Seconds(),
	}
	if err != nil {
		fr.Status = "error"
		fr.Error = err.Error()
	}
	r.Figures = append(r.Figures, fr)
	r.TotalElapsedNS += elapsed.Nanoseconds()
	r.TotalElapsedS += elapsed.Seconds()
}

// Finalize attaches the per-figure quality summary and the current obs
// metrics snapshot.
func (r *RunReport) Finalize() {
	r.Quality = qualitySummary()
	r.Metrics = obs.Default.Snapshot()
}

// Write emits the report as indented JSON.
func (r *RunReport) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
