package experiments

import (
	"fmt"

	"qbeep/internal/algorithms"
	"qbeep/internal/device"
	"qbeep/internal/mathx"
	"qbeep/internal/noise"
	"qbeep/internal/par"
)

// RBPoint is one randomized-benchmarking circuit's summary: transpiled
// gate count vs expected Hamming distance of its errors, plus the Index of
// Dispersion of its error spectrum.
type RBPoint struct {
	Backend   string
	GateCount int
	EHD       float64
	IoD       float64
	IoDValid  bool
}

// Figure4Result holds all three panels of Fig. 4.
type Figure4Result struct {
	Superconducting []RBPoint // (a) + (c): 12-qubit RB across the fleet
	TrappedIon      []RBPoint // (b): 5-qubit RB on the ion backend
	FitSC           mathx.LinearFit
	FitIon          mathx.LinearFit
	MeanIoDSC       float64 // paper: ≈ 0.92
	MeanIoDIon      float64 // paper: ≈ 1.003
}

// Figure4 reproduces Fig. 4: EHD of RB-circuit errors vs gate count on
// (a) 12-qubit superconducting fleets and (b) the 5-qubit trapped-ion
// backend, plus (c) the Index of Dispersion of the same error spectra.
// The paper's findings to match in shape: EHD grows linearly with gate
// count on both architectures (ion R² = 0.88) and the IoD hovers near 1
// (the Poisson signature).
func Figure4(cfg Config) (*Figure4Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	defer figureSpan("4")()
	rng := cfg.rng(4)
	res := &Figure4Result{}

	// (a)/(c): 12-qubit RB over every catalog backend with >= 12 qubits.
	scBackends, err := allWithAtLeast(12)
	if err != nil {
		return nil, err
	}
	nSC := cfg.scaled(500, 24)
	sc, err := rbSweep(nSC, 12, scBackends, cfg, rng)
	if err != nil {
		return nil, err
	}
	res.Superconducting = sc

	// (b): 5-qubit RB on the trapped-ion backend.
	ion, err := device.IonBackend()
	if err != nil {
		return nil, err
	}
	nIon := cfg.scaled(125, 12)
	ionPts, err := rbSweep(nIon, 5, []*device.Backend{ion}, cfg, rng)
	if err != nil {
		return nil, err
	}
	res.TrappedIon = ionPts

	res.FitSC, res.MeanIoDSC, err = fitRB(sc)
	if err != nil {
		return nil, err
	}
	res.FitIon, res.MeanIoDIon, err = fitRB(ionPts)
	if err != nil {
		return nil, err
	}

	cfg.printf("\nFigure 4(a): 12-qubit RB, %d circuits, %d superconducting backends\n",
		len(sc), len(scBackends))
	cfg.printf("  EHD vs gates: slope=%.5f intercept=%.3f R2=%.3f\n",
		res.FitSC.Slope, res.FitSC.Intercept, res.FitSC.R2)
	cfg.printf("Figure 4(b): 5-qubit RB, %d circuits, trapped-ion backend\n", len(ionPts))
	cfg.printf("  EHD vs gates: slope=%.5f intercept=%.3f R2=%.3f (paper: R2=0.88)\n",
		res.FitIon.Slope, res.FitIon.Intercept, res.FitIon.R2)
	cfg.printf("Figure 4(c): Index of Dispersion\n")
	cfg.printf("  mean IoD superconducting=%.3f (paper: 0.92)  trapped-ion=%.3f (paper: 1.003)  Poisson reference=1.0\n",
		res.MeanIoDSC, res.MeanIoDIon)
	return res, nil
}

// allWithAtLeast returns every catalog backend with at least n qubits.
func allWithAtLeast(n int) ([]*device.Backend, error) {
	all, err := device.Catalog()
	if err != nil {
		return nil, err
	}
	var out []*device.Backend
	for _, b := range all {
		if b.N() >= n {
			out = append(out, b)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: no backend with >= %d qubits", n)
	}
	return out, nil
}

// rbSweep runs count RB circuits of width n with random depths across the
// backends, round-robin.
func rbSweep(count, n int, backends []*device.Backend, cfg Config, rng *mathx.RNG) ([]RBPoint, error) {
	// Phase 1: deterministic RB corpus with per-circuit RNGs.
	type task struct {
		w   *algorithms.Workload
		b   *device.Backend
		rng *mathx.RNG
	}
	tasks := make([]task, 0, count)
	for i := 0; i < count; i++ {
		// Depth skews shallow: beyond ~n/2 expected flips the register
		// saturates toward the maximally-mixed state, where EHD plateaus
		// at n/2 and the IoD collapses to the Binomial 0.5 — the regime
		// the paper's corpus (EHD up to ~n/2, IoD ≈ 0.92) mostly avoids.
		layers := 1 + rng.Intn(6)
		w, err := algorithms.RandomizedBenchmarking(n, layers, rng)
		if err != nil {
			return nil, err
		}
		tasks = append(tasks, task{w: w, b: backends[i%len(backends)], rng: rng.Split(uint64(i))})
	}
	points := make([]RBPoint, count)
	err := par.ForEach(count, 0, func(i int) error {
		w, b := tasks[i].w, tasks[i].b
		exec, err := noise.NewExecutor(b, noise.DefaultModel())
		if err != nil {
			return err
		}
		run, err := execute(exec, w.Circuit, cfg.Shots, cfg.Batch, tasks[i].rng)
		if err != nil {
			return err
		}
		raw, err := w.MarginalCounts(run.Counts)
		if err != nil {
			return err
		}
		// Fig. 4 statistics use the FULL spectrum around the target string
		// (distance-0 bucket included): the paper's EHD is the expected
		// distance of the circuit's real outputs, and its IoD is computed
		// "over each circuit's Hamming spectrum, with a target bit string".
		// A Poisson-distributed flip count then shows up directly as
		// IoD ≈ 1.
		spec := raw.HammingSpectrum(w.Expected)
		pt := RBPoint{
			Backend:   b.Name,
			GateCount: run.Transpiled.Circuit.GateCount(),
		}
		if mean, iod, ok := spectrumMoments(spec); ok {
			pt.EHD = mean
			pt.IoD = iod
			pt.IoDValid = true
		}
		points[i] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	return points, nil
}

// fitRB regresses EHD on gate count and averages the IoD.
func fitRB(points []RBPoint) (mathx.LinearFit, float64, error) {
	var xs, ys, iods []float64
	for _, p := range points {
		if !p.IoDValid {
			continue
		}
		xs = append(xs, float64(p.GateCount))
		ys = append(ys, p.EHD)
		iods = append(iods, p.IoD)
	}
	fit, err := mathx.FitLine(xs, ys)
	if err != nil {
		return mathx.LinearFit{}, 0, err
	}
	return fit, mathx.Mean(iods), nil
}
