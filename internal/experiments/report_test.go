package experiments

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
	"time"
)

func TestRunReportRoundTrip(t *testing.T) {
	cfg := QuickConfig()
	started := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	r := NewRunReport(cfg, started)
	r.AddFigure("1", 150*time.Millisecond, nil)
	r.AddFigure("7", 2*time.Second, errors.New("induction failed"))
	r.Finalize()

	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var back RunReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, buf.String())
	}
	if back.Seed != cfg.Seed || back.Shots != cfg.Shots || back.Scale != cfg.Scale {
		t.Fatalf("config fields lost: %+v", back)
	}
	if len(back.Figures) != 2 {
		t.Fatalf("got %d figures", len(back.Figures))
	}
	if back.Figures[0].Status != "ok" || back.Figures[0].ElapsedNS != 150_000_000 {
		t.Fatalf("figure 0 = %+v", back.Figures[0])
	}
	if back.Figures[1].Status != "error" || back.Figures[1].Error == "" {
		t.Fatalf("figure 1 = %+v", back.Figures[1])
	}
	if want := int64(2_150_000_000); back.TotalElapsedNS != want {
		t.Fatalf("total = %d, want %d", back.TotalElapsedNS, want)
	}
	if back.Metrics == nil {
		t.Fatal("metrics snapshot missing")
	}
}
