// Package experiments reproduces every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the index). Each FigureN runner
// generates its workload, executes it on the synthetic backend fleet,
// applies Q-BEEP and the HAMMER baseline, and prints the same rows/series
// the paper plots.
package experiments

import (
	"fmt"
	"io"

	"qbeep/internal/core"
	"qbeep/internal/mathx"
)

// Config controls workload sizes and reporting for all runners.
type Config struct {
	// Seed drives every stochastic choice; equal seeds give identical
	// tables.
	Seed uint64
	// Shots per circuit induction (default 4096, the common IBMQ setting).
	Shots int
	// Scale in (0, 1] shrinks corpus sizes proportionally (circuit counts,
	// machine sweeps) so the full pipeline can run quickly; 1 reproduces
	// the paper-sized corpora.
	Scale float64
	// Iterations overrides the flow-iteration count for every Q-BEEP run
	// (0 keeps the paper's 20-iteration schedule).
	Iterations int
	// ConvergeTol, when > 0, stops each mitigation early once the
	// per-iteration Hellinger delta falls below it. The paper figures use
	// the fixed schedule (0).
	ConvergeTol float64
	// TopK, when > 0, runs every mitigation in approximate mode keeping
	// only the k heaviest edges per vertex. 0 is the exact engine.
	TopK int
	// Batch, when > 1, splits every induction's shot loop into that many
	// blocks fanned across the worker pool (noise.ExecuteBatchCtx).
	// Counts depend on (Seed, Batch) but not on worker count; 0 or 1 is
	// the serial shot loop.
	Batch int
	// Out receives the printed tables; nil discards them.
	Out io.Writer
}

// DefaultConfig returns the paper-sized configuration.
func DefaultConfig() Config {
	return Config{Seed: 20230617, Shots: 4096, Scale: 1}
}

// QuickConfig returns a configuration small enough for tests and smoke
// runs.
func QuickConfig() Config {
	return Config{Seed: 20230617, Shots: 1024, Scale: 0.05}
}

func (c *Config) normalize() error {
	if c.Shots <= 0 {
		c.Shots = 4096
	}
	if c.Scale <= 0 || c.Scale > 1 {
		return fmt.Errorf("experiments: scale %v outside (0,1]", c.Scale)
	}
	if c.Iterations < 0 {
		return fmt.Errorf("experiments: iterations %d must be >= 0", c.Iterations)
	}
	if c.ConvergeTol < 0 {
		return fmt.Errorf("experiments: converge tolerance %v must be >= 0", c.ConvergeTol)
	}
	if c.TopK < 0 {
		return fmt.Errorf("experiments: top-k %d must be >= 0", c.TopK)
	}
	if c.Batch < 0 {
		return fmt.Errorf("experiments: batch %d must be >= 0", c.Batch)
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
	return nil
}

// mitigateOptions returns the core options every runner hands to
// Mitigate: the paper defaults with the config's overrides applied.
// Ablation rows that sweep these knobs themselves build their own.
func (c *Config) mitigateOptions() core.Options {
	opts := core.NewOptions()
	if c.Iterations > 0 {
		opts.Iterations = c.Iterations
	}
	opts.ConvergeTol = c.ConvergeTol
	opts.TopK = c.TopK
	return opts
}

// scaled returns max(minimum, round(n·Scale)).
func (c *Config) scaled(n, minimum int) int {
	v := int(float64(n)*c.Scale + 0.5)
	if v < minimum {
		return minimum
	}
	return v
}

// rng returns the root generator for a runner, namespaced by figure id so
// runners are independent of invocation order.
func (c *Config) rng(figure uint64) *mathx.RNG {
	return mathx.NewRNG(c.Seed ^ (figure * 0x9e3779b97f4a7c15))
}

func (c *Config) printf(format string, args ...any) {
	fmt.Fprintf(c.Out, format, args...)
}
