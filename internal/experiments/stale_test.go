package experiments

import (
	"testing"

	"qbeep/internal/algorithms"
	"qbeep/internal/bitstring"
	"qbeep/internal/core"
	"qbeep/internal/device"
	"qbeep/internal/mathx"
	"qbeep/internal/noise"
)

// TestStaleCalibrationCausesRegressions reproduces the paper's §4.2
// failure analysis: Q-BEEP's regressions come from λ mis-estimation when
// the published calibration has drifted from the device's true state. We
// execute on a heavily drifted backend while estimating λ from the stale
// snapshot, and check that mitigation quality degrades relative to using
// the fresh (true) calibration.
func TestStaleCalibrationCausesRegressions(t *testing.T) {
	fresh, err := device.ByName("medellin")
	if err != nil {
		t.Fatal(err)
	}
	// The device as it actually behaves today: drifted hard.
	today, err := device.Drifted(fresh, 1.5, 99)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := noise.NewExecutor(today, noise.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	rng := mathx.NewRNG(17)

	var freshFid, staleFid []float64
	for trial := 0; trial < 6; trial++ {
		n := 8 + trial%3
		w, err := algorithms.BernsteinVazirani(n, algorithms.RandomSecret(n, rng))
		if err != nil {
			t.Fatal(err)
		}
		run, err := exec.Execute(w.Circuit, 2048, rng)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := w.MarginalCounts(run.Counts)
		if err != nil {
			t.Fatal(err)
		}
		ideal, err := w.MarginalCounts(run.Ideal)
		if err != nil {
			t.Fatal(err)
		}
		// λ from the device's true (today) calibration vs the stale one.
		lbToday, err := core.EstimateLambda(run.Transpiled, today)
		if err != nil {
			t.Fatal(err)
		}
		lbStale, err := core.EstimateLambda(run.Transpiled, fresh)
		if err != nil {
			t.Fatal(err)
		}
		outToday, err := core.Mitigate(raw, lbToday.Lambda(), core.NewOptions())
		if err != nil {
			t.Fatal(err)
		}
		outStale, err := core.Mitigate(raw, lbStale.Lambda(), core.NewOptions())
		if err != nil {
			t.Fatal(err)
		}
		freshFid = append(freshFid, bitstring.Fidelity(ideal, outToday))
		staleFid = append(staleFid, bitstring.Fidelity(ideal, outStale))
	}
	if mathx.Mean(staleFid) >= mathx.Mean(freshFid) {
		t.Errorf("stale calibration should hurt on average: stale %v vs fresh %v",
			mathx.Mean(staleFid), mathx.Mean(freshFid))
	}
}
