package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// The figure runners are exercised at QuickConfig scale: small corpora,
// same code paths. Shape assertions mirror the paper's qualitative
// findings; exact magnitudes are not asserted (different substrate).

func quickCfg(buf *bytes.Buffer) Config {
	cfg := QuickConfig()
	cfg.Out = buf
	return cfg
}

func TestConfigNormalize(t *testing.T) {
	cfg := Config{Scale: 2}
	if err := cfg.normalize(); err == nil {
		t.Error("scale > 1 should error")
	}
	cfg = Config{Scale: 0.5}
	if err := cfg.normalize(); err != nil {
		t.Fatal(err)
	}
	if cfg.Shots != 4096 {
		t.Errorf("default shots %d", cfg.Shots)
	}
	if cfg.scaled(100, 5) != 50 {
		t.Errorf("scaled = %d", cfg.scaled(100, 5))
	}
	if cfg.scaled(4, 5) != 5 {
		t.Errorf("minimum not applied: %d", cfg.scaled(4, 5))
	}
	for _, bad := range []Config{
		{Scale: 0.5, Iterations: -1},
		{Scale: 0.5, ConvergeTol: -0.1},
		{Scale: 0.5, TopK: -3},
	} {
		if err := bad.normalize(); err == nil {
			t.Errorf("config %+v should error", bad)
		}
	}
	cfg = Config{Scale: 0.5, Iterations: 7, ConvergeTol: 0.01, TopK: 4}
	if err := cfg.normalize(); err != nil {
		t.Fatal(err)
	}
	opts := cfg.mitigateOptions()
	if opts.Iterations != 7 || opts.ConvergeTol != 0.01 || opts.TopK != 4 {
		t.Errorf("mitigateOptions = %+v", opts)
	}
	// Zero overrides keep the paper defaults.
	cfg = Config{Scale: 0.5}
	if err := cfg.normalize(); err != nil {
		t.Fatal(err)
	}
	if opts := cfg.mitigateOptions(); opts.Iterations != 20 || opts.ConvergeTol != 0 || opts.TopK != 0 {
		t.Errorf("default mitigateOptions = %+v", opts)
	}
}

func TestFigure1(t *testing.T) {
	var buf bytes.Buffer
	res, err := Figure1(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if res.Spectrum.Qubits != 9 || len(res.Spectrum.Rows) != 9 {
		t.Errorf("spectrum shape: %d qubits, %d rows", res.Spectrum.Qubits, len(res.Spectrum.Rows))
	}
	if res.PSTQBeep < res.PSTRaw {
		t.Errorf("Q-BEEP should not reduce PST on the showcase circuit: %v -> %v",
			res.PSTRaw, res.PSTQBeep)
	}
	if len(res.BV8Ideal) != 1 {
		t.Errorf("BV ideal marginalized onto data qubits should be the secret alone: %v", res.BV8Ideal)
	}
	if !strings.Contains(buf.String(), "Figure 1(a)") {
		t.Error("missing printed table")
	}
}

func TestFigure2(t *testing.T) {
	var buf bytes.Buffer
	res, err := Figure2(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 8 {
		t.Fatalf("want 8 widths, got %d", len(res))
	}
	// Spectra are normalized error distributions.
	for _, s := range res {
		var sum float64
		for _, r := range s.Rows {
			sum += r.Observed
		}
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("width %d: observed error spectrum sums to %v", s.Qubits, sum)
		}
		if s.Lambda <= 0 {
			t.Errorf("width %d: lambda %v", s.Qubits, s.Lambda)
		}
	}
	// Paper shape: on the wider circuits Q-BEEP's model should usually
	// track the observed spectrum better than HAMMER's fixed weighting.
	qbeepWins := 0
	for _, s := range res {
		if s.Qubits >= 9 && s.HellingerQBeep < s.HellingerHammer {
			qbeepWins++
		}
	}
	if qbeepWins < 3 {
		t.Errorf("Q-BEEP should win most wide-circuit spectra, won %d", qbeepWins)
	}
}

func TestFigure4(t *testing.T) {
	var buf bytes.Buffer
	res, err := Figure4(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	// Shape: EHD grows with gate count on both architectures.
	if res.FitSC.Slope <= 0 {
		t.Errorf("superconducting EHD slope %v should be positive", res.FitSC.Slope)
	}
	if res.FitIon.Slope <= 0 {
		t.Errorf("ion EHD slope %v should be positive", res.FitIon.Slope)
	}
	// IoD near 1 (Poisson signature): paper reports 0.92 / 1.003.
	if res.MeanIoDSC < 0.5 || res.MeanIoDSC > 1.6 {
		t.Errorf("superconducting IoD %v far from 1", res.MeanIoDSC)
	}
	if res.MeanIoDIon < 0.5 || res.MeanIoDIon > 1.6 {
		t.Errorf("ion IoD %v far from 1", res.MeanIoDIon)
	}
	if len(res.Superconducting) < 20 || len(res.TrappedIon) < 10 {
		t.Errorf("corpus sizes: %d sc, %d ion", len(res.Superconducting), len(res.TrappedIon))
	}
}

func TestFigure6(t *testing.T) {
	var buf bytes.Buffer
	res, err := Figure6(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) < 10 {
		t.Fatalf("only %d samples", len(res.Samples))
	}
	// Paper ordering: MLE Poisson is the best fit; the pre-induction
	// Q-BEEP model beats the Uniform and HAMMER comparators. (Our MLE
	// Binomial tracks the MLE Poisson closely — Poisson is the wide-n
	// limit of Binomial, so at these register widths the two are nearly
	// indistinguishable; see EXPERIMENTS.md for the deviation note.)
	if res.MeanMLEPoisson >= res.MeanQBeep {
		t.Errorf("MLE Poisson (%v) should beat pre-induction Q-BEEP (%v)",
			res.MeanMLEPoisson, res.MeanQBeep)
	}
	if res.MeanQBeep >= res.MeanUniform {
		t.Errorf("Q-BEEP (%v) should beat Uniform (%v)", res.MeanQBeep, res.MeanUniform)
	}
	if res.MeanQBeep >= res.MeanHammer {
		t.Errorf("Q-BEEP (%v) should beat HAMMER weighting (%v)", res.MeanQBeep, res.MeanHammer)
	}
}

func TestFigure7(t *testing.T) {
	var buf bytes.Buffer
	res, err := Figure7(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cases) < 11 {
		t.Fatalf("only %d cases", len(res.Cases))
	}
	// Paper shape: Q-BEEP improves PST on average and beats HAMMER.
	if res.PSTQBeep.Mean <= 1 {
		t.Errorf("Q-BEEP mean PST improvement %v should exceed 1", res.PSTQBeep.Mean)
	}
	if res.PSTQBeep.Mean <= res.PSTHammer.Mean {
		t.Errorf("Q-BEEP (%v) should beat HAMMER (%v) on PST",
			res.PSTQBeep.Mean, res.PSTHammer.Mean)
	}
	if res.FidQBeep.Mean <= 1 {
		t.Errorf("Q-BEEP mean fidelity ratio %v should exceed 1", res.FidQBeep.Mean)
	}
	if len(res.Traces) == 0 {
		t.Error("no tracked traces")
	} else {
		tr := res.Traces[0]
		if tr[len(tr)-1] < tr[0] {
			t.Errorf("tracked fidelity should not regress: %v -> %v", tr[0], tr[len(tr)-1])
		}
	}
}

func TestQASMBenchFigures(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunQASMBench(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ByAlgorithm) < 12 {
		t.Fatalf("algorithms covered: %d", len(res.ByAlgorithm))
	}
	// Fig. 8 shape: overall improvement above 1; qrng/qft near 1.
	if res.Overall.Mean <= 1 {
		t.Errorf("overall mean %v should exceed 1", res.Overall.Mean)
	}
	for _, flat := range []string{"qrng_n4", "qft_n4"} {
		s, ok := res.ByAlgorithm[flat]
		if !ok {
			t.Fatalf("%s missing", flat)
		}
		if s.Mean < 0.97 || s.Mean > 1.05 {
			t.Errorf("%s mean %v should sit near 1 (no structure to exploit)", flat, s.Mean)
		}
	}
	// Fig. 11 shape: inverse correlation between entropy and improvement.
	if res.EntropyFit.R >= 0 {
		t.Errorf("entropy correlation %v should be negative", res.EntropyFit.R)
	}
	// Fig. 9 shape: per-machine means reported for every backend used.
	if len(res.ByBackend) < 4 {
		t.Errorf("machines covered: %d", len(res.ByBackend))
	}
	out := buf.String()
	for _, want := range []string{"Figure 8", "Figure 9", "Figure 11"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %s in output", want)
		}
	}
}

func TestFigure10(t *testing.T) {
	var buf bytes.Buffer
	res, err := Figure10(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cases) < 8 {
		t.Fatalf("only %d cases", len(res.Cases))
	}
	// Paper shape: CR improves on average with a high success rate.
	if res.Improvement.Mean <= 1 {
		t.Errorf("mean CR improvement %v should exceed 1", res.Improvement.Mean)
	}
	if res.SuccessRate < 0.6 {
		t.Errorf("success rate %v too low", res.SuccessRate)
	}
	// λ estimates in the paper's 0-2 band (median at least).
	med := res.Lambdas
	_ = med
	for _, c := range res.Cases {
		if c.Lambda <= 0 {
			t.Errorf("non-positive lambda %v", c.Lambda)
		}
	}
}

func TestSpectrumHelpers(t *testing.T) {
	p := poissonErrorSpectrum(1.5, 6)
	var sum float64
	for _, v := range p[1:] {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("poisson error spectrum sums to %v", sum)
	}
	if p[0] != 0 {
		t.Error("distance-0 bucket should be zero")
	}
	u := uniformErrorSpectrum(5)
	if u[0] != 0 {
		t.Error("uniform distance-0 bucket should be zero")
	}
	h := hammerErrorSpectrum(5)
	if h[1] <= h[2] || h[3] != 0 {
		t.Errorf("hammer profile wrong: %v", h)
	}
	if mean, iod, ok := spectrumMoments(p); !ok || mean <= 0 || iod <= 0 {
		t.Errorf("moments: %v %v %v", mean, iod, ok)
	}
	if _, _, ok := spectrumMoments(make([]float64, 4)); ok {
		t.Error("empty spectrum should report !ok")
	}
}

func TestTopStrings(t *testing.T) {
	m := map[string]float64{"a": 1, "b": 3, "c": 2}
	got := topStrings(m, 2)
	if len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Errorf("topStrings = %v", got)
	}
}

func TestAblations(t *testing.T) {
	var buf bytes.Buffer
	res, err := Ablations(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if res.RawFidelity <= 0 || res.RawFidelity >= 1 {
		t.Errorf("raw fidelity %v", res.RawFidelity)
	}
	byVariant := map[string]float64{}
	for _, r := range res.Rows {
		byVariant[r.Study+"/"+r.Variant] = r.Fidelity
	}
	// Shape assertions mirroring DESIGN.md §5.
	if byVariant["edge-model/poisson"] <= byVariant["edge-model/inverse-distance"] {
		t.Error("Poisson edges should beat inverse-distance")
	}
	if byVariant["iterations/20-damped"] <= byVariant["iterations/1-damped"] {
		t.Error("more iterations should help")
	}
	if byVariant["lambda-source/full-eq2"] <= byVariant["lambda-source/gates-only"] {
		t.Error("full Eq.2 should beat gates-only")
	}
	if byVariant["composition/readout-then-qbeep"] < byVariant["edge-model/poisson"]-0.05 {
		t.Error("composition should not collapse quality")
	}
	if !strings.Contains(buf.String(), "Ablations:") {
		t.Error("table missing")
	}
}

func TestDefaultConfigIsPaperSized(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Scale != 1 || cfg.Shots != 4096 || cfg.Seed == 0 {
		t.Errorf("default config %+v", cfg)
	}
	if err := cfg.normalize(); err != nil {
		t.Fatal(err)
	}
}
