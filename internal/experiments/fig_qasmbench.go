package experiments

import (
	"sort"

	"qbeep/internal/algorithms"
	"qbeep/internal/device"
	"qbeep/internal/mathx"
	"qbeep/internal/metrics"
	"qbeep/internal/par"
)

// QASMBenchCell is one (algorithm, machine) induction of the Fig. 8/9
// grid.
type QASMBenchCell struct {
	Algorithm string
	Backend   string
	FidRaw    float64
	FidQBeep  float64
	Ratio     float64 // FidQBeep / FidRaw
	Entropy   float64 // ideal output entropy (Fig. 11 x-axis)
}

// QASMBenchResult aggregates the suite evaluation (Figs. 8, 9, 11).
type QASMBenchResult struct {
	Cells       []QASMBenchCell
	ByAlgorithm map[string]metrics.Summary // Fig. 8
	ByBackend   map[string]metrics.Summary // Fig. 9
	Overall     metrics.Summary            // paper: mean +6.67 %, max +17.8 %
	// Fig. 11: entropy vs mean ratio regression (paper: strong inverse
	// correlation, quoted as R² = -0.82, i.e. r ≈ -0.9).
	EntropyFit mathx.LinearFit
}

// RunQASMBench executes the QASMBench-style suite over the whole backend
// catalog and aggregates Figs. 8, 9 and 11 from one pass.
func RunQASMBench(cfg Config) (*QASMBenchResult, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	defer figureSpan("8/9/11")()
	rng := cfg.rng(8)
	backends, err := device.Catalog()
	if err != nil {
		return nil, err
	}
	if scaled := cfg.scaled(len(backends), 4); scaled < len(backends) {
		backends = backends[:scaled]
	}
	res := &QASMBenchResult{
		ByAlgorithm: make(map[string]metrics.Summary),
		ByBackend:   make(map[string]metrics.Summary),
	}
	repeats := cfg.scaled(4, 1) // multiple seeds per cell stabilize ratios

	byAlg := map[string][]float64{}
	byBackend := map[string][]float64{}
	entropyByAlg := map[string]float64{}
	var all []float64

	// Phase 1: one task per (algorithm, backend) cell, each with its own
	// RNG so the grid can run in parallel.
	type task struct {
		alg     string
		w       *algorithms.Workload
		b       *device.Backend
		rng     *mathx.RNG
		entropy float64
	}
	var tasks []task
	for _, entry := range algorithms.Suite() {
		w, err := entry.Build()
		if err != nil {
			return nil, err
		}
		ideal, err := w.IdealDist()
		if err != nil {
			return nil, err
		}
		entropyByAlg[entry.Name] = ideal.Entropy()
		for _, b := range backends {
			if b.N() < w.Circuit.N {
				continue
			}
			tasks = append(tasks, task{
				alg:     entry.Name,
				w:       w,
				b:       b,
				rng:     rng.Split(uint64(len(tasks))),
				entropy: entropyByAlg[entry.Name],
			})
		}
	}
	// Phase 2: run each cell (repeats inductions) in parallel.
	cells := make([]QASMBenchCell, len(tasks))
	err = par.ForEach(len(tasks), 0, func(i int) error {
		tk := tasks[i]
		var ratios []float64
		cell := QASMBenchCell{Algorithm: tk.alg, Backend: tk.b.Name, Entropy: tk.entropy}
		for r := 0; r < repeats; r++ {
			out, err := runWorkload(tk.w, tk.b, cfg.Shots, cfg.Batch, cfg.mitigateOptions(), tk.rng, false)
			if err != nil {
				return err
			}
			fr, fq, _ := out.fidelity3()
			ratios = append(ratios, metrics.SafeRatio(fr, fq, 1))
			cell.FidRaw, cell.FidQBeep = fr, fq
		}
		cell.Ratio = mathx.Mean(ratios)
		cells[i] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Cells = cells
	for _, c := range cells {
		byAlg[c.Algorithm] = append(byAlg[c.Algorithm], c.Ratio)
		byBackend[c.Backend] = append(byBackend[c.Backend], c.Ratio)
		all = append(all, c.Ratio)
	}

	for alg, rs := range byAlg {
		res.ByAlgorithm[alg] = metrics.Summarize(rs)
	}
	for bk, rs := range byBackend {
		res.ByBackend[bk] = metrics.Summarize(rs)
	}
	res.Overall = metrics.Summarize(all)

	// Fig. 11 regression: entropy vs per-algorithm mean improvement.
	var xs, ys []float64
	for alg, s := range res.ByAlgorithm {
		xs = append(xs, entropyByAlg[alg])
		ys = append(ys, s.Mean)
	}
	if fit, err := mathx.FitLine(xs, ys); err == nil {
		res.EntropyFit = fit
	}

	printQASMBench(cfg, res)
	return res, nil
}

func printQASMBench(cfg Config, res *QASMBenchResult) {
	cfg.printf("\nFigure 8: relative fidelity change per QASMBench algorithm\n")
	cfg.printf("  %-20s %8s %8s %8s %9s\n", "algorithm", "mean", "max", "min", "entropy")
	algs := sortedKeys(res.ByAlgorithm)
	entropies := map[string]float64{}
	for _, c := range res.Cells {
		entropies[c.Algorithm] = c.Entropy
	}
	for _, alg := range algs {
		s := res.ByAlgorithm[alg]
		cfg.printf("  %-20s %8.4f %8.4f %8.4f %9.3f\n", alg, s.Mean, s.Max, s.Min, entropies[alg])
	}
	cfg.printf("  overall: %s  (paper: mean 1.0667, max 1.178)\n", res.Overall)

	cfg.printf("\nFigure 9: average fidelity change per machine\n")
	cfg.printf("  %-12s %8s %8s\n", "backend", "mean", "max")
	for _, bk := range sortedKeys(res.ByBackend) {
		s := res.ByBackend[bk]
		cfg.printf("  %-12s %8.4f %8.4f\n", bk, s.Mean, s.Max)
	}

	cfg.printf("\nFigure 11: entropy vs improvement: slope=%.4f r=%.3f R2=%.3f (paper: strong inverse, r ≈ -0.9)\n",
		res.EntropyFit.Slope, res.EntropyFit.R, res.EntropyFit.R2)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Figure8 runs the suite evaluation and returns the per-algorithm view.
func Figure8(cfg Config) (*QASMBenchResult, error) { return RunQASMBench(cfg) }

// Figure9 runs the suite evaluation and returns the per-machine view.
func Figure9(cfg Config) (*QASMBenchResult, error) { return RunQASMBench(cfg) }

// Figure11 runs the suite evaluation and returns the entropy analysis.
func Figure11(cfg Config) (*QASMBenchResult, error) { return RunQASMBench(cfg) }
