package experiments

import (
	"encoding/csv"
	"strings"
	"testing"
)

func parseCSV(t *testing.T, s string) [][]string {
	t.Helper()
	rows, err := csv.NewReader(strings.NewReader(s)).ReadAll()
	if err != nil {
		t.Fatalf("invalid CSV: %v\n%s", err, s)
	}
	return rows
}

func TestSpectrumCSV(t *testing.T) {
	s := &SpectrumResult{
		Qubits: 3, Backend: "galway", Lambda: 0.7,
		Rows: []SpectrumRow{{Distance: 1, Observed: 0.6, QBeep: 0.55, Hammer: 0.66}},
	}
	var b strings.Builder
	if err := s.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, b.String())
	if len(rows) != 2 || rows[0][0] != "qubits" || rows[1][1] != "galway" {
		t.Errorf("rows: %v", rows)
	}
}

func TestFigureCSVsFromQuickRun(t *testing.T) {
	cfg := QuickConfig()

	f4, err := Figure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b4 strings.Builder
	if err := f4.WriteCSV(&b4); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, b4.String())
	if len(rows) < 10 {
		t.Errorf("fig4 csv rows: %d", len(rows))
	}
	archs := map[string]bool{}
	for _, r := range rows[1:] {
		archs[r[0]] = true
	}
	if !archs["superconducting"] || !archs["trapped-ion"] {
		t.Errorf("architectures missing: %v", archs)
	}

	f7, err := Figure7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b7 strings.Builder
	if err := f7.WriteCSV(&b7); err != nil {
		t.Fatal(err)
	}
	rows = parseCSV(t, b7.String())
	if len(rows) != len(f7.Cases)+1 {
		t.Errorf("fig7 csv rows %d want %d", len(rows), len(f7.Cases)+1)
	}
	if len(rows[0]) != 9 {
		t.Errorf("fig7 header: %v", rows[0])
	}

	f8, err := RunQASMBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b8 strings.Builder
	if err := f8.WriteCSV(&b8); err != nil {
		t.Fatal(err)
	}
	if got := len(parseCSV(t, b8.String())); got != len(f8.Cells)+1 {
		t.Errorf("fig8 csv rows %d", got)
	}
}

func TestCSVName(t *testing.T) {
	if CSVName("7") != "figure7.csv" {
		t.Errorf("CSVName = %q", CSVName("7"))
	}
}
