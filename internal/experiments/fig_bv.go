package experiments

import (
	"sort"

	"qbeep/internal/algorithms"
	"qbeep/internal/device"
	"qbeep/internal/mathx"
	"qbeep/internal/metrics"
	"qbeep/internal/par"
)

// BVCase is one BV circuit induction with all mitigation outcomes
// (one x-position of Fig. 7(a)/(b)).
type BVCase struct {
	Qubits  int
	Backend string
	Secret  string

	PSTRaw    float64
	PSTQBeep  float64
	PSTHammer float64

	FidRaw    float64
	FidQBeep  float64
	FidHammer float64
}

// Figure7Result aggregates the BV evaluation.
type Figure7Result struct {
	Cases []BVCase
	// Relative PST improvement over raw (paper: Q-BEEP mean 1.77×, max
	// 11.2×, 14 % regressions).
	PSTQBeep  metrics.Summary
	PSTHammer metrics.Summary
	// Relative fidelity change (paper: mean 1.25×, max 2.346×).
	FidQBeep  metrics.Summary
	FidHammer metrics.Summary
	// Tracked per-iteration fidelity for a subset (Fig. 7(c)).
	Traces [][]float64
}

// Figure7 reproduces Fig. 7: BV circuits of widths 5–15 across 8 backends,
// comparing raw, HAMMER and Q-BEEP by PST and fidelity, plus tracked
// fidelity per state-graph iteration. Shape targets: Q-BEEP mean PST
// improvement above HAMMER's and above 1; some regressions expected
// (paper: 14 %).
func Figure7(cfg Config) (*Figure7Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	defer figureSpan("7")()
	rng := cfg.rng(7)
	backends, err := device.CatalogSubset(8, 16)
	if err != nil {
		return nil, err
	}
	perWidth := cfg.scaled(15, 1) // 15 secrets per width ≈ 165 circuits
	widths := []int{5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}

	res := &Figure7Result{}
	// Phase 1: deterministic corpus with per-case RNGs.
	type task struct {
		w     *algorithms.Workload
		b     *device.Backend
		rng   *mathx.RNG
		n     int
		track bool
	}
	var tasks []task
	caseIdx := 0
	for _, n := range widths {
		for s := 0; s < perWidth; s++ {
			secret := algorithms.RandomSecret(n, rng)
			w, err := algorithms.BernsteinVazirani(n, secret)
			if err != nil {
				return nil, err
			}
			tasks = append(tasks, task{
				w:     w,
				b:     backends[caseIdx%len(backends)],
				rng:   rng.Split(uint64(caseIdx)),
				n:     n,
				track: caseIdx%37 == 0, // small tracked subset for panel (c)
			})
			caseIdx++
		}
	}
	// Phase 2: run in parallel into index-addressed slots.
	cases := make([]BVCase, len(tasks))
	traces := make([][]float64, len(tasks))
	err = par.ForEach(len(tasks), 0, func(i int) error {
		tk := tasks[i]
		out, err := runWorkload(tk.w, tk.b, cfg.Shots, cfg.Batch, cfg.mitigateOptions(), tk.rng, tk.track)
		if err != nil {
			return err
		}
		pr, pq, ph, err := out.pst3()
		if err != nil {
			return err
		}
		fr, fq, fh := out.fidelity3()
		cases[i] = BVCase{
			Qubits:  tk.n,
			Backend: tk.b.Name,
			Secret:  tk.w.Circuit.Name,

			PSTRaw: pr, PSTQBeep: pq, PSTHammer: ph,
			FidRaw: fr, FidQBeep: fq, FidHammer: fh,
		}
		if tk.track && out.Trace != nil {
			traces[i] = out.Trace
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Cases = cases
	for _, tr := range traces {
		if tr != nil {
			res.Traces = append(res.Traces, tr)
		}
	}

	var pstQB, pstHM, fidQB, fidHM []float64
	for _, c := range res.Cases {
		pstQB = append(pstQB, metrics.SafeRatio(c.PSTRaw, c.PSTQBeep, 1))
		pstHM = append(pstHM, metrics.SafeRatio(c.PSTRaw, c.PSTHammer, 1))
		fidQB = append(fidQB, metrics.SafeRatio(c.FidRaw, c.FidQBeep, 1))
		fidHM = append(fidHM, metrics.SafeRatio(c.FidRaw, c.FidHammer, 1))
	}
	res.PSTQBeep = metrics.Summarize(pstQB)
	res.PSTHammer = metrics.Summarize(pstHM)
	res.FidQBeep = metrics.Summarize(fidQB)
	res.FidHammer = metrics.Summarize(fidHM)

	cfg.printf("\nFigure 7: Bernstein-Vazirani, %d circuits, widths 5-15, %d backends\n",
		len(res.Cases), len(backends))
	cfg.printf("  (a) relative PST improvement:\n")
	cfg.printf("      qbeep : %s  (paper: mean 1.77, max 11.2)\n", res.PSTQBeep)
	cfg.printf("      hammer: %s\n", res.PSTHammer)
	cfg.printf("  (b) relative fidelity change:\n")
	cfg.printf("      qbeep : %s  (paper: mean 1.25, max 2.346)\n", res.FidQBeep)
	cfg.printf("      hammer: %s\n", res.FidHammer)
	if len(res.Traces) > 0 {
		cfg.printf("  (c) tracked fidelity per iteration (%d traces):\n", len(res.Traces))
		tr := res.Traces[0]
		for i, f := range tr {
			cfg.printf("      iter %2d: %.4f\n", i, f)
		}
	}
	// Sorted improvement series, the scatter of panel (a).
	sorted := append([]float64(nil), pstQB...)
	sort.Float64s(sorted)
	cfg.printf("  (a) PST improvement percentiles: p10=%.2f p50=%.2f p90=%.2f p99=%.2f\n",
		quantileSorted(sorted, 0.10), quantileSorted(sorted, 0.50),
		quantileSorted(sorted, 0.90), quantileSorted(sorted, 0.99))
	return res, nil
}

// quantileSorted reads a quantile from an ascending slice.
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
