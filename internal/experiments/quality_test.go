package experiments

import (
	"path/filepath"
	"testing"
	"time"

	"qbeep/internal/algorithms"
	"qbeep/internal/device"
	"qbeep/internal/mathx"
	"qbeep/internal/obs"
	"qbeep/internal/runledger"
)

// runQualityWorkload executes one tiny deterministic BV workload.
func runQualityWorkload(t *testing.T) *Outcome {
	t.Helper()
	w, err := algorithms.BernsteinVazirani(4, 0b1011)
	if err != nil {
		t.Fatal(err)
	}
	b, err := device.ByName("eldorado")
	if err != nil {
		t.Fatal(err)
	}
	cfg := QuickConfig()
	out, err := runWorkload(w, b, 256, 1, cfg.mitigateOptions(), mathx.NewRNG(99), false)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestRunWorkloadEmitsLedgerRecord: with a ledger installed, every
// workload appends one record with the full quality block.
func TestRunWorkloadEmitsLedgerRecord(t *testing.T) {
	resetQualitySamples()
	path := filepath.Join(t.TempDir(), "ledger.ndjson")
	f := obs.LedgerFlags{Path: path}
	stop, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	activeFigure.Store("test-fig")
	out := runQualityWorkload(t)
	activeFigure.Store("")
	if err := stop(); err != nil {
		t.Fatal(err)
	}

	recs, err := runledger.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("want 1 ledger record, got %d", len(recs))
	}
	r := recs[0]
	if r.Tool != "qbeep-experiments" || r.Figure != "test-fig" || r.Backend != "eldorado" {
		t.Fatalf("identity: %+v", r)
	}
	if r.Circuit == "" || r.CircuitHash == "" || r.Lambda <= 0 || r.Shots != 256 {
		t.Fatalf("run metadata: %+v", r)
	}
	q := r.Quality
	if q.HellingerShift <= 0 || q.PosteriorEntropy <= 0 || q.Iterations <= 0 {
		t.Fatalf("quality block: %+v", q)
	}
	if q.PSTRaw <= 0 || q.PSTMitigated <= 0 || q.PSTImprovement <= 0 {
		t.Fatalf("deterministic workload must carry PST: %+v", q)
	}
	if q.SpectrumRef != "expected" || len(q.SpectrumBefore) != 5 || len(q.SpectrumAfter) != 5 {
		t.Fatalf("4-qubit expected-centered spectra: %+v", q)
	}
	if q.SpectrumBefore[0] != q.PSTRaw || q.SpectrumAfter[0] != q.PSTMitigated {
		t.Fatalf("spectrum bin 0 must equal PST: %+v", q)
	}
	if len(out.Trace) != 0 {
		t.Fatal("untracked run grew a trace")
	}
	if mwall, ok := runledger.MetricValue(&r, runledger.MetricMitigateWallS); !ok || mwall <= 0 {
		t.Fatalf("mitigate stage timing missing: %+v", r.Stages)
	}
}

// TestQualitySummaryInReport: workloads feed the per-figure aggregates
// Finalize attaches to the RunReport, ledger or not.
func TestQualitySummaryInReport(t *testing.T) {
	rep := NewRunReport(QuickConfig(), time.Now())
	activeFigure.Store("qtest")
	_ = runQualityWorkload(t)
	_ = runQualityWorkload(t)
	activeFigure.Store("")
	rep.Finalize()

	var found *FigureQuality
	for i := range rep.Quality {
		if rep.Quality[i].Figure == "qtest" {
			found = &rep.Quality[i]
		}
	}
	if found == nil {
		t.Fatalf("no qtest quality group: %+v", rep.Quality)
	}
	if found.N != 2 {
		t.Fatalf("want 2 samples, got %+v", found)
	}
	if found.HellingerShift.Mean <= 0 || found.FidelityMitigated.Mean <= 0 {
		t.Fatalf("aggregates empty: %+v", found)
	}
	if found.PSTImprovement.N != 2 {
		t.Fatalf("deterministic workloads must aggregate PST improvement: %+v", found)
	}
	// Identical seeds: byte-identical workloads, so the spread is zero.
	if found.HellingerShift.Min != found.HellingerShift.Max {
		t.Fatalf("equal seeds must produce identical samples: %+v", found.HellingerShift)
	}
}
