package experiments

import (
	"fmt"
	"sort"

	"qbeep/internal/algorithms"
	"qbeep/internal/bitstring"
	"qbeep/internal/device"
	"qbeep/internal/mathx"
)

// SpectrumRow is one Hamming-distance bucket of a spectrum comparison.
type SpectrumRow struct {
	Distance int
	Observed float64
	QBeep    float64
	Hammer   float64
}

// SpectrumResult is one circuit's spectrum comparison (one subplot of
// Fig. 1(a) / Fig. 2).
type SpectrumResult struct {
	Qubits          int
	Backend         string
	Lambda          float64
	Rows            []SpectrumRow
	HellingerQBeep  float64 // observed errors vs Q-BEEP prediction
	HellingerHammer float64 // observed errors vs HAMMER weighting
}

// Figure1Result holds both panels of Fig. 1.
type Figure1Result struct {
	Spectrum SpectrumResult // (a): 9-qubit example spectrum
	// (b): top bit-strings of an 8-qubit BV before/after mitigation.
	BV8Raw   map[string]float64
	BV8QBeep map[string]float64
	BV8Ideal map[string]float64
	PSTRaw   float64
	PSTQBeep float64
}

// Figure1 reproduces Fig. 1: (a) an example 9-qubit Hamming spectrum where
// the error cluster sits away from distance 0, with Q-BEEP's predicted
// spectrum tracking it while HAMMER's fixed weighting cannot; (b) raw vs
// Q-BEEP vs ideal probabilities for an 8-qubit BV induction.
func Figure1(cfg Config) (*Figure1Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	defer figureSpan("1")()
	rng := cfg.rng(1)

	spec, err := spectrumForBV(9, "medellin", cfg, rng)
	if err != nil {
		return nil, err
	}
	res := &Figure1Result{Spectrum: *spec}

	// Panel (b): 8-qubit BV.
	w, err := algorithms.BernsteinVazirani(8, algorithms.RandomSecret(8, rng))
	if err != nil {
		return nil, err
	}
	b, err := device.ByName("istanbul")
	if err != nil {
		return nil, err
	}
	out, err := runWorkload(w, b, cfg.Shots, cfg.Batch, cfg.mitigateOptions(), rng, false)
	if err != nil {
		return nil, err
	}
	res.BV8Raw = out.Raw.Normalized(1).StringCounts()
	res.BV8QBeep = out.QBeep.Normalized(1).StringCounts()
	res.BV8Ideal = out.Ideal.StringCounts()
	res.PSTRaw = out.Raw.Prob(w.Expected)
	res.PSTQBeep = out.QBeep.Prob(w.Expected)

	printSpectrum(cfg, "Figure 1(a): 9-qubit BV Hamming spectrum", spec)
	cfg.printf("\nFigure 1(b): 8-qubit BV, secret %s\n", bitstring.Format(w.Expected, 8))
	cfg.printf("  %-10s %8s %8s %8s\n", "bitstring", "raw", "qbeep", "ideal")
	for _, s := range topStrings(res.BV8QBeep, 6) {
		cfg.printf("  %-10s %8.4f %8.4f %8.4f\n", s, res.BV8Raw[s], res.BV8QBeep[s], res.BV8Ideal[s])
	}
	cfg.printf("  PST: raw %.4f -> qbeep %.4f\n", res.PSTRaw, res.PSTQBeep)
	return res, nil
}

// Figure2 reproduces Fig. 2: spectrum comparisons for BV circuits of 8
// widths, each on a distinct backend.
func Figure2(cfg Config) ([]SpectrumResult, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	defer figureSpan("2")()
	rng := cfg.rng(2)
	widths := []int{5, 6, 8, 9, 10, 12, 13, 14}
	backends := []string{"istanbul", "jakarta2", "kyiv", "lagos2", "medellin", "nairobi2", "oslo2", "pinnacle"}
	out := make([]SpectrumResult, 0, len(widths))
	for i, n := range widths {
		spec, err := spectrumForBV(n, backends[i], cfg, rng)
		if err != nil {
			return nil, err
		}
		out = append(out, *spec)
		printSpectrum(cfg, fmt.Sprintf("Figure 2: %d-qubit BV on %s", n, backends[i]), spec)
	}
	// Summary: Q-BEEP's prediction should track the observed error
	// spectrum more closely than HAMMER's fixed weighting on the wider
	// circuits, where clustering moves away from distance 0.
	var qbeepWins int
	for _, s := range out {
		if s.HellingerQBeep < s.HellingerHammer {
			qbeepWins++
		}
	}
	cfg.printf("\nFigure 2 summary: Q-BEEP spectrum closer than HAMMER on %d/%d widths\n",
		qbeepWins, len(out))
	return out, nil
}

// spectrumForBV runs one BV induction and assembles the spectrum
// comparison.
func spectrumForBV(n int, backend string, cfg Config, rng *mathx.RNG) (*SpectrumResult, error) {
	w, err := algorithms.BernsteinVazirani(n, algorithms.RandomSecret(n, rng))
	if err != nil {
		return nil, err
	}
	b, err := device.ByName(backend)
	if err != nil {
		return nil, err
	}
	out, err := runWorkload(w, b, cfg.Shots, cfg.Batch, cfg.mitigateOptions(), rng, false)
	if err != nil {
		return nil, err
	}
	observed, ok := out.errorSpectrumAround()
	if !ok {
		return nil, fmt.Errorf("experiments: no error mass on %d-qubit BV (%s)", n, backend)
	}
	qbSpec := poissonErrorSpectrum(out.Lambda.Lambda(), n)
	hmSpec := hammerErrorSpectrum(n)
	res := &SpectrumResult{
		Qubits:          n,
		Backend:         backend,
		Lambda:          out.Lambda.Lambda(),
		HellingerQBeep:  bitstring.HellingerVec(observed[1:], qbSpec[1:]),
		HellingerHammer: bitstring.HellingerVec(observed[1:], hmSpec[1:]),
	}
	for d := 1; d <= n; d++ {
		res.Rows = append(res.Rows, SpectrumRow{
			Distance: d,
			Observed: observed[d],
			QBeep:    qbSpec[d],
			Hammer:   hmSpec[d],
		})
	}
	return res, nil
}

func printSpectrum(cfg Config, title string, s *SpectrumResult) {
	cfg.printf("\n%s (lambda=%.3f)\n", title, s.Lambda)
	cfg.printf("  %4s %9s %9s %9s\n", "dist", "observed", "qbeep", "hammer")
	for _, r := range s.Rows {
		cfg.printf("  %4d %9.4f %9.4f %9.4f\n", r.Distance, r.Observed, r.QBeep, r.Hammer)
	}
	cfg.printf("  Hellinger: qbeep=%.4f hammer=%.4f\n", s.HellingerQBeep, s.HellingerHammer)
}

// topStrings returns the k heaviest keys of a string-count map, sorted by
// weight descending (ties by key).
func topStrings(m map[string]float64, k int) []string {
	keys := make([]string, 0, len(m))
	for s := range m {
		keys = append(keys, s)
	}
	sort.Slice(keys, func(i, j int) bool {
		if m[keys[i]] != m[keys[j]] { //qbeep:allow-floatcmp exact tie-break: equal stored counts fall through to the key order
			return m[keys[i]] > m[keys[j]]
		}
		return keys[i] < keys[j]
	})
	if len(keys) > k {
		keys = keys[:k]
	}
	return keys
}
