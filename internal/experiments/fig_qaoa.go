package experiments

import (
	"sort"

	"qbeep/internal/core"
	"qbeep/internal/device"
	"qbeep/internal/mathx"
	"qbeep/internal/metrics"
	"qbeep/internal/noise"
	"qbeep/internal/par"
	"qbeep/internal/qaoa"
)

// QAOACase is one QAOA solution before/after mitigation (one x-position
// of Fig. 10(a)).
type QAOACase struct {
	Vertices int
	P        int
	Backend  string
	CRRaw    float64
	CRQBeep  float64
	Ratio    float64 // CRQBeep / CRRaw
	Lambda   float64
}

// Figure10Result aggregates the QAOA evaluation.
type Figure10Result struct {
	Cases []QAOACase
	// Relative CR improvement (paper: mean 1.71×, 94.1 % success rate,
	// outliers up to 31.7×).
	Improvement metrics.Summary
	SuccessRate float64
	// CDFs of the CR value before and after (Fig. 10(b)).
	CRRawSorted   []float64
	CRQBeepSorted []float64
	// Estimated Poisson parameters (Fig. 10(c); paper: 0-2 range).
	Lambdas []float64
}

// Figure10 reproduces Fig. 10: a synthetic Sycamore-style QAOA corpus run
// on the backend fleet, scored by Cost Ratio before and after Q-BEEP.
// Shape targets: mean relative CR improvement > 1 with a high success
// rate, the post-mitigation CR CDF shifted right, and λ estimates mostly
// in the 0–2 band.
func Figure10(cfg Config) (*Figure10Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	defer figureSpan("10")()
	rng := cfg.rng(10)
	count := cfg.scaled(340, 8)
	instances, err := qaoa.Dataset(count, 6, 12, 3, rng)
	if err != nil {
		return nil, err
	}
	backends, err := device.CatalogSubset(8, 12)
	if err != nil {
		return nil, err
	}
	res := &Figure10Result{}

	rngs := make([]*mathx.RNG, len(instances))
	for i := range rngs {
		rngs[i] = rng.Split(uint64(i))
	}
	cases := make([]QAOACase, len(instances))
	err = par.ForEach(len(instances), 0, func(i int) error {
		inst := instances[i]
		b := backends[i%len(backends)]
		exec, err := noise.NewExecutor(b, noise.DefaultModel())
		if err != nil {
			return err
		}
		run, err := execute(exec, inst.Circuit, cfg.Shots, cfg.Batch, rngs[i])
		if err != nil {
			return err
		}
		lambda, err := core.EstimateLambda(run.Transpiled, b)
		if err != nil {
			return err
		}
		mitigated, err := core.Mitigate(run.Counts, lambda.Lambda(), core.NewOptions())
		if err != nil {
			return err
		}
		crRaw, err := inst.Graph.CostRatio(run.Counts)
		if err != nil {
			return err
		}
		crQB, err := inst.Graph.CostRatio(mitigated)
		if err != nil {
			return err
		}
		cases[i] = QAOACase{
			Vertices: inst.Graph.N,
			P:        inst.P,
			Backend:  b.Name,
			CRRaw:    crRaw,
			CRQBeep:  crQB,
			Ratio:    crImprovement(crRaw, crQB),
			Lambda:   lambda.Lambda(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Cases = cases

	var ratios []float64
	success := 0
	for _, c := range res.Cases {
		ratios = append(ratios, c.Ratio)
		if c.CRQBeep >= c.CRRaw {
			success++
		}
		res.CRRawSorted = append(res.CRRawSorted, c.CRRaw)
		res.CRQBeepSorted = append(res.CRQBeepSorted, c.CRQBeep)
		res.Lambdas = append(res.Lambdas, c.Lambda)
	}
	sort.Float64s(res.CRRawSorted)
	sort.Float64s(res.CRQBeepSorted)
	res.Improvement = metrics.Summarize(ratios)
	if len(res.Cases) > 0 {
		res.SuccessRate = float64(success) / float64(len(res.Cases))
	}

	cfg.printf("\nFigure 10: QAOA, %d solutions, %d backends\n", len(res.Cases), len(backends))
	cfg.printf("  (a) relative CR improvement: %s  (paper: mean 1.71)\n", res.Improvement)
	cfg.printf("      success rate: %.1f%%  (paper: 94.1%%)\n", 100*res.SuccessRate)
	cfg.printf("  (b) CR CDF quartiles (raw -> qbeep):\n")
	for _, q := range []float64{0.25, 0.5, 0.75} {
		cfg.printf("      q%.0f: %.4f -> %.4f\n", q*100,
			mathx.Quantile(res.CRRawSorted, q), mathx.Quantile(res.CRQBeepSorted, q))
	}
	cfg.printf("  (c) Poisson parameter distribution: min=%.3f median=%.3f max=%.3f (paper: 0-2 range)\n",
		mathx.Min(res.Lambdas), mathx.Median(res.Lambdas), mathx.Max(res.Lambdas))
	return res, nil
}

// crImprovement computes the paper's CR_QBEEP/CR_prior ratio, handling
// sign: CR can be negative when the raw distribution is worse than random
// guessing (E[C] > 0). A negative-to-positive transition is reported as
// the magnitude gain capped into the positive axis, matching how the
// paper treats its unplottable outliers.
func crImprovement(before, after float64) float64 {
	const tiny = 1e-9
	if before > tiny {
		return after / before
	}
	if after > tiny {
		// Raw was at or below zero and mitigation recovered signal.
		return 1 + after
	}
	if before < -tiny && after >= before {
		return 1
	}
	return metrics.SafeRatio(-before+1, -after+1, 1)
}
