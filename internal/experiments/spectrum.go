package experiments

import (
	"qbeep/internal/hammer"
	"qbeep/internal/mathx"
)

// The spectrum helpers all describe the *error* portion of the Hamming
// spectrum — distances 1..n, conditioned on an error having occurred —
// which is what the paper's Figs. 1, 2 and 6 plot (their x-axes start at
// distance 1).

// normalizeTail zeroes index 0 and normalizes the rest to unit mass.
func normalizeTail(spec []float64) []float64 {
	out := make([]float64, len(spec))
	var sum float64
	for i := 1; i < len(spec); i++ {
		sum += spec[i]
	}
	if sum <= 0 {
		return out
	}
	for i := 1; i < len(spec); i++ {
		out[i] = spec[i] / sum
	}
	return out
}

// poissonErrorSpectrum is the Q-BEEP model prediction: Poisson(λ) over
// distances 1..n, renormalized.
func poissonErrorSpectrum(lambda float64, n int) []float64 {
	return normalizeTail(mathx.Poisson{Lambda: lambda}.Spectrum(n))
}

// binomialErrorSpectrum is Binomial(n, p) over distances 1..n.
func binomialErrorSpectrum(b mathx.Binomial, n int) []float64 {
	return normalizeTail(b.Spectrum(n))
}

// uniformErrorSpectrum is the uniform-distribution comparator.
func uniformErrorSpectrum(n int) []float64 {
	return normalizeTail(mathx.UniformSpectrum(n))
}

// hammerErrorSpectrum is HAMMER's fixed weighting profile over distances.
func hammerErrorSpectrum(n int) []float64 {
	return normalizeTail(hammer.SpectrumWeights(n, hammer.NewOptions()))
}

// spectrumMoments returns the weighted mean distance of an error spectrum
// (EHD of errors) and its Index of Dispersion. ok is false when the
// spectrum is empty or the IoD undefined.
func spectrumMoments(spec []float64) (mean, iod float64, ok bool) {
	values := make([]int, len(spec))
	for i := range values {
		values[i] = i
	}
	m, v, err := mathx.WeightedMeanVar(values, spec)
	if err != nil || m == 0 {
		return 0, 0, false
	}
	return m, v / m, true
}
