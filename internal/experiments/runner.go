package experiments

import (
	"fmt"
	"time"

	"qbeep/internal/algorithms"
	"qbeep/internal/bitstring"
	"qbeep/internal/circuit"
	"qbeep/internal/core"
	"qbeep/internal/device"
	"qbeep/internal/hammer"
	"qbeep/internal/mathx"
	"qbeep/internal/noise"
	"qbeep/internal/obs"
)

// Outcome bundles one circuit induction with all three post-processing
// views, everything marginalized onto the workload's data qubits.
type Outcome struct {
	Workload *algorithms.Workload
	Backend  *device.Backend
	Raw      *bitstring.Dist
	QBeep    *bitstring.Dist
	Hammer   *bitstring.Dist
	Ideal    *bitstring.Dist
	Lambda   core.LambdaBreakdown
	Trace    []float64 // per-iteration fidelity when tracked
}

// execute routes one induction through the serial shot loop or, when
// batch > 1, the block-fanned batch path. Every runner shares this
// switch so a single -batch flag covers the whole figure suite.
func execute(exec *noise.Executor, c *circuit.Circuit, shots, batch int, rng *mathx.RNG) (*noise.Run, error) {
	if batch > 1 {
		return exec.ExecuteBatch(c, shots, batch, rng)
	}
	return exec.Execute(c, shots, rng)
}

// runWorkload executes the workload on the backend under the default
// hardware-like noise model and applies Q-BEEP (Eq. 2 λ, with the
// caller's core options — iteration schedule, convergence tolerance,
// top-k mode) and HAMMER. batch > 1 fans the shot loop across the
// worker pool (see Config.Batch). track enables the per-iteration
// fidelity trace (costs one fidelity evaluation per iteration). Every
// completed workload is logged at info level (circuit, backend,
// elapsed) — the progress feed for multi-minute figure runs.
func runWorkload(w *algorithms.Workload, b *device.Backend, shots, batch int, opts core.Options, rng *mathx.RNG, track bool) (*Outcome, error) {
	t0 := time.Now()
	exec, err := noise.NewExecutor(b, noise.DefaultModel())
	if err != nil {
		return nil, err
	}
	run, err := execute(exec, w.Circuit, shots, batch, rng)
	if err != nil {
		return nil, fmt.Errorf("executing %s on %s: %w", w.Circuit.Name, b.Name, err)
	}
	lambda, err := core.EstimateLambda(run.Transpiled, b)
	if err != nil {
		return nil, err
	}
	raw, err := w.MarginalCounts(run.Counts)
	if err != nil {
		return nil, err
	}
	ideal, err := w.MarginalCounts(run.Ideal)
	if err != nil {
		return nil, err
	}
	// Capture the core loop's end-of-run quality stats; recordQuality
	// below merges them with the workload's exact ground truth and
	// forwards everything to the report aggregator and the run ledger.
	var qstats core.QualityStats
	opts.OnQuality = func(q core.QualityStats) { qstats = q }
	var qb *bitstring.Dist
	var trace []float64
	m0 := time.Now()
	if track {
		qb, trace, err = core.MitigateTracked(raw, lambda.Lambda(), opts, ideal)
	} else {
		qb, err = core.Mitigate(raw, lambda.Lambda(), opts)
	}
	if err != nil {
		return nil, err
	}
	mitigateWallS := time.Since(m0).Seconds()
	hm, err := hammer.Mitigate(raw, hammer.NewOptions())
	if err != nil {
		return nil, err
	}
	obs.Logger().Info("workload done",
		"circuit", w.Circuit.Name, "backend", b.Name,
		"shots", shots, "elapsed", time.Since(t0))
	out := &Outcome{
		Workload: w,
		Backend:  b,
		Raw:      raw,
		QBeep:    qb,
		Hammer:   hm,
		Ideal:    ideal,
		Lambda:   lambda,
		Trace:    trace,
	}
	recordQuality(out, qstats, mitigateWallS)
	return out, nil
}

// fidelity3 returns (raw, qbeep, hammer) fidelities against the ideal.
func (o *Outcome) fidelity3() (raw, qb, hm float64) {
	return bitstring.Fidelity(o.Ideal, o.Raw),
		bitstring.Fidelity(o.Ideal, o.QBeep),
		bitstring.Fidelity(o.Ideal, o.Hammer)
}

// pst3 returns (raw, qbeep, hammer) PSTs for a deterministic workload.
func (o *Outcome) pst3() (raw, qb, hm float64, err error) {
	if !o.Workload.Deterministic {
		return 0, 0, 0, fmt.Errorf("experiments: %s has no unique answer", o.Workload.Circuit.Name)
	}
	e := o.Workload.Expected
	return o.Raw.Prob(e), o.QBeep.Prob(e), o.Hammer.Prob(e), nil
}

// spectrumAround returns the observed Hamming spectrum centered on the
// workload's expected output.
func (o *Outcome) spectrumAround() []float64 {
	center := o.Workload.Expected
	if !o.Workload.Deterministic {
		center, _ = o.Ideal.Top()
	}
	return o.Raw.HammingSpectrum(center)
}

// errorSpectrumAround returns the Hamming spectrum of the *error* mass
// only (the correct outcome's bucket zeroed and the rest renormalized) —
// the conditional distribution the Poisson model describes. ok is false
// when there is no error mass.
func (o *Outcome) errorSpectrumAround() ([]float64, bool) {
	spec := o.spectrumAround()
	spec[0] = 0
	var sum float64
	for _, v := range spec {
		sum += v
	}
	if sum <= 0 {
		return spec, false
	}
	for i := range spec {
		spec[i] /= sum
	}
	return spec, true
}
