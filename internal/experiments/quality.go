package experiments

import (
	"math"
	"sync"
	"sync/atomic"

	"qbeep/internal/core"
	"qbeep/internal/metrics"
	"qbeep/internal/obs"
	"qbeep/internal/runledger"
)

// Quality capture for experiment workloads: every runWorkload feeds
// (1) the quality.pst_improvement histogram on /metrics, (2) the
// in-process aggregator that backs the RunReport's per-figure quality
// summary, and (3) — when -run-ledger is active — one runledger.Record
// with the full Hamming-spectrum quality block. Ground truth is always
// available here (the simulator produces the ideal distribution), so
// these are the records make quality-gate pins.

// metQualityPST is the mitigated/raw PST improvement ratio of every
// deterministic workload (paper Eq. 6 territory).
var metQualityPST = obs.Default.Histogram("quality.pst_improvement")

// activeFigure tags quality samples and ledger records with the figure
// whose runner is executing. Figures run serially (the CLI walks its
// table; runners call figureSpan), but workloads inside one figure fan
// out through par — hence an atomic, written by figureSpan only.
var activeFigure atomic.Value // string

func currentFigure() string {
	if v, ok := activeFigure.Load().(string); ok {
		return v
	}
	return ""
}

// qualitySample is one workload's contribution to the report summary.
type qualitySample struct {
	figure         string
	hellingerShift float64
	fidelityRaw    float64
	fidelityQB     float64
	pstImprovement float64 // 0 when the workload is not deterministic
}

// qualityAgg is the process-global aggregator, reset by NewRunReport
// (one report per process run, matching the obs metrics snapshot).
var (
	qualityMu      sync.Mutex
	qualitySamples []qualitySample
)

func resetQualitySamples() {
	qualityMu.Lock()
	qualitySamples = nil
	qualityMu.Unlock()
}

// FigureQuality is one figure's quality aggregate in the RunReport.
type FigureQuality struct {
	Figure string `json:"figure"`
	N      int    `json:"n"`
	// HellingerShift summarizes how far induction moved each workload's
	// distribution; Fidelity* summarize Bhattacharyya fidelity against
	// the simulator's ideal distribution.
	HellingerShift    runledger.Stats `json:"hellinger_shift"`
	FidelityRaw       runledger.Stats `json:"fidelity_raw"`
	FidelityMitigated runledger.Stats `json:"fidelity_mitigated"`
	// PSTImprovement covers only the figure's deterministic workloads
	// (N may be smaller than the group's).
	PSTImprovement runledger.Stats `json:"pst_improvement"`
}

// qualitySummary folds the collected samples into per-figure
// aggregates, sorted by figure ID.
func qualitySummary() []FigureQuality {
	qualityMu.Lock()
	samples := append([]qualitySample(nil), qualitySamples...)
	qualityMu.Unlock()
	byFigure := map[string][]qualitySample{}
	for _, s := range samples {
		byFigure[s.figure] = append(byFigure[s.figure], s)
	}
	var out []FigureQuality
	for _, fig := range sortedKeys(byFigure) {
		ss := byFigure[fig]
		fq := FigureQuality{Figure: fig, N: len(ss)}
		var shift, fraw, fqb, pst []float64
		for _, s := range ss {
			shift = append(shift, s.hellingerShift)
			fraw = append(fraw, s.fidelityRaw)
			fqb = append(fqb, s.fidelityQB)
			if s.pstImprovement > 0 {
				pst = append(pst, s.pstImprovement)
			}
		}
		fq.HellingerShift = runledger.Summarize(shift)
		fq.FidelityRaw = runledger.Summarize(fraw)
		fq.FidelityMitigated = runledger.Summarize(fqb)
		fq.PSTImprovement = runledger.Summarize(pst)
		out = append(out, fq)
	}
	return out
}

// hellingerFromFidelity converts Bhattacharyya fidelity (F = BC²) to
// the Hellinger distance sqrt(1−BC) — the same transform the core
// tracked loop uses, so report and ledger numbers agree with spans.
func hellingerFromFidelity(f float64) float64 {
	bc := math.Sqrt(f)
	if bc > 1 {
		bc = 1
	}
	return math.Sqrt(1 - bc)
}

// recordQuality is runWorkload's quality epilogue: o is the completed
// outcome, q the core loop's QualityStats, mitigateWallS the measured
// mitigation wall time. It prefers the workload's exact expected
// bitstring over core's mode-derived spectrum center, observes the
// PST-improvement histogram, feeds the report aggregator, and appends
// a ledger record when one is installed.
func recordQuality(o *Outcome, q core.QualityStats, mitigateWallS float64) {
	fRaw, fQB, _ := o.fidelity3()
	q.FidelityRaw, q.FidelityMitigated = fRaw, fQB
	q.HellingerRaw = hellingerFromFidelity(fRaw)
	q.HellingerMitigated = hellingerFromFidelity(fQB)

	var pstRaw, pstQB, pstImprovement, ist float64
	if o.Workload.Deterministic {
		e := o.Workload.Expected
		pstRaw, pstQB = o.Raw.Prob(e), o.QBeep.Prob(e)
		pstImprovement = metrics.SafeRatio(pstRaw, pstQB, 0)
		if pstImprovement > 0 {
			metQualityPST.Observe(pstImprovement)
		}
		if v, ok := metrics.IST(o.QBeep, e); ok {
			ist = v
		}
		// Exact ground truth beats core's ideal-mode center.
		q.SpectrumRef = "expected"
		q.SpectrumBefore = o.Raw.HammingSpectrum(e)
		q.SpectrumAfter = o.QBeep.HammingSpectrum(e)
	}

	fig := currentFigure()
	qualityMu.Lock()
	qualitySamples = append(qualitySamples, qualitySample{
		figure:         fig,
		hellingerShift: q.HellingerShift,
		fidelityRaw:    fRaw,
		fidelityQB:     fQB,
		pstImprovement: pstImprovement,
	})
	qualityMu.Unlock()

	if !obs.RunLedgerEnabled() {
		return
	}
	rec := runledger.Record{
		Tool:        "qbeep-experiments",
		Figure:      fig,
		Backend:     o.Backend.Name,
		Circuit:     o.Workload.Circuit.Name,
		CircuitHash: runledger.HashBytes([]byte(o.Workload.Circuit.Name)),
		Lambda:      o.Lambda.Lambda(),
		Shots:       o.Raw.Total(),
		Stages:      []runledger.Stage{{Name: "mitigate", WallS: mitigateWallS}},
		Quality: runledger.Quality{
			HellingerShift:     q.HellingerShift,
			HellingerRaw:       q.HellingerRaw,
			HellingerMitigated: q.HellingerMitigated,
			FidelityRaw:        q.FidelityRaw,
			FidelityMitigated:  q.FidelityMitigated,
			PSTRaw:             pstRaw,
			PSTMitigated:       pstQB,
			PSTImprovement:     pstImprovement,
			IST:                ist,
			PosteriorEntropy:   q.PosteriorEntropy,
			Iterations:         q.Iterations,
			Converged:          q.Converged,
			SpectrumRef:        q.SpectrumRef,
			SpectrumBefore:     q.SpectrumBefore,
			SpectrumAfter:      q.SpectrumAfter,
		},
	}
	if err := obs.RecordRun(&rec); err != nil {
		obs.Logger().Warn("run-ledger append failed", "err", err)
	}
}
