// Package buildinfo reports what binary is running: the Go toolchain
// version and the VCS revision stamped by `go build` via
// runtime/debug.ReadBuildInfo. Every CLI exposes it behind the shared
// -version flag and the debug server publishes it as the
// qbeep_build_info gauge, so a deployed binary (or a benchmark row) can
// always be tied back to a commit.
package buildinfo

import (
	"flag"
	"fmt"
	"runtime"
	"runtime/debug"
)

// Info is the build identity of the running binary.
type Info struct {
	// GoVersion is the toolchain that built the binary (e.g. "go1.24.0").
	GoVersion string
	// Revision is the VCS commit hash, "" when the build had no VCS
	// stamp (go test binaries, `go run` from a non-checkout).
	Revision string
	// Modified reports a dirty working tree at build time.
	Modified bool
	// Time is the VCS commit time (RFC 3339), "" when unstamped.
	Time string
}

// Read extracts the build identity from the embedded build info. It
// degrades gracefully: an unstamped binary still reports its Go version.
func Read() Info {
	info := Info{GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	if bi.GoVersion != "" {
		info.GoVersion = bi.GoVersion
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.modified":
			info.Modified = s.Value == "true"
		case "vcs.time":
			info.Time = s.Value
		}
	}
	return info
}

// ShortRevision returns the abbreviated commit hash, or "unknown" for an
// unstamped build.
func (i Info) ShortRevision() string {
	if i.Revision == "" {
		return "unknown"
	}
	rev := i.Revision
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if i.Modified {
		rev += "-dirty"
	}
	return rev
}

// AddVersionFlag registers the shared -version flag on fs (the default
// flag set when fs is nil) and returns its destination. After parsing,
// a CLI that sees true prints Summary and exits zero.
func AddVersionFlag(fs *flag.FlagSet) *bool {
	if fs == nil {
		fs = flag.CommandLine
	}
	v := fs.Bool("version", false, "print build information (commit, toolchain) and exit")
	return v
}

// Summary renders the one-line -version output for the named command.
func Summary(cmd string) string {
	i := Read()
	s := fmt.Sprintf("%s version %s (%s", cmd, i.ShortRevision(), i.GoVersion)
	if i.Time != "" {
		s += ", committed " + i.Time
	}
	return s + ")"
}
