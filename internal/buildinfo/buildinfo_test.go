package buildinfo

import (
	"strings"
	"testing"
)

func TestReadAlwaysHasGoVersion(t *testing.T) {
	i := Read()
	if !strings.HasPrefix(i.GoVersion, "go") {
		t.Fatalf("GoVersion = %q, want go-prefixed toolchain string", i.GoVersion)
	}
}

func TestShortRevision(t *testing.T) {
	cases := []struct {
		in   Info
		want string
	}{
		{Info{}, "unknown"},
		{Info{Revision: "abc123"}, "abc123"},
		{Info{Revision: "0123456789abcdef0123"}, "0123456789ab"},
		{Info{Revision: "0123456789abcdef0123", Modified: true}, "0123456789ab-dirty"},
	}
	for _, c := range cases {
		if got := c.in.ShortRevision(); got != c.want {
			t.Fatalf("ShortRevision(%+v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSummaryMentionsCommandAndToolchain(t *testing.T) {
	s := Summary("qbeep-test")
	if !strings.HasPrefix(s, "qbeep-test version ") || !strings.Contains(s, "go") {
		t.Fatalf("Summary = %q", s)
	}
}
