// Compiled-program replay, cache-blocked (tiled) application and the
// circuit batch runner.
//
// A Program is the reusable form of what RunConfiguredCtx previously
// rebuilt on every call: the circuit's gate list lowered (and, unless
// disabled, fused) into kernel ops once, replayable onto any State of
// the same width with RunProgram — the trajectory sampler replays one
// Program per shot instead of re-deriving per-gate kernels 100× per
// batch.
//
// Tiled replay (RunProgramTiled) is the cache-blocking transform: where
// a run of consecutive ops all act on qubits below the tile width, the
// amplitude array is walked tile by tile, applying the whole run to one
// L2-resident tile before moving on, instead of streaming the full
// register once per op. An op on qubit q < tileBits only combines
// amplitudes whose indices differ below the tile boundary, so a tile is
// closed under every op of the run and each amplitude receives exactly
// the same operations in the same order as the full-pass schedule —
// bitwise identical output for every tile size and worker count (workers
// shard on whole tiles, which can never split a pair).
package statevector

import (
	"context"
	"fmt"

	"qbeep/internal/bitstring"
	"qbeep/internal/circuit"
	"qbeep/internal/obs"
	"qbeep/internal/par"
)

// Batch metrics (see internal/obs): jobs executed through RunBatch and
// the worker-pool occupancy (busy fraction) of the most recent batch.
var (
	metBatchJobs      = obs.Default.Counter("sim.batch.jobs")
	metBatchOccupancy = obs.Default.Gauge("sim.batch.occupancy")
)

// Program is a circuit compiled to kernel ops, reusable across replays:
// compile once, run on any State of the same width (RunProgram) without
// touching the circuit again. A Program is immutable after Compile and
// safe for concurrent replay onto distinct States.
type Program struct {
	n     int
	ops   []op
	gates int // source gate count, for span attrs
	fused bool
}

// Compile lowers the circuit under cfg (only NoFuse matters here; the
// worker/tile fields apply at replay time). No-op gates (I, barriers,
// measurements) are dropped — they fence fusion during lowering but
// replay to nothing, and removing them keeps tiled runs contiguous.
func Compile(c *circuit.Circuit, cfg RunConfig) (*Program, error) {
	if err := c.Err(); err != nil {
		return nil, err
	}
	ops, err := compileOps(c.N, c.Gates, !cfg.NoFuse)
	if err != nil {
		return nil, err
	}
	kept := ops[:0]
	for _, o := range ops {
		if o.kind != opNoop {
			kept = append(kept, o)
		}
	}
	return &Program{n: c.N, ops: kept, gates: len(c.Gates), fused: !cfg.NoFuse}, nil
}

// N returns the register width the program was compiled for.
func (p *Program) N() int { return p.n }

// Ops returns the number of kernel ops the program replays.
func (p *Program) Ops() int { return len(p.ops) }

// Gates returns the source circuit's gate count.
func (p *Program) Gates() int { return p.gates }

// RunProgram replays a compiled program onto the state in place: the
// zero-allocation hot path for repeated execution of one circuit.
//
//qbeep:allocfree
func (s *State) RunProgram(p *Program) error {
	if p.n != s.n {
		return widthMismatchError(p.n, s.n)
	}
	for _, o := range p.ops {
		s.applyOp(o)
	}
	return nil
}

// widthMismatchError builds the RunProgram width error. Split out like
// applyOpPar: fmt.Errorf boxes its operands, and inlined into
// RunProgram that boxing would sit in the replay loop's frame and break
// its allocfree fact; behind //go:noinline the cold path pays alone.
//
//go:noinline
func widthMismatchError(pn, sn int) error {
	return fmt.Errorf("statevector: program width %d vs state width %d", pn, sn)
}

// RunProgramTiled replays the program with cache-blocked application:
// maximal runs of consecutive ops whose qubits all sit below tileBits
// apply tile-by-tile (2^tileBits amplitudes per tile), each tile
// receiving the whole run while hot; ops reaching above the tile width
// fall back to ordinary full passes. tileBits <= 0 disables tiling.
// Output is bitwise identical to RunProgram for every tile size.
func (s *State) RunProgramTiled(p *Program, tileBits int) error {
	if p.n != s.n {
		return fmt.Errorf("statevector: program width %d vs state width %d", p.n, s.n)
	}
	if tileBits <= 0 {
		return s.RunProgram(p)
	}
	if tileBits > s.n {
		tileBits = s.n
	}
	tileSize := uint64(1) << uint(tileBits)
	ops := p.ops
	for i := 0; i < len(ops); {
		if opQubitMask(ops[i]) >= tileSize {
			s.applyOp(ops[i])
			i++
			continue
		}
		j := i + 1
		for j < len(ops) && opQubitMask(ops[j]) < tileSize {
			j++
		}
		s.applyTiledRun(ops[i:j], tileBits)
		i = j
	}
	return nil
}

// DefaultTileBits sizes tiles at 2^15 amplitudes = 512 KiB of
// complex128 — half a typical L2 slice, leaving room for the second
// stream a pair kernel reads.
const DefaultTileBits = 15

// applyTiledRun applies a run of tile-local ops tile by tile. Every op's
// qubit mask is below the tile width, so tile t's amplitude range
// [t·2^tileBits, (t+1)·2^tileBits) maps to the compressed pair-index
// range [t·2^(tileBits−k), (t+1)·2^(tileBits−k)) of an op touching k
// qubits — contiguous, and closed over the op's pairs. Workers shard on
// whole tiles, preserving the never-split-a-pair invariant.
func (s *State) applyTiledRun(ops []op, tileBits int) {
	tiles := len(s.amp) >> uint(tileBits)
	if tiles <= 1 {
		for _, o := range ops {
			s.applyOp(o)
		}
		return
	}
	runTiles := func(lo, hi int) {
		for t := lo; t < hi; t++ {
			for _, o := range ops {
				shift := uint(tileBits) - opShift(o)
				s.opRange(o, t<<shift, (t+1)<<shift)
			}
		}
	}
	w := s.resolveWorkers(tiles)
	if w <= 1 {
		runTiles(0, tiles)
		return
	}
	chunk := (tiles + w - 1) / w
	_ = par.ForEachCtx(s.ctx, w, w, func(k int) error {
		lo := k * chunk
		hi := lo + chunk
		if hi > tiles {
			hi = tiles
		}
		if lo < hi {
			runTiles(lo, hi)
		}
		return nil
	})
}

// opShift returns log2 of the compression factor of the op's index
// space: how many qubit positions the compressed index omits.
func opShift(o op) uint {
	switch o.kind {
	case opDense1, opDiag1, opFlip:
		return 1
	case opCX, opCZ, opZZ, opSwap:
		return 2
	case opCCX, opCSwap:
		return 3
	case opDiagN:
		return uint(len(o.masks))
	default:
		return 0
	}
}

// CompiledOp is one pre-lowered gate application, opaque to callers.
// Compiling a gate once and replaying it with ApplyCompiled skips the
// per-call lowering (and its allocations) of State.Apply.
type CompiledOp struct {
	o op
}

// CompileGate lowers one gate for a width-n register into a reusable
// CompiledOp. No-op gates (I, barriers, measurements) compile to an op
// that ApplyCompiled ignores.
func CompileGate(n int, g circuit.Gate) (CompiledOp, error) {
	if err := g.Validate(n); err != nil {
		return CompiledOp{}, err
	}
	o, err := gateOp(g)
	if err != nil {
		return CompiledOp{}, err
	}
	return CompiledOp{o: o}, nil
}

// ApplyCompiled applies a pre-lowered gate. The caller is responsible
// for width agreement (CompileGate validated it once).
//
//qbeep:allocfree
//qbeep:mustinline
func (s *State) ApplyCompiled(co CompiledOp) {
	s.applyOp(co.o)
}

// NewPauliOps returns the per-qubit Pauli injection table for a width-n
// register: element [q][k] applies X (k=0), Y (k=1) or Z (k=2) on qubit
// q. The trajectory sampler indexes this table instead of allocating a
// circuit.Gate{Qubits: []int{q}} per injection.
func NewPauliOps(n int) [][3]CompiledOp {
	tbl := make([][3]CompiledOp, n)
	for q := 0; q < n; q++ {
		tbl[q][0] = CompiledOp{o: op{kind: opFlip, q0: q}}
		tbl[q][1] = CompiledOp{o: op{
			kind:  opDense1,
			class: classAxial,
			q0:    q,
			m:     [2][2]complex128{{0, -1i}, {1i, 0}},
		}}
		tbl[q][2] = CompiledOp{o: op{kind: opDiag1, q0: q, d0: 1, d1: -1}}
	}
	return tbl
}

// BatchJob is one circuit execution request for RunBatch.
type BatchJob struct {
	Circuit *circuit.Circuit
	Init    bitstring.BitString
}

// BatchConfig tunes RunBatch.
type BatchConfig struct {
	// Workers is the job-level pool width (0 = GOMAXPROCS). Kernel
	// sharding inside each job stays off: parallelism lives at the job
	// level, so the pool is busy whenever jobs remain.
	Workers int
	// TileBits selects cache-blocked replay per job (0 = DefaultTileBits,
	// negative disables tiling).
	TileBits int
	// NoFuse disables gate fusion at compile time (see RunConfig).
	NoFuse bool
}

// RunBatch executes many circuits through one shared worker pool and
// returns their final states in job order. Each distinct *circuit.Circuit
// compiles once (repeated pointers share the Program), jobs replay
// tile-blocked on single-shard states, and every state is bitwise
// identical to a serial RunConfigured of its job at any worker count or
// tile size. The pool's occupancy (busy fraction) lands on the
// sim.batch.occupancy gauge and the "sim.batch" span.
func RunBatch(ctx context.Context, jobs []BatchJob, cfg BatchConfig) ([]*State, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("statevector: empty batch")
	}
	tileBits := cfg.TileBits
	if tileBits == 0 {
		tileBits = DefaultTileBits
	}
	programs := make([]*Program, len(jobs))
	byCircuit := make(map[*circuit.Circuit]*Program, len(jobs))
	for i, j := range jobs {
		if j.Circuit == nil {
			return nil, fmt.Errorf("statevector: batch job %d has nil circuit", i)
		}
		p, ok := byCircuit[j.Circuit]
		if !ok {
			var err error
			p, err = Compile(j.Circuit, RunConfig{NoFuse: cfg.NoFuse})
			if err != nil {
				return nil, fmt.Errorf("statevector: batch job %d: %w", i, err)
			}
			byCircuit[j.Circuit] = p
		}
		programs[i] = p
	}

	ctx, sp := obs.Start(ctx, "sim.batch")
	defer sp.End()
	states := make([]*State, len(jobs))
	stats, err := par.ForEachStatsCtx(ctx, len(jobs), cfg.Workers, func(i int) error {
		st, err := NewBasis(jobs[i].Circuit.N, jobs[i].Init)
		if err != nil {
			return err
		}
		st.SetWorkers(1)
		if err := st.RunProgramTiled(programs[i], tileBits); err != nil {
			return err
		}
		states[i] = st
		return nil
	})
	if err != nil {
		return nil, err
	}
	occupancy := stats.Utilization()
	metBatchJobs.Add(int64(len(jobs)))
	metBatchOccupancy.Set(occupancy)
	sp.SetAttr("jobs", len(jobs))
	sp.SetAttr("workers", stats.Workers)
	sp.SetAttr("tile_bits", tileBits)
	sp.SetAttr("occupancy", occupancy)
	return states, nil
}
