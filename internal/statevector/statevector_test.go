package statevector

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"qbeep/internal/bitstring"
	"qbeep/internal/circuit"
	"qbeep/internal/mathx"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func mustRun(t *testing.T, c *circuit.Circuit) *State {
	t.Helper()
	s, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewBounds(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("width 0 should error")
	}
	if _, err := New(MaxQubits + 1); err == nil {
		t.Error("over-max width should error")
	}
	s, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Prob(0) != 1 {
		t.Error("fresh state should be |000⟩")
	}
}

func TestNewBasis(t *testing.T) {
	s, err := NewBasis(3, 0b101)
	if err != nil {
		t.Fatal(err)
	}
	if s.Prob(0b101) != 1 || s.Prob(0) != 0 {
		t.Error("basis state wrong")
	}
	if _, err := NewBasis(2, 4); err == nil {
		t.Error("out-of-range basis should error")
	}
}

func TestHadamardSuperposition(t *testing.T) {
	s := mustRun(t, circuit.New("h", 1).H(0))
	if !approx(s.Prob(0), 0.5, 1e-12) || !approx(s.Prob(1), 0.5, 1e-12) {
		t.Errorf("probs %v %v", s.Prob(0), s.Prob(1))
	}
	// HH = I.
	s = mustRun(t, circuit.New("hh", 1).H(0).H(0))
	if !approx(s.Prob(0), 1, 1e-12) {
		t.Errorf("HH|0⟩ prob0 = %v", s.Prob(0))
	}
}

func TestPauliAlgebra(t *testing.T) {
	// X|0⟩ = |1⟩.
	s := mustRun(t, circuit.New("x", 1).X(0))
	if s.Prob(1) != 1 {
		t.Error("X failed")
	}
	// HZH = X.
	s = mustRun(t, circuit.New("hzh", 1).H(0).Z(0).H(0))
	if !approx(s.Prob(1), 1, 1e-12) {
		t.Errorf("HZH|0⟩ = X|0⟩ violated: %v", s.Prob(1))
	}
	// Y|0⟩ = i|1⟩.
	s = mustRun(t, circuit.New("y", 1).Y(0))
	if a := s.Amplitude(1); !approx(real(a), 0, 1e-12) || !approx(imag(a), 1, 1e-12) {
		t.Errorf("Y|0⟩ amplitude = %v", a)
	}
	// S² = Z: phase of |1⟩ flips sign.
	s = mustRun(t, circuit.New("ss", 1).X(0).S(0).S(0))
	if a := s.Amplitude(1); !approx(real(a), -1, 1e-12) {
		t.Errorf("S²|1⟩ = %v want -|1⟩", a)
	}
	// T⁴ = Z.
	s = mustRun(t, circuit.New("tttt", 1).X(0).T(0).T(0).T(0).T(0))
	if a := s.Amplitude(1); !approx(real(a), -1, 1e-12) {
		t.Errorf("T⁴|1⟩ = %v want -|1⟩", a)
	}
	// S·Sdg = I.
	s = mustRun(t, circuit.New("ssdg", 1).X(0).S(0).Sdg(0))
	if a := s.Amplitude(1); !approx(real(a), 1, 1e-12) {
		t.Errorf("S·Sdg = %v", a)
	}
	// T·Tdg = I.
	s = mustRun(t, circuit.New("ttdg", 1).X(0).T(0).Tdg(0))
	if a := s.Amplitude(1); !approx(real(a), 1, 1e-12) {
		t.Errorf("T·Tdg = %v", a)
	}
}

func TestSXSquaredIsX(t *testing.T) {
	s := mustRun(t, circuit.New("sxsx", 1).SX(0).SX(0))
	if !approx(s.Prob(1), 1, 1e-12) {
		t.Errorf("SX² |0⟩ should be |1⟩ (global phase aside): %v", s.Prob(1))
	}
}

func TestBellState(t *testing.T) {
	s := mustRun(t, circuit.New("bell", 2).H(0).CX(0, 1))
	if !approx(s.Prob(0b00), 0.5, 1e-12) || !approx(s.Prob(0b11), 0.5, 1e-12) {
		t.Errorf("bell probs: %v", s.Probabilities())
	}
	if s.Prob(0b01) != 0 || s.Prob(0b10) != 0 {
		t.Error("bell state has odd-parity amplitude")
	}
}

func TestGHZ(t *testing.T) {
	c := circuit.New("ghz", 4).H(0).CX(0, 1).CX(1, 2).CX(2, 3)
	s := mustRun(t, c)
	if !approx(s.Prob(0b0000), 0.5, 1e-12) || !approx(s.Prob(0b1111), 0.5, 1e-12) {
		t.Errorf("GHZ probs wrong: %v %v", s.Prob(0), s.Prob(15))
	}
}

func TestCZSymmetric(t *testing.T) {
	a := mustRun(t, circuit.New("cz1", 2).H(0).H(1).CZ(0, 1))
	b := mustRun(t, circuit.New("cz2", 2).H(0).H(1).CZ(1, 0))
	f, err := a.FidelityWith(b)
	if err != nil || !approx(f, 1, 1e-12) {
		t.Errorf("CZ not symmetric: f=%v err=%v", f, err)
	}
}

func TestSWAP(t *testing.T) {
	s := mustRun(t, circuit.New("swap", 2).X(0).SWAP(0, 1))
	if s.Prob(0b10) != 1 {
		t.Errorf("SWAP failed: %v", s.Probabilities())
	}
}

func TestCCXTruthTable(t *testing.T) {
	for in := 0; in < 8; in++ {
		c := circuit.New("ccx", 3)
		for q := 0; q < 3; q++ {
			if in&(1<<q) != 0 {
				c.X(q)
			}
		}
		c.CCX(0, 1, 2)
		s := mustRun(t, c)
		want := in
		if in&1 != 0 && in&2 != 0 {
			want ^= 4
		}
		if !approx(s.Prob(bitstring.BitString(want)), 1, 1e-12) {
			t.Errorf("CCX input %03b: want output %03b, probs %v", in, want, s.Probabilities())
		}
	}
}

func TestCSWAPTruthTable(t *testing.T) {
	for in := 0; in < 8; in++ {
		c := circuit.New("cswap", 3)
		for q := 0; q < 3; q++ {
			if in&(1<<q) != 0 {
				c.X(q)
			}
		}
		c.CSWAP(0, 1, 2)
		s := mustRun(t, c)
		want := in
		if in&1 != 0 {
			b1, b2 := (in>>1)&1, (in>>2)&1
			want = in&1 | b2<<1 | b1<<2
		}
		if !approx(s.Prob(bitstring.BitString(want)), 1, 1e-12) {
			t.Errorf("CSWAP input %03b: want %03b", in, want)
		}
	}
}

func TestRotationsMatchU3(t *testing.T) {
	// RY(θ) == U3(θ, 0, 0); RX(θ) == U3(θ, -π/2, π/2), up to global phase.
	theta := 0.7
	a := mustRun(t, circuit.New("ry", 1).RY(theta, 0))
	b := mustRun(t, circuit.New("u3", 1).U3(theta, 0, 0, 0))
	f, _ := a.FidelityWith(b)
	if !approx(f, 1, 1e-12) {
		t.Errorf("RY vs U3 fidelity %v", f)
	}
	a = mustRun(t, circuit.New("rx", 1).RX(theta, 0))
	b = mustRun(t, circuit.New("u3", 1).U3(theta, -math.Pi/2, math.Pi/2, 0))
	f, _ = a.FidelityWith(b)
	if !approx(f, 1, 1e-12) {
		t.Errorf("RX vs U3 fidelity %v", f)
	}
}

func TestRZPhase(t *testing.T) {
	// RZ on |+⟩ rotates the relative phase: ⟨X⟩ = cos φ.
	phi := 1.1
	s := mustRun(t, circuit.New("rz", 1).H(0).RZ(phi, 0).H(0))
	// After H RZ H: P(0) = cos²(φ/2).
	want := math.Cos(phi/2) * math.Cos(phi/2)
	if !approx(s.Prob(0), want, 1e-12) {
		t.Errorf("P(0) = %v want %v", s.Prob(0), want)
	}
}

func TestNormPreservedRandomCircuit(t *testing.T) {
	f := func(seed uint32) bool {
		rng := mathx.NewRNG(uint64(seed))
		c := circuit.New("rand", 4)
		kinds := []circuit.Kind{circuit.H, circuit.X, circuit.Y, circuit.Z,
			circuit.S, circuit.T, circuit.SX, circuit.RX, circuit.RY, circuit.RZ,
			circuit.CX, circuit.CZ, circuit.SWAP}
		for i := 0; i < 30; i++ {
			k := kinds[rng.Intn(len(kinds))]
			q := rng.Intn(4)
			switch k.Arity() {
			case 1:
				if k.ParamCount() == 1 {
					c.Append(circuit.Gate{Kind: k, Qubits: []int{q}, Params: []float64{rng.Uniform(-3, 3)}})
				} else {
					c.Append(circuit.Gate{Kind: k, Qubits: []int{q}})
				}
			case 2:
				q2 := (q + 1 + rng.Intn(3)) % 4
				c.Append(circuit.Gate{Kind: k, Qubits: []int{q, q2}})
			}
		}
		s, err := Run(c)
		return err == nil && approx(s.Norm(), 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestExpectationZ(t *testing.T) {
	s := mustRun(t, circuit.New("z0", 2).X(0))
	if !approx(s.ExpectationZ(0), -1, 1e-12) || !approx(s.ExpectationZ(1), 1, 1e-12) {
		t.Errorf("⟨Z⟩ = %v, %v", s.ExpectationZ(0), s.ExpectationZ(1))
	}
	s = mustRun(t, circuit.New("h", 1).H(0))
	if !approx(s.ExpectationZ(0), 0, 1e-12) {
		t.Errorf("⟨Z⟩ on |+⟩ = %v", s.ExpectationZ(0))
	}
}

func TestDistMatchesProbs(t *testing.T) {
	s := mustRun(t, circuit.New("bell", 2).H(0).CX(0, 1))
	d := s.Dist()
	if d.Support() != 2 {
		t.Errorf("support %d", d.Support())
	}
	if !approx(d.Prob(0), 0.5, 1e-9) || !approx(d.Prob(3), 0.5, 1e-9) {
		t.Errorf("dist %v", d.StringCounts())
	}
}

func TestSampleConvergence(t *testing.T) {
	s := mustRun(t, circuit.New("bell", 2).H(0).CX(0, 1))
	d := s.Sample(20000, mathx.NewRNG(1))
	if d.Total() != 20000 {
		t.Fatalf("total %v", d.Total())
	}
	if !approx(d.Prob(0), 0.5, 0.02) || !approx(d.Prob(3), 0.5, 0.02) {
		t.Errorf("sampled probs %v %v", d.Prob(0), d.Prob(3))
	}
	if d.Count(1) != 0 || d.Count(2) != 0 {
		t.Error("sampled impossible outcome")
	}
}

func TestRunFromInitialState(t *testing.T) {
	// X on qubit 1 from |01⟩ gives |11⟩.
	c := circuit.New("x1", 2).X(1)
	s, err := RunFrom(c, 0b01)
	if err != nil {
		t.Fatal(err)
	}
	if s.Prob(0b11) != 1 {
		t.Errorf("probs %v", s.Probabilities())
	}
}

func TestRunPropagatesBuildError(t *testing.T) {
	c := circuit.New("bad", 2).H(7)
	if _, err := Run(c); err == nil {
		t.Error("expected build error to propagate")
	}
}

func TestIdealDistBV(t *testing.T) {
	// BV with secret 101: output should be exactly the secret.
	secret := bitstring.BitString(0b101)
	n := 3
	c := circuit.New("bv", n+1)
	c.X(n).H(n)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	for q := 0; q < n; q++ {
		if secret.Bit(q) == 1 {
			c.CX(q, n)
		}
	}
	for q := 0; q < n; q++ {
		c.H(q)
	}
	d, err := IdealDist(c)
	if err != nil {
		t.Fatal(err)
	}
	// Data register holds the secret; ancilla in |-⟩ so it is 0/1 with equal
	// probability — marginalize by checking both.
	p := d.Prob(secret) + d.Prob(secret|1<<uint(n))
	if !approx(p, 1, 1e-9) {
		t.Errorf("BV mass on secret = %v", p)
	}
}

func TestFidelityWithMismatch(t *testing.T) {
	a, _ := New(2)
	b, _ := New(3)
	if _, err := a.FidelityWith(b); err == nil {
		t.Error("width mismatch should error")
	}
}

func TestGlobalPhaseInvariance(t *testing.T) {
	// Z X Z X = -I: the result differs from I only by global phase, so
	// fidelity with the untouched state is 1.
	a := mustRun(t, circuit.New("zxzx", 1).Z(0).X(0).Z(0).X(0))
	b, _ := New(1)
	f, _ := a.FidelityWith(b)
	if !approx(f, 1, 1e-12) {
		t.Errorf("global phase changed fidelity: %v", f)
	}
	if !approx(cmplx.Abs(a.Amplitude(0)), 1, 1e-12) {
		t.Errorf("amplitude magnitude %v", cmplx.Abs(a.Amplitude(0)))
	}
}

func BenchmarkRun12QubitGHZ(b *testing.B) {
	c := circuit.New("ghz", 12).H(0)
	for q := 0; q < 11; q++ {
		c.CX(q, q+1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSample4096Shots(b *testing.B) {
	c := circuit.New("ghz", 10).H(0)
	for q := 0; q < 9; q++ {
		c.CX(q, q+1)
	}
	s, err := Run(c)
	if err != nil {
		b.Fatal(err)
	}
	rng := mathx.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample(4096, rng)
	}
}
