package statevector

import (
	"context"
	"math"
	"testing"

	"qbeep/internal/bitstring"
	"qbeep/internal/circuit"
	"qbeep/internal/mathx"
)

// TestRunProgramMatchesOracleBitwise pins the replay contract: an unfused
// compiled program replayed with RunProgram is bit-for-bit identical to
// the naiveApply oracle for random circuits, width 1-12, any worker
// count — the same bar the one-shot RunConfigured path clears.
func TestRunProgramMatchesOracleBitwise(t *testing.T) {
	workers := workerMatrix(t)
	for n := 1; n <= 12; n++ {
		for trial := 0; trial < 3; trial++ {
			rng := mathx.NewRNG(uint64(4000*n + trial))
			c := randomCircuit(n, 30+3*n, rng)
			init := bitstring.BitString(rng.Uint64() & (1<<uint(n) - 1))
			p, err := Compile(c, RunConfig{NoFuse: true})
			if err != nil {
				t.Fatal(err)
			}
			want := naiveRunFrom(t, c, init)
			for _, w := range workers {
				got, err := NewBasis(n, init)
				if err != nil {
					t.Fatal(err)
				}
				got.SetWorkers(w)
				if err := got.RunProgram(p); err != nil {
					t.Fatalf("n=%d trial=%d workers=%d: %v", n, trial, w, err)
				}
				for i := range want.amp {
					if got.amp[i] != want.amp[i] {
						t.Fatalf("n=%d trial=%d workers=%d amp[%d]: program %v oracle %v",
							n, trial, w, i, got.amp[i], want.amp[i])
					}
				}
			}
		}
	}
}

// TestRunProgramFusedMatchesOracle pins the fused replay path to the
// oracle within 1e-12 per amplitude (fusion reassociates floating-point
// products, so bitwise equality is not expected).
func TestRunProgramFusedMatchesOracle(t *testing.T) {
	for n := 1; n <= 12; n++ {
		rng := mathx.NewRNG(uint64(5000 * n))
		c := randomCircuit(n, 40+3*n, rng)
		p, err := Compile(c, RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		want := naiveRunFrom(t, c, 0)
		got, err := NewBasis(n, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := got.RunProgram(p); err != nil {
			t.Fatal(err)
		}
		for i := range want.amp {
			dr := real(got.amp[i]) - real(want.amp[i])
			di := imag(got.amp[i]) - imag(want.amp[i])
			if math.Abs(dr) > 1e-12 || math.Abs(di) > 1e-12 {
				t.Fatalf("n=%d amp[%d]: fused program %v oracle %v", n, i, got.amp[i], want.amp[i])
			}
		}
	}
}

// TestProgramReplayIsReusable pins that one Program replayed many times
// (the trajectory sampler's usage) never drifts: every replay from the
// same init is bitwise identical, including replays interleaved with
// runs from other inits.
func TestProgramReplayIsReusable(t *testing.T) {
	const n = 8
	rng := mathx.NewRNG(321)
	c := randomCircuit(n, 50, rng)
	p, err := Compile(c, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	run := func(init bitstring.BitString) []complex128 {
		s, err := NewBasis(n, init)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.RunProgram(p); err != nil {
			t.Fatal(err)
		}
		return s.amp
	}
	first := run(0)
	other := run(5)
	again := run(0)
	for i := range first {
		if first[i] != again[i] {
			t.Fatalf("amp[%d] drifted across replays: %v vs %v", i, first[i], again[i])
		}
	}
	diff := false
	for i := range first {
		if first[i] != other[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("replays from distinct inits produced identical states")
	}
}

// TestRunProgramTiledBitwise pins the tiling invariant: tiled replay is
// bitwise identical to the untiled program replay for every tile size
// (including degenerate ones beyond the register width) and every worker
// count, fused and unfused.
func TestRunProgramTiledBitwise(t *testing.T) {
	workers := workerMatrix(t)
	for _, noFuse := range []bool{false, true} {
		for n := 2; n <= 12; n += 2 {
			rng := mathx.NewRNG(uint64(6000*n) + boolInt(noFuse))
			c := randomCircuit(n, 40+3*n, rng)
			p, err := Compile(c, RunConfig{NoFuse: noFuse})
			if err != nil {
				t.Fatal(err)
			}
			want, err := NewBasis(n, 0)
			if err != nil {
				t.Fatal(err)
			}
			if err := want.RunProgram(p); err != nil {
				t.Fatal(err)
			}
			for _, tileBits := range []int{1, 2, 3, 4, n - 1, n, n + 3, DefaultTileBits} {
				if tileBits < 1 {
					continue
				}
				for _, w := range workers {
					got, err := NewBasis(n, 0)
					if err != nil {
						t.Fatal(err)
					}
					got.SetWorkers(w)
					if err := got.RunProgramTiled(p, tileBits); err != nil {
						t.Fatalf("n=%d tileBits=%d workers=%d: %v", n, tileBits, w, err)
					}
					for i := range want.amp {
						if got.amp[i] != want.amp[i] {
							t.Fatalf("n=%d noFuse=%v tileBits=%d workers=%d amp[%d]: tiled %v plain %v",
								n, noFuse, tileBits, w, i, got.amp[i], want.amp[i])
						}
					}
				}
			}
		}
	}
}

// TestRunProgramWidthMismatch pins the replay guard.
func TestRunProgramWidthMismatch(t *testing.T) {
	c := circuit.New("w", 3).H(0)
	p, err := Compile(c, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewBasis(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunProgram(p); err == nil {
		t.Fatal("RunProgram accepted a width-3 program on a width-4 state")
	}
	if err := s.RunProgramTiled(p, 4); err == nil {
		t.Fatal("RunProgramTiled accepted a width-3 program on a width-4 state")
	}
}

// TestPauliOpsMatchGates pins the injection table against the general
// gate path: each table entry is bitwise identical to applying the
// corresponding Pauli gate.
func TestPauliOpsMatchGates(t *testing.T) {
	const n = 6
	rng := mathx.NewRNG(99)
	prep := randomCircuit(n, 30, rng)
	tbl := NewPauliOps(n)
	kinds := []circuit.Kind{circuit.X, circuit.Y, circuit.Z}
	for q := 0; q < n; q++ {
		for k := 0; k < 3; k++ {
			want := naiveRunFrom(t, prep, 0)
			if err := want.Apply(circuit.Gate{Kind: kinds[k], Qubits: []int{q}}); err != nil {
				t.Fatal(err)
			}
			got := naiveRunFrom(t, prep, 0)
			got.ApplyCompiled(tbl[q][k])
			for i := range want.amp {
				if got.amp[i] != want.amp[i] {
					t.Fatalf("pauli[%d][%d] amp[%d]: table %v gate %v", q, k, i, got.amp[i], want.amp[i])
				}
			}
		}
	}
}

// TestRunBatchMatchesSerial pins the batch contract: RunBatch output is
// bitwise identical to serial RunConfigured for every job at every
// worker count and tile size, including jobs that share one compiled
// circuit.
func TestRunBatchMatchesSerial(t *testing.T) {
	rng := mathx.NewRNG(777)
	shared := randomCircuit(7, 45, rng)
	jobs := []BatchJob{
		{Circuit: shared, Init: 0},
		{Circuit: randomCircuit(4, 25, rng), Init: 3},
		{Circuit: shared, Init: 17}, // same circuit, different init: shares the Program
		{Circuit: randomCircuit(9, 60, rng), Init: 0},
		{Circuit: randomCircuit(1, 8, rng), Init: 1},
	}
	want := make([]*State, len(jobs))
	for i, j := range jobs {
		s, err := RunConfigured(j.Circuit, j.Init, RunConfig{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = s
	}
	for _, w := range workerMatrix(t) {
		for _, tileBits := range []int{-1, 0, 3, DefaultTileBits} {
			got, err := RunBatch(context.Background(), jobs, BatchConfig{Workers: w, TileBits: tileBits})
			if err != nil {
				t.Fatalf("workers=%d tileBits=%d: %v", w, tileBits, err)
			}
			if len(got) != len(jobs) {
				t.Fatalf("workers=%d: %d states for %d jobs", w, len(got), len(jobs))
			}
			for i := range jobs {
				for a := range want[i].amp {
					if got[i].amp[a] != want[i].amp[a] {
						t.Fatalf("workers=%d tileBits=%d job=%d amp[%d]: batch %v serial %v",
							w, tileBits, i, a, got[i].amp[a], want[i].amp[a])
					}
				}
			}
		}
	}
}

// TestRunBatchRejectsBadInput pins the validation paths.
func TestRunBatchRejectsBadInput(t *testing.T) {
	if _, err := RunBatch(context.Background(), nil, BatchConfig{}); err == nil {
		t.Fatal("RunBatch accepted an empty batch")
	}
	jobs := []BatchJob{{Circuit: nil}}
	if _, err := RunBatch(context.Background(), jobs, BatchConfig{}); err == nil {
		t.Fatal("RunBatch accepted a nil circuit")
	}
}

func boolInt(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
