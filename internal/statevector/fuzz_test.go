package statevector

import (
	"math/cmplx"
	"testing"

	"qbeep/internal/bitstring"
	"qbeep/internal/mathx"
)

// FuzzCompileReplay drives the Compile → RunProgram pipeline against the
// retained naiveApply oracle over fuzzer-chosen circuit shapes. The
// contract it checks is the one the test suite pins at fixed seeds
// (TestKernelMatchesOracleBitwise and friends), opened to a random walk:
//
//   - with fusion disabled the replay is bit-for-bit identical to the
//     oracle — the kernels enumerate exactly the same complex arithmetic;
//   - with fusion enabled amplitudes agree to 1e-12 — fusing reorders
//     floating-point operations but must not change the unitary.
func FuzzCompileReplay(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint8(30), false)
	f.Add(uint64(2), uint8(4), uint8(30), true)
	f.Add(uint64(3), uint8(1), uint8(10), false)
	f.Add(uint64(4), uint8(9), uint8(80), true)
	f.Add(uint64(5), uint8(6), uint8(1), false)
	f.Fuzz(func(t *testing.T, seed uint64, width, length uint8, noFuse bool) {
		n := 1 + int(width)%9 // 1..9 qubits: oracle is O(length * 2^n)
		gates := 1 + int(length)%90
		rng := mathx.NewRNG(seed)
		c := randomCircuit(n, gates, rng)
		init := bitstring.BitString(rng.Uint64() & (1<<uint(n) - 1))

		p, err := Compile(c, RunConfig{NoFuse: noFuse})
		if err != nil {
			t.Fatal(err)
		}
		got, err := NewBasis(n, init)
		if err != nil {
			t.Fatal(err)
		}
		got.SetWorkers(1)
		if err := got.RunProgram(p); err != nil {
			t.Fatal(err)
		}
		want := naiveRunFrom(t, c, init)

		for i := range want.amp {
			w, g := want.amp[i], got.amp[i]
			if noFuse {
				if w != g {
					t.Fatalf("seed %d n=%d gates=%d: amp[%d] = %v, oracle %v (unfused replay must be bitwise)",
						seed, n, gates, i, g, w)
				}
				continue
			}
			if cmplx.Abs(w-g) > 1e-12 {
				t.Fatalf("seed %d n=%d gates=%d: amp[%d] = %v, oracle %v (|Δ| = %g > 1e-12)",
					seed, n, gates, i, g, w, cmplx.Abs(w-g))
			}
		}
	})
}
