package statevector

import (
	"testing"

	"qbeep/internal/circuit"
	"qbeep/internal/mathx"
)

// qaoaCircuit builds a QAOA-style benchmark circuit on a ring: the
// Hadamard layer, then per round a ZZ cost layer (CX·RZ·CX per edge) and
// an RX mixer layer — the gate mix of the paper's Fig. 8 workload.
func qaoaCircuit(n, rounds int) *circuit.Circuit {
	c := circuit.New("qaoa-bench", n)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	rng := mathx.NewRNG(1)
	for r := 0; r < rounds; r++ {
		for q := 0; q < n; q++ {
			nq := (q + 1) % n
			c.CX(q, nq)
			c.RZ(rng.Uniform(0, 3), nq)
			c.CX(q, nq)
		}
		for q := 0; q < n; q++ {
			c.RX(rng.Uniform(0, 3), q)
		}
	}
	return c
}

// BenchmarkRun is the acceptance benchmark: the fused kernel engine on a
// 14-qubit QAOA-style circuit (compare against BenchmarkNaiveRun; the
// recorded baseline lives in BENCH_sim.json).
func BenchmarkRun(b *testing.B) {
	c := qaoaCircuit(14, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunProgram is the replay hot path: the same circuit compiled
// once and replayed onto a pooled state — what one trajectory shot costs
// without its per-call compile. Its allocs/op is the
// run_program_allocs_steady benchparse ceiling.
func BenchmarkRunProgram(b *testing.B) {
	c := qaoaCircuit(14, 3)
	p, err := Compile(c, RunConfig{})
	if err != nil {
		b.Fatal(err)
	}
	s, err := NewBasis(c.N, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Reset(0); err != nil {
			b.Fatal(err)
		}
		if err := s.RunProgram(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunUnfused isolates the pair-stride kernels from fusion.
func BenchmarkRunUnfused(b *testing.B) {
	c := qaoaCircuit(14, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunConfigured(c, 0, RunConfig{NoFuse: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNaiveRun is the retained full-scan oracle on the same circuit:
// the before side of the before/after in BENCH_sim.json.
func BenchmarkNaiveRun(b *testing.B) {
	c := qaoaCircuit(14, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := NewBasis(c.N, 0)
		if err != nil {
			b.Fatal(err)
		}
		for _, g := range c.Gates {
			if err := s.naiveApply(g); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkProbabilitiesInto measures the zero-copy probability path.
func BenchmarkProbabilitiesInto(b *testing.B) {
	c := qaoaCircuit(14, 1)
	s, err := Run(c)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]float64, 1<<14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = s.ProbabilitiesInto(buf)
	}
}
