package statevector

import (
	"testing"

	"qbeep/internal/mathx"
)

// TestRunProgramAllocationFree pins the compiled-replay contract the
// gcfacts gate certifies statically (//qbeep:allocfree on RunProgram and
// the kernel range functions): replaying a compiled program onto a
// single-shard state performs zero heap allocations. The static fact is
// per-frame; this test is the end-to-end runtime witness across the
// whole replay call tree.
func TestRunProgramAllocationFree(t *testing.T) {
	rng := mathx.NewRNG(99)
	c := randomCircuit(8, 60, rng)
	p, err := Compile(c, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewBasis(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.SetWorkers(1)
	if err := s.RunProgram(p); err != nil { // warm-up: nothing to warm, but mirror Step's shape
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(50, func() {
		if err := s.RunProgram(p); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("RunProgram allocates %v per replay", n)
	}
}

// TestApplyCompiledAllocationFree pins the per-gate replay primitive the
// trajectory sampler leans on for Pauli injections.
func TestApplyCompiledAllocationFree(t *testing.T) {
	s, err := NewBasis(6, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.SetWorkers(1)
	tbl := NewPauliOps(6)
	if n := testing.AllocsPerRun(100, func() {
		for q := 0; q < 6; q++ {
			s.ApplyCompiled(tbl[q][0])
			s.ApplyCompiled(tbl[q][1])
			s.ApplyCompiled(tbl[q][2])
		}
	}); n != 0 {
		t.Fatalf("ApplyCompiled allocates %v per 18-gate burst", n)
	}
}
