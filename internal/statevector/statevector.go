// Package statevector implements a dense state-vector simulator for the
// circuit IR. It is the ideal-execution substrate: noiseless probabilities,
// expectation values, and shot sampling for registers up to ~20 qubits.
//
// Gate application goes through the pair-stride kernel engine (kernels.go):
// branch-free block iteration, diagonal and permutation fast paths, fusion
// of adjacent single-qubit gates, and sharding of the amplitude array
// across internal/par workers for wide registers. The textbook full-scan
// implementation is retained as naiveApply, the randomized-equivalence
// oracle the kernels are tested against.
package statevector

import (
	"context"
	"fmt"
	"math"
	"math/cmplx"
	"time"

	"qbeep/internal/bitstring"
	"qbeep/internal/circuit"
	"qbeep/internal/mathx"
	"qbeep/internal/obs"
)

// MaxQubits bounds the register width (2^24 amplitudes ≈ 256 MiB).
const MaxQubits = 24

// Simulation metrics (see internal/obs): run wall time, cumulative gate
// and shot counts, and the width of the most recent run.
var (
	metRun   = obs.Default.Timer("sim.run")
	metRuns  = obs.Default.Counter("sim.runs")
	metGates = obs.Default.Counter("sim.gates")
	metShots = obs.Default.Counter("sim.shots")
	metWidth = obs.Default.Gauge("sim.width")
)

// State is an n-qubit pure state: 2^n complex amplitudes with qubit 0 the
// least-significant index bit.
type State struct {
	n       int
	amp     []complex128
	workers int // kernel shard count; 0 = auto (GOMAXPROCS above threshold)
	// ctx carries the active trace span while RunConfiguredCtx drives
	// the state, so kernel shard fan-outs parent their worker spans
	// under the "sim.run" span. Nil outside a traced run.
	ctx context.Context
}

// New returns the all-zeros computational basis state |0...0⟩.
func New(n int) (*State, error) {
	if n <= 0 || n > MaxQubits {
		return nil, fmt.Errorf("statevector: width %d outside (0,%d]", n, MaxQubits)
	}
	s := &State{n: n, amp: make([]complex128, 1<<uint(n))}
	s.amp[0] = 1
	return s, nil
}

// NewBasis returns the computational basis state |b⟩.
func NewBasis(n int, b bitstring.BitString) (*State, error) {
	if uint64(b) >= uint64(1)<<uint(n) {
		return nil, fmt.Errorf("statevector: basis state %d outside %d-qubit register", b, n)
	}
	s, err := New(n)
	if err != nil {
		return nil, err
	}
	s.amp[0] = 0
	s.amp[b] = 1
	return s, nil
}

// N returns the register width.
func (s *State) N() int { return s.n }

// Amplitude returns the amplitude of basis state b.
func (s *State) Amplitude(b bitstring.BitString) complex128 { return s.amp[b] }

// SetWorkers sets the kernel shard count: w > 1 shards every kernel over w
// par workers, w == 1 forces serial application, and w <= 0 restores the
// default (GOMAXPROCS workers once the register is wide enough to pay for
// the fan-out). The state's contents are bitwise independent of w.
func (s *State) SetWorkers(w int) {
	if w < 0 {
		w = 0
	}
	s.workers = w
}

// Reset returns the state to the computational basis state |b⟩ in place,
// reusing the amplitude buffer (no allocation).
func (s *State) Reset(b bitstring.BitString) error {
	if uint64(b) >= uint64(len(s.amp)) {
		return fmt.Errorf("statevector: basis state %d outside %d-qubit register", b, s.n)
	}
	clear(s.amp)
	s.amp[b] = 1
	return nil
}

// Clone returns a deep copy.
func (s *State) Clone() *State {
	c := &State{n: s.n, amp: make([]complex128, len(s.amp)), workers: s.workers}
	copy(c.amp, s.amp)
	return c
}

// Norm returns the 2-norm of the state (1 for a valid state).
func (s *State) Norm() float64 {
	var sum float64
	for _, a := range s.amp {
		sum += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(sum)
}

// Prob returns the measurement probability of basis state b.
func (s *State) Prob(b bitstring.BitString) float64 {
	a := s.amp[b]
	return real(a)*real(a) + imag(a)*imag(a)
}

// Probabilities returns the full probability vector as a fresh slice.
func (s *State) Probabilities() []float64 {
	return s.ProbabilitiesInto(nil)
}

// ProbabilitiesInto writes the probability vector into dst, reusing its
// storage when it has sufficient capacity (allocating only otherwise), and
// returns the written slice. Callers on hot loops keep one scratch slice
// alive and pass it back in every call.
func (s *State) ProbabilitiesInto(dst []float64) []float64 {
	if cap(dst) < len(s.amp) {
		dst = make([]float64, len(s.amp))
	}
	dst = dst[:len(s.amp)]
	for i, a := range s.amp {
		dst[i] = real(a)*real(a) + imag(a)*imag(a)
	}
	return dst
}

// applyMatrix1 applies a 2x2 unitary to qubit q (oracle path).
func (s *State) applyMatrix1(q int, m [2][2]complex128) {
	mask := 1 << uint(q)
	for i := 0; i < len(s.amp); i++ {
		if i&mask != 0 {
			continue
		}
		j := i | mask
		a0, a1 := s.amp[i], s.amp[j]
		s.amp[i] = m[0][0]*a0 + m[0][1]*a1
		s.amp[j] = m[1][0]*a0 + m[1][1]*a1
	}
}

// phase1 multiplies the |1⟩ component of qubit q by ph (oracle path).
func (s *State) phase1(q int, ph complex128) {
	mask := 1 << uint(q)
	for i := range s.amp {
		if i&mask != 0 {
			s.amp[i] *= ph
		}
	}
}

// flip applies X on qubit q (oracle path: pure permutation).
func (s *State) flip(q int) {
	mask := 1 << uint(q)
	for i := 0; i < len(s.amp); i++ {
		if i&mask == 0 {
			j := i | mask
			s.amp[i], s.amp[j] = s.amp[j], s.amp[i]
		}
	}
}

const invSqrt2 = 0.7071067811865476

func u3Matrix(theta, phi, lambda float64) [2][2]complex128 {
	ct, st := math.Cos(theta/2), math.Sin(theta/2)
	return [2][2]complex128{
		{complex(ct, 0), -cmplx.Exp(complex(0, lambda)) * complex(st, 0)},
		{cmplx.Exp(complex(0, phi)) * complex(st, 0),
			cmplx.Exp(complex(0, phi+lambda)) * complex(ct, 0)},
	}
}

// Apply applies one unitary gate through the kernel engine. Measurements
// and barriers are ignored here; sampling handles measurement (see
// Sample). The result is bit-identical to naiveApply for every gate kind.
func (s *State) Apply(g circuit.Gate) error {
	if err := g.Validate(s.n); err != nil {
		return err
	}
	o, err := gateOp(g)
	if err != nil {
		return err
	}
	s.applyOp(o)
	return nil
}

// naiveApply is the seed repository's full-scan gate application: one pass
// over all 2^n amplitudes with a per-index mask test for every gate. It is
// kept as the randomized-equivalence oracle for the kernel engine (the
// same role bruteScanEdges plays for the state-graph engine) and as the
// benchmark baseline in BENCH_sim.json.
func (s *State) naiveApply(g circuit.Gate) error {
	if err := g.Validate(s.n); err != nil {
		return err
	}
	switch g.Kind {
	case circuit.I, circuit.Barrier, circuit.Measure:
		// no-op on the pure state
	case circuit.X:
		s.flip(g.Qubits[0])
	case circuit.Y:
		s.applyMatrix1(g.Qubits[0], [2][2]complex128{{0, -1i}, {1i, 0}})
	case circuit.Z:
		s.phase1(g.Qubits[0], -1)
	case circuit.H:
		s.applyMatrix1(g.Qubits[0], [2][2]complex128{
			{invSqrt2, invSqrt2}, {invSqrt2, -invSqrt2}})
	case circuit.S:
		s.phase1(g.Qubits[0], 1i)
	case circuit.Sdg:
		s.phase1(g.Qubits[0], -1i)
	case circuit.T:
		s.phase1(g.Qubits[0], cmplx.Exp(1i*math.Pi/4))
	case circuit.Tdg:
		s.phase1(g.Qubits[0], cmplx.Exp(-1i*math.Pi/4))
	case circuit.SX:
		s.applyMatrix1(g.Qubits[0], [2][2]complex128{
			{complex(0.5, 0.5), complex(0.5, -0.5)},
			{complex(0.5, -0.5), complex(0.5, 0.5)}})
	case circuit.RX:
		th := g.Params[0]
		c, sn := math.Cos(th/2), math.Sin(th/2)
		s.applyMatrix1(g.Qubits[0], [2][2]complex128{
			{complex(c, 0), complex(0, -sn)},
			{complex(0, -sn), complex(c, 0)}})
	case circuit.RY:
		th := g.Params[0]
		c, sn := math.Cos(th/2), math.Sin(th/2)
		s.applyMatrix1(g.Qubits[0], [2][2]complex128{
			{complex(c, 0), complex(-sn, 0)},
			{complex(sn, 0), complex(c, 0)}})
	case circuit.RZ:
		phi := g.Params[0]
		mask := 1 << uint(g.Qubits[0])
		ph0 := cmplx.Exp(complex(0, -phi/2))
		ph1 := cmplx.Exp(complex(0, phi/2))
		for i := range s.amp {
			if i&mask != 0 {
				s.amp[i] *= ph1
			} else {
				s.amp[i] *= ph0
			}
		}
	case circuit.U3:
		s.applyMatrix1(g.Qubits[0], u3Matrix(g.Params[0], g.Params[1], g.Params[2]))
	case circuit.CX:
		cm := 1 << uint(g.Qubits[0])
		tm := 1 << uint(g.Qubits[1])
		for i := 0; i < len(s.amp); i++ {
			if i&cm != 0 && i&tm == 0 {
				j := i | tm
				s.amp[i], s.amp[j] = s.amp[j], s.amp[i]
			}
		}
	case circuit.CZ:
		am := 1 << uint(g.Qubits[0])
		bm := 1 << uint(g.Qubits[1])
		for i := range s.amp {
			if i&am != 0 && i&bm != 0 {
				s.amp[i] = -s.amp[i]
			}
		}
	case circuit.SWAP:
		am := 1 << uint(g.Qubits[0])
		bm := 1 << uint(g.Qubits[1])
		for i := 0; i < len(s.amp); i++ {
			if i&am != 0 && i&bm == 0 {
				j := i ^ am ^ bm
				s.amp[i], s.amp[j] = s.amp[j], s.amp[i]
			}
		}
	case circuit.CCX:
		c1 := 1 << uint(g.Qubits[0])
		c2 := 1 << uint(g.Qubits[1])
		tm := 1 << uint(g.Qubits[2])
		for i := 0; i < len(s.amp); i++ {
			if i&c1 != 0 && i&c2 != 0 && i&tm == 0 {
				j := i | tm
				s.amp[i], s.amp[j] = s.amp[j], s.amp[i]
			}
		}
	case circuit.CSWAP:
		cm := 1 << uint(g.Qubits[0])
		am := 1 << uint(g.Qubits[1])
		bm := 1 << uint(g.Qubits[2])
		for i := 0; i < len(s.amp); i++ {
			if i&cm != 0 && i&am != 0 && i&bm == 0 {
				j := i ^ am ^ bm
				s.amp[i], s.amp[j] = s.amp[j], s.amp[i]
			}
		}
	default:
		return fmt.Errorf("statevector: unsupported gate %s", g.Kind)
	}
	return nil
}

// RunConfig tunes circuit execution.
type RunConfig struct {
	// Workers is the kernel shard count (see State.SetWorkers); 0 = auto.
	Workers int
	// NoFuse disables single-qubit gate fusion, applying each gate with
	// its own kernel (bit-identical to the naiveApply oracle). The fused
	// default matches the oracle within 1e-12 per amplitude.
	NoFuse bool
	// TileBits enables cache-blocked replay (see RunProgramTiled):
	// positive values set the tile width in qubits, zero disables
	// tiling. Output is bitwise identical for every value.
	TileBits int
}

// Run applies every gate of the circuit to a fresh |0...0⟩ state and
// returns the final state.
func Run(c *circuit.Circuit) (*State, error) {
	return RunConfiguredCtx(context.Background(), c, 0, RunConfig{})
}

// RunCtx is Run with trace-context propagation (see RunConfiguredCtx).
func RunCtx(ctx context.Context, c *circuit.Circuit) (*State, error) {
	return RunConfiguredCtx(ctx, c, 0, RunConfig{})
}

// RunFrom applies the circuit to the basis state |init⟩.
func RunFrom(c *circuit.Circuit, init bitstring.BitString) (*State, error) {
	return RunConfiguredCtx(context.Background(), c, init, RunConfig{})
}

// RunConfigured applies the circuit to |init⟩ with explicit engine
// configuration. The whole gate list is compiled (and, unless NoFuse is
// set, fused) before any amplitude is touched.
func RunConfigured(c *circuit.Circuit, init bitstring.BitString, cfg RunConfig) (*State, error) {
	return RunConfiguredCtx(context.Background(), c, init, cfg)
}

// RunConfiguredCtx is RunConfigured with trace-context propagation: the
// "sim.run" span parents under the span active in ctx, and while the
// run is live the amplitude shard fan-outs parent their "par.worker"
// spans under it.
func RunConfiguredCtx(ctx context.Context, c *circuit.Circuit, init bitstring.BitString, cfg RunConfig) (*State, error) {
	if err := c.Err(); err != nil {
		return nil, err
	}
	p, err := Compile(c, cfg)
	if err != nil {
		return nil, err
	}
	s, err := NewBasis(c.N, init)
	if err != nil {
		return nil, err
	}
	s.SetWorkers(cfg.Workers)
	runCtx, sp := obs.Start(ctx, "sim.run")
	s.ctx = runCtx
	t0 := time.Now() //qbeep:allow-time span/metric timing, not kernel state
	err = s.RunProgramTiled(p, cfg.TileBits)
	s.ctx = nil
	if err != nil {
		sp.End()
		return nil, err
	}
	elapsed := time.Since(t0) //qbeep:allow-time span/metric timing, not kernel state
	metRun.ObserveDuration(elapsed)
	metRuns.Inc()
	metGates.Add(int64(len(c.Gates)))
	metWidth.Set(float64(c.N))
	sp.SetAttr("circuit", c.Name)
	sp.SetAttr("width", c.N)
	sp.SetAttr("gates", len(c.Gates))
	sp.SetAttr("ops", p.Ops())
	sp.End()
	return s, nil
}

// IdealDist returns the exact output distribution of the circuit (scaled to
// probability 1): the paper's "true solution" reference.
func IdealDist(c *circuit.Circuit) (*bitstring.Dist, error) {
	return IdealDistCtx(context.Background(), c)
}

// IdealDistCtx is IdealDist with trace-context propagation.
func IdealDistCtx(ctx context.Context, c *circuit.Circuit) (*bitstring.Dist, error) {
	s, err := RunCtx(ctx, c)
	if err != nil {
		return nil, err
	}
	return s.Dist(), nil
}

// Dist converts the state's probabilities into a bitstring.Dist with total
// mass 1, dropping negligible (< 1e-12) entries. The result map is
// pre-sized to the exact support, so wide low-entropy states don't pay
// for rehash growth.
func (s *State) Dist() *bitstring.Dist {
	support := 0
	for _, a := range s.amp {
		if real(a)*real(a)+imag(a)*imag(a) > 1e-12 {
			support++
		}
	}
	d := bitstring.NewDistCap(s.n, support)
	for i, a := range s.amp {
		p := real(a)*real(a) + imag(a)*imag(a)
		if p > 1e-12 {
			d.Add(bitstring.BitString(i), p)
		}
	}
	return d
}

// Sample draws shots measurement outcomes from the state using the given
// RNG, via the cumulative method. One scratch vector is allocated and the
// cumulative sums are built in place over it (ProbabilitiesInto).
func (s *State) Sample(shots int, rng *mathx.RNG) *bitstring.Dist {
	cum := s.ProbabilitiesInto(nil)
	var acc float64
	for i, v := range cum {
		acc += v
		cum[i] = acc
	}
	metShots.Add(int64(shots))
	d := bitstring.NewDist(s.n)
	for i := 0; i < shots; i++ {
		d.Add(sampleCum(cum, acc, rng), 1)
	}
	return d
}

// sampleCum draws one outcome from a cumulative probability vector by
// binary search.
func sampleCum(cum []float64, total float64, rng *mathx.RNG) bitstring.BitString {
	u := rng.Float64() * total
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return bitstring.BitString(lo)
}

// ExpectationZ returns ⟨Z_q⟩ for qubit q.
func (s *State) ExpectationZ(q int) float64 {
	mask := 1 << uint(q)
	var e float64
	for i, a := range s.amp {
		p := real(a)*real(a) + imag(a)*imag(a)
		if i&mask == 0 {
			e += p
		} else {
			e -= p
		}
	}
	return e
}

// FidelityWith returns |⟨s|t⟩|², the pure-state fidelity.
func (s *State) FidelityWith(t *State) (float64, error) {
	if s.n != t.n {
		return 0, fmt.Errorf("statevector: width mismatch %d vs %d", s.n, t.n)
	}
	var ip complex128
	for i := range s.amp {
		ip += cmplx.Conj(s.amp[i]) * t.amp[i]
	}
	return real(ip)*real(ip) + imag(ip)*imag(ip), nil
}
