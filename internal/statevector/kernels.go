// Pair-stride gate kernels, gate fusion and amplitude-array sharding.
//
// The engine replaces the textbook full-register scan (one branch per
// index per gate, see naiveApply) with kernels that enumerate exactly the
// amplitudes a gate touches:
//
//   - a single-qubit gate on qubit q pairs amplitude i with i|2^q; the
//     kernel iterates the compressed pair-index space t ∈ [0, 2^(n-1)),
//     expanding t to i by inserting a 0 bit at position q, and walks each
//     contiguous run of up to 2^q pairs with sliced cursors the compiler
//     can bounds-check-eliminate — no per-index mask test, each pair
//     touched exactly once;
//   - diagonal gates (Z/S/T/Sdg/Tdg/RZ and fused diagonal runs) multiply
//     amplitudes in place, skipping the |0⟩ half when its phase is exactly 1
//     so they stay bit-identical to the naive phase loop;
//   - permutation gates (X/CX/SWAP/CCX/CSWAP) move amplitudes with index
//     arithmetic only; controlled gates enumerate the 2^(n-k) compressed
//     space with the control bits forced on, touching a 4-8× smaller
//     index set than the naive scan;
//   - dense 2×2 matrices are classified by structure: all-real entries
//     (H, RY, fused real runs) and real-diagonal/imaginary-off-diagonal
//     entries (RX, Y) use reduced-flop arithmetic — the results equal the
//     generic complex path exactly up to the sign of zero, which compares
//     equal;
//   - adjacent single-qubit gates on the same qubit fuse into one 2×2
//     matrix (or one diagonal when every gate in the run is diagonal)
//     before application, and the ZZ-interaction sandwich CX·D·CX (D
//     diagonal on the target) collapses to a single two-qubit diagonal
//     pass — float-identical to the unfused sequence, since each
//     amplitude receives exactly the same single phase multiplication.
//
// Sharding: every kernel is expressed over a compressed index space in
// which one index == one independent pair (or element group), so
// splitting the space into contiguous worker ranges can never split a
// pair across shards, and the output is bitwise independent of the
// worker count.
package statevector

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
	"runtime"

	"qbeep/internal/circuit"
	"qbeep/internal/par"
)

// opKind discriminates the kernel an op dispatches to.
type opKind uint8

const (
	opNoop   opKind = iota
	opDense1        // 2×2 matrix on qubit q0 (dense single-qubit gate or fused run)
	opDiag1         // diagonal {d0, d1} on qubit q0
	opFlip          // X on q0
	opCX            // control q0, target q1
	opCZ            // phase -1 where q0 and q1 both set
	opZZ            // fused CX·D·CX: d0 where bits q0==q1, d1 where they differ
	opSwap          // exchange q0, q1
	opCCX           // controls q0,q1, target q2
	opCSwap         // control q0, exchange q1,q2
	opDiagN         // fused run of diagonal ops: phase table over the involved qubits
)

// Dense matrix structure classes (see dense1Range).
const (
	classGeneric uint8 = iota
	classReal          // every entry real: 8 mul + 4 add per pair
	classAxial         // real diagonal, imaginary off-diagonal: 8 mul + 4 add
)

// op is one compiled kernel invocation.
type op struct {
	kind       opKind
	class      uint8 // opDense1 structure class
	q0, q1, q2 int
	m          [2][2]complex128 // opDense1
	d0, d1     complex128       // opDiag1 / opZZ
	offs       []int            // opDiagN: amplitude offsets per involved-bit combo
	tbl        []complex128     // opDiagN: phase per combo
	masks      []int            // opDiagN: involved qubit masks, ascending
}

// denseClass classifies a 2×2 matrix for the specialized kernels.
func denseClass(m [2][2]complex128) uint8 {
	if imag(m[0][0]) == 0 && imag(m[0][1]) == 0 && imag(m[1][0]) == 0 && imag(m[1][1]) == 0 {
		return classReal
	}
	if imag(m[0][0]) == 0 && imag(m[1][1]) == 0 && real(m[0][1]) == 0 && real(m[1][0]) == 0 {
		return classAxial
	}
	return classGeneric
}

// diagPhases returns the diagonal entries for a diagonal gate kind.
func diagPhases(g circuit.Gate) (d0, d1 complex128, ok bool) {
	switch g.Kind {
	case circuit.Z:
		return 1, -1, true
	case circuit.S:
		return 1, 1i, true
	case circuit.Sdg:
		return 1, -1i, true
	case circuit.T:
		return 1, cmplx.Exp(1i * math.Pi / 4), true
	case circuit.Tdg:
		return 1, cmplx.Exp(-1i * math.Pi / 4), true
	case circuit.RZ:
		phi := g.Params[0]
		return cmplx.Exp(complex(0, -phi/2)), cmplx.Exp(complex(0, phi/2)), true
	default:
		return 0, 0, false
	}
}

// mat1 returns the 2×2 unitary of any single-qubit gate kind (used by the
// fusion pass; the unfused path prefers the diagonal/permutation kernels).
func mat1(g circuit.Gate) ([2][2]complex128, bool) {
	if d0, d1, ok := diagPhases(g); ok {
		return [2][2]complex128{{d0, 0}, {0, d1}}, true
	}
	switch g.Kind {
	case circuit.I:
		return [2][2]complex128{{1, 0}, {0, 1}}, true
	case circuit.X:
		return [2][2]complex128{{0, 1}, {1, 0}}, true
	case circuit.Y:
		return [2][2]complex128{{0, -1i}, {1i, 0}}, true
	case circuit.H:
		return [2][2]complex128{{invSqrt2, invSqrt2}, {invSqrt2, -invSqrt2}}, true
	case circuit.SX:
		return [2][2]complex128{
			{complex(0.5, 0.5), complex(0.5, -0.5)},
			{complex(0.5, -0.5), complex(0.5, 0.5)}}, true
	case circuit.RX:
		c, sn := math.Cos(g.Params[0]/2), math.Sin(g.Params[0]/2)
		return [2][2]complex128{
			{complex(c, 0), complex(0, -sn)},
			{complex(0, -sn), complex(c, 0)}}, true
	case circuit.RY:
		c, sn := math.Cos(g.Params[0]/2), math.Sin(g.Params[0]/2)
		return [2][2]complex128{
			{complex(c, 0), complex(-sn, 0)},
			{complex(sn, 0), complex(c, 0)}}, true
	case circuit.U3:
		return u3Matrix(g.Params[0], g.Params[1], g.Params[2]), true
	default:
		return [2][2]complex128{}, false
	}
}

// gateOp compiles one gate into its fastest single-gate op.
func gateOp(g circuit.Gate) (op, error) {
	switch g.Kind {
	case circuit.I, circuit.Barrier, circuit.Measure:
		return op{kind: opNoop}, nil
	case circuit.X:
		return op{kind: opFlip, q0: g.Qubits[0]}, nil
	case circuit.CX:
		return op{kind: opCX, q0: g.Qubits[0], q1: g.Qubits[1]}, nil
	case circuit.CZ:
		return op{kind: opCZ, q0: g.Qubits[0], q1: g.Qubits[1]}, nil
	case circuit.SWAP:
		return op{kind: opSwap, q0: g.Qubits[0], q1: g.Qubits[1]}, nil
	case circuit.CCX:
		return op{kind: opCCX, q0: g.Qubits[0], q1: g.Qubits[1], q2: g.Qubits[2]}, nil
	case circuit.CSWAP:
		return op{kind: opCSwap, q0: g.Qubits[0], q1: g.Qubits[1], q2: g.Qubits[2]}, nil
	}
	if d0, d1, ok := diagPhases(g); ok {
		return op{kind: opDiag1, q0: g.Qubits[0], d0: d0, d1: d1}, nil
	}
	if m, ok := mat1(g); ok {
		return op{kind: opDense1, class: denseClass(m), q0: g.Qubits[0], m: m}, nil
	}
	return op{}, fmt.Errorf("statevector: unsupported gate %s", g.Kind)
}

// mul2 returns b·a: the matrix of "apply a, then b".
func mul2(b, a [2][2]complex128) [2][2]complex128 {
	return [2][2]complex128{
		{b[0][0]*a[0][0] + b[0][1]*a[1][0], b[0][0]*a[0][1] + b[0][1]*a[1][1]},
		{b[1][0]*a[0][0] + b[1][1]*a[1][0], b[1][0]*a[0][1] + b[1][1]*a[1][1]},
	}
}

// pendingFusion accumulates a run of single-qubit gates on one qubit.
type pendingFusion struct {
	active bool
	count  int
	first  op               // the compiled op of the first gate (emitted verbatim for runs of one)
	m      [2][2]complex128 // product of the run so far
	diag   bool             // every gate in the run is diagonal
	d0, d1 complex128       // diagonal product (valid while diag)
}

// compileOps lowers a gate list to kernel ops. With fuse set, maximal runs
// of single-qubit gates on the same qubit — contiguous up to gates on
// disjoint qubits, which commute — collapse into one opDense1 (or one
// opDiag1 when the whole run is diagonal), and CX·D·CX sandwiches
// collapse to two-qubit diagonals (see fuseSandwiches). Runs of a single
// gate emit the gate's own fast-path op unchanged, so the unfused program
// is exactly the per-gate kernel sequence.
func compileOps(n int, gates []circuit.Gate, fuse bool) ([]op, error) {
	ops := make([]op, 0, len(gates))
	pend := make([]pendingFusion, n)
	flush := func(q int) {
		p := &pend[q]
		if !p.active {
			return
		}
		switch {
		case p.count == 1:
			ops = append(ops, p.first)
		case p.diag:
			ops = append(ops, op{kind: opDiag1, q0: q, d0: p.d0, d1: p.d1})
		default:
			ops = append(ops, op{kind: opDense1, class: denseClass(p.m), q0: q, m: p.m})
		}
		*p = pendingFusion{}
	}
	for _, g := range gates {
		if err := g.Validate(n); err != nil {
			return nil, err
		}
		o, err := gateOp(g)
		if err != nil {
			return nil, err
		}
		if o.kind == opNoop {
			// Barriers and measurements fence fusion on their qubits but
			// compile to nothing.
			for _, q := range g.Qubits {
				flush(q)
			}
			continue
		}
		if fuse && g.Kind.Arity() == 1 {
			q := g.Qubits[0]
			m, _ := mat1(g)
			d0, d1, isDiag := diagPhases(g)
			p := &pend[q]
			if !p.active {
				*p = pendingFusion{active: true, count: 1, first: o, m: m, diag: isDiag, d0: d0, d1: d1}
			} else {
				p.count++
				p.m = mul2(m, p.m)
				if p.diag && isDiag {
					p.d0 *= d0
					p.d1 *= d1
				} else {
					p.diag = false
				}
			}
			continue
		}
		for _, q := range g.Qubits {
			flush(q)
		}
		ops = append(ops, o)
	}
	for q := 0; q < n; q++ {
		flush(q)
	}
	if fuse {
		ops = fuseSandwiches(ops)
		ops = fuseDiagRuns(ops)
	}
	return ops, nil
}

// fuseSandwiches rewrites CX·D·CX patterns (same control/target, D a
// single-qubit diagonal) in one pass over the op stream:
//
//   - D on the target: the sandwich equals the two-qubit diagonal that
//     phases each basis state by d0 when the control and target bits
//     agree and d1 when they differ (the ZZ-interaction of QAOA cost
//     layers) — one multiplication per amplitude, float-identical to the
//     three-op sequence, at a third of the passes;
//   - D on the control: D commutes through CX, so the pair of CNOTs
//     cancels and only D remains.
func fuseSandwiches(ops []op) []op {
	out := ops[:0]
	for i := 0; i < len(ops); i++ {
		if i+2 < len(ops) &&
			ops[i].kind == opCX && ops[i+1].kind == opDiag1 && ops[i+2].kind == opCX &&
			ops[i].q0 == ops[i+2].q0 && ops[i].q1 == ops[i+2].q1 {
			d := ops[i+1]
			if d.q0 == ops[i].q1 {
				out = append(out, op{kind: opZZ, q0: ops[i].q0, q1: ops[i].q1, d0: d.d0, d1: d.d1})
				i += 2
				continue
			}
			if d.q0 == ops[i].q0 {
				out = append(out, d)
				i += 2
				continue
			}
		}
		out = append(out, ops[i])
	}
	return out
}

// diagGroupMax caps the involved-qubit count of a fused diagonal group:
// the phase table has 2^k entries, so 8 keeps it at 4KB — resident in L1
// while still collapsing a whole QAOA cost layer into a pass or two.
const diagGroupMax = 8

// diagOpMask reports the involved-qubit mask of a diagonal op.
func diagOpMask(o op) (uint64, bool) {
	switch o.kind {
	case opDiag1:
		return 1 << uint(o.q0), true
	case opCZ, opZZ:
		return 1<<uint(o.q0) | 1<<uint(o.q1), true
	default:
		return 0, false
	}
}

// opQubitMask returns the involved-qubit mask of any op.
func opQubitMask(o op) uint64 {
	switch o.kind {
	case opDense1, opDiag1, opFlip:
		return 1 << uint(o.q0)
	case opCX, opCZ, opZZ, opSwap:
		return 1<<uint(o.q0) | 1<<uint(o.q1)
	case opCCX, opCSwap:
		return 1<<uint(o.q0) | 1<<uint(o.q1) | 1<<uint(o.q2)
	case opDiagN:
		var m uint64
		for _, msk := range o.masks {
			m |= uint64(msk)
		}
		return m
	default:
		return 0
	}
}

// fuseDiagRuns merges runs of diagonal ops (diagonal matrices all
// commute) into opDiagN groups of at most diagGroupMax involved qubits:
// one table-driven pass applies the whole group with a single phase
// multiplication per amplitude. Non-diagonal ops on qubits disjoint from
// the open group commute with every member element-wise, so they hoist
// ahead of it — bitwise identical — which keeps a QAOA cost layer intact
// even though compilation interleaves it with mixer gates. A layer of n
// ring-edge diagonals collapses from n full-register sweeps to
// ⌈n/(diagGroupMax-1)⌉. Phases compose in the table (2^k entries) rather
// than per amplitude, so results sit within the fused pipeline's 1e-12
// contract of the sequential application.
func fuseDiagRuns(ops []op) []op {
	out := ops[:0]
	var group []op
	var qmask uint64
	flush := func() {
		switch {
		case len(group) == 0:
		case len(group) == 1:
			out = append(out, group[0])
		default:
			out = append(out, buildDiagN(group, qmask))
		}
		group = group[:0]
		qmask = 0
	}
	for _, o := range ops {
		if m, ok := diagOpMask(o); ok {
			if bits.OnesCount64(qmask|m) > diagGroupMax {
				flush()
			}
			qmask |= m
			group = append(group, o)
			continue
		}
		if opQubitMask(o)&qmask == 0 {
			out = append(out, o)
			continue
		}
		flush()
		out = append(out, o)
	}
	flush()
	return out
}

// buildDiagN materializes a diagonal group: per involved-bit combo c, the
// amplitude offset from the expanded base index and the composed phase.
func buildDiagN(group []op, qmask uint64) op {
	var masks []int
	for q := 0; q < 64; q++ {
		if qmask>>uint(q)&1 == 1 {
			masks = append(masks, 1<<uint(q))
		}
	}
	bitOf := func(q int) int {
		b := 0
		for i, m := range masks {
			if m == 1<<uint(q) {
				b = i
			}
		}
		return b
	}
	size := 1 << uint(len(masks))
	offs := make([]int, size)
	tbl := make([]complex128, size)
	for c := range tbl {
		tbl[c] = 1
		off := 0
		for b, m := range masks {
			if c>>uint(b)&1 == 1 {
				off += m
			}
		}
		offs[c] = off
	}
	for _, o := range group {
		switch o.kind {
		case opDiag1:
			b := bitOf(o.q0)
			for c := range tbl {
				if c>>uint(b)&1 == 1 {
					tbl[c] *= o.d1
				} else {
					tbl[c] *= o.d0
				}
			}
		case opCZ:
			ba, bb := bitOf(o.q0), bitOf(o.q1)
			for c := range tbl {
				if c>>uint(ba)&1 == 1 && c>>uint(bb)&1 == 1 {
					tbl[c] = -tbl[c]
				}
			}
		case opZZ:
			ba, bb := bitOf(o.q0), bitOf(o.q1)
			for c := range tbl {
				if c>>uint(ba)&1 == c>>uint(bb)&1 {
					tbl[c] *= o.d0
				} else {
					tbl[c] *= o.d1
				}
			}
		}
	}
	return op{kind: opDiagN, offs: offs, tbl: tbl, masks: masks}
}

// opSpace returns the size of the op's compressed index space (one index
// == one independent pair/element group).
func (s *State) opSpace(o op) int {
	dim := len(s.amp)
	switch o.kind {
	case opDense1, opDiag1, opFlip:
		return dim >> 1
	case opCX, opCZ, opZZ, opSwap:
		return dim >> 2
	case opCCX, opCSwap:
		return dim >> 3
	case opDiagN:
		return dim >> uint(len(o.masks))
	default:
		return 0
	}
}

// parMinSpace is the compressed-space size below which sharding never
// pays for the fan-out (auto mode only; explicit worker counts shard
// unconditionally so the equivalence tests cover every path).
const parMinSpace = 1 << 13

// resolveWorkers picks the shard count for a kernel over space indices.
func (s *State) resolveWorkers(space int) int {
	w := s.workers
	if w <= 0 {
		if space < parMinSpace {
			return 1
		}
		w = runtime.GOMAXPROCS(0)
	}
	if w > space {
		w = space
	}
	if w < 1 {
		w = 1
	}
	return w
}

// applyOp runs one kernel, sharded across workers above the threshold.
// Shards are contiguous ranges of the compressed index space, so no two
// shards ever touch the same amplitude.
//
// The sharded branch lives in applyOpPar: its fan-out closure captures
// the op, and were it written inline, escape analysis would move the op
// parameter to the heap for *every* call — one allocation per gate on
// the serial path that the trajectory sampler's zero-alloc pin forbids.
// The //qbeep:allocfree directive makes the gcfacts gate reject any
// refactor that merges the branch back in.
//
//qbeep:allocfree
func (s *State) applyOp(o op) {
	if o.kind == opNoop {
		return
	}
	space := s.opSpace(o)
	w := s.resolveWorkers(space)
	if w <= 1 {
		s.opRange(o, 0, space)
		return
	}
	s.applyOpPar(o, space, w)
}

// applyOpPar shards one kernel across w workers.
//
//go:noinline
func (s *State) applyOpPar(o op, space, w int) {
	chunk := (space + w - 1) / w
	// Kernel shards cannot fail; ForEach's error slot stays nil. The
	// state's run context (if any) parents the shard worker spans.
	_ = par.ForEachCtx(s.ctx, w, w, func(k int) error {
		lo := k * chunk
		hi := lo + chunk
		if hi > space {
			hi = space
		}
		if lo < hi {
			s.opRange(o, lo, hi)
		}
		return nil
	})
}

// opRange applies the kernel over compressed indices [lo, hi).
//
//qbeep:allocfree
func (s *State) opRange(o op, lo, hi int) {
	switch o.kind {
	case opDense1:
		s.dense1Range(o.q0, o.class, o.m, lo, hi)
	case opDiag1:
		s.diag1Range(o.q0, o.d0, o.d1, lo, hi)
	case opFlip:
		s.flipRange(o.q0, lo, hi)
	case opCX:
		s.cxRange(o.q0, o.q1, lo, hi)
	case opCZ:
		s.czRange(o.q0, o.q1, lo, hi)
	case opZZ:
		s.zzRange(o.q0, o.q1, o.d0, o.d1, lo, hi)
	case opSwap:
		s.swapRange(o.q0, o.q1, lo, hi)
	case opCCX:
		s.ccxRange(o.q0, o.q1, o.q2, lo, hi)
	case opCSwap:
		s.cswapRange(o.q0, o.q1, o.q2, lo, hi)
	case opDiagN:
		s.diagNRange(o, lo, hi)
	}
}

// diagNRange applies a fused diagonal group: for each compressed index
// the base expands through every involved qubit position, then the 2^k
// combos multiply by their composed phase at base+offset — one complex
// multiplication per amplitude regardless of how many diagonal gates
// the group absorbed. Combos at consecutive offsets touch consecutive
// memory when the involved qubits sit low, which they do for the
// nearest-neighbour interactions this fusion targets.
//
//qbeep:allocfree
func (s *State) diagNRange(o op, lo, hi int) {
	amp := s.amp
	offs := o.offs
	tbl := o.tbl
	tbl = tbl[:len(offs)]
	for t := lo; t < hi; t++ {
		base := t
		for _, m := range o.masks {
			base = insertZero(base, m)
		}
		for c, off := range offs {
			amp[base+off] *= tbl[c]
		}
	}
}

// insertZero expands a compressed index by inserting a 0 bit at the mask
// position: bits below the mask stay, bits at and above shift left.
func insertZero(t, mask int) int {
	return (t&^(mask-1))<<1 | t&(mask-1)
}

// insert2 expands through two mask positions (mLo < mHi, applied low
// first so the high insertion sees the already-widened index).
func insert2(t, mLo, mHi int) int {
	return insertZero(insertZero(t, mLo), mHi)
}

// sort2 returns the two masks in ascending order.
func sort2(a, b int) (int, int) {
	if a < b {
		return a, b
	}
	return b, a
}

// runEnd bounds a contiguous run: from t to the end of its mask block or
// hi, whichever is first.
func runEnd(t, mask, hi int) int {
	end := t + mask - t&(mask-1)
	if end > hi {
		end = hi
	}
	return end
}

// smallRun is the low-mask threshold below which kernels index directly
// instead of carving per-run slices: a mask of 1 makes every contiguous
// run a single element, so the slice-cursor prologue would dominate.
const smallRun = 16

// dense1Range applies a 2×2 matrix to pairs lo..hi of qubit q's pair
// space, walking contiguous runs within each 2^q block through sliced
// cursors (bounds checks hoist out of the inner loops). The structure
// classes cut the generic 16-multiply complex arithmetic down to 8 real
// multiplies for real and axial matrices; results equal the generic path
// exactly up to the sign of zero.
//
//qbeep:allocfree
func (s *State) dense1Range(q int, class uint8, m [2][2]complex128, lo, hi int) {
	mask := 1 << uint(q)
	amp := s.amp
	if mask < smallRun {
		switch class {
		case classReal:
			m00, m01 := real(m[0][0]), real(m[0][1])
			m10, m11 := real(m[1][0]), real(m[1][1])
			for t := lo; t < hi; t++ {
				i := insertZero(t, mask)
				j := i + mask
				a0, a1 := amp[i], amp[j]
				amp[i] = complex(m00*real(a0)+m01*real(a1), m00*imag(a0)+m01*imag(a1))
				amp[j] = complex(m10*real(a0)+m11*real(a1), m10*imag(a0)+m11*imag(a1))
			}
		case classAxial:
			al0, al1 := real(m[0][0]), real(m[1][1])
			be0, be1 := imag(m[0][1]), imag(m[1][0])
			for t := lo; t < hi; t++ {
				i := insertZero(t, mask)
				j := i + mask
				a0, a1 := amp[i], amp[j]
				amp[i] = complex(al0*real(a0)-be0*imag(a1), al0*imag(a0)+be0*real(a1))
				amp[j] = complex(al1*real(a1)-be1*imag(a0), al1*imag(a1)+be1*real(a0))
			}
		default:
			m00, m01, m10, m11 := m[0][0], m[0][1], m[1][0], m[1][1]
			for t := lo; t < hi; t++ {
				i := insertZero(t, mask)
				j := i + mask
				a0, a1 := amp[i], amp[j]
				amp[i] = m00*a0 + m01*a1
				amp[j] = m10*a0 + m11*a1
			}
		}
		return
	}
	for t := lo; t < hi; {
		end := runEnd(t, mask, hi)
		i := insertZero(t, mask)
		run := end - t
		a := amp[i : i+run]
		b := amp[i+mask : i+mask+run]
		b = b[:len(a)]
		switch class {
		case classReal:
			m00, m01 := real(m[0][0]), real(m[0][1])
			m10, m11 := real(m[1][0]), real(m[1][1])
			for k := range a {
				a0, a1 := a[k], b[k]
				a[k] = complex(m00*real(a0)+m01*real(a1), m00*imag(a0)+m01*imag(a1))
				b[k] = complex(m10*real(a0)+m11*real(a1), m10*imag(a0)+m11*imag(a1))
			}
		case classAxial:
			al0, al1 := real(m[0][0]), real(m[1][1])
			be0, be1 := imag(m[0][1]), imag(m[1][0])
			for k := range a {
				a0, a1 := a[k], b[k]
				a[k] = complex(al0*real(a0)-be0*imag(a1), al0*imag(a0)+be0*real(a1))
				b[k] = complex(al1*real(a1)-be1*imag(a0), al1*imag(a1)+be1*real(a0))
			}
		default:
			m00, m01, m10, m11 := m[0][0], m[0][1], m[1][0], m[1][1]
			for k := range a {
				a0, a1 := a[k], b[k]
				a[k] = m00*a0 + m01*a1
				b[k] = m10*a0 + m11*a1
			}
		}
		t = end
	}
}

// diag1Range multiplies the two halves of each pair by d0/d1. A d0 of
// exactly 1 skips the |0⟩ half entirely, mirroring the naive phase loop
// bit-for-bit.
//
//qbeep:allocfree
func (s *State) diag1Range(q int, d0, d1 complex128, lo, hi int) {
	mask := 1 << uint(q)
	amp := s.amp
	skip0 := d0 == 1 //qbeep:allow-floatcmp exact sentinel: compiled diagonals store a literal 1 for the identity half
	if mask < smallRun {
		if skip0 {
			for t := lo; t < hi; t++ {
				amp[insertZero(t, mask)+mask] *= d1
			}
		} else {
			for t := lo; t < hi; t++ {
				i := insertZero(t, mask)
				amp[i] *= d0
				amp[i+mask] *= d1
			}
		}
		return
	}
	for t := lo; t < hi; {
		end := runEnd(t, mask, hi)
		i := insertZero(t, mask)
		run := end - t
		b := amp[i+mask : i+mask+run]
		if skip0 {
			for k := range b {
				b[k] *= d1
			}
		} else {
			a := amp[i : i+run]
			a = a[:len(b)]
			for k := range b {
				a[k] *= d0
				b[k] *= d1
			}
		}
		t = end
	}
}

// flipRange swaps the halves of each pair (Pauli X: a pure permutation).
//
//qbeep:allocfree
func (s *State) flipRange(q int, lo, hi int) {
	mask := 1 << uint(q)
	amp := s.amp
	if mask < smallRun {
		for t := lo; t < hi; t++ {
			i := insertZero(t, mask)
			j := i + mask
			amp[i], amp[j] = amp[j], amp[i]
		}
		return
	}
	for t := lo; t < hi; {
		end := runEnd(t, mask, hi)
		i := insertZero(t, mask)
		run := end - t
		a := amp[i : i+run]
		b := amp[i+mask : i+mask+run]
		b = b[:len(a)]
		for k := range a {
			a[k], b[k] = b[k], a[k]
		}
		t = end
	}
}

// cxRange swaps target pairs where the control is set: compressed space
// has zeros at both qubit positions, control forced on.
//
//qbeep:allocfree
func (s *State) cxRange(ctrl, tgt, lo, hi int) {
	cm := 1 << uint(ctrl)
	tm := 1 << uint(tgt)
	mLo, mHi := sort2(cm, tm)
	amp := s.amp
	if mLo < smallRun {
		for t := lo; t < hi; t++ {
			i := insert2(t, mLo, mHi) | cm
			j := i + tm
			amp[i], amp[j] = amp[j], amp[i]
		}
		return
	}
	for t := lo; t < hi; {
		end := runEnd(t, mLo, hi)
		i := insert2(t, mLo, mHi) | cm
		run := end - t
		a := amp[i : i+run]
		b := amp[i+tm : i+tm+run]
		b = b[:len(a)]
		for k := range a {
			a[k], b[k] = b[k], a[k]
		}
		t = end
	}
}

// czRange negates amplitudes where both qubits are set.
//
//qbeep:allocfree
func (s *State) czRange(a, b, lo, hi int) {
	am := 1 << uint(a)
	bm := 1 << uint(b)
	mLo, mHi := sort2(am, bm)
	amp := s.amp
	if mLo < smallRun {
		for t := lo; t < hi; t++ {
			i := insert2(t, mLo, mHi) | am | bm
			amp[i] = -amp[i]
		}
		return
	}
	for t := lo; t < hi; {
		end := runEnd(t, mLo, hi)
		i := insert2(t, mLo, mHi) | am | bm
		run := end - t
		v := amp[i : i+run]
		for k := range v {
			v[k] = -v[k]
		}
		t = end
	}
}

// zzRange applies the fused two-qubit diagonal: d0 where the two qubit
// bits agree, d1 where they differ — four strided streams per run, one
// multiplication per amplitude.
//
//qbeep:allocfree
func (s *State) zzRange(qa, qb int, d0, d1 complex128, lo, hi int) {
	am := 1 << uint(qa)
	bm := 1 << uint(qb)
	mLo, mHi := sort2(am, bm)
	amp := s.amp
	if mLo < smallRun {
		for t := lo; t < hi; t++ {
			base := insert2(t, mLo, mHi)
			amp[base] *= d0
			amp[base+am+bm] *= d0
			amp[base+am] *= d1
			amp[base+bm] *= d1
		}
		return
	}
	for t := lo; t < hi; {
		end := runEnd(t, mLo, hi)
		base := insert2(t, mLo, mHi)
		run := end - t
		p00 := amp[base : base+run]
		p01 := amp[base+am : base+am+run]
		p10 := amp[base+bm : base+bm+run]
		p11 := amp[base+am+bm : base+am+bm+run]
		p01 = p01[:len(p00)]
		p10 = p10[:len(p00)]
		p11 = p11[:len(p00)]
		for k := range p00 {
			p00[k] *= d0
			p11[k] *= d0
			p01[k] *= d1
			p10[k] *= d1
		}
		t = end
	}
}

// swapRange exchanges the |01⟩ and |10⟩ components of each qubit pair.
//
//qbeep:allocfree
func (s *State) swapRange(a, b, lo, hi int) {
	am := 1 << uint(a)
	bm := 1 << uint(b)
	mLo, mHi := sort2(am, bm)
	amp := s.amp
	if mLo < smallRun {
		for t := lo; t < hi; t++ {
			base := insert2(t, mLo, mHi)
			i := base + am
			j := base + bm
			amp[i], amp[j] = amp[j], amp[i]
		}
		return
	}
	for t := lo; t < hi; {
		end := runEnd(t, mLo, hi)
		base := insert2(t, mLo, mHi)
		run := end - t
		p := amp[base+am : base+am+run]
		q := amp[base+bm : base+bm+run]
		q = q[:len(p)]
		for k := range p {
			p[k], q[k] = q[k], p[k]
		}
		t = end
	}
}

// insert3 expands through three ascending mask positions.
func insert3(t, m0, m1, m2 int) int {
	return insertZero(insert2(t, m0, m1), m2)
}

// sort3 returns the three masks ascending.
func sort3(a, b, c int) (int, int, int) {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	return a, b, c
}

// ccxRange swaps target pairs where both controls are set.
//
//qbeep:allocfree
func (s *State) ccxRange(c1, c2, tgt, lo, hi int) {
	m1 := 1 << uint(c1)
	m2 := 1 << uint(c2)
	tm := 1 << uint(tgt)
	s0, s1, s2 := sort3(m1, m2, tm)
	amp := s.amp
	for t := lo; t < hi; t++ {
		i := insert3(t, s0, s1, s2) | m1 | m2
		j := i | tm
		amp[i], amp[j] = amp[j], amp[i]
	}
}

// cswapRange exchanges the two swap qubits where the control is set.
//
//qbeep:allocfree
func (s *State) cswapRange(ctrl, a, b, lo, hi int) {
	cm := 1 << uint(ctrl)
	am := 1 << uint(a)
	bm := 1 << uint(b)
	s0, s1, s2 := sort3(cm, am, bm)
	amp := s.amp
	for t := lo; t < hi; t++ {
		base := insert3(t, s0, s1, s2) | cm
		i := base | am
		j := base | bm
		amp[i], amp[j] = amp[j], amp[i]
	}
}
