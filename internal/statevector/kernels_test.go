package statevector

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"qbeep/internal/bitstring"
	"qbeep/internal/circuit"
	"qbeep/internal/mathx"
)

// workerMatrix returns the worker counts the equivalence tests sweep:
// {1, 2, 4, GOMAXPROCS} plus any extras from QBEEP_TEST_WORKERS (a
// comma-separated list, set by the Makefile race target) — deduplicated.
func workerMatrix(t *testing.T) []int {
	t.Helper()
	counts := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	if env := os.Getenv("QBEEP_TEST_WORKERS"); env != "" {
		for _, f := range strings.Split(env, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || v < 1 {
				t.Fatalf("QBEEP_TEST_WORKERS entry %q: %v", f, err)
			}
			counts = append(counts, v)
		}
	}
	seen := map[int]bool{}
	out := counts[:0]
	for _, w := range counts {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

// allKinds is every unitary gate kind the simulator supports, used to
// build randomized circuits that exercise every kernel.
var allKinds = []circuit.Kind{
	circuit.I, circuit.X, circuit.Y, circuit.Z, circuit.H,
	circuit.S, circuit.Sdg, circuit.T, circuit.Tdg, circuit.SX,
	circuit.RX, circuit.RY, circuit.RZ, circuit.U3,
	circuit.CX, circuit.CZ, circuit.SWAP, circuit.CCX, circuit.CSWAP,
}

// randomCircuit draws `length` gates uniformly over the kinds that fit
// width n, with uniform rotation parameters and distinct random qubits.
func randomCircuit(n, length int, rng *mathx.RNG) *circuit.Circuit {
	c := circuit.New(fmt.Sprintf("rand%d", n), n)
	for len(c.Gates) < length {
		k := allKinds[rng.Intn(len(allKinds))]
		a := k.Arity()
		if a > n {
			continue
		}
		qs := rng.Perm(n)[:a]
		var params []float64
		for p := 0; p < k.ParamCount(); p++ {
			params = append(params, rng.Uniform(-2*math.Pi, 2*math.Pi))
		}
		c.Append(circuit.Gate{Kind: k, Qubits: qs, Params: params})
	}
	return c
}

// naiveRunFrom evolves the circuit through the retained full-scan oracle.
func naiveRunFrom(t *testing.T, c *circuit.Circuit, init bitstring.BitString) *State {
	t.Helper()
	s, err := NewBasis(c.N, init)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range c.Gates {
		if err := s.naiveApply(g); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// TestKernelMatchesOracleBitwise pins the tentpole contract: the unfused
// kernel engine is bit-for-bit identical to the naiveApply oracle for
// every gate kind, width 1-12, and any worker count.
func TestKernelMatchesOracleBitwise(t *testing.T) {
	workers := workerMatrix(t)
	for n := 1; n <= 12; n++ {
		for trial := 0; trial < 3; trial++ {
			rng := mathx.NewRNG(uint64(1000*n + trial))
			c := randomCircuit(n, 30+3*n, rng)
			init := bitstring.BitString(rng.Uint64() & (1<<uint(n) - 1))
			want := naiveRunFrom(t, c, init)
			for _, w := range workers {
				got, err := RunConfigured(c, init, RunConfig{Workers: w, NoFuse: true})
				if err != nil {
					t.Fatalf("n=%d trial=%d workers=%d: %v", n, trial, w, err)
				}
				for i := range want.amp {
					if got.amp[i] != want.amp[i] {
						t.Fatalf("n=%d trial=%d workers=%d amp[%d]: kernel %v oracle %v",
							n, trial, w, i, got.amp[i], want.amp[i])
					}
				}
			}
		}
	}
}

// TestApplyMatchesOracleBitwise covers the public single-gate path (used
// by the trajectory sampler) against the oracle for each kind in
// isolation, from a random superposition so no amplitude is trivially 0.
func TestApplyMatchesOracleBitwise(t *testing.T) {
	const n = 5
	rng := mathx.NewRNG(77)
	prep := randomCircuit(n, 25, rng)
	for _, k := range allKinds {
		qs := rng.Perm(n)[:k.Arity()]
		var params []float64
		for p := 0; p < k.ParamCount(); p++ {
			params = append(params, rng.Uniform(-3, 3))
		}
		g := circuit.Gate{Kind: k, Qubits: qs, Params: params}
		want := naiveRunFrom(t, prep, 0)
		if err := want.naiveApply(g); err != nil {
			t.Fatal(err)
		}
		got := naiveRunFrom(t, prep, 0)
		if err := got.Apply(g); err != nil {
			t.Fatal(err)
		}
		for i := range want.amp {
			if got.amp[i] != want.amp[i] {
				t.Fatalf("%s amp[%d]: kernel %v oracle %v", g, i, got.amp[i], want.amp[i])
			}
		}
	}
}

// TestFusedMatchesOracleTolerance pins the fusion contract: the fused
// engine agrees with the oracle within 1e-12 per amplitude for random
// circuits across widths and worker counts.
func TestFusedMatchesOracleTolerance(t *testing.T) {
	workers := workerMatrix(t)
	for n := 1; n <= 12; n++ {
		for trial := 0; trial < 3; trial++ {
			rng := mathx.NewRNG(uint64(9000*n + trial))
			c := randomCircuit(n, 40+3*n, rng)
			want := naiveRunFrom(t, c, 0)
			for _, w := range workers {
				got, err := RunConfigured(c, 0, RunConfig{Workers: w})
				if err != nil {
					t.Fatalf("n=%d trial=%d workers=%d: %v", n, trial, w, err)
				}
				for i := range want.amp {
					dr := real(got.amp[i]) - real(want.amp[i])
					di := imag(got.amp[i]) - imag(want.amp[i])
					if math.Abs(dr) > 1e-12 || math.Abs(di) > 1e-12 {
						t.Fatalf("n=%d trial=%d workers=%d amp[%d]: fused %v oracle %v",
							n, trial, w, i, got.amp[i], want.amp[i])
					}
				}
			}
		}
	}
}

// TestFusionCollapsesRuns inspects the compiled program: a run of dense
// single-qubit gates on one qubit becomes one op, a purely diagonal run
// becomes one diagonal op, and gates on other qubits don't fence fusion.
func TestFusionCollapsesRuns(t *testing.T) {
	c := circuit.New("fuse", 3).
		H(0).T(0).H(0). // dense run on qubit 0...
		X(1).           // ...interleaved with a disjoint gate
		Z(2).S(2).T(2). // diagonal run on qubit 2
		CX(0, 1)        // fences qubits 0 and 1
	ops, err := compileOps(3, c.Gates, true)
	if err != nil {
		t.Fatal(err)
	}
	// Expect: fused dense q0, flip q1, CX, fused diag q2 (flushed at end).
	var kinds []opKind
	for _, o := range ops {
		kinds = append(kinds, o.kind)
	}
	want := []opKind{opDense1, opFlip, opCX, opDiag1}
	if len(kinds) != len(want) {
		t.Fatalf("ops %v want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("op[%d] = %v want %v (all: %v)", i, kinds[i], want[i], kinds)
		}
	}
	// Unfused compilation keeps one op per non-identity gate.
	unfused, err := compileOps(3, c.Gates, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(unfused) != len(c.Gates) {
		t.Fatalf("unfused ops %d want %d", len(unfused), len(c.Gates))
	}
}

// TestQAOAFusionMatchesOracle drives the deep-fusion pipeline end to end
// on the benchmark workload shape: CX·RZ·CX sandwiches collapse to
// two-qubit diagonals, those group into table-driven diagonal passes
// with mixer gates hoisted across them, and the result still agrees with
// the gate-by-gate oracle within 1e-12 for every worker count.
func TestQAOAFusionMatchesOracle(t *testing.T) {
	workers := workerMatrix(t)
	for _, n := range []int{4, 9, 12} {
		c := qaoaCircuit(n, 2)
		want := naiveRunFrom(t, c, 0)
		for _, w := range workers {
			got, err := RunConfigured(c, 0, RunConfig{Workers: w})
			if err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, w, err)
			}
			for i := range want.amp {
				dr := real(got.amp[i]) - real(want.amp[i])
				di := imag(got.amp[i]) - imag(want.amp[i])
				if math.Abs(dr) > 1e-12 || math.Abs(di) > 1e-12 {
					t.Fatalf("n=%d workers=%d amp[%d]: fused %v oracle %v",
						n, w, i, got.amp[i], want.amp[i])
				}
			}
		}
	}
}

// TestDiagRunFusionCollapsesCostLayer inspects the compiled benchmark
// program: every CX·RZ·CX sandwich is absorbed — no CX, ZZ, or stray
// diagonal ops survive — and each round's 14-edge cost layer compiles to
// exactly two table-driven diagonal passes.
func TestDiagRunFusionCollapsesCostLayer(t *testing.T) {
	c := qaoaCircuit(14, 3)
	ops, err := compileOps(c.N, c.Gates, true)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[opKind]int{}
	for _, o := range ops {
		counts[o.kind]++
	}
	if counts[opCX] != 0 || counts[opZZ] != 0 || counts[opDiag1] != 0 {
		t.Fatalf("cost layer not fully fused: %d CX, %d ZZ, %d diag ops remain",
			counts[opCX], counts[opZZ], counts[opDiag1])
	}
	if counts[opDiagN] != 6 {
		t.Fatalf("diagonal groups = %d, want 2 per round × 3 rounds", counts[opDiagN])
	}
	if counts[opDense1] != 56 {
		t.Fatalf("dense ops = %d, want 14 H + 42 RX", counts[opDense1])
	}
}

// TestRunConfiguredMatchesRun pins that the default Run is the fused
// auto-worker configuration.
func TestRunConfiguredMatchesRun(t *testing.T) {
	rng := mathx.NewRNG(5)
	c := randomCircuit(6, 50, rng)
	a, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunConfigured(c, 0, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.amp {
		if a.amp[i] != b.amp[i] {
			t.Fatalf("amp[%d]: %v vs %v", i, a.amp[i], b.amp[i])
		}
	}
}

// TestReset pins in-place reinitialization: after evolving, Reset returns
// the buffer to an exact basis state without reallocating.
func TestReset(t *testing.T) {
	s := mustRun(t, circuit.New("h", 3).H(0).CX(0, 1).T(2))
	buf := &s.amp[0]
	if err := s.Reset(0b101); err != nil {
		t.Fatal(err)
	}
	if &s.amp[0] != buf {
		t.Error("Reset reallocated the amplitude buffer")
	}
	for i := range s.amp {
		want := complex128(0)
		if i == 0b101 {
			want = 1
		}
		if s.amp[i] != want {
			t.Fatalf("amp[%d] = %v after Reset", i, s.amp[i])
		}
	}
	if err := s.Reset(8); err == nil {
		t.Error("out-of-range Reset should error")
	}
}

// TestProbabilitiesInto pins the zero-copy contract: a big-enough dst is
// reused, a short one is replaced, and values match Probabilities.
func TestProbabilitiesInto(t *testing.T) {
	s := mustRun(t, circuit.New("bell", 2).H(0).CX(0, 1))
	want := s.Probabilities()
	scratch := make([]float64, 4)
	got := s.ProbabilitiesInto(scratch)
	if &got[0] != &scratch[0] {
		t.Error("sufficient dst was not reused")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("p[%d] = %v want %v", i, got[i], want[i])
		}
	}
	if short := s.ProbabilitiesInto(make([]float64, 1)); len(short) != 4 {
		t.Fatalf("short dst: len %d want 4", len(short))
	}
}

// TestDistPreSized pins that the pre-sized Dist matches the probability
// vector (same support, same mass).
func TestDistPreSized(t *testing.T) {
	rng := mathx.NewRNG(11)
	s := mustRun(t, randomCircuit(8, 60, rng))
	d := s.Dist()
	support := 0
	for i, p := range s.Probabilities() {
		if p > 1e-12 {
			support++
			if d.Count(bitstring.BitString(i)) != p {
				t.Fatalf("dist[%d] = %v want %v", i, d.Count(bitstring.BitString(i)), p)
			}
		}
	}
	if d.Support() != support {
		t.Fatalf("support %d want %d", d.Support(), support)
	}
}

// TestSampleMatchesSeedStream pins that the restructured Sample draws the
// same outcomes as the seed implementation (cumulative binary search with
// identical RNG consumption).
func TestSampleMatchesSeedStream(t *testing.T) {
	s := mustRun(t, circuit.New("ghz", 6).H(0).CX(0, 1).CX(1, 2).CX(2, 3).CX(3, 4).CX(4, 5))
	// Seed-repo reference: fresh probability + cumulative vectors.
	ref := func(shots int, rng *mathx.RNG) *bitstring.Dist {
		p := s.Probabilities()
		cum := make([]float64, len(p))
		var acc float64
		for i, v := range p {
			acc += v
			cum[i] = acc
		}
		d := bitstring.NewDist(s.n)
		for i := 0; i < shots; i++ {
			u := rng.Float64() * acc
			lo, hi := 0, len(cum)-1
			for lo < hi {
				mid := (lo + hi) / 2
				if cum[mid] < u {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			d.Add(bitstring.BitString(lo), 1)
		}
		return d
	}
	want := ref(500, mathx.NewRNG(42))
	got := s.Sample(500, mathx.NewRNG(42))
	for _, v := range want.Outcomes() {
		if got.Count(v) != want.Count(v) {
			t.Fatalf("count[%v] = %v want %v", v, got.Count(v), want.Count(v))
		}
	}
	if got.Support() != want.Support() {
		t.Fatalf("support %d want %d", got.Support(), want.Support())
	}
}
