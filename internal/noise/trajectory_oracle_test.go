package noise

import (
	"qbeep/internal/bitstring"
	"qbeep/internal/circuit"
	"qbeep/internal/mathx"
	"qbeep/internal/statevector"
)

// samplePerGateOracle is the retained reference implementation of the
// trajectory sampler: per-gate Apply with a freshly built Gate per Pauli
// injection, exactly as the pre-replay code path worked. It consumes the
// caller's generator and per-shot streams in the same order as
// TrajectorySampler.runShots, so Sample must reproduce its counts
// bit-for-bit — the equivalence bar for the compiled-replay rewrite.
// It is also the slow side of the trajectory_replay_speedup benchparse
// ratio (BenchmarkTrajectoryPerGate).
func samplePerGateOracle(ts *TrajectorySampler, c *circuit.Circuit, init bitstring.BitString, shots int, rng *mathx.RNG) (*bitstring.Dist, error) {
	if err := ts.checkRequest(c, init, shots); err != nil {
		return nil, err
	}
	base := rng.Uint64()
	counts := bitstring.NewDist(c.N)
	st, err := statevector.New(c.N)
	if err != nil {
		return nil, err
	}
	st.SetWorkers(1)
	var probs []float64
	for s := 0; s < shots; s++ {
		srng := mathx.NewStream(base, uint64(s))
		if err := st.Reset(init); err != nil {
			return nil, err
		}
		for _, g := range c.Gates {
			if err := st.Apply(g); err != nil {
				return nil, err
			}
			if !g.Kind.IsUnitary() {
				continue
			}
			p := ts.err1q
			if len(g.Qubits) >= 2 {
				p = ts.err2q
			}
			if srng.Float64() < p {
				q := g.Qubits[srng.Intn(len(g.Qubits))]
				inj := circuit.Gate{Kind: pauliKinds[srng.Intn(3)], Qubits: []int{q}}
				if err := st.Apply(inj); err != nil {
					return nil, err
				}
			}
		}
		probs = st.ProbabilitiesInto(probs)
		out := sampleProbs(probs, srng)
		for q := 0; q < c.N; q++ {
			if srng.Float64() < ts.readout {
				out = out.FlipBit(q)
			}
		}
		counts.Add(out, 1)
	}
	return counts, nil
}
