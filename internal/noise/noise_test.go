package noise

import (
	"math"
	"testing"

	"qbeep/internal/bitstring"
	"qbeep/internal/circuit"
	"qbeep/internal/device"
	"qbeep/internal/mathx"
	"qbeep/internal/transpile"
)

func testBackend(t testing.TB) *device.Backend {
	t.Helper()
	b, err := device.ByName("eldorado")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func ghz(n int) *circuit.Circuit {
	c := circuit.New("ghz", n).H(0)
	for q := 0; q+1 < n; q++ {
		c.CX(q, q+1)
	}
	return c.MeasureAll()
}

func TestNewExecutorValidation(t *testing.T) {
	if _, err := NewExecutor(nil, DefaultModel()); err == nil {
		t.Error("nil backend should error")
	}
	b := testBackend(t)
	if _, err := NewExecutor(b, DefaultModel()); err != nil {
		t.Fatal(err)
	}
}

func TestExecuteArgs(t *testing.T) {
	b := testBackend(t)
	e, _ := NewExecutor(b, DefaultModel())
	if _, err := e.Execute(ghz(3), 0, mathx.NewRNG(1)); err == nil {
		t.Error("zero shots should error")
	}
	wide := circuit.New("wide", 30).H(0)
	if _, err := e.Execute(wide, 10, mathx.NewRNG(1)); err == nil {
		t.Error("over-wide circuit should error")
	}
}

func TestNoiselessModelIsIdeal(t *testing.T) {
	b := testBackend(t)
	e, _ := NewExecutor(b, Model{}) // all channels off
	run, err := e.Execute(ghz(4), 4000, mathx.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	// Only 0000 and 1111 can appear.
	for _, o := range run.Counts.Outcomes() {
		if o != 0 && o != 0b1111 {
			t.Errorf("noiseless run produced %04b", o)
		}
	}
	if math.Abs(run.Counts.Prob(0)-0.5) > 0.05 {
		t.Errorf("prob(0000) = %v", run.Counts.Prob(0))
	}
	if run.Rates.TotalLambda() != 0 {
		t.Errorf("noiseless λ = %v", run.Rates.TotalLambda())
	}
}

func TestDefaultModelInjectsErrors(t *testing.T) {
	b := testBackend(t)
	e, _ := NewExecutor(b, DefaultModel())
	run, err := e.Execute(ghz(5), 4096, mathx.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if run.Counts.Support() <= 2 {
		t.Errorf("support %d: expected error strings beyond the GHZ pair", run.Counts.Support())
	}
	if run.Rates.TotalLambda() <= 0 {
		t.Error("λ should be positive")
	}
	fid := bitstring.Fidelity(run.Ideal, run.Counts.Normalized(1))
	if fid >= 1 || fid <= 0 {
		t.Errorf("fidelity %v outside (0,1)", fid)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	b := testBackend(t)
	e, _ := NewExecutor(b, DefaultModel())
	r1, err := e.Execute(ghz(4), 512, mathx.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := e.Execute(ghz(4), 512, mathx.NewRNG(7))
	if bitstring.TVD(r1.Counts, r2.Counts) != 0 {
		t.Error("same seed produced different counts")
	}
}

func TestRatesComposition(t *testing.T) {
	b := testBackend(t)
	c := ghz(4)
	res, err := transpile.Transpile(c, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Rates(res, b, DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if full.Gate <= 0 || full.T1 <= 0 || full.T2 <= 0 || full.Readout <= 0 || full.Burst <= 0 {
		t.Errorf("all channels should contribute: %+v", full)
	}
	gatesOnly, _ := Rates(res, b, Model{GateErrors: true})
	if gatesOnly.T1 != 0 || gatesOnly.Readout != 0 || gatesOnly.Burst != 0 {
		t.Error("disabled channels should not contribute")
	}
	if math.Abs(gatesOnly.Gate-full.Gate) > 1e-15 {
		t.Error("gate rate should not depend on other channels")
	}
	if _, err := Rates(nil, b, DefaultModel()); err == nil {
		t.Error("nil result should error")
	}
}

func TestLambdaGrowsWithCircuitSize(t *testing.T) {
	b := testBackend(t)
	e, _ := NewExecutor(b, DefaultModel())
	small, err := e.Execute(ghz(3), 64, mathx.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	// A much deeper circuit: repeat entangling layers.
	deep := circuit.New("deep", 3)
	for rep := 0; rep < 10; rep++ {
		deep.H(0).CX(0, 1).CX(1, 2).CX(0, 1)
	}
	deep.MeasureAll()
	big, err := e.Execute(deep, 64, mathx.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if big.Rates.TotalLambda() <= small.Rates.TotalLambda() {
		t.Errorf("λ should grow with depth: %v vs %v",
			big.Rates.TotalLambda(), small.Rates.TotalLambda())
	}
}

func TestEHDGrowsWithGateCountUnderBursts(t *testing.T) {
	// The core phenomenon: expected Hamming distance of errors increases
	// with circuit complexity under the burst model.
	b := testBackend(t)
	e, _ := NewExecutor(b, DefaultModel())
	rng := mathx.NewRNG(11)

	ehdAtDepth := func(reps int) float64 {
		c := circuit.New("x-chain", 6)
		// Identity-equivalent payload: pairs of X cancel logically but the
		// transpiler keeps them if separated by barriers.
		for r := 0; r < reps; r++ {
			for q := 0; q < 6; q++ {
				c.X(q)
			}
			c.Barrier()
			for q := 0; q < 6; q++ {
				c.X(q)
			}
			c.Barrier()
		}
		c.MeasureAll()
		run, err := e.Execute(c, 2048, rng)
		if err != nil {
			t.Fatal(err)
		}
		return run.Counts.ExpectedHamming(0) // ideal output is 000000
	}
	shallow := ehdAtDepth(2)
	deep := ehdAtDepth(60)
	if deep <= shallow {
		t.Errorf("EHD should grow with depth: shallow=%v deep=%v", shallow, deep)
	}
}

func TestMarkovianStaysLocal(t *testing.T) {
	// Negative control: without bursts, errors stay near the true output
	// even for deep circuits (EHD well below the burst model's).
	b := testBackend(t)
	rng := mathx.NewRNG(13)
	deep := circuit.New("deep", 6)
	for r := 0; r < 40; r++ {
		for q := 0; q < 6; q++ {
			deep.X(q)
		}
		deep.Barrier()
		for q := 0; q < 6; q++ {
			deep.X(q)
		}
		deep.Barrier()
	}
	deep.MeasureAll()

	markov, _ := NewExecutor(b, MarkovianModel())
	burst, _ := NewExecutor(b, DefaultModel())
	rm, err := markov.Execute(deep, 2048, rng)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := burst.Execute(deep, 2048, rng)
	if err != nil {
		t.Fatal(err)
	}
	if rm.Counts.ExpectedHamming(0) >= rb.Counts.ExpectedHamming(0) {
		t.Errorf("markovian EHD %v should be below burst EHD %v",
			rm.Counts.ExpectedHamming(0), rb.Counts.ExpectedHamming(0))
	}
}

func TestT1DecayIsDirectional(t *testing.T) {
	// Prepare |111111⟩ on a decoherence-only model with an artificially
	// long schedule: decayed bits only go 1 -> 0.
	b := testBackend(t)
	e, _ := NewExecutor(b, Model{Decoherence: true})
	c := circuit.New("ones", 6)
	for q := 0; q < 6; q++ {
		c.X(q)
	}
	// Pad depth to accumulate schedule time.
	for r := 0; r < 50; r++ {
		for q := 0; q < 6; q++ {
			c.RZ(0.1, q)
		}
		c.Barrier()
	}
	c.MeasureAll()
	run, err := e.Execute(c, 4096, mathx.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	ones := bitstring.BitString(0b111111)
	if run.Counts.Prob(ones) > 0.9999 {
		t.Skip("schedule too short to observe decay")
	}
	// Weight of observed outcomes should never exceed 6 and trend down;
	// outcomes heavier than the ideal can only come from dephasing flips,
	// which move mass both ways — but pure decay cannot add weight.
	for _, o := range run.Counts.Outcomes() {
		if o.Weight() > 6 {
			t.Fatalf("impossible outcome %b", o)
		}
	}
	var meanW float64
	run.Counts.Each(func(v bitstring.BitString, cnt float64) {
		meanW += float64(v.Weight()) * cnt
	})
	meanW /= run.Counts.Total()
	if meanW >= 6 {
		t.Errorf("mean weight %v should drop below 6 under decay", meanW)
	}
}

func TestTrajectorySampler(t *testing.T) {
	b := testBackend(t)
	ts, err := NewTrajectorySampler(b)
	if err != nil {
		t.Fatal(err)
	}
	c := ghz(4)
	d, err := ts.Sample(c, 0, 400, mathx.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	if d.Total() != 400 {
		t.Fatalf("total %v", d.Total())
	}
	// Dominant mass on the GHZ pair.
	if d.Prob(0)+d.Prob(0b1111) < 0.7 {
		t.Errorf("GHZ mass %v too low", d.Prob(0)+d.Prob(0b1111))
	}
	if _, err := ts.Sample(c, 0, 0, mathx.NewRNG(1)); err == nil {
		t.Error("zero shots should error")
	}
	if _, err := ts.Sample(circuit.New("wide", 15).H(0), 0, 10, mathx.NewRNG(1)); err == nil {
		t.Error("over-wide should error")
	}
	if _, err := NewTrajectorySampler(nil); err == nil {
		t.Error("nil backend should error")
	}
}

func TestActiveTwoQubitGraph(t *testing.T) {
	c := circuit.New("g", 4).CX(0, 1).CX(1, 2).CX(0, 1).CCX(0, 2, 3)
	adj := activeTwoQubitGraph(c)
	if len(adj[0]) != 3 { // 1 (cx), 2 and 3 (ccx)
		t.Errorf("adj[0] = %v", adj[0])
	}
	if len(adj[1]) != 2 { // 0 and 2
		t.Errorf("adj[1] = %v", adj[1])
	}
}

func TestBurstScaleRaisesEHD(t *testing.T) {
	b := testBackend(t)
	rng := mathx.NewRNG(21)
	// Deterministic ideal output |111111⟩ so the EHD is purely error mass.
	c := circuit.New("ones", 6)
	for q := 0; q < 6; q++ {
		c.X(q)
	}
	for r := 0; r < 20; r++ {
		c.Barrier()
		c.CX(0, 1).CX(0, 1)
	}
	c.MeasureAll()
	lo, _ := NewExecutor(b, Model{BurstScale: 0.2, BurstWalk: true})
	hi, _ := NewExecutor(b, Model{BurstScale: 8, BurstWalk: true})
	rl, err := lo.Execute(c, 2048, rng)
	if err != nil {
		t.Fatal(err)
	}
	rh, err := hi.Execute(c, 2048, rng)
	if err != nil {
		t.Fatal(err)
	}
	ones := bitstring.BitString(0b111111)
	if rh.Counts.ExpectedHamming(ones) <= rl.Counts.ExpectedHamming(ones) {
		t.Errorf("higher burst scale should raise EHD: hi=%v lo=%v",
			rh.Counts.ExpectedHamming(ones), rl.Counts.ExpectedHamming(ones))
	}
}

func BenchmarkExecuteGHZ8(b *testing.B) {
	bk := testBackend(b)
	e, _ := NewExecutor(bk, DefaultModel())
	c := ghz(8)
	rng := mathx.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Execute(c, 1024, rng); err != nil {
			b.Fatal(err)
		}
	}
}
