package noise

import (
	"math"
	"testing"

	"qbeep/internal/bitstring"
	"qbeep/internal/circuit"
	"qbeep/internal/densitymatrix"
	"qbeep/internal/device"
	"qbeep/internal/mathx"
)

// uniformBackend builds a backend with exactly-known uniform error rates,
// so trajectory sampling can be validated against closed-form channel
// evolution.
func uniformBackend(t *testing.T, n int, err1q, err2q, readout float64) *device.Backend {
	t.Helper()
	topo, err := device.AllToAll(n)
	if err != nil {
		t.Fatal(err)
	}
	cal := &device.Calibration{
		Qubits:  make([]device.QubitCalibration, n),
		Gates1Q: make([]device.GateCalibration, n),
		Gates2Q: make(map[device.Edge]device.GateCalibration),
	}
	for q := 0; q < n; q++ {
		cal.Qubits[q] = device.QubitCalibration{T1: 1, T2: 1, ReadoutError: readout}
		cal.Gates1Q[q] = device.GateCalibration{Error: err1q, Duration: 1e-9}
	}
	for _, e := range topo.Edges() {
		cal.Gates2Q[e] = device.GateCalibration{Error: err2q, Duration: 1e-9}
	}
	b := &device.Backend{
		Name:         "uniform-test",
		Architecture: device.Superconducting,
		Topology:     topo,
		Calibration:  cal,
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	return b
}

// TestTrajectoryMatchesDensityMatrix validates the Monte Carlo Pauli-jump
// trajectories against exact Kraus evolution: injecting a uniform Pauli
// with probability p after a gate equals the depolarizing channel with
// parameter 4p/3 on that gate's qubit.
func TestTrajectoryMatchesDensityMatrix(t *testing.T) {
	const p = 0.12 // per-gate Pauli-jump probability
	b := uniformBackend(t, 2, p, p, 0)

	c := circuit.New("bell", 2).H(0).CX(0, 1)

	// Exact: density matrix with depolarizing(4p/3) after each gate on a
	// uniformly chosen involved qubit — averaging over the qubit choice
	// means half weight per qubit on the CX.
	dm, err := densitymatrix.New(2)
	if err != nil {
		t.Fatal(err)
	}
	ch := densitymatrix.Depolarizing(4 * p / 3)
	half := densitymatrix.Depolarizing(4 * (p / 2) / 3)
	if err := dm.Apply(circuit.Gate{Kind: circuit.H, Qubits: []int{0}}); err != nil {
		t.Fatal(err)
	}
	if err := dm.Channel(0, ch); err != nil {
		t.Fatal(err)
	}
	if err := dm.Apply(circuit.Gate{Kind: circuit.CX, Qubits: []int{0, 1}}); err != nil {
		t.Fatal(err)
	}
	// CX error: one of the two qubits uniformly — approximate the mixture
	// by applying the half-rate channel to both (exact to first order and
	// adequate at p = 0.12 for the tolerance below).
	if err := dm.Channel(0, half); err != nil {
		t.Fatal(err)
	}
	if err := dm.Channel(1, half); err != nil {
		t.Fatal(err)
	}
	exact := dm.Dist()

	// Monte Carlo.
	ts, err := NewTrajectorySampler(b)
	if err != nil {
		t.Fatal(err)
	}
	const shots = 40000
	sampled, err := ts.Sample(c, 0, shots, mathx.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	for v := bitstring.BitString(0); v < 4; v++ {
		want := exact.Prob(v)
		got := sampled.Prob(v)
		if math.Abs(got-want) > 0.02 {
			t.Errorf("P(%02b): trajectory %v vs exact %v", v, got, want)
		}
	}
}

// TestFastExecutorLambdaMatchesRealizedEHD checks the fast executor's
// self-consistency: the realized expected Hamming distance of a
// deterministic-output circuit approaches the configured event intensity
// (minus toggle losses), making EventRates an honest λ ground truth.
func TestFastExecutorLambdaMatchesRealizedEHD(t *testing.T) {
	b := uniformBackend(t, 8, 0.004, 0.01, 0)
	model := Model{GateErrors: true} // single clean channel
	exec, err := NewExecutor(b, model)
	if err != nil {
		t.Fatal(err)
	}
	c := circuit.New("ones", 8)
	for q := 0; q < 8; q++ {
		c.X(q)
	}
	for r := 0; r < 30; r++ {
		c.Barrier()
		for q := 0; q < 8; q++ {
			c.RZ(0.3, q)
		}
	}
	c.MeasureAll()
	run, err := exec.Execute(c, 20000, mathx.NewRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	lambda := run.Rates.TotalLambda()
	if lambda <= 0.1 {
		t.Fatalf("test needs a visible rate, got %v", lambda)
	}
	ehd := run.Counts.ExpectedHamming(0b11111111)
	// Toggle losses make EHD slightly below λ; they can never exceed it.
	if ehd > lambda*1.02 {
		t.Errorf("EHD %v exceeds configured λ %v", ehd, lambda)
	}
	if ehd < lambda*0.80 {
		t.Errorf("EHD %v too far below λ %v (excess toggling?)", ehd, lambda)
	}
}

// TestFastExecutorSpectrumIsPoissonLike: for a pooled-Poisson gate
// channel, the full Hamming spectrum around the deterministic output
// should fit a Poisson with IoD ≈ 1.
func TestFastExecutorSpectrumIsPoissonLike(t *testing.T) {
	b := uniformBackend(t, 10, 0.003, 0.008, 0)
	exec, err := NewExecutor(b, Model{GateErrors: true})
	if err != nil {
		t.Fatal(err)
	}
	c := circuit.New("deep", 10)
	for r := 0; r < 40; r++ {
		for q := 0; q < 10; q++ {
			c.SX(q)
		}
		c.Barrier()
	}
	c.MeasureAll()
	run, err := exec.Execute(c, 20000, mathx.NewRNG(13))
	if err != nil {
		t.Fatal(err)
	}
	// Ideal output of SX^(4k) is |0...0⟩ (SX has order 4 up to phase).
	spec := run.Counts.HammingSpectrum(0)
	iod, err := mathx.SpectrumIoD(spec)
	if err != nil {
		t.Fatal(err)
	}
	if iod < 0.85 || iod > 1.15 {
		t.Errorf("IoD %v should be ≈ 1 for the pure Poisson channel", iod)
	}
}
