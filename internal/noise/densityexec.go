package noise

import (
	"fmt"

	"qbeep/internal/bitstring"
	"qbeep/internal/circuit"
	"qbeep/internal/densitymatrix"
	"qbeep/internal/device"
	"qbeep/internal/mathx"
)

// DensityExecutor evolves the full density matrix with calibrated Kraus
// channels after every gate: exact (no sampling error in the channel
// part) but O(4^n) in memory, so limited to small registers. It is the
// reference implementation the fast failure-event executor is validated
// against, and the most faithful conventional (Markovian) model in the
// repository.
//
// Channel placement per gate: a depolarizing channel with the calibrated
// gate error on each involved qubit (two-qubit errors split evenly), plus
// amplitude and phase damping accumulated over the gate duration; readout
// is a bit-flip channel before the diagonal is read out.
type DensityExecutor struct {
	backend *device.Backend
}

// NewDensityExecutor returns an exact executor for the backend.
func NewDensityExecutor(b *device.Backend) (*DensityExecutor, error) {
	if b == nil {
		return nil, fmt.Errorf("noise: nil backend")
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return &DensityExecutor{backend: b}, nil
}

// ExecuteExact evolves the logical circuit (gates act on logical qubits;
// calibration uses the mean device statistics, as the circuit is not
// routed here) and returns the exact outcome distribution, plus a sampled
// counts distribution when shots > 0.
func (e *DensityExecutor) ExecuteExact(c *circuit.Circuit, shots int, rng *mathx.RNG) (exact *bitstring.Dist, sampled *bitstring.Dist, err error) {
	if err := c.Err(); err != nil {
		return nil, nil, err
	}
	if c.N > densitymatrix.MaxQubits {
		return nil, nil, fmt.Errorf("noise: %d qubits exceeds density-matrix limit %d",
			c.N, densitymatrix.MaxQubits)
	}
	if shots < 0 {
		return nil, nil, fmt.Errorf("noise: negative shots %d", shots)
	}
	cal := e.backend.Calibration
	var err1q, err2q, dur1q, dur2q float64
	for _, g := range cal.Gates1Q {
		err1q += g.Error
		dur1q += g.Duration
	}
	err1q /= float64(len(cal.Gates1Q))
	dur1q /= float64(len(cal.Gates1Q))
	n2 := 0
	for _, e2 := range e.backend.Topology.Edges() {
		g := cal.Gates2Q[e2]
		err2q += g.Error
		dur2q += g.Duration
		n2++
	}
	if n2 > 0 {
		err2q /= float64(n2)
		dur2q /= float64(n2)
	}
	t1 := cal.MeanT1()
	t2 := cal.MeanT2()
	readout := cal.MeanReadoutError()

	dm, err := densitymatrix.New(c.N)
	if err != nil {
		return nil, nil, err
	}
	for _, g := range c.Gates {
		if err := dm.Apply(g); err != nil {
			return nil, nil, err
		}
		if !g.Kind.IsUnitary() || g.Kind == circuit.Barrier {
			continue
		}
		gateErr, dur := err1q, dur1q
		if len(g.Qubits) >= 2 {
			gateErr, dur = err2q, dur2q
		}
		// Depolarizing share per involved qubit; damping over the gate
		// duration on the same qubits.
		perQubit := gateErr / float64(len(g.Qubits))
		gamma := 1 - expNeg(dur/t1)
		lambda := 1 - expNeg(dur/t2)
		for _, q := range g.Qubits {
			if err := dm.Channel(q, densitymatrix.Depolarizing(4*perQubit/3)); err != nil {
				return nil, nil, err
			}
			if err := dm.Channel(q, densitymatrix.AmplitudeDamping(gamma)); err != nil {
				return nil, nil, err
			}
			if err := dm.Channel(q, densitymatrix.PhaseDamping(lambda)); err != nil {
				return nil, nil, err
			}
		}
	}
	// Readout flips.
	if readout > 0 {
		for q := 0; q < c.N; q++ {
			if err := dm.Channel(q, densitymatrix.BitFlip(readout)); err != nil {
				return nil, nil, err
			}
		}
	}
	exact = dm.Dist()
	if shots > 0 {
		if rng == nil {
			return nil, nil, fmt.Errorf("noise: nil RNG with shots > 0")
		}
		sampled = sampleDist(exact, shots, rng)
	}
	return exact, sampled, nil
}

// sampleDist draws shots outcomes from a probability distribution.
func sampleDist(p *bitstring.Dist, shots int, rng *mathx.RNG) *bitstring.Dist {
	outcomes := p.Outcomes()
	cum := make([]float64, len(outcomes))
	var acc float64
	for i, o := range outcomes {
		acc += p.Count(o)
		cum[i] = acc
	}
	out := bitstring.NewDist(p.Width())
	for s := 0; s < shots; s++ {
		u := rng.Float64() * acc
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		out.Add(outcomes[lo], 1)
	}
	return out
}
