package noise

import (
	"context"
	"testing"

	"qbeep/internal/bitstring"
	"qbeep/internal/circuit"
	"qbeep/internal/mathx"
)

// oracleCircuits builds a spread of circuits for the replay-equivalence
// sweep: randomized widths 1-12 exercising every kernel, plus the
// structured circuit the determinism tests use.
func oracleCircuits() []*circuit.Circuit {
	var cs []*circuit.Circuit
	for n := 1; n <= 12; n += 3 {
		cs = append(cs, randomTrajCircuit(n, 15+2*n, mathx.NewRNG(uint64(100+n))))
	}
	cs = append(cs, circuit.New("struct", 5).H(0).CX(0, 1).RZ(0.7, 1).CX(1, 2).T(2).CX(2, 3).RX(0.3, 4).MeasureAll())
	return cs
}

// randomTrajCircuit draws length gates over a kernel-diverse kind set
// (measurement appended so the readout path runs).
func randomTrajCircuit(n, length int, rng *mathx.RNG) *circuit.Circuit {
	kinds := []circuit.Kind{
		circuit.X, circuit.Y, circuit.Z, circuit.H, circuit.S, circuit.T,
		circuit.SX, circuit.RX, circuit.RY, circuit.RZ, circuit.U3,
		circuit.CX, circuit.CZ, circuit.SWAP, circuit.CCX,
	}
	c := circuit.New("randtraj", n)
	for len(c.Gates) < length {
		k := kinds[rng.Intn(len(kinds))]
		a := k.Arity()
		if a > n {
			continue
		}
		qs := rng.Perm(n)[:a]
		var params []float64
		for p := 0; p < k.ParamCount(); p++ {
			params = append(params, rng.Uniform(-3, 3))
		}
		c.Append(circuit.Gate{Kind: k, Qubits: qs, Params: params})
	}
	return c.MeasureAll()
}

// requireSameDist fails unless the two distributions are bit-for-bit
// identical (same outcomes, same counts).
func requireSameDist(t *testing.T, label string, got, want *bitstring.Dist) {
	t.Helper()
	wantOut := want.Outcomes()
	if gotN, wantN := len(got.Outcomes()), len(wantOut); gotN != wantN {
		t.Fatalf("%s: %d outcomes, want %d", label, gotN, wantN)
	}
	for _, v := range wantOut {
		if got.Count(v) != want.Count(v) {
			t.Fatalf("%s: count[%v] = %v, want %v", label, v, got.Count(v), want.Count(v))
		}
	}
}

// TestTrajectoryMatchesPerGateOracle pins the compiled-replay rewrite to
// the retained per-gate reference implementation: identical counts for
// every circuit, seed and worker count — the replay engine changed the
// execution strategy, not one realized draw.
func TestTrajectoryMatchesPerGateOracle(t *testing.T) {
	b := testBackend(t)
	ts, err := NewTrajectorySampler(b)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewTrajectorySampler(b)
	if err != nil {
		t.Fatal(err)
	}
	const shots = 200
	for ci, c := range oracleCircuits() {
		want, err := samplePerGateOracle(ref, c, 0, shots, mathx.NewRNG(uint64(50+ci)))
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range trajWorkerMatrix(t) {
			ts.SetWorkers(w)
			got, err := ts.Sample(c, 0, shots, mathx.NewRNG(uint64(50+ci)))
			if err != nil {
				t.Fatalf("circuit %d workers=%d: %v", ci, w, err)
			}
			requireSameDist(t, c.Name, got, want)
		}
	}
}

// TestSampleBatchMatchesSerial pins the batch contract: SampleBatch
// results are bit-for-bit identical to serial Sample calls with
// mathx.NewRNG(req.Seed), per request, at every worker count.
func TestSampleBatchMatchesSerial(t *testing.T) {
	b := testBackend(t)
	bs, err := NewBatchSampler(b)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := NewTrajectorySampler(b)
	if err != nil {
		t.Fatal(err)
	}
	serial.SetWorkers(1)

	cs := oracleCircuits()
	var reqs []BatchRequest
	for i, c := range cs {
		reqs = append(reqs, BatchRequest{
			Circuit: c,
			Init:    0,
			Shots:   120 + 35*i, // uneven sizes: blocks straddle request edges
			Seed:    uint64(900 + i),
		})
	}
	want := make([]*bitstring.Dist, len(reqs))
	for i, req := range reqs {
		want[i], err = serial.Sample(req.Circuit, req.Init, req.Shots, mathx.NewRNG(req.Seed))
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, w := range trajWorkerMatrix(t) {
		bs.SetWorkers(w)
		got, err := bs.SampleBatch(context.Background(), reqs)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i := range reqs {
			requireSameDist(t, reqs[i].Circuit.Name, got[i], want[i])
		}
	}
}

// TestSampleBatchRejectsBadInput pins the validation paths.
func TestSampleBatchRejectsBadInput(t *testing.T) {
	bs, err := NewBatchSampler(testBackend(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bs.SampleBatch(context.Background(), nil); err == nil {
		t.Fatal("SampleBatch accepted an empty batch")
	}
	reqs := []BatchRequest{{Circuit: nil, Shots: 10}}
	if _, err := bs.SampleBatch(context.Background(), reqs); err == nil {
		t.Fatal("SampleBatch accepted a nil circuit")
	}
	reqs = []BatchRequest{{Circuit: circuit.New("z", 2).H(0), Shots: 0}}
	if _, err := bs.SampleBatch(context.Background(), reqs); err == nil {
		t.Fatal("SampleBatch accepted zero shots")
	}
}

// TestExecuteBatchDeterministicAcrossBlocks pins the executor batch
// path: for a fixed (seed, blocks) the counts are identical across
// repeated runs and across worker counts (GOMAXPROCS is fixed in-test,
// but the block-keyed streams make worker scheduling irrelevant by
// construction), and blocks<=1 reproduces the serial path exactly.
func TestExecuteBatchDeterministicAcrossBlocks(t *testing.T) {
	b := testBackend(t)
	exec, err := NewExecutor(b, DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	c := circuit.New("batchdet", 4).H(0).CX(0, 1).CX(1, 2).CX(2, 3).MeasureAll()
	const shots = 600

	serial, err := exec.Execute(c, shots, mathx.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	viaOne, err := exec.ExecuteBatch(c, shots, 1, mathx.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	requireSameDist(t, "blocks=1", viaOne.Counts, serial.Counts)

	first, err := exec.ExecuteBatch(c, shots, 7, mathx.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	if first.Counts.Total() != serial.Counts.Total() {
		t.Fatalf("batch total %v, want %v", first.Counts.Total(), serial.Counts.Total())
	}
	again, err := exec.ExecuteBatch(c, shots, 7, mathx.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	requireSameDist(t, "blocks=7 rerun", again.Counts, first.Counts)
}
