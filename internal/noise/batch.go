// Batch trajectory execution: many sampling requests fanned through one
// shared worker pool over a single global shot space.
package noise

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"qbeep/internal/bitstring"
	"qbeep/internal/circuit"
	"qbeep/internal/device"
	"qbeep/internal/mathx"
	"qbeep/internal/obs"
	"qbeep/internal/par"
)

// Batch metrics (see internal/obs): requests executed through
// SampleBatch and the pool occupancy of the most recent batch. The
// occupancy gauge is shared with statevector.RunBatch — both report the
// same "how saturated is the machine" signal.
var (
	metBatchReqs      = obs.Default.Counter("sim.batch.requests")
	metBatchOccupancy = obs.Default.Gauge("sim.batch.occupancy")
)

// BatchRequest is one trajectory sampling job for BatchSampler: the
// circuit, initial basis state, shot count and the seed that keys its
// private RNG stream family.
type BatchRequest struct {
	Circuit *circuit.Circuit
	Init    bitstring.BitString
	Shots   int
	Seed    uint64
}

// BatchSampler fans many trajectory sampling requests through one shared
// par pool. The pool partitions the *global* shot space (the
// concatenation of every request's shots), so a batch of many small
// requests saturates the machine just like one large request would.
//
// Results are bitwise identical to running each request serially through
// TrajectorySampler.Sample with mathx.NewRNG(req.Seed), at any worker
// count: every shot draws from the stream keyed by (request seed, shot
// index) regardless of which worker runs it, and the per-request merges
// fold worker-local counts in task order. A BatchSampler is not safe for
// concurrent use (it shares its sampler's arenas).
type BatchSampler struct {
	ts      *TrajectorySampler
	workers int
}

// NewBatchSampler returns a batch sampler on the backend.
func NewBatchSampler(b *device.Backend) (*BatchSampler, error) {
	ts, err := NewTrajectorySampler(b)
	if err != nil {
		return nil, err
	}
	return &BatchSampler{ts: ts}, nil
}

// SetWorkers sets the pool width (0 = GOMAXPROCS). Results are identical
// for any value.
func (bs *BatchSampler) SetWorkers(w int) {
	if w < 0 {
		w = 0
	}
	bs.workers = w
}

// SampleBatch runs every request and returns their count distributions
// in request order. See the type comment for the determinism contract.
func (bs *BatchSampler) SampleBatch(ctx context.Context, reqs []BatchRequest) ([]*bitstring.Dist, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("noise: empty batch")
	}
	t := bs.ts
	// Per-request programs and stream bases. start[i] is request i's
	// offset into the global shot space; start[len(reqs)] its total.
	steps := make([][]trajStep, len(reqs))
	bases := make([]uint64, len(reqs))
	start := make([]int, len(reqs)+1)
	for i, req := range reqs {
		if req.Circuit == nil {
			return nil, fmt.Errorf("noise: batch request %d has nil circuit", i)
		}
		if err := t.checkRequest(req.Circuit, req.Init, req.Shots); err != nil {
			return nil, fmt.Errorf("noise: batch request %d: %w", i, err)
		}
		var err error
		steps[i], err = t.compileSteps(req.Circuit, nil)
		if err != nil {
			return nil, fmt.Errorf("noise: batch request %d: %w", i, err)
		}
		// The serial path draws its stream base as the first Uint64 of a
		// generator seeded with req.Seed; doing the same here makes each
		// request's shots bitwise identical to a serial Sample call.
		bases[i] = mathx.NewRNG(req.Seed).Uint64()
		start[i+1] = start[i] + req.Shots
	}
	total := start[len(reqs)]

	workers := bs.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}
	chunk := (total + workers - 1) / workers
	t.growArenas(workers)

	ctx, sp := obs.Start(ctx, "sim.batch")
	defer sp.End()
	t0 := time.Now() //qbeep:allow-time span/metric timing, not kernel state
	// locals[w][i] holds worker w's counts for request i (nil when the
	// worker's shot range misses the request).
	locals := make([][]*bitstring.Dist, workers)
	stats, err := par.ForEachStatsCtx(ctx, workers, workers, func(w int) error {
		lo := w * chunk
		hi := lo + chunk
		if hi > total {
			hi = total
		}
		if lo >= hi {
			return nil
		}
		a := t.arenas[w]
		mine := make([]*bitstring.Dist, len(reqs))
		locals[w] = mine
		for i, req := range reqs {
			s0, s1 := start[i], start[i+1]
			if s1 <= lo || s0 >= hi {
				continue
			}
			from, to := max(lo, s0)-s0, min(hi, s1)-s0
			mine[i] = bitstring.NewDist(req.Circuit.N)
			if err := t.runShots(a, mine[i], steps[i], req.Init, bases[i], from, to); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Merge worker-local counts in task order: shot counts are integral,
	// so the fold is exact; task order keeps it canonical.
	results := make([]*bitstring.Dist, len(reqs))
	var outs []bitstring.BitString
	for i, req := range reqs {
		res := bitstring.NewDist(req.Circuit.N)
		for w := 0; w < workers; w++ {
			if locals[w] == nil || locals[w][i] == nil {
				continue
			}
			l := locals[w][i]
			outs = l.OutcomesInto(outs)
			for _, v := range outs {
				res.Add(v, l.Count(v))
			}
		}
		results[i] = res
	}

	elapsed := time.Since(t0) //qbeep:allow-time span/metric timing, not kernel state
	occupancy := stats.Utilization()
	metBatchReqs.Add(int64(len(reqs)))
	metBatchOccupancy.Set(occupancy)
	metTrajShots.Add(int64(total))
	if secs := elapsed.Seconds(); secs > 0 {
		metTrajPerSec.Set(float64(total) / secs)
	}
	sp.SetAttr("requests", len(reqs))
	sp.SetAttr("shots", total)
	sp.SetAttr("workers", workers)
	sp.SetAttr("occupancy", occupancy)
	return results, nil
}
