package noise

import (
	"testing"

	"qbeep/internal/circuit"
	"qbeep/internal/mathx"
)

// BenchmarkTrajectory measures the parallel Monte Carlo sampler on a
// 12-qubit circuit: buffer-reusing trajectories with per-shot RNG
// streams (recorded in BENCH_sim.json).
func BenchmarkTrajectory(b *testing.B) {
	ts, err := NewTrajectorySampler(testBackend(b))
	if err != nil {
		b.Fatal(err)
	}
	c := circuit.New("traj-bench", 12).H(0)
	for q := 0; q+1 < 12; q++ {
		c.CX(q, q+1)
	}
	for q := 0; q < 12; q++ {
		c.RZ(0.2+0.05*float64(q), q)
	}
	c.MeasureAll()
	rng := mathx.NewRNG(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ts.Sample(c, 0, 100, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrajectoryPerGate runs the same workload through the retained
// per-gate oracle (per-shot gate lowering, allocated injection gates):
// the before side of the trajectory_replay_speedup ratio in
// BENCH_sim.json.
func BenchmarkTrajectoryPerGate(b *testing.B) {
	ts, err := NewTrajectorySampler(testBackend(b))
	if err != nil {
		b.Fatal(err)
	}
	c := circuit.New("traj-bench", 12).H(0)
	for q := 0; q+1 < 12; q++ {
		c.CX(q, q+1)
	}
	for q := 0; q < 12; q++ {
		c.RZ(0.2+0.05*float64(q), q)
	}
	c.MeasureAll()
	rng := mathx.NewRNG(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := samplePerGateOracle(ts, c, 0, 100, rng); err != nil {
			b.Fatal(err)
		}
	}
}
