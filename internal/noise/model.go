// Package noise executes transpiled circuits under a hardware-style error
// model and produces measurement count distributions.
//
// Two executors are provided:
//
//   - Executor (the default) implements the generative process the paper
//     observes on real hardware (§3.1): circuit execution accumulates
//     independent failure events whose count per shot is Poisson with a
//     rate set by gate errors, decoherence over the scheduled duration,
//     readout, and a topology-correlated burst channel. This reproduces
//     the non-local Hamming clustering (EHD growing with gate count,
//     IoD ≈ 1) that Q-BEEP exploits.
//
//   - TrajectorySampler implements a conventional Markovian per-gate Pauli
//     noise model on the state vector. As the paper notes, this model does
//     NOT produce non-local clustering — we keep it as the negative
//     control and for small-circuit validation.
package noise

import (
	"fmt"
	"math"

	"qbeep/internal/circuit"
	"qbeep/internal/device"
	"qbeep/internal/transpile"
)

// Model configures the fast failure-event executor. The zero value is all
// channels off (noiseless); DefaultModel returns the calibrated default.
type Model struct {
	// GateErrors applies one bit-flip event per gate with the gate's
	// calibrated error probability.
	GateErrors bool
	// Decoherence applies T1 decay (1→0) and T2 dephasing-induced flips
	// accumulated over the scheduled circuit duration.
	Decoherence bool
	// Readout applies the calibrated per-qubit readout flip.
	Readout bool
	// BurstScale sets the rate of the correlated burst channel as a
	// multiple of the decoherence pressure t_circuit/T2. Zero disables
	// bursts; ~1.5 matches the dispersion seen in the paper's corpora.
	BurstScale float64
	// BurstWalk spreads each burst along a random walk on the coupling
	// graph (correlated positions); false scatters burst flips uniformly.
	BurstWalk bool
	// RateJitter is the log-normal sigma of per-shot drift in the burst
	// rate, modeling the slow non-Markovian fluctuation of device
	// conditions across a shot batch (paper §3.1). The jitter is
	// mean-normalized, so the expected rate is unchanged; the resulting
	// compound-Poisson over-dispersion offsets the finite-register
	// compression of the Hamming spectrum, keeping the observed IoD near
	// 1 the way hardware does. Zero disables drift.
	RateJitter float64
}

// DefaultModel is the full hardware-like model used by the experiment
// runners.
func DefaultModel() Model {
	return Model{
		GateErrors:  true,
		Decoherence: true,
		Readout:     true,
		BurstScale:  1.2,
		BurstWalk:   true,
		RateJitter:  0.8,
	}
}

// MarkovianModel is gate errors + decoherence + readout with no burst
// channel: a conventional local noise model.
func MarkovianModel() Model {
	return Model{GateErrors: true, Decoherence: true, Readout: true}
}

// EventRates summarizes the per-shot failure-event intensities of a
// transpiled circuit on a backend under a model. The sum TotalLambda is the
// mean number of flip events per shot — the ground-truth counterpart of
// Q-BEEP's estimated λ.
type EventRates struct {
	Gate      float64 // expected flip events from gate infidelity
	T1        float64 // expected decay events
	T2        float64 // expected dephasing flip events
	Burst     float64 // expected correlated burst flips
	Readout   float64 // expected readout flips
	Duration  float64 // scheduled circuit time (seconds)
	DataQubit []int   // physical qubits carrying logical data (by logical index)
}

// TotalLambda returns the summed event intensity.
func (r EventRates) TotalLambda() float64 {
	return r.Gate + r.T1 + r.T2 + r.Burst + r.Readout
}

// Rates computes the event intensities for a transpiled circuit. The
// logical register is res.Initial's domain; decoherence and readout are
// charged on the physical qubits the logical data ends on.
func Rates(res *transpile.Result, b *device.Backend, m Model) (EventRates, error) {
	if res == nil || res.Circuit == nil {
		return EventRates{}, fmt.Errorf("noise: nil transpile result")
	}
	r := EventRates{Duration: res.Time, DataQubit: append([]int(nil), res.Final...)}
	if m.GateErrors {
		for _, g := range res.Circuit.Gates {
			if !g.Kind.IsUnitary() {
				continue
			}
			switch len(g.Qubits) {
			case 1:
				q := g.Qubits[0]
				if q < len(b.Calibration.Gates1Q) {
					r.Gate += b.Calibration.Gates1Q[q].Error
				}
			case 2:
				if gc, ok := b.Calibration.Gate2Q(g.Qubits[0], g.Qubits[1]); ok {
					r.Gate += gc.Error
				}
			}
		}
	}
	if m.Decoherence {
		for _, p := range r.DataQubit {
			q := b.Calibration.Qubits[p]
			r.T1 += 1 - math.Exp(-res.Time/q.T1)
			// A dephasing event randomizes the phase; it materializes as a
			// measured flip roughly half the time.
			r.T2 += 0.5 * (1 - math.Exp(-res.Time/q.T2))
		}
	}
	if m.Readout {
		for _, p := range r.DataQubit {
			r.Readout += b.Calibration.Qubits[p].ReadoutError
		}
	}
	if m.BurstScale > 0 {
		var pressure float64
		for _, p := range r.DataQubit {
			pressure += res.Time / b.Calibration.Qubits[p].T2
		}
		// Saturate: once the register is fully scrambled more bursts do not
		// add information; cap at n/2 expected flips (the maximally-mixed
		// EHD).
		burst := m.BurstScale * pressure
		if limit := float64(len(r.DataQubit)) / 4; burst > limit {
			burst = limit
		}
		r.Burst = burst
	}
	return r, nil
}

// activeTwoQubitGraph returns, for each logical qubit index, the logical
// neighbors it interacts with in the original circuit — the walk graph for
// correlated bursts when BurstWalk is set.
func activeTwoQubitGraph(c *circuit.Circuit) [][]int {
	adj := make([][]int, c.N)
	seen := make(map[[2]int]bool)
	for _, g := range c.Gates {
		if !g.Kind.IsUnitary() || len(g.Qubits) < 2 {
			continue
		}
		for i := 0; i < len(g.Qubits); i++ {
			for j := i + 1; j < len(g.Qubits); j++ {
				a, b := g.Qubits[i], g.Qubits[j]
				if a > b {
					a, b = b, a
				}
				if !seen[[2]int{a, b}] {
					seen[[2]int{a, b}] = true
					adj[a] = append(adj[a], b)
					adj[b] = append(adj[b], a)
				}
			}
		}
	}
	return adj
}
