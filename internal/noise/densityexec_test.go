package noise

import (
	"math"
	"testing"

	"qbeep/internal/bitstring"
	"qbeep/internal/circuit"
	"qbeep/internal/mathx"
)

func TestDensityExecutorValidation(t *testing.T) {
	if _, err := NewDensityExecutor(nil); err == nil {
		t.Error("nil backend should error")
	}
	b := testBackend(t)
	e, err := NewDensityExecutor(b)
	if err != nil {
		t.Fatal(err)
	}
	wide := circuit.New("wide", 12).H(0)
	if _, _, err := e.ExecuteExact(wide, 0, nil); err == nil {
		t.Error("over-wide circuit should error")
	}
	c := circuit.New("ok", 2).H(0)
	if _, _, err := e.ExecuteExact(c, -1, nil); err == nil {
		t.Error("negative shots should error")
	}
	if _, _, err := e.ExecuteExact(c, 10, nil); err == nil {
		t.Error("shots without RNG should error")
	}
	if _, _, err := e.ExecuteExact(circuit.New("bad", 1).H(9), 0, nil); err == nil {
		t.Error("broken circuit should error")
	}
}

func TestDensityExecutorExactMass(t *testing.T) {
	b := testBackend(t)
	e, _ := NewDensityExecutor(b)
	exact, _, err := e.ExecuteExact(ghz(4), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact.Total()-1) > 1e-9 {
		t.Errorf("exact distribution mass %v", exact.Total())
	}
	// GHZ pair still dominant under realistic noise.
	if exact.Prob(0)+exact.Prob(0b1111) < 0.7 {
		t.Errorf("GHZ mass %v", exact.Prob(0)+exact.Prob(0b1111))
	}
	// But strictly below 1: noise leaks mass.
	if exact.Prob(0)+exact.Prob(0b1111) > 0.999999 {
		t.Error("no noise leaked — channels not applied?")
	}
}

func TestDensityExecutorSampling(t *testing.T) {
	b := testBackend(t)
	e, _ := NewDensityExecutor(b)
	exact, sampled, err := e.ExecuteExact(ghz(3), 8000, mathx.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	if sampled.Total() != 8000 {
		t.Fatalf("sampled total %v", sampled.Total())
	}
	// Sampled distribution converges on the exact one.
	if d := bitstring.TVD(exact, sampled.Normalized(1)); d > 0.03 {
		t.Errorf("TVD between exact and sampled: %v", d)
	}
}

func TestDensityAgainstFastExecutorDirection(t *testing.T) {
	// Both executors should agree on the coarse structure: same top
	// outcome and comparable total error mass for a BV-like circuit.
	b := testBackend(t)
	fast, _ := NewExecutor(b, MarkovianModel())
	exact, _ := NewDensityExecutor(b)

	c := circuit.New("point", 5)
	for q := 0; q < 5; q++ {
		c.X(q)
	}
	c.MeasureAll()

	fr, err := fast.Execute(c, 8000, mathx.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	ex, _, err := exact.ExecuteExact(c, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	topFast, _ := fr.Counts.Top()
	topExact, _ := ex.Top()
	if topFast != topExact {
		t.Errorf("top outcomes disagree: fast %b exact %b", topFast, topExact)
	}
	ones := bitstring.BitString(0b11111)
	pf := fr.Counts.Prob(ones)
	pe := ex.Prob(ones)
	if math.Abs(pf-pe) > 0.15 {
		t.Errorf("success probabilities diverge: fast %v exact %v", pf, pe)
	}
}
