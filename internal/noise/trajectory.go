package noise

import (
	"fmt"

	"qbeep/internal/bitstring"
	"qbeep/internal/circuit"
	"qbeep/internal/device"
	"qbeep/internal/mathx"
	"qbeep/internal/statevector"
)

// TrajectorySampler runs Monte Carlo Pauli-jump trajectories on the state
// vector: after each gate, with the gate's calibrated error probability a
// uniformly random Pauli is injected on one of its qubits; readout flips
// apply at measurement. This is the conventional Markovian noise model —
// per the paper (§3.1), it reproduces *local* Hamming clustering only,
// which our Figure-4 negative-control experiment demonstrates.
//
// Cost is one state-vector evolution per shot; keep widths ≤ ~12 and shot
// counts moderate.
type TrajectorySampler struct {
	backend *device.Backend
}

// NewTrajectorySampler returns a sampler on the backend.
func NewTrajectorySampler(b *device.Backend) (*TrajectorySampler, error) {
	if b == nil {
		return nil, fmt.Errorf("noise: nil backend")
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return &TrajectorySampler{backend: b}, nil
}

// pauliKinds indexes the injectable Paulis.
var pauliKinds = [3]circuit.Kind{circuit.X, circuit.Y, circuit.Z}

// Sample runs shots trajectories of the logical circuit from basis state
// init. Gate error rates use the backend's mean calibration (the logical
// circuit is not routed here; this sampler is a physics-level control, not
// a device-exact one).
func (t *TrajectorySampler) Sample(c *circuit.Circuit, init bitstring.BitString, shots int, rng *mathx.RNG) (*bitstring.Dist, error) {
	if err := c.Err(); err != nil {
		return nil, err
	}
	if shots <= 0 {
		return nil, fmt.Errorf("noise: shots %d must be positive", shots)
	}
	if c.N > 14 {
		return nil, fmt.Errorf("noise: trajectory sampling limited to 14 qubits, got %d", c.N)
	}
	var err1q, err2q float64
	for _, g := range t.backend.Calibration.Gates1Q {
		err1q += g.Error
	}
	err1q /= float64(len(t.backend.Calibration.Gates1Q))
	n2 := 0
	for _, g := range t.backend.Calibration.Gates2Q {
		err2q += g.Error
		n2++
	}
	if n2 > 0 {
		err2q /= float64(n2)
	}
	readout := t.backend.Calibration.MeanReadoutError()

	counts := bitstring.NewDist(c.N)
	for s := 0; s < shots; s++ {
		st, err := statevector.NewBasis(c.N, init)
		if err != nil {
			return nil, err
		}
		for _, g := range c.Gates {
			if err := st.Apply(g); err != nil {
				return nil, err
			}
			if !g.Kind.IsUnitary() {
				continue
			}
			p := err1q
			if len(g.Qubits) >= 2 {
				p = err2q
			}
			if rng.Float64() < p {
				q := g.Qubits[rng.Intn(len(g.Qubits))]
				pk := pauliKinds[rng.Intn(3)]
				if err := st.Apply(circuit.Gate{Kind: pk, Qubits: []int{q}}); err != nil {
					return nil, err
				}
			}
		}
		out := st.Sample(1, rng).Outcomes()[0]
		for q := 0; q < c.N; q++ {
			if rng.Float64() < readout {
				out = out.FlipBit(q)
			}
		}
		counts.Add(out, 1)
	}
	return counts, nil
}
