package noise

import (
	"context"
	"fmt"
	"log/slog"
	"runtime"
	"sort"
	"time"

	"qbeep/internal/bitstring"
	"qbeep/internal/circuit"
	"qbeep/internal/device"
	"qbeep/internal/mathx"
	"qbeep/internal/obs"
	"qbeep/internal/par"
	"qbeep/internal/statevector"
)

// Trajectory metrics (see internal/obs): per-batch wall time and shot
// throughput of the Monte Carlo sampler.
var (
	metTraj        = obs.Default.Timer("sim.trajectory")
	metTrajShots   = obs.Default.Counter("sim.trajectory.shots")
	metTrajPerSec  = obs.Default.Gauge("sim.trajectory.shots_per_sec")
	metTrajWorkers = obs.Default.Gauge("sim.trajectory.workers")
)

// TrajectorySampler runs Monte Carlo Pauli-jump trajectories on the state
// vector: after each gate, with the gate's calibrated error probability a
// uniformly random Pauli is injected on one of its qubits; readout flips
// apply at measurement. This is the conventional Markovian noise model —
// per the paper (§3.1), it reproduces *local* Hamming clustering only,
// which our Figure-4 negative-control experiment demonstrates.
//
// Execution is compiled-program replay: SampleCtx lowers the circuit to
// kernel ops once per call (into a scratch reused across calls), then
// every shot replays the compiled steps, injecting Paulis through a
// precompiled per-qubit op table — the hot loop performs no per-gate
// lowering and allocates nothing. Shots fan out across par workers, each
// owning a pooled arena (state buffer, probability scratch, local Dist,
// reseedable RNG stream) that persists across Sample calls, so
// steady-state sampling is allocation-free (pinned by the
// trajectory_allocs_steady benchparse ceiling).
//
// Every shot draws from its own RNG stream derived from the caller's
// generator (one Uint64 draw per Sample keys streams by shot index), so
// the counts are deterministic for a fixed seed regardless of the worker
// count. Note this changes the realized random stream relative to the
// seed repository, which threaded a single serial RNG through every
// shot; distributions agree statistically but not shot-for-shot.
//
// A TrajectorySampler is not safe for concurrent use: Sample calls share
// the arenas (and the caller's RNG). Use one sampler per goroutine, or
// BatchSampler to fan whole requests through one pool.
type TrajectorySampler struct {
	backend *device.Backend
	workers int

	// Mean calibration error rates, hoisted out of the per-call path:
	// the backend is fixed at construction.
	err1q   float64
	err2q   float64
	readout float64

	// Per-call compile scratch and per-worker arenas, pooled across
	// Sample calls (see the concurrency note above).
	steps  []trajStep
	paulis [][3]statevector.CompiledOp
	pauliN int
	arenas []*trajArena
}

// trajStep is one compiled gate of a trajectory program: the kernel op
// plus the injection metadata the noise model draws from.
type trajStep struct {
	op     statevector.CompiledOp
	inject bool    // unitary gate: eligible for Pauli injection
	nq     int     // qubit count of the source gate
	q      [3]int  // the gate's qubits (first nq valid)
	p      float64 // injection probability (err1q or err2q)
}

// trajArena is one worker's pooled scratch: reused across shots and
// across Sample calls so the steady-state hot loop never allocates. The
// sampler owns its arenas; they are re-created only when the register
// width changes.
//
//qbeep:pooled
type trajArena struct {
	st     *statevector.State
	probs  []float64
	counts *bitstring.Dist
	rng    mathx.RNG
	outs   []bitstring.BitString // sorted-merge scratch
}

// NewTrajectorySampler returns a sampler on the backend.
func NewTrajectorySampler(b *device.Backend) (*TrajectorySampler, error) {
	if b == nil {
		return nil, fmt.Errorf("noise: nil backend")
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	t := &TrajectorySampler{backend: b}
	for _, g := range b.Calibration.Gates1Q {
		t.err1q += g.Error
	}
	t.err1q /= float64(len(b.Calibration.Gates1Q))
	// Sum 2q errors in sorted edge order: Gates2Q is a map, and float
	// accumulation in map order would make err2q — and through it every
	// per-shot error rate — drift at the last bit between runs
	// (qbeep-lint nodeterm).
	edges := make([]device.Edge, 0, len(b.Calibration.Gates2Q))
	for e := range b.Calibration.Gates2Q {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].A != edges[j].A {
			return edges[i].A < edges[j].A
		}
		return edges[i].B < edges[j].B
	})
	for _, e := range edges {
		t.err2q += b.Calibration.Gates2Q[e].Error
	}
	if len(edges) > 0 {
		t.err2q /= float64(len(edges))
	}
	t.readout = b.Calibration.MeanReadoutError()
	return t, nil
}

// SetWorkers sets the shot fan-out width (0 = GOMAXPROCS). The sampled
// counts are identical for any value.
func (t *TrajectorySampler) SetWorkers(w int) {
	if w < 0 {
		w = 0
	}
	t.workers = w
}

// pauliKinds indexes the injectable Paulis.
var pauliKinds = [3]circuit.Kind{circuit.X, circuit.Y, circuit.Z}

// Sample runs shots trajectories of the logical circuit from basis state
// init. Gate error rates use the backend's mean calibration (the logical
// circuit is not routed here; this sampler is a physics-level control, not
// a device-exact one).
func (t *TrajectorySampler) Sample(c *circuit.Circuit, init bitstring.BitString, shots int, rng *mathx.RNG) (*bitstring.Dist, error) {
	return t.SampleCtx(context.Background(), c, init, shots, rng)
}

// SampleCtx is Sample with trace-context propagation: the
// "sim.trajectory" span parents under the span active in ctx, and the
// shot fan-out's worker spans parent under it.
func (t *TrajectorySampler) SampleCtx(ctx context.Context, c *circuit.Circuit, init bitstring.BitString, shots int, rng *mathx.RNG) (*bitstring.Dist, error) {
	if err := t.checkRequest(c, init, shots); err != nil {
		return nil, err
	}
	if err := t.compile(c); err != nil {
		return nil, err
	}

	// One draw keys every shot's stream; the caller's generator advances
	// by exactly one Uint64 per Sample call.
	base := rng.Uint64()

	workers := t.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > shots {
		workers = shots
	}
	chunk := (shots + workers - 1) / workers
	t.growArenas(workers)

	ctx, sp := obs.Start(ctx, "sim.trajectory")
	// Ending via defer keeps the span from leaking on the fan-out error
	// path (qbeep-lint spanend); attributes set below still precede it.
	defer sp.End()
	t0 := time.Now() //qbeep:allow-time span/metric timing, not kernel state
	var err error
	if workers == 1 {
		// Serial fast path: a one-worker fan-out buys nothing and its
		// bookkeeping (per-task stat slices, escaping closures) is the
		// difference between ~13 and ~4 steady-state allocations.
		a := t.arenas[0]
		a.resetCounts(c.N)
		err = t.runShots(a, a.counts, t.steps, init, base, 0, shots)
	} else {
		err = par.ForEachCtx(ctx, workers, workers, func(w int) error {
			lo := w * chunk
			hi := lo + chunk
			if hi > shots {
				hi = shots
			}
			a := t.arenas[w]
			a.resetCounts(c.N)
			return t.runShots(a, a.counts, t.steps, init, base, lo, hi)
		})
	}
	if err != nil {
		return nil, err
	}
	counts := t.mergeArenas(c.N, workers)
	elapsed := time.Since(t0) //qbeep:allow-time span/metric timing, not kernel state
	metTraj.ObserveDuration(elapsed)
	metTrajShots.Add(int64(shots))
	metTrajWorkers.Set(float64(workers))
	if secs := elapsed.Seconds(); secs > 0 {
		metTrajPerSec.Set(float64(shots) / secs)
	}
	// Attr values box at the call site even for an inert span, so the
	// whole block gates on tracing to keep the steady state alloc-free.
	if obs.TracingEnabled() {
		sp.SetAttr("circuit", c.Name)
		sp.SetAttr("width", c.N)
		sp.SetAttr("gates", len(c.Gates))
		sp.SetAttr("shots", shots)
		sp.SetAttr("workers", workers)
	}
	// Enabled-gated: the variadic args would box on every call otherwise,
	// breaking the steady-state zero-allocation contract.
	if l := obs.Logger(); l.Enabled(ctx, slog.LevelDebug) {
		l.Debug("trajectory batch",
			"circuit", c.Name, "width", c.N, "shots", shots,
			"workers", workers, "elapsed", elapsed)
	}
	return counts, nil
}

// checkRequest validates one sampling request.
func (t *TrajectorySampler) checkRequest(c *circuit.Circuit, init bitstring.BitString, shots int) error {
	if err := c.Err(); err != nil {
		return err
	}
	if shots <= 0 {
		return fmt.Errorf("noise: shots %d must be positive", shots)
	}
	if c.N > 14 {
		return fmt.Errorf("noise: trajectory sampling limited to 14 qubits, got %d", c.N)
	}
	if uint64(init) >= uint64(1)<<uint(c.N) {
		return fmt.Errorf("noise: basis state %d outside %d-qubit register", init, c.N)
	}
	return nil
}

// compile lowers the circuit into the sampler's step scratch (reused
// across calls: zero steady-state allocations) and refreshes the Pauli
// injection table when the register width changes. Unlike the fused
// Run pipeline this is strictly per-gate: injections happen *between*
// gates, so each gate keeps its own kernel op.
func (t *TrajectorySampler) compile(c *circuit.Circuit) error {
	steps, err := t.compileSteps(c, t.steps[:0])
	if err != nil {
		return err
	}
	t.steps = steps
	if t.pauliN != c.N {
		t.paulis = statevector.NewPauliOps(c.N)
		t.pauliN = c.N
	}
	return nil
}

// compileSteps lowers the circuit's gates into trajectory steps appended
// to dst[:len(dst)], annotating each with its injection probability.
func (t *TrajectorySampler) compileSteps(c *circuit.Circuit, dst []trajStep) ([]trajStep, error) {
	for _, g := range c.Gates {
		co, err := statevector.CompileGate(c.N, g)
		if err != nil {
			return nil, err
		}
		step := trajStep{op: co, inject: g.Kind.IsUnitary(), nq: len(g.Qubits)}
		copy(step.q[:], g.Qubits)
		step.p = t.err1q
		if step.nq >= 2 {
			step.p = t.err2q
		}
		dst = append(dst, step)
	}
	return dst, nil
}

// growArenas ensures at least n pooled worker arenas exist.
//
//qbeep:mustinline
func (t *TrajectorySampler) growArenas(n int) {
	for len(t.arenas) < n {
		t.arenas = append(t.arenas, &trajArena{})
	}
}

// resetCounts readies the arena's local Dist for a width-n batch,
// re-materializing it only on a width change. It sits on the per-task
// path of both the trajectory and batch samplers, so it must stay
// within the inlining budget.
//
//qbeep:mustinline
func (a *trajArena) resetCounts(n int) {
	if a.counts == nil || a.counts.Width() != n {
		a.counts = bitstring.NewDist(n)
	} else {
		a.counts.Reset()
	}
}

// runShots samples shots [lo, hi) of a compiled trajectory program into
// dst, replaying steps on the arena's pooled state with per-shot RNG
// streams keyed (base, shot index). The arena's state buffer
// re-materializes only on a width change.
func (t *TrajectorySampler) runShots(a *trajArena, dst *bitstring.Dist, steps []trajStep, init bitstring.BitString, base uint64, lo, hi int) error {
	n := dst.Width()
	if a.st == nil || a.st.N() != n {
		st, err := statevector.New(n)
		if err != nil {
			return err
		}
		// Kernel sharding stays off inside the fan-out: parallelism lives
		// at the shot level here.
		st.SetWorkers(1)
		a.st = st
	}
	paulis := t.paulis
	if len(paulis) != n {
		paulis = statevector.NewPauliOps(n)
	}
	for s := lo; s < hi; s++ {
		a.rng.ReseedStream(base, uint64(s))
		if err := a.st.Reset(init); err != nil {
			return err
		}
		for i := range steps {
			step := &steps[i]
			a.st.ApplyCompiled(step.op)
			if !step.inject {
				continue
			}
			if a.rng.Float64() < step.p {
				q := step.q[a.rng.Intn(step.nq)]
				a.st.ApplyCompiled(paulis[q][a.rng.Intn(3)])
			}
		}
		a.probs = a.st.ProbabilitiesInto(a.probs)
		out := sampleProbs(a.probs, &a.rng)
		for q := 0; q < n; q++ {
			if a.rng.Float64() < t.readout {
				out = out.FlipBit(q)
			}
		}
		dst.Add(out, 1)
	}
	return nil
}

// mergeArenas folds the first `workers` arena-local counts into one
// pre-sized result. Shot counts are integral, so merging is exact in
// any order; arena order with sorted outcomes keeps it canonical.
func (t *TrajectorySampler) mergeArenas(n, workers int) *bitstring.Dist {
	support := 0
	for _, a := range t.arenas[:workers] {
		support += a.counts.Support()
	}
	counts := bitstring.NewDistCap(n, support)
	for _, a := range t.arenas[:workers] {
		a.outs = a.counts.OutcomesInto(a.outs)
		for _, v := range a.outs {
			counts.Add(v, a.counts.Count(v))
		}
	}
	return counts
}

// sampleProbs draws one outcome from an (unnormalized) probability vector
// by a single forward scan — the per-shot path needs exactly one draw, so
// building a cumulative vector would be wasted work.
//
//qbeep:allocfree
//qbeep:noescape p rng
func sampleProbs(p []float64, rng *mathx.RNG) bitstring.BitString {
	var total float64
	for _, v := range p {
		total += v
	}
	u := rng.Float64() * total
	for i, v := range p {
		u -= v
		if u <= 0 {
			return bitstring.BitString(i)
		}
	}
	return bitstring.BitString(len(p) - 1)
}
