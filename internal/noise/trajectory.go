package noise

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	"qbeep/internal/bitstring"
	"qbeep/internal/circuit"
	"qbeep/internal/device"
	"qbeep/internal/mathx"
	"qbeep/internal/obs"
	"qbeep/internal/par"
	"qbeep/internal/statevector"
)

// Trajectory metrics (see internal/obs): per-batch wall time and shot
// throughput of the Monte Carlo sampler.
var (
	metTraj        = obs.Default.Timer("sim.trajectory")
	metTrajShots   = obs.Default.Counter("sim.trajectory.shots")
	metTrajPerSec  = obs.Default.Gauge("sim.trajectory.shots_per_sec")
	metTrajWorkers = obs.Default.Gauge("sim.trajectory.workers")
)

// TrajectorySampler runs Monte Carlo Pauli-jump trajectories on the state
// vector: after each gate, with the gate's calibrated error probability a
// uniformly random Pauli is injected on one of its qubits; readout flips
// apply at measurement. This is the conventional Markovian noise model —
// per the paper (§3.1), it reproduces *local* Hamming clustering only,
// which our Figure-4 negative-control experiment demonstrates.
//
// Shots fan out across par workers, each reusing one state-vector buffer
// (State.Reset) and one probability scratch vector for its whole chunk.
// Every shot draws from its own RNG stream derived from the caller's
// generator (mathx.NewStream keyed by one Uint64 draw and the shot index),
// so the counts are deterministic for a fixed seed regardless of the
// worker count. Note this changes the realized random stream relative to
// the seed repository, which threaded a single serial RNG through every
// shot; distributions agree statistically but not shot-for-shot.
type TrajectorySampler struct {
	backend *device.Backend
	workers int
}

// NewTrajectorySampler returns a sampler on the backend.
func NewTrajectorySampler(b *device.Backend) (*TrajectorySampler, error) {
	if b == nil {
		return nil, fmt.Errorf("noise: nil backend")
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return &TrajectorySampler{backend: b}, nil
}

// SetWorkers sets the shot fan-out width (0 = GOMAXPROCS). The sampled
// counts are identical for any value.
func (t *TrajectorySampler) SetWorkers(w int) {
	if w < 0 {
		w = 0
	}
	t.workers = w
}

// pauliKinds indexes the injectable Paulis.
var pauliKinds = [3]circuit.Kind{circuit.X, circuit.Y, circuit.Z}

// Sample runs shots trajectories of the logical circuit from basis state
// init. Gate error rates use the backend's mean calibration (the logical
// circuit is not routed here; this sampler is a physics-level control, not
// a device-exact one).
func (t *TrajectorySampler) Sample(c *circuit.Circuit, init bitstring.BitString, shots int, rng *mathx.RNG) (*bitstring.Dist, error) {
	return t.SampleCtx(context.Background(), c, init, shots, rng)
}

// SampleCtx is Sample with trace-context propagation: the
// "sim.trajectory" span parents under the span active in ctx, and the
// shot fan-out's worker spans parent under it.
func (t *TrajectorySampler) SampleCtx(ctx context.Context, c *circuit.Circuit, init bitstring.BitString, shots int, rng *mathx.RNG) (*bitstring.Dist, error) {
	if err := c.Err(); err != nil {
		return nil, err
	}
	if shots <= 0 {
		return nil, fmt.Errorf("noise: shots %d must be positive", shots)
	}
	if c.N > 14 {
		return nil, fmt.Errorf("noise: trajectory sampling limited to 14 qubits, got %d", c.N)
	}
	if uint64(init) >= uint64(1)<<uint(c.N) {
		return nil, fmt.Errorf("noise: basis state %d outside %d-qubit register", init, c.N)
	}
	var err1q, err2q float64
	for _, g := range t.backend.Calibration.Gates1Q {
		err1q += g.Error
	}
	err1q /= float64(len(t.backend.Calibration.Gates1Q))
	// Sum 2q errors in sorted edge order: Gates2Q is a map, and float
	// accumulation in map order would make err2q — and through it every
	// per-shot error rate — drift at the last bit between runs
	// (qbeep-lint nodeterm).
	edges := make([]device.Edge, 0, len(t.backend.Calibration.Gates2Q))
	for e := range t.backend.Calibration.Gates2Q {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].A != edges[j].A {
			return edges[i].A < edges[j].A
		}
		return edges[i].B < edges[j].B
	})
	for _, e := range edges {
		err2q += t.backend.Calibration.Gates2Q[e].Error
	}
	if len(edges) > 0 {
		err2q /= float64(len(edges))
	}
	readout := t.backend.Calibration.MeanReadoutError()

	// One draw keys every shot's stream; the caller's generator advances
	// by exactly one Uint64 per Sample call.
	base := rng.Uint64()

	workers := t.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > shots {
		workers = shots
	}
	chunk := (shots + workers - 1) / workers

	ctx, sp := obs.Start(ctx, "sim.trajectory")
	// Ending via defer keeps the span from leaking on the fan-out error
	// path (qbeep-lint spanend); attributes set below still precede it.
	defer sp.End()
	t0 := time.Now() //qbeep:allow-time span/metric timing, not kernel state
	locals := make([]*bitstring.Dist, workers)
	err := par.ForEachCtx(ctx, workers, workers, func(w int) error {
		lo := w * chunk
		hi := lo + chunk
		if hi > shots {
			hi = shots
		}
		if lo >= hi {
			locals[w] = bitstring.NewDist(c.N)
			return nil
		}
		st, err := statevector.New(c.N)
		if err != nil {
			return err
		}
		// Kernel sharding stays off inside the fan-out: parallelism lives
		// at the shot level here.
		st.SetWorkers(1)
		var probs []float64
		counts := bitstring.NewDist(c.N)
		for s := lo; s < hi; s++ {
			srng := mathx.NewStream(base, uint64(s))
			if err := st.Reset(init); err != nil {
				return err
			}
			for _, g := range c.Gates {
				if err := st.Apply(g); err != nil {
					return err
				}
				if !g.Kind.IsUnitary() {
					continue
				}
				p := err1q
				if len(g.Qubits) >= 2 {
					p = err2q
				}
				if srng.Float64() < p {
					q := g.Qubits[srng.Intn(len(g.Qubits))]
					pk := pauliKinds[srng.Intn(3)]
					if err := st.Apply(circuit.Gate{Kind: pk, Qubits: []int{q}}); err != nil {
						return err
					}
				}
			}
			probs = st.ProbabilitiesInto(probs)
			out := sampleProbs(probs, srng)
			for q := 0; q < c.N; q++ {
				if srng.Float64() < readout {
					out = out.FlipBit(q)
				}
			}
			counts.Add(out, 1)
		}
		locals[w] = counts
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Shot counts are integral, so merging is exact in any order; chunk
	// order keeps it canonical.
	counts := bitstring.NewDist(c.N)
	for _, l := range locals {
		l.Each(func(v bitstring.BitString, c float64) {
			counts.Add(v, c)
		})
	}
	elapsed := time.Since(t0) //qbeep:allow-time span/metric timing, not kernel state
	metTraj.ObserveDuration(elapsed)
	metTrajShots.Add(int64(shots))
	metTrajWorkers.Set(float64(workers))
	if secs := elapsed.Seconds(); secs > 0 {
		metTrajPerSec.Set(float64(shots) / secs)
	}
	sp.SetAttr("circuit", c.Name)
	sp.SetAttr("width", c.N)
	sp.SetAttr("gates", len(c.Gates))
	sp.SetAttr("shots", shots)
	sp.SetAttr("workers", workers)
	obs.Logger().Debug("trajectory batch",
		"circuit", c.Name, "width", c.N, "shots", shots,
		"workers", workers, "elapsed", elapsed)
	return counts, nil
}

// sampleProbs draws one outcome from an (unnormalized) probability vector
// by a single forward scan — the per-shot path needs exactly one draw, so
// building a cumulative vector would be wasted work.
func sampleProbs(p []float64, rng *mathx.RNG) bitstring.BitString {
	var total float64
	for _, v := range p {
		total += v
	}
	u := rng.Float64() * total
	for i, v := range p {
		u -= v
		if u <= 0 {
			return bitstring.BitString(i)
		}
	}
	return bitstring.BitString(len(p) - 1)
}
