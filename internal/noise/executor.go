package noise

import (
	"context"
	"fmt"
	"math"
	"time"

	"qbeep/internal/bitstring"
	"qbeep/internal/circuit"
	"qbeep/internal/device"
	"qbeep/internal/mathx"
	"qbeep/internal/obs"
	"qbeep/internal/par"
	"qbeep/internal/statevector"
	"qbeep/internal/transpile"
)

// Induction metrics (see internal/obs): sampling throughput plus the
// correlated-burst channel's realized event stream.
var (
	metExecute     = obs.Default.Timer("noise.execute")
	metShots       = obs.Default.Counter("noise.shots")
	metShotsPerSec = obs.Default.Gauge("noise.shots_per_sec")
	metBurstEvents = obs.Default.Counter("noise.burst.events")
	metBurstFlips  = obs.Default.Counter("noise.burst.flips")
)

// Run is the outcome of a noisy induction: the raw logical counts, the
// ideal reference distribution, the transpilation artifacts and the
// realized event rates.
type Run struct {
	Counts     *bitstring.Dist // noisy logical measurement counts
	Ideal      *bitstring.Dist // exact noiseless logical distribution
	Transpiled *transpile.Result
	Rates      EventRates
	Shots      int
}

// Executor runs logical circuits on a backend under a Model. The zero
// value is unusable; construct with NewExecutor.
type Executor struct {
	backend *device.Backend
	model   Model
}

// NewExecutor returns an executor for the backend and model.
func NewExecutor(b *device.Backend, m Model) (*Executor, error) {
	if b == nil {
		return nil, fmt.Errorf("noise: nil backend")
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return &Executor{backend: b, model: m}, nil
}

// Backend returns the executor's backend.
func (e *Executor) Backend() *device.Backend { return e.backend }

// Execute transpiles c onto the backend and samples shots measurement
// outcomes under the failure-event model. The ideal distribution comes from
// the logical circuit (transpilation is semantics-preserving), so register
// width is bounded by the logical width, not the physical device size.
func (e *Executor) Execute(c *circuit.Circuit, shots int, rng *mathx.RNG) (*Run, error) {
	return e.ExecuteCtx(context.Background(), c, shots, rng)
}

// ExecuteCtx is Execute with trace-context propagation: the transpile
// and noise.execute spans parent under the span active in ctx.
func (e *Executor) ExecuteCtx(ctx context.Context, c *circuit.Circuit, shots int, rng *mathx.RNG) (*Run, error) {
	if shots <= 0 {
		return nil, fmt.Errorf("noise: shots %d must be positive", shots)
	}
	if c.N > statevector.MaxQubits {
		return nil, fmt.Errorf("noise: %d logical qubits exceeds simulator limit %d", c.N, statevector.MaxQubits)
	}
	res, err := transpile.TranspileCtx(ctx, c, e.backend, nil)
	if err != nil {
		return nil, err
	}
	return e.ExecuteTranspiledCtx(ctx, c, res, shots, rng)
}

// ExecuteTranspiled is Execute for a circuit already transpiled (the
// caller controls layout / reuses the artifact).
func (e *Executor) ExecuteTranspiled(logical *circuit.Circuit, res *transpile.Result, shots int, rng *mathx.RNG) (*Run, error) {
	return e.ExecuteTranspiledCtx(context.Background(), logical, res, shots, rng)
}

// ExecuteTranspiledCtx is ExecuteTranspiled with trace-context
// propagation: the "noise.execute" span covers the ideal reference run
// (its "sim.run" child), rate derivation, and sampling.
func (e *Executor) ExecuteTranspiledCtx(ctx context.Context, logical *circuit.Circuit, res *transpile.Result, shots int, rng *mathx.RNG) (*Run, error) {
	ctx, sp := obs.Start(ctx, "noise.execute")
	// Ending via defer keeps the span from leaking on the ideal-run and
	// rates error returns (qbeep-lint spanend).
	defer sp.End()
	ideal, err := statevector.IdealDistCtx(ctx, logical)
	if err != nil {
		return nil, err
	}
	rates, err := Rates(res, e.backend, e.model)
	if err != nil {
		return nil, err
	}
	t0 := time.Now() //qbeep:allow-time span/metric timing, not kernel state
	counts := e.sampleNoisy(logical, ideal, res, rates, shots, rng)
	elapsed := time.Since(t0) //qbeep:allow-time span/metric timing, not kernel state
	metExecute.ObserveDuration(elapsed)
	metShots.Add(int64(shots))
	if secs := elapsed.Seconds(); secs > 0 {
		metShotsPerSec.Set(float64(shots) / secs)
	}
	sp.SetAttr("circuit", logical.Name)
	sp.SetAttr("shots", shots)
	obs.Logger().Debug("noisy induction",
		"circuit", logical.Name, "backend", e.backend.Name,
		"shots", shots, "elapsed", elapsed)
	return &Run{
		Counts:     counts,
		Ideal:      ideal,
		Transpiled: res,
		Rates:      rates,
		Shots:      shots,
	}, nil
}

// ExecuteBatch is ExecuteBatchCtx with a background context.
func (e *Executor) ExecuteBatch(c *circuit.Circuit, shots, blocks int, rng *mathx.RNG) (*Run, error) {
	return e.ExecuteBatchCtx(context.Background(), c, shots, blocks, rng)
}

// ExecuteBatchCtx is ExecuteCtx with the shot loop split into blocks and
// fanned across the shared par pool. Transpilation, the ideal reference
// run and rate derivation happen once; each block then samples from its
// own RNG stream keyed by (rng's first Uint64, block index), and block
// counts merge in block order. Counts are therefore deterministic for a
// given (seed, blocks) at any worker count — but the stream family
// differs from the serial ExecuteCtx draw sequence, so batch counts are
// statistically equivalent to serial counts, not bitwise equal to them.
// blocks <= 1 falls back to the serial path.
func (e *Executor) ExecuteBatchCtx(ctx context.Context, c *circuit.Circuit, shots, blocks int, rng *mathx.RNG) (*Run, error) {
	if blocks <= 1 {
		return e.ExecuteCtx(ctx, c, shots, rng)
	}
	if shots <= 0 {
		return nil, fmt.Errorf("noise: shots %d must be positive", shots)
	}
	if c.N > statevector.MaxQubits {
		return nil, fmt.Errorf("noise: %d logical qubits exceeds simulator limit %d", c.N, statevector.MaxQubits)
	}
	res, err := transpile.TranspileCtx(ctx, c, e.backend, nil)
	if err != nil {
		return nil, err
	}
	if blocks > shots {
		blocks = shots
	}

	ctx, sp := obs.Start(ctx, "noise.execute")
	defer sp.End()
	ideal, err := statevector.IdealDistCtx(ctx, c)
	if err != nil {
		return nil, err
	}
	rates, err := Rates(res, e.backend, e.model)
	if err != nil {
		return nil, err
	}
	ns := e.newNoisySampler(c, ideal, res, rates)
	// One base drawn from the caller's generator keys every block stream,
	// so the whole batch consumes exactly one value of the caller's RNG.
	base := rng.Uint64()
	chunk := (shots + blocks - 1) / blocks

	t0 := time.Now() //qbeep:allow-time span/metric timing, not kernel state
	bctx, bsp := obs.Start(ctx, "sim.batch")
	locals := make([]*bitstring.Dist, blocks)
	stats, perr := par.ForEachStatsCtx(bctx, blocks, 0, func(b int) error {
		lo := b * chunk
		hi := lo + chunk
		if hi > shots {
			hi = shots
		}
		if lo >= hi {
			return nil
		}
		brng := mathx.NewStream(base, uint64(b))
		locals[b] = bitstring.NewDist(c.N)
		ns.sample(hi-lo, brng, locals[b])
		return nil
	})
	occupancy := stats.Utilization()
	bsp.SetAttr("blocks", blocks)
	bsp.SetAttr("shots", shots)
	bsp.SetAttr("occupancy", occupancy)
	bsp.End()
	if perr != nil {
		return nil, perr
	}

	// Merge in block order: integral counts make the fold exact and the
	// order canonical regardless of which worker finished first.
	counts := bitstring.NewDist(c.N)
	var outs []bitstring.BitString
	for _, l := range locals {
		if l == nil {
			continue
		}
		outs = l.OutcomesInto(outs)
		for _, v := range outs {
			counts.Add(v, l.Count(v))
		}
	}

	elapsed := time.Since(t0) //qbeep:allow-time span/metric timing, not kernel state
	metExecute.ObserveDuration(elapsed)
	metShots.Add(int64(shots))
	if secs := elapsed.Seconds(); secs > 0 {
		metShotsPerSec.Set(float64(shots) / secs)
	}
	metBatchOccupancy.Set(occupancy)
	sp.SetAttr("circuit", c.Name)
	sp.SetAttr("shots", shots)
	sp.SetAttr("blocks", blocks)
	obs.Logger().Debug("noisy batch induction",
		"circuit", c.Name, "backend", e.backend.Name,
		"shots", shots, "blocks", blocks, "elapsed", elapsed)
	return &Run{
		Counts:     counts,
		Ideal:      ideal,
		Transpiled: res,
		Rates:      rates,
		Shots:      shots,
	}, nil
}

// sampleNoisy draws shots outcomes: an ideal sample perturbed by flip
// events from each enabled channel.
func (e *Executor) sampleNoisy(logical *circuit.Circuit, ideal *bitstring.Dist,
	res *transpile.Result, rates EventRates, shots int, rng *mathx.RNG) *bitstring.Dist {

	ns := e.newNoisySampler(logical, ideal, res, rates)
	counts := bitstring.NewDist(logical.N)
	ns.sample(shots, rng, counts)
	return counts
}

// noisySampler is the shot loop of the failure-event model with every
// rate and lookup table precomputed: build once per induction, then
// sample any number of shot blocks. The precomputed state is read-only
// during sampling, so distinct blocks may sample concurrently as long
// as each uses its own RNG and destination Dist.
type noisySampler struct {
	model Model
	n     int

	// Cumulative ideal distribution for sampling.
	outcomes []bitstring.BitString
	cum      []float64
	acc      float64

	// Per-qubit channel probabilities (logical index -> physical calib).
	pDecay   []float64
	pDephase []float64
	pReadout []float64

	// Pooled gate-error events (see newNoisySampler).
	gateCum   []float64
	gateTotal float64
	gatePois  mathx.Poisson

	walkAdj   [][]int
	burst     float64
	burstPois mathx.Poisson
}

// newNoisySampler precomputes the failure-event model for one induction.
// It never draws from an RNG, so hoisting it out of the shot loop cannot
// change any realized stream.
func (e *Executor) newNoisySampler(logical *circuit.Circuit, ideal *bitstring.Dist,
	res *transpile.Result, rates EventRates) *noisySampler {

	n := logical.N
	ns := &noisySampler{model: e.model, n: n, burst: rates.Burst}
	ns.outcomes = ideal.Outcomes()
	ns.cum = make([]float64, len(ns.outcomes))
	for i, o := range ns.outcomes {
		ns.acc += ideal.Count(o)
		ns.cum[i] = ns.acc
	}

	ns.pDecay = make([]float64, n)
	ns.pDephase = make([]float64, n)
	ns.pReadout = make([]float64, n)
	for l := 0; l < n; l++ {
		p := res.Final[l]
		q := e.backend.Calibration.Qubits[p]
		if e.model.Decoherence {
			ns.pDecay[l] = 1 - expNeg(rates.Duration/q.T1)
			ns.pDephase[l] = 0.5 * (1 - expNeg(rates.Duration/q.T2))
		}
		if e.model.Readout {
			ns.pReadout[l] = q.ReadoutError
		}
	}

	// Gate flip events are pooled: the expected count is rates.Gate and
	// each event hits one of the qubits a gate touches. Precompute the
	// qubit-weight distribution from the routed circuit (physical qubits
	// mapped back to logical where possible; routing ancillas redistribute
	// uniformly since their corruption spreads through subsequent swaps).
	gateWeight := make([]float64, n)
	if e.model.GateErrors {
		phys2log := make(map[int]int, n)
		for l, p := range res.Final {
			phys2log[p] = l
		}
		for _, g := range res.Circuit.Gates {
			if !g.Kind.IsUnitary() {
				continue
			}
			var errp float64
			switch len(g.Qubits) {
			case 1:
				errp = e.backend.Calibration.Gates1Q[g.Qubits[0]].Error
			case 2:
				if gc, ok := e.backend.Calibration.Gate2Q(g.Qubits[0], g.Qubits[1]); ok {
					errp = gc.Error
				}
			}
			share := errp / float64(len(g.Qubits))
			for _, pq := range g.Qubits {
				if l, ok := phys2log[pq]; ok {
					gateWeight[l] += share
				} else {
					// ancilla: spread over all logical qubits
					for l := 0; l < n; l++ {
						gateWeight[l] += share / float64(n)
					}
				}
			}
		}
	}

	ns.walkAdj = activeTwoQubitGraph(logical)
	ns.burstPois = mathx.Poisson{Lambda: rates.Burst}

	// Gate-error events are pooled into a Poisson stream (the paper's §3.2
	// generative model: independent failure events with a stable rate):
	// K ~ Poisson(Σ gateWeight) flips per shot, each landing on a qubit
	// drawn proportionally to its share of the gate-error budget.
	ns.gateCum = make([]float64, n)
	for l := 0; l < n; l++ {
		ns.gateTotal += gateWeight[l]
		ns.gateCum[l] = ns.gateTotal
	}
	ns.gatePois = mathx.Poisson{Lambda: ns.gateTotal}
	return ns
}

// sampleIdeal draws one outcome from the cumulative ideal distribution.
func (ns *noisySampler) sampleIdeal(rng *mathx.RNG) bitstring.BitString {
	u := rng.Float64() * ns.acc
	lo, hi := 0, len(ns.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if ns.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return ns.outcomes[lo]
}

// sampleGateQubit draws the landing qubit of one pooled gate-error event.
func (ns *noisySampler) sampleGateQubit(rng *mathx.RNG) int {
	u := rng.Float64() * ns.gateTotal
	lo, hi := 0, ns.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if ns.gateCum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// sample draws shots outcomes from rng into counts. The draw sequence is
// identical to the seed's inline loop: hoisting the precompute consumed
// no RNG values, so golden distributions are unchanged.
func (ns *noisySampler) sample(shots int, rng *mathx.RNG, counts *bitstring.Dist) {
	n := ns.n
	// Burst tallies accumulate locally and flush to the registry once per
	// block, keeping the per-shot loop free of shared-memory traffic.
	var burstEvents, burstFlips int64
	for s := 0; s < shots; s++ {
		v := ns.sampleIdeal(rng)
		// Per-shot drift of device conditions (non-Markovian, §3.1): one
		// mean-normalized log-normal factor scales every time-dependent
		// channel this shot. Readout is excluded — it is a separate,
		// stable classifier error.
		drift := 1.0
		if ns.model.RateJitter > 0 {
			sg := ns.model.RateJitter
			drift = math.Exp(sg*rng.NormFloat64() - sg*sg/2)
		}
		if ns.gateTotal > 0 {
			pois := ns.gatePois
			if drift != 1 { //qbeep:allow-floatcmp drift is exactly 1.0 when jitter is disabled (sentinel)
				pois = mathx.Poisson{Lambda: ns.gateTotal * drift}
			}
			k := pois.Sample(rng.Float64)
			for i := 0; i < k; i++ {
				v = v.FlipBit(ns.sampleGateQubit(rng))
			}
		}
		// Decoherence.
		for l := 0; l < n; l++ {
			if ns.pDecay[l] > 0 && v.Bit(l) == 1 && rng.Float64() < min1(ns.pDecay[l]*drift) {
				v = v.SetBit(l, 0) // T1 decay is directional
			}
			if ns.pDephase[l] > 0 && rng.Float64() < min1(ns.pDephase[l]*drift) {
				v = v.FlipBit(l)
			}
		}
		// Correlated burst: K ~ Poisson(λ_burst) flips, spread along a
		// random walk over the circuit's interaction graph (or uniformly).
		if ns.burst > 0 {
			pois := ns.burstPois
			if drift != 1 { //qbeep:allow-floatcmp drift is exactly 1.0 when jitter is disabled (sentinel)
				pois = mathx.Poisson{Lambda: ns.burst * drift}
			}
			k := pois.Sample(rng.Float64)
			if k > 0 {
				burstEvents++
				burstFlips += int64(k)
				if ns.model.BurstWalk {
					q := rng.Intn(n)
					for i := 0; i < k; i++ {
						v = v.FlipBit(q)
						if nb := ns.walkAdj[q]; len(nb) > 0 && rng.Float64() < 0.8 {
							q = nb[rng.Intn(len(nb))]
						} else {
							q = rng.Intn(n)
						}
					}
				} else {
					for i := 0; i < k; i++ {
						v = v.FlipBit(rng.Intn(n))
					}
				}
			}
		}
		// Readout flips.
		for l := 0; l < n; l++ {
			if ns.pReadout[l] > 0 && rng.Float64() < ns.pReadout[l] {
				v = v.FlipBit(l)
			}
		}
		counts.Add(v, 1)
	}
	if burstEvents > 0 {
		metBurstEvents.Add(burstEvents)
		metBurstFlips.Add(burstFlips)
	}
}

func min1(v float64) float64 {
	if v > 1 {
		return 1
	}
	return v
}

// expNeg returns exp(-x) guarding against negative x from degenerate
// schedules.
func expNeg(x float64) float64 {
	if x < 0 {
		x = 0
	}
	return math.Exp(-x)
}
