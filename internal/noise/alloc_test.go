package noise

import (
	"testing"

	"qbeep/internal/circuit"
	"qbeep/internal/mathx"
)

// TestTrajectorySteadyStateAllocs pins the sampler's arena-reuse
// contract at runtime (the static side is the //qbeep:pooled marker on
// trajArena plus the allocfree facts on the replay path): once the
// arenas are warm, the per-shot cost is zero heap allocations —
// everything Sample still allocates is per-call (the merged result Dist,
// span bookkeeping) and independent of the shot count. Measured as the
// marginal allocations between a small and a large batch, so the
// per-call constant cancels instead of needing a brittle absolute bound.
func TestTrajectorySteadyStateAllocs(t *testing.T) {
	ts, err := NewTrajectorySampler(testBackend(t))
	if err != nil {
		t.Fatal(err)
	}
	ts.SetWorkers(1)
	c := circuit.New("alloc-probe", 5).H(0)
	for q := 0; q+1 < 5; q++ {
		c.CX(q, q+1)
	}
	c.MeasureAll()
	rng := mathx.NewRNG(17)

	sample := func(shots int) {
		if _, err := ts.Sample(c, 0, shots, rng); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the arenas: state buffer, probability scratch, local Dist all
	// materialize on the first wide-enough batch.
	sample(600)

	small := testing.AllocsPerRun(10, func() { sample(50) })
	large := testing.AllocsPerRun(10, func() { sample(550) })
	marginal := (large - small) / 500
	if marginal > 0.02 {
		t.Fatalf("steady-state sampler allocates %.3f per shot (50-shot call: %.1f, 550-shot call: %.1f)",
			marginal, small, large)
	}
	// The per-call constant should stay modest too — a regression that
	// moves work from the arenas to per-call allocation would pass the
	// marginal check while still trashing the batch loop.
	if small > 25 {
		t.Fatalf("per-call allocation constant regressed: %.1f allocations for a 50-shot batch", small)
	}
}
