package noise

import (
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"qbeep/internal/bitstring"
	"qbeep/internal/circuit"
	"qbeep/internal/mathx"
)

// trajWorkerMatrix mirrors the statevector equivalence matrix: {1, 2, 4,
// GOMAXPROCS} plus QBEEP_TEST_WORKERS entries, deduplicated.
func trajWorkerMatrix(t *testing.T) []int {
	t.Helper()
	counts := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	if env := os.Getenv("QBEEP_TEST_WORKERS"); env != "" {
		for _, f := range strings.Split(env, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || v < 1 {
				t.Fatalf("QBEEP_TEST_WORKERS entry %q: %v", f, err)
			}
			counts = append(counts, v)
		}
	}
	seen := map[int]bool{}
	out := counts[:0]
	for _, w := range counts {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

// TestTrajectoryDeterministicAcrossWorkers pins the per-shot RNG stream
// contract: for a fixed seed the sampled counts are identical for every
// worker count, because each shot derives its own stream from the base
// draw and its shot index rather than sharing a serial generator.
func TestTrajectoryDeterministicAcrossWorkers(t *testing.T) {
	b := testBackend(t)
	ts, err := NewTrajectorySampler(b)
	if err != nil {
		t.Fatal(err)
	}
	c := circuit.New("det", 5).H(0).CX(0, 1).RZ(0.7, 1).CX(1, 2).T(2).CX(2, 3).RX(0.3, 4).MeasureAll()
	const shots = 400
	var want map[bitstring.BitString]float64
	for _, w := range trajWorkerMatrix(t) {
		ts.SetWorkers(w)
		d, err := ts.Sample(c, 0, shots, mathx.NewRNG(1234))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		got := map[bitstring.BitString]float64{}
		for _, v := range d.Outcomes() {
			got[v] = d.Count(v)
		}
		if want == nil {
			want = got
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d outcomes, want %d", w, len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("workers=%d: count[%v] = %v, want %v", w, k, got[k], v)
			}
		}
	}
}

// TestTrajectorySeedStability pins that the same seed reproduces the same
// distribution across two independent Sample calls (the caller's
// generator advances identically: one Uint64 per call).
func TestTrajectorySeedStability(t *testing.T) {
	b := testBackend(t)
	ts, err := NewTrajectorySampler(b)
	if err != nil {
		t.Fatal(err)
	}
	c := circuit.New("seed", 4).H(0).CX(0, 1).CX(1, 2).CX(2, 3).MeasureAll()
	d1, err := ts.Sample(c, 0, 300, mathx.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := ts.Sample(c, 0, 300, mathx.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range d1.Outcomes() {
		if d1.Count(v) != d2.Count(v) {
			t.Fatalf("count[%v] = %v vs %v for identical seeds", v, d1.Count(v), d2.Count(v))
		}
	}
}
