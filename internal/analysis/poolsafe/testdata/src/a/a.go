// Package a exercises the poolsafe retention and reset rules against a
// pooled scratch type modeled on the repo's trajArena/scanScratch.
package a

import "sync"

// arena is one worker's reusable scratch.
//
//qbeep:pooled
type arena struct {
	hits  []uint64
	probs []float64
	n     int
}

func (a *arena) Reset()            { a.hits = a.hits[:0] }
func (a *arena) resetCounts(n int) { a.n = n }

type result struct {
	hits []uint64
}

var global []uint64

func consume(xs []uint64) int { return len(xs) }

// retainers: every way an alias can outlive the borrow.

func returnsField(a *arena) []uint64 {
	return a.hits // want `a\.hits aliases a //qbeep:pooled buffer and is returned`
}

func returnsSlice(a *arena) []uint64 {
	return a.hits[:1] // want `a\.hits aliases a //qbeep:pooled buffer and is returned`
}

func sendsField(a *arena, ch chan []uint64) {
	ch <- a.hits // want `a\.hits aliases a //qbeep:pooled buffer and is sent on a channel`
}

func embedsField(a *arena, out []result) {
	out[0] = result{hits: a.hits} // want `a\.hits aliases a //qbeep:pooled buffer and is stored in a composite literal`
}

func storesGlobal(a *arena) {
	global = a.hits // want `a\.hits aliases a //qbeep:pooled buffer and is assigned outside the pooled value`
}

func storesIndexed(a *arena, out [][]uint64) {
	out[0] = a.hits // want `a\.hits aliases a //qbeep:pooled buffer and is assigned outside the pooled value`
}

func storesForeign(a *arena, r *result) {
	r.hits = a.hits // want `a\.hits aliases a //qbeep:pooled buffer and is assigned outside the pooled value`
}

func crossesGoroutine(a *arena) {
	go consume(a.hits) // want `a\.hits aliases a //qbeep:pooled buffer and is handed to a goroutine`
}

// borrows: all legal.

func borrows(a *arena) int {
	n := consume(a.hits)   // call argument
	hits := a.hits         // plain local alias
	hits = append(hits, 1) // grown locally
	a.hits = hits          // written back into the pooled value
	a.hits = a.hits[:0]    // truncation idiom
	if len(a.probs) > 0 {  // reads
		n += int(a.probs[0])
	}
	a.Reset() // method call on the pooled value
	return n
}

// allowRetain is the audited escape hatch.
func allowRetain(a *arena, out []result) {
	out[0] = result{hits: a.hits} //qbeep:allow-poolretain fixture: deliberate hand-off
}

// checkouts.

func checkoutNoReset(pool chan *arena) int {
	a := <-pool // want `a is checked out of a pool without a reset`
	n := consume(a.hits)
	pool <- a
	return n
}

func checkoutTruncates(pool chan *arena) int {
	a := <-pool
	a.hits = a.hits[:0]
	n := consume(a.hits)
	pool <- a
	return n
}

func checkoutResets(pool chan *arena) int {
	a := <-pool
	a.Reset()
	n := consume(a.hits)
	pool <- a
	return n
}

func checkoutSyncPool(p *sync.Pool) int {
	a := p.Get().(*arena) // want `a is checked out of a pool without a reset`
	n := consume(a.hits)
	p.Put(a)
	return n
}

func checkoutSyncPoolReset(p *sync.Pool) int {
	a := p.Get().(*arena)
	a.resetCounts(0)
	n := consume(a.hits)
	p.Put(a)
	return n
}

func checkoutAllowed(pool chan *arena) int {
	a := <-pool //qbeep:allow-poolreset fixture: buffers proven clean by caller
	n := consume(a.hits)
	pool <- a
	return n
}
