package poolsafe_test

import (
	"testing"

	"qbeep/internal/analysis/analysistest"
	"qbeep/internal/analysis/poolsafe"
)

func TestPoolsafe(t *testing.T) {
	analysistest.Run(t, poolsafe.Analyzer, "a")
}
