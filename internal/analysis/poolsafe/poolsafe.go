// Package poolsafe guards the arena/scratch ownership discipline from
// PRs 7-8: types marked
//
//	//qbeep:pooled
//
// (trajArena, scanScratch, stepScratch) own reusable buffers that cycle
// through worker pools, so an alias to one of their reference fields
// that outlives the borrow is a data race waiting for the next
// checkout. Two rules, both intraprocedural heuristics:
//
// poolretain — a reference field of a pooled value (slice, map,
// pointer, Dist) must not be retained past the frame: returning it,
// sending it on a channel, embedding it in a composite literal, storing
// it through an index or a foreign selector, or handing it to a raw
// goroutine are all flagged. Passing it as an ordinary call argument is
// a borrow and stays legal, as do plain local aliases (`hits := s.hits`
// ... `s.hits = hits`) and writes back into the same pooled value.
//
// poolreset — a value checked out of a pool (`s := <-pool`, or
// `s := p.Get().(*T)` from a sync.Pool) must be re-armed before use:
// some following statement in the same block has to call a Reset-like
// method on it or assign one of its fields (the `s.hits = s.hits[:0]`
// truncation idiom). A checkout with no such statement is flagged at
// the checkout site.
//
// //qbeep:allow-poolretain and //qbeep:allow-poolreset suppress
// deliberate violations with a rationale — the edgescan serial fast
// path, whose scratch is function-local and hands its buffer off
// without a copy, is the one sanctioned retention.
package poolsafe

import (
	"go/ast"
	"go/types"
	"strings"

	"qbeep/internal/analysis"
)

// Analyzer is the poolsafe checker.
var Analyzer = &analysis.Analyzer{
	Name: "poolsafe",
	Doc: "fields of //qbeep:pooled scratch types must not be retained past return or cross " +
		"goroutines, and pool checkouts must reset before reuse",
	Run: run,
}

func run(pass *analysis.Pass) error {
	pooled := pooledTypes(pass)
	if len(pooled) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		parents := parentMap(file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if base, ok := pooledFieldAccess(pass, pooled, n); ok {
					checkRetention(pass, n, base, parents)
				}
			case *ast.AssignStmt:
				checkCheckout(pass, pooled, n, parents)
			}
			return true
		})
	}
	return nil
}

// pooledTypes collects the type names in this package marked
// //qbeep:pooled (on the TypeSpec or its enclosing GenDecl).
func pooledTypes(pass *analysis.Pass) map[types.Object]bool {
	pooled := make(map[types.Object]bool)
	mark := func(doc *ast.CommentGroup, spec *ast.TypeSpec) {
		if doc == nil {
			return
		}
		for _, c := range doc.List {
			if c.Text == "//qbeep:pooled" || strings.HasPrefix(c.Text, "//qbeep:pooled ") {
				if obj := pass.Info.Defs[spec.Name]; obj != nil {
					pooled[obj] = true
				}
			}
		}
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				mark(gd.Doc, ts)
				mark(ts.Doc, ts)
			}
		}
	}
	return pooled
}

// pooledFieldAccess reports whether sel is `v.f` where v's type (after
// one pointer deref) is a pooled type and f is a reference-carrying
// field. It returns the object of the base variable v.
func pooledFieldAccess(pass *analysis.Pass, pooled map[types.Object]bool, sel *ast.SelectorExpr) (types.Object, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil, false
	}
	baseObj := pass.Info.Uses[id]
	if baseObj == nil {
		return nil, false
	}
	if !isPooledType(pooled, baseObj.Type()) {
		return nil, false
	}
	// Method values/calls are borrows, not field aliases.
	if s, ok := pass.Info.Selections[sel]; ok && s.Kind() != types.FieldVal {
		return nil, false
	}
	tv, ok := pass.Info.Types[sel]
	if !ok || !refType(tv.Type) {
		return nil, false
	}
	return baseObj, true
}

// isPooledType reports whether t (or its pointee) is a named pooled type.
func isPooledType(pooled map[types.Object]bool, t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && pooled[named.Obj()]
}

// refType reports whether t can alias shared storage.
func refType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer, *types.Chan, *types.Signature:
		return true
	}
	return false
}

// checkRetention classifies the syntactic context of one pooled-field
// access and reports the retaining ones.
func checkRetention(pass *analysis.Pass, sel *ast.SelectorExpr, base types.Object, parents map[ast.Node]ast.Node) {
	fieldName := sel.Sel.Name
	report := func(how string) {
		pass.Report(sel.Pos(), "poolretain",
			"%s.%s aliases a //qbeep:pooled buffer and is %s: copy it first, or keep the borrow inside the frame (//qbeep:allow-poolretain to override)",
			base.Name(), fieldName, how)
	}
	// Walk up through alias-preserving wrappers to the first node that
	// decides the value's fate.
	var child ast.Node = sel
	node := parents[sel]
	for {
		switch p := node.(type) {
		case *ast.ParenExpr:
			// transparent
		case *ast.SliceExpr:
			if p.X != child {
				return // an index bound, not the sliced value
			}
		case *ast.UnaryExpr:
			if p.Op.String() != "&" {
				return
			}
		case *ast.IndexExpr:
			// Reading an element; element-level retention is out of scope.
			return
		case *ast.SelectorExpr:
			// Deeper selection (method on the field, sub-field): a borrow.
			return
		case *ast.CallExpr:
			if p.Fun == child {
				return
			}
			// Ordinary call argument = borrow; an argument of a `go` call
			// crosses a goroutine boundary and is retention.
			if _, isGo := parents[p].(*ast.GoStmt); isGo {
				report("handed to a goroutine")
			}
			return
		case *ast.ReturnStmt:
			report("returned")
			return
		case *ast.SendStmt:
			if p.Value == child || containsNode(p.Value, sel) {
				report("sent on a channel")
			}
			return
		case *ast.CompositeLit:
			report("stored in a composite literal")
			return
		case *ast.KeyValueExpr:
			// inside a composite literal element
		case *ast.AssignStmt:
			if retainingAssign(pass, p, child, base) {
				report("assigned outside the pooled value")
			}
			return
		case *ast.BinaryExpr:
			// comparisons / arithmetic over the alias: a read
			return
		case *ast.RangeStmt, *ast.IfStmt, *ast.ForStmt, *ast.SwitchStmt,
			*ast.ExprStmt, *ast.IncDecStmt, *ast.TypeAssertExpr, nil:
			return
		default:
			return
		}
		child = node
		node = parents[node]
	}
}

// retainingAssign reports whether an assignment carrying the pooled
// field on its RHS stores it somewhere beyond a plain local or the
// pooled value itself.
func retainingAssign(pass *analysis.Pass, a *ast.AssignStmt, rhs ast.Node, base types.Object) bool {
	idx := -1
	for i, r := range a.Rhs {
		if r == rhs || containsNode(r, rhs) {
			idx = i
		}
	}
	if idx < 0 {
		return false
	}
	// With multi-assign the positions pair up; with a single RHS every
	// LHS receives from it.
	lhss := a.Lhs
	if len(a.Rhs) == len(a.Lhs) {
		lhss = a.Lhs[idx : idx+1]
	}
	for _, l := range lhss {
		switch lhs := l.(type) {
		case *ast.Ident:
			// A plain local (or blank) is a frame-scoped borrow; a
			// package-level variable outlives every checkout.
			obj := pass.Info.Uses[lhs]
			if obj == nil {
				obj = pass.Info.Defs[lhs]
			}
			if obj != nil && obj.Parent() == pass.Pkg.Scope() {
				return true
			}
		case *ast.SelectorExpr:
			if id, ok := lhs.X.(*ast.Ident); !ok || id.Name != base.Name() {
				return true // stored into a foreign struct
			}
		default:
			return true // index store, deref store, ...
		}
	}
	return false
}

// containsNode reports whether root's subtree contains target.
func containsNode(root ast.Node, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

// checkCheckout flags pool checkouts with no reset before reuse.
func checkCheckout(pass *analysis.Pass, pooled map[types.Object]bool, a *ast.AssignStmt, parents map[ast.Node]ast.Node) {
	if len(a.Lhs) != 1 || len(a.Rhs) != 1 {
		return
	}
	id, ok := a.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	if !isCheckout(pass, pooled, a.Rhs[0]) {
		return
	}
	obj := pass.Info.Defs[id]
	if obj == nil {
		obj = pass.Info.Uses[id]
	}
	if obj == nil {
		return
	}
	block, ok := parents[a].(*ast.BlockStmt)
	if !ok {
		return
	}
	after := false
	for _, stmt := range block.List {
		if stmt == ast.Stmt(a) {
			after = true
			continue
		}
		if after && resetsVar(pass, stmt, obj) {
			return
		}
	}
	pass.Report(a.Pos(), "poolreset",
		"%s is checked out of a pool without a reset: call its Reset method or truncate its buffers (e.g. %s.buf = %s.buf[:0]) before reuse (//qbeep:allow-poolreset to override)",
		id.Name, id.Name, id.Name)
}

// isCheckout reports whether rhs pulls a pooled value out of a pool:
// a channel receive of a pooled pointer or a sync.Pool Get assertion.
func isCheckout(pass *analysis.Pass, pooled map[types.Object]bool, rhs ast.Expr) bool {
	switch e := rhs.(type) {
	case *ast.UnaryExpr:
		if e.Op.String() != "<-" {
			return false
		}
		tv, ok := pass.Info.Types[e]
		return ok && isPooledType(pooled, tv.Type)
	case *ast.TypeAssertExpr:
		tv, ok := pass.Info.Types[e]
		if !ok || !isPooledType(pooled, tv.Type) {
			return false
		}
		call, ok := e.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		return ok && sel.Sel.Name == "Get"
	}
	return false
}

// resetsVar reports whether stmt re-arms obj: a method call on it whose
// name mentions Reset/ensure, or an assignment into one of its fields.
func resetsVar(pass *analysis.Pass, stmt ast.Stmt, obj types.Object) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
					name := strings.ToLower(sel.Sel.Name)
					if strings.Contains(name, "reset") || strings.Contains(name, "ensure") {
						found = true
					}
				}
			}
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				if sel, ok := l.(*ast.SelectorExpr); ok {
					if id, ok := sel.X.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// parentMap records each node's enclosing node.
func parentMap(file *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
