// Package statevector is a nodeterm fixture: its import-path base
// matches a deterministic kernel package, so the analyzer fires here.
package statevector

import (
	"fmt"
	"math/rand" // want `import of math/rand`
	"sort"
	"time"
)

func seed() int {
	return rand.Int()
}

func now() time.Time {
	return time.Now() // want `time\.Now in deterministic kernel package`
}

func since(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since in deterministic kernel package`
}

func sinceAllowed(t0 time.Time) time.Duration {
	return time.Since(t0) //qbeep:allow-time fixture: metric timing site
}

func sum(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v // want `float accumulation`
	}
	return s
}

func sumAllowed(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v //qbeep:allow-maprange fixture: order-insensitive by construction
	}
	return s
}

func sumSelfAssign(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s = s + v // want `float accumulation`
	}
	return s
}

func dump(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want `ordered output`
	}
}

// sortedKeys is the sanctioned pattern: collect, sort, then iterate.
func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// sliceSum accumulates over a slice — order is the slice order, fine.
func sliceSum(vs []float64) float64 {
	var s float64
	for _, v := range vs {
		s += v
	}
	return s
}

// innerSum accumulates into a loop-local: order cannot leak out.
func innerSum(m map[string][]float64) []float64 {
	var out []float64
	for _, vs := range m {
		var s float64
		for _, v := range vs {
			s += v
		}
		out = append(out, s)
	}
	sort.Float64s(out)
	return out
}
