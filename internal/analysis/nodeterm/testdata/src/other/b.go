// Package other is outside the kernel set: nodeterm must stay silent
// here even on wall-clock reads and map-order accumulation.
package other

import "time"

func now() time.Time {
	return time.Now()
}

func sum(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}
