package nodeterm_test

import (
	"testing"

	"qbeep/internal/analysis/analysistest"
	"qbeep/internal/analysis/nodeterm"
)

func TestNodeterm(t *testing.T) {
	analysistest.Run(t, nodeterm.Analyzer, "statevector", "other")
}
