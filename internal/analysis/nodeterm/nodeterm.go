// Package nodeterm enforces the determinism contract of the kernel
// packages: the mitigation core, the simulation kernels, and their
// numeric substrate must produce bitwise-identical output for a fixed
// seed at any worker count (DESIGN.md §7–§8). Three classes of
// nondeterminism are machine-checked:
//
//  1. math/rand (and math/rand/v2): kernel randomness must flow through
//     the seeded, splittable qbeep mathx streams — the global rand
//     source is process-wide mutable state that silently couples
//     callers. No directive lifts this; it is a hard ban.
//  2. time.Now / time.Since: wall-clock reads are nondeterministic
//     inputs. Metric/span timing sites are legitimate and carry a
//     //qbeep:allow-time directive with a rationale.
//  3. Iterating a map while accumulating floating-point values into
//     outer state, or printing from the loop body: Go randomizes map
//     iteration order, and float addition is not associative, so such
//     loops produce run-to-run drift. Ranges that only build another
//     map, or that collect keys for sorting, are fine and not flagged.
//     //qbeep:allow-maprange suppresses deliberate sites.
package nodeterm

import (
	"go/ast"
	"go/token"
	"go/types"

	"qbeep/internal/analysis"
)

// KernelPackages names the deterministic kernel packages by import-path
// base, per ISSUE/DESIGN: the analyzer only fires inside these.
var KernelPackages = map[string]bool{
	"statevector":   true,
	"densitymatrix": true,
	"core":          true,
	"bitstring":     true,
	"mathx":         true,
	"noise":         true,
}

// Analyzer is the nodeterm checker.
var Analyzer = &analysis.Analyzer{
	Name: "nodeterm",
	Doc: "forbid nondeterminism sources (math/rand, time.Now/Since, order-sensitive " +
		"map iteration) in the deterministic kernel packages",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !KernelPackages[analysis.PkgPathBase(pass.Pkg.Path())] {
		return nil
	}
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path := importPath(imp)
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Report(imp.Pos(), "rand",
					"import of %s in deterministic kernel package %s: use the seeded mathx streams (mathx.NewRNG/NewStream)",
					path, pass.Pkg.Name())
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if name, ok := timeCall(pass, n); ok {
					pass.Report(n.Pos(), "time",
						"time.%s in deterministic kernel package %s: wall-clock reads are nondeterministic inputs (annotate timing sites with //qbeep:allow-time)",
						name, pass.Pkg.Name())
				}
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

func importPath(imp *ast.ImportSpec) string {
	// The AST stores the quoted literal; strip the quotes manually so a
	// malformed literal (impossible post-typecheck) just mismatches.
	s := imp.Path.Value
	if len(s) >= 2 {
		return s[1 : len(s)-1]
	}
	return s
}

// timeCall reports whether call is time.Now(...) or time.Since(...).
func timeCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Now" && sel.Sel.Name != "Since") {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
	if !ok || pkgName.Imported().Path() != "time" {
		return "", false
	}
	return sel.Sel.Name, true
}

// checkMapRange flags `for ... range m` over a map when the loop body
// either accumulates floating-point values into state declared outside
// the loop (order-sensitive arithmetic) or prints (ordered output).
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	t := pass.Info.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // closures get their own analysis when called
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if reason, pos, ok := floatAccumulation(pass, rng, n); ok {
				pass.Report(pos, "maprange",
					"map iteration feeds %s: Go randomizes map order and float addition is not associative — iterate a sorted key slice (cf. Dist.Outcomes) instead",
					reason)
			}
		case *ast.CallExpr:
			if name, ok := printCall(pass, n); ok {
				pass.Report(n.Pos(), "maprange",
					"map iteration feeds ordered output via fmt.%s: Go randomizes map order — iterate a sorted key slice (cf. Dist.Outcomes) instead",
					name)
			}
		}
		return true
	})
}

// floatAccumulation reports whether assign accumulates a float/complex
// value into a variable declared outside the range statement: either
// `x += v`-style compound assignment, or `x = x + v` where the target
// reappears on the right.
func floatAccumulation(pass *analysis.Pass, rng *ast.RangeStmt, assign *ast.AssignStmt) (string, token.Pos, bool) {
	accumulating := false
	switch assign.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		accumulating = true
	case token.ASSIGN:
		// x = x <op> v (single-target self-reference form only).
		if len(assign.Lhs) == 1 && len(assign.Rhs) == 1 {
			if id, ok := assign.Lhs[0].(*ast.Ident); ok {
				obj := pass.Info.ObjectOf(id)
				if obj != nil {
					ast.Inspect(assign.Rhs[0], func(n ast.Node) bool {
						if rid, ok := n.(*ast.Ident); ok && pass.Info.ObjectOf(rid) == obj {
							accumulating = true
						}
						return true
					})
				}
			}
		}
	}
	if !accumulating || len(assign.Lhs) == 0 {
		return "", token.NoPos, false
	}
	lhs := assign.Lhs[0]
	if !isFloatOrComplex(pass.Info.TypeOf(lhs)) {
		return "", token.NoPos, false
	}
	// Accumulation into loop-local state resets every iteration and is
	// order-insensitive; only outer targets carry order across entries.
	if id, ok := lhs.(*ast.Ident); ok {
		obj := pass.Info.ObjectOf(id)
		if obj == nil || (obj.Pos() >= rng.Pos() && obj.Pos() < rng.End()) {
			return "", token.NoPos, false
		}
	}
	return "float accumulation across iterations", assign.Pos(), true
}

func isFloatOrComplex(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// printCall reports whether call is one of the fmt print family.
func printCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
	if !ok || pkgName.Imported().Path() != "fmt" {
		return "", false
	}
	switch sel.Sel.Name {
	case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
		return sel.Sel.Name, true
	}
	return "", false
}
