// Package analysistest is the golden-test harness for the analyzer
// suite, modeled on golang.org/x/tools/go/analysis/analysistest:
// fixture packages live under testdata/src/<pkg>/ next to the analyzer
// test, and lines expecting a diagnostic carry a
//
//	// want `regexp`
//
// comment (multiple patterns on one line expect multiple diagnostics).
// Every diagnostic must be matched by a want on its line and every want
// must be matched by a diagnostic, so both flagged and
// directive-suppressed cases are pinned.
//
// Fixture packages import each other by bare directory name (the
// spanend fixtures import a stub "obs"), and standard-library imports
// are type-checked against the real stdlib via `go list -export` —
// fully offline, mirroring internal/analysis/load.go.
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"qbeep/internal/analysis"
)

// Run applies a to the fixture packages named by pkgs, in order
// (dependencies first), and asserts diagnostics against the fixtures'
// want comments.
func Run(t *testing.T, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	fset := token.NewFileSet()

	type fixture struct {
		path  string
		files []*ast.File
	}
	fixtures := make([]*fixture, 0, len(pkgs))
	inFixtures := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		inFixtures[p] = true
	}

	stdImports := make(map[string]bool)
	for _, p := range pkgs {
		dir := filepath.Join("testdata", "src", p)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("reading fixture package %s: %v", p, err)
		}
		fx := &fixture{path: p}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				t.Fatalf("parsing fixture %s: %v", e.Name(), err)
			}
			fx.files = append(fx.files, f)
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err == nil && !inFixtures[path] {
					stdImports[path] = true
				}
			}
		}
		if len(fx.files) == 0 {
			t.Fatalf("fixture package %s has no Go files", p)
		}
		fixtures = append(fixtures, fx)
	}

	exports := map[string]string{}
	if len(stdImports) > 0 {
		paths := make([]string, 0, len(stdImports))
		for p := range stdImports {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		var err error
		exports, err = analysis.ExportData(".", paths)
		if err != nil {
			t.Fatalf("resolving stdlib export data: %v", err)
		}
	}

	local := make(map[string]*types.Package, len(fixtures))
	imp := &chainImporter{
		local: local,
		std: importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
			file, ok := exports[path]
			if !ok {
				return nil, &missingExport{path: path}
			}
			return os.Open(file)
		}),
	}
	conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", runtime.GOARCH)}

	for _, fx := range fixtures {
		info := analysis.NewInfo()
		tpkg, err := conf.Check(fx.path, fset, fx.files, info)
		if err != nil {
			t.Fatalf("typechecking fixture package %s: %v", fx.path, err)
		}
		local[fx.path] = tpkg

		pass := analysis.NewPass(a, fset, fx.files, tpkg, info)
		if err := a.Run(pass); err != nil {
			t.Fatalf("%s on fixture package %s: %v", a.Name, fx.path, err)
		}
		checkExpectations(t, fset, fx.files, pass.Diagnostics())
	}
}

// expectation is one want pattern awaiting a diagnostic.
type expectation struct {
	rx      *regexp.Regexp
	raw     string
	matched bool
}

// checkExpectations matches diagnostics against want comments
// line-by-line within one fixture package.
func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*expectation)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				patterns, ok := wantPatterns(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				k := key{file: pos.Filename, line: pos.Line}
				for _, p := range patterns {
					rx, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, p, err)
					}
					wants[k] = append(wants[k], &expectation{rx: rx, raw: p})
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key{file: pos.Filename, line: pos.Line}
		matched := false
		for _, w := range wants[k] {
			if !w.matched && w.rx.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	keys := make([]key, 0, len(wants))
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, w.raw)
			}
		}
	}
}

// wantPatterns parses `// want "rx" `rx`...` comments into the regexp
// source strings.
func wantPatterns(comment string) ([]string, bool) {
	text := strings.TrimPrefix(comment, "//")
	text = strings.TrimLeft(text, " \t")
	if strings.HasPrefix(text, "qbeep:") {
		// A //qbeep: directive under test is itself a line comment, so
		// its expectation cannot be a second comment on the same line;
		// it rides inside the directive after an embedded "// want".
		if i := strings.Index(text, "// want"); i >= 0 {
			return wantPatterns(text[i:])
		}
		return nil, false
	}
	if !strings.HasPrefix(text, "want ") && text != "want" {
		return nil, false
	}
	text = strings.TrimPrefix(text, "want")
	var out []string
	for {
		text = strings.TrimLeft(text, " \t")
		if text == "" {
			break
		}
		switch text[0] {
		case '"':
			end := -1
			for i := 1; i < len(text); i++ {
				if text[i] == '\\' {
					i++
					continue
				}
				if text[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, false
			}
			s, err := strconv.Unquote(text[:end+1])
			if err != nil {
				return nil, false
			}
			out = append(out, s)
			text = text[end+1:]
		case '`':
			end := strings.IndexByte(text[1:], '`')
			if end < 0 {
				return nil, false
			}
			out = append(out, text[1:1+end])
			text = text[end+2:]
		default:
			return nil, false
		}
	}
	return out, len(out) > 0
}

// chainImporter resolves fixture packages from the already-checked
// local set and everything else through stdlib export data.
type chainImporter struct {
	local map[string]*types.Package
	std   types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.local[path]; ok {
		return p, nil
	}
	return c.std.Import(path)
}

type missingExport struct{ path string }

func (m *missingExport) Error() string {
	return "analysistest: no export data for " + strconv.Quote(m.path) +
		" (fixture dependencies must be listed before their importers in Run)"
}
