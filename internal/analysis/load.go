package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Name  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// A ListedPackage mirrors the `go list -json` fields the loaders
// consume. The gcfacts gate reuses it to locate package sources and the
// export data of their dependencies without a second resolver.
type ListedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// List resolves patterns (relative to dir) with `go list -export -deps`:
// every package — targets and dependencies — comes back with its compiled
// export-data file, so callers can type-check or recompile targets fully
// offline. Target packages (the ones matching the patterns) are the
// entries with both Standard and DepOnly false.
func List(dir string, patterns ...string) ([]*ListedPackage, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	return goList(dir, patterns)
}

// Load resolves patterns (e.g. "./...") to packages and type-checks
// their non-test sources.
//
// The loader is deliberately offline: `go list -export -deps` compiles
// every dependency into the build cache and reports the export-data
// file per package, and imports are resolved through the stdlib gc
// importer with a lookup function over that table — the moral
// equivalent of golang.org/x/tools/go/packages.Load with
// NeedTypes|NeedSyntax, with zero external dependencies.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string, len(listed))
	var targets []*ListedPackage
	for _, lp := range listed {
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly && !lp.Standard {
			targets = append(targets, lp)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	})

	pkgs := make([]*Package, 0, len(targets))
	for _, lp := range targets {
		if len(lp.GoFiles) == 0 {
			continue
		}
		files := make([]*ast.File, 0, len(lp.GoFiles))
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("analysis: parse %s: %w", name, err)
			}
			files = append(files, f)
		}
		info := NewInfo()
		conf := types.Config{
			Importer: imp,
			Sizes:    types.SizesFor("gc", runtime.GOARCH),
		}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: typecheck %s: %w", lp.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  lp.ImportPath,
			Name:  lp.Name,
			Fset:  fset,
			Files: files,
			Pkg:   tpkg,
			Info:  info,
		})
	}
	return pkgs, nil
}

// ExportData resolves pkgs (import paths or patterns, relative to dir)
// and returns the import-path → export-data-file table for them and all
// their dependencies. analysistest uses it to type-check fixture
// packages against the real standard library without a network.
func ExportData(dir string, pkgs []string) (map[string]string, error) {
	listed, err := goList(dir, pkgs)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	return exports, nil
}

// NewInfo returns a types.Info with every lookup table the analyzers
// use allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// goList shells out to `go list -export -deps -json` and decodes the
// JSON stream.
func goList(dir string, patterns []string) ([]*ListedPackage, error) {
	args := []string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,Standard,DepOnly,GoFiles,Error",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*ListedPackage
	for {
		lp := new(ListedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}
