package nogo_test

import (
	"testing"

	"qbeep/internal/analysis/analysistest"
	"qbeep/internal/analysis/nogo"
)

func TestNogo(t *testing.T) {
	analysistest.Run(t, nogo.Analyzer, "a", "par")
}
