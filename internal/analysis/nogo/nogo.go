// Package nogo routes all concurrency through the sanctioned fan-out
// machinery: outside internal/par (the deterministic sharding helper)
// and internal/obs (the debug server), raw `go` statements and
// sync.WaitGroup fan-out are forbidden. Every parallel path that goes
// through par.ForEach inherits index-addressed result slots, the
// worker-count matrix tests, and the par.* metrics; a raw goroutine
// inherits none of that and is exactly how worker-count-dependent
// output sneaks back in.
//
// //qbeep:allow-go suppresses a deliberate raw goroutine and
// //qbeep:allow-waitgroup a deliberate WaitGroup, both with a
// rationale.
package nogo

import (
	"go/ast"
	"go/types"

	"qbeep/internal/analysis"
)

// ExemptPackages are the concurrency roots (by import-path base) where
// the primitives legitimately live.
var ExemptPackages = map[string]bool{
	"par": true,
	"obs": true,
}

// Analyzer is the nogo checker.
var Analyzer = &analysis.Analyzer{
	Name: "nogo",
	Doc: "forbid raw go statements and sync.WaitGroup fan-out outside internal/par " +
		"and internal/obs so every parallel path inherits the deterministic sharding machinery",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if ExemptPackages[analysis.PkgPathBase(pass.Pkg.Path())] {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Report(n.Pos(), "go",
					"raw go statement outside internal/par and internal/obs: route fan-out through par.ForEach so it inherits deterministic sharding (//qbeep:allow-go to override)")
			case *ast.SelectorExpr:
				if isWaitGroup(pass, n) {
					pass.Report(n.Pos(), "waitgroup",
						"sync.WaitGroup outside internal/par and internal/obs: route fan-out through par.ForEach (//qbeep:allow-waitgroup to override)")
				}
			}
			return true
		})
	}
	return nil
}

// isWaitGroup reports whether sel is the type reference sync.WaitGroup.
func isWaitGroup(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "WaitGroup" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
	return ok && pkgName.Imported().Path() == "sync"
}
