// Package par mirrors the real fan-out helper: it is a sanctioned
// concurrency root, so nogo stays silent here.
package par

import "sync"

func Fanout(n int, fn func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}
