// Package a is a nogo fixture: a normal package where raw fan-out
// primitives are forbidden.
package a

import "sync"

func fanout(n int, fn func(int)) {
	var wg sync.WaitGroup // want `sync\.WaitGroup outside`
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) { // want `raw go statement`
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

func allowedGo(done chan struct{}) {
	go close(done) //qbeep:allow-go fixture: fire-and-forget notifier
}

func allowedWaitGroup() {
	var wg sync.WaitGroup //qbeep:allow-waitgroup fixture: deliberate local barrier
	wg.Wait()
}

// mutexes and other sync primitives stay legal everywhere.
func locked(mu *sync.Mutex, fn func()) {
	mu.Lock()
	defer mu.Unlock()
	fn()
}
