package floatcmp_test

import (
	"testing"

	"qbeep/internal/analysis/analysistest"
	"qbeep/internal/analysis/floatcmp"
)

func TestFloatcmp(t *testing.T) {
	analysistest.Run(t, floatcmp.Analyzer, "a")
}
