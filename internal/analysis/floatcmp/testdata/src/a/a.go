// Package a exercises the float-equality checker.
package a

type temperature float64

func eq(a, b float64) bool {
	return a == b // want `== on floating-point`
}

func neq(a, b float64) bool {
	return a != b // want `!= on floating-point`
}

func eqComplex(a, b complex128) bool {
	return a == b // want `== on floating-point`
}

func eqNamed(a, b temperature) bool {
	return a == b // want `== on floating-point`
}

func allowed(a, b float64) bool {
	return a == b //qbeep:allow-floatcmp fixture: operands are exact by construction
}

// zero is a sentinel, produced exactly rather than computed toward.
func zeroSentinel(a float64) bool {
	return a == 0
}

func zeroSentinelFloat(a float64) bool {
	return 0.0 != a
}

// self-comparison is the portable NaN test.
func isNaN(a float64) bool {
	return a != a
}

// integer equality is exact; not our business.
func ints(a, b int) bool {
	return a == b
}
