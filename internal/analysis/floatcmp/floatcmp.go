// Package floatcmp forbids == and != on floating-point and complex
// values. Exact float equality is almost always a latent bug in a
// numeric codebase — accumulated rounding differs across fusion
// decisions and worker counts — so comparisons must go through the
// epsilon helpers the kernel equivalence tests use (or math.Abs against
// a tolerance).
//
// Built-in allowlist, mirroring the idioms that are genuinely exact:
//
//   - comparison against a constant zero (`x == 0`): zero is a sentinel
//     ("no mass", "disabled") and is produced exactly, not computed
//     toward.
//   - self-comparison (`x != x`): the portable NaN test.
//
// Everything else needs an //qbeep:allow-floatcmp directive with a
// rationale explaining why the compared values are exact.
package floatcmp

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"qbeep/internal/analysis"
)

// Analyzer is the floatcmp checker.
var Analyzer = &analysis.Analyzer{
	Name: "floatcmp",
	Doc:  "forbid ==/!= on float64/complex128 values outside the exact-comparison allowlist (zero sentinel, NaN self-test)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			cmp, ok := n.(*ast.BinaryExpr)
			if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
				return true
			}
			if !isFloatOrComplex(pass.Info.TypeOf(cmp.X)) && !isFloatOrComplex(pass.Info.TypeOf(cmp.Y)) {
				return true
			}
			if isZeroConst(pass, cmp.X) || isZeroConst(pass, cmp.Y) {
				return true
			}
			if isSelfCompare(pass, cmp) {
				return true
			}
			pass.Report(cmp.OpPos, "floatcmp",
				"%s on floating-point values: use an epsilon comparison (math.Abs(a-b) <= eps) or //qbeep:allow-floatcmp with a rationale",
				cmp.Op)
			return true
		})
	}
	return nil
}

func isFloatOrComplex(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// isZeroConst reports whether e is a compile-time constant equal to
// zero (covers 0, 0.0, -0.0, and named zero constants).
func isZeroConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	case constant.Complex:
		return constant.Sign(constant.Real(tv.Value)) == 0 && constant.Sign(constant.Imag(tv.Value)) == 0
	}
	return false
}

// isSelfCompare recognizes `x != x` / `x == x` where both sides resolve
// to the same variable — the NaN idiom.
func isSelfCompare(pass *analysis.Pass, cmp *ast.BinaryExpr) bool {
	lx, ok := cmp.X.(*ast.Ident)
	if !ok {
		return false
	}
	ly, ok := cmp.Y.(*ast.Ident)
	if !ok {
		return false
	}
	lo, ro := pass.Info.ObjectOf(lx), pass.Info.ObjectOf(ly)
	return lo != nil && lo == ro
}
