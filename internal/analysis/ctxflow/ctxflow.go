// Package ctxflow enforces the context-plumbing convention from
// DESIGN.md §10: context.Background() and context.TODO() are roots that
// detach work from cancellation, so they may only be minted at the
// process edge. Inside the library they are allowed in exactly one
// shape — the documented Background-wrapper shim, a non-Ctx function
// whose body hands the fresh root straight to its Ctx variant:
//
//	func (t *TrajectorySampler) Sample(...) (...) {
//	    return t.SampleCtx(context.Background(), ...)
//	}
//
// Everything else is a flag: a Background() minted inside a function
// that already receives a context (it must thread the received ctx
// through), a Background() assigned to a variable or passed to a
// non-Ctx callee (cancellation silently severed mid-pipeline), or a
// Ctx-suffixed function minting its own root. Package main (the cmd/
// binaries) is the process edge and is exempt wholesale; test files are
// never loaded by the driver.
//
// //qbeep:allow-ctx suppresses a deliberate root with a rationale —
// the obs shutdown timeout and the nil-ctx normalization in the tracer
// are the two sanctioned cases.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"qbeep/internal/analysis"
)

// Analyzer is the ctxflow checker.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "context.Background()/TODO() only at the process edge (package main) or as the direct " +
		"argument of a Background-wrapper shim forwarding to the Ctx variant; functions that " +
		"receive a context must thread it through",
	Run: run,
}

// funcFrame is one entry in the lexical function stack during the walk.
type funcFrame struct {
	name   string // declared name; "" for function literals
	hasCtx bool   // declares a context.Context parameter
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, file := range pass.Files {
		var stack []funcFrame
		// parent tracks each node's enclosing node so a Background() call
		// can see whether it is a direct call argument; the explicit walk
		// (ast.Inspect cannot say which node a post-order visit exits)
		// keeps the function stack accurate.
		parent := make(map[ast.Node]ast.Node)
		walk(pass, file, &stack, parent)
	}
	return nil
}

// walk descends the AST keeping the function stack and parent links
// accurate.
func walk(pass *analysis.Pass, n ast.Node, stack *[]funcFrame, parent map[ast.Node]ast.Node) {
	switch fn := n.(type) {
	case *ast.FuncDecl:
		*stack = append(*stack, funcFrame{name: fn.Name.Name, hasCtx: hasCtxParam(pass, fn.Type)})
		defer func() { *stack = (*stack)[:len(*stack)-1] }()
	case *ast.FuncLit:
		*stack = append(*stack, funcFrame{hasCtx: hasCtxParam(pass, fn.Type)})
		defer func() { *stack = (*stack)[:len(*stack)-1] }()
	case *ast.CallExpr:
		if which := backgroundOrTODO(pass, fn); which != "" {
			checkRoot(pass, fn, which, *stack, parent)
		}
	}
	children := childNodes(n)
	for _, c := range children {
		parent[c] = n
		walk(pass, c, stack, parent)
	}
}

// checkRoot decides whether one context.Background()/TODO() call is the
// sanctioned wrapper-shim shape.
func checkRoot(pass *analysis.Pass, call *ast.CallExpr, which string, stack []funcFrame, parent map[ast.Node]ast.Node) {
	// Received-context rule: any enclosing function (closure or decl)
	// already holding a ctx must thread it, never mint a root.
	for _, f := range stack {
		if f.hasCtx {
			pass.Report(call.Pos(), "ctx",
				"context.%s() inside a function that receives a context: thread the received ctx through (//qbeep:allow-ctx to override)", which)
			return
		}
	}
	// Wrapper-shim rule: the root must be a direct argument of a call to
	// a Ctx-suffixed callee, from a non-Ctx-suffixed named function.
	encl := ""
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].name != "" {
			encl = stack[i].name
			break
		}
	}
	if outer, ok := parent[call].(*ast.CallExpr); ok && strings.HasSuffix(calleeName(outer), "Ctx") {
		if encl != "" && !strings.HasSuffix(encl, "Ctx") {
			return // the documented Background-wrapper shim
		}
		pass.Report(call.Pos(), "ctx",
			"context.%s() forwarded to a Ctx variant from %q, which is itself a Ctx variant: accept and thread a ctx parameter instead (//qbeep:allow-ctx to override)", which, encl)
		return
	}
	pass.Report(call.Pos(), "ctx",
		"context.%s() outside package main and outside a Background-wrapper shim: accept a ctx parameter or forward directly to the Ctx variant (//qbeep:allow-ctx to override)", which)
}

// backgroundOrTODO returns "Background" or "TODO" when call is that
// context-package root constructor, else "".
func backgroundOrTODO(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
	if !ok || pkgName.Imported().Path() != "context" {
		return ""
	}
	return sel.Sel.Name
}

// calleeName extracts the bare called-function name from a call
// expression: f(...) → "f", recv.Method(...) → "Method".
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// hasCtxParam reports whether the signature declares a parameter of
// type context.Context.
func hasCtxParam(pass *analysis.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		tv, ok := pass.Info.Types[field.Type]
		if !ok {
			continue
		}
		named, ok := tv.Type.(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context" {
			return true
		}
	}
	return false
}

// childNodes lists a node's direct children in source order.
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil {
			return false
		}
		if c == n {
			return true
		}
		out = append(out, c)
		return false // direct children only; walk recurses itself
	})
	return out
}
