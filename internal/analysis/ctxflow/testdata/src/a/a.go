// Package a exercises the ctxflow rules: wrapper shims pass, every
// other Background()/TODO() root is flagged, and received contexts must
// be threaded.
package a

import "context"

type sampler struct{}

func (s *sampler) SampleCtx(ctx context.Context, n int) int { _ = ctx; return n }

func runCtx(ctx context.Context, n int) int { _ = ctx; return n }

// Sample is the sanctioned Background-wrapper shim: non-Ctx name, root
// passed directly to the Ctx variant.
func (s *sampler) Sample(n int) int {
	return s.SampleCtx(context.Background(), n)
}

// Run is a sanctioned shim over a plain function.
func Run(n int) int {
	return runCtx(context.Background(), n)
}

// stash assigns the root to a variable first — not a shim.
func stash(n int) int {
	ctx := context.Background() // want `context\.Background\(\) outside package main and outside a Background-wrapper shim`
	return runCtx(ctx, n)
}

// todoRoot mints a TODO root into a non-Ctx callee.
func todoRoot() context.Context {
	return context.TODO() // want `context\.TODO\(\) outside package main and outside a Background-wrapper shim`
}

// threaded receives a ctx but mints a fresh root anyway.
func threaded(ctx context.Context, n int) int {
	_ = ctx
	return runCtx(context.Background(), n) // want `context\.Background\(\) inside a function that receives a context`
}

// closureThreaded: the enclosing closure's ctx counts too.
func closureThreaded() func(context.Context) int {
	return func(ctx context.Context) int {
		_ = ctx
		return runCtx(context.Background(), 1) // want `context\.Background\(\) inside a function that receives a context`
	}
}

// DoubleCtx is itself a Ctx variant minting a root — it must accept
// one instead.
func DoubleCtx(n int) int {
	return runCtx(context.Background(), n) // want `context\.Background\(\) forwarded to a Ctx variant from "DoubleCtx"`
}

// allowed is a deliberate root carrying the audited escape hatch.
func allowed() context.Context {
	return context.Background() //qbeep:allow-ctx fixture: deliberate detached root
}
