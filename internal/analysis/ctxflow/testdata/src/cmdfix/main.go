// Package main is the process edge: minting roots here is the whole
// point, so ctxflow stays silent.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = ctx
	_ = context.TODO()
}
