package ctxflow_test

import (
	"testing"

	"qbeep/internal/analysis/analysistest"
	"qbeep/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, ctxflow.Analyzer, "a", "cmdfix")
}
