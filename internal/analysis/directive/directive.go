// Package directive is the grammar checker for the //qbeep: comment
// namespace itself. Every other checker consumes these comments
// permissively — an unknown verb or a typo'd suppression key is simply
// ignored — which turns a misspelling like //qbeep:allocsfree or
// //qbeep:allow-flotcmp into a silently unenforced invariant. This
// analyzer closes that hole:
//
//   - //qbeep:allow-<key> must use a key from analysis.AllowKeys and
//     must carry a rationale (the directive is an audited escape hatch,
//     DESIGN.md §9; a nested "//" does not count as one).
//   - any other //qbeep:<verb> must be a registered fact verb
//     (analysis.FactVerbs) and must sit where its consumer looks for
//     it: allocfree/noescape/mustinline in a function's doc comment,
//     pooled in a type declaration's doc comment.
//
// Findings carry category "directive"; //qbeep:allow-directive exists
// for the pathological case of discussing a directive in prose.
package directive

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"qbeep/internal/analysis"
)

// Analyzer is the directive grammar checker.
var Analyzer = &analysis.Analyzer{
	Name: "directive",
	Doc: "every //qbeep: comment must use a registered verb or allow-key and sit where its " +
		"consumer looks for it, so a typo cannot silently disable an invariant",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		funcDoc, typeDoc := docComments(file)
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				checkComment(pass, c, funcDoc, typeDoc)
			}
		}
	}
	return nil
}

// docComments indexes which comments belong to function doc groups and
// which to type declaration doc groups.
func docComments(file *ast.File) (funcDoc, typeDoc map[*ast.Comment]bool) {
	funcDoc = make(map[*ast.Comment]bool)
	typeDoc = make(map[*ast.Comment]bool)
	add := func(cg *ast.CommentGroup, into map[*ast.Comment]bool) {
		if cg == nil {
			return
		}
		for _, c := range cg.List {
			into[c] = true
		}
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			add(d.Doc, funcDoc)
		case *ast.GenDecl:
			if d.Tok != token.TYPE {
				continue
			}
			add(d.Doc, typeDoc)
			for _, spec := range d.Specs {
				if ts, ok := spec.(*ast.TypeSpec); ok {
					add(ts.Doc, typeDoc)
				}
			}
		}
	}
	return funcDoc, typeDoc
}

func checkComment(pass *analysis.Pass, c *ast.Comment, funcDoc, typeDoc map[*ast.Comment]bool) {
	const prefix = "//qbeep:"
	if !strings.HasPrefix(c.Text, prefix) {
		return
	}
	rest := strings.TrimPrefix(c.Text, prefix)
	if strings.HasPrefix(rest, "allow-") {
		checkAllow(pass, c, strings.TrimPrefix(rest, "allow-"))
		return
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		pass.Report(c.Pos(), "directive", "empty //qbeep: directive")
		return
	}
	verb := fields[0]
	if !analysis.FactVerbs[verb] {
		pass.Report(c.Pos(), "directive",
			"unknown //qbeep: directive %q: registered verbs are %s (and //qbeep:allow-<key> for suppressions)",
			verb, registered(analysis.FactVerbs))
		return
	}
	switch verb {
	case "pooled":
		if !typeDoc[c] {
			pass.Report(c.Pos(), "directive",
				"//qbeep:pooled must be in a type declaration's doc comment; here poolsafe never sees it")
		}
	default: // allocfree, noescape, mustinline
		if !funcDoc[c] {
			pass.Report(c.Pos(), "directive",
				"//qbeep:%s must be in a function's doc comment; here the gcfacts gate never sees it", verb)
		}
	}
}

// checkAllow validates one //qbeep:allow-<key> suppression.
func checkAllow(pass *analysis.Pass, c *ast.Comment, rest string) {
	key := rest
	rationale := ""
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		key, rationale = rest[:i], strings.TrimSpace(rest[i+1:])
	}
	if key == "" {
		pass.Report(c.Pos(), "directive", "//qbeep:allow- with no key")
		return
	}
	if !analysis.AllowKeys[key] {
		pass.Report(c.Pos(), "directive",
			"unknown suppression key %q in //qbeep:allow-%s: registered keys are %s",
			key, key, registered(analysis.AllowKeys))
		return
	}
	// A nested comment marker is not a rationale (it is how the test
	// harness embeds expectations).
	if i := strings.Index(rationale, "//"); i >= 0 {
		rationale = strings.TrimSpace(rationale[:i])
	}
	if rationale == "" {
		pass.Report(c.Pos(), "directive",
			"//qbeep:allow-%s without a rationale: suppressions are audited escape hatches, say why (DESIGN.md §9)", key)
	}
}

// registered renders a sorted, comma-separated registry for messages.
func registered(set map[string]bool) string {
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}
