package directive_test

import (
	"testing"

	"qbeep/internal/analysis/analysistest"
	"qbeep/internal/analysis/directive"
)

func TestDirective(t *testing.T) {
	analysistest.Run(t, directive.Analyzer, "a")
}
