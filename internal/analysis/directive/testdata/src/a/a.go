// Package a exercises the //qbeep: grammar checker: unknown verbs,
// unknown suppression keys, missing rationales, and misplaced fact
// directives are flagged; well-formed directives pass.
package a

// good is a correctly annotated function.
//
//qbeep:allocfree
//qbeep:mustinline
//qbeep:noescape p
func good(p *int) int { return *p }

// scratch is a correctly marked pooled type.
//
//qbeep:pooled
type scratch struct {
	buf []byte
}

// typoVerb carries a misspelled fact verb that gcfacts would ignore.
//
//qbeep:allocsfree // want `unknown //qbeep: directive "allocsfree"`
func typoVerb() {}

// misplacedPooled puts the type marker on a function.
//
//qbeep:pooled // want `//qbeep:pooled must be in a type declaration's doc comment`
func misplacedPooled() {}

// bodyDirective floats a fact verb inside a body where no consumer
// looks.
func bodyDirective() {
	//qbeep:mustinline // want `//qbeep:mustinline must be in a function's doc comment`
	_ = 1
}

// varDirective hangs allocfree on a var declaration.
//
//qbeep:allocfree // want `//qbeep:allocfree must be in a function's doc comment`
var sink int

func suppressions() int {
	x := 1 //qbeep:allow-floatcmp fixture: well-formed suppression
	y := 2 //qbeep:allow-flotcmp fixture rationale // want `unknown suppression key "flotcmp"`
	z := 3 //qbeep:allow-rand // want `//qbeep:allow-rand without a rationale`
	return x + y + z + sink
}

// prose mentions qbeep in ordinary text without the directive prefix —
// no finding, the grammar only owns the //qbeep: namespace.
func prose() {}
