package analysis

import (
	"fmt"
	"go/token"
	"io"
	"path/filepath"
	"sort"
)

// A Finding is one printed diagnostic with its resolved position and
// originating analyzer.
type Finding struct {
	Position token.Position
	Analyzer string
	Diagnostic
}

// Run is the multichecker driver: it loads the packages matched by
// patterns (relative to dir), applies every analyzer to every package,
// and writes findings to w as "file:line:col: message (analyzer)"
// lines, sorted by position. It returns the findings so callers (the
// qbeep-lint binary, tests) can exit non-zero or assert on them.
func Run(w io.Writer, dir string, analyzers []*Analyzer, patterns ...string) ([]Finding, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := NewPass(a, pkg.Fset, pkg.Files, pkg.Pkg, pkg.Info)
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range pass.Diagnostics() {
				findings = append(findings, Finding{
					Position:   pkg.Fset.Position(d.Pos),
					Analyzer:   a.Name,
					Diagnostic: d,
				})
			}
		}
	}
	PrintFindings(w, dir, findings)
	return findings, nil
}

// PrintFindings sorts findings by position and writes them to w as
// "file:line:col: message (analyzer)" lines, filenames relative to dir.
// Shared by the multichecker driver and the gcfacts gate so both speak
// the same output format.
func PrintFindings(w io.Writer, dir string, findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Position, findings[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	for _, f := range findings {
		fmt.Fprintf(w, "%s: %s (%s)\n", shortPosition(f.Position, dir), f.Message, f.Analyzer)
	}
}

// shortPosition renders a position with the filename relative to dir
// when possible, keeping lint output stable across checkouts.
func shortPosition(p token.Position, dir string) string {
	name := p.Filename
	if dir != "" {
		if abs, err := filepath.Abs(dir); err == nil {
			if rel, err := filepath.Rel(abs, name); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
				name = rel
			}
		}
	}
	return fmt.Sprintf("%s:%d:%d", name, p.Line, p.Column)
}
