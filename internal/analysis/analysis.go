// Package analysis is the repo's static-analysis framework: a minimal,
// dependency-free port of the golang.org/x/tools/go/analysis surface
// (Analyzer, Pass, Diagnostic) plus the //qbeep:allow-* suppression
// directive grammar shared by every checker.
//
// The build environment is hermetic — no module proxy — so the suite is
// built on the standard library alone: packages are loaded with
// `go list -export` and type-checked through the stdlib gc importer
// (see load.go), and the driver in run.go replaces x/tools'
// multichecker. Analyzer Run functions are source-compatible with the
// x/tools shape, so individual checkers could migrate to the real
// framework unchanged if the dependency ever lands.
//
// Directive grammar (DESIGN.md §9): a comment of the form
//
//	//qbeep:allow-<check> [rationale...]
//
// suppresses diagnostics carrying category <check> on the same line or
// on the line directly below the comment (so both trailing and
// standalone placements work). Every suppression is expected to carry a
// rationale; the directive is an audited escape hatch, not an off
// switch.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -only filters.
	Name string
	// Doc is the one-paragraph help text shown by qbeep-lint -list.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Pos token.Pos
	// Category is the directive key that suppresses this diagnostic
	// (the <check> in //qbeep:allow-<check>).
	Category string
	Message  string
}

// A Pass provides one analyzer run with a single type-checked package
// and collects its diagnostics.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags      []Diagnostic
	directives DirectiveIndex
}

// NewPass assembles a Pass for one package. Directive comments are
// indexed up front so Report can consult them in O(1).
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) *Pass {
	p := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, Info: info}
	p.directives = IndexDirectives(fset, files)
	return p
}

// DirectivePrefix is the comment prefix of the suppression grammar.
const DirectivePrefix = "//qbeep:allow-"

// AllowKeys is the registry of every suppression category the suite can
// emit — the legal <check> values in //qbeep:allow-<check>. The
// directive analyzer rejects keys outside this set, so a typo'd
// suppression is a lint failure instead of a silent no-op. Adding a
// category to an analyzer means adding it here.
var AllowKeys = map[string]bool{
	// floatcmp
	"floatcmp": true,
	// nodeterm
	"rand": true, "time": true, "maprange": true,
	// nogo
	"go": true, "waitgroup": true,
	// spanend
	"spanleak": true,
	// ctxflow
	"ctx": true,
	// poolsafe
	"poolretain": true, "poolreset": true,
	// gcfacts
	"allocfree": true, "noescape": true, "mustinline": true,
	// directive (the grammar checker itself)
	"directive": true,
}

// FactVerbs is the registry of the non-suppression //qbeep: directives:
// the compiler-fact annotations enforced by gcfacts plus the ownership
// marker consumed by poolsafe. Like AllowKeys, membership here is what
// makes a directive legal to the grammar checker.
var FactVerbs = map[string]bool{
	// gcfacts: function performs no heap allocation on any path
	// (frame-local: diagnostics attributed to its own source lines).
	"allocfree": true,
	// gcfacts: the named parameter must not escape or leak.
	"noescape": true,
	// gcfacts: the function must stay within the inlining budget.
	"mustinline": true,
	// poolsafe: the type is a pooled/arena scratch whose fields must not
	// be retained past return or sent across goroutine boundaries.
	"pooled": true,
}

// A DirectiveIndex records which //qbeep:allow-<key> suppressions are
// active on which lines of which files.
type DirectiveIndex map[string]map[int]map[string]bool

// IndexDirectives scans every comment in files for //qbeep:allow-<key>
// directives and records which keys are active on which lines. A
// directive on line L covers both L (trailing placement) and L+1
// (standalone comment above the flagged statement).
func IndexDirectives(fset *token.FileSet, files []*ast.File) DirectiveIndex {
	idx := make(DirectiveIndex)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, DirectivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, DirectivePrefix)
				key := rest
				if i := strings.IndexAny(rest, " \t"); i >= 0 {
					key = rest[:i]
				}
				if key == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := idx[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					idx[pos.Filename] = byLine
				}
				for _, line := range [2]int{pos.Line, pos.Line + 1} {
					keys := byLine[line]
					if keys == nil {
						keys = make(map[string]bool)
						byLine[line] = keys
					}
					keys[key] = true
				}
			}
		}
	}
	return idx
}

// Allowed reports whether an //qbeep:allow-<key> directive covers the
// given file position.
func (idx DirectiveIndex) Allowed(position token.Position, key string) bool {
	byLine := idx[position.Filename]
	if byLine == nil {
		return false
	}
	return byLine[position.Line][key]
}

// Suppressed reports whether a diagnostic of category key at pos is
// silenced by an //qbeep:allow-<key> directive.
func (p *Pass) Suppressed(pos token.Pos, key string) bool {
	return p.directives.Allowed(p.Fset.Position(pos), key)
}

// Report records a diagnostic of the given category unless a directive
// suppresses it.
func (p *Pass) Report(pos token.Pos, category, format string, args ...any) {
	if p.Suppressed(pos, category) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Category: category,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostics returns the collected diagnostics in report order.
func (p *Pass) Diagnostics() []Diagnostic { return p.diags }

// PkgPathBase returns the last element of a package import path —
// the key the analyzers use to recognize the kernel packages and the
// par/obs concurrency roots, so the checkers work identically on the
// real tree ("qbeep/internal/obs") and on analysistest fixtures
// ("obs").
func PkgPathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
