package gcfacts

// Compiler invocation and -m=2 diagnostic parsing.
//
// The gate shells out to `go tool compile` directly instead of `go build
// -gcflags=-m=2`: the go command caches compiles keyed by flags, so a
// second identical build emits no diagnostics at all and the gate would
// flip between "checked" and "vacuously silent" depending on cache
// temperature. Driving the compiler ourselves makes every run emit the
// full fact stream, deterministically, at the cost of one extra compile
// per directive-bearing package (the object file goes to a temp dir and
// is discarded).
//
// Imports resolve through an importcfg assembled from `go list -export
// -deps` (see internal/analysis.List) — the same offline loading
// strategy as the AST analyzers, so the gate needs no module proxy and
// no GOPATH writes beyond the ordinary build cache.

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"qbeep/internal/analysis"
)

// A diag is one parsed compiler diagnostic.
type diag struct {
	file string
	line int
	col  int
	msg  string
}

// writeImportcfg materializes the import-path → export-file table as a
// compiler importcfg. One file serves every target package: entries for
// packages a target does not import are ignored by the compiler.
func writeImportcfg(dir string, exports map[string]string) (string, error) {
	paths := make([]string, 0, len(exports))
	for p := range exports {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var b strings.Builder
	for _, p := range paths {
		fmt.Fprintf(&b, "packagefile %s=%s\n", p, exports[p])
	}
	cfg := filepath.Join(dir, "importcfg")
	if err := os.WriteFile(cfg, []byte(b.String()), 0o644); err != nil {
		return "", err
	}
	return cfg, nil
}

// compilePackage compiles one package with escape-analysis and inlining
// diagnostics enabled and returns the parsed diagnostic stream. srcDir
// is the directory holding the GoFiles; importPath names the package to
// the compiler (it must match how dependents import it, but for a leaf
// check any stable name works).
func compilePackage(srcDir, importPath string, goFiles []string, importcfg, tmpDir string) ([]diag, error) {
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("gcfacts: package %s has no Go files", importPath)
	}
	obj := filepath.Join(tmpDir, strings.ReplaceAll(importPath, "/", "_")+".o")
	args := []string{"tool", "compile", "-p", importPath, "-importcfg", importcfg, "-m=2", "-o", obj}
	args = append(args, goFiles...)
	cmd := exec.Command("go", args...)
	cmd.Dir = srcDir
	out, err := cmd.CombinedOutput()
	if err != nil {
		// Compile errors (as opposed to diagnostics) mean the gate cannot
		// certify anything: surface them verbatim.
		return nil, fmt.Errorf("gcfacts: compiling %s: %v\n%s", importPath, err, out)
	}
	return parseDiags(string(out)), nil
}

// parseDiags splits raw -m=2 output into diagnostics. Lines are
// "file:line:col: message"; messages starting with whitespace are the
// indented flow traces of the preceding escape diagnostic and carry no
// new facts, so they are dropped, as are exact duplicates (the verbose
// stream repeats several messages once with and once without a trailing
// colon).
func parseDiags(out string) []diag {
	var diags []diag
	seen := make(map[diag]bool)
	for _, line := range strings.Split(out, "\n") {
		d, ok := parseDiagLine(line)
		if !ok {
			continue
		}
		if seen[d] {
			continue
		}
		seen[d] = true
		diags = append(diags, d)
	}
	return diags
}

// parseDiagLine parses one "file:line:col: message" diagnostic. Flow
// traces (indented messages) and non-diagnostic output are rejected.
func parseDiagLine(line string) (diag, bool) {
	if line == "" {
		return diag{}, false
	}
	// Split off "file:line:col: " — scan for ": " separators from the
	// left so Windows-style or relative paths with colons elsewhere don't
	// confuse the parse (positions are always numeric).
	rest := line
	ci := strings.Index(rest, ": ")
	if ci < 0 {
		return diag{}, false
	}
	posPart, msg := rest[:ci], rest[ci+2:]
	if msg == "" || msg[0] == ' ' || msg[0] == '\t' {
		return diag{}, false // flow trace detail
	}
	segs := strings.Split(posPart, ":")
	if len(segs) < 3 {
		return diag{}, false
	}
	col, err := strconv.Atoi(segs[len(segs)-1])
	if err != nil {
		return diag{}, false
	}
	lineNo, err := strconv.Atoi(segs[len(segs)-2])
	if err != nil {
		return diag{}, false
	}
	file := strings.Join(segs[:len(segs)-2], ":")
	// The verbose stream emits "x escapes to heap:" (with flow trace) and
	// "x escapes to heap" (summary); normalize to the bare form.
	msg = strings.TrimSuffix(msg, ":")
	return diag{file: file, line: lineNo, col: col, msg: msg}, true
}

// facts is the per-package fact database distilled from the diagnostic
// stream.
type facts struct {
	// canInline / cannotInline key by the "file:line" of the function
	// declaration (the compiler reports inlinability at the decl name
	// position). Values carry the compiler's own phrasing for diagnostics.
	canInline    map[string]string
	cannotInline map[string]string
	// heapEscapes are "moved to heap: x" / "<expr> escapes to heap"
	// events — the per-frame allocation facts.
	heapEscapes []diag
	// paramLeaks are "leaking param: x" / "leaking param content: x"
	// events, positioned at the parameter.
	paramLeaks []paramLeak
}

type paramLeak struct {
	d     diag
	name  string
	what  string // "leaking param" or "leaking param content"
	moved bool   // "moved to heap" (address escapes) rather than a leak
}

// lineKey renders the file:line fact-database key.
func lineKey(file string, line int) string {
	return file + ":" + strconv.Itoa(line)
}

// buildFacts classifies the diagnostic stream.
func buildFacts(diags []diag) *facts {
	f := &facts{
		canInline:    make(map[string]string),
		cannotInline: make(map[string]string),
	}
	for _, d := range diags {
		msg := d.msg
		switch {
		case strings.HasPrefix(msg, "can inline "):
			name := strings.TrimPrefix(msg, "can inline ")
			if i := strings.Index(name, " with cost "); i >= 0 {
				name = name[:i]
			}
			f.canInline[lineKey(d.file, d.line)] = name
		case strings.HasPrefix(msg, "cannot inline "):
			f.cannotInline[lineKey(d.file, d.line)] = strings.TrimPrefix(msg, "cannot inline ")
		case strings.HasPrefix(msg, "moved to heap: "):
			f.heapEscapes = append(f.heapEscapes, d)
			f.paramLeaks = append(f.paramLeaks, paramLeak{
				d: d, name: strings.TrimPrefix(msg, "moved to heap: "), what: "moved to heap", moved: true,
			})
		case strings.HasSuffix(msg, " escapes to heap"):
			// A string literal boxed into an interface (panic("...") and
			// friends) is backed by static read-only data — the compiler
			// reports the escape, but no runtime allocation happens, so it
			// does not break an allocfree fact.
			if strings.HasPrefix(msg, `"`) {
				break
			}
			f.heapEscapes = append(f.heapEscapes, d)
		case strings.HasPrefix(msg, "leaking param: "):
			f.paramLeaks = append(f.paramLeaks, paramLeak{
				d: d, name: strings.TrimPrefix(msg, "leaking param: "), what: "leaking param",
			})
		case strings.HasPrefix(msg, "leaking param content: "):
			f.paramLeaks = append(f.paramLeaks, paramLeak{
				d: d, name: strings.TrimPrefix(msg, "leaking param content: "), what: "leaking param content",
			})
		}
	}
	return f
}

// exportTable extracts the import-path → export-file map from a listing.
func exportTable(listed []*analysis.ListedPackage) map[string]string {
	exports := make(map[string]string, len(listed))
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	return exports
}
