package gcfacts

import (
	"io"
	"path/filepath"
	"strings"
	"testing"
)

// modDir is the module root — fixture compiles resolve their stdlib
// imports through export data listed from here.
func modDir(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("../../..")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

func runFixture(t *testing.T, pkg string, imports []string) []string {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", pkg))
	if err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no fixture sources in %s: %v", dir, err)
	}
	goFiles := make([]string, len(matches))
	for i, m := range matches {
		goFiles[i] = filepath.Base(m)
	}
	findings, err := CheckDir(io.Discard, dir, pkg, goFiles, modDir(t), imports)
	if err != nil {
		t.Fatalf("CheckDir(%s): %v", pkg, err)
	}
	msgs := make([]string, 0, len(findings))
	for _, f := range findings {
		msgs = append(msgs, f.Message)
	}
	return msgs
}

// TestApplyOpSplitRevertFailsGate is the acceptance test for the PR 8
// applyOp/applyOpPar split: the merged fixture (parallel closure inline
// in the //qbeep:allocfree function, the pre-split shape) must fail the
// gate with an escape diagnostic, and the split fixture must pass.
func TestApplyOpSplitRevertFailsGate(t *testing.T) {
	merged := runFixture(t, "applyop_merged", []string{"sync"})
	if len(merged) == 0 {
		t.Fatalf("merged applyOp fixture: gate reported no findings; reverting the applyOpPar split would pass lint")
	}
	found := false
	for _, m := range merged {
		if strings.Contains(m, "allocfree") && strings.Contains(m, "escapes to heap") {
			found = true
		}
	}
	if !found {
		t.Errorf("merged fixture findings lack an allocfree escape diagnostic:\n%s", strings.Join(merged, "\n"))
	}

	split := runFixture(t, "applyop_split", []string{"sync"})
	if len(split) != 0 {
		t.Errorf("split applyOp fixture should pass the gate, got:\n%s", strings.Join(split, "\n"))
	}
}

// TestDirectiveMatrix walks every directive through its pass, fail,
// malformed, and suppressed paths against the facts fixture.
func TestDirectiveMatrix(t *testing.T) {
	msgs := runFixture(t, "facts", nil)
	joined := strings.Join(msgs, "\n")

	wants := []struct{ name, substr string }{
		{"mustinline failure", "bigNoinline is marked //qbeep:mustinline"},
		{"mustinline reason", "marked go:noinline"},
		{"noescape failure", "stores is marked //qbeep:noescape p"},
		{"noescape leak message", "leaking param: p"},
		{"allocfree failure", "escapesLocal is marked //qbeep:allocfree"},
		{"allocfree moved message", "moved to heap: x"},
		{"missing param name", "missingName has //qbeep:noescape with no parameter name"},
		{"unknown param", `wrongName has //qbeep:noescape q but declares no parameter "q"`},
	}
	for _, w := range wants {
		if !strings.Contains(joined, w.substr) {
			t.Errorf("missing %s (%q) in findings:\n%s", w.name, w.substr, joined)
		}
	}

	rejects := []struct{ name, substr string }{
		{"mustinline pass flagged", "add is marked"},
		{"noescape pass flagged", "reads is marked"},
		{"allocfree pass flagged", "sums is marked"},
		{"suppression ignored", "suppressed is marked"},
	}
	for _, r := range rejects {
		if strings.Contains(joined, r.substr) {
			t.Errorf("unexpected %s in findings:\n%s", r.name, joined)
		}
	}
}

// TestCheckRealTree runs the gate over the annotated repo packages —
// the same invocation `make lint` performs — and requires it to come
// back clean. This is the test that pins every //qbeep:allocfree /
// noescape / mustinline fact in the hot paths against the live
// toolchain.
func TestCheckRealTree(t *testing.T) {
	if testing.Short() {
		t.Skip("recompiles annotated packages; skipped in -short")
	}
	var out strings.Builder
	findings, err := Check(&out, modDir(t), "./...")
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if len(findings) != 0 {
		t.Errorf("gate reported findings on the annotated tree:\n%s", out.String())
	}
}

func TestParseDiagLine(t *testing.T) {
	cases := []struct {
		in   string
		ok   bool
		file string
		line int
		msg  string
	}{
		{"/x/k.go:518:28: moved to heap: o", true, "/x/k.go", 518, "moved to heap: o"},
		{"/x/k.go:5:2: s escapes to heap:", true, "/x/k.go", 5, "s escapes to heap"},
		{"/x/k.go:5:2:   flow: {heap} = &s:", false, "", 0, ""},
		{"# qbeep/internal/statevector", false, "", 0, ""},
		{"", false, "", 0, ""},
		{"/x/k.go:12:6: can inline add with cost 4 as: func(int, int) int { return a + b }", true, "/x/k.go", 12, "can inline add with cost 4 as: func(int, int) int { return a + b }"},
	}
	for _, c := range cases {
		d, ok := parseDiagLine(c.in)
		if ok != c.ok {
			t.Errorf("parseDiagLine(%q) ok = %v, want %v", c.in, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if d.file != c.file || d.line != c.line || d.msg != c.msg {
			t.Errorf("parseDiagLine(%q) = %+v, want file=%s line=%d msg=%q", c.in, d, c.file, c.line, c.msg)
		}
	}
}

func TestBuildFacts(t *testing.T) {
	f := buildFacts([]diag{
		{file: "f.go", line: 10, col: 6, msg: "can inline add with cost 4 as: func(int, int) int { return a + b }"},
		{file: "f.go", line: 20, col: 6, msg: "cannot inline big: function too complex: cost 120 exceeds budget 80"},
		{file: "f.go", line: 30, col: 15, msg: "leaking param: p"},
		{file: "f.go", line: 40, col: 2, msg: "moved to heap: x"},
		{file: "f.go", line: 50, col: 9, msg: "make([]byte, n) escapes to heap"},
	})
	if got := f.canInline[lineKey("f.go", 10)]; got != "add" {
		t.Errorf("canInline name = %q, want add", got)
	}
	if _, ok := f.cannotInline[lineKey("f.go", 20)]; !ok {
		t.Error("cannotInline fact missing")
	}
	if len(f.heapEscapes) != 2 {
		t.Errorf("heapEscapes = %d, want 2 (moved-to-heap + escapes-to-heap)", len(f.heapEscapes))
	}
	if len(f.paramLeaks) != 2 {
		t.Errorf("paramLeaks = %d, want 2 (leaking param + moved)", len(f.paramLeaks))
	}
}
