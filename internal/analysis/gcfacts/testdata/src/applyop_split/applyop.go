// Package applyop_split reproduces the shape of internal/statevector's
// applyOp AFTER the PR 8 split: the sharded parallel branch lives in a
// //go:noinline helper, so the closure allocation is attributed to the
// helper's frame and the serial gate path stays allocation-free. The
// gcfacts gate must pass the //qbeep:allocfree directive here.
package applyop_split

import "sync"

type op struct {
	kind   int
	target int
}

type state struct {
	amps    []complex128
	workers int
}

// apply is the post-split shape: the only branch that allocates is a
// call into applyPar, whose escaping closure lives outside this frame.
//
//qbeep:allocfree
func (s *state) apply(o *op, space int) error {
	if s.workers <= 1 {
		return s.opRange(o, 0, space)
	}
	return s.applyPar(o, space)
}

// applyPar owns the sharded branch. Kept out of apply's frame (and out
// of the inliner, matching the real kernel) so the closure capturing o
// cannot leak into the serial path.
//
//go:noinline
func (s *state) applyPar(o *op, space int) error {
	return runShards(space, s.workers, func(lo, hi int) error {
		return s.opRange(o, lo, hi)
	})
}

//go:noinline
func (s *state) opRange(o *op, lo, hi int) error {
	for i := lo; i < hi; i++ {
		s.amps[i] *= complex(float64(o.kind), 0)
	}
	return nil
}

//go:noinline
func runShards(n, workers int, fn func(lo, hi int) error) error {
	errs := make([]error, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			errs[w] = fn(lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
