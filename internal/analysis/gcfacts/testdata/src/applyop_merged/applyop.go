// Package applyop_merged reproduces the shape of internal/statevector's
// applyOp BEFORE the PR 8 split: the sharded parallel branch is written
// inline in the gate function, so the worker closure capturing the op
// pointer escapes inside the annotated frame. The gcfacts gate must
// fail the //qbeep:allocfree directive here — this fixture is the
// regression test that a revert of the applyOp/applyOpPar split cannot
// pass `make lint`.
package applyop_merged

import "sync"

type op struct {
	kind   int
	target int
}

type state struct {
	amps    []complex128
	workers int
}

// apply is the merged (pre-split) shape: serial fast path plus an
// inline parallel branch whose closure captures o, forcing a heap
// allocation on every call even when the serial path is taken.
//
//qbeep:allocfree
func (s *state) apply(o *op, space int) error {
	if s.workers <= 1 {
		return s.opRange(o, 0, space)
	}
	return runShards(space, s.workers, func(lo, hi int) error {
		return s.opRange(o, lo, hi)
	})
}

//go:noinline
func (s *state) opRange(o *op, lo, hi int) error {
	for i := lo; i < hi; i++ {
		s.amps[i] *= complex(float64(o.kind), 0)
	}
	return nil
}

//go:noinline
func runShards(n, workers int, fn func(lo, hi int) error) error {
	errs := make([]error, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			errs[w] = fn(lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
