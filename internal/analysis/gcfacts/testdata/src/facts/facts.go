// Package facts exercises every gcfacts directive in isolation:
// mustinline against an inlinable and a //go:noinline function,
// noescape against a non-leaking and a leaking parameter, allocfree
// against a clean loop and a moved-to-heap local, plus the directive
// validation paths (missing parameter name, unknown parameter) and the
// //qbeep:allow-* suppression escape hatch.
package facts

var sink *int

// add stays far under the inlining budget.
//
//qbeep:mustinline
func add(a, b int) int { return a + b }

// bigNoinline is pinned out of the inliner, so mustinline must fail
// with the compiler's own "marked go:noinline" reason.
//
//qbeep:mustinline
//go:noinline
func bigNoinline(a, b int) int { return a + b }

// reads only dereferences p: no leak, no escape.
//
//qbeep:noescape p
func reads(p *int) int { return *p }

// stores publishes p through a package-level sink: the compiler reports
// a leak and noescape must fail.
//
//qbeep:noescape p
func stores(p *int) { sink = p }

// sums is a clean arithmetic loop over a caller-owned slice.
//
//qbeep:allocfree
func sums(xs []float64) float64 {
	var t float64
	for _, x := range xs {
		t += x
	}
	return t
}

// escapesLocal returns the address of a local, moving it to the heap:
// allocfree must fail.
//
//qbeep:allocfree
func escapesLocal() *int {
	x := 7
	return &x
}

// missingName omits the parameter: the directive itself is malformed.
//
//qbeep:noescape
func missingName(p *int) int { return *p }

// wrongName targets a parameter that does not exist.
//
//qbeep:noescape q
func wrongName(p *int) int { return *p }

// suppressed fails mustinline but carries an allow directive with a
// rationale, so the gate stays silent.
//
//qbeep:mustinline
//go:noinline
//qbeep:allow-mustinline fixture: verifying the suppression path
func suppressed(a int) int { return a }
