// Package gcfacts is the compiler-fact gate: it compiles each annotated
// package with the gc compiler's escape-analysis and inlining
// diagnostics enabled (-m=2), distills the diagnostic stream into a
// fact database, and enforces three function-level directives:
//
//	//qbeep:allocfree         the function performs no heap allocation
//	                          on any path through its own frame
//	//qbeep:noescape <param>  the named parameter neither leaks nor is
//	                          moved to the heap
//	//qbeep:mustinline        the function stays within the inlining
//	                          budget (the compiler reports "can inline")
//
// Directives live in the function's doc comment, like //go:noinline.
// The facts they pin are exactly the ones PRs 2-8 established by manual
// `-gcflags=-m` inspection — the applyOp/applyOpPar split keeping the
// serial gate path allocation-free, the zero-alloc Step and trajectory
// replay loops, the inlinable RNG and bitstring primitives — so a
// refactor that quietly re-introduces a per-op heap move or pushes a
// hot helper past the inline budget fails `make lint` instead of
// surfacing weeks later as a bench-gate ratio collapse.
//
// Semantics are frame-local by source position: a diagnostic counts
// against the function whose source range it falls in. Allocations
// performed by callees (inlined or not) are attributed to the callee's
// own source lines, so each function is accountable for its own body —
// annotate the callee too if its allocations matter. This also means an
// allocfree function may still *trigger* an allocation in a non-inlined
// callee (applyOp's parallel branch does, deliberately, in applyOpPar);
// the gate pins where allocations are allowed to live, and the
// AllocsPerRun regression tests pin the end-to-end counts.
//
// The -m=2 text format is not a stable API: message prefixes ("moved to
// heap:", "leaking param:", "can inline") have been stable across many
// Go releases, but a toolchain upgrade can reword them. The parsing
// contract is deliberately narrow (see compile.go) and the package's
// tests compile fixture code with the live toolchain, so a wording
// change fails the gate's own tests rather than silently certifying
// nothing. See DESIGN.md §15.
package gcfacts

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"qbeep/internal/analysis"
)

// FactPrefix is the comment prefix of the fact-directive grammar.
const FactPrefix = "//qbeep:"

// An annotation is one fact directive attached to a function.
type annotation struct {
	kind   string   // "allocfree", "noescape", "mustinline"
	params []string // noescape: the named parameters
	fn     string   // rendered function name for diagnostics
	file   string
	// declLine is the line carrying the function name — where the
	// compiler anchors inlinability facts.
	declLine  int
	startLine int
	endLine   int
	pos       token.Position // of the func declaration
	// paramNames are the function's declared parameter (and receiver)
	// names, for validating noescape targets.
	paramNames map[string]bool
}

// Check runs the compiler-fact gate over the packages matching patterns
// (relative to dir). Findings print to w in the multichecker's output
// format and are returned for the caller's exit decision. Packages with
// no fact directives are not recompiled.
func Check(w io.Writer, dir string, patterns ...string) ([]analysis.Finding, error) {
	listed, err := analysis.List(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var targets []*analysis.ListedPackage
	for _, lp := range listed {
		if lp.Error != nil {
			return nil, fmt.Errorf("gcfacts: go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if !lp.DepOnly && !lp.Standard && len(lp.GoFiles) > 0 {
			targets = append(targets, lp)
		}
	}
	exports := exportTable(listed)

	var findings []analysis.Finding
	var tmpDir, importcfg string
	defer func() {
		if tmpDir != "" {
			os.RemoveAll(tmpDir)
		}
	}()
	for _, lp := range targets {
		anns, idx, err := scanPackage(lp)
		if err != nil {
			return nil, err
		}
		if len(anns) == 0 {
			continue
		}
		if tmpDir == "" {
			tmpDir, err = os.MkdirTemp("", "gcfacts-")
			if err != nil {
				return nil, err
			}
			importcfg, err = writeImportcfg(tmpDir, exports)
			if err != nil {
				return nil, err
			}
		}
		diags, err := compilePackage(lp.Dir, lp.ImportPath, lp.GoFiles, importcfg, tmpDir)
		if err != nil {
			return nil, err
		}
		findings = append(findings, checkAnnotations(anns, buildFacts(diags), idx)...)
	}
	analysis.PrintFindings(w, dir, findings)
	return findings, nil
}

// CheckDir runs the gate over one unlisted source directory — a test
// fixture package. goFiles name the sources inside dir; importPath is
// the name the package compiles under; exportsFor resolves the fixture's
// imports ("." patterns relative to modDir, typically just stdlib
// packages). Used by the gate's own tests to compile known-bad code
// without wiring it into the module graph.
func CheckDir(w io.Writer, dir, importPath string, goFiles []string, modDir string, imports []string) ([]analysis.Finding, error) {
	exports := map[string]string{}
	if len(imports) > 0 {
		var err error
		exports, err = analysis.ExportData(modDir, imports)
		if err != nil {
			return nil, err
		}
	}
	lp := &analysis.ListedPackage{ImportPath: importPath, Dir: dir, GoFiles: goFiles}
	anns, idx, err := scanPackage(lp)
	if err != nil {
		return nil, err
	}
	tmpDir, err := os.MkdirTemp("", "gcfacts-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmpDir)
	importcfg, err := writeImportcfg(tmpDir, exports)
	if err != nil {
		return nil, err
	}
	diags, err := compilePackage(lp.Dir, lp.ImportPath, lp.GoFiles, importcfg, tmpDir)
	if err != nil {
		return nil, err
	}
	findings := checkAnnotations(anns, buildFacts(diags), idx)
	analysis.PrintFindings(w, dir, findings)
	return findings, nil
}

// scanPackage parses a package's sources and extracts its fact
// directives plus the //qbeep:allow-* suppression index.
func scanPackage(lp *analysis.ListedPackage) ([]annotation, analysis.DirectiveIndex, error) {
	fset := token.NewFileSet()
	var anns []annotation
	var files []*ast.File
	for _, name := range lp.GoFiles {
		path := filepath.Join(lp.Dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, fmt.Errorf("gcfacts: parse %s: %w", path, err)
		}
		files = append(files, f)
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil {
				continue
			}
			anns = append(anns, fnAnnotations(fset, fn)...)
		}
	}
	return anns, analysis.IndexDirectives(fset, files), nil
}

// fnAnnotations extracts the fact directives from one function's doc
// comment.
func fnAnnotations(fset *token.FileSet, fn *ast.FuncDecl) []annotation {
	var anns []annotation
	for _, c := range fn.Doc.List {
		if !strings.HasPrefix(c.Text, FactPrefix) {
			continue
		}
		rest := strings.TrimPrefix(c.Text, FactPrefix)
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			continue
		}
		verb := fields[0]
		if verb != "allocfree" && verb != "noescape" && verb != "mustinline" {
			continue // allow-* and pooled belong to other checkers
		}
		a := annotation{
			kind:       verb,
			params:     fields[1:],
			fn:         funcDisplayName(fn),
			file:       fset.Position(fn.Pos()).Filename,
			declLine:   fset.Position(fn.Name.Pos()).Line,
			startLine:  fset.Position(fn.Pos()).Line,
			endLine:    fset.Position(fn.End()).Line,
			pos:        fset.Position(fn.Pos()),
			paramNames: declParamNames(fn),
		}
		anns = append(anns, a)
	}
	return anns
}

// funcDisplayName renders the function name the way the compiler's
// inline diagnostics do: F, T.M, or (*T).M.
func funcDisplayName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	switch t := fn.Recv.List[0].Type.(type) {
	case *ast.StarExpr:
		if id, ok := baseTypeName(t.X); ok {
			return "(*" + id + ")." + fn.Name.Name
		}
	default:
		if id, ok := baseTypeName(t); ok {
			return id + "." + fn.Name.Name
		}
	}
	return fn.Name.Name
}

func baseTypeName(e ast.Expr) (string, bool) {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name, true
	case *ast.IndexExpr: // generic receiver T[P]
		return baseTypeName(t.X)
	case *ast.IndexListExpr:
		return baseTypeName(t.X)
	}
	return "", false
}

// declParamNames collects the function's parameter and receiver names.
func declParamNames(fn *ast.FuncDecl) map[string]bool {
	names := make(map[string]bool)
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, n := range f.Names {
				names[n.Name] = true
			}
		}
	}
	add(fn.Recv)
	add(fn.Type.Params)
	return names
}

// contains reports whether the diagnostic lies within the annotation's
// source range.
func (a *annotation) contains(d diag) bool {
	return d.file == a.file && d.line >= a.startLine && d.line <= a.endLine
}

// checkAnnotations enforces every directive against the fact database.
func checkAnnotations(anns []annotation, f *facts, idx analysis.DirectiveIndex) []analysis.Finding {
	var findings []analysis.Finding
	report := func(a *annotation, format string, args ...any) {
		if idx.Allowed(a.pos, a.kind) {
			return
		}
		findings = append(findings, analysis.Finding{
			Position: a.pos,
			Analyzer: "gcfacts",
			Diagnostic: analysis.Diagnostic{
				Category: a.kind,
				Message:  fmt.Sprintf(format, args...),
			},
		})
	}
	for i := range anns {
		a := &anns[i]
		switch a.kind {
		case "allocfree":
			for _, d := range f.heapEscapes {
				if a.contains(d) {
					report(a, "%s is marked //qbeep:allocfree but the compiler reports %q at %s:%d:%d — a heap allocation on this path; restore the zero-alloc shape (e.g. keep escaping closures behind a //go:noinline helper) or move the directive",
						a.fn, d.msg, d.file, d.line, d.col)
				}
			}
		case "noescape":
			if len(a.params) == 0 {
				report(a, "%s has //qbeep:noescape with no parameter name: write //qbeep:noescape <param>", a.fn)
				continue
			}
			for _, p := range a.params {
				if !a.paramNames[p] {
					report(a, "%s has //qbeep:noescape %s but declares no parameter %q", a.fn, p, p)
					continue
				}
				for _, leak := range f.paramLeaks {
					if leak.name == p && a.contains(leak.d) {
						report(a, "%s is marked //qbeep:noescape %s but the compiler reports %q at %s:%d:%d",
							a.fn, p, leak.d.msg, leak.d.file, leak.d.line, leak.d.col)
					}
				}
			}
		case "mustinline":
			key := lineKey(a.file, a.declLine)
			if _, ok := f.canInline[key]; ok {
				continue
			}
			if reason, ok := f.cannotInline[key]; ok {
				report(a, "%s is marked //qbeep:mustinline but the compiler reports: cannot inline %s", a.fn, reason)
			} else {
				report(a, "%s is marked //qbeep:mustinline but the compiler recorded no inlining fact for it (check the -m=2 parsing contract, DESIGN.md §15)", a.fn)
			}
		}
	}
	return findings
}
