// Package spanend enforces the obs span lifecycle: every span returned
// by obs.StartSpan or the two-value obs.Start(ctx, name) must be ended
// on every return path of the function that started it. A leaked span
// never reaches the sink, so the trace silently under-reports exactly
// the runs that failed — the worst possible bias for an observability
// layer.
//
// The check is an intraprocedural heuristic, deliberately conservative:
//
//   - `defer sp.End()` (directly or inside a deferred closure) always
//     satisfies it — that is the recommended form.
//   - otherwise every return statement lexically after the StartSpan
//     must be preceded by an sp.End() call in the same or an enclosing
//     block (straight-line code with an explicit End before the final
//     return passes; an early `return err` inside an if-block does
//     not).
//   - a span value that escapes the function (returned, passed to a
//     call, stored) is not tracked — lifetime is the callee's problem.
//
// //qbeep:allow-spanleak suppresses a site where the leak is deliberate
// (e.g. a span intentionally handed to a background finisher).
package spanend

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"qbeep/internal/analysis"
)

// Analyzer is the spanend checker.
var Analyzer = &analysis.Analyzer{
	Name: "spanend",
	Doc:  "every obs.StartSpan / obs.Start span must be ended on all return paths of the starting function",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkScope(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkScope(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// spanVar tracks one started span inside a scope.
type spanVar struct {
	obj      types.Object
	name     string // variable name
	fun      string // "StartSpan" or "Start"
	spanName string // span-name string-literal argument, if constant
	pos      token.Pos
	escapes  bool
	deferred bool      // defer sp.End() (or deferred closure calling it)
	ends     []endSite // non-deferred sp.End() calls
}

type endSite struct {
	pos token.Pos
	// blocks is the chain of enclosing blocks, outermost first; the
	// innermost block identifies where the call is sequenced.
	blocks []*ast.BlockStmt
}

type returnSite struct {
	pos    token.Pos
	blocks map[*ast.BlockStmt]bool
}

// checkScope analyzes one function body. Nested function literals are
// separate scopes (the outer walk visits them on its own), except that
// a directly deferred closure is scanned for End calls, since its body
// runs on every return path of this scope.
func checkScope(pass *analysis.Pass, body *ast.BlockStmt) {
	spans := map[types.Object]*spanVar{}
	var order []*spanVar
	var returns []returnSite

	walkScope(body, nil, false, func(n ast.Node, stack []ast.Node, inDefer bool) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if sv, ok := spanStart(pass, n); ok {
				if sv.obj == nil {
					pass.Report(n.Pos(), "spanleak",
						"span result of obs.%s%s discarded: the span can never be ended", sv.fun, spanLabel(sv))
					return
				}
				spans[sv.obj] = sv
				order = append(order, sv)
			}
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if fun, ok := startFun(pass, call); ok {
					pass.Report(n.Pos(), "spanleak",
						"span result of obs.%s%s discarded: the span can never be ended", fun, spanLabel(&spanVar{spanName: spanNameOf(call)}))
				}
			}
		case *ast.ReturnStmt:
			if !inDefer {
				returns = append(returns, returnSite{pos: n.Pos(), blocks: blockSet(stack)})
			}
		case *ast.Ident:
			obj := pass.Info.ObjectOf(n)
			if obj == nil {
				return
			}
			sv, ok := spans[obj]
			if !ok || n.Pos() == sv.pos {
				return
			}
			kind := classifyUse(pass, n, stack)
			switch kind {
			case useEnd:
				if inDefer || underDefer(stack) {
					sv.deferred = true
				} else {
					sv.ends = append(sv.ends, endSite{pos: n.Pos(), blocks: blockChain(stack)})
				}
			case useSetAttr, useDefLHS:
				// harmless
			default:
				sv.escapes = true
			}
		}
	})

	for _, sv := range order {
		if sv.escapes || sv.deferred {
			continue
		}
		if len(sv.ends) == 0 {
			pass.Report(sv.pos, "spanleak",
				"span%s started here is never ended: add `defer %s.End()`", spanLabel(sv), sv.name)
			continue
		}
		for _, ret := range returns {
			if ret.pos <= sv.pos {
				continue
			}
			if !covered(ret, sv.ends) {
				pass.Report(ret.pos, "spanleak",
					"return without ending span%s started at %s: prefer `defer %s.End()` right after StartSpan",
					spanLabel(sv), pass.Fset.Position(sv.pos), sv.name)
			}
		}
	}
}

// covered reports whether some non-deferred End call is sequenced
// before ret on its path: lexically earlier and in a block that
// encloses the return.
func covered(ret returnSite, ends []endSite) bool {
	for _, e := range ends {
		if e.pos >= ret.pos {
			continue
		}
		inner := e.blocks[len(e.blocks)-1]
		if ret.blocks[inner] {
			return true
		}
	}
	return false
}

// walkScope traverses the statements of one function scope, keeping the
// ancestor stack. Nested *ast.FuncLit subtrees are skipped — each is
// its own scope — except closures invoked directly by a defer
// statement, whose bodies are visited with inDefer set.
func walkScope(n ast.Node, stack []ast.Node, inDefer bool, fn func(ast.Node, []ast.Node, bool)) {
	if n == nil {
		return
	}
	if d, ok := n.(*ast.DeferStmt); ok {
		fn(n, stack, inDefer)
		stack = append(stack, n)
		if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
			walkScope(lit.Body, append(stack, lit), true, fn)
			for _, arg := range d.Call.Args {
				walkScope(arg, stack, inDefer, fn)
			}
			return
		}
		walkScope(d.Call, stack, true, fn)
		return
	}
	if _, ok := n.(*ast.FuncLit); ok && len(stack) > 0 {
		return // separate scope
	}
	fn(n, stack, inDefer)
	stack = append(stack, n)
	for _, child := range children(n) {
		walkScope(child, stack, inDefer, fn)
	}
}

// children returns the direct child nodes of n in source order.
func children(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first { // the Inspect root is n itself
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}

type useKind int

const (
	useOther useKind = iota
	useEnd
	useSetAttr
	useDefLHS
)

// classifyUse decides what an identifier occurrence of a span variable
// is doing, from its immediate ancestors.
func classifyUse(pass *analysis.Pass, id *ast.Ident, stack []ast.Node) useKind {
	if len(stack) == 0 {
		return useOther
	}
	parent := stack[len(stack)-1]
	if sel, ok := parent.(*ast.SelectorExpr); ok && sel.X == id {
		// Must be a called method of the known span API; a method value
		// (sp.End passed around) escapes.
		if len(stack) >= 2 {
			if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && call.Fun == sel {
				switch sel.Sel.Name {
				case "End":
					return useEnd
				case "SetAttr":
					return useSetAttr
				}
			}
		}
		return useOther
	}
	if assign, ok := parent.(*ast.AssignStmt); ok {
		for _, l := range assign.Lhs {
			if l == id {
				return useDefLHS
			}
		}
	}
	return useOther
}

// underDefer reports whether the ancestor stack passes through a defer
// statement (covers `defer sp.End()` where the walk reaches the call
// through the DeferStmt node).
func underDefer(stack []ast.Node) bool {
	for _, n := range stack {
		if _, ok := n.(*ast.DeferStmt); ok {
			return true
		}
	}
	return false
}

func blockChain(stack []ast.Node) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	for _, n := range stack {
		if b, ok := n.(*ast.BlockStmt); ok {
			out = append(out, b)
		}
	}
	return out
}

func blockSet(stack []ast.Node) map[*ast.BlockStmt]bool {
	out := make(map[*ast.BlockStmt]bool)
	for _, b := range blockChain(stack) {
		out[b] = true
	}
	return out
}

// spanStart recognizes `sp := obs.StartSpan(...)` and the two-value
// `ctx, sp := obs.Start(ctx, ...)` (and the `=` forms). A blank
// identifier in the span position is a discard (obj nil); any other
// assignment shape is left to escape analysis. The context result of
// Start is not tracked — only the span carries the End obligation.
func spanStart(pass *analysis.Pass, assign *ast.AssignStmt) (*spanVar, bool) {
	if len(assign.Rhs) != 1 {
		return nil, false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	fun, ok := startFun(pass, call)
	if !ok {
		return nil, false
	}
	var target ast.Expr
	switch {
	case fun == "StartSpan" && len(assign.Lhs) == 1:
		target = assign.Lhs[0]
	case fun == "Start" && len(assign.Lhs) == 2:
		target = assign.Lhs[1] // (ctx, span)
	default:
		return nil, false
	}
	id, ok := target.(*ast.Ident)
	if !ok {
		return nil, false
	}
	sv := &spanVar{fun: fun, spanName: spanNameOf(call), pos: assign.Pos()}
	if id.Name == "_" {
		return sv, true
	}
	sv.obj = pass.Info.ObjectOf(id)
	sv.name = id.Name
	return sv, sv.obj != nil
}

// startFun reports whether call invokes StartSpan or Start from an obs
// package (matched by import-path base so analysistest stubs work),
// returning the function name.
func startFun(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "StartSpan" && sel.Sel.Name != "Start") {
		return "", false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	if analysis.PkgPathBase(fn.Pkg().Path()) != "obs" {
		return "", false
	}
	// Package-level functions only: methods that happen to be named Start
	// (obs.TraceFlags.Start) don't return spans.
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return "", false
	}
	return sel.Sel.Name, true
}

// spanNameOf extracts the string-literal span name for diagnostics; the
// name is the sole StartSpan argument or Start's second.
func spanNameOf(call *ast.CallExpr) string {
	if len(call.Args) == 0 {
		return ""
	}
	if lit, ok := call.Args[len(call.Args)-1].(*ast.BasicLit); ok && lit.Kind == token.STRING {
		return lit.Value
	}
	return ""
}

func spanLabel(sv *spanVar) string {
	if sv.spanName == "" {
		return ""
	}
	return fmt.Sprintf(" %s", sv.spanName)
}
