package spanend_test

import (
	"testing"

	"qbeep/internal/analysis/analysistest"
	"qbeep/internal/analysis/spanend"
)

func TestSpanend(t *testing.T) {
	analysistest.Run(t, spanend.Analyzer, "obs", "a")
}
