// Package a exercises the span lifecycle checker.
package a

import (
	"context"
	"errors"

	"obs"
)

var errFail = errors.New("fail")

func leakNoEnd() {
	sp := obs.StartSpan("leak") // want `never ended`
	sp.SetAttr("k", 1)
}

func leakEarlyReturn(fail bool) error {
	sp := obs.StartSpan("early")
	if fail {
		return errFail // want `return without ending span`
	}
	sp.End()
	return nil
}

func discardedStmt() {
	obs.StartSpan("discard") // want `discarded`
}

func discardedBlank() {
	_ = obs.StartSpan("blank") // want `discarded`
}

func okDefer(fail bool) error {
	sp := obs.StartSpan("defer")
	defer sp.End()
	if fail {
		return errFail
	}
	return nil
}

func okDeferClosure(fail bool) error {
	sp := obs.StartSpan("closure")
	defer func() {
		sp.SetAttr("failed", fail)
		sp.End()
	}()
	if fail {
		return errFail
	}
	return nil
}

func okStraightLine() {
	sp := obs.StartSpan("line")
	sp.SetAttr("k", 2)
	sp.End()
}

func okEndBeforeEveryReturn(fail bool) error {
	sp := obs.StartSpan("explicit")
	if fail {
		sp.End()
		return errFail
	}
	sp.End()
	return nil
}

func allowedLeak() {
	sp := obs.StartSpan("handed-off") //qbeep:allow-spanleak fixture: deliberately leaked
	sp.SetAttr("k", 3)
}

// escaping spans are the callee's responsibility, not flagged here.
func escapes() obs.Span {
	sp := obs.StartSpan("escape")
	return sp
}

func passedAlong(finish func(obs.Span)) {
	sp := obs.StartSpan("passed")
	finish(sp)
}

// --- two-value obs.Start(ctx, name) form ---

func ctxLeakNoEnd(ctx context.Context) {
	ctx, sp := obs.Start(ctx, "ctx-leak") // want `never ended`
	sp.SetAttr("k", 1)
	_ = ctx
}

func ctxLeakEarlyReturn(ctx context.Context, fail bool) error {
	_, sp := obs.Start(ctx, "ctx-early")
	if fail {
		return errFail // want `return without ending span`
	}
	sp.End()
	return nil
}

func ctxDiscardedStmt(ctx context.Context) {
	obs.Start(ctx, "ctx-discard") // want `discarded`
}

func ctxDiscardedBlank(ctx context.Context) {
	_, _ = obs.Start(ctx, "ctx-blank") // want `discarded`
}

func ctxOKDefer(ctx context.Context, fail bool) error {
	ctx, sp := obs.Start(ctx, "ctx-defer")
	defer sp.End()
	_ = ctx
	if fail {
		return errFail
	}
	return nil
}

func ctxOKEndBeforeEveryReturn(ctx context.Context, fail bool) error {
	_, sp := obs.Start(ctx, "ctx-explicit")
	if fail {
		sp.End()
		return errFail
	}
	sp.End()
	return nil
}

// The flags helper is a method named Start returning no span: not ours.
func ctxNotASpanStart(f *obs.TraceFlags) error {
	stop, err := f.Start()
	if err != nil {
		return err
	}
	return stop()
}

// escaping spans stay the callee's responsibility in the ctx form too.
func ctxEscapes(ctx context.Context) obs.Span {
	_, sp := obs.Start(ctx, "ctx-escape")
	return sp
}

// --- resource-capture era idioms: per-iteration child spans, worker
// attribute stamping, branch-dependent endings ---

// The mitigation loop's shape: each round opens a child span inside a
// closure whose body is a straight start → attrs → End line. The
// closure is its own scope, so the outer loop does not confuse the
// checker.
func okIterClosure(ctx context.Context, n int) {
	iterate := func(i int) {
		_, isp := obs.Start(ctx, "iter")
		isp.SetAttr("iteration", i)
		isp.End()
	}
	for i := 0; i < n; i++ {
		iterate(i)
	}
}

// The par worker's shape: busy/idle accounting stamped between the last
// task and End.
func okWorkerStamping(ctx context.Context, busy int64) {
	_, wsp := obs.Start(ctx, "worker")
	wsp.SetAttr("busy_ns", busy)
	wsp.SetAttr("idle_ns", int64(0))
	wsp.End()
}

// Ending only inside one branch leaves the fall-through return leaking.
func leakBranchOnly(ctx context.Context, fail bool) error {
	_, sp := obs.Start(ctx, "branch")
	if fail {
		sp.End()
		return errFail
	}
	return nil // want `return without ending span`
}

// A span whose End is captured as a method value escapes — lifetime is
// whoever calls the finisher, deliberately not flagged.
func okMethodValueEscape(ctx context.Context, schedule func(func())) {
	_, sp := obs.Start(ctx, "handoff")
	schedule(sp.End)
}
