// Package a exercises the span lifecycle checker.
package a

import (
	"errors"

	"obs"
)

var errFail = errors.New("fail")

func leakNoEnd() {
	sp := obs.StartSpan("leak") // want `never ended`
	sp.SetAttr("k", 1)
}

func leakEarlyReturn(fail bool) error {
	sp := obs.StartSpan("early")
	if fail {
		return errFail // want `return without ending span`
	}
	sp.End()
	return nil
}

func discardedStmt() {
	obs.StartSpan("discard") // want `discarded`
}

func discardedBlank() {
	_ = obs.StartSpan("blank") // want `discarded`
}

func okDefer(fail bool) error {
	sp := obs.StartSpan("defer")
	defer sp.End()
	if fail {
		return errFail
	}
	return nil
}

func okDeferClosure(fail bool) error {
	sp := obs.StartSpan("closure")
	defer func() {
		sp.SetAttr("failed", fail)
		sp.End()
	}()
	if fail {
		return errFail
	}
	return nil
}

func okStraightLine() {
	sp := obs.StartSpan("line")
	sp.SetAttr("k", 2)
	sp.End()
}

func okEndBeforeEveryReturn(fail bool) error {
	sp := obs.StartSpan("explicit")
	if fail {
		sp.End()
		return errFail
	}
	sp.End()
	return nil
}

func allowedLeak() {
	sp := obs.StartSpan("handed-off") //qbeep:allow-spanleak fixture: deliberately leaked
	sp.SetAttr("k", 3)
}

// escaping spans are the callee's responsibility, not flagged here.
func escapes() obs.Span {
	sp := obs.StartSpan("escape")
	return sp
}

func passedAlong(finish func(obs.Span)) {
	sp := obs.StartSpan("passed")
	finish(sp)
}
