// Package obs is a stub of the real observability package: spanend
// matches StartSpan by the import-path base "obs", so the fixtures can
// exercise the analyzer without importing the module tree.
package obs

import "context"

// Span mirrors the value-type span of the real package.
type Span struct {
	ended bool
}

// StartSpan begins a span.
func StartSpan(name string) Span {
	_ = name
	return Span{}
}

// SetAttr attaches an attribute.
func (s *Span) SetAttr(key string, value any) {
	_, _ = key, value
}

// End completes the span.
func (s *Span) End() {
	s.ended = true
}

// Start begins a span as a child of the one in ctx, mirroring the real
// two-value form.
func Start(ctx context.Context, name string) (context.Context, Span) {
	_ = name
	return ctx, Span{}
}

// TraceFlags mirrors the real flags helper, whose Start method must NOT
// be mistaken for the span constructor.
type TraceFlags struct{}

// Start opens the trace destination.
func (f *TraceFlags) Start() (func() error, error) {
	return func() error { return nil }, nil
}
