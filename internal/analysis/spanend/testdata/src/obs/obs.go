// Package obs is a stub of the real observability package: spanend
// matches StartSpan by the import-path base "obs", so the fixtures can
// exercise the analyzer without importing the module tree.
package obs

// Span mirrors the value-type span of the real package.
type Span struct {
	ended bool
}

// StartSpan begins a span.
func StartSpan(name string) Span {
	_ = name
	return Span{}
}

// SetAttr attaches an attribute.
func (s *Span) SetAttr(key string, value any) {
	_, _ = key, value
}

// End completes the span.
func (s *Span) End() {
	s.ended = true
}
