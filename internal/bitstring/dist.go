package bitstring

import (
	"fmt"
	"math"
	"slices"
	"sort"
)

// Dist is an empirical distribution over n-qubit bit-strings: the counts (or
// re-weighted pseudo-counts after mitigation) observed for each outcome.
// Counts are float64 because mitigation redistributes fractional flow.
type Dist struct {
	n      int
	counts map[BitString]float64
	total  float64
}

// NewDist returns an empty distribution over width-n bit-strings.
func NewDist(n int) *Dist {
	return &Dist{n: n, counts: make(map[BitString]float64)}
}

// NewDistCap is NewDist with the outcome map pre-sized for an expected
// support, avoiding rehash growth when the caller knows the outcome count
// up front (e.g. statevector.Dist counts its support first).
func NewDistCap(n, capacity int) *Dist {
	if capacity < 0 {
		capacity = 0
	}
	return &Dist{n: n, counts: make(map[BitString]float64, capacity)}
}

// FromCounts builds a distribution from a map of outcome to count.
func FromCounts(n int, counts map[BitString]float64) *Dist {
	keys := make([]BitString, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	d := NewDist(n)
	for _, k := range keys {
		d.Add(k, counts[k])
	}
	return d
}

// FromStringCounts builds a distribution from textual outcomes, e.g. the
// shape of an IBMQ result dictionary {"0101": 17, ...}. All keys must have
// the same width.
func FromStringCounts(counts map[string]float64) (*Dist, error) {
	keys := make([]string, 0, len(counts))
	for s := range counts {
		keys = append(keys, s)
	}
	sort.Strings(keys)
	var d *Dist
	for _, s := range keys {
		v, n, err := Parse(s)
		if err != nil {
			return nil, err
		}
		// Vendor dictionaries are untrusted input: a NaN or Inf count
		// would poison the running total and every probability derived
		// from it (found by FuzzDistFromCounts).
		if c := counts[s]; math.IsNaN(c) || math.IsInf(c, 0) {
			return nil, fmt.Errorf("bitstring: non-finite count %v for outcome %q", c, s)
		}
		if d == nil {
			d = NewDist(n)
		} else if n != d.n {
			return nil, fmt.Errorf("bitstring: mixed widths %d and %d", d.n, n)
		}
		d.Add(v, counts[s])
	}
	if d == nil {
		return nil, fmt.Errorf("bitstring: empty counts")
	}
	return d, nil
}

// Width returns the register width n.
func (d *Dist) Width() int { return d.n }

// Add adds c observations of outcome v. Adding a negative count is allowed
// (mitigation flows subtract), but the stored count is floored at zero.
func (d *Dist) Add(v BitString, c float64) {
	cur := d.counts[v]
	next := cur + c
	if next <= 0 {
		d.total -= cur
		delete(d.counts, v)
		return
	}
	d.total += next - cur
	d.counts[v] = next
}

// Set replaces the count of outcome v.
func (d *Dist) Set(v BitString, c float64) {
	cur := d.counts[v]
	if c <= 0 {
		d.total -= cur
		delete(d.counts, v)
		return
	}
	d.total += c - cur
	d.counts[v] = c
}

// Count returns the count of outcome v (zero if unobserved).
//
//qbeep:mustinline
//qbeep:allocfree
func (d *Dist) Count(v BitString) float64 { return d.counts[v] }

// Total returns the sum of all counts (the shot count for raw data).
func (d *Dist) Total() float64 { return d.total }

// Prob returns the empirical probability of outcome v.
func (d *Dist) Prob(v BitString) float64 {
	if d.total == 0 {
		return 0
	}
	return d.counts[v] / d.total
}

// Support returns the number of distinct observed outcomes.
func (d *Dist) Support() int { return len(d.counts) }

// Reset empties the distribution in place, keeping the width and the
// outcome map's storage so arena-pooled Dists don't re-allocate across
// batches.
func (d *Dist) Reset() {
	clear(d.counts)
	d.total = 0
}

// Outcomes returns the observed outcomes sorted ascending. Sorting makes
// every downstream iteration deterministic.
func (d *Dist) Outcomes() []BitString {
	return d.OutcomesInto(nil)
}

// OutcomesInto appends the observed outcomes, sorted ascending, to
// dst[:0] and returns the result — the allocation-free form of Outcomes
// for callers that keep a scratch slice across merges (slices.Sort
// avoids sort.Slice's interface boxing).
func (d *Dist) OutcomesInto(dst []BitString) []BitString {
	out := dst[:0]
	for v := range d.counts {
		out = append(out, v)
	}
	slices.Sort(out)
	return out
}

// Each calls fn for every outcome/count pair in deterministic order.
func (d *Dist) Each(fn func(v BitString, count float64)) {
	for _, v := range d.Outcomes() {
		fn(v, d.counts[v])
	}
}

// Clone returns a deep copy.
func (d *Dist) Clone() *Dist {
	c := NewDist(d.n)
	for k, v := range d.counts {
		c.counts[k] = v
	}
	c.total = d.total
	return c
}

// Top returns the outcome with the largest count. ok is false for an empty
// distribution. Ties break toward the smaller value for determinism.
func (d *Dist) Top() (v BitString, ok bool) {
	var best BitString
	bestC := math.Inf(-1)
	for _, o := range d.Outcomes() {
		if c := d.counts[o]; c > bestC {
			best, bestC = o, c
		}
	}
	return best, len(d.counts) > 0
}

// Normalized returns a copy scaled so counts sum to total.
func (d *Dist) Normalized(total float64) *Dist {
	c := NewDist(d.n)
	if d.total == 0 {
		return c
	}
	scale := total / d.total
	for k, v := range d.counts {
		c.counts[k] = v * scale
	}
	c.total = total
	return c
}

// StringCounts renders the distribution as a textual-outcome map, the shape
// vendor SDKs use.
func (d *Dist) StringCounts() map[string]float64 {
	m := make(map[string]float64, len(d.counts))
	for k, v := range d.counts {
		m[Format(k, d.n)] = v
	}
	return m
}

// Marginal traces out all qubits not in keep: result bit i is input bit
// keep[i]. Counts of outcomes that collide after the projection merge.
func (d *Dist) Marginal(keep []int) (*Dist, error) {
	if len(keep) == 0 || len(keep) > d.n {
		return nil, fmt.Errorf("bitstring: marginal over %d of %d qubits", len(keep), d.n)
	}
	seen := make(map[int]bool, len(keep))
	for _, q := range keep {
		if q < 0 || q >= d.n {
			return nil, fmt.Errorf("bitstring: marginal qubit %d outside [0,%d)", q, d.n)
		}
		if seen[q] {
			return nil, fmt.Errorf("bitstring: marginal qubit %d repeated", q)
		}
		seen[q] = true
	}
	out := NewDist(len(keep))
	for _, v := range d.Outcomes() {
		var m BitString
		for i, q := range keep {
			if v.Bit(q) == 1 {
				m |= 1 << uint(i)
			}
		}
		out.Add(m, d.counts[v])
	}
	return out, nil
}

// HammingSpectrum buckets the distribution by Hamming distance from center:
// element k of the result is the total probability mass at distance k.
func (d *Dist) HammingSpectrum(center BitString) []float64 {
	spec := make([]float64, d.n+1)
	if d.total == 0 {
		return spec
	}
	for _, v := range d.Outcomes() {
		spec[Hamming(v, center)] += d.counts[v] / d.total
	}
	return spec
}

// ExpectedHamming returns the expected Hamming distance from center under
// the distribution (the paper's EHD statistic).
func (d *Dist) ExpectedHamming(center BitString) float64 {
	if d.total == 0 {
		return 0
	}
	var s float64
	for _, v := range d.Outcomes() {
		s += float64(Hamming(v, center)) * d.counts[v]
	}
	return s / d.total
}

// Entropy returns the Shannon entropy of the distribution in bits.
func (d *Dist) Entropy() float64 {
	if d.total == 0 {
		return 0
	}
	var h float64
	for _, v := range d.Outcomes() {
		p := d.counts[v] / d.total
		h -= p * math.Log2(p)
	}
	return h
}

// Fidelity computes the classical (Bhattacharyya) fidelity between two
// distributions over the same register: F = (Σ_i sqrt(p_i q_i))².
// This is the fidelity definition the paper uses to compare ideal and
// observed outputs.
func Fidelity(p, q *Dist) float64 {
	if p.total == 0 || q.total == 0 {
		return 0
	}
	var s float64
	for _, v := range p.Outcomes() {
		if qc, ok := q.counts[v]; ok {
			s += math.Sqrt(p.counts[v] / p.total * qc / q.total)
		}
	}
	return s * s
}

// Hellinger computes the Hellinger distance between two distributions:
// H = sqrt(1 - Σ sqrt(p_i q_i)), in [0, 1].
func Hellinger(p, q *Dist) float64 {
	bc := math.Sqrt(Fidelity(p, q))
	if bc > 1 {
		bc = 1
	}
	return math.Sqrt(1 - bc)
}

// HellingerVec computes the Hellinger distance between two probability
// vectors of equal length (used for Hamming-spectrum comparisons). Vectors
// are normalized internally; zero-mass vectors yield distance 1.
func HellingerVec(p, q []float64) float64 {
	var sp, sq float64
	for _, v := range p {
		sp += v
	}
	for _, v := range q {
		sq += v
	}
	if sp == 0 || sq == 0 {
		return 1
	}
	var bc float64
	n := len(p)
	if len(q) < n {
		n = len(q)
	}
	for i := 0; i < n; i++ {
		if p[i] > 0 && q[i] > 0 {
			bc += math.Sqrt(p[i] / sp * q[i] / sq)
		}
	}
	if bc > 1 {
		bc = 1
	}
	return math.Sqrt(1 - bc)
}

// TVD computes the total variation distance between two distributions.
func TVD(p, q *Dist) float64 {
	seen := make(map[BitString]bool, len(p.counts)+len(q.counts))
	var s float64
	for _, v := range p.Outcomes() {
		seen[v] = true
		s += math.Abs(p.Prob(v) - q.Prob(v))
	}
	for _, v := range q.Outcomes() {
		if !seen[v] {
			s += q.Prob(v)
		}
	}
	return s / 2
}
