package bitstring

import (
	"math"
	"testing"
)

// FuzzDistFromCounts hardens the untrusted boundary of the counts
// model: FromStringCounts consumes vendor result dictionaries
// ({"0101": 17, ...}), so arbitrary keys and counts must never panic,
// and any distribution it accepts must satisfy the Dist invariants the
// mitigation core leans on — strictly sorted positive-count outcomes, a
// total equal to the outcome sum, and a lossless string round trip.
func FuzzDistFromCounts(f *testing.F) {
	f.Add("0101", 17.0, "0110", 2.5)
	f.Add("0", 1.0, "1", 0.0)
	f.Add("0011", -3.0, "0011", 2.0)
	f.Add("01x1", 1.0, "", 1.0)
	f.Add("1111111111111111111111111111111111111111111111111111111111111111", 1.0, "0", 2.0)
	f.Add("10", math.NaN(), "01", math.Inf(1))
	f.Fuzz(func(t *testing.T, k1 string, c1 float64, k2 string, c2 float64) {
		counts := map[string]float64{k1: c1, k2: c2}
		d, err := FromStringCounts(counts)
		if err != nil {
			return // rejection is fine; panics are not
		}
		n := d.Width()
		if n <= 0 || n > 64 {
			t.Fatalf("accepted width %d outside (0, 64]", n)
		}
		outs := d.Outcomes()
		if len(outs) != d.Support() {
			t.Fatalf("Outcomes len %d != Support %d", len(outs), d.Support())
		}
		var sum float64
		for i, v := range outs {
			if i > 0 && outs[i-1] >= v {
				t.Fatalf("Outcomes not strictly sorted: %v", outs)
			}
			c := d.Count(v)
			if !(c > 0) {
				t.Fatalf("stored outcome %s has non-positive count %v", Format(v, n), c)
			}
			sum += c
		}
		if !approxEqual(sum, d.Total()) {
			t.Fatalf("Total %v != outcome sum %v", d.Total(), sum)
		}
		if d.Support() == 0 {
			return
		}
		back, err := FromStringCounts(d.StringCounts())
		if err != nil {
			t.Fatalf("round trip through StringCounts rejected: %v", err)
		}
		if back.Width() != n || back.Support() != d.Support() || !approxEqual(back.Total(), d.Total()) {
			t.Fatalf("round trip changed shape: width %d->%d support %d->%d total %v->%v",
				n, back.Width(), d.Support(), back.Support(), d.Total(), back.Total())
		}
	})
}

func approxEqual(a, b float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= 1e-9*scale
}
