package bitstring

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseFormatRoundTrip(t *testing.T) {
	cases := []struct {
		s    string
		v    BitString
		n    int
		fail bool
	}{
		{s: "0", v: 0, n: 1},
		{s: "1", v: 1, n: 1},
		{s: "10", v: 2, n: 2},
		{s: "01101", v: 13, n: 5},
		{s: "0000", v: 0, n: 4},
		{s: "1111", v: 15, n: 4},
		{s: "", fail: true},
		{s: "012", fail: true},
		{s: "abc", fail: true},
	}
	for _, c := range cases {
		v, n, err := Parse(c.s)
		if c.fail {
			if err == nil {
				t.Errorf("Parse(%q): expected error", c.s)
			}
			continue
		}
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.s, err)
		}
		if v != c.v || n != c.n {
			t.Errorf("Parse(%q) = %d,%d want %d,%d", c.s, v, n, c.v, c.n)
		}
		if got := Format(v, n); got != c.s {
			t.Errorf("Format(%d,%d) = %q want %q", v, n, got, c.s)
		}
	}
}

func TestParseTooLong(t *testing.T) {
	s := make([]byte, MaxWidth+1)
	for i := range s {
		s[i] = '0'
	}
	if _, _, err := Parse(string(s)); err == nil {
		t.Fatal("expected error for overlong string")
	}
}

func TestParseFormatQuick(t *testing.T) {
	f := func(raw uint32) bool {
		v := BitString(raw)
		s := Format(v, 32)
		got, n, err := Parse(s)
		return err == nil && n == 32 && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitOps(t *testing.T) {
	var b BitString = 0b1010
	if b.Bit(0) != 0 || b.Bit(1) != 1 || b.Bit(3) != 1 {
		t.Errorf("Bit: got %d %d %d", b.Bit(0), b.Bit(1), b.Bit(3))
	}
	if got := b.SetBit(0, 1); got != 0b1011 {
		t.Errorf("SetBit(0,1) = %b", got)
	}
	if got := b.SetBit(1, 0); got != 0b1000 {
		t.Errorf("SetBit(1,0) = %b", got)
	}
	if got := b.FlipBit(2); got != 0b1110 {
		t.Errorf("FlipBit(2) = %b", got)
	}
	if b.Weight() != 2 {
		t.Errorf("Weight = %d", b.Weight())
	}
}

func TestHamming(t *testing.T) {
	cases := []struct {
		a, b BitString
		d    int
	}{
		{0, 0, 0},
		{0b1111, 0b0000, 4},
		{0b1010, 0b0101, 4},
		{0b1100, 0b1000, 1},
	}
	for _, c := range cases {
		if got := Hamming(c.a, c.b); got != c.d {
			t.Errorf("Hamming(%b,%b) = %d want %d", c.a, c.b, got, c.d)
		}
	}
}

func TestHammingMetricProperties(t *testing.T) {
	// Symmetry and triangle inequality, the metric axioms the state graph
	// relies on.
	f := func(a, b, c uint16) bool {
		x, y, z := BitString(a), BitString(b), BitString(c)
		if Hamming(x, y) != Hamming(y, x) {
			return false
		}
		if Hamming(x, x) != 0 {
			return false
		}
		return Hamming(x, z) <= Hamming(x, y)+Hamming(y, z)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSphereEnumeration(t *testing.T) {
	// All strings at distance d really are at distance d, there are C(n,d)
	// of them, and they are distinct.
	for _, tc := range []struct{ n, d int }{{4, 0}, {4, 1}, {4, 2}, {4, 4}, {8, 3}, {10, 5}} {
		center := BitString(0b1011)
		seen := make(map[BitString]bool)
		Sphere(center, tc.n, tc.d, func(v BitString) bool {
			if Hamming(v, center) != tc.d {
				t.Errorf("n=%d d=%d: %b at distance %d", tc.n, tc.d, v, Hamming(v, center))
			}
			if seen[v] {
				t.Errorf("n=%d d=%d: duplicate %b", tc.n, tc.d, v)
			}
			seen[v] = true
			return true
		})
		if uint64(len(seen)) != SphereSize(tc.n, tc.d) {
			t.Errorf("n=%d d=%d: %d strings, want %d", tc.n, tc.d, len(seen), SphereSize(tc.n, tc.d))
		}
	}
}

func TestSphereEarlyStop(t *testing.T) {
	calls := 0
	Sphere(0, 8, 2, func(BitString) bool {
		calls++
		return calls < 3
	})
	if calls != 3 {
		t.Errorf("early stop after %d calls, want 3", calls)
	}
}

func TestSphereOutOfRange(t *testing.T) {
	called := false
	Sphere(0, 4, 5, func(BitString) bool { called = true; return true })
	Sphere(0, 4, -1, func(BitString) bool { called = true; return true })
	if called {
		t.Error("Sphere called fn for out-of-range distance")
	}
}

func TestSphereSize(t *testing.T) {
	cases := []struct {
		n, d int
		want uint64
	}{
		{5, 0, 1}, {5, 1, 5}, {5, 2, 10}, {5, 5, 1},
		{10, 3, 120}, {15, 7, 6435}, {4, 5, 0}, {4, -1, 0},
	}
	for _, c := range cases {
		if got := SphereSize(c.n, c.d); got != c.want {
			t.Errorf("SphereSize(%d,%d) = %d want %d", c.n, c.d, got, c.want)
		}
	}
}

func TestSphereSizeSymmetry(t *testing.T) {
	f := func(nRaw, dRaw uint8) bool {
		n := int(nRaw%30) + 1
		d := int(dRaw) % (n + 1)
		return SphereSize(n, d) == SphereSize(n, n-d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSphereSizeRowSum(t *testing.T) {
	// Σ_d C(n,d) == 2^n for small n: the spheres partition the hypercube.
	for n := 1; n <= 16; n++ {
		var sum uint64
		for d := 0; d <= n; d++ {
			sum += SphereSize(n, d)
		}
		if sum != uint64(1)<<uint(n) {
			t.Errorf("n=%d: sphere sizes sum to %d want %d", n, sum, uint64(1)<<uint(n))
		}
	}
}

func TestSphereCoversHypercube(t *testing.T) {
	// Union over all d of Sphere(center, n, d) is exactly {0,..,2^n-1}.
	const n = 6
	center := BitString(0b101010)
	seen := make(map[BitString]bool)
	for d := 0; d <= n; d++ {
		Sphere(center, n, d, func(v BitString) bool {
			seen[v] = true
			return true
		})
	}
	if len(seen) != 1<<n {
		t.Fatalf("covered %d strings, want %d", len(seen), 1<<n)
	}
}

func BenchmarkSphereD3N15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		count := 0
		Sphere(0, 15, 3, func(BitString) bool { count++; return true })
	}
}

func BenchmarkHamming(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	xs := make([]BitString, 1024)
	for i := range xs {
		xs[i] = BitString(r.Uint64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Hamming(xs[i%1024], xs[(i+7)%1024])
	}
}
