package bitstring

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDistBasics(t *testing.T) {
	d := NewDist(4)
	if d.Width() != 4 || d.Total() != 0 || d.Support() != 0 {
		t.Fatal("empty dist invariants violated")
	}
	d.Add(0b0001, 3)
	d.Add(0b0001, 2)
	d.Add(0b1000, 5)
	if d.Total() != 10 {
		t.Errorf("Total = %v", d.Total())
	}
	if d.Count(0b0001) != 5 {
		t.Errorf("Count = %v", d.Count(0b0001))
	}
	if !approx(d.Prob(0b1000), 0.5, 1e-12) {
		t.Errorf("Prob = %v", d.Prob(0b1000))
	}
	if d.Support() != 2 {
		t.Errorf("Support = %d", d.Support())
	}
}

func TestDistAddNegativeRemoves(t *testing.T) {
	d := NewDist(3)
	d.Add(1, 4)
	d.Add(1, -4)
	if d.Support() != 0 || d.Total() != 0 {
		t.Errorf("negative add should remove outcome: support=%d total=%v", d.Support(), d.Total())
	}
	d.Add(2, 4)
	d.Add(2, -10) // over-subtraction floors at removal
	if d.Count(2) != 0 {
		t.Errorf("Count after over-subtraction = %v", d.Count(2))
	}
}

func TestDistSet(t *testing.T) {
	d := NewDist(3)
	d.Set(5, 7)
	d.Set(5, 3)
	if d.Count(5) != 3 || d.Total() != 3 {
		t.Errorf("Set: count=%v total=%v", d.Count(5), d.Total())
	}
	d.Set(5, 0)
	if d.Support() != 0 {
		t.Error("Set(0) should delete")
	}
}

func TestFromStringCounts(t *testing.T) {
	d, err := FromStringCounts(map[string]float64{"010": 1, "111": 3})
	if err != nil {
		t.Fatal(err)
	}
	if d.Width() != 3 || d.Count(0b010) != 1 || d.Count(0b111) != 3 {
		t.Errorf("bad dist: %v", d.StringCounts())
	}
	if _, err := FromStringCounts(map[string]float64{"01": 1, "111": 1}); err == nil {
		t.Error("mixed widths should error")
	}
	if _, err := FromStringCounts(nil); err == nil {
		t.Error("empty counts should error")
	}
	if _, err := FromStringCounts(map[string]float64{"01x": 1}); err == nil {
		t.Error("bad characters should error")
	}
}

func TestStringCountsRoundTrip(t *testing.T) {
	d := NewDist(5)
	d.Add(0b00101, 7)
	d.Add(0b11000, 2)
	back, err := FromStringCounts(d.StringCounts())
	if err != nil {
		t.Fatal(err)
	}
	if TVD(d, back) != 0 {
		t.Errorf("round trip changed distribution")
	}
}

func TestOutcomesSortedAndEachDeterministic(t *testing.T) {
	d := NewDist(8)
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 100; i++ {
		d.Add(BitString(r.Intn(256)), 1)
	}
	out := d.Outcomes()
	for i := 1; i < len(out); i++ {
		if out[i-1] >= out[i] {
			t.Fatalf("Outcomes not strictly sorted at %d", i)
		}
	}
	var a, b []BitString
	d.Each(func(v BitString, _ float64) { a = append(a, v) })
	d.Each(func(v BitString, _ float64) { b = append(b, v) })
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Each order not deterministic")
		}
	}
}

func TestTop(t *testing.T) {
	d := NewDist(4)
	if _, ok := d.Top(); ok {
		t.Error("Top of empty dist should report !ok")
	}
	d.Add(3, 5)
	d.Add(9, 10)
	d.Add(1, 2)
	if v, ok := d.Top(); !ok || v != 9 {
		t.Errorf("Top = %v,%v", v, ok)
	}
}

func TestCloneIndependence(t *testing.T) {
	d := NewDist(4)
	d.Add(1, 5)
	c := d.Clone()
	c.Add(1, 5)
	if d.Count(1) != 5 || c.Count(1) != 10 {
		t.Error("Clone shares state")
	}
}

func TestNormalized(t *testing.T) {
	d := NewDist(4)
	d.Add(1, 2)
	d.Add(2, 6)
	n := d.Normalized(1)
	if !approx(n.Total(), 1, 1e-12) || !approx(n.Count(2), 0.75, 1e-12) {
		t.Errorf("Normalized: total=%v c2=%v", n.Total(), n.Count(2))
	}
	if e := NewDist(4).Normalized(1); e.Total() != 0 {
		t.Error("normalizing empty dist should stay empty")
	}
}

func TestHammingSpectrum(t *testing.T) {
	d := NewDist(3)
	d.Add(0b000, 4) // distance 0
	d.Add(0b001, 2) // distance 1
	d.Add(0b011, 2) // distance 2
	spec := d.HammingSpectrum(0)
	want := []float64{0.5, 0.25, 0.25, 0}
	for i := range want {
		if !approx(spec[i], want[i], 1e-12) {
			t.Errorf("spectrum[%d] = %v want %v", i, spec[i], want[i])
		}
	}
	var sum float64
	for _, p := range spec {
		sum += p
	}
	if !approx(sum, 1, 1e-12) {
		t.Errorf("spectrum sums to %v", sum)
	}
}

func TestExpectedHamming(t *testing.T) {
	d := NewDist(4)
	d.Add(0b0000, 1)
	d.Add(0b1111, 1)
	if got := d.ExpectedHamming(0); !approx(got, 2, 1e-12) {
		t.Errorf("EHD = %v want 2", got)
	}
	if got := NewDist(4).ExpectedHamming(0); got != 0 {
		t.Errorf("EHD of empty dist = %v", got)
	}
}

func TestEntropy(t *testing.T) {
	// Single outcome: zero entropy; uniform over 4: 2 bits.
	d := NewDist(2)
	d.Add(0, 100)
	if got := d.Entropy(); !approx(got, 0, 1e-12) {
		t.Errorf("deterministic entropy = %v", got)
	}
	for v := BitString(0); v < 4; v++ {
		d.Set(v, 1)
	}
	if got := d.Entropy(); !approx(got, 2, 1e-12) {
		t.Errorf("uniform entropy = %v want 2", got)
	}
}

func TestFidelityIdentical(t *testing.T) {
	d := NewDist(3)
	d.Add(1, 3)
	d.Add(5, 7)
	if got := Fidelity(d, d); !approx(got, 1, 1e-12) {
		t.Errorf("self fidelity = %v", got)
	}
}

func TestFidelityDisjoint(t *testing.T) {
	p := NewDist(3)
	p.Add(1, 1)
	q := NewDist(3)
	q.Add(2, 1)
	if got := Fidelity(p, q); got != 0 {
		t.Errorf("disjoint fidelity = %v", got)
	}
	if got := Hellinger(p, q); !approx(got, 1, 1e-12) {
		t.Errorf("disjoint Hellinger = %v", got)
	}
}

func TestFidelityKnownValue(t *testing.T) {
	// p = (1/2, 1/2), q = (1, 0): F = (sqrt(1/2))^2 = 1/2.
	p := NewDist(1)
	p.Add(0, 1)
	p.Add(1, 1)
	q := NewDist(1)
	q.Add(0, 1)
	if got := Fidelity(p, q); !approx(got, 0.5, 1e-12) {
		t.Errorf("fidelity = %v want 0.5", got)
	}
}

func TestHellingerProperties(t *testing.T) {
	f := func(aRaw, bRaw [4]uint8) bool {
		p, q := NewDist(2), NewDist(2)
		for i := 0; i < 4; i++ {
			p.Add(BitString(i), float64(aRaw[i]))
			q.Add(BitString(i), float64(bRaw[i]))
		}
		if p.Total() == 0 || q.Total() == 0 {
			return true
		}
		h := Hellinger(p, q)
		return h >= -1e-12 && h <= 1+1e-12 && approx(h, Hellinger(q, p), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHellingerVec(t *testing.T) {
	if got := HellingerVec([]float64{1, 0}, []float64{1, 0}); !approx(got, 0, 1e-12) {
		t.Errorf("identical vec Hellinger = %v", got)
	}
	if got := HellingerVec([]float64{1, 0}, []float64{0, 1}); !approx(got, 1, 1e-12) {
		t.Errorf("disjoint vec Hellinger = %v", got)
	}
	if got := HellingerVec([]float64{0, 0}, []float64{1, 0}); got != 1 {
		t.Errorf("zero-mass vec Hellinger = %v", got)
	}
	// Scale invariance.
	a := []float64{2, 3, 5}
	b := []float64{40, 60, 100}
	if got := HellingerVec(a, b); !approx(got, 0, 1e-9) {
		t.Errorf("scaled vec Hellinger = %v", got)
	}
}

func TestTVD(t *testing.T) {
	p := NewDist(2)
	p.Add(0, 1)
	q := NewDist(2)
	q.Add(1, 1)
	if got := TVD(p, q); !approx(got, 1, 1e-12) {
		t.Errorf("disjoint TVD = %v", got)
	}
	if got := TVD(p, p); got != 0 {
		t.Errorf("self TVD = %v", got)
	}
	// Asymmetric supports: q has mass p lacks.
	q.Add(0, 1)
	if got := TVD(p, q); !approx(got, 0.5, 1e-12) {
		t.Errorf("TVD = %v want 0.5", got)
	}
}

func TestProbSumsToOne(t *testing.T) {
	f := func(raw []uint8) bool {
		d := NewDist(8)
		for i, c := range raw {
			d.Add(BitString(i%256), float64(c))
		}
		if d.Total() == 0 {
			return true
		}
		var sum float64
		d.Each(func(v BitString, _ float64) { sum += d.Prob(v) })
		return approx(sum, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
