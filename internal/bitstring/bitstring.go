// Package bitstring provides bit-string values, measurement-count
// distributions, and Hamming-spectrum utilities used throughout Q-BEEP.
//
// A bit-string is a measurement outcome of an n-qubit circuit, stored as the
// integer whose bit i is the measured value of qubit i (qubit 0 is the
// least-significant bit). The textual form renders qubit n-1 first, matching
// the convention used by IBMQ result dictionaries.
package bitstring

import (
	"fmt"
	"math/bits"
	"strings"
)

// BitString is an n-qubit measurement outcome. The width is carried
// separately (see Dist and the helpers below) because leading zeros matter
// when rendering and when enumerating Hamming spheres.
type BitString uint64

// MaxWidth is the largest supported register width. Dense enumeration of a
// Hamming sphere is combinatorial, not exponential, so the cap exists only to
// keep BitString inside uint64.
const MaxWidth = 64

// Parse converts a textual bit-string such as "01101" into its value. The
// leftmost character is the most-significant qubit. It returns the value and
// the width.
func Parse(s string) (BitString, int, error) {
	if len(s) == 0 {
		return 0, 0, fmt.Errorf("bitstring: empty string")
	}
	if len(s) > MaxWidth {
		return 0, 0, fmt.Errorf("bitstring: %q longer than %d bits", s, MaxWidth)
	}
	var v BitString
	for _, c := range s {
		switch c {
		case '0':
			v <<= 1
		case '1':
			v = v<<1 | 1
		default:
			return 0, 0, fmt.Errorf("bitstring: invalid character %q in %q", c, s)
		}
	}
	return v, len(s), nil
}

// Format renders v as a width-n binary string, most-significant qubit first.
func Format(v BitString, n int) string {
	var b strings.Builder
	b.Grow(n)
	for i := n - 1; i >= 0; i-- {
		if v&(1<<uint(i)) != 0 {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// Bit reports the value of qubit i (0 or 1).
func (b BitString) Bit(i int) int {
	return int(b>>uint(i)) & 1
}

// SetBit returns b with qubit i set to val (0 or 1).
func (b BitString) SetBit(i, val int) BitString {
	if val == 0 {
		return b &^ (1 << uint(i))
	}
	return b | (1 << uint(i))
}

// FlipBit returns b with qubit i flipped.
func (b BitString) FlipBit(i int) BitString {
	return b ^ (1 << uint(i))
}

// Weight is the Hamming weight (number of set bits).
//
//qbeep:mustinline
//qbeep:allocfree
func (b BitString) Weight() int {
	return bits.OnesCount64(uint64(b))
}

// Hamming returns the Hamming distance between a and b. It is the
// innermost comparison of the edge scan, so it must stay inlinable and
// allocation-free.
//
//qbeep:mustinline
//qbeep:allocfree
func Hamming(a, b BitString) int {
	return bits.OnesCount64(uint64(a ^ b))
}

// Sphere enumerates all bit-strings of width n at Hamming distance exactly d
// from center, calling fn for each. Enumeration order is deterministic
// (lexicographic in the flipped-bit index sets). It stops early if fn
// returns false.
//
// The count of visited strings is C(n, d); callers that need only nearby
// shells keep d small, which is what makes Q-BEEP's state-graph edge
// generation tractable.
func Sphere(center BitString, n, d int, fn func(BitString) bool) {
	if d < 0 || d > n {
		return
	}
	if d == 0 {
		fn(center)
		return
	}
	// Iterative enumeration of d-combinations of [0, n).
	idx := make([]int, d)
	for i := range idx {
		idx[i] = i
	}
	for {
		v := center
		for _, i := range idx {
			v ^= 1 << uint(i)
		}
		if !fn(v) {
			return
		}
		// Advance combination.
		j := d - 1
		for j >= 0 && idx[j] == n-d+j {
			j--
		}
		if j < 0 {
			return
		}
		idx[j]++
		for k := j + 1; k < d; k++ {
			idx[k] = idx[k-1] + 1
		}
	}
}

// SphereSize returns C(n, d), the number of strings at distance d in an
// n-qubit register, saturating at the maximum uint64 on overflow.
func SphereSize(n, d int) uint64 {
	if d < 0 || d > n {
		return 0
	}
	if d > n-d {
		d = n - d
	}
	var c uint64 = 1
	for i := 0; i < d; i++ {
		hi, lo := bits.Mul64(c, uint64(n-i))
		if hi != 0 {
			return ^uint64(0)
		}
		c = lo / uint64(i+1)
	}
	return c
}
