package bitstring

import (
	"testing"
	"testing/quick"
)

func TestFromCounts(t *testing.T) {
	d := FromCounts(3, map[BitString]float64{0b001: 2, 0b110: 5})
	if d.Width() != 3 || d.Total() != 7 || d.Count(0b110) != 5 {
		t.Errorf("FromCounts: %v", d.StringCounts())
	}
	if e := FromCounts(2, nil); e.Support() != 0 {
		t.Error("empty FromCounts should be empty")
	}
	// Non-positive counts are dropped by Add semantics.
	d = FromCounts(2, map[BitString]float64{0b01: -3, 0b10: 4})
	if d.Support() != 1 || d.Total() != 4 {
		t.Errorf("negative counts should drop: %v", d.StringCounts())
	}
}

func TestMarginalBasic(t *testing.T) {
	d := NewDist(3)
	d.Add(0b101, 5) // q0=1, q1=0, q2=1
	d.Add(0b001, 3) // q0=1, q1=0, q2=0
	m, err := d.Marginal([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Width() != 2 {
		t.Fatalf("width %d", m.Width())
	}
	if m.Count(0b01) != 8 { // both collapse to q1=0,q0=1
		t.Errorf("marginal: %v", m.StringCounts())
	}
}

func TestMarginalReorders(t *testing.T) {
	d := NewDist(3)
	d.Add(0b011, 1) // q0=1, q1=1, q2=0
	// keep = [2, 0]: result bit0 = q2 (0), bit1 = q0 (1).
	m, err := d.Marginal([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if m.Count(0b10) != 1 {
		t.Errorf("reordered marginal: %v", m.StringCounts())
	}
}

func TestMarginalValidation(t *testing.T) {
	d := NewDist(3)
	d.Add(0, 1)
	if _, err := d.Marginal(nil); err == nil {
		t.Error("empty keep should error")
	}
	if _, err := d.Marginal([]int{0, 1, 2, 0}); err == nil {
		t.Error("over-length keep should error")
	}
	if _, err := d.Marginal([]int{5}); err == nil {
		t.Error("out-of-range keep should error")
	}
	if _, err := d.Marginal([]int{0, 0}); err == nil {
		t.Error("repeated keep should error")
	}
}

func TestMarginalPreservesMass(t *testing.T) {
	f := func(raw [8]uint8, keepBits uint8) bool {
		d := NewDist(4)
		for i, c := range raw {
			d.Add(BitString(i), float64(c))
		}
		if d.Total() == 0 {
			return true
		}
		keep := []int{int(keepBits % 4)}
		m, err := d.Marginal(keep)
		if err != nil {
			return false
		}
		return approx(m.Total(), d.Total(), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProbZeroTotal(t *testing.T) {
	d := NewDist(2)
	if d.Prob(0) != 0 {
		t.Error("empty dist Prob should be 0")
	}
}
