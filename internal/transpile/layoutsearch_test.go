package transpile

import (
	"testing"

	"qbeep/internal/circuit"
	"qbeep/internal/mathx"
)

func searchCircuit() *circuit.Circuit {
	c := circuit.New("chain", 6).H(0)
	for q := 0; q+1 < 6; q++ {
		c.CX(q, q+1)
	}
	return c.MeasureAll()
}

func TestSearchLayoutValidation(t *testing.T) {
	b := mustBackend(t, "istanbul")
	if _, err := SearchLayout(searchCircuit(), b, -1, 1); err == nil {
		t.Error("negative trials should error")
	}
}

func TestSearchLayoutZeroTrialsEqualsGreedy(t *testing.T) {
	b := mustBackend(t, "istanbul")
	c := searchCircuit()
	greedy, err := Transpile(c, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	searched, err := SearchLayout(c, b, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if searched.GatesAfter != greedy.GatesAfter || searched.Time != greedy.Time {
		t.Errorf("zero-trial search diverged from greedy: %d/%v vs %d/%v",
			searched.GatesAfter, searched.Time, greedy.GatesAfter, greedy.Time)
	}
}

func TestSearchLayoutNeverWorseThanGreedy(t *testing.T) {
	b := mustBackend(t, "nairobi2") // noisy machine: placement matters
	c := searchCircuit()
	greedy, err := Transpile(c, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	greedyScore, err := exposure(greedy, b)
	if err != nil {
		t.Fatal(err)
	}
	searched, err := SearchLayout(c, b, 12, 7)
	if err != nil {
		t.Fatal(err)
	}
	searchedScore, err := exposure(searched, b)
	if err != nil {
		t.Fatal(err)
	}
	if searchedScore > greedyScore {
		t.Errorf("search regressed exposure: %v > %v", searchedScore, greedyScore)
	}
	// The winner still respects the topology.
	for _, g := range searched.Circuit.Gates {
		if g.Kind == circuit.CX && !b.Topology.Connected(g.Qubits[0], g.Qubits[1]) {
			t.Errorf("topology violation: %v", g)
		}
	}
}

func TestSearchLayoutDeterministic(t *testing.T) {
	b := mustBackend(t, "kyiv")
	c := searchCircuit()
	a1, err := SearchLayout(c, b, 6, 42)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := SearchLayout(c, b, 6, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a1.GatesAfter != a2.GatesAfter || a1.Time != a2.Time {
		t.Error("search not deterministic")
	}
	for i := range a1.Initial {
		if a1.Initial[i] != a2.Initial[i] {
			t.Fatal("layouts differ across identical runs")
		}
	}
}

func TestExposureErrors(t *testing.T) {
	b := mustBackend(t, "kyiv")
	if _, err := exposure(nil, b); err == nil {
		t.Error("nil result should error")
	}
}

func TestRandomLayoutIsInjection(t *testing.T) {
	rngLayout := randomLayout(4, 10, mathx.NewRNG(99))
	if err := rngLayout.validate(10); err != nil {
		t.Fatal(err)
	}
	if len(rngLayout) != 4 {
		t.Fatalf("layout size %d", len(rngLayout))
	}
}
