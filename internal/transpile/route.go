package transpile

import (
	"fmt"
	"sort"

	"qbeep/internal/circuit"
	"qbeep/internal/device"
)

// Layout maps logical qubits to physical qubits. Logical qubit i runs on
// physical qubit Layout[i].
type Layout []int

// validate checks the layout is an injection into [0, nPhys).
func (l Layout) validate(nPhys int) error {
	seen := make(map[int]bool, len(l))
	for i, p := range l {
		if p < 0 || p >= nPhys {
			return fmt.Errorf("transpile: logical %d mapped to invalid physical %d", i, p)
		}
		if seen[p] {
			return fmt.Errorf("transpile: physical qubit %d used twice", p)
		}
		seen[p] = true
	}
	return nil
}

// TrivialLayout maps logical i to physical i.
func TrivialLayout(n int) Layout {
	l := make(Layout, n)
	for i := range l {
		l[i] = i
	}
	return l
}

// GreedyLayout picks physical qubits for the circuit by interaction degree:
// the most-entangling logical qubit goes to the best-connected,
// lowest-error physical region. It seeds with the highest-degree logical
// qubit on the physical qubit with the most couplings, then grows the
// mapping along interaction edges, preferring neighbors with low 2-qubit
// error. This is a light-weight stand-in for VF2/SABRE-style layout.
func GreedyLayout(c *circuit.Circuit, b *device.Backend) (Layout, error) {
	n := c.N
	if n > b.N() {
		return nil, fmt.Errorf("transpile: circuit needs %d qubits, backend %s has %d", n, b.Name, b.N())
	}
	// Logical interaction multiplicities.
	inter := make(map[device.Edge]int)
	degree := make([]int, n)
	for _, g := range c.Gates {
		if !g.Kind.IsUnitary() || len(g.Qubits) < 2 {
			continue
		}
		for i := 0; i < len(g.Qubits); i++ {
			for j := i + 1; j < len(g.Qubits); j++ {
				inter[device.NormEdge(g.Qubits[i], g.Qubits[j])]++
				degree[g.Qubits[i]]++
				degree[g.Qubits[j]]++
			}
		}
	}
	// Logical qubits ordered by decreasing interaction degree (stable tie
	// break on index).
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool { return degree[order[i]] > degree[order[j]] })

	layout := make(Layout, n)
	for i := range layout {
		layout[i] = -1
	}
	usedPhys := make([]bool, b.N())

	// Physical seed: the qubit with the most couplings (ties toward lower
	// index).
	seedPhys, bestDeg := 0, -1
	for p := 0; p < b.N(); p++ {
		if d := len(b.Topology.Neighbors(p)); d > bestDeg {
			seedPhys, bestDeg = p, d
		}
	}

	edgeErr := func(a, bq int) float64 {
		if g, ok := b.Calibration.Gate2Q(a, bq); ok {
			return g.Error
		}
		return 1
	}

	place := func(logical, phys int) {
		layout[logical] = phys
		usedPhys[phys] = true
	}

	// Sorted edge view keeps the greedy scan deterministic (map iteration
	// order is randomized).
	interEdges := make([]device.Edge, 0, len(inter))
	for e := range inter {
		interEdges = append(interEdges, e)
	}
	sort.Slice(interEdges, func(i, j int) bool {
		if interEdges[i].A != interEdges[j].A {
			return interEdges[i].A < interEdges[j].A
		}
		return interEdges[i].B < interEdges[j].B
	})

	for _, lq := range order {
		if layout[lq] != -1 {
			continue
		}
		// Prefer a free physical neighbor of an already-placed interaction
		// partner, minimizing the coupling error.
		bestPhys, bestScore := -1, 2.0
		for _, e := range interEdges {
			w := inter[e]
			var partner int
			switch lq {
			case e.A:
				partner = e.B
			case e.B:
				partner = e.A
			default:
				continue
			}
			if layout[partner] == -1 {
				continue
			}
			for _, nb := range b.Topology.Neighbors(layout[partner]) {
				if usedPhys[nb] {
					continue
				}
				score := edgeErr(layout[partner], nb) / float64(w)
				//qbeep:allow-floatcmp exact tie-break: equal scores fall through to the qubit-index order
				if score < bestScore || (score == bestScore && nb < bestPhys) {
					bestPhys, bestScore = nb, score
				}
			}
		}
		if bestPhys == -1 {
			// No placed partner: take the seed or the first free qubit
			// nearest the seed.
			if !usedPhys[seedPhys] {
				bestPhys = seedPhys
			} else {
				bestDist := 1 << 30
				for p := 0; p < b.N(); p++ {
					if usedPhys[p] {
						continue
					}
					d, err := b.Topology.Distance(seedPhys, p)
					if err != nil {
						continue
					}
					if d < bestDist {
						bestPhys, bestDist = p, d
					}
				}
				if bestPhys == -1 {
					return nil, fmt.Errorf("transpile: no free physical qubit for logical %d", lq)
				}
			}
		}
		place(lq, bestPhys)
	}
	if err := layout.validate(b.N()); err != nil {
		return nil, err
	}
	return layout, nil
}

// Route rewrites a basis circuit onto the backend topology: logical qubits
// are placed by layout, and every CX between uncoupled physical qubits is
// preceded by SWAP chains (each SWAP lowered to 3 CX) moving the control
// along the shortest path to the target's neighborhood. The returned
// circuit acts on the backend's physical register; the returned final
// layout maps logical to physical at circuit end (measurement remapping
// uses it).
func Route(c *circuit.Circuit, b *device.Backend, layout Layout) (*circuit.Circuit, Layout, error) {
	if err := c.Err(); err != nil {
		return nil, nil, err
	}
	if !IsBasis(c) {
		return nil, nil, fmt.Errorf("transpile: Route requires a basis circuit; run Decompose first")
	}
	if len(layout) != c.N {
		return nil, nil, fmt.Errorf("transpile: layout covers %d logical qubits, circuit has %d", len(layout), c.N)
	}
	if err := layout.validate(b.N()); err != nil {
		return nil, nil, err
	}
	cur := append(Layout(nil), layout...)
	// phys2log is the inverse map for the physical qubits in use.
	phys2log := make(map[int]int, len(cur))
	for l, p := range cur {
		phys2log[p] = l
	}
	out := circuit.New(c.Name, b.N())

	swapPhys := func(pa, pb int) {
		// Emit SWAP as 3 CX and update the maps. Either endpoint may be
		// unoccupied (carrying no logical qubit).
		out.Append(cx(pa, pb)).Append(cx(pb, pa)).Append(cx(pa, pb))
		la, aOK := phys2log[pa]
		lb, bOK := phys2log[pb]
		if aOK {
			cur[la] = pb
			phys2log[pb] = la
		} else {
			delete(phys2log, pb)
		}
		if bOK {
			cur[lb] = pa
			phys2log[pa] = lb
		} else {
			delete(phys2log, pa)
		}
	}

	for _, g := range c.Gates {
		switch g.Kind {
		case circuit.Barrier:
			// Re-emit over the mapped qubits.
			qs := make([]int, len(g.Qubits))
			for i, q := range g.Qubits {
				qs[i] = cur[q]
			}
			out.Append(circuit.Gate{Kind: circuit.Barrier, Qubits: qs})
		case circuit.CX:
			pc, pt := cur[g.Qubits[0]], cur[g.Qubits[1]]
			if !b.Topology.Connected(pc, pt) {
				path, err := b.Topology.ShortestPath(pc, pt)
				if err != nil {
					return nil, nil, fmt.Errorf("transpile: routing %s: %w", g, err)
				}
				// Swap the control along the path until adjacent to target.
				for i := 0; i+2 < len(path); i++ {
					swapPhys(path[i], path[i+1])
				}
				pc = cur[g.Qubits[0]]
				pt = cur[g.Qubits[1]]
				if !b.Topology.Connected(pc, pt) {
					return nil, nil, fmt.Errorf("transpile: internal routing failure for %s", g)
				}
			}
			out.Append(cx(pc, pt))
		default:
			qs := make([]int, len(g.Qubits))
			for i, q := range g.Qubits {
				qs[i] = cur[q]
			}
			out.Append(circuit.Gate{Kind: g.Kind, Qubits: qs, Params: append([]float64(nil), g.Params...)})
		}
	}
	res, err := out.Finalize()
	if err != nil {
		return nil, nil, err
	}
	return res, cur, nil
}
