package transpile

import (
	"testing"

	"qbeep/internal/circuit"
	"qbeep/internal/device"
	"qbeep/internal/mathx"
)

func TestCommuteRZThroughCXControl(t *testing.T) {
	// RZ(a) q0 · CX(0,1) · RZ(b) q0 merges into one RZ.
	c := circuit.New("c", 2).RZ(0.3, 0).CX(0, 1).RZ(0.4, 0)
	opt, err := Optimize(c)
	if err != nil {
		t.Fatal(err)
	}
	if opt.CountKind(circuit.RZ) != 1 {
		t.Errorf("RZ count %d want 1: %s", opt.CountKind(circuit.RZ), opt)
	}
	equivalent(t, c, opt)
}

func TestCommuteRZBlockedByCXTarget(t *testing.T) {
	// RZ on the TARGET of CX does not commute: no merge.
	c := circuit.New("c", 2).RZ(0.3, 1).CX(0, 1).RZ(0.4, 1)
	opt, err := Optimize(c)
	if err != nil {
		t.Fatal(err)
	}
	if opt.CountKind(circuit.RZ) != 2 {
		t.Errorf("RZ count %d want 2 (blocked): %s", opt.CountKind(circuit.RZ), opt)
	}
	equivalent(t, c, opt)
}

func TestCommuteXThroughCXTarget(t *testing.T) {
	// X q1 · CX(0,1) · X q1 cancels (X commutes through the target).
	c := circuit.New("c", 2).X(1).CX(0, 1).X(1)
	opt, err := Optimize(c)
	if err != nil {
		t.Fatal(err)
	}
	if opt.CountKind(circuit.X) != 0 {
		t.Errorf("X count %d want 0: %s", opt.CountKind(circuit.X), opt)
	}
	equivalent(t, c, opt)
}

func TestCommuteXBlockedByCXControl(t *testing.T) {
	c := circuit.New("c", 2).X(0).CX(0, 1).X(0)
	opt, err := Optimize(c)
	if err != nil {
		t.Fatal(err)
	}
	if opt.CountKind(circuit.X) != 2 {
		t.Errorf("X count %d want 2 (blocked): %s", opt.CountKind(circuit.X), opt)
	}
	equivalent(t, c, opt)
}

func TestCommuteRZThroughCZ(t *testing.T) {
	c := circuit.New("c", 2).RZ(0.5, 0).CZ(0, 1).RZ(-0.5, 0)
	// CZ is not a basis gate, so route through Decompose first: the CZ
	// becomes H·CX·H on the target — RZ on qubit 0 (the control) still
	// commutes through.
	dec, err := Decompose(c)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Optimize(dec)
	if err != nil {
		t.Fatal(err)
	}
	if got := opt.CountKind(circuit.RZ); got >= dec.CountKind(circuit.RZ) {
		t.Errorf("no merge happened: %d vs %d RZ", got, dec.CountKind(circuit.RZ))
	}
	equivalent(t, c, opt)
}

func TestCommuteBarrierBlocks(t *testing.T) {
	c := circuit.New("c", 2).RZ(0.3, 0).Barrier().RZ(0.4, 0)
	opt, err := Optimize(c)
	if err != nil {
		t.Fatal(err)
	}
	if opt.CountKind(circuit.RZ) != 2 {
		t.Errorf("RZ merged across barrier: %s", opt)
	}
}

func TestCommutePreservesSemanticsRandom(t *testing.T) {
	rng := mathx.NewRNG(91)
	for trial := 0; trial < 12; trial++ {
		c := circuit.New("rand", 3)
		for i := 0; i < 30; i++ {
			switch rng.Intn(5) {
			case 0:
				c.RZ(rng.Uniform(-3, 3), rng.Intn(3))
			case 1:
				c.X(rng.Intn(3))
			case 2:
				c.SX(rng.Intn(3))
			case 3, 4:
				a := rng.Intn(3)
				b := (a + 1 + rng.Intn(2)) % 3
				c.CX(a, b)
			}
		}
		opt, err := Optimize(c)
		if err != nil {
			t.Fatal(err)
		}
		equivalent(t, c, opt)
		if opt.GateCount() > c.GateCount() {
			t.Error("optimizer grew the circuit")
		}
	}
}

func TestCommuteReducesBVDepth(t *testing.T) {
	// The transpiled BV has interleaved RZ/CX patterns the commutation
	// pass can shrink; assert it never grows and semantics hold.
	b := mustBackend(t, "galway")
	c := circuit.New("bv-ish", 5).H(0).H(1).H(2).CX(0, 4).CX(2, 4).H(0).H(1).H(2)
	res, err := Transpile(c, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.GatesAfter > res.GatesBefore*6 {
		t.Errorf("unexpected blow-up: %d -> %d", res.GatesBefore, res.GatesAfter)
	}
}

func mustBackend(t *testing.T, name string) *device.Backend {
	t.Helper()
	b, err := device.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
