// Package transpile lowers logical circuits to a hardware backend: it
// decomposes gates to the IBMQ-style {RZ, SX, X, CX} basis, maps and routes
// qubits onto the device topology by SWAP insertion, cancels redundant
// gates, and estimates the scheduled execution time — the t_circuit input of
// Q-BEEP's λ model (paper Eq. 2).
package transpile

import (
	"fmt"
	"math"

	"qbeep/internal/circuit"
)

// basisGate emits a basis gate (helper for readability).
func rz(phi float64, q int) circuit.Gate {
	return circuit.Gate{Kind: circuit.RZ, Qubits: []int{q}, Params: []float64{phi}}
}

func sx(q int) circuit.Gate { return circuit.Gate{Kind: circuit.SX, Qubits: []int{q}} }

func x(q int) circuit.Gate { return circuit.Gate{Kind: circuit.X, Qubits: []int{q}} }

func cx(c, t int) circuit.Gate { return circuit.Gate{Kind: circuit.CX, Qubits: []int{c, t}} }

// u3Basis decomposes U3(θ, φ, λ) into the ZXZXZ (RZ–SX–RZ–SX–RZ) Euler
// form used by IBM hardware: U3(θ,φ,λ) = RZ(φ+π)·SX·RZ(θ+π)·SX·RZ(λ),
// applied right-to-left, equal up to global phase.
func u3Basis(theta, phi, lambda float64, q int) []circuit.Gate {
	return []circuit.Gate{
		rz(lambda, q),
		sx(q),
		rz(theta+math.Pi, q),
		sx(q),
		rz(phi+math.Pi, q),
	}
}

// DecomposeGate rewrites one logical gate into basis gates. Barrier and
// Measure pass through. The decompositions are standard textbook ones; the
// CCX/CSWAP expansions go through the 6-CX Toffoli network.
func DecomposeGate(g circuit.Gate) ([]circuit.Gate, error) {
	q := g.Qubits
	switch g.Kind {
	case circuit.I:
		return nil, nil
	case circuit.X, circuit.SX, circuit.RZ, circuit.CX, circuit.Measure, circuit.Barrier:
		return []circuit.Gate{g.Clone()}, nil
	case circuit.Z:
		return []circuit.Gate{rz(math.Pi, q[0])}, nil
	case circuit.S:
		return []circuit.Gate{rz(math.Pi/2, q[0])}, nil
	case circuit.Sdg:
		return []circuit.Gate{rz(-math.Pi/2, q[0])}, nil
	case circuit.T:
		return []circuit.Gate{rz(math.Pi/4, q[0])}, nil
	case circuit.Tdg:
		return []circuit.Gate{rz(-math.Pi/4, q[0])}, nil
	case circuit.Y:
		// Y = RZ(π)·X up to global phase (Y = iXZ).
		return []circuit.Gate{rz(math.Pi, q[0]), x(q[0])}, nil
	case circuit.H:
		// H = RZ(π/2)·SX·RZ(π/2) up to global phase.
		return []circuit.Gate{rz(math.Pi/2, q[0]), sx(q[0]), rz(math.Pi/2, q[0])}, nil
	case circuit.RX:
		// RX(θ) = U3(θ, -π/2, π/2).
		return u3Basis(g.Params[0], -math.Pi/2, math.Pi/2, q[0]), nil
	case circuit.RY:
		// RY(θ) = U3(θ, 0, 0).
		return u3Basis(g.Params[0], 0, 0, q[0]), nil
	case circuit.U3:
		return u3Basis(g.Params[0], g.Params[1], g.Params[2], q[0]), nil
	case circuit.CZ:
		// CZ = H_t · CX · H_t.
		var out []circuit.Gate
		h, _ := DecomposeGate(circuit.Gate{Kind: circuit.H, Qubits: []int{q[1]}})
		out = append(out, h...)
		out = append(out, cx(q[0], q[1]))
		out = append(out, h...)
		return out, nil
	case circuit.SWAP:
		return []circuit.Gate{cx(q[0], q[1]), cx(q[1], q[0]), cx(q[0], q[1])}, nil
	case circuit.CCX:
		return decomposeToffoli(q[0], q[1], q[2]), nil
	case circuit.CSWAP:
		// CSWAP(c,a,b) = CX(b,a) · CCX(c,a,b) · CX(b,a).
		var out []circuit.Gate
		out = append(out, cx(q[2], q[1]))
		out = append(out, decomposeToffoli(q[0], q[1], q[2])...)
		out = append(out, cx(q[2], q[1]))
		return out, nil
	default:
		return nil, fmt.Errorf("transpile: cannot decompose %s", g.Kind)
	}
}

// decomposeToffoli is the standard 6-CX, 7-T realization of CCX(c1,c2,t),
// expressed directly in basis gates (T → RZ(π/4), H → RZ·SX·RZ).
func decomposeToffoli(c1, c2, t int) []circuit.Gate {
	hT := func(q int) []circuit.Gate {
		return []circuit.Gate{rz(math.Pi/2, q), sx(q), rz(math.Pi/2, q)}
	}
	tg := func(q int) circuit.Gate { return rz(math.Pi/4, q) }
	tdg := func(q int) circuit.Gate { return rz(-math.Pi/4, q) }
	var out []circuit.Gate
	out = append(out, hT(t)...)
	out = append(out, cx(c2, t), tdg(t), cx(c1, t), tg(t), cx(c2, t), tdg(t), cx(c1, t))
	out = append(out, tg(c2), tg(t))
	out = append(out, hT(t)...)
	out = append(out, cx(c1, c2), tg(c1), tdg(c2), cx(c1, c2))
	return out
}

// Decompose lowers every gate of c into the {RZ, SX, X, CX} basis
// (measurements and barriers preserved).
func Decompose(c *circuit.Circuit) (*circuit.Circuit, error) {
	if err := c.Err(); err != nil {
		return nil, err
	}
	out := circuit.New(c.Name, c.N)
	for _, g := range c.Gates {
		lowered, err := DecomposeGate(g)
		if err != nil {
			return nil, err
		}
		for _, lg := range lowered {
			out.Append(lg)
		}
	}
	return out.Finalize()
}

// IsBasis reports whether the circuit only uses {RZ, SX, X, CX} plus
// measurements and barriers.
func IsBasis(c *circuit.Circuit) bool {
	for _, g := range c.Gates {
		switch g.Kind {
		case circuit.RZ, circuit.SX, circuit.X, circuit.CX, circuit.Measure, circuit.Barrier:
		default:
			return false
		}
	}
	return true
}
