package transpile

import (
	"fmt"
	"math"

	"qbeep/internal/circuit"
	"qbeep/internal/device"
	"qbeep/internal/mathx"
)

// SearchLayout transpiles the circuit under several candidate layouts —
// the greedy placement plus trials random placements — and returns the
// result with the lowest noise exposure, scored by the same quantities
// Eq. 2's λ sums: per-gate calibrated error plus decoherence pressure
// over the scheduled duration. Lowering the transpiled λ helps twice:
// the induction is cleaner, and Q-BEEP's Poisson model gets a tighter
// rate.
//
// The search is deterministic given seed. trials = 0 degrades to plain
// greedy transpilation.
func SearchLayout(c *circuit.Circuit, b *device.Backend, trials int, seed uint64) (*Result, error) {
	if trials < 0 {
		return nil, fmt.Errorf("transpile: negative trials %d", trials)
	}
	best, err := Transpile(c, b, nil)
	if err != nil {
		return nil, err
	}
	bestScore, err := exposure(best, b)
	if err != nil {
		return nil, err
	}
	rng := mathx.NewRNG(seed)
	dec, err := Decompose(c)
	if err != nil {
		return nil, err
	}
	for t := 0; t < trials; t++ {
		layout := randomLayout(dec.N, b.N(), rng)
		res, err := transpileWithLayout(c, b, layout)
		if err != nil {
			// Some random placements can be unroutable on sparse
			// topologies; skip them rather than fail the search.
			continue
		}
		score, err := exposure(res, b)
		if err != nil {
			continue
		}
		if score < bestScore {
			best, bestScore = res, score
		}
	}
	return best, nil
}

// transpileWithLayout is Transpile with an explicit initial layout.
func transpileWithLayout(c *circuit.Circuit, b *device.Backend, layout Layout) (*Result, error) {
	return Transpile(c, b, layout)
}

// randomLayout places n logical qubits on distinct random physical qubits.
func randomLayout(n, nPhys int, rng *mathx.RNG) Layout {
	perm := rng.Perm(nPhys)
	return Layout(perm[:n])
}

// exposure scores a transpiled circuit by its Eq. 2-style noise budget:
// Σ gate errors + Σ_q (1-e^(-t/T1_q)) + (1-e^(-t/T2_q)) over the data
// qubits.
func exposure(res *Result, b *device.Backend) (float64, error) {
	if res == nil || res.Circuit == nil {
		return 0, fmt.Errorf("transpile: nil result")
	}
	var s float64
	for _, g := range res.Circuit.Gates {
		if !g.Kind.IsUnitary() {
			continue
		}
		switch len(g.Qubits) {
		case 1:
			q := g.Qubits[0]
			if q < len(b.Calibration.Gates1Q) {
				s += b.Calibration.Gates1Q[q].Error
			}
		case 2:
			if gc, ok := b.Calibration.Gate2Q(g.Qubits[0], g.Qubits[1]); ok {
				s += gc.Error
			}
		}
	}
	for _, p := range res.Final {
		q := b.Calibration.Qubits[p]
		s += 1 - math.Exp(-res.Time/q.T1)
		s += 1 - math.Exp(-res.Time/q.T2)
	}
	return s, nil
}
