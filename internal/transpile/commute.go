package transpile

import "qbeep/internal/circuit"

// commuteMergeOnce performs one commutation-aware merge pass over basis
// gates:
//
//   - RZ(q) commutes backward through any diagonal gate on q (another RZ
//     merges with it), through the CONTROL of a CX, and through either
//     qubit of a CZ;
//   - X(q) commutes backward through the TARGET of a CX (X_t CX = CX X_t)
//     and cancels against an earlier X on q reached that way.
//
// Gates on disjoint qubits are transparent. Barriers and measurements
// block. Returns the rewritten gates and whether anything changed; run to
// a fixed point interleaved with the adjacent-pair pass (see Optimize).
func commuteMergeOnce(gates []circuit.Gate) ([]circuit.Gate, bool) {
	const dead = circuit.Kind(-1)
	changed := false

	touches := func(g circuit.Gate, q int) bool {
		for _, gq := range g.Qubits {
			if gq == q {
				return true
			}
		}
		return false
	}

	for i := 0; i < len(gates); i++ {
		g := gates[i]
		switch g.Kind {
		case circuit.RZ:
			q := g.Qubits[0]
		scanRZ:
			for j := i - 1; j >= 0; j-- {
				h := gates[j]
				if h.Kind == dead || !touches(h, q) {
					continue
				}
				switch h.Kind {
				case circuit.RZ:
					if h.Qubits[0] == q {
						merged := foldAngle(h.Params[0] + g.Params[0])
						changed = true
						if merged == 0 {
							gates[j].Kind = dead
						} else {
							gates[j].Params[0] = merged
						}
						gates[i].Kind = dead
						break scanRZ
					}
					break scanRZ
				case circuit.CX:
					if h.Qubits[0] == q { // control: diagonal on control commutes
						continue
					}
					break scanRZ
				case circuit.CZ:
					continue // fully diagonal: commutes with RZ on either qubit
				default:
					break scanRZ
				}
			}
		case circuit.X:
			q := g.Qubits[0]
		scanX:
			for j := i - 1; j >= 0; j-- {
				h := gates[j]
				if h.Kind == dead || !touches(h, q) {
					continue
				}
				switch h.Kind {
				case circuit.X:
					if h.Qubits[0] == q {
						gates[j].Kind = dead
						gates[i].Kind = dead
						changed = true
						break scanX
					}
					break scanX
				case circuit.CX:
					if h.Qubits[1] == q { // target: X on target commutes
						continue
					}
					break scanX
				default:
					break scanX
				}
			}
		}
	}
	if !changed {
		return gates, false
	}
	out := gates[:0]
	for _, g := range gates {
		if g.Kind != dead {
			out = append(out, g)
		}
	}
	return out, true
}
