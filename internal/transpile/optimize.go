package transpile

import (
	"context"
	"math"
	"time"

	"qbeep/internal/circuit"
	"qbeep/internal/device"
	"qbeep/internal/obs"
)

// twoPi folds an angle into (-π, π].
func foldAngle(phi float64) float64 {
	phi = math.Mod(phi, 2*math.Pi)
	if phi > math.Pi {
		phi -= 2 * math.Pi
	}
	if phi <= -math.Pi {
		phi += 2 * math.Pi
	}
	return phi
}

// Optimize performs peephole cleanup on a basis circuit:
//
//   - adjacent RZ on the same qubit merge; RZ(0) (mod 2π) drops,
//   - adjacent identical X·X and CX·CX pairs cancel,
//   - the passes repeat until a fixed point.
//
// Gates only commute past each other here when they act on disjoint qubits
// within the scan window, which the pass handles by tracking the last
// pending gate per qubit. This mirrors the transpilation-optimization QEM
// the paper cites (§2.3): fewer gates, lower λ.
func Optimize(c *circuit.Circuit) (*circuit.Circuit, error) {
	if err := c.Err(); err != nil {
		return nil, err
	}
	gates := make([]circuit.Gate, len(c.Gates))
	for i, g := range c.Gates {
		gates[i] = g.Clone()
	}
	for {
		next, changedAdj := optimizeOnce(gates)
		next, changedComm := commuteMergeOnce(next)
		gates = next
		if !changedAdj && !changedComm {
			break
		}
	}
	out := circuit.New(c.Name, c.N)
	for _, g := range gates {
		out.Append(g)
	}
	return out.Finalize()
}

// optimizeOnce runs one linear pass, returning the rewritten gate list and
// whether anything changed.
func optimizeOnce(gates []circuit.Gate) ([]circuit.Gate, bool) {
	out := make([]circuit.Gate, 0, len(gates))
	// lastIdx[q] is the index in out of the most recent gate touching q, or
	// -1. A barrier or measurement resets its qubits.
	lastIdx := map[int]int{}
	changed := false

	touch := func(idx int, qs []int) {
		for _, q := range qs {
			lastIdx[q] = idx
		}
	}
	// drop removes out[i] (replacing with a tombstone compacted later).
	const dead = circuit.Kind(-1)

	for _, g := range gates {
		switch g.Kind {
		case circuit.RZ:
			q := g.Qubits[0]
			if li, ok := lastIdx[q]; ok && li >= 0 && out[li].Kind == circuit.RZ && out[li].Qubits[0] == q {
				merged := foldAngle(out[li].Params[0] + g.Params[0])
				changed = true
				if merged == 0 {
					out[li].Kind = dead
					delete(lastIdx, q)
				} else {
					out[li].Params[0] = merged
				}
				continue
			}
			if foldAngle(g.Params[0]) == 0 {
				changed = true
				continue
			}
			out = append(out, g)
			touch(len(out)-1, g.Qubits)
		case circuit.X:
			q := g.Qubits[0]
			if li, ok := lastIdx[q]; ok && li >= 0 && out[li].Kind == circuit.X && out[li].Qubits[0] == q {
				out[li].Kind = dead
				delete(lastIdx, q)
				changed = true
				continue
			}
			out = append(out, g)
			touch(len(out)-1, g.Qubits)
		case circuit.CX:
			a, b := g.Qubits[0], g.Qubits[1]
			la, okA := lastIdx[a]
			lb, okB := lastIdx[b]
			if okA && okB && la == lb && la >= 0 && out[la].Kind == circuit.CX &&
				out[la].Qubits[0] == a && out[la].Qubits[1] == b {
				out[la].Kind = dead
				delete(lastIdx, a)
				delete(lastIdx, b)
				changed = true
				continue
			}
			out = append(out, g)
			touch(len(out)-1, g.Qubits)
		default:
			out = append(out, g)
			touch(len(out)-1, g.Qubits)
		}
	}
	// Compact tombstones.
	compact := out[:0]
	for _, g := range out {
		if g.Kind != dead {
			compact = append(compact, g)
		}
	}
	return compact, changed
}

// ScheduleTime estimates the end-to-end execution time of a routed basis
// circuit on the backend: gates on disjoint qubits overlap; each qubit's
// timeline advances by the calibrated duration of every gate it
// participates in. The result is Eq. 2's t_circuit.
func ScheduleTime(c *circuit.Circuit, b *device.Backend) (float64, error) {
	if err := c.Err(); err != nil {
		return 0, err
	}
	ready := make([]float64, b.N())
	measureTime := 1e-6 // readout pulse, roughly constant on IBMQ
	if b.Architecture == device.TrappedIon {
		measureTime = 100e-6
	}
	for _, g := range c.Gates {
		var dur float64
		switch {
		case g.Kind == circuit.Barrier:
			var maxT float64
			for _, q := range g.Qubits {
				if ready[q] > maxT {
					maxT = ready[q]
				}
			}
			for _, q := range g.Qubits {
				ready[q] = maxT
			}
			continue
		case g.Kind == circuit.Measure:
			dur = measureTime
		case len(g.Qubits) == 2:
			if gc, ok := b.Calibration.Gate2Q(g.Qubits[0], g.Qubits[1]); ok {
				dur = gc.Duration
			} else {
				// Uncoupled 2q gate (pre-routing estimate): charge the mean.
				dur = meanDur2Q(b)
			}
		default:
			q := g.Qubits[0]
			if q < len(b.Calibration.Gates1Q) {
				dur = b.Calibration.Gates1Q[q].Duration
			}
		}
		var start float64
		for _, q := range g.Qubits {
			if ready[q] > start {
				start = ready[q]
			}
		}
		for _, q := range g.Qubits {
			ready[q] = start + dur
		}
	}
	var total float64
	for _, t := range ready {
		if t > total {
			total = t
		}
	}
	return total, nil
}

func meanDur2Q(b *device.Backend) float64 {
	var s float64
	n := 0
	for _, g := range b.Calibration.Gates2Q {
		s += g.Duration
		n++
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// Result bundles the output of a full transpilation.
type Result struct {
	Circuit     *circuit.Circuit // routed basis circuit on physical qubits
	Initial     Layout           // logical -> physical at circuit start
	Final       Layout           // logical -> physical at circuit end
	Time        float64          // scheduled duration (seconds)
	SwapsAdded  int
	GatesBefore int
	GatesAfter  int
}

// pass runs one transpiler stage under a child span of ctx, so the
// trace forest shows where a slow lowering spent its time.
func pass[T any](ctx context.Context, name string, fn func() (T, error)) (T, error) {
	_, sp := obs.Start(ctx, name)
	defer sp.End()
	return fn()
}

// Transpile lowers, places, routes and optimizes c for backend b. A nil
// layout selects GreedyLayout. Each pass reports its wall time to the
// obs registry (transpile.decompose/layout/route/optimize/schedule) and
// the whole lowering runs under a "transpile" span.
func Transpile(c *circuit.Circuit, b *device.Backend, layout Layout) (*Result, error) {
	return TranspileCtx(context.Background(), c, b, layout)
}

// TranspileCtx is Transpile with trace-context propagation: the
// "transpile" span parents under the span active in ctx, with one child
// span per pass.
func TranspileCtx(ctx context.Context, c *circuit.Circuit, b *device.Backend, layout Layout) (*Result, error) {
	ctx, sp := obs.Start(ctx, "transpile")
	// Ending via defer keeps the span from leaking on the per-pass error
	// returns (qbeep-lint spanend); attributes set below still precede it.
	defer sp.End()
	stopAll := metTranspile.Start()
	t0 := time.Now()
	dec, err := pass(ctx, "transpile.decompose", func() (*circuit.Circuit, error) {
		return Decompose(c)
	})
	if err != nil {
		return nil, err
	}
	metDecompose.ObserveDuration(sincePass(&t0))
	if layout == nil {
		layout, err = pass(ctx, "transpile.layout", func() (Layout, error) {
			return GreedyLayout(dec, b)
		})
		if err != nil {
			return nil, err
		}
	}
	metLayout.ObserveDuration(sincePass(&t0))
	cxBefore := dec.CountKind(circuit.CX)
	routed, final, err := routePass(ctx, dec, b, layout)
	if err != nil {
		return nil, err
	}
	metRoute.ObserveDuration(sincePass(&t0))
	opt, err := pass(ctx, "transpile.optimize", func() (*circuit.Circuit, error) {
		return Optimize(routed)
	})
	if err != nil {
		return nil, err
	}
	metOptimize.ObserveDuration(sincePass(&t0))
	t, err := pass(ctx, "transpile.schedule", func() (float64, error) {
		return ScheduleTime(opt, b)
	})
	if err != nil {
		return nil, err
	}
	metSchedule.ObserveDuration(sincePass(&t0))
	res := &Result{
		Circuit:     opt,
		Initial:     layout,
		Final:       final,
		Time:        t,
		SwapsAdded:  (routed.CountKind(circuit.CX) - cxBefore) / 3,
		GatesBefore: c.GateCount(),
		GatesAfter:  opt.GateCount(),
	}
	stopAll()
	metRuns.Inc()
	metSwaps.Add(int64(res.SwapsAdded))
	sp.SetAttr("circuit", c.Name)
	sp.SetAttr("backend", b.Name)
	sp.SetAttr("swaps", res.SwapsAdded)
	sp.SetAttr("gates_after", res.GatesAfter)
	obs.Logger().Debug("transpiled",
		"circuit", c.Name, "backend", b.Name, "gates_before", res.GatesBefore,
		"gates_after", res.GatesAfter, "swaps", res.SwapsAdded, "schedule_s", t)
	return res, nil
}

// routePass wraps Route in its child span (two results, so the generic
// single-value pass helper doesn't fit).
func routePass(ctx context.Context, c *circuit.Circuit, b *device.Backend, layout Layout) (*circuit.Circuit, Layout, error) {
	_, sp := obs.Start(ctx, "transpile.route")
	defer sp.End()
	return Route(c, b, layout)
}

// sincePass reads the elapsed time since *t0 and resets it, chaining
// per-pass timings off one clock read per boundary.
func sincePass(t0 *time.Time) time.Duration {
	now := time.Now()
	d := now.Sub(*t0)
	*t0 = now
	return d
}

// Pass timers and transpilation counters (see internal/obs).
var (
	metTranspile = obs.Default.Timer("transpile")
	metDecompose = obs.Default.Timer("transpile.decompose")
	metLayout    = obs.Default.Timer("transpile.layout")
	metRoute     = obs.Default.Timer("transpile.route")
	metOptimize  = obs.Default.Timer("transpile.optimize")
	metSchedule  = obs.Default.Timer("transpile.schedule")
	metRuns      = obs.Default.Counter("transpile.runs")
	metSwaps     = obs.Default.Counter("transpile.swaps_inserted")
)

// LogicalDist remaps a physical-register measurement distribution back to
// the logical register using the final layout, so downstream metrics see
// logical bit-strings. Physical qubits outside the layout are traced out.
func LogicalDist(physN int, final Layout, physCounts map[uint64]float64) map[uint64]float64 {
	out := make(map[uint64]float64)
	for pv, c := range physCounts {
		var lv uint64
		for l, p := range final {
			if pv&(1<<uint(p)) != 0 {
				lv |= 1 << uint(l)
			}
		}
		out[lv] += c
	}
	return out
}
