package transpile

import (
	"math"
	"testing"

	"qbeep/internal/bitstring"
	"qbeep/internal/circuit"
	"qbeep/internal/device"
	"qbeep/internal/mathx"
	"qbeep/internal/statevector"
)

// equivalent checks that two circuits implement the same unitary action on
// a set of probe states (computational basis + a superposition probe),
// which catches both permutation and phase errors up to global phase.
func equivalent(t *testing.T, a, b *circuit.Circuit) {
	t.Helper()
	if a.N != b.N {
		t.Fatalf("width mismatch %d vs %d", a.N, b.N)
	}
	// Basis probes.
	for init := 0; init < 1<<uint(a.N); init++ {
		sa, err := statevector.RunFrom(a, bitstring.BitString(init))
		if err != nil {
			t.Fatal(err)
		}
		sb, err := statevector.RunFrom(b, bitstring.BitString(init))
		if err != nil {
			t.Fatal(err)
		}
		f, err := sa.FidelityWith(sb)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(f-1) > 1e-9 {
			t.Fatalf("basis %b: fidelity %v\nA:\n%s\nB:\n%s", init, f, a, b)
		}
	}
	// Superposition probe: H on every qubit first. Distinguishes relative
	// phases that basis probes cannot (e.g. CZ vs identity on basis states
	// with zero control).
	pre := circuit.New("probe", a.N)
	for q := 0; q < a.N; q++ {
		pre.H(q)
		pre.T(q)
	}
	probeA := pre.Clone()
	for _, g := range a.Gates {
		probeA.Append(g)
	}
	probeB := pre.Clone()
	for _, g := range b.Gates {
		probeB.Append(g)
	}
	sa, err := statevector.Run(probeA)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := statevector.Run(probeB)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := sa.FidelityWith(sb)
	if math.Abs(f-1) > 1e-9 {
		t.Fatalf("superposition probe fidelity %v\nA:\n%s\nB:\n%s", f, a, b)
	}
}

func TestDecomposeSingleQubitGates(t *testing.T) {
	kinds := []struct {
		name  string
		build func(c *circuit.Circuit)
	}{
		{"h", func(c *circuit.Circuit) { c.H(0) }},
		{"y", func(c *circuit.Circuit) { c.Y(0) }},
		{"z", func(c *circuit.Circuit) { c.Z(0) }},
		{"s", func(c *circuit.Circuit) { c.S(0) }},
		{"sdg", func(c *circuit.Circuit) { c.Sdg(0) }},
		{"t", func(c *circuit.Circuit) { c.T(0) }},
		{"tdg", func(c *circuit.Circuit) { c.Tdg(0) }},
		{"rx", func(c *circuit.Circuit) { c.RX(0.7, 0) }},
		{"ry", func(c *circuit.Circuit) { c.RY(-1.2, 0) }},
		{"u3", func(c *circuit.Circuit) { c.U3(0.4, 1.1, -0.6, 0) }},
	}
	for _, k := range kinds {
		orig := circuit.New(k.name, 1)
		k.build(orig)
		dec, err := Decompose(orig)
		if err != nil {
			t.Fatalf("%s: %v", k.name, err)
		}
		if !IsBasis(dec) {
			t.Fatalf("%s: not in basis: %s", k.name, dec)
		}
		equivalent(t, orig, dec)
	}
}

func TestDecomposeMultiQubitGates(t *testing.T) {
	builds := []struct {
		name  string
		build func(c *circuit.Circuit)
		n     int
	}{
		{"cz", func(c *circuit.Circuit) { c.CZ(0, 1) }, 2},
		{"swap", func(c *circuit.Circuit) { c.SWAP(0, 1) }, 2},
		{"ccx", func(c *circuit.Circuit) { c.CCX(0, 1, 2) }, 3},
		{"cswap", func(c *circuit.Circuit) { c.CSWAP(0, 1, 2) }, 3},
	}
	for _, k := range builds {
		orig := circuit.New(k.name, k.n)
		k.build(orig)
		dec, err := Decompose(orig)
		if err != nil {
			t.Fatalf("%s: %v", k.name, err)
		}
		if !IsBasis(dec) {
			t.Fatalf("%s: not in basis", k.name)
		}
		equivalent(t, orig, dec)
	}
}

func TestDecomposeDropsIdentity(t *testing.T) {
	dec, err := Decompose(circuit.New("i", 1).I(0))
	if err != nil {
		t.Fatal(err)
	}
	if dec.GateCount() != 0 {
		t.Errorf("identity should vanish, got %d gates", dec.GateCount())
	}
}

func TestDecomposePreservesMeasure(t *testing.T) {
	dec, err := Decompose(circuit.New("m", 2).H(0).MeasureAll())
	if err != nil {
		t.Fatal(err)
	}
	if dec.CountKind(circuit.Measure) != 2 {
		t.Error("measurements lost")
	}
}

func TestFoldAngle(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{3 * math.Pi, math.Pi},
		{2 * math.Pi, 0},
		{math.Pi / 2, math.Pi / 2},
	}
	for _, c := range cases {
		if got := foldAngle(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("foldAngle(%v) = %v want %v", c.in, got, c.want)
		}
	}
}

func TestOptimizeCancelsPairs(t *testing.T) {
	c := circuit.New("cancel", 2).X(0).X(0).CX(0, 1).CX(0, 1).
		RZ(0.5, 1).RZ(-0.5, 1)
	opt, err := Optimize(c)
	if err != nil {
		t.Fatal(err)
	}
	if opt.GateCount() != 0 {
		t.Errorf("expected full cancellation, got %d gates: %s", opt.GateCount(), opt)
	}
}

func TestOptimizeMergesRZ(t *testing.T) {
	c := circuit.New("merge", 1).RZ(0.5, 0).RZ(0.25, 0)
	opt, err := Optimize(c)
	if err != nil {
		t.Fatal(err)
	}
	if opt.GateCount() != 1 || opt.Gates[0].Params[0] != 0.75 {
		t.Errorf("merge failed: %s", opt)
	}
}

func TestOptimizeRespectsInterveningGates(t *testing.T) {
	// An SX between the two X gates must block cancellation.
	c := circuit.New("blocked", 1).X(0).SX(0).X(0)
	opt, err := Optimize(c)
	if err != nil {
		t.Fatal(err)
	}
	if opt.GateCount() != 3 {
		t.Errorf("cancelled across barrier gate: %s", opt)
	}
	// A CX touching the qubit also blocks.
	c = circuit.New("blocked2", 2).X(0).CX(0, 1).X(0)
	opt, _ = Optimize(c)
	if opt.GateCount() != 3 {
		t.Errorf("cancelled across CX: %s", opt)
	}
	// CX pairs with different orientation must not cancel.
	c = circuit.New("orient", 2).CX(0, 1).CX(1, 0)
	opt, _ = Optimize(c)
	if opt.GateCount() != 2 {
		t.Errorf("cancelled misoriented CX pair: %s", opt)
	}
}

func TestOptimizePreservesSemantics(t *testing.T) {
	rng := mathx.NewRNG(31)
	for trial := 0; trial < 10; trial++ {
		c := circuit.New("rand", 3)
		for i := 0; i < 25; i++ {
			switch rng.Intn(4) {
			case 0:
				c.RZ(rng.Uniform(-3, 3), rng.Intn(3))
			case 1:
				c.X(rng.Intn(3))
			case 2:
				c.SX(rng.Intn(3))
			case 3:
				a := rng.Intn(3)
				b := (a + 1 + rng.Intn(2)) % 3
				c.CX(a, b)
			}
		}
		opt, err := Optimize(c)
		if err != nil {
			t.Fatal(err)
		}
		equivalent(t, c, opt)
		if opt.GateCount() > c.GateCount() {
			t.Error("optimize increased gate count")
		}
	}
}

func TestTrivialLayout(t *testing.T) {
	l := TrivialLayout(3)
	for i, p := range l {
		if p != i {
			t.Fatalf("layout %v", l)
		}
	}
	if err := l.validate(3); err != nil {
		t.Fatal(err)
	}
	if err := (Layout{0, 0}).validate(3); err == nil {
		t.Error("duplicate physical should error")
	}
	if err := (Layout{5}).validate(3); err == nil {
		t.Error("out-of-range physical should error")
	}
}

func TestGreedyLayoutValid(t *testing.T) {
	b, err := device.ByName("eldorado") // 3x4 grid
	if err != nil {
		t.Fatal(err)
	}
	c := circuit.New("ghz", 5).H(0).CX(0, 1).CX(1, 2).CX(2, 3).CX(3, 4)
	dec, _ := Decompose(c)
	l, err := GreedyLayout(dec, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.validate(b.N()); err != nil {
		t.Fatal(err)
	}
	if len(l) != 5 {
		t.Fatalf("layout len %d", len(l))
	}
}

func TestGreedyLayoutDeterministic(t *testing.T) {
	b, _ := device.ByName("istanbul")
	c := circuit.New("ghz", 8).H(0)
	for q := 0; q < 7; q++ {
		c.CX(q, q+1)
	}
	dec, _ := Decompose(c)
	a1, err := GreedyLayout(dec, b)
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := GreedyLayout(dec, b)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("layout not deterministic")
		}
	}
}

func TestGreedyLayoutTooWide(t *testing.T) {
	b, _ := device.ByName("auckland") // 5 qubits
	c := circuit.New("wide", 9).H(0)
	if _, err := GreedyLayout(c, b); err == nil {
		t.Error("oversized circuit should error")
	}
}

func TestRouteRequiresBasis(t *testing.T) {
	b, _ := device.ByName("carthage")
	c := circuit.New("h", 2).CCX(0, 1, 1) // also invalid, but basis check first
	c2 := circuit.New("raw", 3).CCX(0, 1, 2)
	if _, _, err := Route(c2, b, TrivialLayout(3)); err == nil {
		t.Error("non-basis circuit should be rejected")
	}
	_ = c
}

func TestRouteInsertsSwaps(t *testing.T) {
	b, _ := device.ByName("carthage") // linear(7)
	// CX between chain ends requires routing.
	c := circuit.New("far", 7).CX(0, 6)
	dec, _ := Decompose(c)
	routed, final, err := Route(dec, b, TrivialLayout(7))
	if err != nil {
		t.Fatal(err)
	}
	if routed.CountKind(circuit.CX) <= 1 {
		t.Errorf("expected swap insertion, CX count %d", routed.CountKind(circuit.CX))
	}
	// All emitted CX must respect the topology.
	for _, g := range routed.Gates {
		if g.Kind == circuit.CX && !b.Topology.Connected(g.Qubits[0], g.Qubits[1]) {
			t.Errorf("unrouted CX %v", g)
		}
	}
	if err := final.validate(b.N()); err != nil {
		t.Fatal(err)
	}
}

func TestRoutePreservesSemanticsOnLine(t *testing.T) {
	// Build GHZ(4) needing routing on a 4-qubit chain with layout reversing
	// qubit order, then verify the measured logical distribution matches.
	topo, _ := device.Linear(4)
	cal := device.GenerateCalibration(topo, device.SuperconductingProfile(), mathx.NewRNG(3))
	b := &device.Backend{Name: "test-line", Architecture: device.Superconducting,
		Topology: topo, Calibration: cal}
	c := circuit.New("ghz", 4).H(0).CX(0, 1).CX(0, 2).CX(0, 3)
	dec, _ := Decompose(c)
	layout := Layout{3, 2, 1, 0}
	routed, final, err := Route(dec, b, layout)
	if err != nil {
		t.Fatal(err)
	}
	s, err := statevector.Run(routed)
	if err != nil {
		t.Fatal(err)
	}
	// Remap physical probabilities to logical.
	phys := map[uint64]float64{}
	for v, p := range probMap(s) {
		phys[v] = p
	}
	logical := LogicalDist(4, final, phys)
	if math.Abs(logical[0]-0.5) > 1e-9 || math.Abs(logical[15]-0.5) > 1e-9 {
		t.Errorf("GHZ through routing: %v", logical)
	}
}

func probMap(s *statevector.State) map[uint64]float64 {
	m := map[uint64]float64{}
	for i, p := range s.Probabilities() {
		if p > 1e-12 {
			m[uint64(i)] = p
		}
	}
	return m
}

func TestTranspileEndToEnd(t *testing.T) {
	b, _ := device.ByName("eldorado")
	c := circuit.New("adder-ish", 4).H(0).CCX(0, 1, 2).CX(1, 3).T(2).MeasureAll()
	res, err := Transpile(c, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !IsBasis(res.Circuit) {
		t.Error("transpiled circuit not in basis")
	}
	if res.Time <= 0 {
		t.Errorf("schedule time %v", res.Time)
	}
	if res.Circuit.N != b.N() {
		t.Errorf("output register %d want %d", res.Circuit.N, b.N())
	}
	for _, g := range res.Circuit.Gates {
		if g.Kind == circuit.CX && !b.Topology.Connected(g.Qubits[0], g.Qubits[1]) {
			t.Errorf("topology violation: %v", g)
		}
	}
	if res.GatesBefore <= 0 || res.GatesAfter <= 0 {
		t.Error("gate accounting missing")
	}
}

func TestScheduleTimeParallelGatesOverlap(t *testing.T) {
	b, _ := device.ByName("carthage")
	seq := circuit.New("seq", 7).X(0).X(0).X(0)
	par := circuit.New("par", 7).X(0).X(1).X(2)
	ts, err := ScheduleTime(seq, b)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := ScheduleTime(par, b)
	if err != nil {
		t.Fatal(err)
	}
	if tp >= ts {
		t.Errorf("parallel %v should beat sequential %v", tp, ts)
	}
}

func TestScheduleTimeMeasurement(t *testing.T) {
	b, _ := device.ByName("carthage")
	bare := circuit.New("bare", 7).X(0)
	meas := circuit.New("meas", 7).X(0).Measure(0)
	t1, _ := ScheduleTime(bare, b)
	t2, _ := ScheduleTime(meas, b)
	if t2 <= t1 {
		t.Error("measurement should add time")
	}
}

func TestLogicalDistTracesOutAncilla(t *testing.T) {
	// Physical register of 3, logical of 2 mapped to phys {2, 0}.
	phys := map[uint64]float64{
		0b101: 4, // phys2=1(log0=1), phys0=1(log1=1)
		0b001: 6, // phys0=1 -> log1=1
	}
	logical := LogicalDist(3, Layout{2, 0}, phys)
	if logical[0b11] != 4 || logical[0b10] != 6 {
		t.Errorf("logical = %v", logical)
	}
}
