package mathx

import (
	"fmt"
	"math"
	"sort"
)

// WeightedMeanVar returns the weighted mean and (population) variance of
// integer-valued samples. It is the workhorse behind the Index of Dispersion.
func WeightedMeanVar(values []int, weights []float64) (mean, variance float64, err error) {
	if len(values) != len(weights) {
		return 0, 0, fmt.Errorf("mathx: %d values vs %d weights", len(values), len(weights))
	}
	var wsum float64
	for i, w := range weights {
		if w < 0 {
			return 0, 0, fmt.Errorf("mathx: negative weight %v", w)
		}
		wsum += w
		mean += float64(values[i]) * w
	}
	if wsum == 0 {
		return 0, 0, fmt.Errorf("mathx: zero total weight")
	}
	mean /= wsum
	for i, w := range weights {
		d := float64(values[i]) - mean
		variance += d * d * w
	}
	variance /= wsum
	return mean, variance, nil
}

// IndexOfDispersion computes σ²/μ for a weighted integer sample (paper
// Eq. 1). An IoD of 1 is the Poisson signature; < 1 indicates
// under-dispersion (tighter clustering), > 1 over-dispersion.
func IndexOfDispersion(values []int, weights []float64) (float64, error) {
	mean, variance, err := WeightedMeanVar(values, weights)
	if err != nil {
		return 0, err
	}
	if mean == 0 {
		return 0, fmt.Errorf("mathx: index of dispersion undefined for zero mean")
	}
	return variance / mean, nil
}

// SpectrumIoD computes the Index of Dispersion of a Hamming spectrum
// (index = distance, value = mass).
func SpectrumIoD(spectrum []float64) (float64, error) {
	values := make([]int, len(spectrum))
	for i := range values {
		values[i] = i
	}
	return IndexOfDispersion(values, spectrum)
}

// LinearFit is an ordinary least-squares line y = Slope·x + Intercept with
// its coefficient of determination R2 and Pearson correlation R.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
	R         float64
}

// FitLine fits a least-squares line to (x, y) pairs. At least two distinct
// x values are required.
func FitLine(x, y []float64) (LinearFit, error) {
	if len(x) != len(y) {
		return LinearFit{}, fmt.Errorf("mathx: %d xs vs %d ys", len(x), len(y))
	}
	n := float64(len(x))
	if len(x) < 2 {
		return LinearFit{}, fmt.Errorf("mathx: need at least 2 points, got %d", len(x))
	}
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, fmt.Errorf("mathx: degenerate x (all equal)")
	}
	slope := sxy / sxx
	fit := LinearFit{Slope: slope, Intercept: my - slope*mx}
	if syy > 0 {
		fit.R = sxy / math.Sqrt(sxx*syy)
		fit.R2 = fit.R * fit.R
	}
	return fit, nil
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the median of xs (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	m := len(c) / 2
	if len(c)%2 == 1 {
		return c[m]
	}
	return (c[m-1] + c[m]) / 2
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs by linear
// interpolation (0 for empty input).
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	if q <= 0 {
		return c[0]
	}
	if q >= 1 {
		return c[len(c)-1]
	}
	pos := q * float64(len(c)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(c) {
		return c[len(c)-1]
	}
	return c[lo]*(1-frac) + c[lo+1]*frac
}

// Max returns the maximum of xs (negative infinity for empty input).
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs (positive infinity for empty input).
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// CDFSeries returns the empirical CDF of xs as sorted (value, cumulative
// probability) pairs — the series plotted in Figs. 6 and 10(b).
func CDFSeries(xs []float64) (values, cum []float64) {
	values = append([]float64(nil), xs...)
	sort.Float64s(values)
	cum = make([]float64, len(values))
	n := float64(len(values))
	for i := range values {
		cum[i] = float64(i+1) / n
	}
	return values, cum
}

// FractionBelow returns the fraction of xs strictly below threshold.
func FractionBelow(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := 0
	for _, x := range xs {
		if x < threshold {
			c++
		}
	}
	return float64(c) / float64(len(xs))
}
