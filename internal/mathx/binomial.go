package mathx

import (
	"fmt"
	"math"
)

// Binomial is a Binomial(N, P) distribution. Fig. 6 of the paper compares
// the Poisson Hamming-spectrum model against a binomial fit, which is the
// natural alternative: independent per-qubit flips with probability P.
type Binomial struct {
	N int
	P float64
}

// PMF returns P(X = k) = C(N,k) P^k (1-P)^(N-k).
func (b Binomial) PMF(k int) float64 {
	if k < 0 || k > b.N {
		return 0
	}
	if b.P <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if b.P >= 1 {
		if k == b.N {
			return 1
		}
		return 0
	}
	logC := LogFactorial(b.N) - LogFactorial(k) - LogFactorial(b.N-k)
	return math.Exp(logC + float64(k)*math.Log(b.P) + float64(b.N-k)*math.Log(1-b.P))
}

// CDF returns P(X <= k).
func (b Binomial) CDF(k int) float64 {
	if k < 0 {
		return 0
	}
	if k >= b.N {
		return 1
	}
	var s float64
	for i := 0; i <= k; i++ {
		s += b.PMF(i)
	}
	if s > 1 {
		s = 1
	}
	return s
}

// Mean returns N·P.
func (b Binomial) Mean() float64 { return float64(b.N) * b.P }

// Variance returns N·P·(1-P).
func (b Binomial) Variance() float64 { return float64(b.N) * b.P * (1 - b.P) }

// Spectrum returns the pmf at 0..n. For n >= N the upper entries are zero.
func (b Binomial) Spectrum(n int) []float64 {
	s := make([]float64, n+1)
	for k := 0; k <= n; k++ {
		s[k] = b.PMF(k)
	}
	return s
}

// FitBinomialMLE fits Binomial(n, p̂) to weighted distance samples with the
// register width n fixed: p̂ = mean/n.
func FitBinomialMLE(n int, values []int, weights []float64) (Binomial, error) {
	if n <= 0 {
		return Binomial{}, fmt.Errorf("mathx: binomial width %d", n)
	}
	pois, err := FitPoissonMLE(values, weights)
	if err != nil {
		return Binomial{}, err
	}
	p := pois.Lambda / float64(n)
	if p > 1 {
		p = 1
	}
	return Binomial{N: n, P: p}, nil
}

// UniformSpectrum returns the Hamming spectrum of the uniform distribution
// over all 2^n bit-strings relative to any fixed center: mass C(n,k)/2^n at
// distance k. This is Fig. 6's "Uniform" comparator and also the spectrum of
// a maximally-noisy register.
func UniformSpectrum(n int) []float64 {
	s := make([]float64, n+1)
	logTotal := float64(n) * math.Ln2
	for k := 0; k <= n; k++ {
		logC := LogFactorial(n) - LogFactorial(k) - LogFactorial(n-k)
		s[k] = math.Exp(logC - logTotal)
	}
	return s
}
