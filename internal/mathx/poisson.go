// Package mathx provides the probability distributions and statistics Q-BEEP
// relies on: Poisson/Binomial/Uniform models over the Hamming spectrum,
// maximum-likelihood fits, the Index of Dispersion, and simple regression.
package mathx

import (
	"fmt"
	"math"
)

// logFactorialTable caches ln(k!) for small k; larger arguments use the
// Stirling series via math.Lgamma.
var logFactorialTable = func() [128]float64 {
	var t [128]float64
	for k := 2; k < len(t); k++ {
		t[k] = t[k-1] + math.Log(float64(k))
	}
	return t
}()

// LogFactorial returns ln(k!). It panics on negative k, which is always a
// programmer error.
func LogFactorial(k int) float64 {
	if k < 0 {
		panic(fmt.Sprintf("mathx: LogFactorial(%d)", k))
	}
	if k < len(logFactorialTable) {
		return logFactorialTable[k]
	}
	v, _ := math.Lgamma(float64(k) + 1)
	return v
}

// Poisson is a Poisson distribution with rate Lambda. The zero value
// (λ = 0) is a point mass at 0, which is the correct limit for a perfectly
// clean circuit: every shot lands at Hamming distance zero.
type Poisson struct {
	Lambda float64
}

// PMF returns P(X = k).
func (p Poisson) PMF(k int) float64 {
	if k < 0 {
		return 0
	}
	if p.Lambda <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	return math.Exp(float64(k)*math.Log(p.Lambda) - p.Lambda - LogFactorial(k))
}

// CDF returns P(X <= k).
func (p Poisson) CDF(k int) float64 {
	if k < 0 {
		return 0
	}
	var s float64
	for i := 0; i <= k; i++ {
		s += p.PMF(i)
	}
	if s > 1 {
		s = 1
	}
	return s
}

// Mean returns λ.
func (p Poisson) Mean() float64 { return p.Lambda }

// Variance returns λ.
func (p Poisson) Variance() float64 { return p.Lambda }

// Quantile returns the smallest k with CDF(k) >= q for q in (0,1).
func (p Poisson) Quantile(q float64) int {
	if q <= 0 {
		return 0
	}
	var cum float64
	for k := 0; ; k++ {
		cum += p.PMF(k)
		if cum >= q || k > 10_000 {
			return k
		}
	}
}

// TailCutoff returns the smallest distance r such that PMF(k) < eps for all
// k >= r beyond the mode. Q-BEEP uses this to bound the state-graph edge
// radius: edges are only created while the Poisson weight stays above the
// threshold ε (paper §3.4).
func (p Poisson) TailCutoff(eps float64) int {
	if eps <= 0 {
		return math.MaxInt32
	}
	mode := int(math.Floor(p.Lambda))
	for k := mode; ; k++ {
		if p.PMF(k) < eps {
			return k
		}
		if k > 10_000 {
			return k
		}
	}
}

// Spectrum returns the pmf evaluated at 0..n, i.e. the model's predicted
// Hamming spectrum truncated to an n-qubit register (not renormalized;
// truncated mass is reported by the model as "beyond register width").
func (p Poisson) Spectrum(n int) []float64 {
	s := make([]float64, n+1)
	for k := 0; k <= n; k++ {
		s[k] = p.PMF(k)
	}
	return s
}

// Sample draws one Poisson variate using inversion for small λ and the
// normal approximation with continuity correction for large λ. src must
// return uniform floats in [0, 1).
func (p Poisson) Sample(uniform func() float64) int {
	if p.Lambda <= 0 {
		return 0
	}
	if p.Lambda < 30 {
		// Knuth inversion in log space to avoid underflow.
		l := math.Exp(-p.Lambda)
		k := 0
		prod := uniform()
		for prod > l {
			k++
			prod *= uniform()
			if k > 10_000 {
				break
			}
		}
		return k
	}
	// Normal approximation: X ~ N(λ, λ).
	u1, u2 := uniform(), uniform()
	for u1 == 0 {
		u1 = uniform()
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	k := int(math.Round(p.Lambda + z*math.Sqrt(p.Lambda)))
	if k < 0 {
		k = 0
	}
	return k
}

// FitPoissonMLE returns the maximum-likelihood Poisson for weighted samples:
// λ̂ is the weighted mean. It is used for the paper's "MLE Poisson" Fig. 6
// comparator, which fits the observed Hamming spectrum directly.
func FitPoissonMLE(values []int, weights []float64) (Poisson, error) {
	if len(values) != len(weights) {
		return Poisson{}, fmt.Errorf("mathx: %d values vs %d weights", len(values), len(weights))
	}
	var sum, wsum float64
	for i, v := range values {
		if weights[i] < 0 {
			return Poisson{}, fmt.Errorf("mathx: negative weight %v", weights[i])
		}
		sum += float64(v) * weights[i]
		wsum += weights[i]
	}
	if wsum == 0 {
		return Poisson{}, fmt.Errorf("mathx: zero total weight")
	}
	return Poisson{Lambda: sum / wsum}, nil
}

// FitPoissonSpectrum fits a Poisson by MLE to a Hamming spectrum given as
// mass per distance (index = distance).
func FitPoissonSpectrum(spectrum []float64) (Poisson, error) {
	values := make([]int, len(spectrum))
	for i := range values {
		values[i] = i
	}
	return FitPoissonMLE(values, spectrum)
}
