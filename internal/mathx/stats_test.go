package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBinomialPMFKnown(t *testing.T) {
	b := Binomial{N: 4, P: 0.5}
	want := []float64{1.0 / 16, 4.0 / 16, 6.0 / 16, 4.0 / 16, 1.0 / 16}
	for k, w := range want {
		if got := b.PMF(k); !approx(got, w, 1e-12) {
			t.Errorf("PMF(%d) = %v want %v", k, got, w)
		}
	}
	if b.PMF(-1) != 0 || b.PMF(5) != 0 {
		t.Error("out-of-range PMF should be 0")
	}
}

func TestBinomialEdgeP(t *testing.T) {
	b0 := Binomial{N: 3, P: 0}
	if b0.PMF(0) != 1 || b0.PMF(1) != 0 {
		t.Error("P=0 should be a point mass at 0")
	}
	b1 := Binomial{N: 3, P: 1}
	if b1.PMF(3) != 1 || b1.PMF(2) != 0 {
		t.Error("P=1 should be a point mass at N")
	}
}

func TestBinomialMoments(t *testing.T) {
	b := Binomial{N: 12, P: 0.3}
	if !approx(b.Mean(), 3.6, 1e-12) || !approx(b.Variance(), 2.52, 1e-12) {
		t.Errorf("mean=%v var=%v", b.Mean(), b.Variance())
	}
	var s float64
	for k := 0; k <= b.N; k++ {
		s += b.PMF(k)
	}
	if !approx(s, 1, 1e-9) {
		t.Errorf("pmf sums to %v", s)
	}
	if b.CDF(b.N) != 1 || b.CDF(-1) != 0 {
		t.Error("CDF boundaries wrong")
	}
}

func TestFitBinomialMLE(t *testing.T) {
	b, err := FitBinomialMLE(10, []int{2, 4}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(b.P, 0.3, 1e-12) {
		t.Errorf("p̂ = %v want 0.3", b.P)
	}
	if _, err := FitBinomialMLE(0, []int{1}, []float64{1}); err == nil {
		t.Error("zero width should error")
	}
	// Mean beyond N clamps p at 1.
	b, err = FitBinomialMLE(2, []int{5}, []float64{1})
	if err != nil || b.P != 1 {
		t.Errorf("clamp failed: %v %v", b, err)
	}
}

func TestUniformSpectrum(t *testing.T) {
	s := UniformSpectrum(4)
	want := []float64{1.0 / 16, 4.0 / 16, 6.0 / 16, 4.0 / 16, 1.0 / 16}
	for k, w := range want {
		if !approx(s[k], w, 1e-12) {
			t.Errorf("uniform[%d] = %v want %v", k, s[k], w)
		}
	}
}

func TestUniformSpectrumSumsToOne(t *testing.T) {
	for n := 1; n <= 20; n++ {
		var sum float64
		for _, p := range UniformSpectrum(n) {
			sum += p
		}
		if !approx(sum, 1, 1e-9) {
			t.Errorf("n=%d: sums to %v", n, sum)
		}
	}
}

func TestWeightedMeanVar(t *testing.T) {
	mean, variance, err := WeightedMeanVar([]int{1, 3}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(mean, 2, 1e-12) || !approx(variance, 1, 1e-12) {
		t.Errorf("mean=%v var=%v", mean, variance)
	}
	if _, _, err := WeightedMeanVar([]int{1}, []float64{}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, _, err := WeightedMeanVar([]int{1}, []float64{-2}); err == nil {
		t.Error("negative weight should error")
	}
}

func TestIndexOfDispersionPoissonIsOne(t *testing.T) {
	// The IoD of an exact Poisson pmf is 1 — the paper's diagnostic.
	for _, lambda := range []float64{0.5, 1, 3, 7} {
		p := Poisson{Lambda: lambda}
		spec := p.Spectrum(80)
		iod, err := SpectrumIoD(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !approx(iod, 1, 1e-4) {
			t.Errorf("λ=%v: IoD = %v want 1", lambda, iod)
		}
	}
}

func TestIndexOfDispersionBinomialBelowOne(t *testing.T) {
	// Binomial IoD = 1-p < 1: under-dispersed.
	b := Binomial{N: 10, P: 0.4}
	iod, err := SpectrumIoD(b.Spectrum(10))
	if err != nil {
		t.Fatal(err)
	}
	if !approx(iod, 0.6, 1e-6) {
		t.Errorf("binomial IoD = %v want 0.6", iod)
	}
}

func TestIoDZeroMean(t *testing.T) {
	if _, err := IndexOfDispersion([]int{0, 0}, []float64{1, 1}); err == nil {
		t.Error("zero mean should error")
	}
}

func TestFitLineExact(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 2x + 1
	fit, err := FitLine(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(fit.Slope, 2, 1e-12) || !approx(fit.Intercept, 1, 1e-12) || !approx(fit.R2, 1, 1e-12) {
		t.Errorf("fit = %+v", fit)
	}
	if fit.R < 0 {
		t.Error("positive slope should give positive R")
	}
}

func TestFitLineNegativeCorrelation(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := []float64{10, 8.1, 5.9, 4.2, 1.8}
	fit, err := FitLine(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if fit.R >= 0 || fit.Slope >= 0 {
		t.Errorf("expected negative correlation, fit=%+v", fit)
	}
	if fit.R2 < 0.98 {
		t.Errorf("near-linear data should have high R², got %v", fit.R2)
	}
}

func TestFitLineErrors(t *testing.T) {
	if _, err := FitLine([]float64{1}, []float64{1}); err == nil {
		t.Error("single point should error")
	}
	if _, err := FitLine([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("degenerate x should error")
	}
	if _, err := FitLine([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestSummaryStats(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if !approx(Mean(xs), 2.5, 1e-12) {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if !approx(Median(xs), 2.5, 1e-12) {
		t.Errorf("Median = %v", Median(xs))
	}
	if !approx(Median([]float64{5, 1, 3}), 3, 1e-12) {
		t.Error("odd median wrong")
	}
	if Max(xs) != 4 || Min(xs) != 1 {
		t.Error("Max/Min wrong")
	}
	if Mean(nil) != 0 || Median(nil) != 0 {
		t.Error("empty summaries should be 0")
	}
	if !math.IsInf(Max(nil), -1) || !math.IsInf(Min(nil), 1) {
		t.Error("empty Max/Min should be infinities")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 {
		t.Error("extreme quantiles wrong")
	}
	if !approx(Quantile(xs, 0.5), 3, 1e-12) {
		t.Errorf("median quantile = %v", Quantile(xs, 0.5))
	}
	if !approx(Quantile(xs, 0.25), 2, 1e-12) {
		t.Errorf("q25 = %v", Quantile(xs, 0.25))
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
}

func TestCDFSeries(t *testing.T) {
	v, c := CDFSeries([]float64{3, 1, 2})
	if v[0] != 1 || v[2] != 3 {
		t.Error("values not sorted")
	}
	if !approx(c[2], 1, 1e-12) || !approx(c[0], 1.0/3, 1e-12) {
		t.Errorf("cum = %v", c)
	}
}

func TestFractionBelow(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := FractionBelow(xs, 2.5); !approx(got, 0.5, 1e-12) {
		t.Errorf("FractionBelow = %v", got)
	}
	if FractionBelow(nil, 1) != 0 {
		t.Error("empty FractionBelow should be 0")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(123), NewRNG(123)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(124)
	same := true
	a = NewRNG(123)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGIntnUniform(t *testing.T) {
	r := NewRNG(9)
	counts := make([]int, 8)
	const n = 80000
	for i := 0; i < n; i++ {
		counts[r.Intn(8)]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-n/8) > 500 {
			t.Errorf("bucket %d count %d far from %d", i, c, n/8)
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(11)
	const n = 50000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.02 || math.Abs(variance-1) > 0.05 {
		t.Errorf("normal moments: mean=%v var=%v", mean, variance)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	f := func(seed uint32, nRaw uint8) bool {
		n := int(nRaw%20) + 1
		p := NewRNG(uint64(seed)).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGLogUniform(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		v := r.LogUniform(1e-4, 1e-2)
		if v < 1e-4 || v >= 1e-2 {
			t.Fatalf("LogUniform out of range: %v", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("LogUniform with bad bounds should panic")
		}
	}()
	r.LogUniform(0, 1)
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(42)
	a := r.Split(1)
	b := r.Split(2)
	same := 0
	for i := 0; i < 20; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split streams look correlated: %d collisions", same)
	}
}

func TestRNGUniformRange(t *testing.T) {
	r := NewRNG(8)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(-2, 3)
		if v < -2 || v >= 3 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}
