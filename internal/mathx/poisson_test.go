package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLogFactorial(t *testing.T) {
	cases := []struct {
		k    int
		want float64
	}{
		{0, 0}, {1, 0}, {2, math.Log(2)}, {5, math.Log(120)}, {10, math.Log(3628800)},
	}
	for _, c := range cases {
		if got := LogFactorial(c.k); !approx(got, c.want, 1e-9) {
			t.Errorf("LogFactorial(%d) = %v want %v", c.k, got, c.want)
		}
	}
	// Table/Lgamma boundary consistency.
	if !approx(LogFactorial(127)+math.Log(128), LogFactorial(128), 1e-6) {
		t.Error("LogFactorial discontinuous at table boundary")
	}
}

func TestLogFactorialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for negative k")
		}
	}()
	LogFactorial(-1)
}

func TestPoissonPMFKnown(t *testing.T) {
	p := Poisson{Lambda: 2}
	// P(0) = e^-2, P(1) = 2e^-2, P(2) = 2e^-2, P(3) = 4/3 e^-2.
	e2 := math.Exp(-2)
	cases := []struct {
		k    int
		want float64
	}{
		{0, e2}, {1, 2 * e2}, {2, 2 * e2}, {3, 4.0 / 3 * e2}, {-1, 0},
	}
	for _, c := range cases {
		if got := p.PMF(c.k); !approx(got, c.want, 1e-12) {
			t.Errorf("PMF(%d) = %v want %v", c.k, got, c.want)
		}
	}
}

func TestPoissonZeroLambda(t *testing.T) {
	p := Poisson{}
	if p.PMF(0) != 1 || p.PMF(1) != 0 {
		t.Error("λ=0 should be a point mass at 0")
	}
	if p.CDF(5) != 1 {
		t.Error("λ=0 CDF should be 1")
	}
}

func TestPoissonPMFSumsToOne(t *testing.T) {
	for _, lambda := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		p := Poisson{Lambda: lambda}
		var s float64
		for k := 0; k < 200; k++ {
			s += p.PMF(k)
		}
		if !approx(s, 1, 1e-9) {
			t.Errorf("λ=%v: pmf sums to %v", lambda, s)
		}
	}
}

func TestPoissonCDFMonotone(t *testing.T) {
	f := func(lRaw uint8, kRaw uint8) bool {
		p := Poisson{Lambda: float64(lRaw%50) / 5}
		k := int(kRaw % 40)
		return p.CDF(k) <= p.CDF(k+1)+1e-12 && p.CDF(-1) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPoissonQuantile(t *testing.T) {
	p := Poisson{Lambda: 3}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		k := p.Quantile(q)
		if p.CDF(k) < q {
			t.Errorf("Quantile(%v)=%d but CDF=%v", q, k, p.CDF(k))
		}
		if k > 0 && p.CDF(k-1) >= q {
			t.Errorf("Quantile(%v)=%d not minimal", q, k)
		}
	}
	if p.Quantile(0) != 0 {
		t.Error("Quantile(0) should be 0")
	}
}

func TestPoissonTailCutoff(t *testing.T) {
	p := Poisson{Lambda: 1.5}
	r := p.TailCutoff(0.05)
	if p.PMF(r) >= 0.05 {
		t.Errorf("PMF(%d) = %v >= eps", r, p.PMF(r))
	}
	for k := r; k < r+20; k++ {
		if p.PMF(k) >= 0.05 {
			t.Errorf("tail not below eps at k=%d", k)
		}
	}
	// eps<=0 means unbounded radius.
	if p.TailCutoff(0) != math.MaxInt32 {
		t.Error("TailCutoff(0) should be unbounded")
	}
}

func TestPoissonMeanVariance(t *testing.T) {
	p := Poisson{Lambda: 4.2}
	if p.Mean() != 4.2 || p.Variance() != 4.2 {
		t.Error("Poisson mean/variance should equal λ")
	}
	// Empirical check via the pmf.
	var mean, varSum float64
	for k := 0; k < 100; k++ {
		mean += float64(k) * p.PMF(k)
	}
	for k := 0; k < 100; k++ {
		d := float64(k) - mean
		varSum += d * d * p.PMF(k)
	}
	if !approx(mean, 4.2, 1e-6) || !approx(varSum, 4.2, 1e-4) {
		t.Errorf("empirical mean=%v var=%v", mean, varSum)
	}
}

func TestPoissonSampleMoments(t *testing.T) {
	rng := NewRNG(7)
	for _, lambda := range []float64{0.5, 3, 50} {
		p := Poisson{Lambda: lambda}
		const n = 20000
		var sum, sq float64
		for i := 0; i < n; i++ {
			v := float64(p.Sample(rng.Float64))
			sum += v
			sq += v * v
		}
		mean := sum / n
		variance := sq/n - mean*mean
		if !approx(mean, lambda, 0.1*lambda+0.05) {
			t.Errorf("λ=%v: sample mean %v", lambda, mean)
		}
		if !approx(variance, lambda, 0.2*lambda+0.1) {
			t.Errorf("λ=%v: sample variance %v", lambda, variance)
		}
	}
	if (Poisson{}).Sample(rng.Float64) != 0 {
		t.Error("λ=0 sample should be 0")
	}
}

func TestFitPoissonMLE(t *testing.T) {
	// Weighted mean of {0:1, 1:2, 2:1} is 1.
	p, err := FitPoissonMLE([]int{0, 1, 2}, []float64{1, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(p.Lambda, 1, 1e-12) {
		t.Errorf("λ̂ = %v want 1", p.Lambda)
	}
	if _, err := FitPoissonMLE([]int{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := FitPoissonMLE([]int{1}, []float64{0}); err == nil {
		t.Error("zero weight should error")
	}
	if _, err := FitPoissonMLE([]int{1}, []float64{-1}); err == nil {
		t.Error("negative weight should error")
	}
}

func TestFitPoissonRecoversLambda(t *testing.T) {
	// MLE on the exact pmf recovers λ (up to truncation).
	for _, lambda := range []float64{0.3, 1.7, 4} {
		p := Poisson{Lambda: lambda}
		spec := p.Spectrum(60)
		fit, err := FitPoissonSpectrum(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !approx(fit.Lambda, lambda, 1e-6) {
			t.Errorf("λ=%v: recovered %v", lambda, fit.Lambda)
		}
	}
}

func TestPoissonSpectrum(t *testing.T) {
	p := Poisson{Lambda: 1}
	s := p.Spectrum(5)
	if len(s) != 6 {
		t.Fatalf("spectrum length %d", len(s))
	}
	for k := range s {
		if !approx(s[k], p.PMF(k), 1e-15) {
			t.Errorf("spectrum[%d] mismatch", k)
		}
	}
}
