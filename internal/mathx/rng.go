package mathx

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256** seeded via splitmix64). Every stochastic component in the
// repository takes an explicit *RNG so experiments are reproducible
// bit-for-bit; math/rand is avoided so results cannot drift across Go
// releases.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

// Reseed re-initializes the generator in place to the exact state NewRNG
// would produce for seed. Hot loops that burn one stream per iteration
// (the trajectory sampler's per-shot streams) reseed a long-lived
// generator instead of allocating a fresh one.
func (r *RNG) Reseed(seed uint64) {
	// splitmix64 expansion of the seed into the xoshiro state.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
}

//qbeep:mustinline
//qbeep:allocfree
func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
//
//qbeep:allocfree
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform float in [0, 1).
//
//qbeep:mustinline
//qbeep:allocfree
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics for n <= 0.
//
//qbeep:mustinline
//qbeep:allocfree
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("mathx: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal variate (Box–Muller).
func (r *RNG) NormFloat64() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Uniform returns a uniform float in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// LogUniform returns a variate uniform in log space over [lo, hi); both
// bounds must be positive. Calibration parameters (error rates, T1/T2)
// spread over orders of magnitude, so log-uniform sampling matches how real
// device parameters scatter.
func (r *RNG) LogUniform(lo, hi float64) float64 {
	if lo <= 0 || hi <= lo {
		panic("mathx: LogUniform requires 0 < lo < hi")
	}
	return math.Exp(r.Uniform(math.Log(lo), math.Log(hi)))
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Split returns a new generator whose stream is independent of r's
// continuation, keyed by label. Use it to give sub-experiments their own
// deterministic streams.
func (r *RNG) Split(label uint64) *RNG {
	return NewRNG(r.Uint64() ^ (label * 0x9e3779b97f4a7c15))
}

// NewStream returns the index-th generator of a family keyed by base: a
// deterministic function of (base, index) only, so callers can hand out
// per-task streams in any order (or from any worker) and still reproduce
// the exact same sequences for a fixed base. Unlike Split, it does not
// advance any parent generator.
func NewStream(base, index uint64) *RNG {
	return NewRNG(base ^ (index+1)*0x9e3779b97f4a7c15)
}

// ReseedStream re-initializes r in place to the state NewStream(base,
// index) would return — the allocation-free form for per-shot streams.
//
//qbeep:mustinline
//qbeep:allocfree
func (r *RNG) ReseedStream(base, index uint64) {
	r.Reseed(base ^ (index+1)*0x9e3779b97f4a7c15)
}
