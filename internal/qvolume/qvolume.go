// Package qvolume implements the Quantum Volume protocol (Cross et al.,
// "Validating quantum computers using randomized model circuits"): square
// random model circuits, heavy-output probability (HOP) scoring, and the
// pass rule HOP > 2/3 at two-sigma confidence. It rounds out the device
// benchmarking substrate — and, paired with Q-BEEP, quantifies how much
// post-processing mitigation raises a machine's effective volume.
package qvolume

import (
	"fmt"
	"math"
	"sort"

	"qbeep/internal/bitstring"
	"qbeep/internal/circuit"
	"qbeep/internal/mathx"
	"qbeep/internal/statevector"
)

// ModelCircuit builds one width-n, depth-n QV model circuit: each layer
// applies a random qubit permutation then a random two-qubit block on
// each adjacent pair. Blocks are built from the universal 3-CX sandwich
// with Haar-ish random U3 rotations — not exactly Haar on SU(4), but
// scrambling enough for heavy-output statistics.
func ModelCircuit(n int, rng *mathx.RNG) (*circuit.Circuit, error) {
	if n < 2 || n > 12 {
		return nil, fmt.Errorf("qvolume: width %d outside [2,12]", n)
	}
	c := circuit.New(fmt.Sprintf("qv-%d", n), n)
	randU3 := func(q int) {
		c.U3(rng.Uniform(0, math.Pi), rng.Uniform(0, 2*math.Pi), rng.Uniform(0, 2*math.Pi), q)
	}
	block := func(a, b int) {
		randU3(a)
		randU3(b)
		c.CX(a, b)
		randU3(a)
		randU3(b)
		c.CX(b, a)
		randU3(a)
		randU3(b)
		c.CX(a, b)
		randU3(a)
		randU3(b)
	}
	for layer := 0; layer < n; layer++ {
		perm := rng.Perm(n)
		for i := 0; i+1 < n; i += 2 {
			block(perm[i], perm[i+1])
		}
		c.Barrier()
	}
	c.MeasureAll()
	return c.Finalize()
}

// HeavySet returns the heavy outputs of a circuit: the basis states whose
// ideal probability exceeds the median ideal probability.
func HeavySet(c *circuit.Circuit) (map[bitstring.BitString]bool, error) {
	s, err := statevector.Run(c)
	if err != nil {
		return nil, err
	}
	probs := s.Probabilities()
	sorted := append([]float64(nil), probs...)
	sort.Float64s(sorted)
	median := sorted[len(sorted)/2]
	if len(sorted)%2 == 0 {
		median = (sorted[len(sorted)/2-1] + sorted[len(sorted)/2]) / 2
	}
	heavy := make(map[bitstring.BitString]bool)
	for i, p := range probs {
		if p > median {
			heavy[bitstring.BitString(i)] = true
		}
	}
	return heavy, nil
}

// HOP returns the heavy-output probability of a measured distribution.
func HOP(counts *bitstring.Dist, heavy map[bitstring.BitString]bool) (float64, error) {
	if counts == nil || counts.Total() == 0 {
		return 0, fmt.Errorf("qvolume: empty counts")
	}
	var mass float64
	counts.Each(func(v bitstring.BitString, c float64) {
		if heavy[v] {
			mass += c
		}
	})
	return mass / counts.Total(), nil
}

// Result is the outcome of a QV trial at one width.
type Result struct {
	Width    int
	Circuits int
	MeanHOP  float64
	// Lower is the two-sigma lower confidence bound on the mean HOP used
	// by the pass rule.
	Lower float64
	Pass  bool
}

// Judge evaluates the pass rule at one width from the per-circuit HOPs:
// mean - 2·σ/√k > 2/3.
func Judge(width int, hops []float64) (Result, error) {
	if len(hops) < 2 {
		return Result{}, fmt.Errorf("qvolume: need >= 2 circuits, got %d", len(hops))
	}
	mean := mathx.Mean(hops)
	var variance float64
	for _, h := range hops {
		d := h - mean
		variance += d * d
	}
	variance /= float64(len(hops) - 1)
	lower := mean - 2*math.Sqrt(variance/float64(len(hops)))
	return Result{
		Width:    width,
		Circuits: len(hops),
		MeanHOP:  mean,
		Lower:    lower,
		Pass:     lower > 2.0/3,
	}, nil
}

// Volume converts the largest passing width into the quantum volume 2^w
// (0 if no width passed).
func Volume(results []Result) int {
	best := 0
	for _, r := range results {
		if r.Pass && r.Width > best {
			best = r.Width
		}
	}
	if best == 0 {
		return 0
	}
	return 1 << uint(best)
}
