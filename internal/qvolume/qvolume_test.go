package qvolume

import (
	"math"
	"testing"

	"qbeep/internal/bitstring"
	"qbeep/internal/core"
	"qbeep/internal/device"
	"qbeep/internal/mathx"
	"qbeep/internal/noise"
	"qbeep/internal/statevector"
)

func TestModelCircuitShape(t *testing.T) {
	rng := mathx.NewRNG(1)
	c, err := ModelCircuit(4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if c.N != 4 {
		t.Errorf("width %d", c.N)
	}
	// 4 layers × 2 blocks × 3 CX = 24 CX.
	if got := c.TwoQubitCount(); got != 24 {
		t.Errorf("CX count %d want 24", got)
	}
	if !c.HasMeasurement() {
		t.Error("no measurements")
	}
	if _, err := ModelCircuit(1, rng); err == nil {
		t.Error("width 1 should error")
	}
	if _, err := ModelCircuit(13, rng); err == nil {
		t.Error("width 13 should error")
	}
}

func TestHeavySetProperties(t *testing.T) {
	rng := mathx.NewRNG(7)
	c, err := ModelCircuit(5, rng)
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := HeavySet(c)
	if err != nil {
		t.Fatal(err)
	}
	// By construction roughly half the outcomes are heavy.
	if len(heavy) < 8 || len(heavy) > 24 {
		t.Errorf("heavy set size %d for 32 outcomes", len(heavy))
	}
	// Ideal HOP of a scrambled circuit approaches (1+ln2)/2 ≈ 0.85.
	s, err := statevector.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	ideal := s.Dist()
	hop, err := HOP(ideal, heavy)
	if err != nil {
		t.Fatal(err)
	}
	if hop < 0.75 || hop > 0.95 {
		t.Errorf("ideal HOP %v outside the Porter-Thomas band", hop)
	}
}

func TestHOPValidation(t *testing.T) {
	if _, err := HOP(nil, nil); err == nil {
		t.Error("nil counts should error")
	}
	if _, err := HOP(bitstring.NewDist(2), nil); err == nil {
		t.Error("empty counts should error")
	}
	d := bitstring.NewDist(2)
	d.Add(0b01, 3)
	d.Add(0b10, 1)
	hop, err := HOP(d, map[bitstring.BitString]bool{0b01: true})
	if err != nil || math.Abs(hop-0.75) > 1e-12 {
		t.Errorf("HOP = %v err %v", hop, err)
	}
}

func TestJudge(t *testing.T) {
	// Tight cluster above 2/3: pass.
	r, err := Judge(4, []float64{0.8, 0.82, 0.79, 0.81})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Pass {
		t.Errorf("should pass: %+v", r)
	}
	// Mean above 2/3 but huge spread: fail on confidence.
	r, _ = Judge(4, []float64{0.95, 0.4, 0.95, 0.42})
	if r.Pass {
		t.Errorf("wide spread should fail: %+v", r)
	}
	if _, err := Judge(4, []float64{0.7}); err == nil {
		t.Error("single circuit should error")
	}
}

func TestVolume(t *testing.T) {
	rs := []Result{
		{Width: 2, Pass: true},
		{Width: 3, Pass: true},
		{Width: 4, Pass: false},
	}
	if v := Volume(rs); v != 8 {
		t.Errorf("volume %d want 8", v)
	}
	if v := Volume(nil); v != 0 {
		t.Errorf("empty volume %d", v)
	}
}

// TestQBEEPRaisesHOP is the extension experiment: Q-BEEP post-processing
// on QV circuits should raise the heavy-output probability on a noisy
// backend, lifting the measured quantum volume.
func TestQBEEPRaisesHOP(t *testing.T) {
	b, err := device.ByName("galway")
	if err != nil {
		t.Fatal(err)
	}
	exec, err := noise.NewExecutor(b, noise.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	rng := mathx.NewRNG(11)
	var rawHOPs, qbHOPs []float64
	for trial := 0; trial < 4; trial++ {
		c, err := ModelCircuit(4, rng)
		if err != nil {
			t.Fatal(err)
		}
		heavy, err := HeavySet(c)
		if err != nil {
			t.Fatal(err)
		}
		run, err := exec.Execute(c, 2048, rng)
		if err != nil {
			t.Fatal(err)
		}
		lb, err := core.EstimateLambda(run.Transpiled, b)
		if err != nil {
			t.Fatal(err)
		}
		mitigated, err := core.Mitigate(run.Counts, lb.Lambda(), core.NewOptions())
		if err != nil {
			t.Fatal(err)
		}
		hr, err := HOP(run.Counts, heavy)
		if err != nil {
			t.Fatal(err)
		}
		hq, err := HOP(mitigated, heavy)
		if err != nil {
			t.Fatal(err)
		}
		rawHOPs = append(rawHOPs, hr)
		qbHOPs = append(qbHOPs, hq)
	}
	if mathx.Mean(qbHOPs) <= mathx.Mean(rawHOPs) {
		t.Errorf("Q-BEEP should raise mean HOP: %v -> %v", mathx.Mean(rawHOPs), mathx.Mean(qbHOPs))
	}
}
