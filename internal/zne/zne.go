// Package zne implements zero-noise extrapolation, a standard
// quantum-error-mitigation technique that composes with Q-BEEP: the
// circuit is run at amplified noise levels produced by unitary gate
// folding (G → G·G†·G triples every folded gate, tripling its error
// exposure while preserving semantics), an observable is measured at each
// level, and the zero-noise value is extrapolated.
//
// Q-BEEP corrects the measured *distribution*; ZNE corrects an
// *expectation value*. For workloads scored by an observable (QAOA cost,
// ⟨Z⟩ chains) the two attack different error components, which is why the
// paper's §3.5 argues for stacking mitigation methods.
package zne

import (
	"fmt"
	"math"
	"sort"

	"qbeep/internal/circuit"
	"qbeep/internal/clifford"
)

// Fold returns the circuit with every unitary gate folded to the given
// odd scale: scale 1 is the identity transformation, scale 3 replaces
// each gate G by G·G†·G, scale 5 by G·(G†·G)², etc. Measurements and
// barriers pass through. Folding preserves the circuit's unitary exactly
// while multiplying its gate count (and so its noise exposure) by scale.
func Fold(c *circuit.Circuit, scale int) (*circuit.Circuit, error) {
	if err := c.Err(); err != nil {
		return nil, err
	}
	if scale < 1 || scale%2 == 0 {
		return nil, fmt.Errorf("zne: scale %d must be odd and >= 1", scale)
	}
	out := circuit.New(fmt.Sprintf("%s-zne%d", c.Name, scale), c.N)
	for _, g := range c.Gates {
		if !g.Kind.IsUnitary() || g.Kind == circuit.I {
			out.Append(g.Clone())
			continue
		}
		out.Append(g.Clone())
		for rep := 0; rep < (scale-1)/2; rep++ {
			// Barriers pin the folded segments in place: without them the
			// transpiler's peephole optimizer would cancel G·G† pairs and
			// silently undo the noise amplification (real ZNE stacks
			// disable optimization the same way).
			out.Barrier(g.Qubits...)
			inv, err := invertGate(g)
			if err != nil {
				return nil, err
			}
			for _, ig := range inv {
				out.Append(ig)
			}
			out.Barrier(g.Qubits...)
			out.Append(g.Clone())
		}
	}
	return out.Finalize()
}

// invertGate returns g⁻¹ as a gate sequence. Clifford gates use the
// library inverter; rotations negate their angles.
func invertGate(g circuit.Gate) ([]circuit.Gate, error) {
	switch g.Kind {
	case circuit.RX, circuit.RY, circuit.RZ:
		return []circuit.Gate{{
			Kind:   g.Kind,
			Qubits: append([]int(nil), g.Qubits...),
			Params: []float64{-g.Params[0]},
		}}, nil
	case circuit.U3:
		// U3(θ,φ,λ)⁻¹ = U3(-θ,-λ,-φ).
		return []circuit.Gate{{
			Kind:   circuit.U3,
			Qubits: append([]int(nil), g.Qubits...),
			Params: []float64{-g.Params[0], -g.Params[2], -g.Params[1]},
		}}, nil
	case circuit.T:
		return []circuit.Gate{{Kind: circuit.Tdg, Qubits: append([]int(nil), g.Qubits...)}}, nil
	case circuit.Tdg:
		return []circuit.Gate{{Kind: circuit.T, Qubits: append([]int(nil), g.Qubits...)}}, nil
	case circuit.CCX, circuit.CSWAP:
		return []circuit.Gate{g.Clone()}, nil // self-inverse
	default:
		return clifford.InvertGate(g)
	}
}

// Point is one (noise scale, measured value) sample.
type Point struct {
	Scale float64
	Value float64
}

// ExtrapolateLinear fits value = a + b·scale by least squares and returns
// the zero-noise intercept a. At least two distinct scales are required.
func ExtrapolateLinear(points []Point) (float64, error) {
	if len(points) < 2 {
		return 0, fmt.Errorf("zne: need >= 2 points, got %d", len(points))
	}
	var sx, sy, sxx, sxy float64
	for _, p := range points {
		sx += p.Scale
		sy += p.Value
		sxx += p.Scale * p.Scale
		sxy += p.Scale * p.Value
	}
	n := float64(len(points))
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, fmt.Errorf("zne: degenerate scales (all equal)")
	}
	b := (n*sxy - sx*sy) / den
	a := (sy - b*sx) / n
	return a, nil
}

// ExtrapolateExp fits the exponential-decay model value = a·e^(b·scale)
// by log-linear least squares and returns the zero-noise value a. All
// sample values must be positive. This is the right model for success
// probabilities, which decay geometrically with the folded gate count
// (each fold multiplies the survival probability), where the linear model
// systematically under-extrapolates.
func ExtrapolateExp(points []Point) (float64, error) {
	logged := make([]Point, len(points))
	for i, p := range points {
		if p.Value <= 0 {
			return 0, fmt.Errorf("zne: exponential fit needs positive values, got %v", p.Value)
		}
		logged[i] = Point{Scale: p.Scale, Value: math.Log(p.Value)}
	}
	a, err := ExtrapolateLinear(logged)
	if err != nil {
		return 0, err
	}
	return math.Exp(a), nil
}

// ExtrapolateRichardson performs Richardson extrapolation through all the
// points (exact polynomial through the samples, evaluated at scale 0).
// Scales must be distinct. With many noisy samples prefer the linear fit;
// Richardson amplifies sampling noise with its high-order terms.
func ExtrapolateRichardson(points []Point) (float64, error) {
	if len(points) < 2 {
		return 0, fmt.Errorf("zne: need >= 2 points, got %d", len(points))
	}
	pts := append([]Point(nil), points...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].Scale < pts[j].Scale })
	for i := 1; i < len(pts); i++ {
		if pts[i].Scale == pts[i-1].Scale { //qbeep:allow-floatcmp input validation: caller-supplied scales must be distinct, not approximately so
			return 0, fmt.Errorf("zne: duplicate scale %v", pts[i].Scale)
		}
	}
	// Lagrange interpolation evaluated at 0.
	var out float64
	for i, pi := range pts {
		w := 1.0
		for j, pj := range pts {
			if i == j {
				continue
			}
			w *= pj.Scale / (pj.Scale - pi.Scale)
		}
		out += w * pi.Value
	}
	return out, nil
}
