package zne

import (
	"math"
	"testing"

	"qbeep/internal/algorithms"
	"qbeep/internal/circuit"
	"qbeep/internal/device"
	"qbeep/internal/mathx"
	"qbeep/internal/noise"
	"qbeep/internal/statevector"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFoldValidation(t *testing.T) {
	c := circuit.New("x", 1).X(0)
	if _, err := Fold(c, 2); err == nil {
		t.Error("even scale should error")
	}
	if _, err := Fold(c, 0); err == nil {
		t.Error("zero scale should error")
	}
	if _, err := Fold(circuit.New("bad", 1).H(5), 3); err == nil {
		t.Error("broken circuit should error")
	}
}

func TestFoldScaleOneIsIdentity(t *testing.T) {
	c := circuit.New("mix", 2).H(0).T(1).CX(0, 1).RZ(0.4, 1).MeasureAll()
	f, err := Fold(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if f.GateCount() != c.GateCount() {
		t.Errorf("scale 1 changed gate count: %d vs %d", f.GateCount(), c.GateCount())
	}
}

func TestFoldTriplesGateCount(t *testing.T) {
	c := circuit.New("mix", 2).H(0).CX(0, 1).RZ(0.4, 1)
	f, err := Fold(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	if f.GateCount() != 3*c.GateCount() {
		t.Errorf("scale 3 gate count %d want %d", f.GateCount(), 3*c.GateCount())
	}
	f5, _ := Fold(c, 5)
	if f5.GateCount() != 5*c.GateCount() {
		t.Errorf("scale 5 gate count %d want %d", f5.GateCount(), 5*c.GateCount())
	}
}

func TestFoldPreservesSemantics(t *testing.T) {
	rng := mathx.NewRNG(3)
	for trial := 0; trial < 8; trial++ {
		c := circuit.New("rand", 3)
		for i := 0; i < 20; i++ {
			switch rng.Intn(7) {
			case 0:
				c.H(rng.Intn(3))
			case 1:
				c.T(rng.Intn(3))
			case 2:
				c.RZ(rng.Uniform(-2, 2), rng.Intn(3))
			case 3:
				c.U3(rng.Uniform(-1, 1), rng.Uniform(-1, 1), rng.Uniform(-1, 1), rng.Intn(3))
			case 4:
				c.SX(rng.Intn(3))
			case 5:
				a := rng.Intn(3)
				c.CX(a, (a+1)%3)
			case 6:
				c.RY(rng.Uniform(-2, 2), rng.Intn(3))
			}
		}
		for _, scale := range []int{3, 5} {
			f, err := Fold(c, scale)
			if err != nil {
				t.Fatal(err)
			}
			sa, err := statevector.Run(c)
			if err != nil {
				t.Fatal(err)
			}
			sb, err := statevector.Run(f)
			if err != nil {
				t.Fatal(err)
			}
			fid, _ := sa.FidelityWith(sb)
			if !approx(fid, 1, 1e-9) {
				t.Fatalf("trial %d scale %d: folding changed semantics (F=%v)", trial, scale, fid)
			}
		}
	}
}

func TestFoldCCXSelfInverse(t *testing.T) {
	c := circuit.New("ccx", 3).X(0).X(1).CCX(0, 1, 2)
	f, err := Fold(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	sa, _ := statevector.Run(c)
	sb, _ := statevector.Run(f)
	fid, _ := sa.FidelityWith(sb)
	if !approx(fid, 1, 1e-12) {
		t.Errorf("CCX folding broke semantics: %v", fid)
	}
}

func TestExtrapolateLinearExact(t *testing.T) {
	// value = 0.9 - 0.1·scale.
	pts := []Point{{1, 0.8}, {3, 0.6}, {5, 0.4}}
	got, err := ExtrapolateLinear(pts)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(got, 0.9, 1e-12) {
		t.Errorf("intercept %v want 0.9", got)
	}
	if _, err := ExtrapolateLinear(pts[:1]); err == nil {
		t.Error("single point should error")
	}
	if _, err := ExtrapolateLinear([]Point{{1, 1}, {1, 2}}); err == nil {
		t.Error("equal scales should error")
	}
}

func TestExtrapolateRichardsonQuadratic(t *testing.T) {
	// value = 1 - 0.2·s + 0.01·s²: Richardson through 3 points is exact.
	f := func(s float64) float64 { return 1 - 0.2*s + 0.01*s*s }
	pts := []Point{{1, f(1)}, {3, f(3)}, {5, f(5)}}
	got, err := ExtrapolateRichardson(pts)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(got, 1, 1e-12) {
		t.Errorf("Richardson %v want 1", got)
	}
	if _, err := ExtrapolateRichardson([]Point{{2, 1}, {2, 2}}); err == nil {
		t.Error("duplicate scales should error")
	}
}

func TestZNERecoversExpectationOnExecutor(t *testing.T) {
	// End-to-end: PST of a BV circuit decays with the fold scale; the
	// extrapolated zero-noise PST must beat the scale-1 measurement.
	b, err := device.ByName("galway")
	if err != nil {
		t.Fatal(err)
	}
	exec, err := noise.NewExecutor(b, noise.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	w, err := algorithms.BernsteinVazirani(6, 0b101101)
	if err != nil {
		t.Fatal(err)
	}
	rng := mathx.NewRNG(9)
	var pts []Point
	var pst1 float64
	for _, scale := range []int{1, 3, 5} {
		folded, err := Fold(w.Circuit, scale)
		if err != nil {
			t.Fatal(err)
		}
		run, err := exec.Execute(folded, 4096, rng)
		if err != nil {
			t.Fatal(err)
		}
		counts, err := w.MarginalCounts(run.Counts)
		if err != nil {
			t.Fatal(err)
		}
		p := counts.Prob(w.Expected)
		pts = append(pts, Point{Scale: float64(scale), Value: p})
		if scale == 1 {
			pst1 = p
		}
	}
	zero, err := ExtrapolateLinear(pts)
	if err != nil {
		t.Fatal(err)
	}
	if zero <= pst1 {
		t.Errorf("ZNE should beat the unmitigated value: %v vs %v (points %v)", zero, pst1, pts)
	}
	if zero > 1.1 {
		t.Errorf("extrapolation overshot implausibly: %v", zero)
	}
}

func TestExtrapolateExp(t *testing.T) {
	// value = 0.9·e^(-0.3·s): log-linear fit recovers 0.9 exactly.
	f := func(s float64) float64 { return 0.9 * math.Exp(-0.3*s) }
	pts := []Point{{1, f(1)}, {3, f(3)}, {5, f(5)}}
	got, err := ExtrapolateExp(pts)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(got, 0.9, 1e-9) {
		t.Errorf("exp intercept %v want 0.9", got)
	}
	if _, err := ExtrapolateExp([]Point{{1, 0.5}, {3, -0.1}}); err == nil {
		t.Error("non-positive values should error")
	}
	// The exponential model beats linear on geometric decay.
	lin, _ := ExtrapolateLinear(pts)
	if math.Abs(lin-0.9) < math.Abs(got-0.9) {
		t.Errorf("linear (%v) should not beat exponential (%v) on exponential data", lin, got)
	}
}
