package clifford

import (
	"fmt"

	"qbeep/internal/circuit"
	"qbeep/internal/mathx"
)

// cliffordKinds is the one- and two-qubit vocabulary random layers draw
// from. The single-qubit set generates the full single-qubit Clifford group;
// CX/CZ/SWAP provide entanglement.
var oneQubitKinds = []circuit.Kind{
	circuit.H, circuit.S, circuit.Sdg, circuit.X, circuit.Y, circuit.Z, circuit.SX,
}

var twoQubitKinds = []circuit.Kind{circuit.CX, circuit.CZ, circuit.SWAP}

// RandomLayer appends one random Clifford layer to gates: a random
// single-qubit Clifford on every qubit, followed by a random matching of
// ~half the qubits with random two-qubit gates. Returns the extended slice.
func RandomLayer(gates []circuit.Gate, n int, rng *mathx.RNG) []circuit.Gate {
	for q := 0; q < n; q++ {
		k := oneQubitKinds[rng.Intn(len(oneQubitKinds))]
		gates = append(gates, circuit.Gate{Kind: k, Qubits: []int{q}})
	}
	perm := rng.Perm(n)
	for i := 0; i+1 < len(perm); i += 2 {
		k := twoQubitKinds[rng.Intn(len(twoQubitKinds))]
		gates = append(gates, circuit.Gate{Kind: k, Qubits: []int{perm[i], perm[i+1]}})
	}
	return gates
}

// RandomCliffordSequence returns layers random Clifford layers over n
// qubits as a flat gate sequence.
func RandomCliffordSequence(n, layers int, rng *mathx.RNG) []circuit.Gate {
	var gates []circuit.Gate
	for l := 0; l < layers; l++ {
		gates = RandomLayer(gates, n, rng)
	}
	return gates
}

// RBCircuit builds a randomized-benchmarking circuit: layers random
// Clifford layers followed by the synthesized exact inverse, so the whole
// sequence composes to the identity (verified on the tableau). The caller
// typically prepends a random basis-state preparation and appends
// measurements (see internal/algorithms.RandomizedBenchmarking).
func RBCircuit(name string, n, layers int, rng *mathx.RNG) (*circuit.Circuit, error) {
	if n <= 0 {
		return nil, fmt.Errorf("clifford: width %d must be positive", n)
	}
	if layers < 0 {
		return nil, fmt.Errorf("clifford: negative layer count %d", layers)
	}
	fwd := RandomCliffordSequence(n, layers, rng)
	inv, err := InvertSequence(fwd)
	if err != nil {
		return nil, err
	}
	c := circuit.New(name, n)
	for _, g := range fwd {
		c.Append(g)
	}
	c.Barrier()
	for _, g := range inv {
		c.Append(g)
	}
	if err := c.Err(); err != nil {
		return nil, err
	}
	// Invariant: the sequence is the identity Clifford. A violation here is
	// a bug in the tableau or the inverter, so fail loudly.
	t, err := NewTableau(n)
	if err != nil {
		return nil, err
	}
	if err := t.ApplyCircuit(c); err != nil {
		return nil, err
	}
	if !t.IsIdentity() {
		return nil, fmt.Errorf("clifford: RB circuit %q does not compose to identity", name)
	}
	return c, nil
}
