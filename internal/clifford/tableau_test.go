package clifford

import (
	"math"
	"testing"
	"testing/quick"

	"qbeep/internal/bitstring"
	"qbeep/internal/circuit"
	"qbeep/internal/mathx"
	"qbeep/internal/statevector"
)

func TestIdentityTableau(t *testing.T) {
	tab, err := NewTableau(3)
	if err != nil {
		t.Fatal(err)
	}
	if !tab.IsIdentity() {
		t.Error("fresh tableau should be identity")
	}
	if tab.N() != 3 {
		t.Errorf("N = %d", tab.N())
	}
	if _, err := NewTableau(0); err == nil {
		t.Error("zero width should error")
	}
}

func TestSingleGateNonIdentity(t *testing.T) {
	for _, k := range []circuit.Kind{circuit.H, circuit.S, circuit.X, circuit.Z, circuit.SX} {
		tab, _ := NewTableau(2)
		if err := tab.Apply(circuit.Gate{Kind: k, Qubits: []int{0}}); err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if tab.IsIdentity() {
			t.Errorf("%s should not be identity", k)
		}
	}
}

func TestSelfInverseGates(t *testing.T) {
	for _, k := range []circuit.Kind{circuit.H, circuit.X, circuit.Y, circuit.Z} {
		tab, _ := NewTableau(2)
		g := circuit.Gate{Kind: k, Qubits: []int{0}}
		tab.Apply(g)
		tab.Apply(g)
		if !tab.IsIdentity() {
			t.Errorf("%s² should be identity", k)
		}
	}
	for _, k := range []circuit.Kind{circuit.CX, circuit.CZ, circuit.SWAP} {
		tab, _ := NewTableau(2)
		g := circuit.Gate{Kind: k, Qubits: []int{0, 1}}
		tab.Apply(g)
		tab.Apply(g)
		if !tab.IsIdentity() {
			t.Errorf("%s² should be identity", k)
		}
	}
}

func TestSOrderFour(t *testing.T) {
	tab, _ := NewTableau(1)
	g := circuit.Gate{Kind: circuit.S, Qubits: []int{0}}
	for i := 0; i < 4; i++ {
		if tab.IsIdentity() != (i == 0) {
			t.Errorf("S^%d identity = %v", i, tab.IsIdentity())
		}
		tab.Apply(g)
	}
	if !tab.IsIdentity() {
		t.Error("S⁴ should be identity")
	}
}

func TestSdgInvertsS(t *testing.T) {
	tab, _ := NewTableau(1)
	tab.Apply(circuit.Gate{Kind: circuit.S, Qubits: []int{0}})
	tab.Apply(circuit.Gate{Kind: circuit.Sdg, Qubits: []int{0}})
	if !tab.IsIdentity() {
		t.Error("S·Sdg should be identity")
	}
}

func TestSXviaHSH(t *testing.T) {
	// SX applied twice is X (up to global phase); tableau should agree:
	// SX·SX·X = identity.
	tab, _ := NewTableau(1)
	tab.Apply(circuit.Gate{Kind: circuit.SX, Qubits: []int{0}})
	tab.Apply(circuit.Gate{Kind: circuit.SX, Qubits: []int{0}})
	tab.Apply(circuit.Gate{Kind: circuit.X, Qubits: []int{0}})
	if !tab.IsIdentity() {
		t.Error("SX²·X should be identity")
	}
}

func TestApplyRejectsNonClifford(t *testing.T) {
	tab, _ := NewTableau(1)
	if err := tab.Apply(circuit.Gate{Kind: circuit.T, Qubits: []int{0}}); err == nil {
		t.Error("T should be rejected")
	}
	if err := tab.Apply(circuit.Gate{Kind: circuit.RZ, Qubits: []int{0}, Params: []float64{1}}); err == nil {
		t.Error("RZ should be rejected")
	}
	if err := tab.Apply(circuit.Gate{Kind: circuit.H, Qubits: []int{5}}); err == nil {
		t.Error("out-of-range qubit should be rejected")
	}
}

func TestApplyCircuitWidthMismatch(t *testing.T) {
	tab, _ := NewTableau(2)
	if err := tab.ApplyCircuit(circuit.New("w", 3).H(0)); err == nil {
		t.Error("width mismatch should error")
	}
	if err := tab.ApplyCircuit(circuit.New("bad", 2).H(9)); err == nil {
		t.Error("broken circuit should error")
	}
}

func TestApplyCircuitSkipsMeasure(t *testing.T) {
	tab, _ := NewTableau(1)
	c := circuit.New("m", 1).H(0).H(0).Measure(0)
	if err := tab.ApplyCircuit(c); err != nil {
		t.Fatal(err)
	}
	if !tab.IsIdentity() {
		t.Error("HH with measurement should be tableau identity")
	}
}

func TestInvertGateUnsupported(t *testing.T) {
	if _, err := InvertGate(circuit.Gate{Kind: circuit.T, Qubits: []int{0}}); err == nil {
		t.Error("inverting T should error")
	}
}

func TestInvertSequenceRandom(t *testing.T) {
	// Property: seq + InvertSequence(seq) is the identity on the tableau.
	f := func(seed uint32, layersRaw uint8) bool {
		rng := mathx.NewRNG(uint64(seed))
		layers := int(layersRaw%5) + 1
		seq := RandomCliffordSequence(4, layers, rng)
		inv, err := InvertSequence(seq)
		if err != nil {
			return false
		}
		tab, _ := NewTableau(4)
		for _, g := range append(append([]circuit.Gate{}, seq...), inv...) {
			if err := tab.Apply(g); err != nil {
				return false
			}
		}
		return tab.IsIdentity()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTableauAgreesWithStatevector(t *testing.T) {
	// A random Clifford sequence that the tableau says is identity must fix
	// every basis state in the statevector simulator (up to global phase).
	rng := mathx.NewRNG(99)
	for trial := 0; trial < 10; trial++ {
		c, err := RBCircuit("rb", 4, 3, rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, init := range []bitstring.BitString{0, 0b1010, 0b1111} {
			s, err := statevector.RunFrom(c, init)
			if err != nil {
				t.Fatal(err)
			}
			if p := s.Prob(init); math.Abs(p-1) > 1e-9 {
				t.Fatalf("trial %d init %04b: P = %v, want 1", trial, init, p)
			}
		}
	}
}

func TestRBCircuitErrors(t *testing.T) {
	rng := mathx.NewRNG(1)
	if _, err := RBCircuit("bad", 0, 1, rng); err == nil {
		t.Error("zero width should error")
	}
	if _, err := RBCircuit("bad", 3, -1, rng); err == nil {
		t.Error("negative layers should error")
	}
}

func TestRBCircuitGateCountGrowsWithLayers(t *testing.T) {
	rng := mathx.NewRNG(5)
	c1, err := RBCircuit("rb1", 5, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := RBCircuit("rb2", 5, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if c2.GateCount() <= c1.GateCount() {
		t.Errorf("gate count did not grow: %d vs %d", c1.GateCount(), c2.GateCount())
	}
}

func TestRBCircuitZeroLayers(t *testing.T) {
	c, err := RBCircuit("rb0", 3, 0, mathx.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if c.GateCount() != 0 {
		t.Errorf("zero layers should have zero unitaries, got %d", c.GateCount())
	}
}

func TestCloneIndependence(t *testing.T) {
	tab, _ := NewTableau(2)
	c := tab.Clone()
	c.Apply(circuit.Gate{Kind: circuit.H, Qubits: []int{0}})
	if !tab.IsIdentity() {
		t.Error("clone shares state")
	}
	if c.IsIdentity() {
		t.Error("clone did not apply")
	}
}

func TestRandomLayerShape(t *testing.T) {
	rng := mathx.NewRNG(2)
	gates := RandomLayer(nil, 6, rng)
	oneQ, twoQ := 0, 0
	for _, g := range gates {
		switch len(g.Qubits) {
		case 1:
			oneQ++
		case 2:
			twoQ++
		}
	}
	if oneQ != 6 {
		t.Errorf("one-qubit gates %d want 6", oneQ)
	}
	if twoQ != 3 {
		t.Errorf("two-qubit gates %d want 3", twoQ)
	}
}

func BenchmarkRBCircuit12Q(b *testing.B) {
	rng := mathx.NewRNG(1)
	for i := 0; i < b.N; i++ {
		if _, err := RBCircuit("rb", 12, 8, rng); err != nil {
			b.Fatal(err)
		}
	}
}
