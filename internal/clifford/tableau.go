// Package clifford implements a stabilizer tableau (Aaronson–Gottesman CHP
// representation) and random-Clifford circuit generation. It is the
// substrate for the randomized-benchmarking corpora of Fig. 4 and Fig. 6:
// RB sequences are random Clifford layers followed by the exact inverse, so
// the ideal output is the prepared basis state and every deviation observed
// under noise is an error with a well-defined Hamming distance.
package clifford

import (
	"fmt"

	"qbeep/internal/circuit"
)

// Tableau tracks how a Clifford circuit conjugates the Pauli group: row i
// (< n) is the image of X_i, row n+i the image of Z_i, each stored as
// x/z bit vectors plus a sign bit. The identity tableau maps X_i→X_i,
// Z_i→Z_i.
type Tableau struct {
	n    int
	x    [][]bool // x[row][col]
	z    [][]bool
	sign []bool // true = -1 phase
}

// NewTableau returns the identity tableau on n qubits.
func NewTableau(n int) (*Tableau, error) {
	if n <= 0 {
		return nil, fmt.Errorf("clifford: width %d must be positive", n)
	}
	t := &Tableau{
		n:    n,
		x:    make([][]bool, 2*n),
		z:    make([][]bool, 2*n),
		sign: make([]bool, 2*n),
	}
	for r := 0; r < 2*n; r++ {
		t.x[r] = make([]bool, n)
		t.z[r] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		t.x[i][i] = true
		t.z[n+i][i] = true
	}
	return t, nil
}

// N returns the register width.
func (t *Tableau) N() int { return t.n }

// Clone returns a deep copy.
func (t *Tableau) Clone() *Tableau {
	c := &Tableau{n: t.n, x: make([][]bool, 2*t.n), z: make([][]bool, 2*t.n),
		sign: append([]bool(nil), t.sign...)}
	for r := range t.x {
		c.x[r] = append([]bool(nil), t.x[r]...)
		c.z[r] = append([]bool(nil), t.z[r]...)
	}
	return c
}

// IsIdentity reports whether the tableau is the identity map (all signs
// positive).
func (t *Tableau) IsIdentity() bool {
	for i := 0; i < t.n; i++ {
		for j := 0; j < t.n; j++ {
			wantX := i == j
			if t.x[i][j] != wantX || t.z[i][j] {
				return false
			}
			if t.z[t.n+i][j] != wantX || t.x[t.n+i][j] {
				return false
			}
		}
	}
	for _, s := range t.sign {
		if s {
			return false
		}
	}
	return true
}

// applyH updates all rows for an H on qubit q: X↔Z, sign ^= x·z.
func (t *Tableau) applyH(q int) {
	for r := 0; r < 2*t.n; r++ {
		if t.x[r][q] && t.z[r][q] {
			t.sign[r] = !t.sign[r]
		}
		t.x[r][q], t.z[r][q] = t.z[r][q], t.x[r][q]
	}
}

// applyS updates for S on qubit q: Z ^= X, sign ^= x·z.
func (t *Tableau) applyS(q int) {
	for r := 0; r < 2*t.n; r++ {
		if t.x[r][q] && t.z[r][q] {
			t.sign[r] = !t.sign[r]
		}
		t.z[r][q] = t.z[r][q] != t.x[r][q]
	}
}

// applyX flips signs of rows anticommuting with X_q (those with z set).
func (t *Tableau) applyX(q int) {
	for r := 0; r < 2*t.n; r++ {
		if t.z[r][q] {
			t.sign[r] = !t.sign[r]
		}
	}
}

// applyZ flips signs of rows anticommuting with Z_q (those with x set).
func (t *Tableau) applyZ(q int) {
	for r := 0; r < 2*t.n; r++ {
		if t.x[r][q] {
			t.sign[r] = !t.sign[r]
		}
	}
}

// applyCX updates for CX(control c, target g):
// x_g ^= x_c, z_c ^= z_g, sign ^= x_c z_g (x_g ^ z_c ^ 1).
func (t *Tableau) applyCX(c, g int) {
	for r := 0; r < 2*t.n; r++ {
		if t.x[r][c] && t.z[r][g] && (t.x[r][g] == t.z[r][c]) {
			t.sign[r] = !t.sign[r]
		}
		t.x[r][g] = t.x[r][g] != t.x[r][c]
		t.z[r][c] = t.z[r][c] != t.z[r][g]
	}
}

// Apply conjugates the tableau by one Clifford gate. Supported kinds: I, X,
// Y, Z, H, S, Sdg, SX, CX, CZ, SWAP, Barrier (ignored).
func (t *Tableau) Apply(g circuit.Gate) error {
	if err := g.Validate(t.n); err != nil {
		return err
	}
	switch g.Kind {
	case circuit.I, circuit.Barrier:
	case circuit.X:
		t.applyX(g.Qubits[0])
	case circuit.Z:
		t.applyZ(g.Qubits[0])
	case circuit.Y:
		t.applyZ(g.Qubits[0])
		t.applyX(g.Qubits[0])
	case circuit.H:
		t.applyH(g.Qubits[0])
	case circuit.S:
		t.applyS(g.Qubits[0])
	case circuit.Sdg:
		// Sdg = S·S·S up to global phase, which the tableau ignores.
		t.applyS(g.Qubits[0])
		t.applyS(g.Qubits[0])
		t.applyS(g.Qubits[0])
	case circuit.SX:
		// SX = H·S·H up to global phase.
		t.applyH(g.Qubits[0])
		t.applyS(g.Qubits[0])
		t.applyH(g.Qubits[0])
	case circuit.CX:
		t.applyCX(g.Qubits[0], g.Qubits[1])
	case circuit.CZ:
		// CZ = (I⊗H)·CX·(I⊗H).
		t.applyH(g.Qubits[1])
		t.applyCX(g.Qubits[0], g.Qubits[1])
		t.applyH(g.Qubits[1])
	case circuit.SWAP:
		a, b := g.Qubits[0], g.Qubits[1]
		t.applyCX(a, b)
		t.applyCX(b, a)
		t.applyCX(a, b)
	default:
		return fmt.Errorf("clifford: %s is not a Clifford tableau gate", g.Kind)
	}
	return nil
}

// ApplyCircuit applies every unitary gate of c in order.
func (t *Tableau) ApplyCircuit(c *circuit.Circuit) error {
	if err := c.Err(); err != nil {
		return err
	}
	if c.N != t.n {
		return fmt.Errorf("clifford: circuit width %d vs tableau %d", c.N, t.n)
	}
	for _, g := range c.Gates {
		if g.Kind == circuit.Measure {
			continue
		}
		if err := t.Apply(g); err != nil {
			return err
		}
	}
	return nil
}

// InvertGate returns the gate sequence implementing g⁻¹ for the Clifford
// vocabulary (up to global phase).
func InvertGate(g circuit.Gate) ([]circuit.Gate, error) {
	switch g.Kind {
	case circuit.I, circuit.X, circuit.Y, circuit.Z, circuit.H,
		circuit.CX, circuit.CZ, circuit.SWAP, circuit.Barrier:
		return []circuit.Gate{g.Clone()}, nil
	case circuit.S:
		return []circuit.Gate{{Kind: circuit.Sdg, Qubits: append([]int(nil), g.Qubits...)}}, nil
	case circuit.Sdg:
		return []circuit.Gate{{Kind: circuit.S, Qubits: append([]int(nil), g.Qubits...)}}, nil
	case circuit.SX:
		// SX⁻¹ = Sdg·H·Sdg up to global phase (inverse of H·S·H).
		q := append([]int(nil), g.Qubits...)
		return []circuit.Gate{
			{Kind: circuit.H, Qubits: q},
			{Kind: circuit.Sdg, Qubits: append([]int(nil), q...)},
			{Kind: circuit.H, Qubits: append([]int(nil), q...)},
		}, nil
	default:
		return nil, fmt.Errorf("clifford: cannot invert %s", g.Kind)
	}
}

// InvertSequence returns the exact inverse of a Clifford gate sequence:
// each gate inverted, order reversed.
func InvertSequence(gates []circuit.Gate) ([]circuit.Gate, error) {
	out := make([]circuit.Gate, 0, len(gates))
	for i := len(gates) - 1; i >= 0; i-- {
		inv, err := InvertGate(gates[i])
		if err != nil {
			return nil, err
		}
		out = append(out, inv...)
	}
	return out, nil
}
