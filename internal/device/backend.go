package device

import (
	"fmt"
	"sort"

	"qbeep/internal/mathx"
)

// Architecture distinguishes the two NISQ technologies the paper studies.
type Architecture string

const (
	Superconducting Architecture = "superconducting"
	TrappedIon      Architecture = "trapped-ion"
)

// Backend is a complete processor model: identity, topology and the
// current calibration snapshot. It is everything Q-BEEP's λ estimator and
// the noisy executor need.
type Backend struct {
	Name         string
	Architecture Architecture
	Topology     *Topology
	Calibration  *Calibration
}

// Validate checks the backend is internally consistent.
func (b *Backend) Validate() error {
	if b.Name == "" {
		return fmt.Errorf("device: backend without a name")
	}
	if b.Topology == nil || b.Calibration == nil {
		return fmt.Errorf("device: backend %q missing topology or calibration", b.Name)
	}
	return b.Calibration.Validate(b.Topology)
}

// N returns the backend's qubit count.
func (b *Backend) N() int { return b.Topology.N() }

// spec describes one synthetic machine in the catalog. Names are fictional
// but follow IBMQ's city-name convention; sizes and topologies mirror the
// Falcon/Hummingbird/Eagle generations the paper's 5–127-qubit fleet spans.
type spec struct {
	name    string
	build   func() (*Topology, error)
	quality float64 // QualityScale: >1 noisier than the fleet median
	seed    uint64
}

func catalogSpecs() []spec {
	return []spec{
		{"auckland", func() (*Topology, error) { return TShape() }, 0.9, 101},
		{"bengal", func() (*Topology, error) { return TShape() }, 1.4, 102},
		{"carthage", func() (*Topology, error) { return Linear(7) }, 0.8, 103},
		{"dresden", func() (*Topology, error) { return Linear(7) }, 1.2, 104},
		{"eldorado", func() (*Topology, error) { return Grid(3, 4) }, 1.0, 105},
		{"fukuoka", func() (*Topology, error) { return Grid(3, 4) }, 1.6, 106},
		{"galway", func() (*Topology, error) { return Ring(12) }, 0.7, 107},
		{"hanoi2", func() (*Topology, error) { return Ring(16) }, 1.1, 108},
		{"istanbul", func() (*Topology, error) { return HeavyHex(3, 9) }, 0.8, 109},
		{"jakarta2", func() (*Topology, error) { return HeavyHex(3, 9) }, 1.3, 110},
		{"kyiv", func() (*Topology, error) { return HeavyHex(4, 11) }, 0.9, 111},
		{"lagos2", func() (*Topology, error) { return HeavyHex(4, 11) }, 1.5, 112},
		{"medellin", func() (*Topology, error) { return HeavyHex(5, 13) }, 1.0, 113},
		{"nairobi2", func() (*Topology, error) { return HeavyHex(5, 13) }, 1.8, 114},
		{"oslo2", func() (*Topology, error) { return HeavyHex(6, 15) }, 1.1, 115},
		{"pinnacle", func() (*Topology, error) { return HeavyHex(7, 15) }, 1.2, 116},
	}
}

// Catalog returns the 16 synthetic superconducting backends standing in for
// the paper's IBMQ fleet. Calibrations are deterministic (fixed per-machine
// seeds); repeated calls return equal backends.
func Catalog() ([]*Backend, error) {
	specs := catalogSpecs()
	backends := make([]*Backend, 0, len(specs))
	for _, s := range specs {
		topo, err := s.build()
		if err != nil {
			return nil, fmt.Errorf("device: building %s: %w", s.name, err)
		}
		prof := SuperconductingProfile()
		prof.QualityScale = s.quality
		cal := GenerateCalibration(topo, prof, mathx.NewRNG(s.seed))
		b := &Backend{
			Name:         s.name,
			Architecture: Superconducting,
			Topology:     topo,
			Calibration:  cal,
		}
		if err := b.Validate(); err != nil {
			return nil, err
		}
		backends = append(backends, b)
	}
	return backends, nil
}

// ByName returns the catalog backend with the given name.
func ByName(name string) (*Backend, error) {
	all, err := Catalog()
	if err != nil {
		return nil, err
	}
	for _, b := range all {
		if b.Name == name {
			return b, nil
		}
	}
	names := make([]string, len(all))
	for i, b := range all {
		names[i] = b.Name
	}
	sort.Strings(names)
	return nil, fmt.Errorf("device: unknown backend %q (have %v)", name, names)
}

// IonBackend returns the synthetic 5-qubit trapped-ion backend standing in
// for IonQ's processor in Fig. 4(b).
func IonBackend() (*Backend, error) {
	topo, err := AllToAll(5)
	if err != nil {
		return nil, err
	}
	cal := GenerateCalibration(topo, TrappedIonProfile(), mathx.NewRNG(777))
	b := &Backend{
		Name:         "ion-5",
		Architecture: TrappedIon,
		Topology:     topo,
		Calibration:  cal,
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return b, nil
}

// CatalogSubset returns the first k catalog backends whose qubit count is
// at least minQubits, erroring if fewer than k qualify. Experiment runners
// use it to pick fleets for a given circuit width.
func CatalogSubset(k, minQubits int) ([]*Backend, error) {
	all, err := Catalog()
	if err != nil {
		return nil, err
	}
	var out []*Backend
	for _, b := range all {
		if b.N() >= minQubits {
			out = append(out, b)
		}
		if len(out) == k {
			return out, nil
		}
	}
	return nil, fmt.Errorf("device: only %d backends with >= %d qubits, need %d", len(out), minQubits, k)
}
