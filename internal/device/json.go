package device

import (
	"encoding/json"
	"fmt"
)

// The wire format keys two-qubit calibrations by "a-b" strings because JSON
// objects cannot use struct keys. Backends round-trip losslessly through
// MarshalJSON/UnmarshalJSON so the catalog can be exported for other tools
// (cmd/qbeep-backends) and user-supplied backends can be loaded by the CLI.

type calibrationWire struct {
	Qubits  []QubitCalibration         `json:"qubits"`
	Gates1Q []GateCalibration          `json:"gates_1q"`
	Gates2Q map[string]GateCalibration `json:"gates_2q"`
}

type backendWire struct {
	Name         string          `json:"name"`
	Architecture Architecture    `json:"architecture"`
	NumQubits    int             `json:"num_qubits"`
	Edges        [][2]int        `json:"edges"`
	Calibration  calibrationWire `json:"calibration"`
}

func edgeKey(e Edge) string { return fmt.Sprintf("%d-%d", e.A, e.B) }

func parseEdgeKey(s string) (Edge, error) {
	var a, b int
	if _, err := fmt.Sscanf(s, "%d-%d", &a, &b); err != nil {
		return Edge{}, fmt.Errorf("device: bad edge key %q: %w", s, err)
	}
	return NormEdge(a, b), nil
}

// MarshalJSON renders the backend in the documented wire format.
func (b *Backend) MarshalJSON() ([]byte, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	w := backendWire{
		Name:         b.Name,
		Architecture: b.Architecture,
		NumQubits:    b.N(),
		Calibration: calibrationWire{
			Qubits:  b.Calibration.Qubits,
			Gates1Q: b.Calibration.Gates1Q,
			Gates2Q: make(map[string]GateCalibration, len(b.Calibration.Gates2Q)),
		},
	}
	for _, e := range b.Topology.Edges() {
		w.Edges = append(w.Edges, [2]int{e.A, e.B})
		w.Calibration.Gates2Q[edgeKey(e)] = b.Calibration.Gates2Q[e]
	}
	return json.Marshal(w)
}

// UnmarshalJSON parses the wire format and validates the result.
func (b *Backend) UnmarshalJSON(data []byte) error {
	var w backendWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	edges := make([]Edge, len(w.Edges))
	for i, e := range w.Edges {
		edges[i] = NormEdge(e[0], e[1])
	}
	topo, err := NewTopology(w.NumQubits, edges)
	if err != nil {
		return err
	}
	cal := &Calibration{
		Qubits:  w.Calibration.Qubits,
		Gates1Q: w.Calibration.Gates1Q,
		Gates2Q: make(map[Edge]GateCalibration, len(w.Calibration.Gates2Q)),
	}
	for k, g := range w.Calibration.Gates2Q {
		e, err := parseEdgeKey(k)
		if err != nil {
			return err
		}
		cal.Gates2Q[e] = g
	}
	b.Name = w.Name
	b.Architecture = w.Architecture
	b.Topology = topo
	b.Calibration = cal
	return b.Validate()
}
