package device

import (
	"fmt"

	"qbeep/internal/mathx"
)

// QubitCalibration holds the per-qubit runtime statistics IBMQ publishes
// daily. Times are in seconds, errors are probabilities.
type QubitCalibration struct {
	T1           float64 `json:"t1"`            // relaxation time
	T2           float64 `json:"t2"`            // dephasing time
	ReadoutError float64 `json:"readout_error"` // P(flip) at measurement
}

// GateCalibration holds per-gate statistics.
type GateCalibration struct {
	Error    float64 `json:"error"`    // infidelity of one application
	Duration float64 `json:"duration"` // seconds
}

// Calibration is the full runtime snapshot of a backend: per-qubit
// coherence and readout plus per-gate-class errors. Single-qubit gates are
// keyed by qubit, two-qubit gates by edge.
type Calibration struct {
	Qubits  []QubitCalibration       `json:"qubits"`
	Gates1Q []GateCalibration        `json:"gates_1q"` // indexed by qubit
	Gates2Q map[Edge]GateCalibration `json:"-"`        // per coupled edge
}

// Validate checks internal consistency against an n-qubit topology.
func (c *Calibration) Validate(t *Topology) error {
	if len(c.Qubits) != t.N() {
		return fmt.Errorf("device: %d qubit calibrations for %d qubits", len(c.Qubits), t.N())
	}
	if len(c.Gates1Q) != t.N() {
		return fmt.Errorf("device: %d 1q gate calibrations for %d qubits", len(c.Gates1Q), t.N())
	}
	for i, q := range c.Qubits {
		if q.T1 <= 0 || q.T2 <= 0 {
			return fmt.Errorf("device: qubit %d has non-positive T1/T2", i)
		}
		if q.ReadoutError < 0 || q.ReadoutError > 1 {
			return fmt.Errorf("device: qubit %d readout error %v outside [0,1]", i, q.ReadoutError)
		}
	}
	for _, e := range t.Edges() {
		if _, ok := c.Gates2Q[e]; !ok {
			return fmt.Errorf("device: missing 2q calibration for edge (%d,%d)", e.A, e.B)
		}
	}
	return nil
}

// Gate2Q returns the calibration of the two-qubit gate on (a,b).
func (c *Calibration) Gate2Q(a, b int) (GateCalibration, bool) {
	g, ok := c.Gates2Q[NormEdge(a, b)]
	return g, ok
}

// MeanT1 returns the average T1 across qubits.
func (c *Calibration) MeanT1() float64 {
	var s float64
	for _, q := range c.Qubits {
		s += q.T1
	}
	return s / float64(len(c.Qubits))
}

// MeanT2 returns the average T2 across qubits.
func (c *Calibration) MeanT2() float64 {
	var s float64
	for _, q := range c.Qubits {
		s += q.T2
	}
	return s / float64(len(c.Qubits))
}

// MeanReadoutError returns the average readout error across qubits.
func (c *Calibration) MeanReadoutError() float64 {
	var s float64
	for _, q := range c.Qubits {
		s += q.ReadoutError
	}
	return s / float64(len(c.Qubits))
}

// CalibrationProfile bounds the parameter ranges a synthetic calibration is
// drawn from. Defaults (see SuperconductingProfile, TrappedIonProfile)
// follow published IBMQ and IonQ figures.
type CalibrationProfile struct {
	T1Lo, T1Hi           float64 // seconds
	T2Lo, T2Hi           float64
	Err1QLo, Err1QHi     float64
	Err2QLo, Err2QHi     float64
	ReadoutLo, ReadoutHi float64
	Dur1Q, Dur2Q         float64 // seconds per gate
	QualityScale         float64 // >1 degrades errors uniformly
}

// SuperconductingProfile mirrors typical IBMQ Falcon-class numbers:
// T1/T2 ~ 50–200 µs, 1q errors ~2e-4–1e-3, CX errors ~5e-3–3e-2,
// readout 1–5 %, 35 ns 1q / 300 ns 2q gates.
func SuperconductingProfile() CalibrationProfile {
	return CalibrationProfile{
		T1Lo: 50e-6, T1Hi: 200e-6,
		T2Lo: 30e-6, T2Hi: 150e-6,
		Err1QLo: 2e-4, Err1QHi: 1e-3,
		Err2QLo: 5e-3, Err2QHi: 3e-2,
		ReadoutLo: 0.01, ReadoutHi: 0.05,
		Dur1Q: 35e-9, Dur2Q: 300e-9,
		QualityScale: 1,
	}
}

// TrappedIonProfile mirrors IonQ-class numbers: second-scale coherence,
// much slower gates, low 1q error, ~1 % 2q error.
func TrappedIonProfile() CalibrationProfile {
	return CalibrationProfile{
		T1Lo: 1, T1Hi: 10,
		T2Lo: 0.2, T2Hi: 1,
		Err1QLo: 5e-5, Err1QHi: 5e-4,
		Err2QLo: 5e-3, Err2QHi: 2e-2,
		ReadoutLo: 0.003, ReadoutHi: 0.01,
		Dur1Q: 10e-6, Dur2Q: 200e-6,
		QualityScale: 1,
	}
}

// GenerateCalibration draws a calibration snapshot for the topology from
// the profile using the deterministic RNG. Error-like quantities are drawn
// log-uniformly (they scatter over orders of magnitude on real devices) and
// scaled by QualityScale, clamped to 0.5.
func GenerateCalibration(t *Topology, p CalibrationProfile, rng *mathx.RNG) *Calibration {
	scale := p.QualityScale
	if scale <= 0 {
		scale = 1
	}
	clamp := func(v float64) float64 {
		if v > 0.5 {
			return 0.5
		}
		return v
	}
	cal := &Calibration{
		Qubits:  make([]QubitCalibration, t.N()),
		Gates1Q: make([]GateCalibration, t.N()),
		Gates2Q: make(map[Edge]GateCalibration, len(t.Edges())),
	}
	for q := 0; q < t.N(); q++ {
		t1 := rng.LogUniform(p.T1Lo, p.T1Hi)
		t2 := rng.LogUniform(p.T2Lo, p.T2Hi)
		// Physical constraint: T2 <= 2·T1.
		if t2 > 2*t1 {
			t2 = 2 * t1
		}
		cal.Qubits[q] = QubitCalibration{
			T1:           t1,
			T2:           t2,
			ReadoutError: clamp(rng.LogUniform(p.ReadoutLo, p.ReadoutHi) * scale),
		}
		cal.Gates1Q[q] = GateCalibration{
			Error:    clamp(rng.LogUniform(p.Err1QLo, p.Err1QHi) * scale),
			Duration: p.Dur1Q,
		}
	}
	for _, e := range t.Edges() {
		cal.Gates2Q[e] = GateCalibration{
			Error:    clamp(rng.LogUniform(p.Err2QLo, p.Err2QHi) * scale),
			Duration: p.Dur2Q,
		}
	}
	return cal
}
