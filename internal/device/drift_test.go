package device

import (
	"math"
	"testing"
)

func TestDriftedValidation(t *testing.T) {
	if _, err := Drifted(nil, 0.5, 1); err == nil {
		t.Error("nil backend should error")
	}
	b, _ := ByName("galway")
	if _, err := Drifted(b, -1, 1); err == nil {
		t.Error("negative severity should error")
	}
}

func TestDriftedZeroSeverityIsIdentity(t *testing.T) {
	b, _ := ByName("galway")
	d, err := Drifted(b, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b.Calibration.Qubits {
		if d.Calibration.Qubits[i] != b.Calibration.Qubits[i] {
			t.Fatalf("qubit %d changed under zero drift", i)
		}
	}
}

func TestDriftedChangesCalibration(t *testing.T) {
	b, _ := ByName("galway")
	d, err := Drifted(b, 0.8, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Name == b.Name {
		t.Error("drifted backend should be renamed")
	}
	changed := 0
	for i := range b.Calibration.Qubits {
		if math.Abs(d.Calibration.Qubits[i].T1-b.Calibration.Qubits[i].T1) > 1e-12 {
			changed++
		}
		if d.Calibration.Qubits[i].T2 > 2*d.Calibration.Qubits[i].T1+1e-12 {
			t.Errorf("qubit %d violates T2 <= 2T1 after drift", i)
		}
	}
	if changed == 0 {
		t.Error("drift changed nothing")
	}
	// Topology must be shared, untouched.
	if len(d.Topology.Edges()) != len(b.Topology.Edges()) {
		t.Error("topology changed")
	}
}

func TestDriftedDeterministic(t *testing.T) {
	b, _ := ByName("galway")
	d1, _ := Drifted(b, 0.5, 42)
	d2, _ := Drifted(b, 0.5, 42)
	for i := range d1.Calibration.Qubits {
		if d1.Calibration.Qubits[i] != d2.Calibration.Qubits[i] {
			t.Fatal("drift not deterministic")
		}
	}
}

func TestCalibrationSeries(t *testing.T) {
	b, _ := ByName("eldorado")
	series, err := CalibrationSeries(b, 4, 0.3, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("series length %d", len(series))
	}
	if series[0] != b {
		t.Error("day 0 should be the original")
	}
	// Divergence from day 0 should not shrink with time (statistically;
	// assert it grows from day 1 to the last day on average T1 distance).
	dist := func(x *Backend) float64 {
		var s float64
		for i := range x.Calibration.Qubits {
			s += math.Abs(math.Log(x.Calibration.Qubits[i].T1 / b.Calibration.Qubits[i].T1))
		}
		return s
	}
	if dist(series[3]) <= 0 {
		t.Error("no cumulative drift by day 3")
	}
	if _, err := CalibrationSeries(b, 0, 0.3, 1); err == nil {
		t.Error("zero days should error")
	}
}
