package device

import (
	"fmt"
	"math"

	"qbeep/internal/mathx"
)

// Drifted returns a copy of the backend whose calibration has drifted
// from the published snapshot by the given severity: every error-like
// quantity is multiplied by a log-normal factor with sigma = severity
// (mean-preserving), and T1/T2 by the inverse of an independent factor.
//
// Real devices drift between daily calibrations; the paper (§4.2)
// attributes most of Q-BEEP's regressions to exactly this — λ estimated
// from stale statistics. Pair a Drifted backend (as the executing device)
// with the original (as the λ source) to reproduce that failure mode; the
// stale-calibration tests and ablation do.
func Drifted(b *Backend, severity float64, seed uint64) (*Backend, error) {
	if b == nil {
		return nil, fmt.Errorf("device: nil backend")
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if severity < 0 {
		return nil, fmt.Errorf("device: negative drift severity %v", severity)
	}
	rng := mathx.NewRNG(seed)
	factor := func() float64 {
		if severity == 0 {
			return 1
		}
		return lognormalMean1(rng, severity)
	}
	clamp := func(v float64) float64 {
		if v > 0.5 {
			return 0.5
		}
		if v < 0 {
			return 0
		}
		return v
	}
	cal := &Calibration{
		Qubits:  make([]QubitCalibration, len(b.Calibration.Qubits)),
		Gates1Q: make([]GateCalibration, len(b.Calibration.Gates1Q)),
		Gates2Q: make(map[Edge]GateCalibration, len(b.Calibration.Gates2Q)),
	}
	for i, q := range b.Calibration.Qubits {
		t1 := q.T1 / factor()
		t2 := q.T2 / factor()
		if t2 > 2*t1 {
			t2 = 2 * t1
		}
		cal.Qubits[i] = QubitCalibration{
			T1:           t1,
			T2:           t2,
			ReadoutError: clamp(q.ReadoutError * factor()),
		}
	}
	for i, g := range b.Calibration.Gates1Q {
		cal.Gates1Q[i] = GateCalibration{
			Error:    clamp(g.Error * factor()),
			Duration: g.Duration,
		}
	}
	for _, e := range b.Topology.Edges() {
		g := b.Calibration.Gates2Q[e]
		cal.Gates2Q[e] = GateCalibration{
			Error:    clamp(g.Error * factor()),
			Duration: g.Duration,
		}
	}
	out := &Backend{
		Name:         b.Name + "-drifted",
		Architecture: b.Architecture,
		Topology:     b.Topology,
		Calibration:  cal,
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// lognormalMean1 draws exp(σZ - σ²/2): log-normal with unit mean.
func lognormalMean1(rng *mathx.RNG, sigma float64) float64 {
	return math.Exp(sigma*rng.NormFloat64() - sigma*sigma/2)
}

// CalibrationSeries generates days successive calibration snapshots for
// the backend, each drifting further from the published one — a synthetic
// stand-in for IBMQ's daily calibration history. Element 0 is the
// original.
func CalibrationSeries(b *Backend, days int, perDaySeverity float64, seed uint64) ([]*Backend, error) {
	if days <= 0 {
		return nil, fmt.Errorf("device: days %d must be positive", days)
	}
	out := make([]*Backend, days)
	out[0] = b
	cur := b
	for d := 1; d < days; d++ {
		next, err := Drifted(cur, perDaySeverity, seed+uint64(d))
		if err != nil {
			return nil, err
		}
		next.Name = fmt.Sprintf("%s-day%d", b.Name, d)
		out[d] = next
		cur = next
	}
	return out, nil
}
