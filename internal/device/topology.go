// Package device models quantum processors the way Q-BEEP consumes them: a
// qubit topology (coupling map) plus runtime calibration statistics (T1/T2,
// gate errors and durations, readout error). It ships a catalog of 16
// synthetic IBMQ-like superconducting backends and one trapped-ion backend,
// substituting for the real machines in the paper's evaluation (see
// DESIGN.md §2).
package device

import (
	"fmt"
	"sort"
)

// Edge is an undirected qubit coupling, stored with A < B.
type Edge struct {
	A, B int
}

// NormEdge returns the canonical (A < B) form of an edge.
func NormEdge(a, b int) Edge {
	if a > b {
		a, b = b, a
	}
	return Edge{A: a, B: b}
}

// Topology is an undirected coupling graph over n qubits.
type Topology struct {
	n     int
	edges map[Edge]bool
	adj   [][]int
}

// NewTopology builds a topology from an edge list. Edges must connect
// distinct in-range qubits; duplicates are merged.
func NewTopology(n int, edges []Edge) (*Topology, error) {
	if n <= 0 {
		return nil, fmt.Errorf("device: width %d must be positive", n)
	}
	t := &Topology{n: n, edges: make(map[Edge]bool), adj: make([][]int, n)}
	for _, e := range edges {
		if e.A == e.B {
			return nil, fmt.Errorf("device: self-loop on qubit %d", e.A)
		}
		if e.A < 0 || e.A >= n || e.B < 0 || e.B >= n {
			return nil, fmt.Errorf("device: edge (%d,%d) outside [0,%d)", e.A, e.B, n)
		}
		t.edges[NormEdge(e.A, e.B)] = true
	}
	for e := range t.edges {
		t.adj[e.A] = append(t.adj[e.A], e.B)
		t.adj[e.B] = append(t.adj[e.B], e.A)
	}
	for _, a := range t.adj {
		sort.Ints(a)
	}
	return t, nil
}

// N returns the number of qubits.
func (t *Topology) N() int { return t.n }

// Connected reports whether qubits a and b are directly coupled.
func (t *Topology) Connected(a, b int) bool { return t.edges[NormEdge(a, b)] }

// Neighbors returns the sorted neighbor list of qubit q.
func (t *Topology) Neighbors(q int) []int { return t.adj[q] }

// Edges returns all edges sorted lexicographically.
func (t *Topology) Edges() []Edge {
	out := make([]Edge, 0, len(t.edges))
	for e := range t.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// ShortestPath returns a shortest qubit path from a to b (inclusive) via
// BFS, or an error if disconnected. Ties break toward smaller qubit
// indices, keeping routing deterministic.
func (t *Topology) ShortestPath(a, b int) ([]int, error) {
	if a < 0 || a >= t.n || b < 0 || b >= t.n {
		return nil, fmt.Errorf("device: path endpoints (%d,%d) outside [0,%d)", a, b, t.n)
	}
	if a == b {
		return []int{a}, nil
	}
	prev := make([]int, t.n)
	for i := range prev {
		prev[i] = -1
	}
	prev[a] = a
	queue := []int{a}
	for len(queue) > 0 {
		q := queue[0]
		queue = queue[1:]
		for _, nb := range t.adj[q] {
			if prev[nb] != -1 {
				continue
			}
			prev[nb] = q
			if nb == b {
				var path []int
				for cur := b; cur != a; cur = prev[cur] {
					path = append(path, cur)
				}
				path = append(path, a)
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path, nil
			}
			queue = append(queue, nb)
		}
	}
	return nil, fmt.Errorf("device: qubits %d and %d are disconnected", a, b)
}

// Distance returns the coupling-graph distance between a and b.
func (t *Topology) Distance(a, b int) (int, error) {
	p, err := t.ShortestPath(a, b)
	if err != nil {
		return 0, err
	}
	return len(p) - 1, nil
}

// IsConnected reports whether the whole graph is one component.
func (t *Topology) IsConnected() bool {
	if t.n == 0 {
		return true
	}
	seen := make([]bool, t.n)
	seen[0] = true
	stack := []int{0}
	count := 1
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range t.adj[q] {
			if !seen[nb] {
				seen[nb] = true
				count++
				stack = append(stack, nb)
			}
		}
	}
	return count == t.n
}

// Standard topology generators.

// Linear returns a 0-1-2-...-n-1 chain.
func Linear(n int) (*Topology, error) {
	edges := make([]Edge, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, Edge{A: i, B: i + 1})
	}
	return NewTopology(n, edges)
}

// Ring returns a cycle.
func Ring(n int) (*Topology, error) {
	if n < 3 {
		return nil, fmt.Errorf("device: ring needs >= 3 qubits, got %d", n)
	}
	edges := make([]Edge, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, NormEdge(i, (i+1)%n))
	}
	return NewTopology(n, edges)
}

// Grid returns a rows×cols lattice.
func Grid(rows, cols int) (*Topology, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("device: grid %dx%d invalid", rows, cols)
	}
	n := rows * cols
	var edges []Edge
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			q := r*cols + c
			if c+1 < cols {
				edges = append(edges, Edge{A: q, B: q + 1})
			}
			if r+1 < rows {
				edges = append(edges, Edge{A: q, B: q + cols})
			}
		}
	}
	return NewTopology(n, edges)
}

// AllToAll returns a complete coupling graph — the trapped-ion abstraction.
func AllToAll(n int) (*Topology, error) {
	var edges []Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, Edge{A: i, B: j})
		}
	}
	return NewTopology(n, edges)
}

// TShape returns IBM's 5-qubit "T"/bowtie-like layout used by the small
// Quito/Belem/Lima class devices: 0-1, 1-2, 1-3, 3-4.
func TShape() (*Topology, error) {
	return NewTopology(5, []Edge{{0, 1}, {1, 2}, {1, 3}, {3, 4}})
}

// HeavyHex returns an approximation of IBM's heavy-hex lattice with the
// given number of unit cells per row and rows. Heavy-hex places qubits on
// both the vertices and the edges of a hexagonal lattice; the resulting
// sparse degree-2/3 graph is what IBMQ Falcon (27q), Hummingbird (65q) and
// Eagle (127q) processors use. The construction below follows IBM's rows of
// horizontal chains linked by vertical bridge qubits.
func HeavyHex(rows, rowLen int) (*Topology, error) {
	if rows <= 0 || rowLen < 3 {
		return nil, fmt.Errorf("device: heavy-hex %dx%d invalid", rows, rowLen)
	}
	// Each row is a chain of rowLen qubits; between consecutive rows a
	// bridge qubit connects matching columns every 4 positions, offset by 2
	// on odd rows (the heavy-hex staggering).
	var edges []Edge
	rowStart := make([]int, rows)
	next := 0
	for r := 0; r < rows; r++ {
		rowStart[r] = next
		for i := 0; i+1 < rowLen; i++ {
			edges = append(edges, Edge{A: next + i, B: next + i + 1})
		}
		next += rowLen
	}
	for r := 0; r+1 < rows; r++ {
		offset := 0
		if r%2 == 1 {
			offset = 2
		}
		for col := offset; col < rowLen; col += 4 {
			bridge := next
			next++
			edges = append(edges, Edge{A: rowStart[r] + col, B: bridge})
			edges = append(edges, Edge{A: bridge, B: rowStart[r+1] + col})
		}
	}
	return NewTopology(next, edges)
}
