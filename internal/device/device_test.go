package device

import (
	"encoding/json"
	"testing"
	"testing/quick"

	"qbeep/internal/mathx"
)

func TestNewTopologyValidation(t *testing.T) {
	if _, err := NewTopology(0, nil); err == nil {
		t.Error("zero qubits should error")
	}
	if _, err := NewTopology(3, []Edge{{0, 0}}); err == nil {
		t.Error("self-loop should error")
	}
	if _, err := NewTopology(3, []Edge{{0, 5}}); err == nil {
		t.Error("out-of-range edge should error")
	}
	topo, err := NewTopology(3, []Edge{{0, 1}, {1, 0}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Edges()) != 2 {
		t.Errorf("duplicate edges not merged: %v", topo.Edges())
	}
}

func TestConnectedAndNeighbors(t *testing.T) {
	topo, _ := Linear(4)
	if !topo.Connected(1, 2) || !topo.Connected(2, 1) {
		t.Error("Connected should be symmetric")
	}
	if topo.Connected(0, 3) {
		t.Error("0 and 3 should not be coupled in a chain")
	}
	nb := topo.Neighbors(1)
	if len(nb) != 2 || nb[0] != 0 || nb[1] != 2 {
		t.Errorf("Neighbors(1) = %v", nb)
	}
}

func TestShortestPath(t *testing.T) {
	topo, _ := Linear(5)
	p, err := topo.ShortestPath(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3, 4}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("path = %v", p)
		}
	}
	p, _ = topo.ShortestPath(2, 2)
	if len(p) != 1 || p[0] != 2 {
		t.Errorf("self path = %v", p)
	}
	if _, err := topo.ShortestPath(0, 9); err == nil {
		t.Error("out-of-range endpoint should error")
	}
	// Disconnected graph.
	d, _ := NewTopology(4, []Edge{{0, 1}, {2, 3}})
	if _, err := d.ShortestPath(0, 3); err == nil {
		t.Error("disconnected pair should error")
	}
	if d.IsConnected() {
		t.Error("graph should report disconnected")
	}
}

func TestDistance(t *testing.T) {
	topo, _ := Ring(6)
	d, err := topo.Distance(0, 3)
	if err != nil || d != 3 {
		t.Errorf("ring distance = %d, %v", d, err)
	}
	d, _ = topo.Distance(0, 5)
	if d != 1 {
		t.Errorf("wraparound distance = %d", d)
	}
}

func TestGenerators(t *testing.T) {
	cases := []struct {
		name  string
		topo  func() (*Topology, error)
		n     int
		edges int
	}{
		{"linear5", func() (*Topology, error) { return Linear(5) }, 5, 4},
		{"ring6", func() (*Topology, error) { return Ring(6) }, 6, 6},
		{"grid23", func() (*Topology, error) { return Grid(2, 3) }, 6, 7},
		{"all2all4", func() (*Topology, error) { return AllToAll(4) }, 4, 6},
		{"tshape", TShape, 5, 4},
	}
	for _, c := range cases {
		topo, err := c.topo()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if topo.N() != c.n || len(topo.Edges()) != c.edges {
			t.Errorf("%s: n=%d edges=%d want %d/%d", c.name, topo.N(), len(topo.Edges()), c.n, c.edges)
		}
		if !topo.IsConnected() {
			t.Errorf("%s: not connected", c.name)
		}
	}
	if _, err := Ring(2); err == nil {
		t.Error("tiny ring should error")
	}
	if _, err := Grid(0, 3); err == nil {
		t.Error("zero grid should error")
	}
}

func TestHeavyHex(t *testing.T) {
	topo, err := HeavyHex(3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !topo.IsConnected() {
		t.Error("heavy-hex should be connected")
	}
	if topo.N() <= 27 {
		t.Errorf("heavy-hex 3x9 has %d qubits, expected > 27", topo.N())
	}
	// Heavy-hex is sparse: max degree 3.
	for q := 0; q < topo.N(); q++ {
		if deg := len(topo.Neighbors(q)); deg > 3 {
			t.Errorf("qubit %d degree %d > 3", q, deg)
		}
	}
	if _, err := HeavyHex(0, 9); err == nil {
		t.Error("invalid heavy-hex should error")
	}
}

func TestNormEdge(t *testing.T) {
	if NormEdge(3, 1) != (Edge{A: 1, B: 3}) {
		t.Error("NormEdge did not order")
	}
}

func TestGenerateCalibrationValid(t *testing.T) {
	topo, _ := Grid(3, 3)
	cal := GenerateCalibration(topo, SuperconductingProfile(), mathx.NewRNG(1))
	if err := cal.Validate(topo); err != nil {
		t.Fatal(err)
	}
	for i, q := range cal.Qubits {
		if q.T2 > 2*q.T1 {
			t.Errorf("qubit %d violates T2 <= 2T1: %v %v", i, q.T1, q.T2)
		}
	}
	if cal.MeanT1() <= 0 || cal.MeanT2() <= 0 || cal.MeanReadoutError() <= 0 {
		t.Error("means should be positive")
	}
}

func TestGenerateCalibrationDeterministic(t *testing.T) {
	topo, _ := Linear(5)
	a := GenerateCalibration(topo, SuperconductingProfile(), mathx.NewRNG(9))
	b := GenerateCalibration(topo, SuperconductingProfile(), mathx.NewRNG(9))
	for i := range a.Qubits {
		if a.Qubits[i] != b.Qubits[i] {
			t.Fatal("same seed produced different calibration")
		}
	}
}

func TestQualityScaleDegrades(t *testing.T) {
	topo, _ := Linear(8)
	good := SuperconductingProfile()
	bad := SuperconductingProfile()
	bad.QualityScale = 3
	a := GenerateCalibration(topo, good, mathx.NewRNG(4))
	b := GenerateCalibration(topo, bad, mathx.NewRNG(4))
	if b.MeanReadoutError() <= a.MeanReadoutError() {
		t.Errorf("QualityScale did not degrade readout: %v vs %v",
			a.MeanReadoutError(), b.MeanReadoutError())
	}
}

func TestCalibrationValidateErrors(t *testing.T) {
	topo, _ := Linear(3)
	cal := GenerateCalibration(topo, SuperconductingProfile(), mathx.NewRNG(1))
	// Missing edge calibration.
	broken := &Calibration{Qubits: cal.Qubits, Gates1Q: cal.Gates1Q,
		Gates2Q: map[Edge]GateCalibration{}}
	if err := broken.Validate(topo); err == nil {
		t.Error("missing 2q calibration should error")
	}
	short := &Calibration{Qubits: cal.Qubits[:2], Gates1Q: cal.Gates1Q, Gates2Q: cal.Gates2Q}
	if err := short.Validate(topo); err == nil {
		t.Error("short qubit list should error")
	}
	negT := &Calibration{Qubits: append([]QubitCalibration(nil), cal.Qubits...),
		Gates1Q: cal.Gates1Q, Gates2Q: cal.Gates2Q}
	negT.Qubits[0].T1 = -1
	if err := negT.Validate(topo); err == nil {
		t.Error("negative T1 should error")
	}
}

func TestCatalogShape(t *testing.T) {
	backends, err := Catalog()
	if err != nil {
		t.Fatal(err)
	}
	if len(backends) != 16 {
		t.Fatalf("catalog size %d want 16", len(backends))
	}
	seen := map[string]bool{}
	minN, maxN := 1<<30, 0
	for _, b := range backends {
		if seen[b.Name] {
			t.Errorf("duplicate backend name %q", b.Name)
		}
		seen[b.Name] = true
		if err := b.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
		if b.Architecture != Superconducting {
			t.Errorf("%s: architecture %s", b.Name, b.Architecture)
		}
		if b.N() < minN {
			minN = b.N()
		}
		if b.N() > maxN {
			maxN = b.N()
		}
	}
	if minN != 5 {
		t.Errorf("smallest backend %d qubits, want 5", minN)
	}
	if maxN < 100 {
		t.Errorf("largest backend %d qubits, want >= 100 (Eagle-class)", maxN)
	}
}

func TestCatalogDeterministic(t *testing.T) {
	a, _ := Catalog()
	b, _ := Catalog()
	for i := range a {
		if a[i].Calibration.Qubits[0] != b[i].Calibration.Qubits[0] {
			t.Fatal("catalog not deterministic")
		}
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("galway")
	if err != nil {
		t.Fatal(err)
	}
	if b.Name != "galway" {
		t.Errorf("got %q", b.Name)
	}
	if _, err := ByName("nowhere"); err == nil {
		t.Error("unknown name should error")
	}
}

func TestIonBackend(t *testing.T) {
	b, err := IonBackend()
	if err != nil {
		t.Fatal(err)
	}
	if b.Architecture != TrappedIon || b.N() != 5 {
		t.Errorf("ion backend: %s %d qubits", b.Architecture, b.N())
	}
	// All-to-all: every pair coupled.
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			if !b.Topology.Connected(i, j) {
				t.Errorf("ion backend missing coupling (%d,%d)", i, j)
			}
		}
	}
	// Ion coherence should dominate superconducting.
	sc, _ := ByName("auckland")
	if b.Calibration.MeanT1() <= sc.Calibration.MeanT1() {
		t.Error("ion T1 should exceed superconducting T1")
	}
}

func TestCatalogSubset(t *testing.T) {
	subset, err := CatalogSubset(8, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(subset) != 8 {
		t.Fatalf("subset size %d", len(subset))
	}
	for _, b := range subset {
		if b.N() < 12 {
			t.Errorf("%s has %d qubits < 12", b.Name, b.N())
		}
	}
	if _, err := CatalogSubset(100, 5); err == nil {
		t.Error("oversized request should error")
	}
}

func TestBackendJSONRoundTrip(t *testing.T) {
	orig, err := ByName("eldorado")
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Backend
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != orig.Name || back.N() != orig.N() {
		t.Error("identity fields lost")
	}
	if len(back.Topology.Edges()) != len(orig.Topology.Edges()) {
		t.Error("edges lost")
	}
	for _, e := range orig.Topology.Edges() {
		if back.Calibration.Gates2Q[e] != orig.Calibration.Gates2Q[e] {
			t.Errorf("2q calibration for %v lost", e)
		}
	}
	for i := range orig.Calibration.Qubits {
		if back.Calibration.Qubits[i] != orig.Calibration.Qubits[i] {
			t.Errorf("qubit %d calibration lost", i)
		}
	}
}

func TestBackendUnmarshalRejectsBad(t *testing.T) {
	var b Backend
	if err := json.Unmarshal([]byte(`{"name":"x","num_qubits":0}`), &b); err == nil {
		t.Error("zero qubits should fail validation")
	}
	if err := json.Unmarshal([]byte(`{bad json`), &b); err == nil {
		t.Error("malformed json should error")
	}
}

func TestShortestPathIsShortest(t *testing.T) {
	topo, _ := Grid(4, 4)
	f := func(aRaw, bRaw uint8) bool {
		a, b := int(aRaw%16), int(bRaw%16)
		p, err := topo.ShortestPath(a, b)
		if err != nil {
			return false
		}
		// Path endpoints and adjacency.
		if p[0] != a || p[len(p)-1] != b {
			return false
		}
		for i := 0; i+1 < len(p); i++ {
			if !topo.Connected(p[i], p[i+1]) {
				return false
			}
		}
		// Manhattan distance on the grid is the true shortest length.
		manhattan := abs(a/4-b/4) + abs(a%4-b%4)
		return len(p)-1 == manhattan
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestGate2Q(t *testing.T) {
	b, _ := ByName("carthage")
	if _, ok := b.Calibration.Gate2Q(0, 1); !ok {
		t.Error("coupled pair should have calibration")
	}
	if _, ok := b.Calibration.Gate2Q(1, 0); !ok {
		t.Error("reversed pair should resolve via NormEdge")
	}
	if _, ok := b.Calibration.Gate2Q(0, 6); ok {
		t.Error("uncoupled pair should miss")
	}
}
