//go:build !linux

package obs

// threadCPUNanos is unavailable off Linux; spans record no CPU delta.
func threadCPUNanos() int64 { return 0 }

// processCPUSeconds is unavailable off Linux.
func processCPUSeconds() float64 { return 0 }
