package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"testing"
)

func TestDefaultLoggerDiscards(t *testing.T) {
	SetLogger(nil) // restore default
	l := Logger()
	if l.Enabled(nil, slog.LevelError) {
		t.Fatal("default logger should report every level disabled")
	}
	l.Error("this must go nowhere")
}

func TestConfigureLevels(t *testing.T) {
	defer SetLogger(nil)
	var buf bytes.Buffer
	if err := Configure(&buf, "warn", false); err != nil {
		t.Fatal(err)
	}
	Logger().Info("hidden")
	Logger().Warn("shown", "k", "v")
	out := buf.String()
	if strings.Contains(out, "hidden") || !strings.Contains(out, "shown") {
		t.Fatalf("leveled output wrong: %q", out)
	}
}

func TestConfigureJSON(t *testing.T) {
	defer SetLogger(nil)
	var buf bytes.Buffer
	if err := Configure(&buf, "info", true); err != nil {
		t.Fatal(err)
	}
	Logger().Info("event", "answer", 42)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("not JSON: %q (%v)", buf.String(), err)
	}
	if rec["msg"] != "event" || rec["answer"] != float64(42) {
		t.Fatalf("record = %v", rec)
	}
}

func TestConfigureOffAndBadLevel(t *testing.T) {
	defer SetLogger(nil)
	var buf bytes.Buffer
	if err := Configure(&buf, "off", false); err != nil {
		t.Fatal(err)
	}
	Logger().Error("nope")
	if buf.Len() != 0 {
		t.Fatalf("off level still wrote %q", buf.String())
	}
	if err := Configure(&buf, "loud", false); err == nil {
		t.Fatal("expected error for unknown level")
	}
}

func TestAddLogFlags(t *testing.T) {
	defer SetLogger(nil)
	defer SetSpanSink(nil)
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	lf := AddLogFlags(fs)
	if err := fs.Parse([]string{"-log-level", "debug", "-log-json"}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := lf.Apply(&buf); err != nil {
		t.Fatal(err)
	}
	if !Logger().Enabled(nil, slog.LevelDebug) {
		t.Fatal("debug level not applied")
	}
	if !TracingEnabled() {
		t.Fatal("debug level should install the log span sink")
	}
}

// TestServeDebug is the acceptance check for -debug-addr: the server
// must answer /debug/pprof/ and /debug/vars, and the vars payload must
// include the obs metrics registry.
func TestServeDebug(t *testing.T) {
	Default.Counter("test.debug.hits").Inc()
	ds, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + ds.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index looks wrong: %.200s", body)
	}
	vars := get("/debug/vars")
	if !strings.Contains(vars, "qbeep_metrics") || !strings.Contains(vars, "test.debug.hits") {
		t.Fatalf("expvar missing metrics registry: %.300s", vars)
	}
}
