// Package obs is the pipeline's zero-dependency observability layer:
// structured logging (log/slog), a lock-cheap metrics registry
// (counters, gauges, timers, histograms, exported through expvar), and
// lightweight span tracing with a pluggable sink.
//
// Everything is off by default and designed so that disabled
// instrumentation costs ~nothing on hot paths: the default logger
// discards records before formatting them, spans are value types that
// allocate only when a sink is installed, and metric updates are single
// atomic operations. CLIs opt in with Configure (or the shared
// -log-level/-log-json flags from AddLogFlags) and ServeDebug.
package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync/atomic"
)

// logger holds the process-wide structured logger. The default discards
// everything (its handler reports every level as disabled), so library
// code can log unconditionally without polluting test output or paying
// formatting costs.
var logger atomic.Pointer[slog.Logger]

func init() {
	logger.Store(slog.New(noopHandler{}))
}

// Logger returns the current structured logger. The result is safe to
// cache per call site but not across Configure/SetLogger calls.
func Logger() *slog.Logger {
	return logger.Load()
}

// SetLogger installs l as the process-wide logger. A nil l restores the
// discarding default.
func SetLogger(l *slog.Logger) {
	if l == nil {
		l = slog.New(noopHandler{})
	}
	logger.Store(l)
}

// Configure installs a leveled handler writing to w ("text" keys or JSON
// when jsonFormat is set). level is one of "debug", "info", "warn",
// "error", or "off" (case-insensitive); "off" restores the discarding
// default regardless of format.
func Configure(w io.Writer, level string, jsonFormat bool) error {
	if strings.EqualFold(level, "off") {
		SetLogger(nil)
		return nil
	}
	lv, err := ParseLevel(level)
	if err != nil {
		return err
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	if jsonFormat {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	SetLogger(slog.New(h))
	return nil
}

// ParseLevel maps a level name to its slog.Level.
func ParseLevel(level string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(level)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, error, or off)", level)
}

// noopHandler is a slog.Handler whose Enabled always reports false, so
// disabled logging skips both formatting and the Handle call.
type noopHandler struct{}

func (noopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (noopHandler) Handle(context.Context, slog.Record) error { return nil }
func (noopHandler) WithAttrs([]slog.Attr) slog.Handler        { return noopHandler{} }
func (noopHandler) WithGroup(string) slog.Handler             { return noopHandler{} }
