package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one span attribute.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// SpanEvent is the record a sink receives when a span ends.
//
// TraceID groups every span of one logical operation (one CLI pipeline
// run, one Execute call, ...). SpanID identifies the span within its
// trace and ParentID names the span that was active in the context when
// Start was called (0 for a trace root). IDs are allocated sequentially
// per trace — the root is span 1 and sequential code numbers its spans
// in start order — so single-threaded traces are fully deterministic
// and golden tests over them stay stable.
//
// CPU, AllocBytes and AllocObjects are the span's resource deltas,
// present only when capture was on (SetResourceCapture) while the span
// ran — optional wire fields, so traces recorded before resource
// capture existed still parse. See resource.go for what the deltas do
// and do not attribute under concurrent fan-out.
type SpanEvent struct {
	Name         string        `json:"name"`
	TraceID      uint64        `json:"trace"`
	SpanID       uint64        `json:"span"`
	ParentID     uint64        `json:"parent,omitempty"`
	Start        time.Time     `json:"start"`
	Duration     time.Duration `json:"duration"`
	CPU          time.Duration `json:"cpu,omitempty"`
	AllocBytes   uint64        `json:"alloc_bytes,omitempty"`
	AllocObjects uint64        `json:"alloc_objects,omitempty"`
	Attrs        []Attr        `json:"attrs,omitempty"`
}

// SpanSink receives completed spans. Implementations must be safe for
// concurrent use.
type SpanSink interface {
	OnSpan(SpanEvent)
}

// SinkFunc adapts a function to the SpanSink interface.
type SinkFunc func(SpanEvent)

// OnSpan implements SpanSink.
func (f SinkFunc) OnSpan(e SpanEvent) { f(e) }

// sinkBox wraps the interface so a single atomic pointer can swap it.
type sinkBox struct {
	sink SpanSink
}

var spanSink atomic.Pointer[sinkBox]

// SetSpanSink installs the destination for completed spans; nil disables
// tracing (the default). While disabled, Start and StartSpan return an
// inert Span whose methods are no-ops and allocate nothing.
func SetSpanSink(s SpanSink) {
	if s == nil {
		spanSink.Store(nil)
		return
	}
	spanSink.Store(&sinkBox{sink: s})
}

// TracingEnabled reports whether a span sink is installed.
func TracingEnabled() bool {
	b := spanSink.Load()
	return b != nil && b.sink != nil
}

// traceState is the shared per-trace identity: the trace ID plus the
// span-ID allocator every span of the trace draws from.
type traceState struct {
	id   uint64
	next atomic.Uint64 // last span ID handed out
}

// nextTraceID numbers traces process-wide, starting at 1.
var nextTraceID atomic.Uint64

// resetTraceIDs rewinds the process trace counter — test helper only,
// so golden assertions can rely on trace 1.
func resetTraceIDs() { nextTraceID.Store(0) }

// ctxKey carries the active span reference through a context.
type ctxKey struct{}

// spanRef is what lives in the context: enough to parent a child span.
type spanRef struct {
	trace  *traceState
	spanID uint64
}

// Span is a lightweight timed region. The zero value (returned while
// tracing is disabled) is inert.
type Span struct {
	name     string
	start    time.Time
	sink     SpanSink
	trace    *traceState
	spanID   uint64
	parentID uint64
	attrs    []Attr
	res      resourceSample
	hasRes   bool
}

// Start begins a span as a child of the span recorded in ctx (a new
// trace root when ctx carries none) and returns a derived context that
// parents further Start calls under the new span. The sink is captured
// at start so a span outlives sink swaps consistently. While tracing is
// disabled it returns ctx unchanged and an inert Span at zero cost.
func Start(ctx context.Context, name string) (context.Context, Span) {
	b := spanSink.Load()
	if b == nil || b.sink == nil {
		return ctx, Span{}
	}
	if ctx == nil {
		ctx = context.Background() //qbeep:allow-ctx nil-ctx normalization: Start tolerates nil for legacy callers
	}
	var ts *traceState
	var parent uint64
	if ref, ok := ctx.Value(ctxKey{}).(spanRef); ok && ref.trace != nil {
		ts, parent = ref.trace, ref.spanID
	} else {
		ts = &traceState{id: nextTraceID.Add(1)}
	}
	id := ts.next.Add(1)
	sp := Span{
		name:     name,
		start:    time.Now(),
		sink:     b.sink,
		trace:    ts,
		spanID:   id,
		parentID: parent,
	}
	if resourceCapture.Load() {
		sp.hasRes = true
		sp.res = readResources()
	}
	return context.WithValue(ctx, ctxKey{}, spanRef{trace: ts, spanID: id}), sp
}

// TraceIDFrom returns the trace ID of the span active in ctx, or 0 when
// ctx carries none — the hook metric call sites use to stamp histogram
// observations with the trace that produced them (Histogram.ObserveTrace).
func TraceIDFrom(ctx context.Context) uint64 {
	if ctx == nil {
		return 0
	}
	if ref, ok := ctx.Value(ctxKey{}).(spanRef); ok && ref.trace != nil {
		return ref.trace.id
	}
	return 0
}

// StartSpan begins a root span with no context — each call opens its
// own single-span trace. Retained for call sites with no context to
// thread; prefer Start.
func StartSpan(name string) Span {
	_, sp := Start(context.Background(), name) //qbeep:allow-ctx documented Background-wrapper shim: StartSpan exists for ctx-less call sites
	return sp
}

// SetAttr attaches an attribute to the span; a no-op when inert.
func (s *Span) SetAttr(key string, value any) {
	if s.sink == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// End completes the span and delivers it to the sink; a no-op when
// inert.
func (s *Span) End() {
	if s.sink == nil {
		return
	}
	ev := SpanEvent{
		Name:     s.name,
		Start:    s.start,
		Duration: time.Since(s.start),
		Attrs:    s.attrs,
	}
	if s.hasRes {
		// Deltas clamp at zero: thread migration can rewind the CPU clock
		// and the alloc counters are monotonic but sampled racily.
		now := readResources()
		if d := now.cpuNanos - s.res.cpuNanos; d > 0 {
			ev.CPU = time.Duration(d)
		}
		if now.allocBytes > s.res.allocBytes {
			ev.AllocBytes = now.allocBytes - s.res.allocBytes
		}
		if now.allocObjects > s.res.allocObjects {
			ev.AllocObjects = now.allocObjects - s.res.allocObjects
		}
	}
	if s.trace != nil {
		ev.TraceID = s.trace.id
		ev.SpanID = s.spanID
		ev.ParentID = s.parentID
	}
	s.sink.OnSpan(ev)
	s.sink = nil
}

// CollectorSink accumulates span events in memory — the test and
// debug-dump sink.
type CollectorSink struct {
	mu     sync.Mutex
	events []SpanEvent
}

// OnSpan implements SpanSink.
func (c *CollectorSink) OnSpan(e SpanEvent) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// Events returns a copy of the collected spans.
func (c *CollectorSink) Events() []SpanEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]SpanEvent(nil), c.events...)
}

// LogSink forwards completed spans to the structured logger at debug
// level.
func LogSink() SpanSink {
	return SinkFunc(func(e SpanEvent) {
		args := []any{"span", e.Name, "trace", e.TraceID, "id", e.SpanID,
			"parent", e.ParentID, "duration", e.Duration}
		for _, a := range e.Attrs {
			args = append(args, a.Key, a.Value)
		}
		Logger().Debug("span end", args...)
	})
}

// NDJSONSink streams completed spans as one JSON object per line — the
// cmd/qbeep -trace format, readable back by internal/tracefile and
// cmd/qbeep-trace. Writes are buffered; call Close (or Flush) before
// reading the output. The first write or marshal error latches and
// suppresses further output.
type NDJSONSink struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	err error
}

// NewNDJSONSink wraps w in a buffered NDJSON span writer.
func NewNDJSONSink(w io.Writer) *NDJSONSink {
	return &NDJSONSink{bw: bufio.NewWriter(w)}
}

// OnSpan implements SpanSink.
func (s *NDJSONSink) OnSpan(e SpanEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	data, err := json.Marshal(e)
	if err != nil {
		s.err = err
		return
	}
	if _, err := s.bw.Write(data); err != nil {
		s.err = err
		return
	}
	s.err = s.bw.WriteByte('\n')
}

// Flush drains the buffer and returns the first error seen so far.
func (s *NDJSONSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.bw.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}

// Err returns the first marshal or write error, if any.
func (s *NDJSONSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}
