package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one span attribute.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// SpanEvent is the record a sink receives when a span ends.
type SpanEvent struct {
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration"`
	Attrs    []Attr        `json:"attrs,omitempty"`
}

// SpanSink receives completed spans. Implementations must be safe for
// concurrent use.
type SpanSink interface {
	OnSpan(SpanEvent)
}

// SinkFunc adapts a function to the SpanSink interface.
type SinkFunc func(SpanEvent)

// OnSpan implements SpanSink.
func (f SinkFunc) OnSpan(e SpanEvent) { f(e) }

// sinkBox wraps the interface so a single atomic pointer can swap it.
type sinkBox struct {
	sink SpanSink
}

var spanSink atomic.Pointer[sinkBox]

// SetSpanSink installs the destination for completed spans; nil disables
// tracing (the default). While disabled, StartSpan returns an inert Span
// whose methods are no-ops and allocate nothing.
func SetSpanSink(s SpanSink) {
	if s == nil {
		spanSink.Store(nil)
		return
	}
	spanSink.Store(&sinkBox{sink: s})
}

// TracingEnabled reports whether a span sink is installed.
func TracingEnabled() bool {
	b := spanSink.Load()
	return b != nil && b.sink != nil
}

// Span is a lightweight timed region. The zero value (returned by
// StartSpan while tracing is disabled) is inert.
type Span struct {
	name  string
	start time.Time
	sink  SpanSink
	attrs []Attr
}

// StartSpan begins a span. The sink is captured at start so a span
// outlives sink swaps consistently.
func StartSpan(name string) Span {
	b := spanSink.Load()
	if b == nil || b.sink == nil {
		return Span{}
	}
	return Span{name: name, start: time.Now(), sink: b.sink}
}

// SetAttr attaches an attribute to the span; a no-op when inert.
func (s *Span) SetAttr(key string, value any) {
	if s.sink == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// End completes the span and delivers it to the sink; a no-op when
// inert.
func (s *Span) End() {
	if s.sink == nil {
		return
	}
	s.sink.OnSpan(SpanEvent{
		Name:     s.name,
		Start:    s.start,
		Duration: time.Since(s.start),
		Attrs:    s.attrs,
	})
	s.sink = nil
}

// CollectorSink accumulates span events in memory — the test and
// debug-dump sink.
type CollectorSink struct {
	mu     sync.Mutex
	events []SpanEvent
}

// OnSpan implements SpanSink.
func (c *CollectorSink) OnSpan(e SpanEvent) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// Events returns a copy of the collected spans.
func (c *CollectorSink) Events() []SpanEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]SpanEvent(nil), c.events...)
}

// LogSink forwards completed spans to the structured logger at debug
// level.
func LogSink() SpanSink {
	return SinkFunc(func(e SpanEvent) {
		args := []any{"span", e.Name, "duration", e.Duration}
		for _, a := range e.Attrs {
			args = append(args, a.Key, a.Value)
		}
		Logger().Debug("span end", args...)
	})
}
