package obs

import (
	"sync"
	"testing"
)

func TestSpanDisabledIsInert(t *testing.T) {
	SetSpanSink(nil)
	s := StartSpan("nothing")
	s.SetAttr("k", 1)
	s.End() // must not panic or deliver anywhere
	if TracingEnabled() {
		t.Fatal("tracing reported enabled with nil sink")
	}
}

// TestSpanDisabledPathAllocs is the no-op sink allocation check: with
// tracing disabled, StartSpan/End must allocate nothing, so leaving
// instrumentation in hot paths is free.
func TestSpanDisabledPathAllocs(t *testing.T) {
	SetSpanSink(nil)
	if n := testing.AllocsPerRun(1000, func() {
		s := StartSpan("hot")
		s.End()
	}); n != 0 {
		t.Fatalf("disabled span allocates %v per op", n)
	}
}

func TestSpanDeliversToSink(t *testing.T) {
	var c CollectorSink
	SetSpanSink(&c)
	defer SetSpanSink(nil)

	s := StartSpan("work")
	s.SetAttr("items", 3)
	s.End()
	s.End() // double End must not double-deliver

	ev := c.Events()
	if len(ev) != 1 {
		t.Fatalf("got %d events, want 1", len(ev))
	}
	if ev[0].Name != "work" || ev[0].Duration < 0 {
		t.Fatalf("event = %+v", ev[0])
	}
	if len(ev[0].Attrs) != 1 || ev[0].Attrs[0].Key != "items" {
		t.Fatalf("attrs = %+v", ev[0].Attrs)
	}
}

func TestSpanSinkConcurrent(t *testing.T) {
	var c CollectorSink
	SetSpanSink(&c)
	defer SetSpanSink(nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := StartSpan("p")
				s.End()
			}
		}()
	}
	wg.Wait()
	if got := len(c.Events()); got != 8*200 {
		t.Fatalf("got %d events, want %d", got, 8*200)
	}
}
