package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"
)

func TestSpanDisabledIsInert(t *testing.T) {
	SetSpanSink(nil)
	s := StartSpan("nothing")
	s.SetAttr("k", 1)
	s.End() // must not panic or deliver anywhere
	if TracingEnabled() {
		t.Fatal("tracing reported enabled with nil sink")
	}
}

// TestSpanDisabledPathAllocs is the no-op sink allocation check: with
// tracing disabled, StartSpan/End must allocate nothing, so leaving
// instrumentation in hot paths is free.
func TestSpanDisabledPathAllocs(t *testing.T) {
	SetSpanSink(nil)
	if n := testing.AllocsPerRun(1000, func() {
		s := StartSpan("hot")
		s.End()
	}); n != 0 {
		t.Fatalf("disabled span allocates %v per op", n)
	}
}

func TestSpanDeliversToSink(t *testing.T) {
	var c CollectorSink
	SetSpanSink(&c)
	defer SetSpanSink(nil)

	s := StartSpan("work")
	s.SetAttr("items", 3)
	s.End()
	s.End() // double End must not double-deliver

	ev := c.Events()
	if len(ev) != 1 {
		t.Fatalf("got %d events, want 1", len(ev))
	}
	if ev[0].Name != "work" || ev[0].Duration < 0 {
		t.Fatalf("event = %+v", ev[0])
	}
	if len(ev[0].Attrs) != 1 || ev[0].Attrs[0].Key != "items" {
		t.Fatalf("attrs = %+v", ev[0].Attrs)
	}
}

// TestStartHierarchyDeterministicIDs pins the ID scheme golden tests
// rely on: sequential code numbers spans in start order within one
// trace, the root is span 1 with parent 0, and separate Start roots get
// consecutive trace IDs.
func TestStartHierarchyDeterministicIDs(t *testing.T) {
	resetTraceIDs()
	var c CollectorSink
	SetSpanSink(&c)
	defer SetSpanSink(nil)

	ctx, root := Start(context.Background(), "root")
	ctx1, child := Start(ctx, "child")
	_, grand := Start(ctx1, "grandchild")
	grand.End()
	child.End()
	_, sib := Start(ctx, "sibling")
	sib.End()
	root.End()

	_, other := Start(context.Background(), "other-root")
	other.End()

	byName := map[string]SpanEvent{}
	for _, e := range c.Events() {
		byName[e.Name] = e
	}
	want := []struct {
		name                string
		trace, span, parent uint64
	}{
		{"root", 1, 1, 0},
		{"child", 1, 2, 1},
		{"grandchild", 1, 3, 2},
		{"sibling", 1, 4, 1},
		{"other-root", 2, 1, 0},
	}
	for _, w := range want {
		e, ok := byName[w.name]
		if !ok {
			t.Fatalf("span %q not delivered", w.name)
		}
		if e.TraceID != w.trace || e.SpanID != w.span || e.ParentID != w.parent {
			t.Fatalf("%s: trace/span/parent = %d/%d/%d, want %d/%d/%d",
				w.name, e.TraceID, e.SpanID, e.ParentID, w.trace, w.span, w.parent)
		}
	}
}

// TestStartDisabled: with no sink, Start must return the identical
// context (no WithValue allocation) and an inert span, at zero allocs.
func TestStartDisabled(t *testing.T) {
	SetSpanSink(nil)
	ctx := context.Background()
	got, sp := Start(ctx, "off")
	if got != ctx {
		t.Fatal("disabled Start derived a new context")
	}
	sp.SetAttr("k", 1)
	sp.End()
	if n := testing.AllocsPerRun(1000, func() {
		c, s := Start(ctx, "hot")
		_ = c
		s.End()
	}); n != 0 {
		t.Fatalf("disabled Start allocates %v per op", n)
	}
}

// TestStartNilContext: a nil ctx (statevector runs outside a traced
// pipeline) must not panic, enabled or not.
func TestStartNilContext(t *testing.T) {
	SetSpanSink(nil)
	//lint:ignore SA1012 deliberately exercising the nil-ctx guard
	if _, sp := Start(nil, "nil-off"); sp.sink != nil { //nolint:staticcheck
		t.Fatal("expected inert span")
	}
	var c CollectorSink
	SetSpanSink(&c)
	defer SetSpanSink(nil)
	_, sp := Start(nil, "nil-on") //nolint:staticcheck
	sp.End()
	if ev := c.Events(); len(ev) != 1 || ev[0].TraceID != 0 && ev[0].SpanID != 1 {
		t.Fatalf("events = %+v", ev)
	}
}

// TestNDJSONSinkRoundTrip: spans written through the sink must come back
// as one JSON object per line with the wire field names tracefile and
// qbeep-trace consume.
func TestNDJSONSinkRoundTrip(t *testing.T) {
	resetTraceIDs()
	var buf bytes.Buffer
	sink := NewNDJSONSink(&buf)
	SetSpanSink(sink)
	defer SetSpanSink(nil)

	ctx, root := Start(context.Background(), "pipeline")
	_, child := Start(ctx, "stage")
	child.SetAttr("items", 7)
	child.End()
	root.End()
	SetSpanSink(nil)
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	// End order: the child lands first.
	var rec struct {
		Name   string `json:"name"`
		Trace  uint64 `json:"trace"`
		Span   uint64 `json:"span"`
		Parent uint64 `json:"parent"`
		Start  string `json:"start"`
		Dur    int64  `json:"duration"`
		Attrs  []Attr `json:"attrs"`
	}
	if err := json.Unmarshal(lines[0], &rec); err != nil {
		t.Fatalf("line 0: %v", err)
	}
	if rec.Name != "stage" || rec.Trace != 1 || rec.Span != 2 || rec.Parent != 1 {
		t.Fatalf("child record = %+v", rec)
	}
	if rec.Start == "" || rec.Dur < 0 || len(rec.Attrs) != 1 {
		t.Fatalf("child record incomplete = %+v", rec)
	}
	rec.Parent = 0 // zero values are omitted on the wire; reset before reuse
	if err := json.Unmarshal(lines[1], &rec); err != nil {
		t.Fatalf("line 1: %v", err)
	}
	if rec.Name != "pipeline" || rec.Span != 1 || rec.Parent != 0 {
		t.Fatalf("root record = %+v", rec)
	}
}

func TestNDJSONSinkLatchesWriteError(t *testing.T) {
	sink := NewNDJSONSink(failWriter{})
	sink.OnSpan(SpanEvent{Name: "a"})
	if err := sink.Flush(); err == nil {
		t.Fatal("write error not latched")
	}
	if sink.Err() == nil {
		t.Fatal("Err() lost the latched error")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errFail }

var errFail = errAny("disk full")

type errAny string

func (e errAny) Error() string { return string(e) }

func TestSpanSinkConcurrent(t *testing.T) {
	var c CollectorSink
	SetSpanSink(&c)
	defer SetSpanSink(nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := StartSpan("p")
				s.End()
			}
		}()
	}
	wg.Wait()
	if got := len(c.Events()); got != 8*200 {
		t.Fatalf("got %d events, want %d", got, 8*200)
	}
}
