package obs

import (
	"runtime/metrics"
	"sync/atomic"
)

// Resource-attributed spans: with capture enabled (SetResourceCapture,
// normally via the -trace flag) every span additionally samples, at its
// Start and End boundaries, the calling goroutine's OS-thread CPU clock
// and the process-wide cumulative heap-allocation counters from
// runtime/metrics. The deltas ride on the SpanEvent as optional fields
// (cpu, alloc_bytes, alloc_objects), so the NDJSON schema only grows and
// pre-existing traces still parse.
//
// Attribution caveats (see DESIGN.md §12):
//
//   - CPU time is the thread clock (RUSAGE_THREAD on Linux). Goroutines
//     usually stay on one thread for the life of a short span, but the
//     scheduler may migrate them; a migrated span under-counts its own
//     work and may count a stranger's. Deltas are clamped at zero.
//     Children running on par workers burn *their own* thread clocks, so
//     a fan-out parent's CPU reflects only its coordinating goroutine —
//     sum the par.worker spans for the pool's cost.
//   - Allocation counters are process-wide: a span's delta includes
//     whatever every concurrent goroutine allocated while it was open.
//     In sequential pipeline sections the delta is exact; under fan-out
//     the parent's delta double-counts its children's.
//
// While capture (or tracing itself) is disabled, Start never reaches the
// sampling code, so the disabled hot path stays zero-alloc.

// resourceCapture gates boundary sampling; off by default.
var resourceCapture atomic.Bool

// SetResourceCapture enables or disables per-span resource deltas. It
// only takes effect for spans started while a sink is installed.
func SetResourceCapture(on bool) { resourceCapture.Store(on) }

// ResourceCaptureEnabled reports whether span resource capture is on.
func ResourceCaptureEnabled() bool { return resourceCapture.Load() }

// Cumulative heap-allocation counters (monotonic since process start).
const (
	metricAllocBytes   = "/gc/heap/allocs:bytes"
	metricAllocObjects = "/gc/heap/allocs:objects"
)

// resourceSample is one point-in-time reading of the span-attributed
// resource counters.
type resourceSample struct {
	cpuNanos     int64
	allocBytes   uint64
	allocObjects uint64
}

// readResources samples the thread CPU clock and the cumulative heap
// allocation counters.
func readResources() resourceSample {
	var s [2]metrics.Sample
	s[0].Name = metricAllocBytes
	s[1].Name = metricAllocObjects
	metrics.Read(s[:])
	out := resourceSample{cpuNanos: threadCPUNanos()}
	if s[0].Value.Kind() == metrics.KindUint64 {
		out.allocBytes = s[0].Value.Uint64()
	}
	if s[1].Value.Kind() == metrics.KindUint64 {
		out.allocObjects = s[1].Value.Uint64()
	}
	return out
}
