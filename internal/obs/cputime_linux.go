//go:build linux

package obs

import "syscall"

// threadCPUNanos returns the calling OS thread's consumed CPU time
// (user + system) in nanoseconds, or 0 if the clock is unavailable.
// Granularity is the kernel's rusage accounting (microseconds).
func threadCPUNanos() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_THREAD, &ru); err != nil {
		return 0
	}
	return ru.Utime.Nano() + ru.Stime.Nano()
}

// processCPUSeconds returns the whole process's consumed CPU time
// (user + system) in seconds, or 0 if unavailable.
func processCPUSeconds() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return float64(ru.Utime.Nano()+ru.Stime.Nano()) / 1e9
}
