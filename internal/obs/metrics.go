package obs

import (
	"expvar"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer metric. All methods are
// safe for concurrent use; updates are single atomic adds.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 metric that can move in both directions (last write
// wins). Updates are single atomic stores / CAS loops.
type Gauge struct {
	bits atomic.Uint64
}

// Set records v as the current value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add offsets the current value by v.
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// histWindow is the number of recent observations a histogram keeps for
// quantile estimates. Count/sum/min/max cover the full lifetime.
const histWindow = 512

// histBuckets are the fixed upper bounds of the lifetime bucket counts
// (decades from 10 ns to 10 ks): wide enough for both the duration
// metrics (seconds) and the dimensionless convergence telemetry. An
// implicit +Inf bucket catches the overflow.
var histBuckets = [...]float64{
	1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10, 100, 1e3, 1e4,
}

// Histogram records float64 observations: exact count/sum/min/max and
// fixed exponential bucket counts over the metric's lifetime, plus a
// sliding window of the last histWindow observations for quantiles.
// Observe takes one short mutex hold; hot loops should accumulate
// locally and observe once per batch.
type Histogram struct {
	mu         sync.Mutex
	count      int64
	sum        float64
	min, max   float64
	worstTrace uint64                      // trace ID of the max observation (0 = untraced)
	buckets    [len(histBuckets) + 1]int64 // per-bucket (non-cumulative); last is +Inf
	window     [histWindow]float64
	wlen       int // filled prefix of window
	wpos       int // next overwrite position
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) { h.ObserveTrace(v, 0) }

// ObserveTrace records one sample stamped with the trace it was observed
// under (obs.TraceIDFrom; 0 means untraced). When the sample becomes the
// histogram's worst observation, the trace ID rides along and is exposed
// on /metrics as the <name>_window_worst series — the trace↔metrics link
// that turns "p99 spiked" into "open this trace in qbeep-trace".
func (h *Histogram) ObserveTrace(v float64, trace uint64) {
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
		h.worstTrace = trace
	}
	h.count++
	h.sum += v
	b := len(histBuckets)
	for i, ub := range histBuckets {
		if v <= ub {
			b = i
			break
		}
	}
	h.buckets[b]++
	h.window[h.wpos] = v
	h.wpos = (h.wpos + 1) % histWindow
	if h.wlen < histWindow {
		h.wlen++
	}
	h.mu.Unlock()
}

// BucketBounds returns the shared upper bounds of the lifetime buckets
// (the +Inf bucket is implicit).
func BucketBounds() []float64 {
	return append([]float64(nil), histBuckets[:]...)
}

// CumulativeBuckets returns the Prometheus-style cumulative counts, one
// per bound plus the trailing +Inf bucket (always equal to Count).
func (h *Histogram) CumulativeBuckets() []int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]int64, len(h.buckets))
	var acc int64
	for i, c := range h.buckets {
		acc += c
		out[i] = acc
	}
	return out
}

// Count returns the lifetime number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the lifetime sum of observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// WorstTrace returns the trace ID stamped on the histogram's worst
// (maximum) observation and that observation's value. A zero trace ID
// means the worst sample was recorded outside any trace.
func (h *Histogram) WorstTrace() (trace uint64, value float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.worstTrace, h.max
}

// Quantile estimates the q-quantile (q in [0,1]) over the recent window
// using linear interpolation between order statistics. It returns 0 when
// nothing has been observed.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	samples := append([]float64(nil), h.window[:h.wlen]...)
	h.mu.Unlock()
	if len(samples) == 0 {
		return 0
	}
	sort.Float64s(samples)
	if q <= 0 {
		return samples[0]
	}
	if q >= 1 {
		return samples[len(samples)-1]
	}
	pos := q * float64(len(samples)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(samples) {
		return samples[lo]
	}
	return samples[lo]*(1-frac) + samples[lo+1]*frac
}

// HistogramSnapshot is a point-in-time summary of a histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Snapshot summarizes the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	s := HistogramSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	h.mu.Unlock()
	if s.Count > 0 {
		s.Mean = s.Sum / float64(s.Count)
	}
	s.P50 = h.Quantile(0.50)
	s.P90 = h.Quantile(0.90)
	s.P99 = h.Quantile(0.99)
	return s
}

// Timer is a histogram over durations, recorded in seconds.
type Timer struct {
	Histogram
}

// ObserveDuration records one duration.
func (t *Timer) ObserveDuration(d time.Duration) { t.Observe(d.Seconds()) }

// ObserveDurationTrace records one duration stamped with its trace ID
// (see Histogram.ObserveTrace).
func (t *Timer) ObserveDurationTrace(d time.Duration, trace uint64) {
	t.ObserveTrace(d.Seconds(), trace)
}

// Start returns a stop function that records the elapsed time when
// called: defer timer.Start()().
func (t *Timer) Start() func() {
	t0 := time.Now()
	return func() { t.ObserveDuration(time.Since(t0)) }
}

// Registry is a named collection of metrics. Get-or-create lookups take
// a read lock; callers on hot paths should cache the returned pointer
// (package-level vars are the idiom used across internal/).
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		timers:   map[string]*Timer{},
		hists:    map[string]*Histogram{},
	}
}

// Default is the process-wide registry the pipeline instruments into.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// LabeledGauge returns the gauge for one (family, label=value) series,
// creating it on first use. The registry stays a flat namespace: the
// series is stored under the key `family{label="value"}`, which the
// Prometheus writer splits back into a labeled sample under a single
// # TYPE line per family (qbeep_quality_lambda{backend="istanbul"}).
// Label names are sanitized like metric names; values have quotes,
// backslashes, and control characters escaped. Hot paths should cache
// the returned pointer per (family, value) pair — the lookup builds
// the composite key.
func (r *Registry) LabeledGauge(family, label, value string) *Gauge {
	var b strings.Builder
	b.Grow(len(family) + len(label) + len(value) + 5)
	b.WriteString(family)
	b.WriteByte('{')
	for _, c := range label {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	b.WriteString("=\"")
	for _, c := range value {
		switch c {
		case '\\', '"':
			b.WriteByte('\\')
			b.WriteRune(c)
		case '\n':
			b.WriteString(`\n`)
		default:
			if c < 0x20 {
				b.WriteByte('_')
			} else {
				b.WriteRune(c)
			}
		}
	}
	b.WriteString("\"}")
	return r.Gauge(b.String())
}

// Timer returns the named timer, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	r.mu.RLock()
	t := r.timers[name]
	r.mu.RUnlock()
	if t != nil {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t = r.timers[name]; t == nil {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot returns a JSON-marshalable view of every metric, keyed by
// name within its kind.
func (r *Registry) Snapshot() map[string]any {
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	timers := make(map[string]*Timer, len(r.timers))
	for k, v := range r.timers {
		timers[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.RUnlock()

	out := map[string]any{}
	if len(counters) > 0 {
		m := map[string]int64{}
		for k, v := range counters {
			m[k] = v.Value()
		}
		out["counters"] = m
	}
	if len(gauges) > 0 {
		m := map[string]float64{}
		for k, v := range gauges {
			m[k] = v.Value()
		}
		out["gauges"] = m
	}
	if len(timers) > 0 {
		m := map[string]HistogramSnapshot{}
		for k, v := range timers {
			m[k] = v.Snapshot()
		}
		out["timers_seconds"] = m
	}
	if len(hists) > 0 {
		m := map[string]HistogramSnapshot{}
		for k, v := range hists {
			m[k] = v.Snapshot()
		}
		out["histograms"] = m
	}
	return out
}

// publishOnce guards the process-global expvar namespace, which panics
// on duplicate names.
var publishOnce sync.Once

// PublishExpvar exports the Default registry as the expvar variable
// "qbeep_metrics" (visible at /debug/vars). Safe to call repeatedly.
func PublishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("qbeep_metrics", expvar.Func(func() any {
			return Default.Snapshot()
		}))
	})
}
