package obs

import (
	"flag"
	"fmt"
	"io"
	"os"
)

// LogFlags holds the values of the shared logging flags.
type LogFlags struct {
	Level string
	JSON  bool
}

// AddLogFlags registers the shared -log-level and -log-json flags on fs
// (the default flag set when fs is nil) and returns the destination
// struct. Call Apply after flag parsing.
func AddLogFlags(fs *flag.FlagSet) *LogFlags {
	if fs == nil {
		fs = flag.CommandLine
	}
	f := &LogFlags{}
	fs.StringVar(&f.Level, "log-level", "info", "log level: debug, info, warn, error, off")
	fs.BoolVar(&f.JSON, "log-json", false, "emit logs as JSON lines")
	return f
}

// Apply configures the process logger from the parsed flags, writing to
// w (typically os.Stderr). At debug level it also installs the log span
// sink so pass/stage timings become visible.
func (f *LogFlags) Apply(w io.Writer) error {
	if err := Configure(w, f.Level, f.JSON); err != nil {
		return err
	}
	if lv, err := ParseLevel(f.Level); err == nil && lv < 0 { // debug
		SetSpanSink(LogSink())
	}
	return nil
}

// TraceFlags holds the values of the shared -trace flags. Resources
// additionally captures per-span CPU and allocation deltas (see
// resource.go for attribution caveats); AddTraceFlags defaults it on,
// while the zero value keeps pre-existing wall-time-only behavior.
type TraceFlags struct {
	Path      string
	Resources bool
}

// AddTraceFlags registers the shared -trace and -trace-resources flags
// on fs (the default flag set when fs is nil) and returns the
// destination struct. Call Start after flag parsing.
func AddTraceFlags(fs *flag.FlagSet) *TraceFlags {
	if fs == nil {
		fs = flag.CommandLine
	}
	f := &TraceFlags{}
	fs.StringVar(&f.Path, "trace", "",
		"write spans as NDJSON to this file ('-' = stderr); analyze with qbeep-trace")
	fs.BoolVar(&f.Resources, "trace-resources", true,
		"attach per-span CPU and allocation deltas to -trace spans (see qbeep-trace -hotspots)")
	return f
}

// Start opens the trace destination and installs an NDJSON span sink
// (overriding any sink a debug log level installed), enabling span
// resource capture when Resources is set. The returned stop function
// uninstalls the sink (and resource capture), flushes, and reports the
// first write error; it must run before the process exits for the trace
// to be complete. With an empty path both Start and stop are no-ops.
func (f *TraceFlags) Start() (stop func() error, err error) {
	if f.Path == "" {
		return func() error { return nil }, nil
	}
	var file *os.File
	w := io.Writer(os.Stderr)
	if f.Path != "-" {
		file, err = os.Create(f.Path)
		if err != nil {
			return nil, err
		}
		w = file
	}
	sink := NewNDJSONSink(w)
	if f.Resources {
		SetResourceCapture(true)
	}
	SetSpanSink(sink)
	return func() error {
		SetSpanSink(nil)
		SetResourceCapture(false)
		err := sink.Flush()
		if file != nil {
			if cerr := file.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			return fmt.Errorf("writing -trace output: %w", err)
		}
		return nil
	}, nil
}
