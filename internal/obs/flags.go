package obs

import (
	"flag"
	"io"
)

// LogFlags holds the values of the shared logging flags.
type LogFlags struct {
	Level string
	JSON  bool
}

// AddLogFlags registers the shared -log-level and -log-json flags on fs
// (the default flag set when fs is nil) and returns the destination
// struct. Call Apply after flag parsing.
func AddLogFlags(fs *flag.FlagSet) *LogFlags {
	if fs == nil {
		fs = flag.CommandLine
	}
	f := &LogFlags{}
	fs.StringVar(&f.Level, "log-level", "info", "log level: debug, info, warn, error, off")
	fs.BoolVar(&f.JSON, "log-json", false, "emit logs as JSON lines")
	return f
}

// Apply configures the process logger from the parsed flags, writing to
// w (typically os.Stderr). At debug level it also installs the log span
// sink so pass/stage timings become visible.
func (f *LogFlags) Apply(w io.Writer) error {
	if err := Configure(w, f.Level, f.JSON); err != nil {
		return err
	}
	if lv, err := ParseLevel(f.Level); err == nil && lv < 0 { // debug
		SetSpanSink(LogSink())
	}
	return nil
}
