package obs

import (
	"math"
	"runtime/metrics"
)

// runtimeSamples maps runtime/metrics names to the gauges they feed.
// Sampled on every /metrics scrape (and on demand via SampleRuntime),
// so the gauges cost nothing between scrapes.
var runtimeSamples = []struct {
	name  string
	gauge string
}{
	{"/memory/classes/heap/objects:bytes", "runtime.heap_objects_bytes"},
	{"/memory/classes/total:bytes", "runtime.memory_total_bytes"},
	{"/sched/goroutines:goroutines", "runtime.goroutines"},
	{"/sched/gomaxprocs:threads", "runtime.gomaxprocs"},
	{"/gc/cycles/total:gc-cycles", "runtime.gc_cycles"},
	// The cumulative allocation counters double as the span resource
	// clock (resource.go); exposing them lets a scrape cross-check span
	// alloc deltas against the process-wide rate.
	{metricAllocBytes, "runtime.heap_allocs_bytes"},
	{metricAllocObjects, "runtime.heap_allocs_objects"},
}

// gcPauses is sampled separately: it is a runtime histogram, summarized
// into gauges (last-window p50/max total aren't provided, so we expose
// the distribution's mean and max bucket).
const gcPauses = "/gc/pauses:seconds"

// SampleRuntime reads the Go runtime metrics (heap, scheduler, GC) and
// publishes them as gauges on r: runtime.heap_objects_bytes,
// runtime.memory_total_bytes, runtime.goroutines, runtime.gomaxprocs,
// runtime.gc_cycles, runtime.gc_pause_mean_seconds and
// runtime.gc_pause_max_seconds. Unknown metric names (older runtimes)
// are skipped silently.
func SampleRuntime(r *Registry) {
	samples := make([]metrics.Sample, 0, len(runtimeSamples)+1)
	for _, s := range runtimeSamples {
		samples = append(samples, metrics.Sample{Name: s.name})
	}
	samples = append(samples, metrics.Sample{Name: gcPauses})
	metrics.Read(samples)
	for i, s := range runtimeSamples {
		switch samples[i].Value.Kind() {
		case metrics.KindUint64:
			r.Gauge(s.gauge).Set(float64(samples[i].Value.Uint64()))
		case metrics.KindFloat64:
			r.Gauge(s.gauge).Set(samples[i].Value.Float64())
		}
	}
	if pauses := samples[len(samples)-1]; pauses.Value.Kind() == metrics.KindFloat64Histogram {
		mean, max := summarizeRuntimeHist(pauses.Value.Float64Histogram())
		r.Gauge("runtime.gc_pause_mean_seconds").Set(mean)
		r.Gauge("runtime.gc_pause_max_seconds").Set(max)
	}
	// Whole-process CPU clock (rusage; 0 where unavailable) so scrapes
	// can attribute wall time to compute vs waiting without a profiler.
	if cpu := processCPUSeconds(); cpu > 0 {
		r.Gauge("runtime.process_cpu_seconds").Set(cpu)
	}
}

// summarizeRuntimeHist reduces a runtime Float64Histogram to the count-
// weighted bucket-midpoint mean and the upper edge of the highest
// occupied finite bucket.
func summarizeRuntimeHist(h *metrics.Float64Histogram) (mean, max float64) {
	var total uint64
	var weighted float64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		lo := h.Buckets[i]
		hi := h.Buckets[i+1]
		if math.IsInf(hi, 1) {
			hi = lo
		}
		if math.IsInf(lo, -1) {
			lo = hi
		}
		total += c
		weighted += float64(c) * (lo + hi) / 2
		if hi > max {
			max = hi
		}
	}
	if total > 0 {
		mean = weighted / float64(total)
	}
	return mean, max
}
