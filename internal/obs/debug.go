package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// DebugServer serves the runtime profiling and metrics endpoints:
// /debug/pprof/ (net/http/pprof) and /debug/vars (expvar, including the
// Default metrics registry as "qbeep_metrics").
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeDebug publishes the Default registry to expvar and starts the
// debug HTTP server on addr (e.g. "localhost:6060"; a ":0" port picks a
// free one — read it back from Addr). The server runs until Close.
func ServeDebug(addr string) (*DebugServer, error) {
	PublishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ds := &DebugServer{ln: ln, srv: &http.Server{Handler: mux}}
	go func() {
		// http.ErrServerClosed after Close is the expected shutdown path;
		// anything else is worth a log line but must not kill the run.
		if err := ds.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			Logger().Warn("debug server stopped", "addr", addr, "err", err)
		}
	}()
	Logger().Info("debug server listening",
		"addr", ds.Addr(), "pprof", "/debug/pprof/", "vars", "/debug/vars")
	return ds, nil
}

// Addr returns the bound address (useful with a ":0" listen port).
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the server.
func (d *DebugServer) Close() error { return d.srv.Close() }
