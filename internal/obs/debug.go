package obs

import (
	"context"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer serves the runtime profiling and metrics endpoints:
// /debug/pprof/ (net/http/pprof), /debug/vars (expvar, including the
// Default metrics registry as "qbeep_metrics"), /metrics (Prometheus
// text exposition of the Default registry plus the runtime sampler),
// and /healthz.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeDebug publishes the Default registry to expvar and starts the
// debug HTTP server on addr (e.g. "localhost:6060"; a ":0" port picks a
// free one — read it back from Addr). The server runs until Shutdown.
func ServeDebug(addr string) (*DebugServer, error) {
	PublishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		// Runtime gauges are refreshed per scrape so they cost nothing
		// in between.
		SampleRuntime(Default)
		w.Header().Set("Content-Type", PromContentType)
		if err := WriteBuildInfo(w); err != nil {
			Logger().Warn("metrics exposition failed", "err", err)
			return
		}
		if err := WritePrometheus(w, Default); err != nil {
			Logger().Warn("metrics exposition failed", "err", err)
		}
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ds := &DebugServer{ln: ln, srv: &http.Server{Handler: mux}}
	go func() {
		// http.ErrServerClosed after Shutdown/Close is the expected
		// shutdown path; anything else is worth a log line but must not
		// kill the run.
		if err := ds.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			Logger().Warn("debug server stopped", "addr", addr, "err", err)
		}
	}()
	Logger().Info("debug server listening",
		"addr", ds.Addr(), "pprof", "/debug/pprof/", "vars", "/debug/vars",
		"metrics", "/metrics", "healthz", "/healthz")
	return ds, nil
}

// Addr returns the bound address (useful with a ":0" listen port).
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Shutdown stops the server gracefully, letting in-flight pprof and
// metrics scrapes finish for up to timeout (a non-positive timeout
// means 5s) before force-closing the remaining connections.
func (d *DebugServer) Shutdown(timeout time.Duration) error {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout) //qbeep:allow-ctx shutdown deadline is process-lifetime work, deliberately detached from request contexts
	defer cancel()
	if err := d.srv.Shutdown(ctx); err != nil {
		// Deadline hit with scrapes still running: drop them rather than
		// hang the process exit.
		return d.srv.Close()
	}
	return nil
}

// Close stops the server via the graceful Shutdown path with the
// default deadline.
func (d *DebugServer) Close() error { return d.Shutdown(0) }
