package obs

import (
	"bytes"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// promRegistry builds a registry with one metric of every kind and fixed
// values, so the exposition bytes are deterministic.
func promRegistry() *Registry {
	r := NewRegistry()
	r.Counter("par.tasks").Add(42)
	r.Gauge("sim.trajectory.shots_per_sec").Set(1234.5)
	tm := r.Timer("core.mitigate")
	tm.ObserveDuration(1500 * time.Microsecond)
	tm.ObserveDuration(2500 * time.Microsecond)
	tm.ObserveDuration(350 * time.Millisecond)
	h := r.Histogram("core.mitigate.hellinger")
	h.Observe(0.159)
	h.Observe(0.048)
	h.Observe(0.016)
	// The quality observatory families (DESIGN.md §16): a per-backend
	// labeled λ gauge plus the Hellinger-shift and PST-improvement
	// histograms with worst-trace stamping.
	r.LabeledGauge("quality.lambda", "backend", "almaden").Set(0.8)
	r.LabeledGauge("quality.lambda", "backend", "istanbul").Set(1.25)
	qh := r.Histogram("quality.hellinger_shift")
	qh.ObserveTrace(0.18, 7)
	qh.Observe(0.05)
	qp := r.Histogram("quality.pst_improvement")
	qp.ObserveTrace(1.36, 7)
	return r
}

// TestPrometheusGolden pins the full text exposition: name mangling,
// family ordering, cumulative buckets and the _window quantile summary.
func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, promRegistry()); err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "prom.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestPrometheusFormatInvariants checks structural properties the golden
// alone would not explain: every series line parses as name{labels} value
// and histogram buckets are cumulative.
func TestPrometheusFormatInvariants(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, promRegistry()); err != nil {
		t.Fatal(err)
	}
	var prevBucket int64 = -1
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, "qbeep_") {
			t.Fatalf("series without qbeep_ prefix: %q", line)
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("series line not `name value`: %q", line)
		}
		if strings.Contains(fields[0], "_bucket{le=") {
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				t.Fatalf("bucket value %q: %v", fields[1], err)
			}
			if strings.Contains(fields[0], `le="1e-08"`) {
				prevBucket = -1 // new family starts
			}
			if v < prevBucket {
				t.Fatalf("buckets not cumulative at %q", line)
			}
			prevBucket = v
		}
	}
}

// TestLabeledGaugeExposition pins the labeled-gauge rendering: one
// # TYPE line per family, series adjacent in value order, label values
// escaped.
func TestLabeledGaugeExposition(t *testing.T) {
	r := NewRegistry()
	r.LabeledGauge("quality.lambda", "backend", "istanbul").Set(1.25)
	r.LabeledGauge("quality.lambda", "backend", "almaden").Set(0.8)
	r.Gauge("other").Set(3)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if got := strings.Count(out, "# TYPE qbeep_quality_lambda gauge"); got != 1 {
		t.Fatalf("want exactly one TYPE line for the family, got %d:\n%s", got, out)
	}
	for _, want := range []string{
		"qbeep_quality_lambda{backend=\"almaden\"} 0.8\n",
		"qbeep_quality_lambda{backend=\"istanbul\"} 1.25\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}

	// Same (family, label, value) returns the same series.
	g := r.LabeledGauge("quality.lambda", "backend", "istanbul")
	if g != r.LabeledGauge("quality.lambda", "backend", "istanbul") {
		t.Fatal("LabeledGauge must be get-or-create per series")
	}

	// Hostile label values cannot break the exposition line format.
	r2 := NewRegistry()
	r2.LabeledGauge("q", "l", "a\"b\\c\nd").Set(1)
	buf.Reset()
	if err := WritePrometheus(&buf, r2); err != nil {
		t.Fatal(err)
	}
	if want := `qbeep_q{l="a\"b\\c\nd"} 1` + "\n"; !strings.Contains(buf.String(), want) {
		t.Fatalf("escaping: got %q, want %q", buf.String(), want)
	}
}

// readAll drains and closes a response body.
func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestSampleRuntime: the sampler must populate the runtime gauges with
// plausible live values.
func TestSampleRuntime(t *testing.T) {
	r := NewRegistry()
	SampleRuntime(r)
	if v := r.Gauge("runtime.goroutines").Value(); v < 1 {
		t.Fatalf("goroutines gauge = %v", v)
	}
	if v := r.Gauge("runtime.heap_objects_bytes").Value(); v <= 0 {
		t.Fatalf("heap gauge = %v", v)
	}
	if v := r.Gauge("runtime.gomaxprocs").Value(); v < 1 {
		t.Fatalf("gomaxprocs gauge = %v", v)
	}
}

// TestDebugServerMetricsAndHealth is the /metrics + /healthz acceptance
// check: valid Prometheus content type, at least one counter, gauge and
// histogram family, and a 200 ok health probe — then a graceful
// Shutdown.
func TestDebugServerMetricsAndHealth(t *testing.T) {
	Default.Counter("test.prom.hits").Inc()
	Default.Histogram("test.prom.hist").Observe(0.5)
	ds, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	shut := false
	defer func() {
		if !shut {
			_ = ds.Shutdown(time.Second)
		}
	}()

	resp, err := http.Get("http://" + ds.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK || body != "ok\n" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}

	resp, err = http.Get("http://" + ds.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := readAll(t, resp)
	if ct := resp.Header.Get("Content-Type"); ct != PromContentType {
		t.Fatalf("content type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE qbeep_test_prom_hits_total counter",
		"# TYPE qbeep_runtime_goroutines gauge",
		"# TYPE qbeep_test_prom_hist histogram",
		`qbeep_test_prom_hist_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%.600s", want, metrics)
		}
	}

	if err := ds.Shutdown(2 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	shut = true
	if _, err := http.Get("http://" + ds.Addr() + "/healthz"); err == nil {
		t.Fatal("server still serving after Shutdown")
	}
}
