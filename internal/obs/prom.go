package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"qbeep/internal/buildinfo"
)

// Prometheus text exposition (format version 0.0.4) over a Registry.
//
// Metric names are prefixed "qbeep_" and sanitized (every character
// outside [a-zA-Z0-9_] becomes '_'): the counter "par.tasks" is exposed
// as qbeep_par_tasks_total, the timer "core.mitigate" as the histogram
// qbeep_core_mitigate_seconds. Each histogram/timer is rendered twice:
// as a native Prometheus histogram (cumulative _bucket series over the
// fixed lifetime buckets, plus _sum and _count) and as a companion
// <name>_window summary carrying the sliding-window quantiles
// (0.5/0.9/0.99) that back the JSON snapshots.

// PromContentType is the Content-Type the /metrics endpoint serves.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName sanitizes a registry metric name into a Prometheus one.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("qbeep_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float the way Prometheus expects (shortest
// round-trip form; +Inf/-Inf/NaN spelled out).
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sortedKeys returns the map's keys in lexical order so the exposition
// is deterministic (goldens depend on it).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// writeHistogramFamily renders one histogram (or timer) as a native
// Prometheus histogram plus the _window quantile summary.
func writeHistogramFamily(w io.Writer, name string, h *Histogram) error {
	bounds := histBuckets[:]
	cum := h.CumulativeBuckets()
	count := h.Count()
	sum := h.Sum()
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	for i, ub := range bounds {
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, promFloat(ub), cum[i]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum[len(cum)-1]); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, promFloat(sum), name, count); err != nil {
		return err
	}
	// Sliding-window quantiles as a summary family; its sum/count cover
	// the same lifetime totals so rates agree with the histogram.
	if _, err := fmt.Fprintf(w, "# TYPE %s_window summary\n", name); err != nil {
		return err
	}
	for _, q := range [...]float64{0.5, 0.9, 0.99} {
		if _, err := fmt.Fprintf(w, "%s_window{quantile=%q} %s\n", name, promFloat(q), promFloat(h.Quantile(q))); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_window_sum %s\n%s_window_count %d\n", name, promFloat(sum), name, count); err != nil {
		return err
	}
	// Trace↔metrics linkage: the worst observation carries the trace that
	// produced it (Histogram.ObserveTrace), so a latency spike on a
	// dashboard names the exact trace to pull up in qbeep-trace. Untraced
	// worst observations (trace 0) render nothing, keeping streams from
	// trace-free processes byte-identical to the pre-linkage exposition.
	if trace, worst := h.WorstTrace(); trace != 0 {
		if _, err := fmt.Fprintf(w, "%s_window_worst{trace=\"%d\"} %s\n", name, trace, promFloat(worst)); err != nil {
			return err
		}
	}
	return nil
}

// WriteBuildInfo renders the qbeep_build_info gauge: constant 1 with the
// binary's identity as labels, the Prometheus idiom for exposing build
// metadata. Served ahead of the registry families on /metrics.
func WriteBuildInfo(w io.Writer) error {
	i := buildinfo.Read()
	revision := i.Revision
	if revision == "" {
		revision = "unknown"
	}
	_, err := fmt.Fprintf(w,
		"# TYPE qbeep_build_info gauge\nqbeep_build_info{go_version=%q,revision=%q,modified=%q} 1\n",
		i.GoVersion, revision, strconv.FormatBool(i.Modified))
	return err
}

// WritePrometheus renders every metric of r in the Prometheus text
// exposition format, families sorted by name within each kind
// (counters, then gauges, timers, histograms).
func WritePrometheus(w io.Writer, r *Registry) error {
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	timers := make(map[string]*Timer, len(r.timers))
	for k, v := range r.timers {
		timers[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.RUnlock()

	for _, k := range sortedKeys(counters) {
		name := promName(k) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, counters[k].Value()); err != nil {
			return err
		}
	}
	// Labeled gauges (Registry.LabeledGauge) are stored under composite
	// `family{label="value"}` keys; the family is sanitized, the label
	// block passes through verbatim. Lexical key order keeps a family's
	// series adjacent (and any unlabeled series first, '{' sorting after
	// alphanumerics), so one # TYPE line per family suffices.
	lastGaugeFamily := ""
	for _, k := range sortedKeys(gauges) {
		family, labels := k, ""
		if i := strings.IndexByte(k, '{'); i >= 0 {
			family, labels = k[:i], k[i:]
		}
		name := promName(family)
		if name != lastGaugeFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", name); err != nil {
				return err
			}
			lastGaugeFamily = name
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", name, labels, promFloat(gauges[k].Value())); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(timers) {
		if err := writeHistogramFamily(w, promName(k)+"_seconds", &timers[k].Histogram); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(hists) {
		if err := writeHistogramFamily(w, promName(k), hists[k]); err != nil {
			return err
		}
	}
	return nil
}
