package obs

import (
	"context"
	"strings"
	"testing"
)

// TestSpanResourceDeltas: with capture on, a span that allocates must
// report a non-zero allocation delta (bytes and objects), and the wire
// fields must survive the NDJSON round trip implicitly via SpanEvent.
func TestSpanResourceDeltas(t *testing.T) {
	var c CollectorSink
	SetSpanSink(&c)
	SetResourceCapture(true)
	defer func() {
		SetResourceCapture(false)
		SetSpanSink(nil)
	}()

	const blob = 1 << 20
	_, sp := Start(context.Background(), "alloc-heavy")
	sink := make([]byte, blob)
	sink[0] = 1
	sp.SetAttr("bytes", len(sink))
	sp.End()

	ev := c.Events()
	if len(ev) != 1 {
		t.Fatalf("got %d events, want 1", len(ev))
	}
	if ev[0].AllocBytes < blob {
		t.Fatalf("AllocBytes = %d, want >= %d", ev[0].AllocBytes, blob)
	}
	if ev[0].AllocObjects == 0 {
		t.Fatalf("AllocObjects = 0, want > 0")
	}
	if ev[0].CPU < 0 {
		t.Fatalf("CPU = %v, want >= 0", ev[0].CPU)
	}
}

// TestSpanResourceCaptureOffByDefault: installing a sink alone must not
// produce resource fields, so goldens over wall-time-only traces stay
// stable.
func TestSpanResourceCaptureOffByDefault(t *testing.T) {
	var c CollectorSink
	SetSpanSink(&c)
	defer SetSpanSink(nil)
	if ResourceCaptureEnabled() {
		t.Fatal("resource capture enabled without opt-in")
	}
	_, sp := Start(context.Background(), "plain")
	_ = make([]byte, 4096)
	sp.End()
	ev := c.Events()
	if len(ev) != 1 {
		t.Fatalf("got %d events, want 1", len(ev))
	}
	if ev[0].CPU != 0 || ev[0].AllocBytes != 0 || ev[0].AllocObjects != 0 {
		t.Fatalf("resource fields set without capture: %+v", ev[0])
	}
}

// TestStartDisabledWithResourceCaptureAllocs: the capture toggle must not
// disturb the zero-alloc disabled path — the sink check comes first.
func TestStartDisabledWithResourceCaptureAllocs(t *testing.T) {
	SetSpanSink(nil)
	SetResourceCapture(true)
	defer SetResourceCapture(false)
	ctx := context.Background()
	if n := testing.AllocsPerRun(1000, func() {
		c, s := Start(ctx, "hot")
		_ = c
		s.End()
	}); n != 0 {
		t.Fatalf("disabled Start allocates %v per op with capture toggled on", n)
	}
}

// BenchmarkStartDisabled pins the acceptance invariant: obs.Start with no
// sink installed is 0 allocs/op, so instrumentation can stay in kernel
// hot paths unconditionally.
func BenchmarkStartDisabled(b *testing.B) {
	SetSpanSink(nil)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, sp := Start(ctx, "hot")
		_ = c
		sp.End()
	}
}

func TestTraceIDFrom(t *testing.T) {
	if id := TraceIDFrom(context.Background()); id != 0 {
		t.Fatalf("TraceIDFrom(Background) = %d, want 0", id)
	}
	if id := TraceIDFrom(nil); id != 0 { //nolint:staticcheck
		t.Fatalf("TraceIDFrom(nil) = %d, want 0", id)
	}
	resetTraceIDs()
	var c CollectorSink
	SetSpanSink(&c)
	defer SetSpanSink(nil)
	ctx, sp := Start(context.Background(), "root")
	defer sp.End()
	if id := TraceIDFrom(ctx); id != 1 {
		t.Fatalf("TraceIDFrom(traced ctx) = %d, want 1", id)
	}
}

func TestHistogramWorstTrace(t *testing.T) {
	var h Histogram
	if trace, _ := h.WorstTrace(); trace != 0 {
		t.Fatalf("empty histogram worst trace = %d, want 0", trace)
	}
	h.ObserveTrace(0.5, 7)
	h.ObserveTrace(0.1, 9)
	trace, worst := h.WorstTrace()
	if trace != 7 || worst < 0.49 || worst > 0.51 {
		t.Fatalf("WorstTrace = %d/%v, want 7/0.5", trace, worst)
	}
	// A new untraced maximum clears the stamp: the worst observation is
	// no longer attributable.
	h.Observe(2.0)
	if trace, _ := h.WorstTrace(); trace != 0 {
		t.Fatalf("worst trace after untraced max = %d, want 0", trace)
	}
	h.ObserveTrace(3.0, 11)
	if trace, _ := h.WorstTrace(); trace != 11 {
		t.Fatalf("worst trace = %d, want 11", trace)
	}
}

func TestPromWorstTraceStamp(t *testing.T) {
	r := NewRegistry()
	r.Histogram("stamped").ObserveTrace(0.25, 42)
	r.Histogram("plain").Observe(0.25)
	var b strings.Builder
	if err := WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `qbeep_stamped_window_worst{trace="42"} 0.25`) {
		t.Fatalf("missing worst-trace stamp in:\n%s", out)
	}
	if strings.Contains(out, "qbeep_plain_window_worst") {
		t.Fatalf("untraced histogram grew a worst-trace series:\n%s", out)
	}
}

func TestWriteBuildInfo(t *testing.T) {
	var b strings.Builder
	if err := WriteBuildInfo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "# TYPE qbeep_build_info gauge") ||
		!strings.Contains(out, `qbeep_build_info{go_version="go`) ||
		!strings.HasSuffix(out, "} 1\n") {
		t.Fatalf("build info exposition = %q", out)
	}
}
