package obs

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrency hammers one registry from many goroutines —
// get-or-create races, counter adds, gauge sets, histogram observes —
// and checks the totals. Run under -race (the Makefile race target
// does).
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("shared").Inc()
				r.Gauge("gauge").Set(float64(i))
				r.Histogram("hist").Observe(float64(i))
				r.Timer("timer").ObserveDuration(time.Microsecond)
				r.Counter("own").Add(2)
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*perWorker {
		t.Fatalf("shared counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Counter("own").Value(); got != 2*workers*perWorker {
		t.Fatalf("own counter = %d, want %d", got, 2*workers*perWorker)
	}
	if got := r.Histogram("hist").Count(); got != workers*perWorker {
		t.Fatalf("hist count = %d, want %d", got, workers*perWorker)
	}
	if g := r.Gauge("gauge").Value(); g < 0 || g >= perWorker {
		t.Fatalf("gauge value %v outside [0,%d)", g, perWorker)
	}
}

// TestHistogramObserveSnapshotConcurrent races readers against writers:
// Snapshot, Quantile and CumulativeBuckets run while Observe is in
// flight. The invariants checked are the ones a torn read would break;
// the real assertion is the race detector on the Makefile race target.
func TestHistogramObserveSnapshotConcurrent(t *testing.T) {
	var h Histogram
	const writers = 8
	const perWriter = 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := h.Snapshot()
				if s.Count > 0 && (s.Min > s.Max || s.Sum < 0) {
					t.Errorf("torn snapshot: %+v", s)
					return
				}
				_ = h.Quantile(0.5)
				counts := h.CumulativeBuckets()
				var prev int64
				for i, c := range counts {
					if c < prev {
						t.Errorf("bucket %d not cumulative: %v", i, counts)
						return
					}
					prev = c
				}
				// The +Inf bucket was taken before this Count read, so it
				// can only lag behind.
				if len(counts) > 0 && counts[len(counts)-1] > h.Count() {
					t.Errorf("+Inf bucket %d exceeds count", counts[len(counts)-1])
					return
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(float64(w*perWriter+i) * 1e-6)
			}
		}(w)
	}
	// Writers finish first; then release the readers.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	closeAfterWriters(&h, writers*perWriter, stop)
	<-done
	if got := h.Count(); got != writers*perWriter {
		t.Fatalf("count = %d, want %d", got, writers*perWriter)
	}
}

// closeAfterWriters spins until the histogram has absorbed every write,
// then stops the reader goroutines.
func closeAfterWriters(h *Histogram, want int, stop chan struct{}) {
	for h.Count() < int64(want) {
		time.Sleep(100 * time.Microsecond)
	}
	close(stop)
}

func TestGaugeAdd(t *testing.T) {
	var g Gauge
	g.Set(1.5)
	g.Add(2.25)
	g.Add(-0.75)
	if v := g.Value(); math.Abs(v-3) > 1e-12 {
		t.Fatalf("gauge = %v, want 3", v)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1..100: exact order statistics under linear interpolation.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {1, 100}, {0.5, 50.5}, {0.9, 90.1}, {0.99, 99.01},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("snapshot = %+v", s)
	}
	if math.Abs(s.Mean-50.5) > 1e-9 {
		t.Fatalf("mean = %v, want 50.5", s.Mean)
	}
}

func TestHistogramWindowSlides(t *testing.T) {
	var h Histogram
	// Overflow the window: lifetime min/max keep the early extremes but
	// quantiles reflect only the recent window.
	h.Observe(-1000)
	for i := 0; i < 2*histWindow; i++ {
		h.Observe(5)
	}
	if h.Snapshot().Min != -1000 {
		t.Fatalf("lifetime min lost: %+v", h.Snapshot())
	}
	if q := h.Quantile(0.01); q != 5 {
		t.Fatalf("windowed quantile = %v, want 5", q)
	}
}

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
	s := h.Snapshot()
	if s.Count != 0 || s.Mean != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
}

func TestTimerStart(t *testing.T) {
	var tm Timer
	stop := tm.Start()
	time.Sleep(time.Millisecond)
	stop()
	if tm.Count() != 1 {
		t.Fatalf("timer count = %d", tm.Count())
	}
	if tm.Sum() <= 0 {
		t.Fatalf("timer sum = %v, want > 0", tm.Sum())
	}
}

func TestSnapshotIsJSONMarshalable(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	r.Gauge("g").Set(2.5)
	r.Timer("t").ObserveDuration(3 * time.Millisecond)
	r.Histogram("h").Observe(7)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"counters", "gauges", "timers_seconds", "histograms"} {
		if _, ok := back[key]; !ok {
			t.Fatalf("snapshot missing %q: %s", key, data)
		}
	}
}

// TestCounterDisabledPathAllocs pins the hot-path cost: metric updates
// must not allocate.
func TestCounterDisabledPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot")
	g := r.Gauge("hotg")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(1)
	}); n != 0 {
		t.Fatalf("counter/gauge update allocates %v per op", n)
	}
}
