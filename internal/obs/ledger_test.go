package obs

import (
	"flag"
	"path/filepath"
	"testing"

	"qbeep/internal/runledger"
)

// TestLedgerFlagsStartStop is the recorder round trip: install via the
// flag helper, record, stop, read back — checking the obs-side stamps
// (time, build identity) landed on the record.
func TestLedgerFlagsStartStop(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.ndjson")
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := AddLedgerFlags(fs)
	if err := fs.Parse([]string{"-run-ledger", path}); err != nil {
		t.Fatal(err)
	}
	stop, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	if !RunLedgerEnabled() {
		t.Fatal("ledger not enabled after Start")
	}
	rec := runledger.Record{
		Tool: "qbeep-test", Backend: "istanbul", Lambda: 1.2,
		Quality: runledger.Quality{HellingerShift: 0.1},
	}
	if err := RecordRun(&rec); err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if RunLedgerEnabled() {
		t.Fatal("ledger still enabled after stop")
	}

	recs, err := runledger.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("want 1 record, got %d", len(recs))
	}
	got := recs[0]
	if got.Tool != "qbeep-test" || got.Backend != "istanbul" {
		t.Fatalf("identity lost: %+v", got)
	}
	if got.Time == "" {
		t.Fatal("recorder did not stamp Time")
	}
	if got.GoVersion == "" || got.Revision == "" {
		t.Fatalf("recorder did not stamp build identity: %+v", got)
	}
	if got.Schema != runledger.SchemaVersion || got.Seq != 0 {
		t.Fatalf("writer stamps missing: %+v", got)
	}
}

// TestLedgerFlagsDisabledNoop: empty path means Start and stop are
// no-ops and RecordRun silently drops records.
func TestLedgerFlagsDisabledNoop(t *testing.T) {
	f := &LedgerFlags{}
	stop, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	if RunLedgerEnabled() {
		t.Fatal("empty path must not enable the ledger")
	}
	if err := RecordRun(&runledger.Record{}); err != nil {
		t.Fatalf("disabled RecordRun: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

// TestRunLedgerDisabledZeroAlloc asserts the contract the CLIs rely
// on: with no ledger installed, the per-run check-and-skip path
// allocates nothing (same bar as the disabled span path).
func TestRunLedgerDisabledZeroAlloc(t *testing.T) {
	SetRunLedger(nil)
	rec := runledger.Record{Tool: "qbeep"}
	allocs := testing.AllocsPerRun(1000, func() {
		if RunLedgerEnabled() {
			_ = RecordRun(&rec)
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled ledger path allocates %v per run, want 0", allocs)
	}
	// RecordRun called unconditionally must also stay alloc-free.
	allocs = testing.AllocsPerRun(1000, func() {
		_ = RecordRun(&rec)
	})
	if allocs != 0 {
		t.Fatalf("disabled RecordRun allocates %v per run, want 0", allocs)
	}
}

// BenchmarkRunLedgerDisabled is the benchmark-asserted form of the
// zero-alloc contract (mirrors BenchmarkStartDisabled for spans).
func BenchmarkRunLedgerDisabled(b *testing.B) {
	SetRunLedger(nil)
	rec := runledger.Record{Tool: "qbeep"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if RunLedgerEnabled() {
			_ = RecordRun(&rec)
		}
	}
}
