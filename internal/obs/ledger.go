package obs

import (
	"flag"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"qbeep/internal/buildinfo"
	"qbeep/internal/runledger"
)

// Run-ledger recorder: the shared front door through which the CLIs
// append mitigation-quality records (runledger.Record, DESIGN.md §16)
// to the NDJSON ledger selected by -run-ledger. Mirrors the span-sink
// design: an atomic pointer to the active writer, nil when disabled,
// so the disabled path is one atomic load and zero allocations —
// callers gate record assembly on RunLedgerEnabled().
//
// The recorder (not runledger itself) stamps wall-clock time and
// buildinfo onto each record: runledger stays side-effect free and
// deterministic for its round-trip goldens, while every record written
// through obs carries when and from which build it came.

// ledgerBox wraps the writer so the atomic pointer distinguishes
// "no ledger" (nil box) without a typed-nil footgun.
type ledgerBox struct{ w *runledger.Writer }

var runLedgerPtr atomic.Pointer[ledgerBox]

// SetRunLedger installs w as the process-wide run ledger (nil
// uninstalls). The previous writer, if any, is not closed — the caller
// owning it (LedgerFlags.Start's stop func) does that.
func SetRunLedger(w *runledger.Writer) {
	if w == nil {
		runLedgerPtr.Store(nil)
		return
	}
	runLedgerPtr.Store(&ledgerBox{w: w})
}

// RunLedgerEnabled reports whether a run ledger is installed. Hot
// paths call this before assembling a record; it is a single atomic
// load and never allocates.
func RunLedgerEnabled() bool { return runLedgerPtr.Load() != nil }

// ledgerStamp is the per-process identity stamped onto every record.
var (
	ledgerStampOnce sync.Once
	ledgerGoVersion string
	ledgerRevision  string
)

func ledgerIdentity() (goVersion, revision string) {
	ledgerStampOnce.Do(func() {
		i := buildinfo.Read()
		ledgerGoVersion = i.GoVersion
		ledgerRevision = i.Revision
		if ledgerRevision == "" {
			ledgerRevision = "unknown"
		} else if len(ledgerRevision) > 12 {
			ledgerRevision = ledgerRevision[:12]
		}
		if i.Modified {
			ledgerRevision += "-dirty"
		}
	})
	return ledgerGoVersion, ledgerRevision
}

// RecordRun stamps rec with wall-clock time and build identity and
// appends it to the installed ledger. A nil ledger makes it a no-op
// returning nil, so callers may invoke it unconditionally — though
// assembling rec is usually worth skipping via RunLedgerEnabled.
func RecordRun(rec *runledger.Record) error {
	box := runLedgerPtr.Load()
	if box == nil {
		return nil
	}
	if rec.Time == "" {
		rec.Time = time.Now().UTC().Format(time.RFC3339)
	}
	if rec.GoVersion == "" && rec.Revision == "" {
		rec.GoVersion, rec.Revision = ledgerIdentity()
	}
	return box.w.Append(rec)
}

// LedgerFlags holds the value of the shared -run-ledger flag.
type LedgerFlags struct {
	Path string
}

// AddLedgerFlags registers the shared -run-ledger flag on fs (the
// default flag set when fs is nil) and returns the destination struct.
// Call Start after flag parsing.
func AddLedgerFlags(fs *flag.FlagSet) *LedgerFlags {
	if fs == nil {
		fs = flag.CommandLine
	}
	f := &LedgerFlags{}
	fs.StringVar(&f.Path, "run-ledger", "",
		"append per-run quality records as NDJSON to this file; analyze with qbeep-ledger")
	return f
}

// Start opens (or creates, appending) the ledger and installs it as
// the process-wide recorder. The returned stop function uninstalls the
// recorder, flushes, closes the file, and reports the first write
// error. With an empty path both Start and stop are no-ops.
func (f *LedgerFlags) Start() (stop func() error, err error) {
	if f.Path == "" {
		return func() error { return nil }, nil
	}
	w, err := runledger.Create(f.Path)
	if err != nil {
		return nil, fmt.Errorf("opening -run-ledger output: %w", err)
	}
	SetRunLedger(w)
	return func() error {
		SetRunLedger(nil)
		if err := w.Close(); err != nil {
			return fmt.Errorf("writing -run-ledger output: %w", err)
		}
		return nil
	}, nil
}
