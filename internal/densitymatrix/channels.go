package densitymatrix

import "math"

// The standard single-qubit noise channels as Kraus sets. Parameters are
// probabilities/rates in [0, 1].

// Depolarizing returns the channel ρ → (1-p)ρ + p·I/2, in Kraus form
// {√(1-3p/4)·I, √(p/4)·X, √(p/4)·Y, √(p/4)·Z}.
func Depolarizing(p float64) []Matrix2 {
	p = clamp01(p)
	s0 := complex(math.Sqrt(1-3*p/4), 0)
	sp := complex(math.Sqrt(p/4), 0)
	return []Matrix2{
		{{s0, 0}, {0, s0}},
		{{0, sp}, {sp, 0}},
		{{0, -1i * sp}, {1i * sp, 0}},
		{{sp, 0}, {0, -sp}},
	}
}

// BitFlip returns ρ → (1-p)ρ + p XρX.
func BitFlip(p float64) []Matrix2 {
	p = clamp01(p)
	s0 := complex(math.Sqrt(1-p), 0)
	s1 := complex(math.Sqrt(p), 0)
	return []Matrix2{
		{{s0, 0}, {0, s0}},
		{{0, s1}, {s1, 0}},
	}
}

// PhaseFlip returns ρ → (1-p)ρ + p ZρZ.
func PhaseFlip(p float64) []Matrix2 {
	p = clamp01(p)
	s0 := complex(math.Sqrt(1-p), 0)
	s1 := complex(math.Sqrt(p), 0)
	return []Matrix2{
		{{s0, 0}, {0, s0}},
		{{s1, 0}, {0, -s1}},
	}
}

// AmplitudeDamping returns the T1 decay channel with decay probability
// gamma: K0 = [[1,0],[0,√(1-γ)]], K1 = [[0,√γ],[0,0]].
func AmplitudeDamping(gamma float64) []Matrix2 {
	gamma = clamp01(gamma)
	return []Matrix2{
		{{1, 0}, {0, complex(math.Sqrt(1-gamma), 0)}},
		{{0, complex(math.Sqrt(gamma), 0)}, {0, 0}},
	}
}

// PhaseDamping returns the pure-dephasing channel with parameter lambda:
// off-diagonals decay by √(1-λ).
func PhaseDamping(lambda float64) []Matrix2 {
	lambda = clamp01(lambda)
	return []Matrix2{
		{{1, 0}, {0, complex(math.Sqrt(1-lambda), 0)}},
		{{0, 0}, {0, complex(math.Sqrt(lambda), 0)}},
	}
}

func clamp01(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
