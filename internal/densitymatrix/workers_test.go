package densitymatrix

import (
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"qbeep/internal/circuit"
	"qbeep/internal/mathx"
)

// dmWorkerMatrix mirrors the statevector equivalence matrix: {1, 2, 4,
// GOMAXPROCS} plus QBEEP_TEST_WORKERS entries, deduplicated.
func dmWorkerMatrix(t *testing.T) []int {
	t.Helper()
	counts := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	if env := os.Getenv("QBEEP_TEST_WORKERS"); env != "" {
		for _, f := range strings.Split(env, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || v < 1 {
				t.Fatalf("QBEEP_TEST_WORKERS entry %q: %v", f, err)
			}
			counts = append(counts, v)
		}
	}
	seen := map[int]bool{}
	out := counts[:0]
	for _, w := range counts {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

// TestDensityDeterministicAcrossWorkers pins that row-pair sharding is
// bitwise invariant in the worker count: the same circuit plus noise
// channels yields an identical ρ for every fan-out width, because shards
// are whole row pairs and the per-element Kraus accumulation order never
// changes.
func TestDensityDeterministicAcrossWorkers(t *testing.T) {
	rng := mathx.NewRNG(31)
	build := func(workers int) *Density {
		d, err := NewBasis(6, 0)
		if err != nil {
			t.Fatal(err)
		}
		d.SetWorkers(workers)
		c := circuit.New("mix", 6).
			H(0).CX(0, 1).RZ(0.4, 1).CX(1, 2).T(2).
			RY(1.1, 3).CZ(2, 3).SWAP(3, 4).CCX(0, 1, 5).RX(0.9, 5)
		for _, g := range c.Gates {
			if err := d.Apply(g); err != nil {
				t.Fatal(err)
			}
		}
		for q := 0; q < 6; q++ {
			if err := d.Channel(q, Depolarizing(0.02+0.01*float64(q))); err != nil {
				t.Fatal(err)
			}
			if err := d.Channel(q, AmplitudeDamping(rng.Uniform(0.01, 0.05))); err != nil {
				t.Fatal(err)
			}
		}
		return d
	}
	// The channel parameters must match across builds: re-seed per build.
	var want *Density
	for _, w := range dmWorkerMatrix(t) {
		rng = mathx.NewRNG(31)
		got := build(w)
		if want == nil {
			want = got
			continue
		}
		for i := range want.rho {
			if got.rho[i] != want.rho[i] {
				t.Fatalf("workers=%d rho[%d]: %v vs %v", w, i, got.rho[i], want.rho[i])
			}
		}
	}
}
