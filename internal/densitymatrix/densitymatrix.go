// Package densitymatrix implements an exact mixed-state simulator: the
// n-qubit density matrix evolved by unitary gates and Kraus noise
// channels. It is the ground-truth reference for the fast failure-event
// executor in internal/noise — exponentially more expensive (4^n complex
// entries), so it is used for validation at small widths, not for the
// evaluation corpora.
package densitymatrix

import (
	"fmt"
	"math"
	"math/cmplx"

	"qbeep/internal/bitstring"
	"qbeep/internal/circuit"
)

// MaxQubits bounds the register width (4^10 = ~1M complex entries).
const MaxQubits = 10

// Matrix2 is a single-qubit operator.
type Matrix2 [2][2]complex128

// Dagger returns the conjugate transpose.
func (m Matrix2) Dagger() Matrix2 {
	return Matrix2{
		{cmplx.Conj(m[0][0]), cmplx.Conj(m[1][0])},
		{cmplx.Conj(m[0][1]), cmplx.Conj(m[1][1])},
	}
}

// Density is the n-qubit density matrix ρ with qubit 0 the
// least-significant index bit of both row and column.
type Density struct {
	n   int
	dim int
	rho []complex128 // row-major dim×dim
}

// New returns ρ = |0...0⟩⟨0...0|.
func New(n int) (*Density, error) {
	return NewBasis(n, 0)
}

// NewBasis returns ρ = |b⟩⟨b|.
func NewBasis(n int, b bitstring.BitString) (*Density, error) {
	if n <= 0 || n > MaxQubits {
		return nil, fmt.Errorf("densitymatrix: width %d outside (0,%d]", n, MaxQubits)
	}
	dim := 1 << uint(n)
	if uint64(b) >= uint64(dim) {
		return nil, fmt.Errorf("densitymatrix: basis %d outside %d-qubit register", b, n)
	}
	d := &Density{n: n, dim: dim, rho: make([]complex128, dim*dim)}
	d.rho[int(b)*dim+int(b)] = 1
	return d, nil
}

// N returns the register width.
func (d *Density) N() int { return d.n }

// At returns ρ[r][c].
func (d *Density) At(r, c int) complex128 { return d.rho[r*d.dim+c] }

// Trace returns tr(ρ) (1 for a valid state).
func (d *Density) Trace() complex128 {
	var t complex128
	for i := 0; i < d.dim; i++ {
		t += d.rho[i*d.dim+i]
	}
	return t
}

// Purity returns tr(ρ²): 1 for pure states, 1/2^n for maximally mixed.
func (d *Density) Purity() float64 {
	var p complex128
	for r := 0; r < d.dim; r++ {
		for c := 0; c < d.dim; c++ {
			p += d.rho[r*d.dim+c] * d.rho[c*d.dim+r]
		}
	}
	return real(p)
}

// Prob returns the measurement probability of basis state b, ⟨b|ρ|b⟩.
func (d *Density) Prob(b bitstring.BitString) float64 {
	return real(d.rho[int(b)*d.dim+int(b)])
}

// Dist returns the diagonal as a probability distribution.
func (d *Density) Dist() *bitstring.Dist {
	out := bitstring.NewDist(d.n)
	for i := 0; i < d.dim; i++ {
		p := real(d.rho[i*d.dim+i])
		if p > 1e-14 {
			out.Add(bitstring.BitString(i), p)
		}
	}
	return out
}

// apply1 applies ρ → Σ_k K_k ρ K_k† for single-qubit Kraus operators on
// qubit q. A unitary is the single-element channel {U}.
func (d *Density) apply1(q int, kraus []Matrix2) {
	mask := 1 << uint(q)
	next := make([]complex128, len(d.rho))
	for _, k := range kraus {
		kd := k.Dagger()
		// For each (row, col) pair, the qubit-q bits of row and col select
		// which K and K† entries mix. Process rows first (K ρ), then
		// columns (· K†) in one fused pass over pair blocks.
		for r0 := 0; r0 < d.dim; r0++ {
			if r0&mask != 0 {
				continue
			}
			r1 := r0 | mask
			for c0 := 0; c0 < d.dim; c0++ {
				if c0&mask != 0 {
					continue
				}
				c1 := c0 | mask
				// 2x2 block of ρ in (r, c) qubit-q space.
				p00 := d.rho[r0*d.dim+c0]
				p01 := d.rho[r0*d.dim+c1]
				p10 := d.rho[r1*d.dim+c0]
				p11 := d.rho[r1*d.dim+c1]
				// K ρ K† on the block.
				a00 := k[0][0]*p00 + k[0][1]*p10
				a01 := k[0][0]*p01 + k[0][1]*p11
				a10 := k[1][0]*p00 + k[1][1]*p10
				a11 := k[1][0]*p01 + k[1][1]*p11
				next[r0*d.dim+c0] += a00*kd[0][0] + a01*kd[1][0]
				next[r0*d.dim+c1] += a00*kd[0][1] + a01*kd[1][1]
				next[r1*d.dim+c0] += a10*kd[0][0] + a11*kd[1][0]
				next[r1*d.dim+c1] += a10*kd[0][1] + a11*kd[1][1]
			}
		}
	}
	d.rho = next
}

// applyCX applies the CNOT unitary (a permutation: conjugating ρ by the
// permutation matrix permutes rows and columns).
func (d *Density) applyCX(ctrl, tgt int) {
	cm := 1 << uint(ctrl)
	tm := 1 << uint(tgt)
	perm := func(i int) int {
		if i&cm != 0 {
			return i ^ tm
		}
		return i
	}
	next := make([]complex128, len(d.rho))
	for r := 0; r < d.dim; r++ {
		pr := perm(r)
		for c := 0; c < d.dim; c++ {
			next[pr*d.dim+perm(c)] = d.rho[r*d.dim+c]
		}
	}
	d.rho = next
}

// applyCZ applies the CZ unitary (diagonal ±1 phases).
func (d *Density) applyCZ(a, b int) {
	am := 1 << uint(a)
	bm := 1 << uint(b)
	sign := func(i int) float64 {
		if i&am != 0 && i&bm != 0 {
			return -1
		}
		return 1
	}
	for r := 0; r < d.dim; r++ {
		sr := sign(r)
		for c := 0; c < d.dim; c++ {
			d.rho[r*d.dim+c] *= complex(sr*sign(c), 0)
		}
	}
}

const invSqrt2 = 0.7071067811865476

func gateMatrix(g circuit.Gate) (Matrix2, bool) {
	switch g.Kind {
	case circuit.I:
		return Matrix2{{1, 0}, {0, 1}}, true
	case circuit.X:
		return Matrix2{{0, 1}, {1, 0}}, true
	case circuit.Y:
		return Matrix2{{0, -1i}, {1i, 0}}, true
	case circuit.Z:
		return Matrix2{{1, 0}, {0, -1}}, true
	case circuit.H:
		return Matrix2{{invSqrt2, invSqrt2}, {invSqrt2, -invSqrt2}}, true
	case circuit.S:
		return Matrix2{{1, 0}, {0, 1i}}, true
	case circuit.Sdg:
		return Matrix2{{1, 0}, {0, -1i}}, true
	case circuit.T:
		return Matrix2{{1, 0}, {0, cmplx.Exp(1i * math.Pi / 4)}}, true
	case circuit.Tdg:
		return Matrix2{{1, 0}, {0, cmplx.Exp(-1i * math.Pi / 4)}}, true
	case circuit.SX:
		return Matrix2{
			{complex(0.5, 0.5), complex(0.5, -0.5)},
			{complex(0.5, -0.5), complex(0.5, 0.5)}}, true
	case circuit.RX:
		c, s := math.Cos(g.Params[0]/2), math.Sin(g.Params[0]/2)
		return Matrix2{
			{complex(c, 0), complex(0, -s)},
			{complex(0, -s), complex(c, 0)}}, true
	case circuit.RY:
		c, s := math.Cos(g.Params[0]/2), math.Sin(g.Params[0]/2)
		return Matrix2{
			{complex(c, 0), complex(-s, 0)},
			{complex(s, 0), complex(c, 0)}}, true
	case circuit.RZ:
		return Matrix2{
			{cmplx.Exp(complex(0, -g.Params[0]/2)), 0},
			{0, cmplx.Exp(complex(0, g.Params[0]/2))}}, true
	case circuit.U3:
		th, ph, la := g.Params[0], g.Params[1], g.Params[2]
		ct, st := math.Cos(th/2), math.Sin(th/2)
		return Matrix2{
			{complex(ct, 0), -cmplx.Exp(complex(0, la)) * complex(st, 0)},
			{cmplx.Exp(complex(0, ph)) * complex(st, 0),
				cmplx.Exp(complex(0, ph+la)) * complex(ct, 0)}}, true
	default:
		return Matrix2{}, false
	}
}

// Apply applies one unitary gate to ρ.
func (d *Density) Apply(g circuit.Gate) error {
	if err := g.Validate(d.n); err != nil {
		return err
	}
	switch g.Kind {
	case circuit.Measure, circuit.Barrier:
		return nil
	case circuit.CX:
		d.applyCX(g.Qubits[0], g.Qubits[1])
		return nil
	case circuit.CZ:
		d.applyCZ(g.Qubits[0], g.Qubits[1])
		return nil
	case circuit.SWAP:
		d.applyCX(g.Qubits[0], g.Qubits[1])
		d.applyCX(g.Qubits[1], g.Qubits[0])
		d.applyCX(g.Qubits[0], g.Qubits[1])
		return nil
	case circuit.CCX:
		// CCX as controlled-controlled permutation.
		c1 := 1 << uint(g.Qubits[0])
		c2 := 1 << uint(g.Qubits[1])
		tm := 1 << uint(g.Qubits[2])
		perm := func(i int) int {
			if i&c1 != 0 && i&c2 != 0 {
				return i ^ tm
			}
			return i
		}
		next := make([]complex128, len(d.rho))
		for r := 0; r < d.dim; r++ {
			pr := perm(r)
			for c := 0; c < d.dim; c++ {
				next[pr*d.dim+perm(c)] = d.rho[r*d.dim+c]
			}
		}
		d.rho = next
		return nil
	case circuit.CSWAP:
		cm := 1 << uint(g.Qubits[0])
		am := 1 << uint(g.Qubits[1])
		bm := 1 << uint(g.Qubits[2])
		perm := func(i int) int {
			if i&cm == 0 {
				return i
			}
			ab := i & am >> uint(g.Qubits[1])
			bb := i & bm >> uint(g.Qubits[2])
			if ab == bb {
				return i
			}
			return i ^ am ^ bm
		}
		next := make([]complex128, len(d.rho))
		for r := 0; r < d.dim; r++ {
			pr := perm(r)
			for c := 0; c < d.dim; c++ {
				next[pr*d.dim+perm(c)] = d.rho[r*d.dim+c]
			}
		}
		d.rho = next
		return nil
	default:
		m, ok := gateMatrix(g)
		if !ok {
			return fmt.Errorf("densitymatrix: unsupported gate %s", g.Kind)
		}
		d.apply1(g.Qubits[0], []Matrix2{m})
		return nil
	}
}

// Channel applies a single-qubit Kraus channel to qubit q. The operators
// must satisfy Σ K†K = I (checked to a tolerance).
func (d *Density) Channel(q int, kraus []Matrix2) error {
	if q < 0 || q >= d.n {
		return fmt.Errorf("densitymatrix: qubit %d outside [0,%d)", q, d.n)
	}
	if err := ValidateKraus(kraus); err != nil {
		return err
	}
	d.apply1(q, kraus)
	return nil
}

// ValidateKraus checks the completeness relation Σ K†K = I.
func ValidateKraus(kraus []Matrix2) error {
	if len(kraus) == 0 {
		return fmt.Errorf("densitymatrix: empty Kraus set")
	}
	var sum Matrix2
	for _, k := range kraus {
		kd := k.Dagger()
		for r := 0; r < 2; r++ {
			for c := 0; c < 2; c++ {
				sum[r][c] += kd[r][0]*k[0][c] + kd[r][1]*k[1][c]
			}
		}
	}
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			want := complex128(0)
			if r == c {
				want = 1
			}
			if cmplx.Abs(sum[r][c]-want) > 1e-9 {
				return fmt.Errorf("densitymatrix: Kraus completeness violated at (%d,%d): %v", r, c, sum[r][c])
			}
		}
	}
	return nil
}
