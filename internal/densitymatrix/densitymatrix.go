// Package densitymatrix implements an exact mixed-state simulator: the
// n-qubit density matrix evolved by unitary gates and Kraus noise
// channels. It is the ground-truth reference for the fast failure-event
// executor in internal/noise — exponentially more expensive (4^n complex
// entries), so it is used for validation at small widths, not for the
// evaluation corpora.
package densitymatrix

import (
	"fmt"
	"math"
	"math/cmplx"
	"runtime"

	"qbeep/internal/bitstring"
	"qbeep/internal/circuit"
	"qbeep/internal/par"
)

// MaxQubits bounds the register width (4^10 = ~1M complex entries).
const MaxQubits = 10

// Matrix2 is a single-qubit operator.
type Matrix2 [2][2]complex128

// Dagger returns the conjugate transpose.
func (m Matrix2) Dagger() Matrix2 {
	return Matrix2{
		{cmplx.Conj(m[0][0]), cmplx.Conj(m[1][0])},
		{cmplx.Conj(m[0][1]), cmplx.Conj(m[1][1])},
	}
}

// Density is the n-qubit density matrix ρ with qubit 0 the
// least-significant index bit of both row and column.
//
// Gate and channel application uses pair-stride kernels over the row and
// column index spaces (no per-index mask tests) with a scratch matrix
// reused across calls, and shards rows across internal/par workers for
// wide registers; the contents of ρ are bitwise independent of the worker
// count because shards partition whole row pairs.
type Density struct {
	n       int
	dim     int
	rho     []complex128 // row-major dim×dim
	scratch []complex128 // reusable output buffer for out-of-place kernels
	signs   []float64    // reusable ±1 table for diagonal conjugations
	workers int          // row shard count; 0 = auto
}

// SetWorkers sets the row shard count: w > 1 shards the kernels over w
// par workers, w == 1 forces serial application, w <= 0 restores the
// default (GOMAXPROCS once the matrix is large enough to pay for the
// fan-out). ρ's contents are bitwise independent of w.
func (d *Density) SetWorkers(w int) {
	if w < 0 {
		w = 0
	}
	d.workers = w
}

// parMinRows is the row-space size below which auto mode stays serial.
const parMinRows = 1 << 6

// resolveWorkers picks the shard count for a kernel over `rows` row slots.
func (d *Density) resolveWorkers(rows int) int {
	w := d.workers
	if w <= 0 {
		if rows < parMinRows {
			return 1
		}
		w = runtime.GOMAXPROCS(0)
	}
	if w > rows {
		w = rows
	}
	if w < 1 {
		w = 1
	}
	return w
}

// shard runs fn(lo, hi) over a partition of [0, rows) across the resolved
// worker count. fn must only write state owned by its row range.
func (d *Density) shard(rows int, fn func(lo, hi int)) {
	w := d.resolveWorkers(rows)
	if w <= 1 {
		fn(0, rows)
		return
	}
	chunk := (rows + w - 1) / w
	_ = par.ForEach(w, w, func(k int) error {
		lo := k * chunk
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		if lo < hi {
			fn(lo, hi)
		}
		return nil
	})
}

// swapScratch installs the scratch buffer as ρ, keeping the old storage
// as the next call's scratch.
func (d *Density) swapScratch() {
	d.rho, d.scratch = d.scratch, d.rho
}

// ensureScratch returns the reusable output buffer, zeroed when asked.
func (d *Density) ensureScratch(zero bool) []complex128 {
	if d.scratch == nil {
		return d.ensureScratchAlloc()
	}
	if zero {
		clear(d.scratch)
	}
	return d.scratch
}

func (d *Density) ensureScratchAlloc() []complex128 {
	d.scratch = make([]complex128, len(d.rho))
	return d.scratch
}

// New returns ρ = |0...0⟩⟨0...0|.
func New(n int) (*Density, error) {
	return NewBasis(n, 0)
}

// NewBasis returns ρ = |b⟩⟨b|.
func NewBasis(n int, b bitstring.BitString) (*Density, error) {
	if n <= 0 || n > MaxQubits {
		return nil, fmt.Errorf("densitymatrix: width %d outside (0,%d]", n, MaxQubits)
	}
	dim := 1 << uint(n)
	if uint64(b) >= uint64(dim) {
		return nil, fmt.Errorf("densitymatrix: basis %d outside %d-qubit register", b, n)
	}
	d := &Density{n: n, dim: dim, rho: make([]complex128, dim*dim)}
	d.rho[int(b)*dim+int(b)] = 1
	return d, nil
}

// N returns the register width.
func (d *Density) N() int { return d.n }

// At returns ρ[r][c].
func (d *Density) At(r, c int) complex128 { return d.rho[r*d.dim+c] }

// Trace returns tr(ρ) (1 for a valid state).
func (d *Density) Trace() complex128 {
	var t complex128
	for i := 0; i < d.dim; i++ {
		t += d.rho[i*d.dim+i]
	}
	return t
}

// Purity returns tr(ρ²): 1 for pure states, 1/2^n for maximally mixed.
func (d *Density) Purity() float64 {
	var p complex128
	for r := 0; r < d.dim; r++ {
		for c := 0; c < d.dim; c++ {
			p += d.rho[r*d.dim+c] * d.rho[c*d.dim+r]
		}
	}
	return real(p)
}

// Prob returns the measurement probability of basis state b, ⟨b|ρ|b⟩.
func (d *Density) Prob(b bitstring.BitString) float64 {
	return real(d.rho[int(b)*d.dim+int(b)])
}

// Dist returns the diagonal as a probability distribution.
func (d *Density) Dist() *bitstring.Dist {
	out := bitstring.NewDist(d.n)
	for i := 0; i < d.dim; i++ {
		p := real(d.rho[i*d.dim+i])
		if p > 1e-14 {
			out.Add(bitstring.BitString(i), p)
		}
	}
	return out
}

// apply1 applies ρ → Σ_k K_k ρ K_k† for single-qubit Kraus operators on
// qubit q. A unitary is the single-element channel {U}.
//
// Rows and columns are walked with pair strides: row pairs (r0, r0|mask)
// come from the compressed row-pair index space, and the column loop
// iterates outer blocks of 2·mask with a contiguous inner run of mask
// columns — no per-index mask tests anywhere. Row-pair shards write
// disjoint rows of the output, so the fan-out is race-free and the result
// is bitwise identical for any worker count.
func (d *Density) apply1(q int, kraus []Matrix2) {
	mask := 1 << uint(q)
	dim := d.dim
	rho := d.rho
	next := d.ensureScratch(true)
	// Precompute each operator's dagger once, outside the hot loops.
	daggers := make([]Matrix2, len(kraus))
	for i, k := range kraus {
		daggers[i] = k.Dagger()
	}
	d.shard(dim>>1, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			r0 := (t&^(mask-1))<<1 | t&(mask-1)
			r1 := r0 | mask
			row0 := rho[r0*dim : r0*dim+dim]
			row1 := rho[r1*dim : r1*dim+dim]
			out0 := next[r0*dim : r0*dim+dim]
			out1 := next[r1*dim : r1*dim+dim]
			for ki := range kraus {
				k, kd := kraus[ki], daggers[ki]
				for cb := 0; cb < dim; cb += mask << 1 {
					for c0 := cb; c0 < cb+mask; c0++ {
						c1 := c0 | mask
						// 2x2 block of ρ in (r, c) qubit-q space.
						p00 := row0[c0]
						p01 := row0[c1]
						p10 := row1[c0]
						p11 := row1[c1]
						// K ρ K† on the block.
						a00 := k[0][0]*p00 + k[0][1]*p10
						a01 := k[0][0]*p01 + k[0][1]*p11
						a10 := k[1][0]*p00 + k[1][1]*p10
						a11 := k[1][0]*p01 + k[1][1]*p11
						out0[c0] += a00*kd[0][0] + a01*kd[1][0]
						out0[c1] += a00*kd[0][1] + a01*kd[1][1]
						out1[c0] += a10*kd[0][0] + a11*kd[1][0]
						out1[c1] += a10*kd[0][1] + a11*kd[1][1]
					}
				}
			}
		}
	})
	d.swapScratch()
}

// applyPerm conjugates ρ by a basis permutation: row r of the output is
// row perm(r) rearranged by the same permutation on columns. Every input
// row writes exactly one output row, so row shards never collide, and the
// scratch needs no zeroing (the permutation covers every entry).
func (d *Density) applyPerm(perm func(int) int) {
	dim := d.dim
	rho := d.rho
	next := d.ensureScratch(false)
	d.shard(dim, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			src := rho[r*dim : r*dim+dim]
			dst := next[perm(r)*dim : perm(r)*dim+dim]
			for c, v := range src {
				dst[perm(c)] = v
			}
		}
	})
	d.swapScratch()
}

// applyCX applies the CNOT unitary (a permutation: conjugating ρ by the
// permutation matrix permutes rows and columns).
func (d *Density) applyCX(ctrl, tgt int) {
	cm := 1 << uint(ctrl)
	tm := 1 << uint(tgt)
	d.applyPerm(func(i int) int {
		if i&cm != 0 {
			return i ^ tm
		}
		return i
	})
}

// applyDiagSigns conjugates ρ by a diagonal ±1 matrix given per-index
// signs: ρ[r][c] *= sign[r]·sign[c], in place and branch-free.
func (d *Density) applyDiagSigns(signs []float64) {
	dim := d.dim
	rho := d.rho
	d.shard(dim, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			sr := signs[r]
			row := rho[r*dim : r*dim+dim]
			for c := range row {
				row[c] *= complex(sr*signs[c], 0)
			}
		}
	})
}

// applyCZ applies the CZ unitary (diagonal ±1 phases).
func (d *Density) applyCZ(a, b int) {
	am := 1 << uint(a)
	bm := 1 << uint(b)
	if d.signs == nil {
		d.signs = make([]float64, d.dim)
	}
	both := am | bm
	for i := range d.signs {
		if i&both == both {
			d.signs[i] = -1
		} else {
			d.signs[i] = 1
		}
	}
	d.applyDiagSigns(d.signs)
}

const invSqrt2 = 0.7071067811865476

func gateMatrix(g circuit.Gate) (Matrix2, bool) {
	switch g.Kind {
	case circuit.I:
		return Matrix2{{1, 0}, {0, 1}}, true
	case circuit.X:
		return Matrix2{{0, 1}, {1, 0}}, true
	case circuit.Y:
		return Matrix2{{0, -1i}, {1i, 0}}, true
	case circuit.Z:
		return Matrix2{{1, 0}, {0, -1}}, true
	case circuit.H:
		return Matrix2{{invSqrt2, invSqrt2}, {invSqrt2, -invSqrt2}}, true
	case circuit.S:
		return Matrix2{{1, 0}, {0, 1i}}, true
	case circuit.Sdg:
		return Matrix2{{1, 0}, {0, -1i}}, true
	case circuit.T:
		return Matrix2{{1, 0}, {0, cmplx.Exp(1i * math.Pi / 4)}}, true
	case circuit.Tdg:
		return Matrix2{{1, 0}, {0, cmplx.Exp(-1i * math.Pi / 4)}}, true
	case circuit.SX:
		return Matrix2{
			{complex(0.5, 0.5), complex(0.5, -0.5)},
			{complex(0.5, -0.5), complex(0.5, 0.5)}}, true
	case circuit.RX:
		c, s := math.Cos(g.Params[0]/2), math.Sin(g.Params[0]/2)
		return Matrix2{
			{complex(c, 0), complex(0, -s)},
			{complex(0, -s), complex(c, 0)}}, true
	case circuit.RY:
		c, s := math.Cos(g.Params[0]/2), math.Sin(g.Params[0]/2)
		return Matrix2{
			{complex(c, 0), complex(-s, 0)},
			{complex(s, 0), complex(c, 0)}}, true
	case circuit.RZ:
		return Matrix2{
			{cmplx.Exp(complex(0, -g.Params[0]/2)), 0},
			{0, cmplx.Exp(complex(0, g.Params[0]/2))}}, true
	case circuit.U3:
		th, ph, la := g.Params[0], g.Params[1], g.Params[2]
		ct, st := math.Cos(th/2), math.Sin(th/2)
		return Matrix2{
			{complex(ct, 0), -cmplx.Exp(complex(0, la)) * complex(st, 0)},
			{cmplx.Exp(complex(0, ph)) * complex(st, 0),
				cmplx.Exp(complex(0, ph+la)) * complex(ct, 0)}}, true
	default:
		return Matrix2{}, false
	}
}

// Apply applies one unitary gate to ρ.
func (d *Density) Apply(g circuit.Gate) error {
	if err := g.Validate(d.n); err != nil {
		return err
	}
	switch g.Kind {
	case circuit.Measure, circuit.Barrier:
		return nil
	case circuit.CX:
		d.applyCX(g.Qubits[0], g.Qubits[1])
		return nil
	case circuit.CZ:
		d.applyCZ(g.Qubits[0], g.Qubits[1])
		return nil
	case circuit.SWAP:
		d.applyCX(g.Qubits[0], g.Qubits[1])
		d.applyCX(g.Qubits[1], g.Qubits[0])
		d.applyCX(g.Qubits[0], g.Qubits[1])
		return nil
	case circuit.CCX:
		// CCX as controlled-controlled permutation.
		c1 := 1 << uint(g.Qubits[0])
		c2 := 1 << uint(g.Qubits[1])
		tm := 1 << uint(g.Qubits[2])
		both := c1 | c2
		d.applyPerm(func(i int) int {
			if i&both == both {
				return i ^ tm
			}
			return i
		})
		return nil
	case circuit.CSWAP:
		cm := 1 << uint(g.Qubits[0])
		am := 1 << uint(g.Qubits[1])
		bm := 1 << uint(g.Qubits[2])
		d.applyPerm(func(i int) int {
			if i&cm == 0 {
				return i
			}
			ab := i & am >> uint(g.Qubits[1])
			bb := i & bm >> uint(g.Qubits[2])
			if ab == bb {
				return i
			}
			return i ^ am ^ bm
		})
		return nil
	default:
		m, ok := gateMatrix(g)
		if !ok {
			return fmt.Errorf("densitymatrix: unsupported gate %s", g.Kind)
		}
		d.apply1(g.Qubits[0], []Matrix2{m})
		return nil
	}
}

// Channel applies a single-qubit Kraus channel to qubit q. The operators
// must satisfy Σ K†K = I (checked to a tolerance).
func (d *Density) Channel(q int, kraus []Matrix2) error {
	if q < 0 || q >= d.n {
		return fmt.Errorf("densitymatrix: qubit %d outside [0,%d)", q, d.n)
	}
	if err := ValidateKraus(kraus); err != nil {
		return err
	}
	d.apply1(q, kraus)
	return nil
}

// ValidateKraus checks the completeness relation Σ K†K = I.
func ValidateKraus(kraus []Matrix2) error {
	if len(kraus) == 0 {
		return fmt.Errorf("densitymatrix: empty Kraus set")
	}
	var sum Matrix2
	for _, k := range kraus {
		kd := k.Dagger()
		for r := 0; r < 2; r++ {
			for c := 0; c < 2; c++ {
				sum[r][c] += kd[r][0]*k[0][c] + kd[r][1]*k[1][c]
			}
		}
	}
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			want := complex128(0)
			if r == c {
				want = 1
			}
			if cmplx.Abs(sum[r][c]-want) > 1e-9 {
				return fmt.Errorf("densitymatrix: Kraus completeness violated at (%d,%d): %v", r, c, sum[r][c])
			}
		}
	}
	return nil
}
