package densitymatrix

import (
	"testing"

	"qbeep/internal/circuit"
)

// BenchmarkDensityEvolve measures the pair-stride density-matrix hot
// loops on an 8-qubit circuit with per-qubit noise channels (recorded in
// BENCH_sim.json).
func BenchmarkDensityEvolve(b *testing.B) {
	c := circuit.New("dm-bench", 8)
	for q := 0; q < 8; q++ {
		c.H(q)
	}
	for q := 0; q < 8; q++ {
		c.CX(q, (q+1)%8)
		c.RZ(0.3+0.1*float64(q), (q+1)%8)
		c.CX(q, (q+1)%8)
	}
	for q := 0; q < 8; q++ {
		c.RX(0.7, q)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := NewBasis(8, 0)
		if err != nil {
			b.Fatal(err)
		}
		for _, g := range c.Gates {
			if err := d.Apply(g); err != nil {
				b.Fatal(err)
			}
		}
		for q := 0; q < 8; q++ {
			if err := d.Channel(q, Depolarizing(0.01)); err != nil {
				b.Fatal(err)
			}
		}
	}
}
