package densitymatrix

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"qbeep/internal/bitstring"
	"qbeep/internal/circuit"
	"qbeep/internal/mathx"
	"qbeep/internal/statevector"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewBounds(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("zero width should error")
	}
	if _, err := New(MaxQubits + 1); err == nil {
		t.Error("over-max should error")
	}
	if _, err := NewBasis(2, 4); err == nil {
		t.Error("out-of-range basis should error")
	}
	d, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(real(d.Trace()), 1, 1e-12) || !approx(d.Purity(), 1, 1e-12) {
		t.Error("fresh state should be pure with unit trace")
	}
	if d.Prob(0) != 1 {
		t.Error("fresh state should be |000⟩")
	}
}

func TestUnitaryAgreesWithStatevector(t *testing.T) {
	// Random circuits: the density-matrix diagonal must equal the
	// state-vector probabilities.
	rng := mathx.NewRNG(77)
	for trial := 0; trial < 8; trial++ {
		c := circuit.New("rand", 3)
		kinds := []circuit.Kind{circuit.H, circuit.X, circuit.Y, circuit.Z,
			circuit.S, circuit.T, circuit.SX, circuit.RX, circuit.RY,
			circuit.RZ, circuit.U3, circuit.CX, circuit.CZ, circuit.SWAP,
			circuit.CCX}
		for i := 0; i < 15; i++ {
			k := kinds[rng.Intn(len(kinds))]
			switch k.Arity() {
			case 1:
				params := make([]float64, k.ParamCount())
				for p := range params {
					params[p] = rng.Uniform(-3, 3)
				}
				c.Append(circuit.Gate{Kind: k, Qubits: []int{rng.Intn(3)}, Params: params})
			case 2:
				a := rng.Intn(3)
				b := (a + 1 + rng.Intn(2)) % 3
				c.Append(circuit.Gate{Kind: k, Qubits: []int{a, b}})
			case 3:
				perm := rng.Perm(3)
				c.Append(circuit.Gate{Kind: k, Qubits: perm})
			}
		}
		if c.Err() != nil {
			t.Fatal(c.Err())
		}
		sv, err := statevector.Run(c)
		if err != nil {
			t.Fatal(err)
		}
		dm, err := New(3)
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range c.Gates {
			if err := dm.Apply(g); err != nil {
				t.Fatal(err)
			}
		}
		if !approx(dm.Purity(), 1, 1e-9) {
			t.Fatalf("trial %d: unitary evolution lost purity: %v", trial, dm.Purity())
		}
		for b := bitstring.BitString(0); b < 8; b++ {
			if !approx(dm.Prob(b), sv.Prob(b), 1e-9) {
				t.Fatalf("trial %d: P(%03b) dm=%v sv=%v\n%s", trial, b, dm.Prob(b), sv.Prob(b), c)
			}
		}
	}
}

func TestCSWAPMatchesStatevector(t *testing.T) {
	for in := 0; in < 8; in++ {
		c := circuit.New("cswap", 3)
		for q := 0; q < 3; q++ {
			if in&(1<<q) != 0 {
				c.X(q)
			}
		}
		c.CSWAP(0, 1, 2)
		sv, err := statevector.Run(c)
		if err != nil {
			t.Fatal(err)
		}
		dm, _ := New(3)
		for _, g := range c.Gates {
			if err := dm.Apply(g); err != nil {
				t.Fatal(err)
			}
		}
		for b := bitstring.BitString(0); b < 8; b++ {
			if !approx(dm.Prob(b), sv.Prob(b), 1e-12) {
				t.Fatalf("input %03b: P(%03b) dm=%v sv=%v", in, b, dm.Prob(b), sv.Prob(b))
			}
		}
	}
}

func TestChannelValidation(t *testing.T) {
	d, _ := New(2)
	if err := d.Channel(5, BitFlip(0.1)); err == nil {
		t.Error("bad qubit should error")
	}
	if err := d.Channel(0, nil); err == nil {
		t.Error("empty Kraus should error")
	}
	// Incomplete Kraus set.
	bad := []Matrix2{{{0.5, 0}, {0, 0.5}}}
	if err := d.Channel(0, bad); err == nil {
		t.Error("incomplete Kraus should error")
	}
}

func TestAllChannelsComplete(t *testing.T) {
	for _, tc := range []struct {
		name  string
		kraus []Matrix2
	}{
		{"depolarizing", Depolarizing(0.3)},
		{"bitflip", BitFlip(0.2)},
		{"phaseflip", PhaseFlip(0.4)},
		{"amplitude", AmplitudeDamping(0.25)},
		{"phasedamp", PhaseDamping(0.15)},
	} {
		if err := ValidateKraus(tc.kraus); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
	}
}

func TestBitFlipProbability(t *testing.T) {
	d, _ := New(1)
	if err := d.Channel(0, BitFlip(0.3)); err != nil {
		t.Fatal(err)
	}
	if !approx(d.Prob(0), 0.7, 1e-12) || !approx(d.Prob(1), 0.3, 1e-12) {
		t.Errorf("bitflip probs: %v %v", d.Prob(0), d.Prob(1))
	}
	if !approx(real(d.Trace()), 1, 1e-12) {
		t.Errorf("trace %v", d.Trace())
	}
}

func TestAmplitudeDampingDirectional(t *testing.T) {
	// |1⟩ decays to |0⟩; |0⟩ is a fixed point.
	d, _ := NewBasis(1, 1)
	d.Channel(0, AmplitudeDamping(0.4))
	if !approx(d.Prob(0), 0.4, 1e-12) || !approx(d.Prob(1), 0.6, 1e-12) {
		t.Errorf("decay probs: %v %v", d.Prob(0), d.Prob(1))
	}
	d0, _ := New(1)
	d0.Channel(0, AmplitudeDamping(0.4))
	if !approx(d0.Prob(0), 1, 1e-12) {
		t.Error("|0⟩ should be fixed under amplitude damping")
	}
}

func TestPhaseDampingKillsCoherence(t *testing.T) {
	// H|0⟩ then full dephasing: diagonal stays uniform, off-diagonal dies.
	d, _ := New(1)
	d.Apply(circuit.Gate{Kind: circuit.H, Qubits: []int{0}})
	if cmplx.Abs(d.At(0, 1)) < 0.49 {
		t.Fatalf("pre-dephasing coherence %v", d.At(0, 1))
	}
	d.Channel(0, PhaseDamping(1))
	if cmplx.Abs(d.At(0, 1)) > 1e-12 {
		t.Errorf("coherence survived full dephasing: %v", d.At(0, 1))
	}
	if !approx(d.Prob(0), 0.5, 1e-12) || !approx(d.Prob(1), 0.5, 1e-12) {
		t.Error("dephasing should not change populations")
	}
}

func TestDepolarizingToMaximallyMixed(t *testing.T) {
	d, _ := New(1)
	d.Apply(circuit.Gate{Kind: circuit.H, Qubits: []int{0}})
	d.Channel(0, Depolarizing(1))
	if !approx(d.Purity(), 0.5, 1e-9) {
		t.Errorf("purity after full depolarizing: %v (want 1/2)", d.Purity())
	}
}

func TestChannelPreservesTraceQuick(t *testing.T) {
	f := func(pRaw uint8, kind uint8) bool {
		p := float64(pRaw) / 255
		var kraus []Matrix2
		switch kind % 5 {
		case 0:
			kraus = Depolarizing(p)
		case 1:
			kraus = BitFlip(p)
		case 2:
			kraus = PhaseFlip(p)
		case 3:
			kraus = AmplitudeDamping(p)
		default:
			kraus = PhaseDamping(p)
		}
		d, err := New(2)
		if err != nil {
			return false
		}
		d.Apply(circuit.Gate{Kind: circuit.H, Qubits: []int{0}})
		d.Apply(circuit.Gate{Kind: circuit.CX, Qubits: []int{0, 1}})
		if err := d.Channel(0, kraus); err != nil {
			return false
		}
		return approx(real(d.Trace()), 1, 1e-9) && d.Purity() <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDistDiagonal(t *testing.T) {
	d, _ := New(2)
	d.Apply(circuit.Gate{Kind: circuit.H, Qubits: []int{0}})
	d.Apply(circuit.Gate{Kind: circuit.CX, Qubits: []int{0, 1}})
	dist := d.Dist()
	if dist.Support() != 2 {
		t.Fatalf("support %d", dist.Support())
	}
	if !approx(dist.Prob(0), 0.5, 1e-9) || !approx(dist.Prob(3), 0.5, 1e-9) {
		t.Errorf("bell diagonal: %v", dist.StringCounts())
	}
}

func TestApplyRejectsUnknownAndInvalid(t *testing.T) {
	d, _ := New(2)
	if err := d.Apply(circuit.Gate{Kind: circuit.H, Qubits: []int{9}}); err == nil {
		t.Error("bad qubit should error")
	}
	if err := d.Apply(circuit.Gate{Kind: circuit.Measure, Qubits: []int{0}}); err != nil {
		t.Errorf("measure should be a no-op, got %v", err)
	}
}

func BenchmarkBellWithNoise6Q(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := New(6)
		if err != nil {
			b.Fatal(err)
		}
		d.Apply(circuit.Gate{Kind: circuit.H, Qubits: []int{0}})
		for q := 0; q < 5; q++ {
			d.Apply(circuit.Gate{Kind: circuit.CX, Qubits: []int{q, q + 1}})
			d.Channel(q+1, Depolarizing(0.01))
		}
	}
}
