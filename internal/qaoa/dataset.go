package qaoa

import (
	"fmt"
	"math"

	"qbeep/internal/circuit"
	"qbeep/internal/mathx"
	"qbeep/internal/par"
	"qbeep/internal/statevector"
)

// Instance is one QAOA problem ready for induction: graph, angles and the
// built circuit, plus the exact C_min.
type Instance struct {
	Graph   *Graph
	P       int
	Gamma   []float64
	Beta    []float64
	Circuit *circuit.Circuit
	CMin    float64
}

// angle grids the generator searches for each instance — a coarse
// stand-in for the optimization loop that produced the Sycamore dataset's
// angles. Both signs of γ are needed: the optimum's sign depends on the
// cost convention and graph parity.
var (
	gammaGrid = []float64{-0.7, -0.5, -0.35, -0.2, 0.2, 0.35, 0.5, 0.7}
	betaGrid  = []float64{0.15, 0.3, 0.45, 0.6}
)

// NewInstance builds a QAOA instance on the graph with depth p, choosing
// uniform per-layer angles by brute-force grid search on the noiseless
// simulator (lowest expected cost wins). Registers are limited by the
// state-vector simulator.
func NewInstance(g *Graph, p int) (*Instance, error) {
	if p <= 0 {
		return nil, fmt.Errorf("qaoa: depth %d must be positive", p)
	}
	if g.N > statevector.MaxQubits {
		return nil, fmt.Errorf("qaoa: %d vertices exceeds simulator limit", g.N)
	}
	cmin, _, err := g.MinCost()
	if err != nil {
		return nil, err
	}
	if cmin >= 0 {
		return nil, fmt.Errorf("qaoa: degenerate instance with C_min %v", cmin)
	}
	var best *Instance
	bestCost := math.Inf(1)
	for _, gm := range gammaGrid {
		for _, bt := range betaGrid {
			gamma := make([]float64, p)
			beta := make([]float64, p)
			for i := 0; i < p; i++ {
				gamma[i] = gm
				beta[i] = bt
			}
			c, err := Circuit(g, gamma, beta)
			if err != nil {
				return nil, err
			}
			ideal, err := statevector.IdealDist(c)
			if err != nil {
				return nil, err
			}
			cost, err := g.ExpectedCost(ideal)
			if err != nil {
				return nil, err
			}
			if cost < bestCost {
				bestCost = cost
				best = &Instance{Graph: g, P: p, Gamma: gamma, Beta: beta, Circuit: c, CMin: cmin}
			}
		}
	}
	if best == nil || bestCost >= 0 {
		return nil, fmt.Errorf("qaoa: grid search found no improving angles (best %v)", bestCost)
	}
	return best, nil
}

// Dataset generates count QAOA instances mixing 3-regular and Erdős–Rényi
// graphs with sizes in [minN, maxN] and depths 1..maxP — the synthetic
// stand-in for the 340-solution Sycamore corpus.
func Dataset(count, minN, maxN, maxP int, rng *mathx.RNG) ([]*Instance, error) {
	if count <= 0 || minN < 4 || maxN < minN || maxP <= 0 {
		return nil, fmt.Errorf("qaoa: bad dataset spec (%d, %d, %d, %d)", count, minN, maxN, maxP)
	}
	// Phase 1 (sequential): sample graphs and depths so the corpus is
	// deterministic; phase 2 (parallel): the grid searches, which dominate
	// the cost and are RNG-free.
	type spec struct {
		g *Graph
		p int
	}
	specs := make([]spec, 0, count)
	for len(specs) < count {
		n := minN + rng.Intn(maxN-minN+1)
		var g *Graph
		var err error
		if rng.Float64() < 0.5 {
			if n%2 == 1 {
				n++
			}
			if n > maxN {
				n = maxN - maxN%2
			}
			g, err = Random3Regular(n, rng)
		} else {
			g, err = RandomErdosRenyi(n, 0.4, rng)
		}
		if err != nil {
			return nil, err
		}
		specs = append(specs, spec{g: g, p: 1 + rng.Intn(maxP)})
	}
	out := make([]*Instance, count)
	err := par.ForEach(count, 0, func(i int) error {
		inst, err := NewInstance(specs[i].g, specs[i].p)
		if err != nil {
			return err
		}
		out[i] = inst
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
