// Package qaoa implements the Quantum Approximate Optimization Algorithm
// workload of the paper's §4.4: MaxCut problem graphs, the p-layer QAOA
// circuit, exact minimum-cost computation, and the Cost-Ratio metric. The
// synthetic dataset generator stands in for the Google Sycamore QAOA data
// (Harrigan et al. 2021) the paper post-processes.
package qaoa

import (
	"fmt"
	"math"

	"qbeep/internal/bitstring"
	"qbeep/internal/circuit"
	"qbeep/internal/mathx"
)

// Graph is an undirected weighted problem graph for MaxCut.
type Graph struct {
	N       int
	Edges   [][2]int
	Weights []float64 // parallel to Edges; nil means all 1
}

// Validate checks structural consistency.
func (g *Graph) Validate() error {
	if g.N <= 0 {
		return fmt.Errorf("qaoa: graph with %d vertices", g.N)
	}
	if g.Weights != nil && len(g.Weights) != len(g.Edges) {
		return fmt.Errorf("qaoa: %d weights for %d edges", len(g.Weights), len(g.Edges))
	}
	for _, e := range g.Edges {
		if e[0] == e[1] || e[0] < 0 || e[1] < 0 || e[0] >= g.N || e[1] >= g.N {
			return fmt.Errorf("qaoa: bad edge %v", e)
		}
	}
	return nil
}

// weight returns the weight of edge i.
func (g *Graph) weight(i int) float64 {
	if g.Weights == nil {
		return 1
	}
	return g.Weights[i]
}

// Cost evaluates the MaxCut cost Hamiltonian C(z) = Σ_(i,j) w_ij · z_i·z_j
// with z_i = ±1 from bit i. Minimizing C maximizes the cut, so C_min is
// negative for any graph with at least one edge — matching the paper's
// observation that all problems have negative C_min.
func (g *Graph) Cost(assign bitstring.BitString) float64 {
	var c float64
	for i, e := range g.Edges {
		zi := 1.0 - 2.0*float64(assign.Bit(e[0]))
		zj := 1.0 - 2.0*float64(assign.Bit(e[1]))
		c += g.weight(i) * zi * zj
	}
	return c
}

// MinCost brute-forces the minimum of Cost over all 2^N assignments
// (N <= 24).
func (g *Graph) MinCost() (float64, bitstring.BitString, error) {
	if err := g.Validate(); err != nil {
		return 0, 0, err
	}
	if g.N > 24 {
		return 0, 0, fmt.Errorf("qaoa: brute force limited to 24 vertices, got %d", g.N)
	}
	best := math.Inf(1)
	var argBest bitstring.BitString
	for v := bitstring.BitString(0); v < 1<<uint(g.N); v++ {
		if c := g.Cost(v); c < best {
			best, argBest = c, v
		}
	}
	return best, argBest, nil
}

// ExpectedCost returns E[C] under a measurement distribution.
func (g *Graph) ExpectedCost(d *bitstring.Dist) (float64, error) {
	if d.Width() != g.N {
		return 0, fmt.Errorf("qaoa: distribution width %d vs graph %d", d.Width(), g.N)
	}
	if d.Total() == 0 {
		return 0, fmt.Errorf("qaoa: empty distribution")
	}
	var e float64
	d.Each(func(v bitstring.BitString, c float64) {
		e += g.Cost(v) * c
	})
	return e / d.Total(), nil
}

// CostRatio returns CR = E[C]/C_min (paper Eq. 7). Because C_min < 0,
// better solutions have larger CR, with CR = 1 optimal.
func (g *Graph) CostRatio(d *bitstring.Dist) (float64, error) {
	e, err := g.ExpectedCost(d)
	if err != nil {
		return 0, err
	}
	cmin, _, err := g.MinCost()
	if err != nil {
		return 0, err
	}
	if cmin == 0 {
		return 0, fmt.Errorf("qaoa: degenerate graph with zero C_min")
	}
	return e / cmin, nil
}

// Random3Regular samples a 3-regular graph on n vertices (n even, n >= 4)
// by repeatedly drawing perfect matchings (configuration model with
// rejection of collisions).
func Random3Regular(n int, rng *mathx.RNG) (*Graph, error) {
	if n < 4 || n%2 != 0 {
		return nil, fmt.Errorf("qaoa: 3-regular graph needs even n >= 4, got %d", n)
	}
	for attempt := 0; attempt < 200; attempt++ {
		degree := make([]int, n)
		adj := make(map[[2]int]bool)
		var edges [][2]int
		ok := true
		for round := 0; round < 3 && ok; round++ {
			perm := rng.Perm(n)
			for i := 0; i+1 < n; i += 2 {
				a, b := perm[i], perm[i+1]
				if a > b {
					a, b = b, a
				}
				if adj[[2]int{a, b}] || degree[a] >= 3 || degree[b] >= 3 {
					ok = false
					break
				}
				adj[[2]int{a, b}] = true
				edges = append(edges, [2]int{a, b})
				degree[a]++
				degree[b]++
			}
		}
		if !ok {
			continue
		}
		g := &Graph{N: n, Edges: edges}
		if err := g.Validate(); err == nil {
			return g, nil
		}
	}
	return nil, fmt.Errorf("qaoa: failed to sample a 3-regular graph on %d vertices", n)
}

// RandomErdosRenyi samples G(n, p) conditioned on having at least one
// edge.
func RandomErdosRenyi(n int, p float64, rng *mathx.RNG) (*Graph, error) {
	if n < 2 || p <= 0 || p > 1 {
		return nil, fmt.Errorf("qaoa: bad G(%d, %v)", n, p)
	}
	for attempt := 0; attempt < 200; attempt++ {
		var edges [][2]int
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < p {
					edges = append(edges, [2]int{i, j})
				}
			}
		}
		if len(edges) > 0 {
			return &Graph{N: n, Edges: edges}, nil
		}
	}
	return nil, fmt.Errorf("qaoa: failed to sample a non-empty G(%d,%v)", n, p)
}

// Circuit builds the p-layer QAOA circuit for the graph with parameters
// gamma, beta (len p each): H^n, then per layer the cost unitary
// exp(-iγ·C) as ZZ interactions (CX·RZ(2γw)·CX) and the mixer
// exp(-iβ·ΣX) as RX(2β).
func Circuit(g *Graph, gamma, beta []float64) (*circuit.Circuit, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if len(gamma) != len(beta) || len(gamma) == 0 {
		return nil, fmt.Errorf("qaoa: need matching non-empty gamma/beta, got %d/%d", len(gamma), len(beta))
	}
	c := circuit.New(fmt.Sprintf("qaoa-n%d-p%d", g.N, len(gamma)), g.N)
	for q := 0; q < g.N; q++ {
		c.H(q)
	}
	for layer := range gamma {
		c.Barrier()
		for i, e := range g.Edges {
			c.CX(e[0], e[1])
			c.RZ(2*gamma[layer]*g.weight(i), e[1])
			c.CX(e[0], e[1])
		}
		for q := 0; q < g.N; q++ {
			c.RX(2*beta[layer], q)
		}
	}
	c.MeasureAll()
	return c.Finalize()
}
