package qaoa

import (
	"math"
	"testing"

	"qbeep/internal/bitstring"
	"qbeep/internal/mathx"
	"qbeep/internal/statevector"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func triangle() *Graph {
	return &Graph{N: 3, Edges: [][2]int{{0, 1}, {1, 2}, {0, 2}}}
}

func TestGraphValidate(t *testing.T) {
	if err := triangle().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Graph{N: 2, Edges: [][2]int{{0, 0}}}
	if err := bad.Validate(); err == nil {
		t.Error("self-loop should error")
	}
	bad = &Graph{N: 2, Edges: [][2]int{{0, 5}}}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range edge should error")
	}
	bad = &Graph{N: 2, Edges: [][2]int{{0, 1}}, Weights: []float64{1, 2}}
	if err := bad.Validate(); err == nil {
		t.Error("weight mismatch should error")
	}
	if err := (&Graph{N: 0}).Validate(); err == nil {
		t.Error("empty graph should error")
	}
}

func TestCostTriangle(t *testing.T) {
	g := triangle()
	// All same side: every edge contributes +1.
	if got := g.Cost(0b000); got != 3 {
		t.Errorf("Cost(000) = %v want 3", got)
	}
	// One vertex across: edges (0,1),(0,2) cut (-1 each), (1,2) uncut (+1).
	if got := g.Cost(0b001); got != -1 {
		t.Errorf("Cost(001) = %v want -1", got)
	}
}

func TestMinCostTriangle(t *testing.T) {
	g := triangle()
	cmin, arg, err := g.MinCost()
	if err != nil {
		t.Fatal(err)
	}
	if cmin != -1 {
		t.Errorf("C_min = %v want -1 (triangle max cut = 2)", cmin)
	}
	if g.Cost(arg) != cmin {
		t.Error("argmin inconsistent")
	}
}

func TestMinCostBipartiteReachesFullCut(t *testing.T) {
	// A 4-cycle is bipartite: all 4 edges cut, C_min = -4.
	g := &Graph{N: 4, Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}}}
	cmin, _, err := g.MinCost()
	if err != nil {
		t.Fatal(err)
	}
	if cmin != -4 {
		t.Errorf("C_min = %v want -4", cmin)
	}
}

func TestWeightedCost(t *testing.T) {
	g := &Graph{N: 2, Edges: [][2]int{{0, 1}}, Weights: []float64{2.5}}
	if got := g.Cost(0b01); got != -2.5 {
		t.Errorf("weighted cost %v", got)
	}
}

func TestExpectedCostAndRatio(t *testing.T) {
	g := triangle()
	d := bitstring.NewDist(3)
	d.Add(0b001, 1) // cost -1 (optimal)
	d.Add(0b000, 1) // cost +3
	e, err := g.ExpectedCost(d)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(e, 1, 1e-12) {
		t.Errorf("E[C] = %v want 1", e)
	}
	cr, err := g.CostRatio(d)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(cr, -1, 1e-12) {
		t.Errorf("CR = %v want -1", cr)
	}
	// Optimal distribution has CR = 1.
	opt := bitstring.NewDist(3)
	opt.Add(0b001, 1)
	cr, _ = g.CostRatio(opt)
	if !approx(cr, 1, 1e-12) {
		t.Errorf("optimal CR = %v want 1", cr)
	}
	if _, err := g.ExpectedCost(bitstring.NewDist(4)); err == nil {
		t.Error("width mismatch should error")
	}
	if _, err := g.ExpectedCost(bitstring.NewDist(3)); err == nil {
		t.Error("empty dist should error")
	}
}

func TestRandom3Regular(t *testing.T) {
	rng := mathx.NewRNG(8)
	for _, n := range []int{4, 8, 12} {
		g, err := Random3Regular(n, rng)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		deg := make([]int, n)
		for _, e := range g.Edges {
			deg[e[0]]++
			deg[e[1]]++
		}
		for v, d := range deg {
			if d != 3 {
				t.Errorf("n=%d vertex %d degree %d", n, v, d)
			}
		}
	}
	if _, err := Random3Regular(5, rng); err == nil {
		t.Error("odd n should error")
	}
	if _, err := Random3Regular(2, rng); err == nil {
		t.Error("tiny n should error")
	}
}

func TestRandomErdosRenyi(t *testing.T) {
	rng := mathx.NewRNG(9)
	g, err := RandomErdosRenyi(8, 0.4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Edges) == 0 {
		t.Error("should have at least one edge")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := RandomErdosRenyi(1, 0.5, rng); err == nil {
		t.Error("n=1 should error")
	}
	if _, err := RandomErdosRenyi(5, 0, rng); err == nil {
		t.Error("p=0 should error")
	}
}

func TestCircuitStructure(t *testing.T) {
	g := triangle()
	c, err := Circuit(g, []float64{0.4}, []float64{0.3})
	if err != nil {
		t.Fatal(err)
	}
	if c.N != 3 {
		t.Errorf("width %d", c.N)
	}
	// p=1: 2 CX per edge.
	if got := c.TwoQubitCount(); got != 6 {
		t.Errorf("CX count %d want 6", got)
	}
	if _, err := Circuit(g, []float64{0.1}, nil); err == nil {
		t.Error("mismatched angles should error")
	}
	if _, err := Circuit(g, nil, nil); err == nil {
		t.Error("empty angles should error")
	}
}

func TestQAOABeatsRandomGuessing(t *testing.T) {
	// The noiseless QAOA distribution should have expected cost below 0
	// (random guessing gives E[C] = 0).
	rng := mathx.NewRNG(10)
	g, err := Random3Regular(8, rng)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewInstance(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := statevector.IdealDist(inst.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := g.ExpectedCost(ideal)
	if err != nil {
		t.Fatal(err)
	}
	if cost >= 0 {
		t.Errorf("QAOA expected cost %v should beat random (0)", cost)
	}
	cr, err := g.CostRatio(ideal)
	if err != nil {
		t.Fatal(err)
	}
	if cr <= 0 || cr > 1 {
		t.Errorf("CR %v outside (0, 1]", cr)
	}
}

func TestNewInstanceValidation(t *testing.T) {
	g := triangle()
	if _, err := NewInstance(g, 0); err == nil {
		t.Error("zero depth should error")
	}
	// Edgeless graph: C_min = 0 → degenerate.
	if _, err := NewInstance(&Graph{N: 3}, 1); err == nil {
		t.Error("degenerate instance should error")
	}
}

func TestDataset(t *testing.T) {
	rng := mathx.NewRNG(12)
	insts, err := Dataset(6, 6, 10, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 6 {
		t.Fatalf("dataset size %d", len(insts))
	}
	for i, inst := range insts {
		if inst.CMin >= 0 {
			t.Errorf("instance %d: C_min %v should be negative", i, inst.CMin)
		}
		if inst.Graph.N < 6 || inst.Graph.N > 10 {
			t.Errorf("instance %d: size %d outside [6,10]", i, inst.Graph.N)
		}
		if inst.P < 1 || inst.P > 2 {
			t.Errorf("instance %d: depth %d", i, inst.P)
		}
	}
	if _, err := Dataset(0, 6, 10, 2, rng); err == nil {
		t.Error("zero count should error")
	}
}

func TestDatasetDeterministic(t *testing.T) {
	a, err := Dataset(3, 6, 8, 1, mathx.NewRNG(77))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Dataset(3, 6, 8, 1, mathx.NewRNG(77))
	for i := range a {
		if a[i].Graph.N != b[i].Graph.N || len(a[i].Graph.Edges) != len(b[i].Graph.Edges) {
			t.Fatal("dataset not deterministic")
		}
	}
}
